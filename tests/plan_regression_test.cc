// Plan-regression pins: the exact partition shapes of the five paper
// middleboxes. These are intentionally brittle — any change to the
// partitioning algorithm that silently shifts statements between the switch
// and the server must be reviewed against §6.2's description, not slip by.
#include <gtest/gtest.h>

#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "rmt/feedback.h"
#include "rmt/target.h"

namespace gallium::partition {
namespace {

struct PlanShape {
  int pre, server, post;
  int to_server_bytes, to_switch_bytes;
};

PlanShape ShapeOf(const mbox::MiddleboxSpec& spec) {
  Partitioner partitioner(*spec.fn, {});
  auto plan = partitioner.Run();
  EXPECT_TRUE(plan.ok());
  return PlanShape{plan->num_pre, plan->num_non_offloaded, plan->num_post,
                   plan->to_server.Bytes(*spec.fn),
                   plan->to_switch.Bytes(*spec.fn)};
}

TEST(PlanRegression, MazuNat) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  const PlanShape shape = ShapeOf(*spec);
  EXPECT_EQ(shape.pre, 21);
  EXPECT_EQ(shape.server, 3);  // counter bump + two table installs
  EXPECT_EQ(shape.post, 1);
  EXPECT_LE(shape.to_server_bytes, 20);
}

TEST(PlanRegression, LoadBalancer) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  const PlanShape shape = ShapeOf(*spec);
  EXPECT_EQ(shape.pre, 21);
  EXPECT_EQ(shape.server, 9);  // hash chain, backend pick, installs, GC
  EXPECT_EQ(shape.post, 3);
}

TEST(PlanRegression, FirewallFullyOffloaded) {
  auto spec = mbox::BuildFirewall();
  ASSERT_TRUE(spec.ok());
  const PlanShape shape = ShapeOf(*spec);
  EXPECT_EQ(shape.server, 0);
  EXPECT_EQ(shape.post, 0);
  EXPECT_EQ(shape.to_server_bytes, 0);
}

TEST(PlanRegression, ProxyFullyOffloaded) {
  auto spec = mbox::BuildProxy();
  ASSERT_TRUE(spec.ok());
  const PlanShape shape = ShapeOf(*spec);
  EXPECT_EQ(shape.server, 0);
  EXPECT_EQ(shape.post, 0);
}

TEST(PlanRegression, TrojanDetector) {
  auto spec = mbox::BuildTrojanDetector();
  ASSERT_TRUE(spec.ok());
  const PlanShape shape = ShapeOf(*spec);
  EXPECT_EQ(shape.pre, 22);
  EXPECT_EQ(shape.server, 10);  // DPI + state-machine updates
  EXPECT_EQ(shape.post, 7);
  // The return header is condition bits only (Fig. 5 shape).
  EXPECT_LE(shape.to_switch_bytes, 2);
}

// Replicable-read analysis (the "re-parse headers on the server" rule):
// a header read is only re-executable when no later write can clobber it.
TEST(Replicable, NatSourceFieldsAreNotReplicable) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  for (const auto& bb : spec->fn->blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op != ir::Opcode::kHeaderRead) continue;
      const bool replicable = plan->replicable[inst.id];
      switch (inst.field) {
        case ir::HeaderField::kIpSrc:     // NAT rewrites ip.saddr
        case ir::HeaderField::kSrcPort:   // and the source port
        case ir::HeaderField::kIpDst:     // and (inbound) ip.daddr
        case ir::HeaderField::kDstPort:
          EXPECT_FALSE(replicable)
              << ir::HeaderFieldName(inst.field) << " is rewritten later";
          break;
        case ir::HeaderField::kIngressPort:
          EXPECT_FALSE(replicable) << "ingress port is not re-derivable";
          break;
        default:
          EXPECT_TRUE(replicable) << ir::HeaderFieldName(inst.field);
      }
    }
  }
}

TEST(Replicable, TrojanReadsAllReplicable) {
  // The trojan detector rewrites no header fields, so every header read can
  // re-execute anywhere — that is why its transfer header is bits-only.
  auto spec = mbox::BuildTrojanDetector();
  ASSERT_TRUE(spec.ok());
  Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  for (const auto& bb : spec->fn->blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op == ir::Opcode::kHeaderRead) {
        EXPECT_TRUE(plan->replicable[inst.id])
            << ir::HeaderFieldName(inst.field);
      }
    }
  }
  EXPECT_TRUE(plan->to_server.var_regs.empty());
}

// Golden per-stage placements on the default Tofino-like profile. A table
// spanning several stages (match ways split across SRAM of consecutive
// stages) is listed in each stage it occupies. As with the plan shapes
// above, these pins are deliberately brittle: a placement shift is a
// hardware-resource story that must be reviewed, not slip by.
std::string StageMapOf(const mbox::MiddleboxSpec& spec) {
  const SwitchConstraints constraints;
  auto planned = rmt::PartitionAndPlace(
      *spec.fn, constraints, rmt::DefaultTofinoProfile(constraints));
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  if (!planned.ok()) return "";
  EXPECT_TRUE(planned->spilled.empty()) << spec.name;
  return planned->placement.StageMapString();
}

TEST(PlacementRegression, MazuNat) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(StageMapOf(*spec),
            "0:wb_active_nat_in,wb_active_nat_out "
            "1:tbl_nat_in_wb,tbl_nat_out_wb "
            "2:tbl_nat_in,tbl_nat_out 3:tbl_nat_out 4:reg_port_counter");
}

TEST(PlacementRegression, LoadBalancer) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(StageMapOf(*spec),
            "0:tbl_backends,wb_active_flows 1:tbl_flows_wb 2:tbl_flows "
            "3:tbl_flows 4:reg_backends_size");
}

TEST(PlacementRegression, Firewall) {
  auto spec = mbox::BuildFirewall();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(StageMapOf(*spec),
            "0:wb_active_whitelist_in,wb_active_whitelist_out "
            "1:tbl_whitelist_in_wb,tbl_whitelist_out_wb 2:tbl_whitelist_in "
            "3:tbl_whitelist_in,tbl_whitelist_out 4:tbl_whitelist_out "
            "5:tbl_whitelist_out");
}

TEST(PlacementRegression, Proxy) {
  auto spec = mbox::BuildProxy();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(StageMapOf(*spec),
            "0:wb_active_redirect_ports 1:tbl_redirect_ports_wb "
            "2:tbl_redirect_ports");
}

TEST(PlacementRegression, TrojanDetector) {
  auto spec = mbox::BuildTrojanDetector();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(StageMapOf(*spec),
            "0:wb_active_flow_state,wb_active_host_stage "
            "1:tbl_flow_state_wb,tbl_host_stage_wb 2:tbl_flow_state "
            "3:tbl_flow_state,tbl_host_stage 4:tbl_host_stage");
}

TEST(PlanRegression, PipelineStagesWithinDefaultDepth) {
  for (const auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    Partitioner partitioner(*spec.fn, {});
    auto plan = partitioner.Run();
    ASSERT_TRUE(plan.ok()) << spec.name;
    EXPECT_LE(plan->pipeline_stages_used, SwitchConstraints{}.pipeline_depth)
        << spec.name;
    EXPECT_GT(plan->pipeline_stages_used, 0) << spec.name;
  }
}

}  // namespace
}  // namespace gallium::partition
