// Workload generator tests: TCP/UDP packetization, trace structure, DPI
// markers, and the statistical properties of the CONGA-style flow-size
// distributions (§6.3: "90% of the flows in both workloads contain less
// than ten packets"; the data-mining tail is longer).
#include <gtest/gtest.h>

#include <algorithm>

#include "workload/flow_dist.h"
#include "workload/packet_gen.h"

namespace gallium::workload {
namespace {

TEST(PacketGen, TcpFlowHasSynDataFin) {
  const net::FiveTuple flow{1, 2, 3, 4, net::kIpProtoTcp};
  const auto packets = TcpFlowPackets(flow, 3000, /*mss=*/1448);
  ASSERT_EQ(packets.size(), 2u + 3u);  // SYN + 3 data (1448+1448+104) + FIN
  EXPECT_EQ(packets.front().tcp().flags, net::kTcpSyn);
  EXPECT_TRUE(packets.back().tcp().flags & net::kTcpFin);
  uint64_t bytes = 0;
  for (const auto& pkt : packets) bytes += pkt.payload().size();
  EXPECT_EQ(bytes, 3000u);
  // Sequence numbers advance with the payload.
  EXPECT_EQ(packets[1].tcp().seq, 1u);
  EXPECT_EQ(packets[2].tcp().seq, 1u + 1448);
}

TEST(PacketGen, TcpZeroByteFlowIsControlOnly) {
  const auto packets = TcpFlowPackets({1, 2, 3, 4, net::kIpProtoTcp}, 0);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].tcp().flags, net::kTcpSyn);
  EXPECT_TRUE(packets[1].tcp().flags & net::kTcpFin);
}

TEST(PacketGen, UdpFlowSplitsAtMtu) {
  const auto packets =
      UdpFlowPackets({1, 2, 3, 4, net::kIpProtoUdp}, 3000, 1400);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].payload().size(), 1400u);
  EXPECT_EQ(packets[2].payload().size(), 200u);
}

TEST(PacketGen, MarkerIsEmbedded) {
  net::Packet pkt = net::MakeTcpPacket({1, 2, 3, 4, net::kIpProtoTcp},
                                       net::kTcpAck, 100);
  SetPayloadWithMarker(&pkt, "NEEDLE", 100);
  EXPECT_EQ(pkt.payload().size(), 100u);
  const std::string hay(pkt.payload().begin(), pkt.payload().end());
  EXPECT_NE(hay.find("NEEDLE"), std::string::npos);
}

TEST(PacketGen, RandomFlowUsesConfiguredSubnets) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    const net::FiveTuple flow = RandomFlow(rng);
    EXPECT_EQ(flow.saddr >> 16, (192u << 8) | 168u);
    EXPECT_EQ(flow.daddr >> 16, (172u << 8) | 16u);
    EXPECT_GE(flow.sport, 1024);
  }
}

TEST(Trace, InterleavesFlowsAndStampsMetadata) {
  Rng rng(22);
  TraceOptions options;
  options.num_flows = 5;
  options.min_flow_bytes = 5000;
  options.max_flow_bytes = 5000;
  options.ingress_port = 3;
  const Trace trace = MakeTrace(rng, options);
  EXPECT_EQ(trace.num_flows, 5);
  ASSERT_GT(trace.packets.size(), 10u);
  // First five packets are the five SYNs (round-robin interleave).
  std::set<uint64_t> first_flows;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(trace.packets[i].tcp().flags, net::kTcpSyn);
    first_flows.insert(trace.packets[i].five_tuple().Hash());
    EXPECT_EQ(trace.packets[i].ingress_port(), 3u);
  }
  EXPECT_EQ(first_flows.size(), 5u);
  // Packet ids are unique and ascending.
  for (size_t i = 1; i < trace.packets.size(); ++i) {
    EXPECT_EQ(trace.packets[i].id(), trace.packets[i - 1].id() + 1);
  }
}

TEST(Trace, MarkedFractionAppliesMarkers) {
  Rng rng(23);
  TraceOptions options;
  options.num_flows = 40;
  options.marked_fraction = 1.0;
  options.marker = "XYZZY";
  options.min_flow_bytes = 2000;
  options.max_flow_bytes = 2000;
  const Trace trace = MakeTrace(rng, options);
  int marked = 0;
  for (const auto& pkt : trace.packets) {
    if (pkt.payload().size() >= 5) {
      const std::string hay(pkt.payload().begin(), pkt.payload().end());
      marked += hay.find("XYZZY") != std::string::npos;
    }
  }
  EXPECT_GT(marked, 40) << "every data packet of every flow is marked";
}

// --- Flow-size distributions ---------------------------------------------------

TEST(FlowDist, NinetyPercentUnderTenPackets) {
  Rng rng(24);
  for (auto kind : {WorkloadKind::kEnterprise, WorkloadKind::kDataMining}) {
    const auto sizes = DrawFlowSizes(kind, 50000, rng);
    const int small = static_cast<int>(
        std::count_if(sizes.begin(), sizes.end(),
                      [](uint64_t s) { return s <= 10 * 1448; }));
    EXPECT_NEAR(small / 50000.0, 0.9, 0.02) << WorkloadName(kind);
  }
}

TEST(FlowDist, DataMiningTailIsLonger) {
  Rng rng(25);
  auto ent = DrawFlowSizes(WorkloadKind::kEnterprise, 50000, rng);
  auto dm = DrawFlowSizes(WorkloadKind::kDataMining, 50000, rng);
  const uint64_t ent_max = *std::max_element(ent.begin(), ent.end());
  const uint64_t dm_max = *std::max_element(dm.begin(), dm.end());
  EXPECT_GT(dm_max, ent_max);
  // Byte share of >10MB flows is larger for data mining.
  auto tail_share = [](const std::vector<uint64_t>& sizes) {
    double total = 0, tail = 0;
    for (uint64_t s : sizes) {
      total += static_cast<double>(s);
      if (s > 10000000) tail += static_cast<double>(s);
    }
    return tail / total;
  };
  EXPECT_GT(tail_share(dm), tail_share(ent));
}

TEST(FlowDist, SamplesWithinDeclaredSupport) {
  Rng rng(26);
  const auto dist = FlowSizeDistribution(WorkloadKind::kDataMining);
  for (int i = 0; i < 1000; ++i) {
    const double v = dist.Sample(rng);
    EXPECT_GE(v, dist.min());
    EXPECT_LE(v, dist.max());
  }
}

}  // namespace
}  // namespace gallium::workload
