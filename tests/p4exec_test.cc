// Artifact-level validation: the emitted P4 source is parsed back and
// EXECUTED, and must behave exactly like the reference middlebox — the
// strongest statement that Gallium's generated switch program is correct,
// not merely well-formed.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "mbox/middleboxes.h"
#include "p4/evaluator.h"
#include "p4/parser.h"
#include "runtime/interpreter.h"
#include "runtime/software_middlebox.h"
#include "switchsim/switch.h"
#include "workload/packet_gen.h"

#include "program_generator.h"

namespace gallium::p4::exec {
namespace {

constexpr int kServerPort = 192;

struct Artifact {
  std::unique_ptr<ir::Function> fn;
  std::string p4_source;
  std::unique_ptr<ParsedProgram> program;
};

Artifact CompileAndParse(Result<mbox::MiddleboxSpec> spec_result,
                         mbox::MiddleboxSpec* spec_out = nullptr) {
  EXPECT_TRUE(spec_result.ok());
  Artifact artifact;
  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec_result->fn);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  artifact.p4_source = compiled->p4_source;
  auto parsed = ParseP4(artifact.p4_source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  artifact.program = std::move(*parsed);
  artifact.fn = std::move(spec_result->fn);
  if (spec_out != nullptr) {
    spec_out->name = spec_result->name;
    spec_out->init = spec_result->init;
  }
  return artifact;
}

// Installs a map entry the way the control plane would: a hit action bound
// to the value words.
void InstallMapEntry(P4Evaluator& eval, const std::string& map,
                     std::vector<uint64_t> key, std::vector<uint64_t> value) {
  TableEntry entry;
  entry.key = std::move(key);
  entry.action = "act_" + map + "_hit";
  entry.args = std::move(value);
  ASSERT_TRUE(eval.InstallEntry("tbl_" + map, std::move(entry)).ok());
}

// --- Parser ---------------------------------------------------------------------

TEST(P4Parser, ParsesAllPaperMiddleboxArtifacts) {
  core::Compiler compiler;
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    auto compiled = compiler.Compile(*spec.fn);
    ASSERT_TRUE(compiled.ok()) << spec.name;
    auto parsed = ParseP4(compiled->p4_source);
    ASSERT_TRUE(parsed.ok()) << spec.name << ": "
                             << parsed.status().ToString();
    EXPECT_FALSE((*parsed)->ingress_apply.empty()) << spec.name;
    EXPECT_EQ((*parsed)->tables.size(), compiled->p4_program.tables.size())
        << spec.name;
    EXPECT_EQ((*parsed)->actions.size(), compiled->p4_program.actions.size())
        << spec.name;
    EXPECT_EQ((*parsed)->registers.size(),
              compiled->p4_program.registers.size())
        << spec.name;
  }
}

TEST(P4Parser, RecordsFieldWidths) {
  Artifact artifact = CompileAndParse(mbox::BuildMiniLb());
  const auto& bits = artifact.program->field_bits;
  EXPECT_EQ(bits.at("hdr.ipv4.srcAddr"), 32);
  EXPECT_EQ(bits.at("hdr.ethernet.dstAddr"), 48);
  EXPECT_EQ(bits.at("hdr.tcp.flags"), 8);
  EXPECT_EQ(bits.at("meta.needs_server"), 1);
}

TEST(P4Parser, ParsesTableShapes) {
  Artifact artifact = CompileAndParse(mbox::BuildMiniLb());
  const TableDecl* table = artifact.program->FindTable("tbl_map");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->key_fields, std::vector<std::string>{"meta.map_key0"});
  EXPECT_EQ(table->size, 65536);
  EXPECT_EQ(table->default_action, "act_map_miss");
  const ActionDecl* hit = artifact.program->FindAction("act_map_hit");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->params.size(), 1u);
  EXPECT_EQ(hit->params[0].second, 32);
}

TEST(P4Parser, RejectsGarbage) {
  EXPECT_FALSE(ParseP4("header { nope").ok());
  EXPECT_FALSE(ParseP4("control GalliumIngress() { action a( }").ok());
}

// --- Executing the artifact --------------------------------------------------------

TEST(P4Exec, MiniLbFastPathMatchesBaseline) {
  mbox::MiddleboxSpec init;
  Artifact artifact = CompileAndParse(mbox::BuildMiniLb(), &init);
  P4Evaluator eval(*artifact.program);

  // Reference behavior from the software middlebox.
  auto ref_spec = mbox::BuildMiniLb();
  ASSERT_TRUE(ref_spec.ok());
  runtime::SoftwareMiddlebox reference(*ref_spec);

  Rng rng(5150);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  // Establish the mapping in the reference...
  net::Packet warm = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
  warm.set_ingress_port(mbox::kPortInternal);
  ASSERT_TRUE(reference.Process(warm).status.ok());
  const uint32_t backend = warm.ip().daddr;
  // ...and install the same entry into the P4 table (key = hash & 0xFFFF).
  const uint64_t key = (flow.saddr ^ flow.daddr) & 0xFFFF;
  InstallMapEntry(eval, "map", {key}, {backend});

  // A follow-up data packet must ride the P4 fast path to the same backend.
  net::Packet data = net::MakeTcpPacket(flow, net::kTcpAck, 100);
  data.set_ingress_port(mbox::kPortInternal);
  auto result = eval.RunIngress(data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->dropped);
  EXPECT_FALSE(result->gallium_valid) << "fast path: no handoff header";
  EXPECT_EQ(result->egress_port, static_cast<int>(mbox::kPortExternal));
  EXPECT_EQ(data.ip().daddr, backend);
}

TEST(P4Exec, MiniLbMissForwardsToServerWithTransferHeader) {
  Artifact artifact = CompileAndParse(mbox::BuildMiniLb());
  P4Evaluator eval(*artifact.program);

  Rng rng(5151);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
  pkt.set_ingress_port(mbox::kPortInternal);
  auto result = eval.RunIngress(pkt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->egress_port, kServerPort);
  EXPECT_TRUE(result->gallium_valid);
  EXPECT_EQ(result->gallium_cond_bits & 1, 0u) << "map_hit bit must be 0";
  // The transferred hash32 must be the xor the program computes.
  const uint32_t expected_hash = flow.saddr ^ flow.daddr;
  ASSERT_FALSE(result->gallium_vars.empty());
  EXPECT_TRUE(std::find(result->gallium_vars.begin(),
                        result->gallium_vars.end(),
                        expected_hash) != result->gallium_vars.end())
      << "hash32 must ride the transfer header (Fig. 5)";
}

TEST(P4Exec, FirewallArtifactFiltersExactlyLikeReference) {
  // Build a firewall with rules, compile, parse, install the same rules
  // into the P4 tables, and compare verdicts on mixed traffic.
  Rng rng(5252);
  std::vector<net::FiveTuple> flows;
  std::vector<mbox::MapInitEntry> rules;
  for (int i = 0; i < 30; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    flows.push_back(flow);
    if (i % 2 == 0) {
      rules.push_back(mbox::MapInitEntry{
          {flow.saddr, flow.daddr, flow.sport, flow.dport, flow.protocol},
          {1}});
    }
  }

  Artifact artifact = CompileAndParse(mbox::BuildFirewall(rules, rules));
  P4Evaluator eval(*artifact.program);
  for (const auto& rule : rules) {
    InstallMapEntry(eval, "whitelist_out", rule.key, rule.value);
    InstallMapEntry(eval, "whitelist_in", rule.key, rule.value);
  }

  auto ref_spec = mbox::BuildFirewall(rules, rules);
  ASSERT_TRUE(ref_spec.ok());
  runtime::SoftwareMiddlebox reference(*ref_spec);

  int passed = 0, dropped = 0;
  for (const net::FiveTuple& flow : flows) {
    for (uint32_t ingress : {mbox::kPortInternal, mbox::kPortExternal}) {
      net::Packet p4_pkt = net::MakeTcpPacket(flow, net::kTcpAck, 40);
      p4_pkt.set_ingress_port(ingress);
      net::Packet ref_pkt = p4_pkt;

      auto p4_result = eval.RunIngress(p4_pkt);
      ASSERT_TRUE(p4_result.ok()) << p4_result.status().ToString();
      auto ref_result = reference.Process(ref_pkt);
      ASSERT_TRUE(ref_result.status.ok());

      const bool ref_dropped =
          ref_result.verdict.kind == runtime::Verdict::Kind::kDrop;
      ASSERT_EQ(p4_result->dropped, ref_dropped)
          << flow.ToString() << " ingress=" << ingress;
      if (!ref_dropped) {
        ASSERT_EQ(p4_result->egress_port,
                  static_cast<int>(ref_result.verdict.egress_port));
        ++passed;
      } else {
        ++dropped;
      }
    }
  }
  EXPECT_GT(passed, 0);
  EXPECT_GT(dropped, 0);
}

TEST(P4Exec, ProxyArtifactRewritesRedirectedPorts) {
  mbox::MiddleboxSpec init;
  Artifact artifact = CompileAndParse(mbox::BuildProxy({80, 8080}), &init);
  P4Evaluator eval(*artifact.program);
  for (const auto& [map_index, entries] : init.init.maps) {
    for (const auto& entry : entries) {
      InstallMapEntry(eval, "redirect_ports", entry.key, entry.value);
    }
  }

  // Redirected port.
  net::Packet http = net::MakeTcpPacket({1, 2, 9999, 80, net::kIpProtoTcp},
                                        net::kTcpSyn, 0);
  http.set_ingress_port(mbox::kPortInternal);
  auto r1 = eval.RunIngress(http);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(http.ip().daddr, mbox::kWebProxyIp);
  EXPECT_EQ(http.tcp().dport, mbox::kWebProxyPort);
  EXPECT_FALSE(r1->gallium_valid);

  // Unlisted port passes through untouched.
  net::Packet ssh = net::MakeTcpPacket({1, 2, 9999, 22, net::kIpProtoTcp},
                                       net::kTcpSyn, 0);
  ssh.set_ingress_port(mbox::kPortInternal);
  auto r2 = eval.RunIngress(ssh);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ssh.ip().daddr, 2u);
  EXPECT_EQ(ssh.tcp().dport, 22);
}

TEST(P4Exec, NatArtifactFastPathTranslates) {
  Artifact artifact = CompileAndParse(mbox::BuildMazuNat());
  P4Evaluator eval(*artifact.program);

  const net::FiveTuple flow{net::MakeIpv4(192, 168, 1, 5),
                            net::MakeIpv4(172, 16, 0, 7), 4455, 80,
                            net::kIpProtoTcp};
  const uint64_t ext_port = 1024;
  InstallMapEntry(eval, "nat_out", {flow.saddr, flow.sport}, {ext_port});
  InstallMapEntry(eval, "nat_in", {ext_port}, {flow.saddr, flow.sport});

  // Outbound data: rewritten to (NAT_IP, ext_port) entirely on the switch.
  net::Packet out = net::MakeTcpPacket(flow, net::kTcpAck, 100);
  out.set_ingress_port(mbox::kPortInternal);
  auto r1 = eval.RunIngress(out);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_FALSE(r1->gallium_valid);
  EXPECT_EQ(out.ip().saddr, mbox::kNatExternalIp);
  EXPECT_EQ(out.tcp().sport, ext_port);
  EXPECT_EQ(r1->egress_port, static_cast<int>(mbox::kPortExternal));

  // Inbound reply: rewritten back to the internal endpoint.
  net::Packet in = net::MakeTcpPacket({flow.daddr, mbox::kNatExternalIp,
                                       flow.dport,
                                       static_cast<uint16_t>(ext_port),
                                       net::kIpProtoTcp},
                                      net::kTcpAck, 100);
  in.set_ingress_port(mbox::kPortExternal);
  auto r2 = eval.RunIngress(in);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(in.ip().daddr, flow.saddr);
  EXPECT_EQ(in.tcp().dport, flow.sport);
  EXPECT_EQ(r2->egress_port, static_cast<int>(mbox::kPortInternal));

  // Unsolicited inbound traffic: dropped in the artifact too.
  net::Packet bad = net::MakeTcpPacket({9, mbox::kNatExternalIp, 1, 2,
                                        net::kIpProtoTcp},
                                       net::kTcpSyn, 0);
  bad.set_ingress_port(mbox::kPortExternal);
  auto r3 = eval.RunIngress(bad);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->dropped);
}

TEST(P4Exec, WriteBackShadowOverridesMainDuringWindow) {
  // Exercise the §4.3.3 mechanism inside the *artifact*: stage an entry in
  // the write-back table and flip the bit register; lookups must prefer it.
  Artifact artifact = CompileAndParse(mbox::BuildMiniLb());
  P4Evaluator eval(*artifact.program);

  const net::FiveTuple flow{10, 20, 30, 40, net::kIpProtoTcp};
  const uint64_t key = (flow.saddr ^ flow.daddr) & 0xFFFF;
  InstallMapEntry(eval, "map", {key}, {111});

  // Stage 222 in the shadow and flip the bit.
  TableEntry staged;
  staged.key = {key};
  staged.action = "act_map_wb_hit";
  staged.args = {222, 0};  // value, deleted=0
  ASSERT_TRUE(eval.InstallEntry("tbl_map_wb", std::move(staged)).ok());
  ASSERT_TRUE(eval.SetRegister("wb_active_map", 0, 1).ok());

  net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpAck, 10);
  pkt.set_ingress_port(mbox::kPortInternal);
  auto result = eval.RunIngress(pkt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(pkt.ip().daddr, 222u) << "write-back entry must win";

  // Bit off: the main table value applies again.
  ASSERT_TRUE(eval.SetRegister("wb_active_map", 0, 0).ok());
  net::Packet pkt2 = net::MakeTcpPacket(flow, net::kTcpAck, 10);
  pkt2.set_ingress_port(mbox::kPortInternal);
  ASSERT_TRUE(eval.RunIngress(pkt2).ok());
  EXPECT_EQ(pkt2.ip().daddr, 111u);
}

// Sweep: for every middlebox whose fast path is fully offloaded, random
// established-flow packets through the P4 artifact match the baseline.
TEST(P4Exec, RandomTrafficThroughFirewallArtifact) {
  Rng rng(5353);
  std::vector<mbox::MapInitEntry> rules;
  std::vector<net::FiveTuple> allowed;
  for (int i = 0; i < 50; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    allowed.push_back(flow);
    rules.push_back(mbox::MapInitEntry{
        {flow.saddr, flow.daddr, flow.sport, flow.dport, flow.protocol},
        {1}});
  }
  Artifact artifact = CompileAndParse(mbox::BuildFirewall(rules));
  P4Evaluator eval(*artifact.program);
  for (const auto& rule : rules) {
    InstallMapEntry(eval, "whitelist_out", rule.key, rule.value);
  }

  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    const bool should_pass = rng.NextBool(0.5);
    const net::FiveTuple flow =
        should_pass ? allowed[rng.NextBounded(allowed.size())]
                    : workload::RandomFlow(rng);
    net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpAck, 64);
    pkt.set_ingress_port(mbox::kPortInternal);
    auto result = eval.RunIngress(pkt);
    ASSERT_TRUE(result.ok());
    const bool in_rules =
        std::find_if(rules.begin(), rules.end(), [&](const auto& r) {
          return r.key[0] == flow.saddr && r.key[1] == flow.daddr &&
                 r.key[2] == flow.sport && r.key[3] == flow.dport;
        }) != rules.end();
    ASSERT_EQ(!result->dropped, in_rules) << flow.ToString();
    hits += !result->dropped;
  }
  EXPECT_GT(hits, 50);
}


// Generative cross-validation of the code generator: random programs are
// compiled to P4 text, re-parsed, and executed; the artifact's pre-pass
// behavior (fast-path verdicts, header rewrites, handoff decisions) must
// match the reference interpreter walking the same plan over the same
// (empty-tables) switch state.
class P4CodegenFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(P4CodegenFuzz, ArtifactMatchesReferencePrePass) {
  gallium::testing::ProgramGenerator gen(GetParam());
  auto spec = gen.Generate();
  ASSERT_TRUE(spec.ok());

  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec->fn);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto parsed = ParseP4(compiled->p4_source);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString()
                           << "\nseed=" << GetParam();

  // Reference switch with the same (empty-map) state.
  auto device = switchsim::Switch::Create(*spec->fn, compiled->plan, {});
  ASSERT_TRUE(device.ok());
  for (const auto& [vec, values] : spec->init.vectors) {
    ASSERT_TRUE((*device)->PopulateVector(vec, values).ok());
  }
  runtime::Interpreter interp(*spec->fn);

  // Artifact evaluator with mirrored initial state.
  P4Evaluator eval(**parsed);
  for (ir::StateIndex g = 0; g < spec->fn->globals().size(); ++g) {
    const std::string reg = "reg_" + spec->fn->globals()[g].name;
    if ((*parsed)->FindRegister(reg) != nullptr) {
      ASSERT_TRUE(eval.SetRegister(reg, 0, spec->fn->globals()[g].init).ok());
    }
  }
  for (const auto& [vec, values] : spec->init.vectors) {
    const std::string name = spec->fn->vectors()[vec].name;
    if ((*parsed)->FindTable("tbl_" + name) == nullptr) continue;
    for (size_t i = 0; i < values.size(); ++i) {
      TableEntry entry;
      entry.key = {i};
      entry.action = "act_" + name + "_at";
      entry.args = {values[i]};
      ASSERT_TRUE(eval.InstallEntry("tbl_" + name, std::move(entry)).ok());
    }
    if ((*parsed)->FindRegister("reg_" + name + "_size") != nullptr) {
      ASSERT_TRUE(
          eval.SetRegister("reg_" + name + "_size", 0, values.size()).ok());
    }
  }

  Rng traffic(GetParam() * 13 + 1);
  for (int i = 0; i < 40; ++i) {
    net::Packet ref_pkt = net::MakeTcpPacket(
        workload::RandomFlow(traffic),
        static_cast<uint8_t>(traffic.NextBounded(32)),
        traffic.NextBounded(600));
    ref_pkt.set_ingress_port(mbox::kPortInternal);
    net::Packet p4_pkt = ref_pkt;

    auto ref = interp.RunPartition(ref_pkt, (*device)->data_plane(), 0,
                                   compiled->plan, partition::Part::kPre,
                                   nullptr, nullptr,
                                   &compiled->plan.to_server);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();

    auto art = eval.RunIngress(p4_pkt);
    ASSERT_TRUE(art.ok()) << art.status().ToString()
                          << "\nseed=" << GetParam();

    const bool artifact_handoff = art->egress_port == kServerPort;
    ASSERT_EQ(ref.needs_server, artifact_handoff)
        << "handoff decision diverged, seed=" << GetParam()
        << " pkt=" << ref_pkt.ToString();
    if (ref.needs_server) {
      EXPECT_TRUE(art->gallium_valid) << "seed=" << GetParam();
      continue;  // slow-path contents validated by the middlebox tests
    }

    // Fast path: verdicts and rewrites must be identical.
    const bool ref_dropped =
        ref.verdict.kind == runtime::Verdict::Kind::kDrop;
    ASSERT_EQ(ref_dropped, art->dropped) << "seed=" << GetParam();
    if (!ref_dropped) {
      ASSERT_EQ(static_cast<int>(ref.verdict.egress_port), art->egress_port)
          << "seed=" << GetParam();
      EXPECT_EQ(ref_pkt.ip().saddr, p4_pkt.ip().saddr);
      EXPECT_EQ(ref_pkt.ip().daddr, p4_pkt.ip().daddr);
      EXPECT_EQ(ref_pkt.ip().ttl, p4_pkt.ip().ttl);
      EXPECT_EQ(ref_pkt.sport(), p4_pkt.sport());
      EXPECT_EQ(ref_pkt.dport(), p4_pkt.dport());
      EXPECT_EQ(ref_pkt.eth().dst.ToUint64(), p4_pkt.eth().dst.ToUint64());
      if (ref_pkt.has_tcp()) {
        EXPECT_EQ(ref_pkt.tcp().seq, p4_pkt.tcp().seq);
        EXPECT_EQ(ref_pkt.tcp().flags, p4_pkt.tcp().flags);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, P4CodegenFuzz,
                         ::testing::Range<uint64_t>(200, 240));

}  // namespace
}  // namespace gallium::p4::exec
