// Tests for the §7 LPM extension: host/table longest-prefix semantics, the
// IP router middlebox end to end (software, offloaded, and the executed P4
// artifact with its native lpm match kind).
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "frontend/middlebox_builder.h"
#include "ir/builder.h"
#include "mbox/middleboxes.h"
#include "p4/evaluator.h"
#include "p4/parser.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "switchsim/table.h"
#include "workload/packet_gen.h"

namespace gallium {
namespace {

std::vector<mbox::RouteEntry> TestRoutes() {
  return {
      // Default route: everything -> port 9 via gateway.
      {net::MakeIpv4(0, 0, 0, 0), 0, 9, 0x0000000000000009ull},
      // 10.0.0.0/8 -> port 1.
      {net::MakeIpv4(10, 0, 0, 0), 8, 1, 0x0000000000000001ull},
      // 10.1.0.0/16 -> port 2 (more specific).
      {net::MakeIpv4(10, 1, 0, 0), 16, 2, 0x0000000000000002ull},
      // 10.1.2.0/24 -> port 3 (most specific).
      {net::MakeIpv4(10, 1, 2, 0), 24, 3, 0x0000000000000003ull},
  };
}

net::Packet To(net::Ipv4Addr daddr, uint8_t ttl = 64) {
  net::Packet pkt = net::MakeTcpPacket(
      {net::MakeIpv4(192, 168, 0, 1), daddr, 1000, 80, net::kIpProtoTcp},
      net::kTcpAck, 64);
  pkt.ip().ttl = ttl;
  pkt.set_ingress_port(0);
  return pkt;
}

// --- Host-store semantics -----------------------------------------------------

TEST(LpmHostStore, LongestPrefixWins) {
  auto spec = mbox::BuildIpRouter(TestRoutes());
  ASSERT_TRUE(spec.ok());
  runtime::SoftwareMiddlebox mbx(*spec);

  struct Case {
    net::Ipv4Addr daddr;
    uint32_t port;
  };
  const Case cases[] = {
      {net::MakeIpv4(10, 1, 2, 99), 3},   // /24
      {net::MakeIpv4(10, 1, 9, 1), 2},    // /16
      {net::MakeIpv4(10, 200, 0, 1), 1},  // /8
      {net::MakeIpv4(8, 8, 8, 8), 9},     // default
  };
  for (const Case& c : cases) {
    net::Packet pkt = To(c.daddr);
    auto out = mbx.Process(pkt);
    ASSERT_TRUE(out.status.ok());
    ASSERT_EQ(out.verdict.kind, runtime::Verdict::Kind::kSend)
        << net::Ipv4ToString(c.daddr);
    EXPECT_EQ(out.verdict.egress_port, c.port) << net::Ipv4ToString(c.daddr);
    EXPECT_EQ(pkt.ip().ttl, 63) << "TTL decremented";
    EXPECT_EQ(pkt.eth().dst.ToUint64(), static_cast<uint64_t>(c.port))
        << "next-hop MAC rewritten";
  }
}

TEST(LpmHostStore, NoRouteDropsWhenNoDefault) {
  auto spec = mbox::BuildIpRouter(
      {{net::MakeIpv4(10, 0, 0, 0), 8, 1, 0x01}});
  ASSERT_TRUE(spec.ok());
  runtime::SoftwareMiddlebox mbx(*spec);
  net::Packet pkt = To(net::MakeIpv4(8, 8, 8, 8));
  EXPECT_EQ(mbx.Process(pkt).verdict.kind, runtime::Verdict::Kind::kDrop);
}

TEST(LpmHostStore, TtlExpiryDrops) {
  auto spec = mbox::BuildIpRouter(TestRoutes());
  ASSERT_TRUE(spec.ok());
  runtime::SoftwareMiddlebox mbx(*spec);
  net::Packet pkt = To(net::MakeIpv4(10, 1, 2, 3), /*ttl=*/1);
  EXPECT_EQ(mbx.Process(pkt).verdict.kind, runtime::Verdict::Kind::kDrop);
}

// --- Verifier guard ------------------------------------------------------------

TEST(Lpm, DataPathInsertsRejected) {
  frontend::MiddleboxBuilder mb("bad_lpm");
  ir::MapDecl decl;
  decl.name = "routes";
  decl.key_widths = {ir::Width::kU32};
  decl.value_widths = {ir::Width::kU32};
  decl.max_entries = 16;
  decl.match_kind = ir::MapDecl::MatchKind::kLpm;
  const ir::StateIndex routes = mb.fn().AddMap(std::move(decl));
  auto& b = mb.b();
  const ir::Reg daddr = b.HeaderRead(ir::HeaderField::kIpDst);
  const ir::Value key[] = {ir::R(daddr)};
  const ir::Value value[] = {ir::Imm(1)};
  b.MapPut(routes, key, value);  // illegal: LPM maps are config-only
  b.Send(ir::Imm(1));
  auto fn = std::move(mb).Finish();
  EXPECT_FALSE(fn.ok());
  EXPECT_NE(fn.status().message().find("LPM"), std::string::npos);
}

// --- Switch table -------------------------------------------------------------

TEST(LpmSwitchTable, MatchesLongestAcrossWriteBackWindow) {
  switchsim::ExactMatchTable table("routes", 1, 1, 64,
                                   switchsim::ExactMatchTable::MatchKind::kLpm);
  // /8 in main, /24 staged.
  ASSERT_TRUE(table.InsertMain({net::MakeIpv4(10, 0, 0, 0), 8}, {1}).ok());
  ASSERT_TRUE(
      table.Stage({net::MakeIpv4(10, 1, 2, 0), 24},
                  switchsim::TableValue{3})
          .ok());

  switchsim::TableValue value;
  // Before the flip only the /8 is visible.
  EXPECT_TRUE(table.Lookup({net::MakeIpv4(10, 1, 2, 9)}, &value));
  EXPECT_EQ(value[0], 1u);
  // After the flip the staged, longer prefix wins.
  table.SetUseWriteBack(true);
  EXPECT_TRUE(table.Lookup({net::MakeIpv4(10, 1, 2, 9)}, &value));
  EXPECT_EQ(value[0], 3u);
  // A staged deletion falls through to the shorter prefix.
  ASSERT_TRUE(table.Stage({net::MakeIpv4(10, 1, 2, 0), 24}, std::nullopt).ok());
  EXPECT_TRUE(table.Lookup({net::MakeIpv4(10, 1, 2, 9)}, &value));
  EXPECT_EQ(value[0], 1u);
}

// --- Full pipeline --------------------------------------------------------------

TEST(LpmRouter, FullyOffloadedAndEquivalent) {
  auto spec_sw = mbox::BuildIpRouter(TestRoutes());
  auto spec_off = mbox::BuildIpRouter(TestRoutes());
  ASSERT_TRUE(spec_sw.ok() && spec_off.ok());

  // The router's plan: everything on the switch.
  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec_off->fn);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->plan.num_non_offloaded, 0)
      << compiled->plan.Summary(*spec_off->fn);
  EXPECT_NE(compiled->p4_source.find(": lpm"), std::string::npos)
      << "the route table must use P4's native lpm match kind";

  runtime::SoftwareMiddlebox software(*spec_sw);
  auto offloaded = runtime::OffloadedMiddlebox::Create(*spec_off);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  Rng rng(808);
  for (int i = 0; i < 200; ++i) {
    const net::Ipv4Addr daddr =
        rng.NextBool(0.5) ? net::MakeIpv4(10, rng.NextBounded(256),
                                          rng.NextBounded(256),
                                          rng.NextBounded(256))
                          : rng.NextU32();
    net::Packet pkt = To(daddr, static_cast<uint8_t>(1 + rng.NextBounded(64)));
    net::Packet sw_pkt = pkt;
    auto sw_out = software.Process(sw_pkt);
    auto off_out = (*offloaded)->Process(pkt);
    ASSERT_TRUE(sw_out.status.ok() && off_out.status.ok());
    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << net::Ipv4ToString(daddr);
    if (sw_out.verdict.kind == runtime::Verdict::Kind::kSend) {
      ASSERT_EQ(sw_out.verdict.egress_port, off_out.verdict.egress_port);
      ASSERT_EQ(sw_pkt.eth().dst.ToUint64(),
                off_out.out_packet.eth().dst.ToUint64());
      EXPECT_TRUE(off_out.fast_path);
    }
  }
  EXPECT_DOUBLE_EQ((*offloaded)->FastPathFraction(), 1.0);
}

TEST(LpmRouter, ExecutedP4ArtifactMatches) {
  auto spec = mbox::BuildIpRouter(TestRoutes());
  ASSERT_TRUE(spec.ok());
  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec->fn);
  ASSERT_TRUE(compiled.ok());
  auto parsed = p4::exec::ParseP4(compiled->p4_source);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* table = (*parsed)->FindTable("tbl_routes");
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->lpm);

  p4::exec::P4Evaluator eval(**parsed);
  for (const mbox::RouteEntry& route : TestRoutes()) {
    p4::exec::TableEntry entry;
    entry.key = {route.prefix, route.prefix_len};
    entry.action = "act_routes_hit";
    entry.args = {route.egress_port, route.next_hop_mac};
    ASSERT_TRUE(eval.InstallEntry("tbl_routes", std::move(entry)).ok());
  }

  auto spec_ref = mbox::BuildIpRouter(TestRoutes());
  ASSERT_TRUE(spec_ref.ok());
  runtime::SoftwareMiddlebox reference(*spec_ref);

  Rng rng(809);
  for (int i = 0; i < 100; ++i) {
    const net::Ipv4Addr daddr =
        rng.NextBool(0.6) ? net::MakeIpv4(10, rng.NextBounded(256),
                                          rng.NextBounded(256),
                                          rng.NextBounded(256))
                          : rng.NextU32();
    net::Packet p4_pkt = To(daddr);
    net::Packet ref_pkt = p4_pkt;
    auto p4_result = eval.RunIngress(p4_pkt);
    ASSERT_TRUE(p4_result.ok()) << p4_result.status().ToString();
    auto ref_result = reference.Process(ref_pkt);
    ASSERT_TRUE(ref_result.status.ok());

    const bool ref_dropped =
        ref_result.verdict.kind == runtime::Verdict::Kind::kDrop;
    ASSERT_EQ(p4_result->dropped, ref_dropped) << net::Ipv4ToString(daddr);
    if (!ref_dropped) {
      ASSERT_EQ(p4_result->egress_port,
                static_cast<int>(ref_result.verdict.egress_port));
      ASSERT_EQ(p4_pkt.eth().dst.ToUint64(), ref_pkt.eth().dst.ToUint64());
      ASSERT_EQ(p4_pkt.ip().ttl, ref_pkt.ip().ttl);
    }
  }
}

}  // namespace
}  // namespace gallium
