// IR optimization pass tests: dead-code elimination, constant folding, and
// the semantic-preservation property under fuzz.
#include <gtest/gtest.h>

#include "ir/passes.h"
#include "ir/verifier.h"
#include "runtime/software_middlebox.h"
#include "workload/packet_gen.h"

#include "program_generator.h"

namespace gallium::ir {
namespace {

using frontend::MiddleboxBuilder;

TEST(DeadCodeElimination, RemovesUnusedPureChains) {
  MiddleboxBuilder mb("dead");
  auto& b = mb.b();
  const Reg used = b.HeaderRead(HeaderField::kIpSrc, "used");
  const Reg dead1 = b.HeaderRead(HeaderField::kIpDst, "dead1");
  const Reg dead2 = b.Alu(AluOp::kAdd, R(dead1), Imm(1), "dead2");
  (void)dead2;
  b.HeaderWrite(HeaderField::kIpDst, R(used));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  // dead2 is unused; removing it orphans dead1 — both must go.
  EXPECT_EQ(EliminateDeadCode(fn->get()), 2);
  EXPECT_TRUE(VerifyFunction(**fn).ok());
  int remaining = 0;
  for (const auto& bb : (*fn)->blocks()) remaining += bb.insts.size();
  EXPECT_EQ(remaining, 4);  // read, write, send, ret
}

TEST(DeadCodeElimination, KeepsEffectfulStatements) {
  MiddleboxBuilder mb("effects");
  auto map = mb.DeclareMap("m", {Width::kU16}, {Width::kU32}, 16);
  auto& b = mb.b();
  const Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  map.Insert({R(sport)}, {Imm(1)});  // effectful: must stay
  const auto lookup = map.Find({R(sport)});
  (void)lookup;                       // pure and unused: must go
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  EXPECT_EQ(EliminateDeadCode(fn->get()), 1);
  bool has_insert = false, has_find = false;
  for (const auto& bb : (*fn)->blocks()) {
    for (const auto& inst : bb.insts) {
      has_insert |= inst.op == Opcode::kMapPut;
      has_find |= inst.op == Opcode::kMapGet;
    }
  }
  EXPECT_TRUE(has_insert);
  EXPECT_FALSE(has_find);
}

TEST(DeadCodeElimination, KeepsBranchConditions) {
  MiddleboxBuilder mb("branches");
  auto& b = mb.b();
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  mb.IfElse(
      R(c), [&] { b.Send(Imm(1)); b.Ret(); },
      [&] { b.Drop(); b.Ret(); });
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(EliminateDeadCode(fn->get()), 0)
      << "the condition read feeds the branch";
}

TEST(ConstantFolding, FoldsImmediateAlu) {
  MiddleboxBuilder mb("fold");
  auto& b = mb.b();
  const Reg k = b.Alu(AluOp::kAdd, Imm(40), Imm(2), Width::kU32, "k");
  b.HeaderWrite(HeaderField::kIpDst, R(k));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  EXPECT_GE(FoldConstants(fn->get()), 1);
  const auto& first = (*fn)->block(0).insts[0];
  EXPECT_EQ(first.op, Opcode::kAssign);
  EXPECT_EQ(first.args[0].imm, 42u);
  // Propagation rewrote the header write to use the immediate.
  const auto& write = (*fn)->block(0).insts[1];
  EXPECT_TRUE(write.args[0].is_imm());
  EXPECT_EQ(write.args[0].imm, 42u);
}

TEST(ConstantFolding, FoldsAtDestinationWidth) {
  MiddleboxBuilder mb("width");
  auto& b = mb.b();
  const Reg k = b.Alu(AluOp::kAdd, Imm(0xFFFF), Imm(1), Width::kU16, "k");
  b.HeaderWrite(HeaderField::kDstPort, R(k));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  FoldConstants(fn->get());
  EXPECT_EQ((*fn)->block(0).insts[0].args[0].imm, 0u) << "u16 wraparound";
}

TEST(ConstantFolding, SkipsMultiplyDefinedRegisters) {
  // x is assigned an immediate on both branch arms with different values;
  // propagation must not pick either.
  Function fn("multi");
  const int entry = fn.AddBlock("entry");
  const int t = fn.AddBlock("t");
  const int e = fn.AddBlock("e");
  const int join = fn.AddBlock("join");
  fn.set_entry_block(entry);
  IrBuilder b(&fn);
  b.SetInsertPoint(entry);
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  const Reg x = fn.AddReg(Width::kU32, "x");
  b.Branch(R(c), t, e);
  for (const auto& [block, value] : {std::pair{t, 1u}, std::pair{e, 2u}}) {
    b.SetInsertPoint(block);
    Instruction assign;
    assign.op = Opcode::kAssign;
    assign.id = fn.NextInstId();
    assign.dsts = {x};
    assign.args = {Imm(value)};
    fn.block(block).insts.push_back(assign);
    b.Jump(join);
  }
  b.SetInsertPoint(join);
  b.HeaderWrite(HeaderField::kIpDst, R(x));
  b.Send(Imm(1));
  b.Ret();
  ASSERT_TRUE(VerifyFunction(fn).ok());

  FoldConstants(&fn);
  const auto& write = fn.block(join).insts[0];
  EXPECT_TRUE(write.args[0].is_reg()) << "x has two defs; no propagation";
}

// Semantic preservation under fuzz: optimized and unoptimized programs are
// behaviorally identical on random traffic.
class PassFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PassFuzz, OptimizationPreservesSemantics) {
  gallium::testing::ProgramGenerator gen_a(GetParam());
  gallium::testing::ProgramGenerator gen_b(GetParam());
  auto original = gen_a.Generate();
  auto optimized = gen_b.Generate();
  ASSERT_TRUE(original.ok() && optimized.ok());

  const int simplifications = OptimizeFunction(optimized->fn.get());
  ASSERT_TRUE(VerifyFunction(*optimized->fn).ok())
      << "optimization broke the IR, seed " << GetParam();

  runtime::SoftwareMiddlebox ref(*original);
  runtime::SoftwareMiddlebox opt(*optimized);

  Rng traffic(GetParam() * 3 + 11);
  workload::TraceOptions options;
  options.num_flows = 20;
  options.min_flow_bytes = 100;
  options.max_flow_bytes = 5000;
  const workload::Trace trace = workload::MakeTrace(traffic, options);

  for (const net::Packet& pkt : trace.packets) {
    net::Packet a = pkt, b = pkt;
    auto ra = ref.Process(a);
    auto rb = opt.Process(b);
    ASSERT_TRUE(ra.status.ok() && rb.status.ok());
    ASSERT_EQ(ra.verdict.kind, rb.verdict.kind)
        << "seed=" << GetParam() << " simplified=" << simplifications;
    if (ra.verdict.kind == runtime::Verdict::Kind::kSend) {
      ASSERT_EQ(ra.verdict.egress_port, rb.verdict.egress_port);
      ASSERT_EQ(a.ip().daddr, b.ip().daddr);
      ASSERT_EQ(a.sport(), b.sport());
      ASSERT_EQ(a.dport(), b.dport());
    }
  }

  // Final state must match too.
  for (ir::StateIndex m = 0; m < original->fn->maps().size(); ++m) {
    EXPECT_EQ(ref.state().map_contents(m), opt.state().map_contents(m))
        << "map " << m << " diverged, seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, PassFuzz, ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace gallium::ir
