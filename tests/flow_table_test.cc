// Differential property tests for the flat cuckoo flow table: every
// operation sequence must agree with a std::map reference model, including
// sequences that straddle incremental resizes, exhaust kick chains into the
// stash, and age entries through budgeted sweeps. The table's whole value
// proposition is "std::map semantics at 100x the speed", so the reference
// model is the specification.
#include "state/flow_table.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "util/hash.h"
#include "util/rng.h"

namespace gallium::state {
namespace {

using Key = std::vector<uint64_t>;
using Value = std::vector<uint64_t>;

Value LookupOrEmpty(const FlowTable& table, const Key& key) {
  Value out(table.value_words());
  if (!table.Lookup(key.data(), out.data())) return {};
  return out;
}

// Full-state comparison: every reference entry is in the table with the
// right value, and the table holds nothing else.
void ExpectSameContents(const FlowTable& table,
                        const std::map<Key, Value>& reference) {
  ASSERT_EQ(table.size(), reference.size());
  for (const auto& [key, value] : reference) {
    Value got(table.value_words());
    ASSERT_TRUE(table.Lookup(key.data(), got.data()))
        << "key missing from flow table";
    ASSERT_EQ(got, value);
  }
  size_t visited = 0;
  table.ForEach([&](const uint64_t* key, const uint64_t* value) {
    ++visited;
    const Key k(key, key + table.key_words());
    const auto it = reference.find(k);
    ASSERT_NE(it, reference.end()) << "flow table holds an unexpected key";
    ASSERT_EQ(Value(value, value + table.value_words()), it->second);
  });
  ASSERT_EQ(visited, reference.size());
}

TEST(FlowTableTest, BasicInsertLookupErase) {
  FlowTable::Config config;
  config.key_words = 2;
  config.value_words = 1;
  FlowTable table(config);

  const Key k1 = {1, 2};
  const Key k2 = {1, 3};
  const Value v1 = {42};
  const Value v2 = {43};

  EXPECT_FALSE(table.Contains(k1.data()));
  table.Upsert(k1.data(), v1.data());
  EXPECT_TRUE(table.Contains(k1.data()));
  EXPECT_FALSE(table.Contains(k2.data()));
  EXPECT_EQ(LookupOrEmpty(table, k1), v1);
  EXPECT_EQ(table.size(), 1u);

  table.Upsert(k1.data(), v2.data());  // overwrite, not a second entry
  EXPECT_EQ(LookupOrEmpty(table, k1), v2);
  EXPECT_EQ(table.size(), 1u);

  EXPECT_TRUE(table.Erase(k1.data()));
  EXPECT_FALSE(table.Erase(k1.data()));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Contains(k1.data()));
}

TEST(FlowTableTest, LookupNeverMutatesConstTable) {
  FlowTable::Config config;
  config.initial_capacity = 4;
  FlowTable table(config);
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t key = i;
    const uint64_t value = i * 3;
    table.Upsert(&key, &value);
  }
  const FlowTable& view = table;
  const bool was_resizing = view.resizing();
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t key = i;
    uint64_t out = 0;
    EXPECT_TRUE(view.Lookup(&key, &out));
    EXPECT_EQ(out, i * 3);
  }
  // A parked drain stays parked across const lookups.
  EXPECT_EQ(view.resizing(), was_resizing);
}

// The core property: a long random op sequence against a tiny initial
// capacity (so the table is mid-resize for much of the run) matches the
// reference model exactly, at checkpoints and at the end.
TEST(FlowTableTest, DifferentialRandomOpsAcrossResizes) {
  FlowTable::Config config;
  config.key_words = 2;
  config.value_words = 2;
  config.initial_capacity = 4;       // first grow after a handful of inserts
  config.migrate_buckets_per_op = 1; // stretch resizes across many ops
  FlowTable table(config);
  std::map<Key, Value> reference;

  Rng rng(1234);
  const uint64_t keyspace = 5000;
  for (int op = 0; op < 200000; ++op) {
    const Key key = {rng.NextBounded(keyspace), rng.NextBounded(7)};
    const uint64_t roll = rng.NextBounded(100);
    if (roll < 55) {
      const Value value = {rng.NextU64(), static_cast<uint64_t>(op)};
      table.Upsert(key.data(), value.data());
      reference[key] = value;
    } else if (roll < 80) {
      EXPECT_EQ(table.Erase(key.data()), reference.erase(key) > 0);
    } else {
      const auto it = reference.find(key);
      Value got(table.value_words());
      const bool hit = table.Lookup(key.data(), got.data());
      ASSERT_EQ(hit, it != reference.end()) << "presence diverged at op " << op;
      if (hit) ASSERT_EQ(got, it->second);
    }
    ASSERT_EQ(table.size(), reference.size());
    if (op % 20000 == 19999) ExpectSameContents(table, reference);
  }
  ExpectSameContents(table, reference);
  EXPECT_GT(table.stats().resizes, 0u);
  EXPECT_GT(table.stats().migrated_buckets, 0u);
}

// Degenerate kick bound: nearly every displaced insert lands in the stash,
// which forces the stash-probing lookup path and the post-resize drain to
// carry the correctness load.
TEST(FlowTableTest, DifferentialWithTinyKickChains) {
  FlowTable::Config config;
  config.key_words = 1;
  config.value_words = 1;
  config.initial_capacity = 4;
  config.max_kick_chain = 1;
  FlowTable table(config);
  std::map<Key, Value> reference;

  Rng rng(77);
  for (int op = 0; op < 50000; ++op) {
    const Key key = {rng.NextBounded(600)};
    if (rng.NextBool(0.65)) {
      const Value value = {rng.NextU64()};
      table.Upsert(key.data(), value.data());
      reference[key] = value;
    } else {
      EXPECT_EQ(table.Erase(key.data()), reference.erase(key) > 0);
    }
    ASSERT_EQ(table.size(), reference.size());
  }
  ExpectSameContents(table, reference);
  EXPECT_GT(table.stats().stash_spills, 0u);
}

TEST(FlowTableTest, SweepAllExpiredRemovesExactlyThePredicatedEntries) {
  FlowTable::Config config;
  config.key_words = 1;
  config.value_words = 1;
  FlowTable table(config);
  std::map<Key, Value> reference;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Value value = {i % 3};  // expire the i%3==0 third
    table.Upsert(&i, value.data());
    reference[{i}] = value;
  }

  std::vector<Key> expired;
  const uint64_t count = table.SweepAllExpired(
      [](const uint64_t*, const uint64_t* value) { return value[0] == 0; },
      [&](const uint64_t* key, const uint64_t*) {
        expired.push_back({key[0]});
      });
  EXPECT_EQ(count, expired.size());
  for (const Key& key : expired) {
    EXPECT_EQ(reference.at(key)[0], 0u);
    reference.erase(key);
  }
  ExpectSameContents(table, reference);
  for (const auto& [key, value] : reference) EXPECT_NE(value[0], 0u);
}

// Budgeted sweeps with churn in between: aging is eventual, so after enough
// budgeted calls with no further inserts every expired entry must be gone —
// even though resizes invalidated the cursor along the way.
TEST(FlowTableTest, BudgetedSweepsConvergeUnderChurn) {
  FlowTable::Config config;
  config.key_words = 1;
  config.value_words = 1;
  config.initial_capacity = 8;
  FlowTable table(config);
  std::map<Key, Value> reference;
  Rng rng(99);

  FlowTable::SweepCursor cursor;
  auto pred = [](const uint64_t*, const uint64_t* value) {
    return value[0] == 1;  // value word 1 = expired
  };
  uint64_t swept_total = 0;
  for (int round = 0; round < 400; ++round) {
    for (int i = 0; i < 16; ++i) {
      const Key key = {rng.NextBounded(4096)};
      const Value value = {rng.NextBounded(2)};
      table.Upsert(key.data(), value.data());
      reference[key] = value;
    }
    swept_total += table.SweepExpired(
        &cursor, /*max_slots=*/32, pred,
        [&](const uint64_t* key, const uint64_t*) {
          ASSERT_EQ(reference.erase({key[0]}), 1u);
        });
    ASSERT_EQ(table.size(), reference.size());
  }
  // Quiesce: no more inserts, sweep until a full extra pass finds nothing.
  for (int round = 0; round < 100000 && table.size() > 0; ++round) {
    const uint64_t n = table.SweepExpired(
        &cursor, /*max_slots=*/64, pred,
        [&](const uint64_t* key, const uint64_t*) {
          ASSERT_EQ(reference.erase({key[0]}), 1u);
        });
    swept_total += n;
    if (cursor.next_slot == 0 &&
        std::none_of(reference.begin(), reference.end(),
                     [](const auto& kv) { return kv.second[0] == 1; })) {
      break;
    }
  }
  EXPECT_GT(swept_total, 0u);
  for (const auto& [key, value] : reference) EXPECT_EQ(value[0], 0u);
  ExpectSameContents(table, reference);
}

TEST(FlowTableTest, ClearEmptiesAndTableRemainsUsable) {
  FlowTable::Config config;
  config.initial_capacity = 4;
  FlowTable table(config);
  for (uint64_t i = 0; i < 500; ++i) table.Upsert(&i, &i);
  EXPECT_EQ(table.size(), 500u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.resizing());
  for (uint64_t i = 0; i < 500; ++i) EXPECT_FALSE(table.Contains(&i));
  const uint64_t key = 7, value = 9;
  table.Upsert(&key, &value);
  EXPECT_EQ(table.size(), 1u);
  uint64_t out = 0;
  EXPECT_TRUE(table.Lookup(&key, &out));
  EXPECT_EQ(out, 9u);
}

TEST(FlowTableTest, ProbeSlotsIsSmallAndBounded) {
  FlowTable::Config config;
  config.initial_capacity = 1 << 14;
  FlowTable table(config);
  Rng rng(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.NextU64();
    table.Upsert(&key, &key);
    keys.push_back(key);
  }
  ASSERT_FALSE(table.resizing());
  for (const uint64_t key : keys) {
    // Steady state: at most both candidate buckets (2 * 4 slots) plus the
    // (empty) stash.
    EXPECT_LE(table.ProbeSlots(&key), 2 * FlowTable::kSlotsPerBucket);
  }
}

// Telemetry under churn: budgeted sweeps account every batch and every
// expired entry, resizes observe pause histograms, and the flight recorder
// sees the resize/sweep event stream — all through the same AttachTelemetry
// hook the offloaded runtime uses.
TEST(FlowTableTest, SweepAndResizeTelemetryUnderChurn) {
  FlowTable::Config config;
  config.key_words = 1;
  config.value_words = 1;
  config.initial_capacity = 8;  // several resizes over the run
  FlowTable table(config);

  telemetry::MetricsRegistry registry;
  telemetry::FlightRecorder recorder(/*lanes=*/2,
                                     /*capacity_per_lane=*/4096);
  const telemetry::LabelSet labels{{"mbox", "test"}, {"map", "flows"}};
  table.AttachTelemetry(&registry, labels, &recorder, /*lane=*/1);

  Rng rng(321);
  FlowTable::SweepCursor cursor;
  auto pred = [](const uint64_t*, const uint64_t* value) {
    return value[0] == 1;
  };
  uint64_t sweep_calls = 0, swept_total = 0;
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 32; ++i) {
      const uint64_t key = rng.NextBounded(8192);
      const uint64_t value = rng.NextBounded(2);
      table.Upsert(&key, &value);
    }
    ++sweep_calls;
    swept_total += table.SweepExpired(&cursor, /*max_slots=*/64, pred,
                                      [](const uint64_t*, const uint64_t*) {});
  }
  ASSERT_GT(table.stats().resizes, 0u);
  ASSERT_GT(swept_total, 0u);
  table.PublishMetrics();

  // Sweep accounting: one batch per SweepExpired call, expired total exact,
  // and every batch observed into the scan-slots histogram.
  EXPECT_EQ(
      registry.GetCounter("gallium_flow_sweep_batches_total", labels)->Value(),
      sweep_calls);
  EXPECT_EQ(
      registry.GetCounter("gallium_flow_sweep_expired_total", labels)->Value(),
      swept_total);
  EXPECT_EQ(registry
                .GetHistogram("gallium_flow_sweep_scan_slots", labels,
                              telemetry::DefaultLatencyBucketsUs())
                ->Count(),
            sweep_calls);

  // Resize instrumentation: the pause histogram saw at least one migration
  // burst, and the gauges reflect the quiesced table.
  EXPECT_GT(registry
                .GetHistogram("gallium_flow_resize_pause_us", labels,
                              telemetry::DefaultLatencyBucketsUs())
                ->Count(),
            0u);
  EXPECT_EQ(registry.GetGauge("gallium_flow_table_size", labels)->Value(),
            static_cast<double>(table.size()));
  EXPECT_EQ(registry.GetGauge("gallium_flow_table_resizes", labels)->Value(),
            static_cast<double>(table.stats().resizes));
  const double occupancy =
      registry.GetGauge("gallium_flow_table_occupancy", labels)->Value();
  EXPECT_GT(occupancy, 0.0);
  EXPECT_LE(occupancy, 1.0);

  // The flight recorder saw the event stream on the attached lane: resize
  // begin/end pairs and one sweep event per batch.
  uint64_t resize_begins = 0, resize_ends = 0, sweeps = 0;
  for (const auto& e : recorder.Snapshot()) {
    EXPECT_EQ(e.lane, 1u);
    const auto id = static_cast<telemetry::EventId>(e.id);
    if (id == telemetry::EventId::kFlowTableResizeBegin) ++resize_begins;
    if (id == telemetry::EventId::kFlowTableResizeEnd) ++resize_ends;
    if (id == telemetry::EventId::kFlowTableSweep) ++sweeps;
  }
  EXPECT_EQ(resize_begins, table.stats().resizes);
  EXPECT_EQ(resize_ends, table.stats().resizes);
  // The recorder ring may have wrapped; at minimum the recent sweeps are
  // there.
  EXPECT_GT(sweeps, 0u);
}

TEST(FlowTableTest, HashWordsIsOrderAndSeedSensitive) {
  const uint64_t a[2] = {1, 2};
  const uint64_t b[2] = {2, 1};
  EXPECT_NE(HashWords(a, 2), HashWords(b, 2));
  EXPECT_NE(HashWords(a, 2, 1), HashWords(a, 2, 2));
  EXPECT_NE(HashWords(a, 1), HashWords(a, 2));
}

}  // namespace
}  // namespace gallium::state
