// Telemetry tests: histogram bucket/quantile correctness against an exact
// reference, counter atomicity under a multithreaded hammer, exposition
// formats, and the per-packet trace layer — a golden test that a NAT
// packet's trace reconstructs the pre -> sync -> server -> post pipeline
// with op counts matching the interpreter's ExecStats, plus the acceptance
// cross-check that the registry's op totals equal the summed Outcome stats
// for all five paper middleboxes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "mbox/middleboxes.h"
#include "perf/harness.h"
#include "runtime/offloaded_middlebox.h"
#include "sim/event_queue.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"
#include "workload/packet_gen.h"

namespace gallium {
namespace {

// --- Metrics registry ----------------------------------------------------------

TEST(Counter, IncrementsAndReads) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter* c = registry.GetCounter("test_total", {});
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same (name, labels) resolves to the same instrument.
  EXPECT_EQ(registry.GetCounter("test_total", {}), c);
  // Different labels is a different series.
  EXPECT_NE(registry.GetCounter("test_total", {{"k", "v"}}), c);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  telemetry::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry from every thread: exercises the
      // lookup lock alongside the relaxed increment.
      telemetry::Counter* c = registry.GetCounter("hammer_total", {});
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("hammer_total", {})->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, ConcurrentObservesKeepCountAndSum) {
  telemetry::MetricsRegistry registry;
  telemetry::Histogram* h =
      registry.GetHistogram("hammer_us", {}, {1.0, 10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(2.5);
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t expected = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h->Count(), expected);
  EXPECT_DOUBLE_EQ(h->Sum(), 2.5 * static_cast<double>(expected));
}

TEST(Histogram, BucketCountsMatchReference) {
  telemetry::MetricsRegistry registry;
  telemetry::Histogram* h =
      registry.GetHistogram("lat_us", {}, {1.0, 2.0, 5.0, 10.0});
  const std::vector<double> samples = {0.5, 1.0, 1.5, 2.0,  3.0,
                                       7.0, 9.9, 10.0, 11.0, 1000.0};
  for (double s : samples) h->Observe(s);
  // Inclusive upper bounds (Prometheus `le` semantics).
  EXPECT_EQ(h->BucketCount(0), 2u);  // <= 1:   0.5, 1.0
  EXPECT_EQ(h->BucketCount(1), 2u);  // <= 2:   1.5, 2.0
  EXPECT_EQ(h->BucketCount(2), 1u);  // <= 5:   3.0
  EXPECT_EQ(h->BucketCount(3), 3u);  // <= 10:  7.0, 9.9, 10.0
  EXPECT_EQ(h->BucketCount(4), 2u);  // +Inf:   11.0, 1000.0
  EXPECT_EQ(h->Count(), samples.size());
  double sum = 0;
  for (double s : samples) sum += s;
  EXPECT_DOUBLE_EQ(h->Sum(), sum);
}

// Quantile estimates vs. the exact nearest-rank reference: the estimate
// must land in the same bucket as the exact value, i.e. within one bucket
// width of it, across a spread of sample shapes and q values.
TEST(Histogram, QuantilesMatchExactReference) {
  const std::vector<double> bounds = telemetry::DefaultLatencyBucketsUs();
  // Deterministic pseudo-random samples (LCG; no global seeding).
  uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((state >> 33) % 1000000) / 100.0;  // 0..10^4
  };
  telemetry::MetricsRegistry registry;
  telemetry::Histogram* h = registry.GetHistogram("q_us", {}, bounds);
  std::vector<double> exact;
  for (int i = 0; i < 5000; ++i) {
    const double v = next();
    h->Observe(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());

  for (double q : {0.5, 0.9, 0.99}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * exact.size())));
    const double exact_q = exact[rank - 1];
    const double est = h->Quantile(q);
    // Find the bucket holding the exact value; the estimate interpolates
    // inside that same bucket.
    double lo = 0, hi = bounds.back();
    for (double b : bounds) {
      if (exact_q <= b) {
        hi = b;
        break;
      }
      lo = b;
    }
    EXPECT_GE(est, lo) << "q=" << q;
    EXPECT_LE(est, hi) << "q=" << q;
    EXPECT_NEAR(est, exact_q, hi - lo) << "q=" << q;
  }
}

TEST(Histogram, OverflowSaturatesAtLastBound) {
  telemetry::MetricsRegistry registry;
  telemetry::Histogram* h = registry.GetHistogram("sat_us", {}, {1.0, 2.0});
  h->Observe(1e9);
  h->Observe(2e9);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 2.0);
}

TEST(Registry, PrometheusAndJsonExposition) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("pkts_total", {{"mbox", "nat"}}, "packets")
      ->Increment(7);
  registry.GetGauge("util", {}, "utilization")->Set(0.5);
  registry.GetHistogram("lat_us", {}, {1.0, 10.0})->Observe(3.0);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE pkts_total counter"), std::string::npos);
  EXPECT_NE(text.find("pkts_total{mbox=\"nat\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE util gauge"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1"), std::string::npos);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"pkts_total\""), std::string::npos);
  EXPECT_NE(json.find("\"mbox\":\"nat\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(OpCounts, RecorderRoundTripsThroughRegistry) {
  telemetry::MetricsRegistry registry;
  telemetry::OpCountsRecorder recorder(&registry, "ops_total", {});
  telemetry::OpCounts counts;
  counts.insts = 10;
  counts.alu_ops = 3;
  counts.map_lookups = 2;
  recorder.Add(counts);
  recorder.Add(counts);
  telemetry::OpCounts expected = counts;
  expected += counts;
  EXPECT_EQ(recorder.Totals(), expected);
  EXPECT_EQ(expected.Total(), 30);
}

// The exposition escaping contract: inside a Prometheus label value only
// backslash, double-quote, and newline are escaped — and nothing else.
TEST(Registry, PrometheusLabelValueEscaping) {
  telemetry::MetricsRegistry registry;
  registry
      .GetCounter("esc_total",
                  {{"path", "a\\b"}, {"quote", "say \"hi\""}, {"nl", "x\ny"}})
      ->Increment();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos) << text;
  EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\""), std::string::npos) << text;
  EXPECT_NE(text.find("nl=\"x\\ny\""), std::string::npos) << text;
  // The raw newline must not survive into the sample line (it would split
  // the exposition mid-sample).
  EXPECT_EQ(text.find("x\ny"), std::string::npos);
  // Values that need no escaping pass through verbatim.
  registry.GetCounter("plain_total", {{"mbox", "nat"}})->Increment();
  EXPECT_NE(registry.ToPrometheusText().find("plain_total{mbox=\"nat\"} 1"),
            std::string::npos);
}

// An empty label set renders as a bare sample name — no `{}`.
TEST(Registry, EmptyLabelSetRendersBareName) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("bare_total", {})->Increment(3);
  registry.GetGauge("bare_gauge", {})->Set(1.5);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("bare_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("bare_gauge 1.5"), std::string::npos) << text;
  EXPECT_EQ(text.find("bare_total{"), std::string::npos) << text;
}

// Histogram text exposition: cumulative buckets ending at +Inf, the +Inf
// bucket equal to _count, and _sum carrying the observed total.
TEST(Registry, PrometheusHistogramExpansion) {
  telemetry::MetricsRegistry registry;
  telemetry::Histogram* h =
      registry.GetHistogram("exp_us", {{"mbox", "nat"}}, {1.0, 5.0, 10.0});
  for (double v : {0.5, 0.7, 3.0, 7.0, 100.0}) h->Observe(v);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("exp_us_bucket{mbox=\"nat\",le=\"1\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("exp_us_bucket{mbox=\"nat\",le=\"5\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("exp_us_bucket{mbox=\"nat\",le=\"10\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("exp_us_bucket{mbox=\"nat\",le=\"+Inf\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("exp_us_count{mbox=\"nat\"} 5"), std::string::npos)
      << text;
  EXPECT_NE(text.find("exp_us_sum{mbox=\"nat\"} 111.2"), std::string::npos)
      << text;
}

// --- Flight recorder ------------------------------------------------------------

TEST(FlightRecorder, RecordsAndSnapshotsInSeqOrder) {
  telemetry::FlightRecorder recorder(/*lanes=*/3, /*capacity_per_lane=*/16);
  recorder.Record(1, telemetry::EventId::kWatchdogModeChange, 0, 1, 1);
  recorder.Record(2, telemetry::EventId::kSyncBackpressure, 4);
  recorder.Record(0, telemetry::EventId::kEngineRingHighWater, 1, 32, 256);
  EXPECT_EQ(recorder.events_recorded(), 3u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Merged across lanes, ordered by the global sequence number.
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].lane, 1u);
  EXPECT_EQ(events[1].lane, 2u);
  EXPECT_EQ(events[1].args[0], 4u);
  EXPECT_EQ(events[2].lane, 0u);
  EXPECT_EQ(events[2].args[2], 256u);
  EXPECT_LE(events[0].ts_ns, events[2].ts_ns);
}

TEST(FlightRecorder, WrapsOverwritingOldestAndCountsDrops) {
  telemetry::FlightRecorder recorder(/*lanes=*/1, /*capacity_per_lane=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(0, telemetry::EventId::kSyncRetry, i);
  }
  EXPECT_EQ(recorder.events_recorded(), 20u);
  EXPECT_EQ(recorder.events_dropped(), 12u);
  EXPECT_EQ(recorder.LaneOccupancy(0), 8u);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring keeps the newest events: 12..19.
  EXPECT_EQ(events.front().args[0], 12u);
  EXPECT_EQ(events.back().args[0], 19u);
}

TEST(FlightRecorder, OutOfRangeLaneClampsToControlLane) {
  telemetry::FlightRecorder recorder(/*lanes=*/2, /*capacity_per_lane=*/8);
  recorder.Record(99, telemetry::EventId::kSwitchRestart, 7);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].lane, 0u);
}

TEST(FlightRecorder, JsonDumpCarriesVersionNamesAndArgs) {
  telemetry::FlightRecorder recorder(/*lanes=*/2, /*capacity_per_lane=*/8);
  recorder.Record(1, telemetry::EventId::kWatchdogModeChange, 0, 1, 1);
  recorder.Record(0, telemetry::EventId::kFlowTableResizeBegin, 64, 128, 200);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"events_recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"watchdog.mode_change\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flow_table.resize_begin\""),
            std::string::npos);
  // Named args only: the mode-change event maps from/to/transitions.
  EXPECT_NE(json.find("\"from\":0"), std::string::npos);
  EXPECT_NE(json.find("\"to\":1"), std::string::npos);
  EXPECT_NE(json.find("\"old_buckets\":64"), std::string::npos);
  EXPECT_NE(json.find("\"new_buckets\":128"), std::string::npos);
}

TEST(FlightRecorder, ChromeTimelineNamesOccupiedLanes) {
  telemetry::FlightRecorder recorder(/*lanes=*/4, /*capacity_per_lane=*/8);
  recorder.Record(0, telemetry::EventId::kSwitchRestart, 1);
  recorder.Record(2, telemetry::EventId::kDegradedEnter, 100);
  const std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"lane 0 (control)\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"worker 1\""), std::string::npos) << json;
  // Lane 1 and 3 are empty: no thread_name metadata for them.
  EXPECT_EQ(json.find("\"worker 0\""), std::string::npos);
  EXPECT_EQ(json.find("\"worker 2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flight\""), std::string::npos);
}

TEST(FlightRecorder, PublishMetricsExportsGauges) {
  telemetry::FlightRecorder recorder(/*lanes=*/2, /*capacity_per_lane=*/8);
  recorder.Record(1, telemetry::EventId::kResyncBegin, 3);
  telemetry::MetricsRegistry registry;
  recorder.PublishMetrics(&registry);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("gallium_flight_events_recorded 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gallium_flight_ring_occupancy{lane=\"1\"} 1"),
            std::string::npos)
      << text;
}

TEST(FlightRecorder, DefaultIsProcessWideSingleton) {
  telemetry::FlightRecorder& a = telemetry::FlightRecorder::Default();
  telemetry::FlightRecorder& b = telemetry::FlightRecorder::Default();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.lanes(), 1u);
}

TEST(FlightRecorder, EventNamesCoverEveryId) {
  for (int id = 0;
       id < static_cast<int>(telemetry::EventId::kNumEventIds); ++id) {
    const char* name =
        telemetry::EventName(static_cast<telemetry::EventId>(id));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "EventId " << id;
    // Every event names at least its first argument.
    EXPECT_NE(
        telemetry::EventArgName(static_cast<telemetry::EventId>(id), 0),
        nullptr)
        << "EventId " << id;
  }
}

// --- Tracer & timeline ---------------------------------------------------------

TEST(Tracer, RingDropsOldestBeyondCapacity) {
  telemetry::Tracer tracer(/*capacity=*/2);
  for (uint64_t id = 0; id < 3; ++id) {
    telemetry::PacketTrace trace;
    trace.packet_id = id;
    tracer.Commit(std::move(trace));
  }
  EXPECT_EQ(tracer.committed(), 3u);
  EXPECT_EQ(tracer.dropped(), 1u);
  const auto traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].packet_id, 1u);
  EXPECT_EQ(traces[1].packet_id, 2u);
}

TEST(Timeline, RecordsSlicesInstantsAndCounters) {
  telemetry::Timeline timeline;
  timeline.CompleteEvent("compile", "phase", 0.0, 12.5);
  timeline.InstantEvent("restart", "fault", 5.0);
  timeline.CounterSample("queue_depth", 1.0, 3.0);
  EXPECT_EQ(timeline.size(), 3u);
  const std::string json = timeline.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"compile\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(EventQueue, NamedEventsLeaveTimelineMarkers) {
  telemetry::Timeline timeline;
  sim::EventQueue queue;
  queue.set_timeline(&timeline);
  int fired = 0;
  queue.Schedule(10.0, "arrival", [&] { ++fired; });
  queue.ScheduleAfter(5.0, "sync", [&] { ++fired; });
  queue.Schedule(1.0, [&] { ++fired; });  // anonymous: no marker
  queue.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(timeline.size(), 2u);
  EXPECT_NE(timeline.ToChromeJson().find("\"arrival\""), std::string::npos);
}

// --- Per-packet traces through the offloaded runtime -----------------------------

// Golden test: one NAT SYN (slow path, state sync) reconstructs the full
// pipeline with op counts exactly matching the Outcome's ExecStats; the
// causally-dependent reply rides the fast path and shows a pre-pass-only
// trace.
TEST(PacketTrace, GoldenNatSlowPathReconstruction) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  telemetry::Tracer tracer;
  runtime::OffloadedOptions options;
  options.tracer = &tracer;
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec, options);
  ASSERT_TRUE(mbx.ok()) << mbx.status().ToString();

  Rng rng(91);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  net::Packet syn = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
  syn.set_ingress_port(mbox::kPortInternal);
  auto out = (*mbx)->Process(syn);
  ASSERT_TRUE(out.status.ok());
  ASSERT_FALSE(out.fast_path);
  ASSERT_TRUE(out.state_synced);

  ASSERT_EQ(tracer.committed(), 1u);
  auto traces = tracer.Snapshot();
  const telemetry::PacketTrace& trace = traces[0];
  EXPECT_EQ(trace.scope, spec->name);
  EXPECT_FALSE(trace.fast_path);
  EXPECT_TRUE(trace.ok);
  EXPECT_EQ(trace.PathString(),
            "switch.pre -> wire.to_server -> server -> sync.commit -> "
            "wire.to_switch -> switch.post");

  // Op counts per hop match the interpreter's ExecStats exactly.
  ASSERT_EQ(trace.hops.size(), 6u);
  telemetry::OpCounts switch_ops = trace.hops[0].ops;  // pre
  switch_ops += trace.hops[5].ops;                     // post
  EXPECT_EQ(switch_ops, runtime::ToOpCounts(out.switch_stats));
  EXPECT_EQ(trace.hops[2].ops, runtime::ToOpCounts(out.server_stats));
  EXPECT_EQ(trace.hops[1].transfer_bytes, out.transfer_bytes_to_server);
  EXPECT_EQ(trace.hops[4].transfer_bytes, out.transfer_bytes_to_switch);
  // The sync hop carries the modeled control-plane latency natively.
  EXPECT_DOUBLE_EQ(trace.hops[3].duration_us, out.sync_latency_us);

  // The reply is causally dependent -> fast path -> pre-pass-only trace.
  net::FiveTuple reply{flow.daddr, mbox::kNatExternalIp, flow.dport,
                       out.out_packet.sport(), net::kIpProtoTcp};
  net::Packet synack =
      net::MakeTcpPacket(reply, net::kTcpSyn | net::kTcpAck, 0);
  synack.set_ingress_port(mbox::kPortExternal);
  auto out2 = (*mbx)->Process(synack);
  ASSERT_TRUE(out2.status.ok());
  ASSERT_TRUE(out2.fast_path);
  traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_TRUE(traces[1].fast_path);
  EXPECT_EQ(traces[1].PathString(), "switch.pre");
  EXPECT_EQ(traces[1].hops[0].ops, runtime::ToOpCounts(out2.switch_stats));
}

// StampTrace prices every unstamped hop with the cost model, keeps the
// natively-stamped sync latency, and produces a contiguous timeline.
TEST(PacketTrace, StampTraceFillsDurations) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  telemetry::Tracer tracer;
  runtime::OffloadedOptions options;
  options.tracer = &tracer;
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec, options);
  ASSERT_TRUE(mbx.ok());

  Rng rng(92);
  net::Packet syn =
      net::MakeTcpPacket(workload::RandomFlow(rng), net::kTcpSyn, 0);
  syn.set_ingress_port(mbox::kPortInternal);
  auto out = (*mbx)->Process(syn);
  ASSERT_TRUE(out.status.ok());

  auto traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  telemetry::PacketTrace trace = traces[0];
  const perf::CostModel cost;
  perf::StampTrace(cost, /*wire_bytes=*/64, &trace);

  double cursor = 0, sum = 0;
  for (const auto& hop : trace.hops) {
    EXPECT_GT(hop.duration_us, 0.0) << hop.stage;
    EXPECT_DOUBLE_EQ(hop.ts_us, cursor);
    cursor += hop.duration_us;
    sum += hop.duration_us;
  }
  EXPECT_DOUBLE_EQ(trace.total_us, sum);
  // The sync hop keeps the runtime's modeled latency.
  ASSERT_EQ(trace.hops[3].stage, telemetry::kHopSyncCommit);
  EXPECT_DOUBLE_EQ(trace.hops[3].duration_us, out.sync_latency_us);
  // Wire hops are priced by serialization + NIC traversal.
  EXPECT_GT(trace.hops[1].duration_us, cost.nic_latency_us);
}

// Acceptance cross-check: for all five paper middleboxes, the registry's
// per-op-kind totals equal the summed Outcome ExecStats, and every trace
// reconstructs a complete pre-first path.
TEST(PacketTrace, RegistryOpTotalsMatchExecStatsAcrossPaperMiddleboxes) {
  struct Entry {
    const char* name;
    std::function<Result<mbox::MiddleboxSpec>()> build;
  };
  const std::vector<Entry> entries = {
      {"nat", [] { return mbox::BuildMazuNat(); }},
      {"lb", [] { return mbox::BuildLoadBalancer(); }},
      {"firewall", [] { return mbox::BuildFirewall(); }},
      {"proxy", [] { return mbox::BuildProxy(); }},
      {"trojan", [] { return mbox::BuildTrojanDetector(); }},
  };
  for (const auto& entry : entries) {
    SCOPED_TRACE(entry.name);
    auto spec = entry.build();
    ASSERT_TRUE(spec.ok());
    telemetry::Tracer tracer;
    runtime::OffloadedOptions options;
    options.tracer = &tracer;
    auto mbx = runtime::OffloadedMiddlebox::Create(*spec, options);
    ASSERT_TRUE(mbx.ok()) << mbx.status().ToString();

    Rng rng(7);
    workload::TraceOptions trace_options;
    trace_options.num_flows = 12;
    trace_options.ingress_port = mbox::kPortInternal;
    const workload::Trace workload_trace =
        workload::MakeTrace(rng, trace_options);
    ASSERT_FALSE(workload_trace.packets.empty());

    runtime::ExecStats switch_total, server_total;
    uint64_t now_ms = 0, processed = 0;
    for (const net::Packet& pkt : workload_trace.packets) {
      if (processed >= 200) break;
      ++processed;
      auto out = (*mbx)->Process(pkt, ++now_ms);
      ASSERT_TRUE(out.status.ok());
      switch_total += out.switch_stats;
      server_total += out.server_stats;
    }

    // Registry totals (the OpCountsRecorder counters) == summed ExecStats.
    EXPECT_EQ((*mbx)->switch_op_totals(), runtime::ToOpCounts(switch_total));
    EXPECT_EQ((*mbx)->server_op_totals(), runtime::ToOpCounts(server_total));
    EXPECT_EQ((*mbx)->packets_total(), processed);

    // Every trace reconstructs a complete path, and the per-hop op counts
    // re-aggregate to the same totals.
    const auto traces = tracer.Snapshot();
    ASSERT_EQ(traces.size(), processed);
    telemetry::OpCounts trace_switch_ops, trace_server_ops;
    for (const auto& trace : traces) {
      ASSERT_FALSE(trace.hops.empty());
      EXPECT_EQ(trace.hops.front().stage, telemetry::kHopSwitchPre);
      if (!trace.fast_path) {
        EXPECT_NE(trace.PathString().find(telemetry::kHopServer),
                  std::string::npos);
      }
      for (const auto& hop : trace.hops) {
        if (hop.stage.rfind("switch.", 0) == 0) {
          trace_switch_ops += hop.ops;
        } else if (hop.stage.rfind("server", 0) == 0) {
          trace_server_ops += hop.ops;
        }
      }
    }
    EXPECT_EQ(trace_switch_ops, runtime::ToOpCounts(switch_total));
    EXPECT_EQ(trace_server_ops, runtime::ToOpCounts(server_total));
  }
}

// Counter-accessor migration: the legacy accessors are thin reads of the
// registry, and an injected registry receives the runtime's series.
TEST(Metrics, InjectedRegistryReceivesRuntimeCounters) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  telemetry::MetricsRegistry registry;
  runtime::OffloadedOptions options;
  options.registry = &registry;
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec, options);
  ASSERT_TRUE(mbx.ok());

  Rng rng(93);
  net::Packet syn =
      net::MakeTcpPacket(workload::RandomFlow(rng), net::kTcpSyn, 0);
  syn.set_ingress_port(mbox::kPortInternal);
  ASSERT_TRUE((*mbx)->Process(syn).status.ok());

  EXPECT_EQ((*mbx)->packets_total(), 1u);
  EXPECT_EQ((*mbx)->sync_batches_sent(), 1u);
  EXPECT_EQ(&(*mbx)->metrics(), &registry);
  // Per-packet counts are batched locally; the scrape point below pushes
  // them onto the registry (galliumc does the same before exporting).
  (*mbx)->PublishSwitchStageMetrics();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("gallium_packets_total{mbox=\"mazu_nat\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gallium_sync_latency_us_count"), std::string::npos);
}

// Per-stage switch counters land on the registry keyed by RMT stage.
TEST(Metrics, SwitchStageCountersPublish) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());

  Rng rng(94);
  uint64_t now_ms = 0;
  for (int i = 0; i < 20; ++i) {
    net::Packet syn =
        net::MakeTcpPacket(workload::RandomFlow(rng), net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(syn, ++now_ms).status.ok());
  }
  const auto& stage_counters = (*mbx)->device().stage_counters();
  ASSERT_FALSE(stage_counters.empty());
  uint64_t accesses = 0, recirculations = 0;
  for (const auto& counters : stage_counters) {
    accesses += counters.accesses;
    recirculations += counters.recirculations;
  }
  EXPECT_GT(accesses, 0u);
  // A correct placement never needs recirculation.
  EXPECT_EQ(recirculations, 0u);

  (*mbx)->PublishSwitchStageMetrics();
  const std::string text = (*mbx)->metrics().ToPrometheusText();
  EXPECT_NE(text.find("gallium_switch_stage_accesses"), std::string::npos);
  EXPECT_NE(text.find("stage=\"0\""), std::string::npos);
}

}  // namespace
}  // namespace gallium
