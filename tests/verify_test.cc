// Translation-validation tests: the validator proves the five paper
// middleboxes (plus MiniLB and the IP router) equivalent to their partition
// plans under the default and tiny RMT profiles, the Gauntlet-style mutation
// driver's seeded bug classes are each caught with a counterexample, the
// offload-safety lints fire on hand-built hazards, and the warn-level
// verifier diagnostics surface through the plan report.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "mbox/middleboxes.h"
#include "p4/codegen.h"
#include "rmt/feedback.h"
#include "rmt/target.h"
#include "runtime/interpreter.h"
#include "verify/lint.h"
#include "verify/mutation.h"
#include "verify/symbolic.h"
#include "verify/validator.h"

namespace gallium {
namespace {

using ir::Imm;
using ir::R;

struct PlannedMbox {
  mbox::MiddleboxSpec spec;
  partition::PartitionPlan plan;
};

Result<partition::PartitionPlan> PlanFor(const ir::Function& fn,
                                         const rmt::RmtTargetModel& target) {
  partition::SwitchConstraints constraints;
  rmt::PlacementFailure failure;
  auto planned = rmt::PartitionAndPlace(fn, constraints, target, &failure);
  if (!planned.ok()) return planned.status();
  return std::move(planned->plan);
}

std::vector<mbox::MiddleboxSpec> AllSpecs() {
  std::vector<mbox::MiddleboxSpec> specs = mbox::BuildAllPaperMiddleboxes();
  auto minilb = mbox::BuildMiniLb();
  EXPECT_TRUE(minilb.ok()) << minilb.status().ToString();
  if (minilb.ok()) specs.push_back(std::move(*minilb));
  auto router = mbox::BuildIpRouter(
      {{0x0a000000, 8, 1, 0x1111}, {0x0b000000, 8, 2, 0x2222}});
  EXPECT_TRUE(router.ok()) << router.status().ToString();
  if (router.ok()) specs.push_back(std::move(*router));
  return specs;
}

// --- Symbolic terms ----------------------------------------------------------

TEST(Symbolic, ConstantFoldingAndNormalization) {
  using namespace verify;
  auto sum = MakeAlu(ir::AluOp::kAdd, MakeConst(3), MakeConst(4));
  EXPECT_TRUE(sum->is_const());
  EXPECT_EQ(sum->value, 7u);

  auto x = MakeInput("hdr.ip_src", 32);
  // Masking a 32-bit input to 32 bits is the identity.
  EXPECT_TRUE(SameTerm(Masked(x, ir::Width::kU32), x));
  // Truthiness of a comparison is the comparison itself.
  auto cmp = MakeAlu(ir::AluOp::kEq, x, MakeConst(5));
  EXPECT_TRUE(SameTerm(Truthy(cmp), cmp));
  // Same structure => same term; different structure => different term.
  auto cmp2 = MakeAlu(ir::AluOp::kEq, MakeInput("hdr.ip_src", 32),
                      MakeConst(5));
  EXPECT_TRUE(SameTerm(cmp, cmp2));
  EXPECT_FALSE(SameTerm(cmp, MakeAlu(ir::AluOp::kEq, x, MakeConst(6))));
}

TEST(Symbolic, SolverFindsWitnessAndRespectsConstraints) {
  using namespace verify;
  auto x = MakeInput("hdr.src_port", 16);
  auto is80 = MakeAlu(ir::AluOp::kEq, x, MakeConst(80));
  Assignment witness;
  ASSERT_TRUE(SolveConstraints({{is80, true}}, nullptr, nullptr, 1, 4000,
                               &witness));
  EXPECT_EQ(EvalTerm(*is80, witness), 1u);
  EXPECT_EQ(witness["hdr.src_port"], 80u);

  // Distinguishing pair: x+1 vs x+2 differ for any x; witness must still
  // satisfy the path condition.
  auto a = MakeAlu(ir::AluOp::kAdd, x, MakeConst(1));
  auto b = MakeAlu(ir::AluOp::kAdd, x, MakeConst(2));
  ASSERT_TRUE(SolveConstraints({{is80, false}}, a, b, 2, 4000, &witness));
  EXPECT_EQ(EvalTerm(*is80, witness), 0u);
  EXPECT_NE(EvalTerm(*a, witness), EvalTerm(*b, witness));
}

// --- Validation of real plans ------------------------------------------------

TEST(Validator, PaperMiddleboxesValidateUnderDefaultProfile) {
  partition::SwitchConstraints constraints;
  for (const mbox::MiddleboxSpec& spec : AllSpecs()) {
    auto plan = PlanFor(*spec.fn, rmt::DefaultTofinoProfile(constraints));
    ASSERT_TRUE(plan.ok()) << spec.name << ": " << plan.status().ToString();
    const verify::ValidationResult result =
        verify::ValidateTranslation(*spec.fn, *plan);
    EXPECT_TRUE(result.equivalent) << spec.name << "\n" << result.Summary();
    EXPECT_GT(result.paths_checked, 0) << spec.name;
  }
}

TEST(Validator, PaperMiddleboxesValidateUnderTinyProfile) {
  for (const mbox::MiddleboxSpec& spec : AllSpecs()) {
    auto plan = PlanFor(*spec.fn, rmt::TinyTestProfile());
    if (!plan.ok()) continue;  // a program the tiny pipe cannot place at all
    const verify::ValidationResult result =
        verify::ValidateTranslation(*spec.fn, *plan);
    EXPECT_TRUE(result.equivalent) << spec.name << "\n" << result.Summary();
  }
}

// --- Mutation campaign -------------------------------------------------------

TEST(MutationDriver, EveryClassCaughtWithCounterexample) {
  partition::SwitchConstraints constraints;
  const auto target = rmt::DefaultTofinoProfile(constraints);

  // Aggregate across the middlebox suite: every mutation class must be
  // seedable somewhere, and every seeded mutant must be caught.
  int generated_total[verify::kNumMutationClasses] = {};
  int caught_total[verify::kNumMutationClasses] = {};
  int cex_total[verify::kNumMutationClasses] = {};
  for (const mbox::MiddleboxSpec& spec : AllSpecs()) {
    auto plan = PlanFor(*spec.fn, target);
    ASSERT_TRUE(plan.ok()) << spec.name;
    const verify::CampaignResult campaign =
        verify::RunMutationCampaign(*spec.fn, *plan);
    for (const verify::CampaignClassResult& c : campaign.classes) {
      const int idx = static_cast<int>(c.cls);
      generated_total[idx] += c.generated;
      caught_total[idx] += c.caught;
      cex_total[idx] += c.with_counterexample;
      EXPECT_EQ(c.caught, c.generated)
          << spec.name << ": " << verify::MutationClassName(c.cls)
          << " mutants escaped the validator";
    }
  }
  for (int idx = 0; idx < verify::kNumMutationClasses; ++idx) {
    const auto cls = static_cast<verify::MutationClass>(idx);
    EXPECT_GT(generated_total[idx], 0)
        << verify::MutationClassName(cls) << " was never seeded";
    EXPECT_GT(caught_total[idx], 0) << verify::MutationClassName(cls);
    EXPECT_GT(cex_total[idx], 0)
        << verify::MutationClassName(cls)
        << " was caught but never with a concrete counterexample packet";
  }
}

// --- Counterexample packets --------------------------------------------------

TEST(Counterexample, PacketRealizesHeaderInputs) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  // Input names follow the validator's "hdr." + ir::HeaderFieldName scheme.
  verify::Assignment inputs{
      {std::string("hdr.") + ir::HeaderFieldName(ir::HeaderField::kIpSrc),
       0x0a0000ffull},
      {std::string("hdr.") + ir::HeaderFieldName(ir::HeaderField::kSrcPort),
       4242ull},
      {std::string("hdr.") + ir::HeaderFieldName(ir::HeaderField::kTcpFlags),
       0x12ull}};
  const net::Packet pkt = verify::PacketFromAssignment(inputs, *spec->fn);
  EXPECT_EQ(runtime::Interpreter::ReadHeaderField(pkt, ir::HeaderField::kIpSrc),
            0x0a0000ffull);
  EXPECT_EQ(
      runtime::Interpreter::ReadHeaderField(pkt, ir::HeaderField::kSrcPort),
      4242ull);
  EXPECT_EQ(
      runtime::Interpreter::ReadHeaderField(pkt, ir::HeaderField::kTcpFlags),
      0x12ull);
}

// --- Offload-safety lints ----------------------------------------------------

TEST(Lint, P4CatchesUndefinedAndUncoveredActions) {
  p4::P4Program prog;
  prog.actions.push_back({"act_hit", {}, {"meta.x = value0;"}});
  prog.actions.push_back({"act_orphan", {}, {}});
  p4::P4Table bad;
  bad.name = "tbl_bad";
  bad.actions = {"act_hit", "act_missing"};
  bad.default_action = "act_other";
  prog.tables.push_back(bad);
  p4::P4Table empty;
  empty.name = "tbl_empty";
  prog.tables.push_back(empty);

  const auto findings = verify::LintP4(prog);
  EXPECT_TRUE(verify::HasErrors(findings));
  auto has = [&](const std::string& code) {
    for (const auto& f : findings) {
      if (f.code == code) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("p4-undefined-action"));
  EXPECT_TRUE(has("p4-uncovered-table"));
  EXPECT_TRUE(has("p4-dead-action"));
}

TEST(Lint, P4CatchesUninitializedMetadataRead) {
  p4::P4Program prog;
  prog.ingress.apply_body = {"if (meta.cond == 1) {", "  meta.out = 1;", "}"};
  const auto findings = verify::LintP4(prog);
  bool found = false;
  for (const auto& f : findings) {
    if (f.code == "p4-uninit-meta-read") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Lint, GeneratedP4OfPaperMiddleboxesIsClean) {
  // The emitter's own output must never trip the error-severity P4 lints.
  partition::SwitchConstraints constraints;
  for (const mbox::MiddleboxSpec& spec : AllSpecs()) {
    rmt::PlacementFailure failure;
    auto planned = rmt::PartitionAndPlace(
        *spec.fn, constraints, rmt::DefaultTofinoProfile(constraints),
        &failure);
    ASSERT_TRUE(planned.ok()) << spec.name;
    auto prog = p4::GenerateP4(*spec.fn, planned->plan, {});
    ASSERT_TRUE(prog.ok()) << spec.name;
    const auto findings = verify::LintP4(*prog);
    for (const auto& f : findings) {
      EXPECT_NE(f.severity, verify::LintSeverity::kError)
          << spec.name << ": " << f.ToString();
    }
  }
}

TEST(Lint, FlagsOutputCommitViolation) {
  // send (forced into pre) followed by a server-side map write: the verdict
  // would commit before the server finishes.
  ir::Function fn("output_commit");
  ir::MapDecl m;
  m.name = "flows";
  m.key_widths = {ir::Width::kU32};
  m.value_widths = {ir::Width::kU32};
  m.has_p4_impl = true;
  const ir::StateIndex flows = fn.AddMap(m);

  ir::IrBuilder b(&fn);
  const int entry = b.CreateBlock("entry");
  fn.set_entry_block(entry);
  b.SetInsertPoint(entry);
  const ir::Reg src = b.HeaderRead(ir::HeaderField::kIpSrc, "src");
  b.Send(Imm(1));
  const ir::Value key[] = {R(src)};
  const ir::Value val[] = {Imm(7)};
  b.MapPut(flows, key, val);
  b.Ret();
  ASSERT_TRUE(ir::VerifyFunction(fn).ok());

  partition::PartitionPlan plan;
  plan.assignment.assign(fn.num_insts(), partition::Part::kNonOffloaded);
  plan.replicable.assign(fn.num_insts(), false);
  // Hand-built plan: the send sits in pre, the map write on the server.
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (inst.op == ir::Opcode::kSend) {
        plan.assignment[inst.id] = partition::Part::kPre;
      }
    }
  }
  plan.num_pre = 1;
  plan.num_post = 0;

  const auto findings = verify::LintPlan(fn, plan);
  bool found = false;
  for (const auto& f : findings) {
    if (f.code == "output-commit") {
      found = true;
      EXPECT_EQ(f.severity, verify::LintSeverity::kError);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lint, FlagsReplicatedWriteAfterReadHazard) {
  // A loop lets the switch-side read happen after the server-side write of
  // the same replicated map.
  ir::Function fn("war_hazard");
  ir::MapDecl m;
  m.name = "shared";
  m.key_widths = {ir::Width::kU32};
  m.value_widths = {ir::Width::kU32};
  m.has_p4_impl = true;
  const ir::StateIndex shared = fn.AddMap(m);

  ir::IrBuilder b(&fn);
  const int entry = b.CreateBlock("entry");
  const int loop = b.CreateBlock("loop");
  const int out = b.CreateBlock("out");
  fn.set_entry_block(entry);
  b.SetInsertPoint(entry);
  const ir::Reg src = b.HeaderRead(ir::HeaderField::kIpSrc, "src");
  b.Jump(loop);
  b.SetInsertPoint(loop);
  const ir::Value key[] = {R(src)};
  auto got = b.MapGet(shared, key, "hit");
  const ir::Value val[] = {Imm(9)};
  b.MapPut(shared, key, val);
  b.Branch(R(got.found), out, loop);
  b.SetInsertPoint(out);
  b.Ret();
  ASSERT_TRUE(ir::VerifyFunction(fn).ok());

  partition::PartitionPlan plan;
  plan.assignment.assign(fn.num_insts(), partition::Part::kNonOffloaded);
  plan.replicable.assign(fn.num_insts(), false);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (inst.op == ir::Opcode::kMapGet) {
        plan.assignment[inst.id] = partition::Part::kPre;
      }
    }
  }
  ir::StateRef ref{ir::StateRef::Kind::kMap, shared};
  plan.state_placement[ref] = partition::StatePlacement::kReplicated;
  plan.num_pre = 1;
  plan.num_post = 0;

  const auto findings = verify::LintPlan(fn, plan);
  bool found = false;
  for (const auto& f : findings) {
    if (f.code == "replicated-war-hazard") {
      found = true;
      EXPECT_EQ(f.severity, verify::LintSeverity::kError);
    }
  }
  EXPECT_TRUE(found);
}

// --- Warn-level verifier diagnostics -----------------------------------------

TEST(VerifyWarnings, UnreachableBlockAndNeverReadRegister) {
  ir::Function fn("warned");
  ir::IrBuilder b(&fn);
  const int entry = b.CreateBlock("entry");
  const int dead = b.CreateBlock("dead");
  fn.set_entry_block(entry);
  b.SetInsertPoint(entry);
  b.Assign(Imm(5), ir::Width::kU32, "unused");
  b.Ret();
  b.SetInsertPoint(dead);
  b.Ret();

  std::vector<ir::VerifyWarning> warnings;
  ASSERT_TRUE(ir::VerifyFunctionWithWarnings(fn, &warnings).ok());
  bool unreachable = false, never_read = false;
  for (const auto& w : warnings) {
    if (w.kind == ir::VerifyWarning::Kind::kUnreachableBlock &&
        w.block == dead) {
      unreachable = true;
    }
    if (w.kind == ir::VerifyWarning::Kind::kNeverReadRegister) {
      never_read = true;
    }
  }
  EXPECT_TRUE(unreachable);
  EXPECT_TRUE(never_read);
}

TEST(VerifyWarnings, SurfacedInPartitionPlanReport) {
  ir::Function fn("warned_plan");
  ir::IrBuilder b(&fn);
  const int entry = b.CreateBlock("entry");
  const int dead = b.CreateBlock("dead");
  fn.set_entry_block(entry);
  b.SetInsertPoint(entry);
  const ir::Reg port = b.HeaderRead(ir::HeaderField::kSrcPort, "p");
  b.Assign(Imm(5), ir::Width::kU32, "unused");
  b.Send(R(port));
  b.Ret();
  b.SetInsertPoint(dead);
  b.Ret();

  partition::SwitchConstraints constraints;
  rmt::PlacementFailure failure;
  auto planned = rmt::PartitionAndPlace(
      fn, constraints, rmt::DefaultTofinoProfile(constraints), &failure);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_FALSE(planned->plan.warnings.empty());
  const std::string summary = planned->plan.Summary(fn);
  EXPECT_NE(summary.find("warning:"), std::string::npos) << summary;
}

// --- Compiler gate + diagnostic contract -------------------------------------

TEST(CompilerGate, VerifyOptionValidatesPaperMiddleboxes) {
  core::CompileOptions options;
  options.verify = true;
  core::Compiler compiler(options);
  for (const auto& spec : AllSpecs()) {
    core::CompileDiagnostic diag;
    auto result = compiler.Compile(*spec.fn, &diag);
    ASSERT_TRUE(result.ok())
        << spec.name << ": " << result.status().ToString() << "\n"
        << diag.ToJson();
    EXPECT_TRUE(result->verified) << spec.name;
    EXPECT_TRUE(result->validation.equivalent)
        << spec.name << ": " << result->validation.Summary();
    EXPECT_GT(result->validation.paths_checked, 0) << spec.name;
    EXPECT_FALSE(verify::HasErrors(result->lints)) << spec.name;
  }
}

TEST(CompilerGate, DiagnosticJsonCarriesExitCodeAndFindings) {
  core::CompileDiagnostic diag;
  diag.phase = "verification";
  diag.message = "translation validation rejected the partition plan";
  diag.exit_code = 4;
  diag.findings.push_back("[state-trace] path 0: missing write");
  diag.findings.push_back("[verdict] path 1: drop vs send");
  const std::string json = diag.ToJson();
  EXPECT_NE(json.find("\"error\":\"verification\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"findings\":[\"[state-trace]"), std::string::npos)
      << json;
  // The default diagnostic maps to the generic failure code.
  EXPECT_EQ(core::CompileDiagnostic{}.exit_code, 1);
}

}  // namespace
}  // namespace gallium
