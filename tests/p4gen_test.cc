// P4 backend tests: the Fig. 6 state/instruction mapping, metadata slot
// allocation with lifetime reuse (§4.3.1), the Fig. 5 transfer header, the
// ingress-port dispatch, write-back table emission, and resource caps.
#include <gtest/gtest.h>

#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "p4/codegen.h"
#include "partition/partitioner.h"

namespace gallium::p4 {
namespace {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Reg;
using ir::Width;

struct Compiled {
  std::unique_ptr<ir::Function> fn;
  partition::PartitionPlan plan;
  P4Program program;
  std::string source;
};

Compiled CompileMbox(Result<mbox::MiddleboxSpec> spec) {
  EXPECT_TRUE(spec.ok());
  Compiled out;
  out.fn = std::move(spec->fn);
  partition::Partitioner partitioner(*out.fn, {});
  auto plan = partitioner.Run();
  EXPECT_TRUE(plan.ok());
  out.plan = std::move(*plan);
  auto program = GenerateP4(*out.fn, out.plan);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  out.program = std::move(*program);
  out.source = EmitP4(out.program);
  return out;
}

TEST(P4Gen, MapsBecomeTablesWithWriteBackShadows) {
  Compiled c = CompileMbox(mbox::BuildMiniLb());
  bool found_main = false, found_wb = false, found_reg = false;
  for (const P4Table& table : c.program.tables) {
    if (table.name == "tbl_map") {
      found_main = true;
      EXPECT_EQ(table.size, 65536);
      EXPECT_FALSE(table.is_write_back);
    }
    if (table.name == "tbl_map_wb") {
      found_wb = true;
      EXPECT_TRUE(table.is_write_back);
      EXPECT_LT(table.size, 65536) << "shadow is smaller (§4.3.3)";
    }
  }
  for (const P4Register& reg : c.program.registers) {
    if (reg.name == "wb_active_map") found_reg = true;
  }
  EXPECT_TRUE(found_main);
  EXPECT_TRUE(found_wb);
  EXPECT_TRUE(found_reg) << "the use-write-back bit";
}

TEST(P4Gen, GlobalsBecomeRegisters) {
  Compiled c = CompileMbox(mbox::BuildMazuNat());
  bool found = false;
  for (const P4Register& reg : c.program.registers) {
    if (reg.name == "reg_port_counter") found = true;
  }
  EXPECT_TRUE(found) << "the port counter maps to a P4 register (§6.2)";
}

TEST(P4Gen, DispatchesOnIngressPort) {
  Compiled c = CompileMbox(mbox::BuildMiniLb());
  EXPECT_NE(c.source.find("standard_metadata.ingress_port == (bit<9>)192"),
            std::string::npos)
      << "pre/post dispatch on the server-facing port (§4.3.1)";
  EXPECT_NE(c.source.find("Post-processing"), std::string::npos);
  EXPECT_NE(c.source.find("Pre-processing"), std::string::npos);
}

TEST(P4Gen, SynthesizesTransferHeader) {
  Compiled c = CompileMbox(mbox::BuildMiniLb());
  EXPECT_NE(c.source.find("header gallium_t"), std::string::npos);
  EXPECT_NE(c.source.find("cond_bits"), std::string::npos);
  // MiniLB transfers hash-derived values: var slots must exist.
  EXPECT_NE(c.source.find("var0"), std::string::npos);
  // Handoff packs the header and forwards to the server.
  EXPECT_NE(c.source.find("hdr.gallium.setValid();"), std::string::npos);
  EXPECT_NE(c.source.find("etherType = 0x88B5"), std::string::npos);
}

TEST(P4Gen, ParserCoversAllHeaders) {
  Compiled c = CompileMbox(mbox::BuildProxy());
  for (const char* state : {"start", "parse_gallium", "parse_ipv4",
                            "parse_tcp", "parse_udp"}) {
    bool found = false;
    for (const auto& ps : c.program.parser_states) found |= ps.name == state;
    EXPECT_TRUE(found) << state;
  }
}

TEST(P4Gen, FullyOffloadedProgramHasNoServerHandoffNeed) {
  Compiled c = CompileMbox(mbox::BuildFirewall());
  // Both whitelists become tables; no statement marks needs_server except
  // the structural handoff guard itself.
  int tables = 0;
  for (const P4Table& t : c.program.tables) tables += !t.is_write_back;
  EXPECT_EQ(tables, 2);
  // The pre region body must not contain a needs_server marker (everything
  // is offloaded); the only occurrence is the final handoff guard + init.
  const size_t pre_pos = c.source.find("Pre-processing");
  ASSERT_NE(pre_pos, std::string::npos);
  const std::string pre_part = c.source.substr(pre_pos);
  EXPECT_EQ(pre_part.find("meta.needs_server = 1;"), std::string::npos)
      << "firewall should never hand off";
}

TEST(P4Gen, RejectsMetadataOverflow) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  P4GenOptions options;
  options.max_metadata_bits = 8;  // absurdly small
  auto program = GenerateP4(*spec->fn, *plan, options);
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), ErrorCode::kResourceExhausted);
}

TEST(P4Gen, EmittedTextIsStructurallySane) {
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    partition::Partitioner partitioner(*spec.fn, {});
    auto plan = partitioner.Run();
    ASSERT_TRUE(plan.ok()) << spec.name;
    auto program = GenerateP4(*spec.fn, *plan);
    ASSERT_TRUE(program.ok()) << spec.name;
    const std::string source = EmitP4(*program);
    // Balanced braces.
    int depth = 0;
    for (char ch : source) {
      if (ch == '{') ++depth;
      if (ch == '}') --depth;
      ASSERT_GE(depth, 0) << spec.name;
    }
    EXPECT_EQ(depth, 0) << spec.name;
    EXPECT_NE(source.find("V1Switch"), std::string::npos);
    EXPECT_NE(source.find("GalliumParser"), std::string::npos);
  }
}

// --- Metadata allocation --------------------------------------------------------

TEST(MetadataAllocation, ReusesSlotsForDisjointLifetimes) {
  // a and b have disjoint lifetimes -> one 32-bit slot serves both.
  MiddleboxBuilder mb("reuse");
  auto& b = mb.b();
  const Reg a = b.HeaderRead(HeaderField::kIpSrc, "a");
  b.HeaderWrite(HeaderField::kIpDst, R(a));  // last use of a
  const Reg c = b.HeaderRead(HeaderField::kEthType, "c");
  b.HeaderWrite(HeaderField::kEthType, R(c));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  partition::Partitioner partitioner(**fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());

  const MetadataAllocation alloc = AllocateMetadata(**fn, *plan);
  EXPECT_FALSE(alloc.slot_of_reg[a].empty());
  EXPECT_FALSE(alloc.slot_of_reg[c].empty());
  // a is u32, c is u16 -> separate pools, but a second u32 register with a
  // disjoint lifetime shares a's slot:
  EXPECT_GT(alloc.total_bits, 0);
}

TEST(MetadataAllocation, OverlappingLifetimesGetDistinctSlots) {
  MiddleboxBuilder mb("overlap");
  auto& b = mb.b();
  const Reg a = b.HeaderRead(HeaderField::kIpSrc, "a");
  const Reg c = b.HeaderRead(HeaderField::kIpDst, "c");
  const Reg sum = b.Alu(AluOp::kAdd, R(a), R(c), Width::kU32, "sum");
  b.HeaderWrite(HeaderField::kIpDst, R(sum));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  partition::Partitioner partitioner(**fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());

  const MetadataAllocation alloc = AllocateMetadata(**fn, *plan);
  EXPECT_NE(alloc.slot_of_reg[a], alloc.slot_of_reg[c])
      << "simultaneously-live registers must not share a slot";
}

TEST(MetadataAllocation, SequentialChainReusesAggressively) {
  // v0 -> v1 -> ... -> v9, each dead after the next: 2 slots suffice and
  // the allocator must find far fewer than 10.
  MiddleboxBuilder mb("chain");
  auto& b = mb.b();
  Reg v = b.HeaderRead(HeaderField::kIpSrc, "v0");
  for (int i = 1; i <= 9; ++i) {
    v = b.Alu(AluOp::kAdd, R(v), Imm(1), Width::kU32,
              "v" + std::to_string(i));
  }
  b.HeaderWrite(HeaderField::kIpDst, R(v));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  partition::Partitioner partitioner(**fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());

  const MetadataAllocation alloc = AllocateMetadata(**fn, *plan);
  int u32_slots = 0;
  for (const P4Field& slot : alloc.slots) u32_slots += slot.bits == 32;
  EXPECT_LE(u32_slots, 3) << "lifetime reuse failed: " << u32_slots
                          << " slots for a sequential chain";
}

TEST(MetadataAllocation, ServerOnlyRegistersGetNoSlot) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  const MetadataAllocation alloc = AllocateMetadata(*spec->fn, *plan);

  // Find the modulo result (server-only, not transferred): it must not
  // consume switch scratchpad.
  for (const auto& bb : spec->fn->blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op == ir::Opcode::kAlu && inst.alu == AluOp::kMod) {
        EXPECT_TRUE(alloc.slot_of_reg[inst.dsts[0]].empty());
      }
    }
  }
}

}  // namespace
}  // namespace gallium::p4
