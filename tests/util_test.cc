// Unit tests for the util module: Status/Result, deterministic RNG and
// distributions, and string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace gallium {
namespace {

// --- Status / Result ----------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = InvalidArgument("bad key width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad key width");
  EXPECT_EQ(s.ToString(), "kInvalidArgument: bad key width");
}

TEST(Status, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFound("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(ResourceExhausted("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(Unsupported("x").code(), ErrorCode::kUnsupported);
  EXPECT_EQ(FailedPrecondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(Internal("x").code(), ErrorCode::kInternal);
}

// GCC 12 raises a spurious -Wmaybe-uninitialized from std::variant's move
// machinery when Result temporaries flow through gtest macros (GCC
// PR105593); scoped suppression for this block only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Doubler(const Result<int>& in) {
  if (!in.ok()) return in.status();
  return *in * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Internal("boom")).status().code(), ErrorCode::kInternal);
}

#pragma GCC diagnostic pop

// --- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(12);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextBoundedPareto(100, 1e6, 1.1);
    ASSERT_GE(v, 100.0);
    ASSERT_LE(v, 1e6 + 1);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(7);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(14);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.NextBool(0.3);
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.02);
}

// --- EmpiricalDistribution ---------------------------------------------------

TEST(EmpiricalDistribution, SamplesWithinSupport) {
  EmpiricalDistribution dist({{10, 0.5}, {100, 1.0}});
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double v = dist.Sample(rng);
    ASSERT_GE(v, 10.0);
    ASSERT_LE(v, 100.0);
  }
}

TEST(EmpiricalDistribution, RespectsCdfMass) {
  EmpiricalDistribution dist({{10, 0.9}, {1000, 1.0}});
  Rng rng(16);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) small += dist.Sample(rng) <= 11.0;
  // ~90% of samples should sit at/near the low point.
  EXPECT_NEAR(small / static_cast<double>(n), 0.9, 0.02);
}

// --- Strings -----------------------------------------------------------------

TEST(Strings, StrJoin) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
}

TEST(Strings, StrSplit) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("gallium", "gal"));
  EXPECT_FALSE(StartsWith("gal", "gallium"));
  EXPECT_TRUE(EndsWith("table.p4", ".p4"));
  EXPECT_FALSE(EndsWith("p4", "table.p4"));
}

TEST(Strings, CountCodeLinesSkipsBlanksAndComments) {
  const char* source =
      "// header comment\n"
      "\n"
      "int x = 1;\n"
      "  // indented comment\n"
      "/* block */\n"
      " * continuation\n"
      "int y = 2;\n"
      "#include <x>\n";
  EXPECT_EQ(CountCodeLines(source), 2);
}

TEST(Strings, SanitizeIdentifier) {
  EXPECT_EQ(SanitizeIdentifier("a.b-c"), "a_b_c");
  EXPECT_EQ(SanitizeIdentifier("9lives"), "_9lives");
  EXPECT_EQ(SanitizeIdentifier(""), "_");
  EXPECT_EQ(SanitizeIdentifier("ok_name1"), "ok_name1");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace gallium
