// Switch simulator tests: exact-match tables, the write-back atomic-update
// protocol of §4.3.3, the control-plane latency model of Table 3, switch
// construction from a partition plan, and resource accounting.
#include <gtest/gtest.h>

#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "switchsim/switch.h"
#include "switchsim/table.h"

namespace gallium::switchsim {
namespace {

// --- ExactMatchTable ------------------------------------------------------------

TEST(Table, LookupMissZeroFills) {
  ExactMatchTable table("t", 1, 2, 16);
  TableValue value{7, 7};
  EXPECT_FALSE(table.Lookup({1}, &value));
  EXPECT_EQ(value, (TableValue{0, 0}));
}

TEST(Table, InsertMainThenLookup) {
  ExactMatchTable table("t", 2, 1, 16);
  ASSERT_TRUE(table.InsertMain({1, 2}, {42}).ok());
  TableValue value;
  EXPECT_TRUE(table.Lookup({1, 2}, &value));
  EXPECT_EQ(value[0], 42u);
  EXPECT_FALSE(table.Lookup({2, 1}, &value));
}

TEST(Table, RejectsArityMismatch) {
  ExactMatchTable table("t", 2, 1, 16);
  EXPECT_FALSE(table.InsertMain({1}, {42}).ok());
  EXPECT_FALSE(table.InsertMain({1, 2}, {42, 43}).ok());
  EXPECT_FALSE(table.Stage({1}, TableValue{42}).ok());
}

TEST(Table, EnforcesCapacity) {
  ExactMatchTable table("t", 1, 1, 2);
  ASSERT_TRUE(table.InsertMain({1}, {1}).ok());
  ASSERT_TRUE(table.InsertMain({2}, {2}).ok());
  EXPECT_FALSE(table.InsertMain({3}, {3}).ok());
  // Overwriting an existing key is fine at capacity.
  EXPECT_TRUE(table.InsertMain({1}, {9}).ok());
}

TEST(Table, StagedEntriesInvisibleUntilBitFlip) {
  ExactMatchTable table("t", 1, 1, 16);
  ASSERT_TRUE(table.Stage({5}, TableValue{55}).ok());
  TableValue value;
  EXPECT_FALSE(table.Lookup({5}, &value))
      << "staged entry must not be visible before the flip";
  table.SetUseWriteBack(true);
  EXPECT_TRUE(table.Lookup({5}, &value));
  EXPECT_EQ(value[0], 55u);
}

TEST(Table, StagedDeletionHidesMainEntry) {
  ExactMatchTable table("t", 1, 1, 16);
  ASSERT_TRUE(table.InsertMain({5}, {55}).ok());
  ASSERT_TRUE(table.Stage({5}, std::nullopt).ok());
  TableValue value;
  EXPECT_TRUE(table.Lookup({5}, &value)) << "visible until the flip";
  table.SetUseWriteBack(true);
  EXPECT_FALSE(table.Lookup({5}, &value)) << "deletion visible after flip";
}

TEST(Table, WriteBackOverridesMain) {
  ExactMatchTable table("t", 1, 1, 16);
  ASSERT_TRUE(table.InsertMain({5}, {1}).ok());
  ASSERT_TRUE(table.Stage({5}, TableValue{2}).ok());
  table.SetUseWriteBack(true);
  TableValue value;
  EXPECT_TRUE(table.Lookup({5}, &value));
  EXPECT_EQ(value[0], 2u) << "write-back entry wins during the window";
}

TEST(Table, ApplyStagedToMainThenClear) {
  ExactMatchTable table("t", 1, 1, 16);
  ASSERT_TRUE(table.InsertMain({1}, {10}).ok());
  ASSERT_TRUE(table.Stage({1}, std::nullopt).ok());   // delete 1
  ASSERT_TRUE(table.Stage({2}, TableValue{20}).ok());  // insert 2
  table.SetUseWriteBack(true);
  ASSERT_TRUE(table.ApplyStagedToMain().ok());
  table.SetUseWriteBack(false);

  TableValue value;
  EXPECT_FALSE(table.Lookup({1}, &value));
  EXPECT_TRUE(table.Lookup({2}, &value));
  EXPECT_EQ(value[0], 20u);
  EXPECT_EQ(table.staged_entries(), 0u);
}

TEST(Table, ShadowCapacityBounded) {
  ExactMatchTable table("t", 1, 1, 16);  // shadow cap = max(16, 16/4) = 16
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(table.Stage({i}, TableValue{i}).ok());
  }
  EXPECT_FALSE(table.Stage({99}, TableValue{1}).ok())
      << "write-back table is smaller than the main table (§4.3.3)";
}

// The full §4.3.3 protocol, step by step, observing data-plane visibility
// at every point: this is the atomic-update correctness argument.
TEST(Table, AtomicUpdateProtocolStepByStep) {
  ExactMatchTable table("nat", 1, 1, 1024);
  ASSERT_TRUE(table.InsertMain({1}, {100}).ok());

  // Step 1: server stages updates; data plane still sees the old state.
  ASSERT_TRUE(table.Stage({1}, TableValue{200}).ok());
  ASSERT_TRUE(table.Stage({2}, TableValue{300}).ok());
  TableValue v;
  EXPECT_TRUE(table.Lookup({1}, &v));
  EXPECT_EQ(v[0], 100u);
  EXPECT_FALSE(table.Lookup({2}, &v));

  // Step 2: the bit flip makes ALL staged entries visible at once.
  table.SetUseWriteBack(true);
  EXPECT_TRUE(table.Lookup({1}, &v));
  EXPECT_EQ(v[0], 200u);
  EXPECT_TRUE(table.Lookup({2}, &v));
  EXPECT_EQ(v[0], 300u);

  // Step 3: main-table apply + flip back; the view is unchanged.
  ASSERT_TRUE(table.ApplyStagedToMain().ok());
  table.SetUseWriteBack(false);
  EXPECT_TRUE(table.Lookup({1}, &v));
  EXPECT_EQ(v[0], 200u);
  EXPECT_TRUE(table.Lookup({2}, &v));
  EXPECT_EQ(v[0], 300u);
}

// --- Latency model ----------------------------------------------------------------

TEST(LatencyModel, MatchesTable3Shape) {
  ControlPlaneLatencyModel model;
  // Means without jitter.
  EXPECT_NEAR(model.UpdateLatencyUs(1, nullptr), 135.0, 1.0);
  EXPECT_NEAR(model.UpdateLatencyUs(2, nullptr), 270.0, 1.0);
  EXPECT_NEAR(model.UpdateLatencyUs(4, nullptr), 371.0, 2.0);
  EXPECT_EQ(model.UpdateLatencyUs(0, nullptr), 0.0);
  // Sub-linear beyond two tables.
  const double l2 = model.UpdateLatencyUs(2, nullptr);
  const double l4 = model.UpdateLatencyUs(4, nullptr);
  EXPECT_LT(l4, 2 * l2);
}

TEST(LatencyModel, JitterStaysPositiveAndCentered) {
  ControlPlaneLatencyModel model;
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 500; ++i) {
    const double l = model.UpdateLatencyUs(1, &rng);
    ASSERT_GT(l, 0.0);
    sum += l;
  }
  EXPECT_NEAR(sum / 500, 135.0, 6.0);
}

// --- Switch construction from a plan ---------------------------------------------

TEST(Switch, InstantiatesResidentStateOnly) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  auto sw = Switch::Create(*spec->fn, *plan, {});
  ASSERT_TRUE(sw.ok()) << sw.status().ToString();

  // The connection map is replicated -> a table exists.
  EXPECT_NE((*sw)->table(0), nullptr);
  const auto report = (*sw)->Resources();
  EXPECT_TRUE(report.within_limits);
  EXPECT_GE(report.num_tables, 1);
  EXPECT_GT(report.memory_bytes_used, 0u);
}

TEST(Switch, RejectsOverMemoryPlan) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  partition::SwitchConstraints constraints;
  partition::Partitioner partitioner(*spec->fn, constraints);
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  // Shrink the budget below what the plan's tables need.
  constraints.memory_bytes = 100;
  auto sw = Switch::Create(*spec->fn, *plan, constraints);
  EXPECT_FALSE(sw.ok());
  EXPECT_EQ(sw.status().code(), ErrorCode::kResourceExhausted);
}

TEST(Switch, ApplyAtomicUpdateSyncsTablesAndRegisters) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  auto sw = Switch::Create(*spec->fn, *plan, {});
  ASSERT_TRUE(sw.ok());

  using MapMut = runtime::RecordingStateBackend::MapMutation;
  using GlobalMut = runtime::RecordingStateBackend::GlobalMutation;
  Rng rng(3);
  auto latency = (*sw)->ApplyAtomicUpdate(
      {MapMut{0, {10, 20}, {1024}, false}}, {GlobalMut{0, 1025}}, &rng);
  ASSERT_TRUE(latency.ok()) << latency.status().ToString();
  EXPECT_GT(*latency, 0.0);

  runtime::StateValue value;
  EXPECT_TRUE((*sw)->data_plane().MapLookup(0, {10, 20}, &value));
  EXPECT_EQ(value[0], 1024u);
  EXPECT_EQ((*sw)->data_plane().GlobalRead(0), 1025u);
  EXPECT_EQ((*sw)->sync_batches(), 1u);
}

TEST(Switch, MutationsToServerOnlyStateAreIgnored) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  auto sw = Switch::Create(*spec->fn, *plan, {});
  ASSERT_TRUE(sw.ok());

  // flow_created is server-only (no annotation); syncing it is a no-op.
  const ir::StateIndex created = spec->MapIndex("flow_created");
  using MapMut = runtime::RecordingStateBackend::MapMutation;
  Rng rng(3);
  auto latency = (*sw)->ApplyAtomicUpdate(
      {MapMut{created, {1, 2, 3, 4, 6}, {7}, false}}, {}, &rng);
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(*latency, 0.0) << "no resident table touched";
}

}  // namespace
}  // namespace gallium::switchsim
