// Gauntlet-style round-trip property: the emitted P4 parses into an AST
// whose canonical reprint parses back to the SAME program. Asserting
// print(parse(print(parse(src)))) == print(parse(src)) over the paper
// middleboxes and a fuzz corpus means no construct the emitter produces is
// silently dropped or reshaped by the parser/printer pair.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "mbox/middleboxes.h"
#include "p4/parser.h"
#include "p4/roundtrip.h"

#include "program_generator.h"

namespace gallium::p4::exec {
namespace {

// Parses `source`, reprints it, and checks the reprint is a fixpoint of
// print-then-parse. Returns the canonical reprint for further inspection.
std::string ExpectRoundTrips(const std::string& source,
                             const std::string& label) {
  auto parsed1 = ParseP4(source);
  EXPECT_TRUE(parsed1.ok()) << label << ": " << parsed1.status().ToString();
  if (!parsed1.ok()) return "";
  const std::string print1 = PrintParsed(**parsed1);

  auto parsed2 = ParseP4(print1);
  EXPECT_TRUE(parsed2.ok()) << label << ": canonical print failed to reparse: "
                            << parsed2.status().ToString() << "\n"
                            << print1;
  if (!parsed2.ok()) return "";
  const std::string print2 = PrintParsed(**parsed2);

  EXPECT_EQ(print1, print2) << label << ": print∘parse is not a fixpoint";

  // The reparse must preserve the program's shape, not just its text.
  EXPECT_EQ((*parsed1)->field_bits, (*parsed2)->field_bits) << label;
  EXPECT_EQ((*parsed1)->registers.size(), (*parsed2)->registers.size())
      << label;
  EXPECT_EQ((*parsed1)->actions.size(), (*parsed2)->actions.size()) << label;
  EXPECT_EQ((*parsed1)->tables.size(), (*parsed2)->tables.size()) << label;
  EXPECT_EQ((*parsed1)->ingress_apply.size(), (*parsed2)->ingress_apply.size())
      << label;
  return print1;
}

TEST(P4RoundTrip, PaperMiddleboxes) {
  core::Compiler compiler;
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    auto compiled = compiler.Compile(*spec.fn);
    ASSERT_TRUE(compiled.ok()) << spec.name;
    const std::string reprint =
        ExpectRoundTrips(compiled->p4_source, spec.name);
    EXPECT_NE(reprint.find("control GalliumIngress"), std::string::npos)
        << spec.name;
  }
}

TEST(P4RoundTrip, LpmRouterKeepsMatchKind) {
  core::Compiler compiler;
  auto spec = mbox::BuildIpRouter(
      {{0x0a000000, 8, 1, 0x0a0a0a0a0a01}, {0x0a010000, 16, 2, 0x0a0a0a0a0a02}});
  ASSERT_TRUE(spec.ok());
  auto compiled = compiler.Compile(*spec->fn);
  ASSERT_TRUE(compiled.ok());
  const std::string reprint = ExpectRoundTrips(compiled->p4_source, "router");
  EXPECT_NE(reprint.find(": lpm;"), std::string::npos)
      << "lpm match kind lost in the round trip";
}

TEST(P4RoundTrip, FuzzCorpus) {
  core::Compiler compiler;
  int compiled_count = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    testing::ProgramGenerator generator(seed);
    auto spec = generator.Generate();
    ASSERT_TRUE(spec.ok()) << "seed " << seed;
    auto compiled = compiler.Compile(*spec->fn);
    // Some fuzz programs exceed switch constraints end to end; the round
    // trip only concerns programs that produce an artifact.
    if (!compiled.ok()) continue;
    ++compiled_count;
    ExpectRoundTrips(compiled->p4_source, "seed " + std::to_string(seed));
  }
  // The corpus must actually exercise the property.
  EXPECT_GE(compiled_count, 10);
}

}  // namespace
}  // namespace gallium::p4::exec
