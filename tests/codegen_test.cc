// Server C++ code generation and end-to-end compiler tests (Table 1's
// artifacts): structure of the emitted server program, synchronization
// stubs for replicated state, and whole-pipeline determinism.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "cppgen/codegen.h"
#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "util/strings.h"

namespace gallium {
namespace {

Result<std::string> GenCpp(Result<mbox::MiddleboxSpec> spec) {
  if (!spec.ok()) return spec.status();
  partition::Partitioner partitioner(*spec->fn, {});
  GALLIUM_ASSIGN_OR_RETURN(auto plan, partitioner.Run());
  return cppgen::GenerateServerCpp(*spec->fn, plan);
}

TEST(CppGen, EmitsServerClassWithProcess) {
  auto source = GenCpp(mbox::BuildMiniLb());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_NE(source->find("class mini_lbServer"), std::string::npos);
  EXPECT_NE(source->find("void process(gallium::Packet* pkt"),
            std::string::npos);
  EXPECT_NE(source->find("struct GalliumHeader"), std::string::npos);
  EXPECT_NE(source->find("int main("), std::string::npos);
}

TEST(CppGen, ReplicatedUpdatesStageSynchronization) {
  auto source = GenCpp(mbox::BuildMiniLb());
  ASSERT_TRUE(source.ok());
  // The map insert on the server must stage a switch update and commit it
  // before the packet is released (§4.3.3).
  EXPECT_NE(source->find("sync_.StageInsert(\"map\""), std::string::npos);
  EXPECT_NE(source->find("sync_.CommitAtomic();"), std::string::npos);
}

TEST(CppGen, ServerOnlyStateDeclared) {
  auto source = GenCpp(mbox::BuildLoadBalancer());
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find("flows_;"), std::string::npos);
  EXPECT_NE(source->find("flow_created_;"), std::string::npos);
  EXPECT_NE(source->find("backends_;"), std::string::npos);
}

TEST(CppGen, SwitchOnlyStateOmitted) {
  auto source = GenCpp(mbox::BuildFirewall());
  ASSERT_TRUE(source.ok());
  // Fully offloaded whitelists never appear as server members.
  EXPECT_EQ(source->find("whitelist_out_;"), std::string::npos);
  EXPECT_EQ(source->find("whitelist_in_;"), std::string::npos);
}

TEST(CppGen, TransferredBranchConditionsReadFromHeader) {
  auto source = GenCpp(mbox::BuildMiniLb());
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find("gallium_hdr->cond_bits"), std::string::npos);
}

TEST(CppGen, BalancedBracesAcrossAllMiddleboxes) {
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    partition::Partitioner partitioner(*spec.fn, {});
    auto plan = partitioner.Run();
    ASSERT_TRUE(plan.ok());
    auto source = cppgen::GenerateServerCpp(*spec.fn, *plan);
    ASSERT_TRUE(source.ok()) << spec.name;
    int depth = 0;
    for (char ch : *source) {
      if (ch == '{') ++depth;
      if (ch == '}') --depth;
      ASSERT_GE(depth, 0) << spec.name;
    }
    EXPECT_EQ(depth, 0) << spec.name;
  }
}

// --- End-to-end compiler ------------------------------------------------------

TEST(Compiler, CompilesAllPaperMiddleboxes) {
  core::Compiler compiler;
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    auto result = compiler.Compile(*spec.fn);
    ASSERT_TRUE(result.ok()) << spec.name << ": "
                             << result.status().ToString();
    EXPECT_GT(result->input_loc, 10) << spec.name;
    EXPECT_GT(result->p4_loc, 100) << spec.name;
    EXPECT_GT(result->server_loc, 20) << spec.name;
    EXPECT_GT(result->plan.num_pre, 0) << spec.name;
  }
}

TEST(Compiler, DeterministicOutput) {
  core::Compiler compiler;
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  auto r1 = compiler.Compile(*spec->fn);
  auto r2 = compiler.Compile(*spec->fn);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->p4_source, r2->p4_source);
  EXPECT_EQ(r1->server_source, r2->server_source);
  EXPECT_EQ(r1->plan.assignment, r2->plan.assignment);
}

TEST(Compiler, RejectsMalformedFunction) {
  ir::Function fn("broken");
  fn.set_entry_block(fn.AddBlock("entry"));  // empty block
  core::Compiler compiler;
  EXPECT_FALSE(compiler.Compile(fn).ok());
}

TEST(Compiler, Table1ShapeHolds) {
  // The qualitative Table 1 claim: every middlebox yields a P4 program in
  // the hundreds of lines plus a server program, and the offloaded
  // statement share dominates for the map-lookup-centric middleboxes.
  core::Compiler compiler;
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    auto result = compiler.Compile(*spec.fn);
    ASSERT_TRUE(result.ok());
    const auto& plan = result->plan;
    const int offloaded = plan.num_pre + plan.num_post;
    EXPECT_GT(offloaded, plan.num_non_offloaded)
        << spec.name << ": most per-packet statements offload";
  }
}

TEST(Compiler, ConstraintsPropagateToOutputs) {
  core::CompileOptions strict_options;
  strict_options.constraints.pipeline_depth = 3;
  core::Compiler strict_compiler(strict_options);
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  auto strict = strict_compiler.Compile(*spec->fn);
  ASSERT_TRUE(strict.ok());

  core::Compiler default_compiler;
  auto loose = default_compiler.Compile(*spec->fn);
  ASSERT_TRUE(loose.ok());
  EXPECT_GT(strict->plan.num_non_offloaded, loose->plan.num_non_offloaded)
      << "a shallower pipeline must push statements to the server";
}

}  // namespace
}  // namespace gallium
