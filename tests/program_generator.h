// Shared random middlebox-program generator for property/fuzz tests.
//
// Builds structured, verifiable programs with random state declarations
// (annotated and unannotated maps, vectors, globals), random ALU / header /
// payload / time operations (P4-supported and not), nested branches, and
// early send/drop exits. Deterministic per seed.
#pragma once

#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "util/rng.h"

namespace gallium::testing {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Reg;
using ir::Value;
using ir::Width;

class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

  Result<mbox::MiddleboxSpec> Generate() {
    MiddleboxBuilder mb("fuzz");
    mb_ = &mb;

    // --- Random state declarations ------------------------------------------
    const int num_maps = 1 + static_cast<int>(rng_.NextBounded(3));
    for (int m = 0; m < num_maps; ++m) {
      const int nkeys = 1 + static_cast<int>(rng_.NextBounded(3));
      std::vector<Width> keys, values;
      for (int k = 0; k < nkeys; ++k) keys.push_back(RandomWidth());
      const int nvals = 1 + static_cast<int>(rng_.NextBounded(2));
      for (int v = 0; v < nvals; ++v) values.push_back(RandomWidth());
      // Half the maps are annotated (offloadable), half not.
      const uint64_t max_entries = rng_.NextBool(0.5) ? 4096 : 0;
      maps_.push_back(mb.DeclareMap("map" + std::to_string(m), keys, values,
                                    max_entries));
      map_keys_.push_back(nkeys);
    }
    if (rng_.NextBool(0.6)) {
      vectors_.push_back(mb.DeclareVector("vec0", Width::kU32, 16));
    }
    const int num_globals = static_cast<int>(rng_.NextBounded(3));
    for (int g = 0; g < num_globals; ++g) {
      globals_.push_back(mb.DeclareGlobal("g" + std::to_string(g),
                                          Width::kU32, rng_.NextBounded(100)));
    }
    pattern_ = mb.DeclarePattern("FUZZ");

    // --- Body -------------------------------------------------------------------
    std::vector<Reg> scope;
    // Seed the register pool with a few header reads.
    for (HeaderField f : {HeaderField::kIpSrc, HeaderField::kIpDst,
                          HeaderField::kSrcPort, HeaderField::kDstPort}) {
      scope.push_back(mb.b().HeaderRead(f));
    }
    EmitBlock(scope, /*depth=*/0);
    if (!mb.CurrentBlockTerminated()) {
      mb.b().Send(Imm(1));
    }

    mbox::MiddleboxSpec spec;
    spec.name = "fuzz";
    GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());
    if (!vectors_.empty()) {
      spec.init.vectors.push_back({vectors_[0].index(), {10, 20, 30, 40}});
    }
    return spec;
  }

 private:
  Width RandomWidth() {
    static const Width kWidths[] = {Width::kU8, Width::kU16, Width::kU32};
    return kWidths[rng_.NextBounded(3)];
  }

  Value RandomValue(const std::vector<Reg>& scope) {
    if (!scope.empty() && rng_.NextBool(0.7)) {
      return R(scope[rng_.NextBounded(scope.size())]);
    }
    return Imm(rng_.NextBounded(1 << 16));
  }

  // Emits 3-8 statements into the current block; may recurse into branches.
  void EmitBlock(std::vector<Reg> scope, int depth) {
    auto& b = mb_->b();
    const int n = 3 + static_cast<int>(rng_.NextBounded(6));
    for (int i = 0; i < n; ++i) {
      switch (rng_.NextBounded(depth < 2 ? 9 : 8)) {
        case 0:  // header read
          scope.push_back(b.HeaderRead(static_cast<HeaderField>(
              rng_.NextBounded(ir::kNumHeaderFields))));
          break;
        case 1: {  // ALU (mix of offloadable and not)
          static const AluOp kOps[] = {AluOp::kAdd, AluOp::kSub, AluOp::kXor,
                                       AluOp::kAnd, AluOp::kOr,  AluOp::kShr,
                                       AluOp::kEq,  AluOp::kLt,  AluOp::kMod,
                                       AluOp::kMul, AluOp::kHash};
          scope.push_back(b.Alu(kOps[rng_.NextBounded(11)],
                                RandomValue(scope), RandomValue(scope)));
          break;
        }
        case 2: {  // map lookup
          const size_t m = rng_.NextBounded(maps_.size());
          std::vector<Value> keys;
          for (int k = 0; k < map_keys_[m]; ++k) {
            keys.push_back(RandomValue(scope));
          }
          const auto result =
              mb_->b().MapGet(maps_[m].index(), keys,
                              "lk" + std::to_string(next_name_++));
          scope.push_back(result.found);
          for (Reg v : result.values) scope.push_back(v);
          break;
        }
        case 3: {  // map insert or erase
          const size_t m = rng_.NextBounded(maps_.size());
          const auto& decl = mb_->fn().map(maps_[m].index());
          std::vector<Value> keys, values;
          for (size_t k = 0; k < decl.key_widths.size(); ++k) {
            keys.push_back(RandomValue(scope));
          }
          if (rng_.NextBool(0.8)) {
            for (size_t v = 0; v < decl.value_widths.size(); ++v) {
              values.push_back(RandomValue(scope));
            }
            b.MapPut(maps_[m].index(), keys, values);
          } else {
            b.MapDel(maps_[m].index(), keys);
          }
          break;
        }
        case 4: {  // header write (parse-steering fields excluded: rewriting
                   // ip.proto or eth.type would make the packet unparseable
                   // in flight, which no real middlebox does)
          static const HeaderField kWritable[] = {
              HeaderField::kEthSrc, HeaderField::kEthDst,
              HeaderField::kIpSrc,  HeaderField::kIpDst,
              HeaderField::kIpTtl,  HeaderField::kSrcPort,
              HeaderField::kDstPort, HeaderField::kTcpSeq,
              HeaderField::kTcpAck, HeaderField::kTcpFlags};
          b.HeaderWrite(kWritable[rng_.NextBounded(10)], RandomValue(scope));
          break;
        }
        case 5:  // global traffic
          if (!globals_.empty()) {
            const auto& g = globals_[rng_.NextBounded(globals_.size())];
            if (rng_.NextBool(0.5)) {
              scope.push_back(g.Read());
            } else {
              g.Write(RandomValue(scope));
            }
          }
          break;
        case 6:  // vector / payload / time
          if (!vectors_.empty() && rng_.NextBool(0.5)) {
            scope.push_back(vectors_[0].At(RandomValue(scope)));
          } else if (rng_.NextBool(0.5)) {
            scope.push_back(b.PayloadMatch(pattern_));
          } else {
            scope.push_back(b.TimeRead());
          }
          break;
        case 7: {  // early exit in a branch
          if (scope.empty()) break;
          const Value cond = R(scope[rng_.NextBounded(scope.size())]);
          mb_->If(cond, [&] {
            if (rng_.NextBool(0.7)) {
              b.Send(Imm(rng_.NextBounded(4)));
            } else {
              b.Drop();
            }
            b.Ret();
          });
          break;
        }
        case 8: {  // nested if/else with recursive bodies
          if (scope.empty()) break;
          const Value cond = R(scope[rng_.NextBounded(scope.size())]);
          mb_->IfElse(
              cond, [&] { EmitBlock(scope, depth + 1); },
              [&] { EmitBlock(scope, depth + 1); });
          break;
        }
      }
    }
  }

  Rng rng_;
  MiddleboxBuilder* mb_ = nullptr;
  std::vector<frontend::HashMapHandle> maps_;
  std::vector<int> map_keys_;
  std::vector<frontend::VectorHandle> vectors_;
  std::vector<frontend::GlobalHandle> globals_;
  uint32_t pattern_ = 0;
  int next_name_ = 0;
};


}  // namespace gallium::testing
