// Unit + property tests for the bounded coalescing sync backlog.
//
// The load-bearing property: delivering the *coalesced* stream must leave a
// fresh switch in exactly the replicated state the *uncoalesced* per-packet
// stream would have — last-writer-wins per key, first-touch drain order, and
// erases folding over queued inserts. The property test drives randomized
// mutation sequences (writes + erases over a small key pool, so collisions
// are plentiful) through both paths and compares final table contents
// against a reference model.
#include <gtest/gtest.h>

#include <map>

#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "runtime/sync.h"
#include "runtime/sync_queue.h"
#include "switchsim/switch.h"
#include "util/rng.h"

namespace gallium {
namespace {

using runtime::CoalescingSyncQueue;
using runtime::StateKey;
using runtime::StateValue;
using runtime::SyncBatch;
using MapMutation = CoalescingSyncQueue::MapMutation;
using GlobalMutation = CoalescingSyncQueue::GlobalMutation;

TEST(CoalescingSyncQueue, LastWriterWinsKeepsFirstTouchOrder) {
  CoalescingSyncQueue queue;
  queue.Enqueue({{0, {1, 2}, {10}, false}}, {});
  queue.Enqueue({{0, {3, 4}, {20}, false}}, {});
  // Rewrite of the first key: value replaced, drain position unchanged.
  queue.Enqueue({{0, {1, 2}, {30}, false}}, {});

  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.enqueued_mutations(), 3u);
  EXPECT_EQ(queue.coalesced_mutations(), 1u);

  std::vector<MapMutation> maps;
  std::vector<GlobalMutation> globals;
  queue.DrainInto(&maps, &globals);
  ASSERT_EQ(maps.size(), 2u);
  EXPECT_EQ(maps[0].key, (StateKey{1, 2}));
  EXPECT_EQ(maps[0].values, (StateValue{30}));
  EXPECT_EQ(maps[1].key, (StateKey{3, 4}));
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.drained_batches(), 3u);
}

TEST(CoalescingSyncQueue, EraseSupersedesQueuedInsert) {
  CoalescingSyncQueue queue;
  queue.Enqueue({{0, {7, 7}, {42}, false}}, {});
  queue.Enqueue({{0, {7, 7}, {}, true}}, {});
  std::vector<MapMutation> maps;
  std::vector<GlobalMutation> globals;
  queue.DrainInto(&maps, &globals);
  ASSERT_EQ(maps.size(), 1u);
  EXPECT_TRUE(maps[0].is_erase);
  EXPECT_EQ(queue.coalesced_mutations(), 1u);
}

TEST(CoalescingSyncQueue, DepthPeakAndResyncAccounting) {
  CoalescingSyncQueue queue;
  for (int i = 0; i < 5; ++i) {
    queue.Enqueue({{0, {static_cast<uint64_t>(i), 0}, {1}, false}}, {});
  }
  EXPECT_EQ(queue.depth(), 5u);
  EXPECT_EQ(queue.peak_depth(), 5u);

  queue.ClearForResync();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.cleared_mutations(), 5u);
  EXPECT_EQ(queue.peak_depth(), 5u) << "peak survives a resync";

  queue.Enqueue({{0, {9, 9}, {2}, false}}, {});
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.peak_depth(), 5u);
}

TEST(CoalescingSyncQueue, GlobalsCoalescePerIndex) {
  CoalescingSyncQueue queue;
  queue.Enqueue({}, {{0, 11}});
  queue.Enqueue({}, {{1, 22}});
  queue.Enqueue({}, {{0, 33}});
  std::vector<MapMutation> maps;
  std::vector<GlobalMutation> globals;
  queue.DrainInto(&maps, &globals);
  ASSERT_EQ(globals.size(), 2u);
  EXPECT_EQ(globals[0].global, 0u);
  EXPECT_EQ(globals[0].value, 33u);
  EXPECT_EQ(globals[1].global, 1u);
  EXPECT_EQ(queue.coalesced_mutations(), 1u);
}

// Applies one batch to a switch, asserting delivery succeeded.
void ApplyOrDie(switchsim::Switch* sw, uint64_t* seq,
                std::vector<MapMutation> maps, Rng* rng) {
  SyncBatch batch;
  batch.seq = ++*seq;
  batch.epoch = sw->epoch();
  batch.maps = std::move(maps);
  auto ack = sw->ApplySyncBatch(batch, rng);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_TRUE(ack->epoch_ok);
  ASSERT_TRUE(ack->applied);
}

TEST(CoalescingProperty, CoalescedStreamMatchesUncoalescedFinalState) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());

  uint64_t total_coalesced = 0;
  for (uint64_t trial = 1; trial <= 25; ++trial) {
    auto sw_inline = switchsim::Switch::Create(*spec->fn, *plan, {});
    auto sw_queued = switchsim::Switch::Create(*spec->fn, *plan, {});
    ASSERT_TRUE(sw_inline.ok() && sw_queued.ok());

    Rng rng(trial * 977 + 5);
    Rng apply_rng_a(trial);
    Rng apply_rng_b(trial);
    CoalescingSyncQueue queue;
    std::map<StateKey, StateValue> model;
    uint64_t seq_a = 0, seq_b = 0;

    std::vector<MapMutation> drained_maps;
    std::vector<GlobalMutation> drained_globals;
    const int batches = 30 + static_cast<int>(rng.NextBounded(40));
    for (int b = 0; b < batches; ++b) {
      // One "packet": 1-3 mutations over a 6-key pool, ~25% erases. The
      // small pool guarantees same-key collisions the coalescer must fold.
      std::vector<MapMutation> maps;
      const int muts = 1 + static_cast<int>(rng.NextBounded(3));
      for (int m = 0; m < muts; ++m) {
        const uint64_t k = 1 + rng.NextBounded(6);
        const StateKey key{k, k + 100};
        if (rng.NextBool(0.25)) {
          maps.push_back({0, key, {}, true});
          model.erase(key);
        } else {
          const StateValue value{rng.NextBounded(1 << 16)};
          maps.push_back({0, key, value, false});
          model[key] = value;
        }
      }
      // Uncoalesced path: every batch delivered immediately.
      ApplyOrDie(sw_inline->get(), &seq_a, maps, &apply_rng_a);
      // Queued path: batches accumulate; pumps happen at random points.
      queue.Enqueue(maps, {});
      if (rng.NextBool(0.2) && !queue.empty()) {
        queue.DrainInto(&drained_maps, &drained_globals);
        ApplyOrDie(sw_queued->get(), &seq_b, drained_maps, &apply_rng_b);
      }
    }
    if (!queue.empty()) {
      queue.DrainInto(&drained_maps, &drained_globals);
      ApplyOrDie(sw_queued->get(), &seq_b, drained_maps, &apply_rng_b);
    }
    total_coalesced += queue.coalesced_mutations();

    // Both switches must hold exactly the model's final replicated state.
    for (switchsim::Switch* sw : {sw_inline->get(), sw_queued->get()}) {
      auto* table = sw->table(0);
      ASSERT_NE(table, nullptr);
      EXPECT_EQ(table->size(), model.size());
      for (const auto& [key, value] : model) {
        StateValue got;
        EXPECT_TRUE(table->Lookup(key, &got))
            << "trial " << trial << " lost key " << key[0];
        EXPECT_EQ(got, value);
      }
    }
    // The coalesced path must also have cost strictly fewer (or equal)
    // control-plane batches than the per-packet path.
    EXPECT_LE(seq_b, seq_a);
  }
  EXPECT_GT(total_coalesced, 0u)
      << "key pool never collided; the property test is vacuous";
}

}  // namespace
}  // namespace gallium
