// Click element-graph tests: lowering to IR, element semantics, and a
// composed graph going through the full Gallium pipeline (partition +
// offloaded execution equivalence).
#include <gtest/gtest.h>

#include "click/elements.h"
#include "click/graph.h"
#include "core/compiler.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "workload/packet_gen.h"

namespace gallium::click {
namespace {

net::Packet TcpTo(uint16_t dport, uint8_t ttl = 64) {
  net::Packet pkt = net::MakeTcpPacket(
      {net::MakeIpv4(192, 168, 0, 1), net::MakeIpv4(172, 16, 0, 1), 5000,
       dport, net::kIpProtoTcp},
      net::kTcpAck, 64);
  pkt.ip().ttl = ttl;
  pkt.set_ingress_port(0);
  return pkt;
}

TEST(ClickGraph, MinimalForwarderLowers) {
  ElementGraph graph;
  auto* check = graph.Add<CheckIpHeader>();
  auto* out = graph.Add<ToDevice>(1);
  graph.Connect(check, 0, out);
  auto spec = graph.Lower("forwarder", check);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  runtime::SoftwareMiddlebox mbx(*spec);
  net::Packet ok_pkt = TcpTo(80);
  EXPECT_EQ(mbx.Process(ok_pkt).verdict.kind, runtime::Verdict::Kind::kSend);
  net::Packet dying = TcpTo(80, /*ttl=*/1);
  EXPECT_EQ(mbx.Process(dying).verdict.kind, runtime::Verdict::Kind::kDrop);
}

TEST(ClickGraph, UnconnectedPortDropsLikeClick) {
  ElementGraph graph;
  auto* check = graph.Add<CheckIpHeader>();  // output 0 left dangling
  auto spec = graph.Lower("dangler", check);
  ASSERT_TRUE(spec.ok());
  runtime::SoftwareMiddlebox mbx(*spec);
  net::Packet pkt = TcpTo(80);
  EXPECT_EQ(mbx.Process(pkt).verdict.kind, runtime::Verdict::Kind::kDrop);
}

TEST(ClickGraph, ClassifierRoutesFirstMatch) {
  ElementGraph graph;
  auto* classify = graph.Add<Classifier>(Classifier::Rules{
      {Classifier::Tcp(), Classifier::DstPort(80)},  // output 0
      {Classifier::Tcp()},                           // output 1
  });                                                // output 2 = others
  auto* http = graph.Add<ToDevice>(1);
  auto* tcp = graph.Add<ToDevice>(2);
  auto* rest = graph.Add<ToDevice>(3);
  graph.Connect(classify, 0, http);
  graph.Connect(classify, 1, tcp);
  graph.Connect(classify, 2, rest);
  auto spec = graph.Lower("classify", classify);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  runtime::SoftwareMiddlebox mbx(*spec);
  net::Packet http_pkt = TcpTo(80);
  EXPECT_EQ(mbx.Process(http_pkt).verdict.egress_port, 1u);
  net::Packet ssh_pkt = TcpTo(22);
  EXPECT_EQ(mbx.Process(ssh_pkt).verdict.egress_port, 2u);
  net::Packet udp_pkt = net::MakeUdpPacket({1, 2, 3, 53, net::kIpProtoUdp}, 8);
  udp_pkt.set_ingress_port(0);
  EXPECT_EQ(mbx.Process(udp_pkt).verdict.egress_port, 3u);
}

TEST(ClickGraph, CounterCountsAndTtlDecrements) {
  ElementGraph graph;
  auto* counter = graph.Add<Counter>("pkts");
  auto* ttl = graph.Add<DecIpTtl>();
  auto* out = graph.Add<ToDevice>(1);
  graph.Connect(counter, 0, ttl);
  graph.Connect(ttl, 0, out);
  auto spec = graph.Lower("count_ttl", counter);
  ASSERT_TRUE(spec.ok());

  runtime::SoftwareMiddlebox mbx(*spec);
  for (int i = 0; i < 5; ++i) {
    net::Packet pkt = TcpTo(80);
    ASSERT_TRUE(mbx.Process(pkt).status.ok());
    EXPECT_EQ(pkt.ip().ttl, 63);
  }
  EXPECT_EQ(mbx.state().global_value(0), 5u);
}

TEST(ClickGraph, FlowLookupSplitsHitAndMiss) {
  ElementGraph graph;
  auto* lookup = graph.Add<FlowLookup>("allowed", 1024);
  auto* pass = graph.Add<ToDevice>(1);
  auto* drop = graph.Add<Discard>();
  graph.Connect(lookup, 0, pass);
  graph.Connect(lookup, 1, drop);
  auto spec = graph.Lower("acl", lookup);
  ASSERT_TRUE(spec.ok());

  runtime::SoftwareMiddlebox mbx(*spec);
  net::Packet pkt = TcpTo(80);
  const net::FiveTuple flow = pkt.five_tuple();
  EXPECT_EQ(mbx.Process(pkt).verdict.kind, runtime::Verdict::Kind::kDrop);
  mbx.state().MapInsert(0, {flow.saddr, flow.daddr, flow.sport, flow.dport,
                            flow.protocol},
                        {1});
  net::Packet pkt2 = TcpTo(80);
  EXPECT_EQ(mbx.Process(pkt2).verdict.kind, runtime::Verdict::Kind::kSend);
}

TEST(ClickGraph, RenderConfigListsElementsAndEdges) {
  ElementGraph graph;
  auto* a = graph.Add<CheckIpHeader>();
  auto* z = graph.Add<ToDevice>(1);
  graph.Connect(a, 0, z);
  const std::string config = graph.RenderConfig();
  EXPECT_NE(config.find("CheckIPHeader"), std::string::npos);
  EXPECT_NE(config.find("ToDevice"), std::string::npos);
  EXPECT_NE(config.find("e0[0] -> [0]e1"), std::string::npos);
}

// A realistic composed gateway, end to end through Gallium: classify ->
// count -> ACL -> TTL -> out, with a proxy redirect on port 80.
ElementGraph BuildGateway(Element** input) {
  ElementGraph graph;
  auto* check = graph.Add<CheckIpHeader>();
  auto* classify = graph.Add<Classifier>(Classifier::Rules{
      {Classifier::Tcp(), Classifier::DstPort(80)},  // 0: web -> proxy
      {Classifier::Tcp()},                           // 1: other tcp -> acl
  });                                                // 2: everything else
  auto* web_counter = graph.Add<Counter>("web_pkts");
  auto* to_proxy = graph.Add<SetField>(ir::HeaderField::kIpDst,
                                       mbox::kWebProxyIp);
  auto* acl = graph.Add<FlowLookup>("acl", 4096);
  auto* ttl = graph.Add<DecIpTtl>();
  auto* ttl2 = graph.Add<DecIpTtl>();
  auto* out = graph.Add<ToDevice>(1);
  auto* out2 = graph.Add<ToDevice>(1);
  auto* drop = graph.Add<Discard>();
  auto* pass_counter = graph.Add<Counter>("other_pkts");
  auto* out3 = graph.Add<ToDevice>(1);

  graph.Connect(check, 0, classify);
  graph.Connect(classify, 0, web_counter);
  graph.Connect(web_counter, 0, to_proxy);
  graph.Connect(to_proxy, 0, ttl);
  graph.Connect(ttl, 0, out);
  graph.Connect(classify, 1, acl);
  graph.Connect(acl, 0, ttl2);
  graph.Connect(ttl2, 0, out2);
  graph.Connect(acl, 1, drop);
  graph.Connect(classify, 2, pass_counter);
  graph.Connect(pass_counter, 0, out3);
  *input = check;
  return graph;
}

TEST(ClickGraph, ComposedGatewayCompilesAndPartitions) {
  Element* input = nullptr;
  ElementGraph graph = BuildGateway(&input);
  auto spec = graph.Lower("gateway", input);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec->fn);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_GT(compiled->plan.num_pre, 10)
      << "the classification fast path offloads";
  // The ACL table lands on the switch.
  bool acl_on_switch = false;
  for (const auto& [ref, placement] : compiled->plan.state_placement) {
    if (ref.kind == ir::StateRef::Kind::kMap &&
        placement != partition::StatePlacement::kServerOnly) {
      acl_on_switch = true;
    }
  }
  EXPECT_TRUE(acl_on_switch);
}

TEST(ClickGraph, ComposedGatewayOffloadedMatchesSoftware) {
  Element* input_a = nullptr;
  Element* input_b = nullptr;
  ElementGraph graph_a = BuildGateway(&input_a);
  ElementGraph graph_b = BuildGateway(&input_b);
  auto spec_a = graph_a.Lower("gateway", input_a);
  auto spec_b = graph_b.Lower("gateway", input_b);
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());

  runtime::SoftwareMiddlebox software(*spec_a);
  auto offloaded = runtime::OffloadedMiddlebox::Create(*spec_b);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  Rng rng(404);
  for (int i = 0; i < 300; ++i) {
    net::FiveTuple flow = workload::RandomFlow(
        rng, rng.NextBool(0.3) ? net::kIpProtoUdp : net::kIpProtoTcp);
    if (rng.NextBool(0.3)) flow.dport = 80;
    net::Packet pkt = flow.protocol == net::kIpProtoTcp
                          ? net::MakeTcpPacket(flow, net::kTcpAck, 100)
                          : net::MakeUdpPacket(flow, 100);
    pkt.set_ingress_port(0);
    net::Packet sw_pkt = pkt;
    auto sw_out = software.Process(sw_pkt);
    auto off_out = (*offloaded)->Process(pkt);
    ASSERT_TRUE(sw_out.status.ok() && off_out.status.ok())
        << off_out.status.ToString();
    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << flow.ToString();
    if (sw_out.verdict.kind == runtime::Verdict::Kind::kSend) {
      ASSERT_EQ(sw_pkt.ip().daddr, off_out.out_packet.ip().daddr);
      ASSERT_EQ(sw_pkt.ip().ttl, off_out.out_packet.ip().ttl);
    }
  }
  // Counters converged between deployments.
  EXPECT_EQ(software.state().global_value(0),
            (*offloaded)->server_state().global_value(0));
}


// The two frontends converge: the firewall and proxy expressed as Click
// element graphs behave identically to the handwritten middleboxes and
// offload just as completely.
TEST(ClickGraph, FirewallGraphMatchesHandwrittenMiddlebox) {
  Rng rng(777);
  std::vector<net::FiveTuple> flows;
  std::vector<mbox::MapInitEntry> rules;
  for (int i = 0; i < 30; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    flows.push_back(flow);
    if (i % 3 != 0) {
      rules.push_back(mbox::MapInitEntry{
          {flow.saddr, flow.daddr, flow.sport, flow.dport, flow.protocol},
          {1}});
    }
  }

  // Element-graph firewall.
  ElementGraph graph;
  auto* classify = graph.Add<Classifier>(Classifier::Rules{
      {{ir::HeaderField::kIngressPort, mbox::kPortInternal}}});
  auto* wl_out = graph.Add<FlowLookup>("wl_out", 131072);
  auto* wl_in = graph.Add<FlowLookup>("wl_in", 131072);
  auto* pass_out = graph.Add<ToDevice>(mbox::kPortExternal);
  auto* pass_in = graph.Add<ToDevice>(mbox::kPortInternal);
  auto* drop1 = graph.Add<Discard>();
  auto* drop2 = graph.Add<Discard>();
  graph.Connect(classify, 0, wl_out);
  graph.Connect(classify, 1, wl_in);
  graph.Connect(wl_out, 0, pass_out);
  graph.Connect(wl_out, 1, drop1);
  graph.Connect(wl_in, 0, pass_in);
  graph.Connect(wl_in, 1, drop2);
  auto graph_spec = graph.Lower("graph_firewall", classify);
  ASSERT_TRUE(graph_spec.ok()) << graph_spec.status().ToString();
  for (ir::StateIndex m = 0; m < graph_spec->fn->maps().size(); ++m) {
    graph_spec->init.maps.push_back({m, rules});
  }

  // Handwritten firewall with the same rules.
  auto hand_spec = mbox::BuildFirewall(rules, rules);
  ASSERT_TRUE(hand_spec.ok());

  // Both fully offload.
  core::Compiler compiler;
  auto graph_compiled = compiler.Compile(*graph_spec->fn);
  ASSERT_TRUE(graph_compiled.ok());
  EXPECT_EQ(graph_compiled->plan.num_non_offloaded, 0)
      << "the graph firewall must offload completely too";

  runtime::SoftwareMiddlebox hand(*hand_spec);
  auto graph_off = runtime::OffloadedMiddlebox::Create(*graph_spec);
  ASSERT_TRUE(graph_off.ok()) << graph_off.status().ToString();

  for (const net::FiveTuple& flow : flows) {
    for (uint32_t ingress : {mbox::kPortInternal, mbox::kPortExternal}) {
      net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpAck, 64);
      pkt.set_ingress_port(ingress);
      net::Packet hand_pkt = pkt;
      auto hand_out = hand.Process(hand_pkt);
      auto graph_out = (*graph_off)->Process(pkt);
      ASSERT_TRUE(hand_out.status.ok() && graph_out.status.ok());
      ASSERT_EQ(hand_out.verdict.kind, graph_out.verdict.kind)
          << flow.ToString() << " ingress=" << ingress;
      EXPECT_TRUE(graph_out.fast_path);
    }
  }
}

TEST(ClickGraph, ProxyGraphMatchesHandwrittenMiddlebox) {
  ElementGraph graph;
  auto* classify = graph.Add<Classifier>(Classifier::Rules{
      {Classifier::Tcp(), Classifier::DstPort(80)}});
  auto* set_addr = graph.Add<SetField>(ir::HeaderField::kIpDst,
                                       mbox::kWebProxyIp);
  auto* set_port = graph.Add<SetField>(ir::HeaderField::kDstPort,
                                       mbox::kWebProxyPort);
  auto* out = graph.Add<ToDevice>(mbox::kPortExternal);
  auto* out2 = graph.Add<ToDevice>(mbox::kPortExternal);
  graph.Connect(classify, 0, set_addr);
  graph.Connect(set_addr, 0, set_port);
  graph.Connect(set_port, 0, out);
  graph.Connect(classify, 1, out2);
  auto graph_spec = graph.Lower("graph_proxy", classify);
  ASSERT_TRUE(graph_spec.ok());

  auto hand_spec = mbox::BuildProxy({80});
  ASSERT_TRUE(hand_spec.ok());
  runtime::SoftwareMiddlebox hand(*hand_spec);
  auto graph_off = runtime::OffloadedMiddlebox::Create(*graph_spec);
  ASSERT_TRUE(graph_off.ok());

  Rng rng(778);
  for (int i = 0; i < 60; ++i) {
    net::FiveTuple flow = workload::RandomFlow(
        rng, rng.NextBool(0.3) ? net::kIpProtoUdp : net::kIpProtoTcp);
    if (rng.NextBool(0.4)) flow.dport = 80;
    net::Packet pkt = flow.protocol == net::kIpProtoTcp
                          ? net::MakeTcpPacket(flow, net::kTcpAck, 32)
                          : net::MakeUdpPacket(flow, 32);
    pkt.set_ingress_port(mbox::kPortInternal);
    net::Packet hand_pkt = pkt;
    auto hand_out = hand.Process(hand_pkt);
    auto graph_out = (*graph_off)->Process(pkt);
    ASSERT_TRUE(hand_out.status.ok() && graph_out.status.ok());
    ASSERT_EQ(hand_out.verdict.kind, graph_out.verdict.kind);
    ASSERT_EQ(hand_pkt.ip().daddr, graph_out.out_packet.ip().daddr)
        << flow.ToString();
    ASSERT_EQ(hand_pkt.dport(), graph_out.out_packet.dport());
    EXPECT_TRUE(graph_out.fast_path);
  }
}

}  // namespace
}  // namespace gallium::click
