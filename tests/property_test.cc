// Property-based testing: randomly generated middlebox programs are pushed
// through the whole pipeline and must uphold the paper's three goals:
//
//  1. Functional equivalence — the offloaded deployment produces exactly
//     the software baseline's verdicts, header rewrites, and state.
//  2. Constraint conformance — every partition plan satisfies the resource
//     constraints and dependency ordering (checked by VerifyPlan + here).
//  3. Concurrency safety — replicated switch state equals the server's
//     authoritative copy after every packet (atomic update + output commit).
//
// The generator builds structured, verifiable programs with random state
// declarations (annotated and unannotated maps, vectors, globals), random
// ALU/header/payload/time operations (P4-supported and not), nested
// branches, and early send/drop exits.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "verify/mutation.h"
#include "verify/validator.h"
#include "workload/packet_gen.h"

#include "program_generator.h"

namespace gallium {
namespace {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Reg;
using ir::Value;
using ir::Width;

using testing::ProgramGenerator;

std::string HeadersOf(const net::Packet& pkt) {
  return pkt.ToString() + " eth=" + pkt.eth().dst.ToString() + "/" +
         pkt.eth().src.ToString() +
         " src=" + net::Ipv4ToString(pkt.ip().saddr) +
         " dst=" + net::Ipv4ToString(pkt.ip().daddr) +
         " ttl=" + std::to_string(pkt.ip().ttl);
}

class RandomProgramEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramEquivalence, OffloadedMatchesBaseline) {
  ProgramGenerator gen_a(GetParam());
  ProgramGenerator gen_b(GetParam());
  auto spec_a = gen_a.Generate();
  auto spec_b = gen_b.Generate();
  ASSERT_TRUE(spec_a.ok()) << spec_a.status().ToString();
  ASSERT_TRUE(spec_b.ok());

  // Goal 2: the plan must exist and satisfy all constraints (VerifyPlan
  // runs inside Partitioner::Run).
  runtime::SoftwareMiddlebox software(*spec_a);
  auto offloaded = runtime::OffloadedMiddlebox::Create(*spec_b);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  // Dependency ordering invariant on top of VerifyPlan: no statement may be
  // assigned to an earlier partition than anything it depends on.
  const auto& plan = (*offloaded)->plan();
  {
    partition::Partitioner partitioner(*spec_a->fn, {});
    analysis::DependencyGraph deps(*spec_a->fn,
                                   analysis::CfgInfo(*spec_a->fn));
    auto rank = [&](ir::InstId s) {
      return plan.assignment[s] == partition::Part::kPre           ? 0
             : plan.assignment[s] == partition::Part::kNonOffloaded ? 1
                                                                     : 2;
    };
    for (const auto& edge : deps.edges()) {
      if (edge.from == edge.to) continue;
      const ir::Instruction* from = spec_a->fn->Find(edge.from);
      if (from != nullptr && from->op == ir::Opcode::kBranch) continue;
      EXPECT_LE(rank(edge.from), rank(edge.to))
          << "dependency inversion in random program, seed " << GetParam();
    }
  }

  // Goal 1 + 3: run random traffic through both deployments.
  Rng traffic_rng(GetParam() * 31 + 7);
  workload::TraceOptions options;
  options.num_flows = 25;
  options.min_flow_bytes = 100;
  options.max_flow_bytes = 20000;
  options.marked_fraction = 0.25;
  options.marker = "FUZZ";
  const workload::Trace trace = workload::MakeTrace(traffic_rng, options);

  uint64_t now_ms = 0;
  for (const net::Packet& original : trace.packets) {
    ++now_ms;
    net::Packet sw_pkt = original;
    auto sw_out = software.Process(sw_pkt, now_ms);
    ASSERT_TRUE(sw_out.status.ok()) << sw_out.status.ToString();
    auto off_out = (*offloaded)->Process(original, now_ms);
    ASSERT_TRUE(off_out.status.ok())
        << off_out.status.ToString() << "\nseed=" << GetParam()
        << " pkt=" << original.ToString();

    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << "seed=" << GetParam() << " pkt=" << original.ToString();
    if (sw_out.verdict.kind == runtime::Verdict::Kind::kSend) {
      ASSERT_EQ(sw_out.verdict.egress_port, off_out.verdict.egress_port);
      ASSERT_EQ(HeadersOf(sw_pkt), HeadersOf(off_out.out_packet))
          << "seed=" << GetParam();
    }
  }

  // Goal 3: replicated state converged.
  for (const auto& [ref, placement] : plan.state_placement) {
    if (placement != partition::StatePlacement::kReplicated ||
        ref.kind != ir::StateRef::Kind::kMap) {
      continue;
    }
    auto* table = (*offloaded)->device().table(ref.index);
    ASSERT_NE(table, nullptr);
    const auto& server_map =
        (*offloaded)->server_state().map_contents(ref.index);
    EXPECT_EQ(table->size(), server_map.size())
        << "replicated map diverged, seed=" << GetParam();
    for (const auto& [key, value] : server_map) {
      runtime::StateValue sv;
      EXPECT_TRUE(table->Lookup(key, &sv));
      EXPECT_EQ(sv, value);
    }
  }

  // The state of the two software-visible worlds must agree: every map in
  // the baseline equals the corresponding map in the offloaded system
  // (server copy, or switch copy for switch-only state).
  for (ir::StateIndex m = 0; m < spec_a->fn->maps().size(); ++m) {
    const ir::StateRef ref{ir::StateRef::Kind::kMap, m};
    const auto it = plan.state_placement.find(ref);
    if (it == plan.state_placement.end()) continue;  // untouched map
    const auto& baseline = software.state().map_contents(m);
    if (it->second == partition::StatePlacement::kSwitchOnly) {
      // Maps are never written from the switch, so a switch-only map can
      // only be one the program never writes — nothing to compare.
      continue;
    }
    EXPECT_EQ(baseline, (*offloaded)->server_state().map_contents(m))
        << "map " << spec_a->fn->map(m).name << " diverged, seed "
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomProgramEquivalence,
                         ::testing::Range<uint64_t>(1, 41));

// Random programs under random *constraints* still partition and verify.
class RandomConstraintSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(RandomConstraintSweep, PlansStayValidUnderTightConstraints) {
  const auto [seed, depth] = GetParam();
  ProgramGenerator gen(seed);
  auto spec = gen.Generate();
  ASSERT_TRUE(spec.ok());

  partition::SwitchConstraints constraints;
  constraints.pipeline_depth = depth;
  constraints.metadata_bytes = 16 + static_cast<int>(seed % 64);
  constraints.transfer_bytes = 8 + static_cast<int>(seed % 12);
  partition::Partitioner partitioner(*spec->fn, constraints);
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString() << " seed=" << seed
                         << " depth=" << depth;
  EXPECT_LE(plan->to_server.Bytes(*spec->fn), constraints.transfer_bytes);
  EXPECT_LE(plan->to_switch.Bytes(*spec->fn), constraints.transfer_bytes);
  EXPECT_LE(plan->metadata_peak_bytes, constraints.metadata_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomConstraintSweep,
    ::testing::Combine(::testing::Range<uint64_t>(1, 11),
                       ::testing::Values(2, 6, 12)));

// Random programs compile all the way to P4 + C++ text.
class RandomProgramCompile : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramCompile, FullPipelineSucceeds) {
  ProgramGenerator gen(GetParam());
  auto spec = gen.Generate();
  ASSERT_TRUE(spec.ok());
  core::Compiler compiler;
  auto result = compiler.Compile(*spec->fn);
  ASSERT_TRUE(result.ok()) << result.status().ToString() << " seed="
                           << GetParam();
  EXPECT_GT(result->p4_loc, 50);
  EXPECT_GT(result->server_loc, 10);
  // Balanced braces in both artifacts.
  for (const std::string* source :
       {&result->p4_source, &result->server_source}) {
    int depth = 0;
    for (char ch : *source) {
      if (ch == '{') ++depth;
      if (ch == '}') --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomProgramCompile,
                         ::testing::Range<uint64_t>(100, 120));

// The translation validator over the fuzz corpus: every correct plan the
// partitioner emits for a random program must validate with zero false
// alarms (the validator's symbolic replay is exact for loop-free programs,
// so any mismatch here is a partitioner or validator bug).
class RandomProgramValidation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramValidation, ValidatorHasZeroFalseAlarms) {
  ProgramGenerator gen(GetParam());
  auto spec = gen.Generate();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  core::Compiler compiler;
  auto result = compiler.Compile(*spec->fn);
  ASSERT_TRUE(result.ok()) << result.status().ToString()
                           << " seed=" << GetParam();
  const verify::ValidationResult v =
      verify::ValidateTranslation(*spec->fn, result->plan, {});
  EXPECT_TRUE(v.equivalent) << "seed=" << GetParam() << "\n" << v.Summary();
  EXPECT_GT(v.paths_checked, 0) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomProgramValidation,
                         ::testing::Range<uint64_t>(1, 41));

// And the converse: seeded bugs in those same plans must be caught. Every
// mutant the campaign generates for a random program is detected.
class RandomProgramMutationCatch : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramMutationCatch, EveryGeneratedMutantIsCaught) {
  ProgramGenerator gen(GetParam());
  auto spec = gen.Generate();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  core::Compiler compiler;
  auto result = compiler.Compile(*spec->fn);
  ASSERT_TRUE(result.ok()) << result.status().ToString()
                           << " seed=" << GetParam();
  const verify::CampaignResult cr = verify::RunMutationCampaign(
      *spec->fn, result->plan, {}, /*max_candidates_per_class=*/2);
  EXPECT_EQ(cr.caught, cr.generated)
      << "seed=" << GetParam() << "\n" << cr.Summary();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomProgramMutationCatch,
                         ::testing::Range<uint64_t>(1, 9));


// The §7 cache extension under fuzz: random programs with tiny switch
// caches (constant eviction + miss recovery) must still match the software
// baseline packet for packet.
class RandomProgramCachedEquivalence
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramCachedEquivalence, CachedOffloadMatchesBaseline) {
  ProgramGenerator gen_a(GetParam());
  ProgramGenerator gen_b(GetParam());
  auto spec_a = gen_a.Generate();
  auto spec_b = gen_b.Generate();
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());

  runtime::SoftwareMiddlebox software(*spec_a);
  runtime::OffloadedOptions options;
  options.cache_entries_per_table = 4;  // brutal: near-constant eviction
  auto offloaded = runtime::OffloadedMiddlebox::Create(*spec_b, options);
  if (!offloaded.ok()) {
    // Programs with switch-only written globals legitimately reject cache
    // mode; nothing else may fail.
    ASSERT_EQ(offloaded.status().code(), ErrorCode::kUnsupported)
        << offloaded.status().ToString();
    return;
  }

  Rng traffic_rng(GetParam() * 17 + 3);
  workload::TraceOptions trace_options;
  trace_options.num_flows = 30;
  trace_options.min_flow_bytes = 100;
  trace_options.max_flow_bytes = 10000;
  const workload::Trace trace = workload::MakeTrace(traffic_rng, trace_options);

  uint64_t now_ms = 0;
  for (const net::Packet& original : trace.packets) {
    ++now_ms;
    net::Packet sw_pkt = original;
    auto sw_out = software.Process(sw_pkt, now_ms);
    ASSERT_TRUE(sw_out.status.ok());
    auto off_out = (*offloaded)->Process(original, now_ms);
    ASSERT_TRUE(off_out.status.ok())
        << off_out.status.ToString() << " seed=" << GetParam();
    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << "seed=" << GetParam() << " pkt=" << original.ToString();
    if (sw_out.verdict.kind == runtime::Verdict::Kind::kSend) {
      ASSERT_EQ(HeadersOf(sw_pkt), HeadersOf(off_out.out_packet))
          << "seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomProgramCachedEquivalence,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace gallium
