// Tests for the §7 table-cache extension: the switch holds only a fraction
// of each replicated map; misses are non-authoritative and fall back to the
// server, which reprocesses the packet and refreshes the cache.
#include <gtest/gtest.h>

#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "workload/packet_gen.h"

namespace gallium::runtime {
namespace {

OffloadedOptions CacheOptions(uint64_t entries) {
  OffloadedOptions options;
  options.cache_entries_per_table = entries;
  return options;
}

TEST(TableCache, EquivalentToBaselineUnderHeavyEviction) {
  // A cache of 8 entries with 64 concurrent flows: constant eviction, every
  // re-touched evicted flow takes the miss path — behavior must still match
  // the software baseline exactly.
  auto spec_sw = mbox::BuildMiniLb();
  auto spec_off = mbox::BuildMiniLb();
  ASSERT_TRUE(spec_sw.ok() && spec_off.ok());
  SoftwareMiddlebox software(*spec_sw);
  auto offloaded = OffloadedMiddlebox::Create(*spec_off, CacheOptions(8));
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  Rng rng(71);
  std::vector<net::FiveTuple> flows;
  for (int i = 0; i < 64; ++i) flows.push_back(workload::RandomFlow(rng));

  for (int round = 0; round < 5; ++round) {
    for (const net::FiveTuple& flow : flows) {
      net::Packet pkt = net::MakeTcpPacket(
          flow, round == 0 ? net::kTcpSyn : net::kTcpAck, 64);
      pkt.set_ingress_port(mbox::kPortInternal);
      net::Packet sw_pkt = pkt;
      auto sw_out = software.Process(sw_pkt);
      auto off_out = (*offloaded)->Process(pkt);
      ASSERT_TRUE(sw_out.status.ok());
      ASSERT_TRUE(off_out.status.ok()) << off_out.status.ToString();
      ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind);
      ASSERT_EQ(sw_pkt.ip().daddr, off_out.out_packet.ip().daddr)
          << "round " << round << " flow " << flow.ToString();
    }
  }
  // With 64 flows and 8 slots there must have been cache-miss recoveries.
  EXPECT_GT((*offloaded)->cache_miss_aborts(), 0u);
  // The cache never exceeds its capacity.
  auto* table = (*offloaded)->device().table(0);
  ASSERT_NE(table, nullptr);
  EXPECT_LE(table->size(), 8u);
  EXPECT_GT(table->evictions(), 0u);
}

TEST(TableCache, HotFlowStaysOnFastPathAfterRefill) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  auto mbx = OffloadedMiddlebox::Create(*spec, CacheOptions(4));
  ASSERT_TRUE(mbx.ok());

  Rng rng(72);
  const net::FiveTuple hot = workload::RandomFlow(rng);

  auto send_hot = [&] {
    net::Packet pkt = net::MakeTcpPacket(hot, net::kTcpAck, 64);
    pkt.set_ingress_port(mbox::kPortInternal);
    return (*mbx)->Process(pkt);
  };

  // First packet: miss (new flow), server assigns the backend and installs
  // the entry in the cache.
  auto first = send_hot();
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.fast_path);

  // Second packet: cache hit, pure switch processing.
  auto second = send_hot();
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.fast_path);
  EXPECT_EQ(first.out_packet.ip().daddr, second.out_packet.ip().daddr);

  // Blow the 4-entry cache with other flows, evicting the hot entry.
  for (int i = 0; i < 8; ++i) {
    net::Packet pkt = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpSyn, 0);
    pkt.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(pkt).status.ok());
  }

  // The hot flow now misses — but keeps its backend (server is
  // authoritative) and the cache refreshes so the next packet hits again.
  const uint64_t misses_before = (*mbx)->cache_miss_aborts();
  auto third = send_hot();
  ASSERT_TRUE(third.status.ok());
  EXPECT_FALSE(third.fast_path);
  EXPECT_GT((*mbx)->cache_miss_aborts(), misses_before);
  EXPECT_EQ(third.out_packet.ip().daddr, first.out_packet.ip().daddr)
      << "affinity must survive eviction";

  auto fourth = send_hot();
  ASSERT_TRUE(fourth.status.ok());
  EXPECT_TRUE(fourth.fast_path) << "cache refilled after the miss";
}

TEST(TableCache, ReducesSwitchMemoryFootprint) {
  auto spec_full = mbox::BuildLoadBalancer();
  auto spec_cached = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec_full.ok() && spec_cached.ok());
  auto full = OffloadedMiddlebox::Create(*spec_full);
  auto cached = OffloadedMiddlebox::Create(*spec_cached, CacheOptions(1024));
  ASSERT_TRUE(full.ok() && cached.ok());
  const auto full_mem = (*full)->device().Resources().memory_bytes_used;
  const auto cached_mem = (*cached)->device().Resources().memory_bytes_used;
  EXPECT_LT(cached_mem, full_mem / 16)
      << "a 1K cache of a 128K-entry table must shrink memory dramatically";
}

TEST(TableCache, NatWorksWithCachedTranslationTables) {
  auto spec_sw = mbox::BuildMazuNat();
  auto spec_off = mbox::BuildMazuNat();
  ASSERT_TRUE(spec_sw.ok() && spec_off.ok());
  SoftwareMiddlebox software(*spec_sw);
  auto mbx = OffloadedMiddlebox::Create(*spec_off, CacheOptions(16));
  ASSERT_TRUE(mbx.ok()) << mbx.status().ToString();

  Rng rng(73);
  for (int i = 0; i < 40; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
    pkt.set_ingress_port(mbox::kPortInternal);
    net::Packet sw_pkt = pkt;
    auto sw_out = software.Process(sw_pkt);
    auto off_out = (*mbx)->Process(pkt);
    ASSERT_TRUE(sw_out.status.ok() && off_out.status.ok())
        << off_out.status.ToString();
    ASSERT_EQ(sw_pkt.sport(), off_out.out_packet.sport())
        << "port allocation must match under caching";
  }
}

TEST(TableCache, RejectsSwitchOnlyGlobalWrites) {
  // A program whose only access to a global is a switch-side write cannot
  // run in cache mode: the server could not replay the pre partition.
  frontend::MiddleboxBuilder mb("switch_only_global");
  auto g = mb.DeclareGlobal("marker", ir::Width::kU32, 0);
  auto& b = mb.b();
  const ir::Reg ttl = b.HeaderRead(ir::HeaderField::kIpTtl);
  g.Write(ir::R(ttl));
  b.Send(ir::Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  mbox::MiddleboxSpec spec;
  spec.name = "switch_only_global";
  spec.fn = std::move(*fn);
  auto mbx = OffloadedMiddlebox::Create(spec, CacheOptions(16));
  EXPECT_FALSE(mbx.ok());
  EXPECT_EQ(mbx.status().code(), ErrorCode::kUnsupported);
}

TEST(TableCache, DisabledModeUnaffected) {
  // cache_entries_per_table = 0 must behave exactly as before.
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  auto mbx = OffloadedMiddlebox::Create(*spec, CacheOptions(0));
  ASSERT_TRUE(mbx.ok());
  EXPECT_FALSE((*mbx)->device().IsCachedMap(0));
  Rng rng(74);
  net::Packet pkt = net::MakeTcpPacket(workload::RandomFlow(rng),
                                       net::kTcpSyn, 0);
  pkt.set_ingress_port(mbox::kPortInternal);
  auto out = (*mbx)->Process(pkt);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ((*mbx)->cache_miss_aborts(), 0u);
}

}  // namespace
}  // namespace gallium::runtime
