// Partitioning tests: the label-removing algorithm, the resource
// constraints, and the MiniLB result of Fig. 3/4.
#include "partition/partitioner.h"

#include <gtest/gtest.h>

#include "frontend/middlebox_builder.h"
#include "ir/printer.h"
#include "mbox/middleboxes.h"

namespace gallium {
namespace {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::Opcode;
using ir::R;
using ir::Width;
using partition::Part;
using partition::Partitioner;
using partition::PartitionPlan;
using partition::SwitchConstraints;

// Finds the first instruction with the given opcode (and optional state
// name) and returns its id.
ir::InstId FindInst(const ir::Function& fn, Opcode op,
                    const std::string& state_name = "") {
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op != op) continue;
      if (!state_name.empty()) {
        ir::StateRef ref;
        if (!ir::Function::InstStateRef(inst, &ref)) continue;
        if (fn.StateName(ref) != state_name) continue;
      }
      return inst.id;
    }
  }
  return ir::kInvalidInst;
}

std::vector<ir::InstId> FindAll(const ir::Function& fn, Opcode op) {
  std::vector<ir::InstId> out;
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op == op) out.push_back(inst.id);
    }
  }
  return out;
}

PartitionPlan MustPartition(const ir::Function& fn,
                            SwitchConstraints c = SwitchConstraints{}) {
  Partitioner p(fn, c);
  auto plan = p.Run();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

TEST(PartitionerMiniLb, ReproducesFigure4) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  const ir::Function& fn = *spec->fn;
  const PartitionPlan plan = MustPartition(fn);

  // The map lookup is offloaded into the pre-processing partition.
  const ir::InstId find = FindInst(fn, Opcode::kMapGet, "map");
  ASSERT_NE(find, ir::kInvalidInst);
  EXPECT_EQ(plan.PartOf(find), Part::kPre);

  // The insert and the modulo-based backend selection stay on the server.
  const ir::InstId insert = FindInst(fn, Opcode::kMapPut, "map");
  ASSERT_NE(insert, ir::kInvalidInst);
  EXPECT_EQ(plan.PartOf(insert), Part::kNonOffloaded);
  const ir::InstId vec_get = FindInst(fn, Opcode::kVectorGet, "backends");
  ASSERT_NE(vec_get, ir::kInvalidInst);
  EXPECT_EQ(plan.PartOf(vec_get), Part::kNonOffloaded);

  // The xor hash and key computation run in pre-processing.
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op == Opcode::kAlu && inst.alu == AluOp::kXor) {
        EXPECT_EQ(plan.PartOf(inst.id), Part::kPre) << "hash32 must be pre";
      }
      if (inst.op == Opcode::kAlu && inst.alu == AluOp::kMod) {
        EXPECT_EQ(plan.PartOf(inst.id), Part::kNonOffloaded)
            << "modulo is not P4-expressible";
      }
    }
  }

  // Two sends: the fast-path one is pre, the slow-path one is post
  // (it consumes the server-chosen backend).
  const auto sends = FindAll(fn, Opcode::kSend);
  ASSERT_EQ(sends.size(), 2u);
  std::set<Part> send_parts{plan.PartOf(sends[0]), plan.PartOf(sends[1])};
  EXPECT_TRUE(send_parts.count(Part::kPre));
  EXPECT_TRUE(send_parts.count(Part::kPost));

  // The connection map is replicated (switch reads, server inserts);
  // the backend vector is server-only.
  const auto& placement = plan.state_placement;
  const ir::StateRef map_ref{ir::StateRef::Kind::kMap, 0};
  ASSERT_TRUE(placement.count(map_ref));
  EXPECT_EQ(placement.at(map_ref), partition::StatePlacement::kReplicated);

  // Transfer header: the branch condition crosses as a bit, hash-derived
  // values as variables; everything fits in the paper's 20-byte budget.
  EXPECT_GE(plan.to_server.cond_regs.size(), 1u);
  EXPECT_LE(plan.to_server.Bytes(fn), 20);
  EXPECT_LE(plan.to_switch.Bytes(fn), 20);
}

TEST(PartitionerMiniLb, OffloadsMajorityOfStatements) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  const PartitionPlan plan = MustPartition(*spec->fn);
  EXPECT_GT(plan.num_pre, 0);
  EXPECT_GT(plan.num_non_offloaded, 0);
  EXPECT_GT(plan.num_post, 0);
  // Most statements leave the server.
  EXPECT_GT(plan.num_pre + plan.num_post, plan.num_non_offloaded);
}

TEST(PartitionerRules, LoopBodyIsNeverOffloaded) {
  MiddleboxBuilder mb("looper");
  auto vec = mb.DeclareVector("items", Width::kU16, 64);
  auto matched = mb.DeclareGlobal("matched", Width::kU32, 0);
  auto& b = mb.b();
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");
  const ir::Reg i0 = b.Assign(Imm(0), Width::kU32, "i");
  // while (i < items.size()) { if (items[i] == dport) matched++; i++; }
  mb.While(
      [&] {
        const ir::Reg n = vec.Size();
        return R(b.Alu(AluOp::kLt, R(i0), R(n), "cont"));
      },
      [&] {
        const ir::Reg item = vec.At(R(i0));
        const ir::Reg eq = b.Alu(AluOp::kEq, R(item), R(dport), "eq");
        mb.If(R(eq), [&] {
          const ir::Reg m = matched.Read();
          matched.Write(R(b.Alu(AluOp::kAdd, R(m), Imm(1), Width::kU32)));
        });
        // i is intentionally re-assigned through a fresh register write to
        // the same storage: model the increment as a global-free cycle by
        // overwriting i0 via a second Assign to the same register is not
        // expressible; instead the loop naturally self-depends through
        // `matched` and the loop branch.
      });
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();

  const PartitionPlan plan = MustPartition(**fn);
  // Everything inside the loop must be non-offloaded (rule 5).
  const ir::Function& f = **fn;
  analysis::CfgInfo cfg(f);
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb.insts) {
      if (cfg.InLoop(inst.id) && !inst.IsTerminator()) {
        EXPECT_EQ(plan.PartOf(inst.id), Part::kNonOffloaded)
            << "loop statement " << inst.id << " must stay on the server";
      }
    }
  }
}

TEST(PartitionerRules, UnsupportedAncestorRemovesPreFromDependents) {
  MiddleboxBuilder mb("chain");
  auto& b = mb.b();
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  // mod is not P4-supported; everything downstream of it loses "pre".
  const ir::Reg m = b.Alu(AluOp::kMod, R(saddr), Imm(7), Width::kU32, "m");
  const ir::Reg plus = b.Alu(AluOp::kAdd, R(m), Imm(1), Width::kU32, "plus");
  b.HeaderWrite(HeaderField::kIpDst, R(plus));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  const PartitionPlan plan = MustPartition(**fn);
  const ir::InstId mod_id = FindInst(**fn, Opcode::kAlu);  // first ALU is mod
  EXPECT_EQ(plan.PartOf(mod_id), Part::kNonOffloaded);
  // The add depends on mod, so it cannot be pre; it lands in post.
  bool found_add = false;
  for (const auto& bb : (*fn)->blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op == Opcode::kAlu && inst.alu == AluOp::kAdd) {
        EXPECT_EQ(plan.PartOf(inst.id), Part::kPost);
        found_add = true;
      }
    }
  }
  EXPECT_TRUE(found_add);
}

TEST(PartitionerRules, SingleAccessPerStateOnSwitch) {
  // Two offloadable lookups of the same map force the partitioner to keep
  // only one on the switch (Constraint 3).
  MiddleboxBuilder mb("double_lookup");
  auto map = mb.DeclareMap("m", {Width::kU16}, {Width::kU32}, 1024);
  auto& b = mb.b();
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");
  const auto r1 = map.Find({R(sport)}, "first");
  const auto r2 = map.Find({R(dport)}, "second");
  const ir::Reg sum =
      b.Alu(AluOp::kAdd, R(r1.values[0]), R(r2.values[0]), Width::kU32, "sum");
  b.HeaderWrite(HeaderField::kIpDst, R(sum));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  const PartitionPlan plan = MustPartition(**fn);
  int on_switch = 0;
  for (const auto& bb : (*fn)->blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op == Opcode::kMapGet && plan.OnSwitch(inst.id)) ++on_switch;
    }
  }
  EXPECT_LE(on_switch, 1);
}

TEST(PartitionerConstraints, PipelineDepthForcesLongChainsOff) {
  MiddleboxBuilder mb("deep_chain");
  auto& b = mb.b();
  ir::Reg v = b.HeaderRead(HeaderField::kIpSrc, "v0");
  for (int i = 0; i < 30; ++i) {
    v = b.Alu(AluOp::kAdd, R(v), Imm(i + 1), Width::kU32,
              "v" + std::to_string(i + 1));
  }
  b.HeaderWrite(HeaderField::kIpDst, R(v));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  SwitchConstraints c;
  c.pipeline_depth = 8;
  const PartitionPlan plan = MustPartition(**fn, c);
  // The chain is longer than the pipeline; some of it must fall back to the
  // server.
  EXPECT_GT(plan.num_non_offloaded, 0);
}

TEST(PartitionerConstraints, MemoryCapEvictsLargeTables) {
  MiddleboxBuilder mb("big_table");
  auto map = mb.DeclareMap("huge", {Width::kU32}, {Width::kU32},
                           /*max_entries=*/1 << 20);  // ~12 MB
  auto& b = mb.b();
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  const auto r = map.Find({R(saddr)});
  b.HeaderWrite(HeaderField::kIpDst, R(r.values[0]));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  SwitchConstraints c;
  c.memory_bytes = 1024;  // far too small for the table
  const PartitionPlan plan = MustPartition(**fn, c);
  const ir::InstId find = FindInst(**fn, Opcode::kMapGet);
  EXPECT_EQ(plan.PartOf(find), Part::kNonOffloaded);
}

TEST(PartitionerConstraints, TransferCapMovesCodeToServer) {
  // Many independent pre-computed values all consumed by a server-only
  // statement would exceed the 20-byte transfer budget; the partitioner
  // must demote producers until the header fits.
  MiddleboxBuilder mb("wide_transfer");
  auto sink = mb.DeclareMap("sink", {Width::kU32}, {Width::kU32}, 0);  // server
  auto& b = mb.b();
  std::vector<ir::Value> vals;
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  ir::Reg acc = saddr;
  for (int i = 0; i < 10; ++i) {
    const ir::Reg r = b.Alu(AluOp::kAdd, R(saddr), Imm(i), Width::kU32,
                            "w" + std::to_string(i));
    // Each value is consumed on the server through the sink map insert.
    sink.Insert({R(r)}, {R(acc)});
    acc = r;
  }
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  const PartitionPlan plan = MustPartition(**fn);
  EXPECT_LE(plan.to_server.Bytes(**fn), 20);
  EXPECT_LE(plan.to_switch.Bytes(**fn), 20);
}

TEST(PartitionerAllMiddleboxes, PlansAreValidAndOffloadFastPaths) {
  for (const auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    SCOPED_TRACE(spec.name);
    const PartitionPlan plan = MustPartition(*spec.fn);
    EXPECT_GT(plan.num_pre, 0) << "no pre-processing offload for "
                               << spec.name;
    // Every map lookup that the paper says lands on the switch does.
    if (spec.name == "firewall" || spec.name == "proxy") {
      EXPECT_EQ(plan.num_non_offloaded, 0)
          << spec.name << " should be fully offloaded\n"
          << plan.Summary(*spec.fn);
    }
    EXPECT_LE(plan.to_server.Bytes(*spec.fn), 20);
    EXPECT_LE(plan.to_switch.Bytes(*spec.fn), 20);
  }
}


TEST(PartitionerObjective, WeightedKeepsTableLookupsUnderPressure) {
  // Six 32-bit values must cross to the server (24 bytes > the 20-byte
  // cap), so the greedy refinement demotes producers. Under the paper's
  // statement-count objective the victim at equal depth is id-ordered and
  // the table lookup goes first; under the weighted objective (§7) the
  // cheap ALU results are sacrificed and the lookup stays offloaded.
  auto build = [] {
    MiddleboxBuilder mb("pressure");
    auto m = mb.DeclareMap("m", {Width::kU32}, {Width::kU32}, 1024);
    auto sink = mb.DeclareMap(
        "sink",
        {Width::kU32, Width::kU32, Width::kU32, Width::kU32, Width::kU32,
         Width::kU32},
        {Width::kU8}, /*max_entries=*/0);  // unannotated -> server only
    auto& b = mb.b();
    const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
    const auto lk = m.Find({R(saddr)}, "lk");
    std::vector<ir::Value> vals = {R(lk.values[0])};
    for (int i = 0; i < 5; ++i) {
      vals.push_back(R(b.Alu(AluOp::kAdd, R(saddr), Imm(i + 1), Width::kU32,
                             "v" + std::to_string(i))));
    }
    b.MapPut(sink.index(), std::span<const ir::Value>(vals),
             std::initializer_list<ir::Value>{Imm(1)});
    b.Send(Imm(1));
    return std::move(mb).Finish();
  };

  auto fn_count = build();
  auto fn_weighted = build();
  ASSERT_TRUE(fn_count.ok() && fn_weighted.ok());

  SwitchConstraints count_c;
  count_c.objective = partition::OffloadObjective::kStatementCount;
  const PartitionPlan count_plan = MustPartition(**fn_count, count_c);

  SwitchConstraints weighted_c;
  weighted_c.objective = partition::OffloadObjective::kWeightedCycles;
  const PartitionPlan weighted_plan = MustPartition(**fn_weighted, weighted_c);

  const ir::InstId lookup = FindInst(**fn_weighted, Opcode::kMapGet, "m");
  ASSERT_NE(lookup, ir::kInvalidInst);
  EXPECT_TRUE(weighted_plan.OnSwitch(lookup))
      << "the weighted objective must protect the table lookup\n"
      << weighted_plan.Summary(**fn_weighted);

  // Both plans respect the cap; the weighted one retains at least as much
  // offload benefit.
  EXPECT_LE(count_plan.to_server.Bytes(**fn_count), 20);
  EXPECT_LE(weighted_plan.to_server.Bytes(**fn_weighted), 20);
  partition::OffloadWeights weights;
  auto total_weight = [&](const ir::Function& fn, const PartitionPlan& plan) {
    int w = 0;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb.insts) {
        if (!inst.IsTerminator() && plan.OnSwitch(inst.id)) {
          w += weights.WeightOf(inst);
        }
      }
    }
    return w;
  };
  EXPECT_GE(total_weight(**fn_weighted, weighted_plan),
            total_weight(**fn_count, count_plan));
}

TEST(PartitionerObjective, WeightsReflectOperationKinds) {
  partition::OffloadWeights weights;
  ir::Instruction map_get;
  map_get.op = Opcode::kMapGet;
  ir::Instruction alu;
  alu.op = Opcode::kAlu;
  ir::Instruction hdr;
  hdr.op = Opcode::kHeaderRead;
  EXPECT_GT(weights.WeightOf(map_get), weights.WeightOf(hdr));
  EXPECT_GT(weights.WeightOf(hdr), weights.WeightOf(alu));
}

TEST(PartitionerObjective, WeightedObjectiveStaysEquivalentOnPaperMboxes) {
  for (const auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    SCOPED_TRACE(spec.name);
    SwitchConstraints c;
    c.objective = partition::OffloadObjective::kWeightedCycles;
    const PartitionPlan plan = MustPartition(*spec.fn, c);
    EXPECT_GT(plan.num_pre, 0);
    EXPECT_LE(plan.to_server.Bytes(*spec.fn), 20);
  }
}


TEST(PartitionerRules, ExhaustiveSearchKeepsTheRicherAccess) {
  // One map, two lookups. Keeping lookup A on the switch lets a long chain
  // of dependent ALU statements stay offloaded; keeping lookup B strands
  // them on the server. The §4.2.2 exhaustive search must choose A.
  MiddleboxBuilder mb("placement_choice");
  auto map = mb.DeclareMap("m", {Width::kU16}, {Width::kU32}, 1024);
  auto& b = mb.b();
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");

  // Lookup A: a rich dependent chain.
  const auto a = map.Find({R(sport)}, "rich");
  ir::Reg v = a.values[0];
  for (int i = 0; i < 6; ++i) {
    v = b.Alu(AluOp::kAdd, R(v), Imm(i + 1), Width::kU32,
              "chain" + std::to_string(i));
  }
  b.HeaderWrite(HeaderField::kIpDst, R(v));

  // Lookup B: result barely used.
  const auto bb = map.Find({R(dport)}, "poor");
  b.HeaderWrite(HeaderField::kEthType, R(bb.values[0]));

  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  const PartitionPlan plan = MustPartition(**fn);
  const ir::InstId rich = FindInst(**fn, Opcode::kMapGet);
  ASSERT_NE(rich, ir::kInvalidInst);
  EXPECT_TRUE(plan.OnSwitch(rich))
      << "the placement search must keep the lookup that unlocks the chain\n"
      << plan.Summary(**fn);
  // And the chain itself stays offloaded.
  int offloaded_adds = 0;
  for (const auto& blk : (*fn)->blocks()) {
    for (const auto& inst : blk.insts) {
      if (inst.op == Opcode::kAlu && inst.alu == AluOp::kAdd &&
          plan.OnSwitch(inst.id)) {
        ++offloaded_adds;
      }
    }
  }
  EXPECT_GE(offloaded_adds, 6);
}

}  // namespace
}  // namespace gallium
