// Concurrency-safety tests with explicit timelines (§3.1, §4.3.3).
//
// The synchronous runtime tests already check causality and atomicity at
// packet granularity; here the control-plane protocol's three steps are
// scheduled at real timestamps on a discrete-event clock and packets of
// *other* flows arrive in the middle of the synchronization window. The
// §3.1 criteria under test:
//
//   - a packet not causally dependent on p_i observes either ALL or NONE of
//     p_i's state updates — never a subset;
//   - a packet causally dependent on p_i (sent only after p_i was released
//     by the output-commit) observes all of them.
#include <gtest/gtest.h>

#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "runtime/interpreter.h"
#include "sim/event_queue.h"
#include "switchsim/switch.h"
#include "workload/packet_gen.h"

namespace gallium {
namespace {

using runtime::StateValue;
using switchsim::ExactMatchTable;

// A deployed NAT switch with direct access to its two translation tables.
struct NatRig {
  std::unique_ptr<ir::Function> fn;
  partition::PartitionPlan plan;
  std::unique_ptr<switchsim::Switch> device;
  ir::StateIndex nat_out;
  ir::StateIndex nat_in;
};

NatRig MakeNatRig() {
  auto spec = mbox::BuildMazuNat();
  EXPECT_TRUE(spec.ok());
  NatRig rig;
  rig.nat_out = spec->MapIndex("nat_out");
  rig.nat_in = spec->MapIndex("nat_in");
  rig.fn = std::move(spec->fn);
  partition::Partitioner partitioner(*rig.fn, {});
  auto plan = partitioner.Run();
  EXPECT_TRUE(plan.ok());
  rig.plan = std::move(*plan);
  auto device = switchsim::Switch::Create(*rig.fn, rig.plan, {});
  EXPECT_TRUE(device.ok());
  rig.device = std::move(*device);
  return rig;
}

// Observes the NAT's replicated state from the data plane: returns how many
// of the two mapping halves (outbound, inbound) are visible.
int VisibleMappingHalves(NatRig& rig, const net::FiveTuple& flow,
                         uint16_t ext_port) {
  StateValue value;
  int visible = 0;
  visible += rig.device->data_plane().MapLookup(
      rig.nat_out, {flow.saddr, flow.sport}, &value);
  visible += rig.device->data_plane().MapLookup(rig.nat_in, {ext_port},
                                                &value);
  return visible;
}

TEST(ConcurrentSync, ConcurrentObserversSeeAllOrNothing) {
  NatRig rig = MakeNatRig();
  sim::EventQueue clock;
  Rng rng(7);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  const uint16_t ext_port = 1024;

  // The server's update protocol, scheduled with Table-3-scale timings:
  // staging at t=10, bit flip (commit point) at t=140, main apply + flip
  // back at t=270.
  ExactMatchTable* out_table = rig.device->table(rig.nat_out);
  ExactMatchTable* in_table = rig.device->table(rig.nat_in);
  ASSERT_NE(out_table, nullptr);
  ASSERT_NE(in_table, nullptr);

  clock.Schedule(10, [&] {
    ASSERT_TRUE(out_table
                    ->Stage({flow.saddr, flow.sport},
                            switchsim::TableValue{ext_port})
                    .ok());
    ASSERT_TRUE(in_table
                    ->Stage({ext_port},
                            switchsim::TableValue{flow.saddr, flow.sport})
                    .ok());
  });
  clock.Schedule(140, [&] {
    out_table->SetUseWriteBack(true);
    in_table->SetUseWriteBack(true);
  });
  clock.Schedule(270, [&] {
    ASSERT_TRUE(out_table->ApplyStagedToMain().ok());
    ASSERT_TRUE(in_table->ApplyStagedToMain().ok());
    out_table->SetUseWriteBack(false);
    in_table->SetUseWriteBack(false);
  });

  // Concurrent observers probe the data plane throughout the window.
  std::vector<std::pair<double, int>> observations;
  for (double t : {5.0, 50.0, 120.0, 139.0, 141.0, 200.0, 260.0, 271.0,
                   400.0}) {
    clock.Schedule(t, [&, t] {
      observations.push_back({t, VisibleMappingHalves(rig, flow, ext_port)});
    });
  }
  clock.Run();

  // All-or-none at every instant, and monotone across the commit point.
  for (const auto& [t, visible] : observations) {
    EXPECT_TRUE(visible == 0 || visible == 2)
        << "partial mapping visible at t=" << t << " (" << visible << "/2)";
    if (t < 140) {
      EXPECT_EQ(visible, 0) << "update visible before the bit flip, t=" << t;
    } else {
      EXPECT_EQ(visible, 2) << "update missing after the bit flip, t=" << t;
    }
  }
}

TEST(ConcurrentSync, UnrelatedTrafficUnperturbedDuringWindow) {
  NatRig rig = MakeNatRig();
  sim::EventQueue clock;
  Rng rng(8);

  // Pre-install an established mapping for an unrelated flow.
  const net::FiveTuple established = workload::RandomFlow(rng);
  const uint16_t est_port = 2000;
  ASSERT_TRUE(rig.device
                  ->PopulateMap(rig.nat_out,
                                {established.saddr, established.sport},
                                {est_port})
                  .ok());

  runtime::Interpreter interp(*rig.fn);
  const net::FiveTuple incoming = workload::RandomFlow(rng);
  ExactMatchTable* out_table = rig.device->table(rig.nat_out);

  // A new flow's update is in flight from t=10..270.
  clock.Schedule(10, [&] {
    ASSERT_TRUE(out_table
                    ->Stage({incoming.saddr, incoming.sport},
                            switchsim::TableValue{3000})
                    .ok());
  });
  clock.Schedule(140, [&] { out_table->SetUseWriteBack(true); });
  clock.Schedule(270, [&] {
    ASSERT_TRUE(out_table->ApplyStagedToMain().ok());
    out_table->SetUseWriteBack(false);
  });

  // Established-flow packets keep riding the fast path at every instant in
  // the window, with stable translations.
  int fast_paths = 0;
  for (double t : {5.0, 100.0, 150.0, 269.0, 300.0}) {
    clock.Schedule(t, [&] {
      net::Packet pkt = net::MakeTcpPacket(established, net::kTcpAck, 100);
      pkt.set_ingress_port(mbox::kPortInternal);
      auto result = interp.RunPartition(pkt, rig.device->data_plane(), 0,
                                        rig.plan, partition::Part::kPre,
                                        nullptr, nullptr,
                                        &rig.plan.to_server);
      ASSERT_TRUE(result.status.ok());
      ASSERT_FALSE(result.needs_server);
      ASSERT_EQ(pkt.sport(), est_port);
      ++fast_paths;
    });
  }
  clock.Run();
  EXPECT_EQ(fast_paths, 5);
}

TEST(ConcurrentSync, CausallyDependentPacketAfterCommitSeesMapping) {
  // Timeline version of output commit: the SYN is released at t=release
  // (strictly after the bit flip); the earliest possible causally-dependent
  // reply arrives after that and must hit switch state.
  NatRig rig = MakeNatRig();
  sim::EventQueue clock;
  Rng rng(9);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  const uint16_t ext_port = 4000;
  ExactMatchTable* in_table = rig.device->table(rig.nat_in);

  double release_time = -1;
  clock.Schedule(10, [&] {
    ASSERT_TRUE(in_table
                    ->Stage({ext_port},
                            switchsim::TableValue{flow.saddr, flow.sport})
                    .ok());
  });
  clock.Schedule(140, [&] {
    in_table->SetUseWriteBack(true);
    // Output commit: the buffered SYN is released only now.
    release_time = clock.now_us();
  });

  // A reply can only exist after the SYN was released + one network RTT.
  clock.Schedule(180, [&] {
    ASSERT_GE(clock.now_us(), release_time);
    runtime::Interpreter interp(*rig.fn);
    net::Packet reply = net::MakeTcpPacket(
        {flow.daddr, mbox::kNatExternalIp, flow.dport, ext_port,
         net::kIpProtoTcp},
        net::kTcpSyn | net::kTcpAck, 0);
    reply.set_ingress_port(mbox::kPortExternal);
    auto result = interp.RunPartition(reply, rig.device->data_plane(), 0,
                                      rig.plan, partition::Part::kPre,
                                      nullptr, nullptr, &rig.plan.to_server);
    ASSERT_TRUE(result.status.ok());
    EXPECT_FALSE(result.needs_server)
        << "the causally-dependent reply must observe the mapping";
    EXPECT_EQ(reply.ip().daddr, flow.saddr);
  });
  clock.Run();
}

TEST(EventQueue, OrdersByTimeThenSequence) {
  sim::EventQueue clock;
  std::vector<int> order;
  clock.Schedule(30, [&] { order.push_back(3); });
  clock.Schedule(10, [&] { order.push_back(1); });
  clock.Schedule(10, [&] { order.push_back(2); });  // same time, later seq
  clock.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now_us(), 30.0);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  sim::EventQueue clock;
  int fired = 0;
  clock.Schedule(1, [&] {
    ++fired;
    clock.ScheduleAfter(5, [&] { ++fired; });
  });
  clock.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(clock.now_us(), 6.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  sim::EventQueue clock;
  int fired = 0;
  clock.Schedule(10, [&] { ++fired; });
  clock.Schedule(20, [&] { ++fired; });
  clock.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.pending(), 1u);
  clock.Run();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace gallium
