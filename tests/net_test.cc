// Unit & property tests for the packet substrate: addresses, five-tuples,
// checksums, and wire-format round trips including the Gallium transfer
// header.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "util/rng.h"

namespace gallium::net {
namespace {

TEST(MacAddr, RoundTripsThroughUint64) {
  const MacAddr mac = MacAddr::FromUint64(0x112233445566ULL);
  EXPECT_EQ(mac.ToUint64(), 0x112233445566ULL);
  EXPECT_EQ(mac.ToString(), "11:22:33:44:55:66");
}

TEST(Ipv4, MakeAndFormat) {
  const Ipv4Addr addr = MakeIpv4(10, 0, 0, 1);
  EXPECT_EQ(addr, 0x0a000001u);
  EXPECT_EQ(Ipv4ToString(addr), "10.0.0.1");
  EXPECT_EQ(Ipv4ToString(MakeIpv4(255, 255, 255, 255)), "255.255.255.255");
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple flow{1, 2, 3, 4, kIpProtoTcp};
  const FiveTuple rev = flow.Reversed();
  EXPECT_EQ(rev.saddr, 2u);
  EXPECT_EQ(rev.daddr, 1u);
  EXPECT_EQ(rev.sport, 4);
  EXPECT_EQ(rev.dport, 3);
  EXPECT_EQ(rev.Reversed(), flow);
}

TEST(FiveTuple, HashDistinguishesFields) {
  const FiveTuple base{10, 20, 30, 40, kIpProtoTcp};
  FiveTuple other = base;
  other.sport = 31;
  EXPECT_NE(base.Hash(), other.Hash());
  other = base;
  other.protocol = kIpProtoUdp;
  EXPECT_NE(base.Hash(), other.Hash());
  EXPECT_EQ(base.Hash(), FiveTuple(base).Hash());
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example bytes: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  const std::vector<uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                     0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(Checksum, OddLengthHandled) {
  const std::vector<uint8_t> data = {0xff};
  // 0xff00 summed, complemented.
  EXPECT_EQ(InternetChecksum(data), static_cast<uint16_t>(~0xff00));
}

TEST(Packet, TcpBuilderSetsFields) {
  const FiveTuple flow{MakeIpv4(1, 2, 3, 4), MakeIpv4(5, 6, 7, 8), 1000, 80,
                       kIpProtoTcp};
  const Packet pkt = MakeTcpPacket(flow, kTcpSyn | kTcpAck, 100, 7);
  EXPECT_TRUE(pkt.has_tcp());
  EXPECT_EQ(pkt.five_tuple(), flow);
  EXPECT_EQ(pkt.tcp().flags, kTcpSyn | kTcpAck);
  EXPECT_EQ(pkt.tcp().seq, 7u);
  EXPECT_EQ(pkt.payload().size(), 100u);
}

TEST(Packet, WireSizeMatchesSerialization) {
  const FiveTuple flow{1, 2, 3, 4, kIpProtoTcp};
  Packet pkt = MakeTcpPacket(flow, kTcpAck, 250);
  EXPECT_EQ(pkt.Serialize().size(), pkt.WireSize());
  GalliumHeader gh;
  gh.cond_bits = 5;
  gh.vars = {1, 2, 3};
  pkt.set_gallium(gh);
  EXPECT_EQ(pkt.Serialize().size(), pkt.WireSize());
  EXPECT_EQ(pkt.WireSize(),
            14 + (8 + 12) + 20 + 20 + 250u);  // eth + gallium + ip + tcp + pl
}

TEST(Packet, TcpRoundTrip) {
  const FiveTuple flow{MakeIpv4(192, 168, 0, 1), MakeIpv4(10, 0, 0, 9), 4242,
                       443, kIpProtoTcp};
  Packet pkt = MakeTcpPacket(flow, kTcpPsh | kTcpAck, 64, 1234);
  pkt.eth().src = MacAddr::FromUint64(0xaabbccddeeffULL);
  pkt.ip().ttl = 17;

  auto parsed = Packet::Parse(pkt.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->five_tuple(), flow);
  EXPECT_EQ(parsed->tcp().seq, 1234u);
  EXPECT_EQ(parsed->tcp().flags, kTcpPsh | kTcpAck);
  EXPECT_EQ(parsed->ip().ttl, 17);
  EXPECT_EQ(parsed->eth().src.ToUint64(), 0xaabbccddeeffULL);
  EXPECT_EQ(parsed->payload(), pkt.payload());
}

TEST(Packet, UdpRoundTrip) {
  const FiveTuple flow{1, 2, 53, 5353, kIpProtoUdp};
  const Packet pkt = MakeUdpPacket(flow, 33);
  auto parsed = Packet::Parse(pkt.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->has_udp());
  EXPECT_EQ(parsed->five_tuple(), flow);
  EXPECT_EQ(parsed->payload().size(), 33u);
}

TEST(Packet, GalliumHeaderRoundTrip) {
  const FiveTuple flow{7, 8, 9, 10, kIpProtoTcp};
  Packet pkt = MakeTcpPacket(flow, kTcpSyn, 10);
  GalliumHeader gh;
  gh.cond_bits = 0xdeadbeef;
  gh.vars = {0x11111111, 0x22222222};
  pkt.set_gallium(gh);
  EXPECT_EQ(pkt.eth().ether_type, kEtherTypeGallium);

  auto parsed = Packet::Parse(pkt.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->has_gallium());
  EXPECT_EQ(parsed->gallium().cond_bits, 0xdeadbeefu);
  EXPECT_EQ(parsed->gallium().vars, gh.vars);
  EXPECT_EQ(parsed->five_tuple(), flow);

  Packet copy = *parsed;
  copy.clear_gallium();
  EXPECT_EQ(copy.eth().ether_type, kEtherTypeIpv4);
  EXPECT_FALSE(copy.has_gallium());
}

TEST(Packet, ParseRejectsTruncated) {
  const Packet pkt = MakeTcpPacket({1, 2, 3, 4, kIpProtoTcp}, kTcpSyn, 0);
  auto wire = pkt.Serialize();
  for (size_t cut : {5ul, 20ul, 30ul, wire.size() - 5}) {
    auto parsed = Packet::Parse(std::span(wire).subspan(0, cut));
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
  }
}

TEST(Packet, ParseRejectsUnknownEtherType) {
  Packet pkt = MakeTcpPacket({1, 2, 3, 4, kIpProtoTcp}, kTcpSyn, 0);
  auto wire = pkt.Serialize();
  wire[12] = 0x86;  // IPv6 etherType
  wire[13] = 0xdd;
  EXPECT_FALSE(Packet::Parse(wire).ok());
}

TEST(Packet, PortSettersFollowTransport) {
  Packet tcp = MakeTcpPacket({1, 2, 3, 4, kIpProtoTcp}, 0, 0);
  tcp.set_sport(99);
  tcp.set_dport(100);
  EXPECT_EQ(tcp.tcp().sport, 99);
  EXPECT_EQ(tcp.tcp().dport, 100);

  Packet udp = MakeUdpPacket({1, 2, 3, 4, kIpProtoUdp}, 0);
  udp.set_sport(7);
  EXPECT_EQ(udp.udp().sport, 7);
}

// Property sweep: random packets survive serialize/parse byte-for-byte.
class PacketRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PacketRoundTrip, RandomPacketSurvivesWire) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    FiveTuple flow;
    flow.saddr = rng.NextU32();
    flow.daddr = rng.NextU32();
    flow.sport = static_cast<uint16_t>(rng.NextBounded(65536));
    flow.dport = static_cast<uint16_t>(rng.NextBounded(65536));
    const bool is_tcp = rng.NextBool(0.5);
    flow.protocol = is_tcp ? kIpProtoTcp : kIpProtoUdp;
    Packet pkt = is_tcp ? MakeTcpPacket(flow,
                                        static_cast<uint8_t>(
                                            rng.NextBounded(32)),
                                        rng.NextBounded(1400),
                                        rng.NextU32())
                        : MakeUdpPacket(flow, rng.NextBounded(1400));
    if (rng.NextBool(0.4)) {
      GalliumHeader gh;
      gh.cond_bits = rng.NextU32();
      const int nvars = static_cast<int>(rng.NextBounded(5));
      for (int v = 0; v < nvars; ++v) gh.vars.push_back(rng.NextU32());
      pkt.set_gallium(gh);
    }

    const auto wire = pkt.Serialize();
    auto parsed = Packet::Parse(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Serialize(), wire) << "re-serialization must be stable";
    EXPECT_EQ(parsed->five_tuple(), flow);
    EXPECT_EQ(parsed->payload(), pkt.payload());
    EXPECT_EQ(parsed->has_gallium(), pkt.has_gallium());
    if (pkt.has_gallium()) {
      EXPECT_EQ(parsed->gallium(), pkt.gallium());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketRoundTrip, ::testing::Range(1, 9));


// Robustness fuzz: arbitrary bytes must never crash the parser — every
// input either parses or returns a clean error, and valid packets corrupted
// at a random position never produce out-of-bounds access.
class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, ParserNeverCrashesOnGarbage) {
  Rng rng(GetParam() * 977 + 5);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> bytes(rng.NextBounded(200));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());
    auto parsed = Packet::Parse(bytes);
    if (parsed.ok()) {
      // Whatever parsed must re-serialize without crashing.
      (void)parsed->Serialize();
    }
  }
}

TEST_P(WireFuzz, CorruptedValidPacketsHandledCleanly) {
  Rng rng(GetParam() * 31 + 9);
  for (int i = 0; i < 200; ++i) {
    FiveTuple flow;
    flow.saddr = rng.NextU32();
    flow.daddr = rng.NextU32();
    flow.sport = static_cast<uint16_t>(rng.NextBounded(65536));
    flow.dport = static_cast<uint16_t>(rng.NextBounded(65536));
    flow.protocol = kIpProtoTcp;
    Packet pkt = MakeTcpPacket(flow, kTcpAck, rng.NextBounded(100));
    if (rng.NextBool(0.5)) {
      GalliumHeader gh;
      gh.vars = {1, 2};
      pkt.set_gallium(gh);
    }
    auto wire = pkt.Serialize();
    // Flip one random byte.
    wire[rng.NextBounded(wire.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    auto parsed = Packet::Parse(wire);
    if (parsed.ok()) (void)parsed->Serialize();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace gallium::net
