// Tests for the multi-worker packet engine (src/engine/): the SPSC ring,
// RSS-style flow steering + director, the sharded-equals-single-core
// property over all five paper middleboxes, and the threaded execution
// mode's accounting.
#include <thread>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/spsc_ring.h"
#include "engine/steering.h"
#include "mbox/middleboxes.h"
#include "net/packet.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/packet_gen.h"

namespace gallium::engine {
namespace {

using runtime::OffloadedMiddlebox;
using runtime::Verdict;

// ---------------------------------------------------------------------------
// SPSC ring

TEST(SpscRingTest, FifoOrderAndCapacity) {
  SpscRing<int> ring(5);  // rounds up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(int{i}));
  EXPECT_FALSE(ring.TryPush(99));  // full
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));  // empty
  EXPECT_TRUE(ring.EmptyForConsumer());
}

TEST(SpscRingTest, WrapsAcrossManyRefills) {
  SpscRing<uint32_t> ring(4);
  uint32_t next_push = 0, next_pop = 0, v = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.TryPush(uint32_t{next_push})) ++next_push;
    while (ring.TryPop(&v)) {
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GE(next_pop, 1000u);
}

// The satellite stress test: 10M items through a small ring with a real
// producer thread and a real consumer thread, checksummed on both sides.
// Any lost, duplicated, or reordered item diverges the sum/xor pair.
TEST(SpscRingTest, TenMillionItemChecksumStress) {
  constexpr uint64_t kItems = 10'000'000;
  SpscRing<uint64_t> ring(1024);

  uint64_t produced_sum = 0, produced_xor = 0;
  std::thread producer([&] {
    Rng rng(7);
    for (uint64_t i = 0; i < kItems; ++i) {
      const uint64_t item = rng.NextU64();
      produced_sum += item;
      produced_xor ^= item;
      while (!ring.TryPush(uint64_t{item})) {
        std::this_thread::yield();  // consumer is behind
      }
    }
  });

  uint64_t consumed = 0, consumed_sum = 0, consumed_xor = 0;
  uint64_t item = 0;
  while (consumed < kItems) {
    if (ring.TryPop(&item)) {
      consumed_sum += item;
      consumed_xor ^= item;
      ++consumed;
    } else {
      std::this_thread::yield();  // producer is behind
    }
  }
  producer.join();

  EXPECT_EQ(consumed, kItems);
  EXPECT_EQ(consumed_sum, produced_sum);
  EXPECT_EQ(consumed_xor, produced_xor);
  EXPECT_TRUE(ring.EmptyForConsumer());
}

// ---------------------------------------------------------------------------
// Flow steering

TEST(SteeringTest, HashIsSymmetric) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const net::FiveTuple ft = workload::RandomFlow(rng);
    EXPECT_EQ(SymmetricFlowHash(ft), SymmetricFlowHash(ft.Reversed()));
  }
}

TEST(SteeringTest, OwnerIsStableAndSymmetric) {
  FlowSteering steering(4);
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    const net::FiveTuple ft = workload::RandomFlow(rng);
    const int owner = steering.OwnerOf(ft);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    EXPECT_EQ(owner, steering.OwnerOf(ft));             // stable
    EXPECT_EQ(owner, steering.OwnerOf(ft.Reversed()));  // both directions
  }
}

TEST(SteeringTest, HashSpreadsAcrossWorkers) {
  FlowSteering steering(4);
  Rng rng(13);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[steering.OwnerOf(workload::RandomFlow(rng))];
  }
  for (int c : counts) EXPECT_GT(c, 500) << "pathologically skewed RSS hash";
}

TEST(SteeringTest, PinOverridesHashAndSurvivesGrowth) {
  FlowSteering steering(8);
  Rng rng(14);
  // Pin far more flows than the initial table holds, forcing rehashes.
  std::vector<std::pair<net::FiveTuple, int>> pins;
  for (int i = 0; i < 1000; ++i) {
    const net::FiveTuple ft = workload::RandomFlow(rng);
    const int owner = i % 8;
    steering.Pin(ft, owner);
    pins.emplace_back(ft, owner);
  }
  EXPECT_EQ(steering.pinned_flows(), 1000u);
  for (const auto& [ft, owner] : pins) {
    EXPECT_EQ(steering.OwnerOf(ft), owner);
    EXPECT_EQ(steering.OwnerOf(ft.Reversed()), owner);
  }
}

// ---------------------------------------------------------------------------
// Sharded == single-core property

workload::Trace EquivalenceTrace(const std::string& mbox_name) {
  Rng rng(4242);
  workload::TraceOptions options;
  options.num_flows = 48;
  options.min_flow_bytes = 200;
  options.max_flow_bytes = 20000;
  options.udp_fraction = 0.25;
  options.ingress_port = mbox::kPortInternal;
  if (mbox_name == "TrojanDetector") {
    // Exercise the DPI slow path on a fraction of flows.
    options.marked_fraction = 0.25;
    options.marker = mbox::kPatternIrc;
  }
  return workload::MakeTrace(rng, options);
}

// Runs the same trace through a 1-worker and a 4-worker deterministic
// engine and requires bit-identical emitted packet sequences plus matching
// verdict counts. This is the property that makes the sharded engine a
// faithful execution of the paper's per-middlebox semantics: steering +
// core-local maps + hub-resident globals must be invisible to the traffic.
void CheckShardedEquivalence(Result<mbox::MiddleboxSpec> spec_or,
                             const std::string& name) {
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  mbox::MiddleboxSpec spec = std::move(*spec_or);
  const workload::Trace trace = EquivalenceTrace(name);
  ASSERT_FALSE(trace.packets.empty());

  RunReport reports[2];
  std::vector<net::Packet> sinks[2];
  const int worker_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    EngineOptions options;
    options.workers = worker_counts[i];
    options.burst = 32;
    auto eng = Engine::Create(spec, options);
    ASSERT_TRUE(eng.ok()) << eng.status().ToString();
    reports[i] = (*eng)->Run(trace.packets, /*start_now_ms=*/1, &sinks[i]);
    (*eng)->Quiesce();
    EXPECT_EQ(reports[i].packets, trace.packets.size());
    EXPECT_EQ(reports[i].errors, 0u);
  }

  EXPECT_EQ(reports[0].sends, reports[1].sends) << name;
  EXPECT_EQ(reports[0].drops, reports[1].drops) << name;
  EXPECT_EQ(reports[0].fast_path, reports[1].fast_path) << name;

  ASSERT_EQ(sinks[0].size(), sinks[1].size()) << name;
  for (size_t i = 0; i < sinks[0].size(); ++i) {
    ASSERT_EQ(sinks[0][i].Serialize(), sinks[1][i].Serialize())
        << name << ": emitted packet " << i << " diverged\n  1w: "
        << sinks[0][i].ToString() << "\n  4w: " << sinks[1][i].ToString();
  }
}

TEST(ShardedEquivalenceTest, MazuNat) {
  CheckShardedEquivalence(mbox::BuildMazuNat(), "MazuNAT");
}

TEST(ShardedEquivalenceTest, LoadBalancer) {
  CheckShardedEquivalence(mbox::BuildLoadBalancer(), "LoadBalancer");
}

TEST(ShardedEquivalenceTest, Firewall) {
  std::vector<mbox::MapInitEntry> rules;
  for (uint32_t i = 0; i < 64; ++i) {
    rules.push_back(mbox::MapInitEntry{
        {0xc0a80000u + i, 0xac100000u + i, static_cast<uint64_t>(1024 + i),
         80ull, 6ull},
        {1}});
  }
  CheckShardedEquivalence(mbox::BuildFirewall(rules, rules), "Firewall");
}

TEST(ShardedEquivalenceTest, Proxy) {
  CheckShardedEquivalence(mbox::BuildProxy(), "Proxy");
}

TEST(ShardedEquivalenceTest, TrojanDetector) {
  CheckShardedEquivalence(mbox::BuildTrojanDetector(), "TrojanDetector");
}

// Same property, but hammering the flat flow tables: a churn-heavy trace
// (most packets open fresh flows) against a flow_capacity of 2, so every
// shard's tables grow through repeated incremental resizes mid-run. The
// 4-worker output must still be bit-identical to 1-worker — resize
// migrations, kick chains, and stash traffic are invisible to the packets.
TEST(ShardedEquivalenceTest, LoadBalancerUnderChurnWithTinyTables) {
  auto spec_or = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  mbox::MiddleboxSpec spec = std::move(*spec_or);

  Rng rng(20260808);
  workload::ChurnOptions churn;
  churn.num_packets = 4000;
  churn.new_flow_fraction = 0.8;
  churn.established_flows = 24;
  churn.burst_period = 500;
  churn.burst_len = 64;
  churn.ingress_port = mbox::kPortInternal;
  const workload::Trace trace = workload::MakeChurnTrace(rng, churn);
  ASSERT_FALSE(trace.packets.empty());

  RunReport reports[2];
  std::vector<net::Packet> sinks[2];
  const int worker_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    EngineOptions options;
    options.workers = worker_counts[i];
    options.burst = 32;
    options.runtime.flow_capacity = 2;  // force mid-run table growth
    auto eng = Engine::Create(spec, options);
    ASSERT_TRUE(eng.ok()) << eng.status().ToString();
    reports[i] = (*eng)->Run(trace.packets, /*start_now_ms=*/1, &sinks[i]);
    (*eng)->Quiesce();
    EXPECT_EQ(reports[i].packets, trace.packets.size());
    EXPECT_EQ(reports[i].errors, 0u);
  }

  EXPECT_EQ(reports[0].sends, reports[1].sends);
  EXPECT_EQ(reports[0].drops, reports[1].drops);
  ASSERT_EQ(sinks[0].size(), sinks[1].size());
  for (size_t i = 0; i < sinks[0].size(); ++i) {
    ASSERT_EQ(sinks[0][i].Serialize(), sinks[1][i].Serialize())
        << "emitted packet " << i << " diverged between 1w and 4w";
  }
}

// ---------------------------------------------------------------------------
// Flow director under rewriting (NAT): return traffic for a translated
// tuple must land on the shard that owns the forward flow.

TEST(EngineTest, NatReturnTrafficFollowsDirectorPin) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EngineOptions options;
  options.workers = 4;
  auto eng_or = Engine::Create(*spec, options);
  ASSERT_TRUE(eng_or.ok()) << eng_or.status().ToString();
  Engine& eng = **eng_or;

  Rng rng(77);
  uint64_t now_ms = 1;
  int pinned_seen = 0;
  for (int i = 0; i < 32; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    net::Packet out = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
    out.set_ingress_port(mbox::kPortInternal);
    const int fwd_owner = eng.steering().OwnerOf(flow);
    auto outcome = eng.Process(std::move(out), now_ms++);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    ASSERT_EQ(outcome.verdict.kind, Verdict::Kind::kSend);
    const net::FiveTuple xlated = outcome.out_packet.five_tuple();
    ASSERT_EQ(xlated.saddr, mbox::kNatExternalIp);

    // The translated tuple generally hashes elsewhere; the director must
    // have pinned it back to the forward flow's owner on emission.
    EXPECT_EQ(eng.steering().OwnerOf(xlated), fwd_owner);
    EXPECT_EQ(eng.steering().OwnerOf(xlated.Reversed()), fwd_owner);
    if (SymmetricFlowHash(xlated) % 4 != static_cast<uint64_t>(fwd_owner)) {
      ++pinned_seen;
    }

    // And the reverse packet must actually translate back: only the owning
    // shard's map has the (external port -> internal host) entry.
    net::Packet back =
        net::MakeTcpPacket(xlated.Reversed(), net::kTcpAck, 64);
    back.set_ingress_port(mbox::kPortExternal);
    auto rev = eng.Process(std::move(back), now_ms++);
    ASSERT_TRUE(rev.status.ok()) << rev.status.ToString();
    ASSERT_EQ(rev.verdict.kind, Verdict::Kind::kSend);
    EXPECT_EQ(rev.out_packet.five_tuple().daddr, flow.saddr);
    EXPECT_EQ(rev.out_packet.five_tuple().dport, flow.sport);
  }
  // The test is vacuous if every translated tuple happened to hash home.
  EXPECT_GT(pinned_seen, 0);
  EXPECT_GT(eng.steering().pinned_flows(), 0u);
}

// ---------------------------------------------------------------------------
// Engine plumbing

TEST(EngineTest, SingleWorkerMatchesBareMiddlebox) {
  auto spec_a = mbox::BuildProxy();
  auto spec_b = mbox::BuildProxy();
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());
  auto bare = OffloadedMiddlebox::Create(*spec_a);
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  auto eng = Engine::Create(*spec_b);
  ASSERT_TRUE(eng.ok()) << eng.status().ToString();

  const workload::Trace trace = EquivalenceTrace("Proxy");
  uint64_t now_ms = 1;
  for (const net::Packet& pkt : trace.packets) {
    auto a = (*bare)->Process(pkt, now_ms);
    auto b = (*eng)->Process(pkt, now_ms);
    ++now_ms;
    ASSERT_TRUE(a.status.ok() && b.status.ok());
    ASSERT_EQ(a.verdict.kind, b.verdict.kind);
    if (a.verdict.kind == Verdict::Kind::kSend) {
      ASSERT_EQ(a.out_packet.Serialize(), b.out_packet.Serialize());
    }
  }
}

TEST(EngineTest, PublishesPerWorkerTelemetry) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  EngineOptions options;
  options.workers = 2;
  options.burst = 8;
  auto eng_or = Engine::Create(*spec, options);
  ASSERT_TRUE(eng_or.ok());
  Engine& eng = **eng_or;

  const workload::Trace trace = EquivalenceTrace("LoadBalancer");
  const RunReport report = eng.Run(trace.packets, 1);
  eng.Quiesce();

  EXPECT_EQ(report.worker_packets.size(), 2u);
  EXPECT_EQ(report.worker_packets[0] + report.worker_packets[1],
            report.packets);
  EXPECT_GT(report.worker_packets[0], 0u);
  EXPECT_GT(report.worker_packets[1], 0u);
  EXPECT_GT(report.MaxWorkerBusyUs(), 0.0);
  EXPECT_GT(report.AggregateMpps(), 0.0);

  auto* hist = eng.metrics().GetHistogram(
      "gallium_engine_burst_occupancy", {{"mbox", spec->name}},
      {1, 2, 4, 8, 16, 24, 32, 64}, "");
  EXPECT_EQ(hist->Count(), (trace.packets.size() + 7) / 8);  // bursts of 8
  // Worker gauges carry the unified {mbox, worker} label convention so
  // per-worker series from every subsystem join on the same scope.
  const double per_worker_packets =
      eng.metrics()
          .GetGauge("gallium_engine_worker_packets",
                    {{"mbox", spec->name}, {"worker", "0"}}, "")
          ->Value() +
      eng.metrics()
          .GetGauge("gallium_engine_worker_packets",
                    {{"mbox", spec->name}, {"worker", "1"}}, "")
          ->Value();
  EXPECT_EQ(per_worker_packets, static_cast<double>(report.packets));
}

// ---------------------------------------------------------------------------
// Threaded mode: real worker threads over SPSC ingress rings. The firewall
// holds only flow-keyed whitelist maps (no globals), so shards are fully
// independent and the parallel run must conserve every packet.

TEST(EngineThreadedTest, FirewallConservesAllPackets) {
  std::vector<mbox::MapInitEntry> rules;
  for (uint32_t i = 0; i < 64; ++i) {
    rules.push_back(mbox::MapInitEntry{
        {0xc0a80000u + i, 0xac100000u + i, static_cast<uint64_t>(1024 + i),
         80ull, 6ull},
        {1}});
  }
  auto spec = mbox::BuildFirewall(rules, rules);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  EngineOptions options;
  options.workers = 4;
  options.threaded = true;
  options.ring_capacity = 64;  // small ring: exercise the full-ring backoff
  auto eng_or = Engine::Create(*spec, options);
  ASSERT_TRUE(eng_or.ok()) << eng_or.status().ToString();
  Engine& eng = **eng_or;

  Rng rng(21);
  workload::TraceOptions trace_options;
  trace_options.num_flows = 64;
  trace_options.max_flow_bytes = 30000;
  trace_options.ingress_port = mbox::kPortInternal;
  const workload::Trace trace = workload::MakeTrace(rng, trace_options);

  const RunReport report = eng.Run(trace.packets, 1);
  eng.Quiesce();

  EXPECT_EQ(report.packets, trace.packets.size());
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.sends + report.drops + report.shed, report.packets);
  uint64_t via_workers = 0;
  for (uint64_t wp : report.worker_packets) via_workers += wp;
  EXPECT_EQ(via_workers, report.packets);
}

}  // namespace
}  // namespace gallium::engine
