// Analysis tests: read/write sets (§4.1's annotations), "can happen after",
// control dependence via post-dominators, the dependency graph of the
// paper's Fig. 3, liveness, and dependency distances.
#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/depgraph.h"
#include "analysis/liveness.h"
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"

namespace gallium::analysis {
namespace {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::Opcode;
using ir::R;
using ir::Reg;
using ir::Width;

// Finds the nth instruction with a given opcode.
ir::InstId Find(const ir::Function& fn, Opcode op, int nth = 0) {
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.op == op && nth-- == 0) return inst.id;
    }
  }
  return ir::kInvalidInst;
}

// --- Read/write sets ------------------------------------------------------------

TEST(ReadWriteSets, FollowTheAnnotationsOfSection41) {
  MiddleboxBuilder mb("sets");
  auto map = mb.DeclareMap("m", {Width::kU16}, {Width::kU32}, 16);
  auto vec = mb.DeclareVector("v", Width::kU32, 8);
  auto& b = mb.b();
  const Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const auto lookup = map.Find({R(sport)});
  const Reg elem = vec.At(R(lookup.values[0]));
  map.Insert({R(sport)}, {R(elem)});
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  const auto& insts = (*fn)->block(0).insts;
  // HeaderRead: reads the header field, writes its register.
  {
    const auto sets = ComputeReadWriteSets(**fn, insts[0]);
    EXPECT_EQ(sets.reads.size(), 1u);
    EXPECT_EQ(sets.reads[0], Location::Header(HeaderField::kSrcPort));
    EXPECT_EQ(sets.writes.size(), 1u);
    EXPECT_EQ(sets.writes[0], Location::MakeReg(sport));
  }
  // HashMap::find reads the key register AND the map (§4.1).
  {
    const auto sets = ComputeReadWriteSets(**fn, insts[1]);
    EXPECT_TRUE(std::count(sets.reads.begin(), sets.reads.end(),
                           Location::MakeReg(sport)));
    EXPECT_TRUE(
        std::count(sets.reads.begin(), sets.reads.end(), Location::Map(0)));
    EXPECT_EQ(sets.writes.size(), 2u);  // found + one value register
  }
  // Vector::operator[] reads the index and the vector.
  {
    const auto sets = ComputeReadWriteSets(**fn, insts[2]);
    EXPECT_TRUE(
        std::count(sets.reads.begin(), sets.reads.end(), Location::Vector(0)));
  }
  // HashMap::insert reads both parameters and modifies the map.
  {
    const auto sets = ComputeReadWriteSets(**fn, insts[3]);
    EXPECT_TRUE(
        std::count(sets.writes.begin(), sets.writes.end(), Location::Map(0)));
    EXPECT_TRUE(std::count(sets.reads.begin(), sets.reads.end(),
                           Location::MakeReg(elem)));
  }
  // send() reads every header field (the emitted packet reflects them).
  {
    const auto sets = ComputeReadWriteSets(**fn, insts[4]);
    EXPECT_GE(sets.reads.size(), static_cast<size_t>(ir::kNumHeaderFields));
    EXPECT_TRUE(std::count(sets.writes.begin(), sets.writes.end(),
                           Location::PacketIo()));
  }
}

// --- CFG ----------------------------------------------------------------------

TEST(Cfg, DiamondReachabilityAndCanHappenAfter) {
  MiddleboxBuilder mb("diamond");
  auto& b = mb.b();
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  ir::InstId then_id, else_id;
  mb.IfElse(
      R(c),
      [&] {
        b.HeaderWrite(HeaderField::kIpDst, Imm(1));
        then_id = mb.fn().num_insts() - 1;
      },
      [&] {
        b.HeaderWrite(HeaderField::kIpDst, Imm(2));
        else_id = mb.fn().num_insts() - 1;
      });
  b.Send(Imm(1));
  const ir::InstId send_id = mb.fn().num_insts() - 1;
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  CfgInfo cfg(**fn);
  const ir::InstId read_id = 0;
  EXPECT_TRUE(cfg.CanHappenAfter(then_id, read_id));
  EXPECT_TRUE(cfg.CanHappenAfter(send_id, then_id));
  EXPECT_TRUE(cfg.CanHappenAfter(send_id, else_id));
  // The two branch arms are mutually exclusive.
  EXPECT_FALSE(cfg.CanHappenAfter(then_id, else_id));
  EXPECT_FALSE(cfg.CanHappenAfter(else_id, then_id));
  // Nothing happens after itself in a loop-free program.
  EXPECT_FALSE(cfg.CanHappenAfter(send_id, send_id));
  EXPECT_FALSE(cfg.InLoop(send_id));
}

TEST(Cfg, LoopMembersCanHappenAfterThemselves) {
  MiddleboxBuilder mb("loopy");
  auto counter = mb.DeclareGlobal("i", Width::kU32, 0);
  auto& b = mb.b();
  ir::InstId body_id = ir::kInvalidInst;
  mb.While(
      [&] {
        const Reg i = counter.Read();
        return R(b.Alu(AluOp::kLt, R(i), Imm(10), "cont"));
      },
      [&] {
        const Reg i = counter.Read();
        counter.Write(R(b.Alu(AluOp::kAdd, R(i), Imm(1))));
        body_id = mb.fn().num_insts() - 1;
      });
  b.Send(Imm(1));
  const ir::InstId send_id = mb.fn().num_insts() - 1;
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  CfgInfo cfg(**fn);
  EXPECT_TRUE(cfg.InLoop(body_id));
  EXPECT_TRUE(cfg.CanHappenAfter(body_id, body_id));
  EXPECT_FALSE(cfg.InLoop(send_id));
}

TEST(Cfg, ControlDependenceOnDiamond) {
  MiddleboxBuilder mb("ctrl");
  auto& b = mb.b();
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  int then_block = -1;
  mb.IfElse(
      R(c), [&] { b.HeaderWrite(HeaderField::kIpDst, Imm(1));
                  then_block = b.insert_block(); },
      [&] { b.HeaderWrite(HeaderField::kIpDst, Imm(2)); });
  b.Send(Imm(1));
  const int join_block = b.insert_block();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  CfgInfo cfg(**fn);
  const ir::InstId branch_id = Find(**fn, Opcode::kBranch);
  // Both arms are control-dependent on the branch; the join is not.
  const auto& then_deps = cfg.ControllingBranches(then_block);
  EXPECT_TRUE(std::count(then_deps.begin(), then_deps.end(), branch_id));
  const auto& join_deps = cfg.ControllingBranches(join_block);
  EXPECT_FALSE(std::count(join_deps.begin(), join_deps.end(), branch_id));
}

TEST(Cfg, NestedControlDependence) {
  MiddleboxBuilder mb("nested");
  auto& b = mb.b();
  const Reg c1 = b.HeaderRead(HeaderField::kIpTtl, "c1");
  const Reg c2 = b.HeaderRead(HeaderField::kIpProto, "c2");
  int inner_block = -1;
  mb.If(R(c1), [&] {
    mb.If(R(c2), [&] {
      b.HeaderWrite(HeaderField::kIpDst, Imm(1));
      inner_block = b.insert_block();
    });
  });
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  CfgInfo cfg(**fn);
  // Ferrante-Ottenstein-Warren control dependence is direct on the inner
  // branch only; the outer branch controls the inner *branch*, so the
  // dependency graph reaches the innermost statement transitively.
  ASSERT_EQ(cfg.ControllingBranches(inner_block).size(), 1u);
  DependencyGraph deps(**fn, cfg);
  const ir::InstId inner_write = Find(**fn, Opcode::kHeaderWrite);
  const ir::InstId outer_branch = Find(**fn, Opcode::kBranch, 0);
  const ir::InstId inner_branch = Find(**fn, Opcode::kBranch, 1);
  EXPECT_TRUE(deps.DependsOn(inner_write, inner_branch));
  EXPECT_TRUE(deps.DependsOn(inner_branch, outer_branch));
  EXPECT_TRUE(deps.TransitivelyDependsOn(inner_write, outer_branch));
}

// --- Dependency graph (Fig. 3) ---------------------------------------------------

TEST(DepGraph, MiniLbMatchesFigure3) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  const ir::Function& fn = *spec->fn;
  CfgInfo cfg(fn);
  DependencyGraph deps(fn, cfg);

  const ir::InstId find = Find(fn, Opcode::kMapGet);
  const ir::InstId insert = Find(fn, Opcode::kMapPut);
  const ir::InstId branch = Find(fn, Opcode::kBranch);
  const ir::InstId vec_get = Find(fn, Opcode::kVectorGet);
  ASSERT_NE(find, ir::kInvalidInst);
  ASSERT_NE(insert, ir::kInvalidInst);

  // Fig. 3: the insert depends on the find (same map; write-after-read),
  // on the branch (control), and transitively on the hash computation.
  EXPECT_TRUE(deps.DependsOn(insert, find));
  EXPECT_TRUE(deps.DependsOn(insert, branch));
  EXPECT_TRUE(deps.TransitivelyDependsOn(insert, 0));
  // The vector read feeds the insert's value operand.
  EXPECT_TRUE(deps.TransitivelyDependsOn(insert, vec_get));
  // The find never depends on the insert (no path from else-branch back).
  EXPECT_FALSE(deps.TransitivelyDependsOn(find, insert));
  // Loop-free: nothing is self-dependent.
  for (int s = 0; s < deps.num_insts(); ++s) {
    EXPECT_FALSE(deps.SelfDependent(s));
  }
}

TEST(DepGraph, ReverseDataDependencyOrdersReadBeforeWrite) {
  MiddleboxBuilder mb("war");
  auto& b = mb.b();
  const Reg x = b.HeaderRead(HeaderField::kIpSrc, "x");  // reads ip.src
  b.HeaderWrite(HeaderField::kIpSrc, Imm(99));           // writes ip.src
  b.HeaderWrite(HeaderField::kIpDst, R(x));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  CfgInfo cfg(**fn);
  DependencyGraph deps(**fn, cfg);
  // The write must happen after the read (WAR edge read -> write).
  EXPECT_TRUE(deps.DependsOn(1, 0));
}

TEST(DepGraph, WawDependencyBetweenWrites) {
  MiddleboxBuilder mb("waw");
  auto& b = mb.b();
  b.HeaderWrite(HeaderField::kIpDst, Imm(1));
  b.HeaderWrite(HeaderField::kIpDst, Imm(2));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  CfgInfo cfg(**fn);
  DependencyGraph deps(**fn, cfg);
  EXPECT_TRUE(deps.DependsOn(1, 0));
}

TEST(DepGraph, IndependentStatementsHaveNoEdge) {
  MiddleboxBuilder mb("indep");
  auto& b = mb.b();
  const Reg a = b.HeaderRead(HeaderField::kIpSrc, "a");
  const Reg c = b.HeaderRead(HeaderField::kSrcPort, "c");
  b.Alu(AluOp::kAdd, R(a), Imm(1), "a1");
  b.Alu(AluOp::kAdd, R(c), Imm(1), "c1");
  b.Ret();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  CfgInfo cfg(**fn);
  DependencyGraph deps(**fn, cfg);
  EXPECT_FALSE(deps.DependsOn(3, 2));
  EXPECT_FALSE(deps.DependsOn(2, 3));
}

TEST(DepGraph, DistancesGrowAlongChains) {
  MiddleboxBuilder mb("chain");
  auto& b = mb.b();
  Reg v = b.HeaderRead(HeaderField::kIpSrc, "v");
  for (int i = 0; i < 5; ++i) {
    v = b.Alu(AluOp::kAdd, R(v), Imm(1), Width::kU32,
              "v" + std::to_string(i));
  }
  b.HeaderWrite(HeaderField::kIpDst, R(v));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  CfgInfo cfg(**fn);
  DependencyGraph deps(**fn, cfg);

  const auto& from_entry = deps.DistanceFromEntry();
  EXPECT_EQ(from_entry[0], 0);
  EXPECT_EQ(from_entry[1], 1);
  EXPECT_EQ(from_entry[5], 5);
  const auto& to_exit = deps.DistanceToExit();
  EXPECT_GT(to_exit[0], to_exit[5]);
}

TEST(DepGraph, LoopStatementsGetUnboundedDistance) {
  MiddleboxBuilder mb("unbounded");
  auto counter = mb.DeclareGlobal("i", Width::kU32, 0);
  auto& b = mb.b();
  ir::InstId body_id = ir::kInvalidInst;
  mb.While(
      [&] {
        const Reg i = counter.Read();
        return R(b.Alu(AluOp::kLt, R(i), Imm(3)));
      },
      [&] {
        const Reg i = counter.Read();
        counter.Write(R(b.Alu(AluOp::kAdd, R(i), Imm(1))));
        body_id = mb.fn().num_insts() - 1;
      });
  b.Ret();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  CfgInfo cfg(**fn);
  DependencyGraph deps(**fn, cfg);
  EXPECT_TRUE(deps.SelfDependent(body_id));
  EXPECT_EQ(deps.DistanceFromEntry()[body_id], DependencyGraph::kUnbounded);
}

// --- Liveness ----------------------------------------------------------------

TEST(Liveness, RegisterDiesAfterLastUse) {
  MiddleboxBuilder mb("live");
  auto& b = mb.b();
  const Reg a = b.HeaderRead(HeaderField::kIpSrc, "a");   // inst 0
  const Reg t = b.Alu(AluOp::kAdd, R(a), Imm(1), "t");    // inst 1: last use of a
  b.HeaderWrite(HeaderField::kIpDst, R(t));               // inst 2: last use of t
  b.Send(Imm(1));                                         // inst 3
  b.Ret();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  CfgInfo cfg(**fn);
  Liveness live(**fn, cfg);

  EXPECT_TRUE(live.LiveOut(0)[a]);
  EXPECT_FALSE(live.LiveOut(1)[a]) << "a is dead after its last use";
  EXPECT_TRUE(live.LiveOut(1)[t]);
  EXPECT_FALSE(live.LiveOut(2)[t]);
}

TEST(Liveness, ValueLiveAcrossBranchJoin) {
  MiddleboxBuilder mb("live_join");
  auto& b = mb.b();
  const Reg x = b.HeaderRead(HeaderField::kIpSrc, "x");
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  mb.IfElse(
      R(c), [&] { b.HeaderWrite(HeaderField::kIpDst, Imm(1)); },
      [&] { b.HeaderWrite(HeaderField::kIpDst, Imm(2)); });
  b.HeaderWrite(HeaderField::kEthType, R(x));  // x used after the join
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  CfgInfo cfg(**fn);
  Liveness live(**fn, cfg);
  // x stays live through both branch arms.
  const ir::InstId branch = Find(**fn, Opcode::kBranch);
  EXPECT_TRUE(live.LiveOut(branch)[x]);
  const ir::InstId then_write = Find(**fn, Opcode::kHeaderWrite, 0);
  EXPECT_TRUE(live.LiveIn(then_write)[x]);
}

TEST(Liveness, LoopKeepsInductionVariableLive) {
  MiddleboxBuilder mb("live_loop");
  auto counter = mb.DeclareGlobal("i", Width::kU32, 0);
  auto& b = mb.b();
  mb.While(
      [&] {
        const Reg i = counter.Read("i_head");
        return R(b.Alu(AluOp::kLt, R(i), Imm(3)));
      },
      [&] {
        const Reg i = counter.Read("i_body");
        counter.Write(R(b.Alu(AluOp::kAdd, R(i), Imm(1))));
      });
  b.Ret();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  CfgInfo cfg(**fn);
  Liveness live(**fn, cfg);  // must terminate (fixpoint over the cycle)
  SUCCEED();
}

}  // namespace
}  // namespace gallium::analysis
