// Fluid-simulation tests: conservation, bottleneck behavior (line, server,
// per-flow ramp), processor-sharing fairness, and FCT structure.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/fluid.h"

namespace gallium::sim {
namespace {

FluidConfig OpenConfig() {
  FluidConfig config;
  config.line_gbps = 100;
  config.per_flow_gbps = 1000;  // effectively uncapped
  config.rtt_us = 1;            // no ramp limit
  config.init_window_bytes = 1e12;
  config.num_threads = 100;
  config.setup_us_mean = 1;
  config.setup_us_jitter = 0;
  config.teardown_us = 0;
  return config;
}

TEST(Fluid, AllFlowsCompleteAndBytesConserved) {
  Rng rng(1);
  const std::vector<uint64_t> sizes = {1000, 5000, 100000, 12345, 777};
  const auto result = RunFluid(sizes, OpenConfig(), rng);
  ASSERT_EQ(result.flows.size(), sizes.size());
  double total = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(result.flows[i].bytes, sizes[i]);
    EXPECT_GT(result.flows[i].finish_us, result.flows[i].start_us);
    total += static_cast<double>(sizes[i]);
  }
  EXPECT_DOUBLE_EQ(result.total_bytes, total);
  EXPECT_GT(result.throughput_gbps, 0);
}

TEST(Fluid, ThroughputNeverExceedsLineRate) {
  Rng rng(2);
  std::vector<uint64_t> sizes(500, 10000000);  // all big flows
  const auto result = RunFluid(sizes, OpenConfig(), rng);
  EXPECT_LE(result.throughput_gbps, 100.0 * 1.001);
  EXPECT_GT(result.throughput_gbps, 95.0) << "big flows should saturate";
}

TEST(Fluid, ServerCapBindsWhenDataTraversesServer) {
  Rng rng(3);
  std::vector<uint64_t> sizes(200, 10000000);
  FluidConfig config = OpenConfig();
  config.server_data_pps = 2.0e6;  // 2 Mpps * 1500B = 24 Gbps
  config.avg_packet_bytes = 1500;
  const auto result = RunFluid(sizes, config, rng);
  EXPECT_LE(result.throughput_gbps, 24.5);
  EXPECT_GT(result.throughput_gbps, 20.0);
}

TEST(Fluid, SingleFlowLimitedByItsOwnCap) {
  Rng rng(4);
  FluidConfig config = OpenConfig();
  config.per_flow_gbps = 10;
  const auto result = RunFluid({100000000}, config, rng);
  // 100 MB at 10 Gbps = 80 ms.
  EXPECT_NEAR(result.flows[0].FctUs(), 80000, 2000);
}

TEST(Fluid, RampCapSlowsShortFlows) {
  Rng rng(5);
  FluidConfig config = OpenConfig();
  config.rtt_us = 100;
  config.init_window_bytes = 14480;
  const auto fast_rtt = RunFluid({50000}, config, rng);
  config.rtt_us = 400;
  const auto slow_rtt = RunFluid({50000}, config, rng);
  EXPECT_GT(slow_rtt.flows[0].FctUs(), 2 * fast_rtt.flows[0].FctUs())
      << "a 4x RTT must slow a slow-start-bound flow down";
}

TEST(Fluid, SetupDelaysFirstByte) {
  Rng rng(6);
  FluidConfig config = OpenConfig();
  config.setup_us_mean = 500;
  const auto result = RunFluid({1000}, config, rng);
  EXPECT_GE(result.flows[0].FctUs(), 500);
}

TEST(Fluid, FairSharingAmongEqualFlows) {
  Rng rng(7);
  // Two identical flows start together; they must finish together
  // (processor sharing), at half the line rate each.
  FluidConfig config = OpenConfig();
  config.num_threads = 2;
  const auto result = RunFluid({50000000, 50000000}, config, rng);
  EXPECT_NEAR(result.flows[0].finish_us, result.flows[1].finish_us,
              result.flows[0].finish_us * 0.02);
}

TEST(Fluid, ShorterFlowsFinishFirstUnderSharing) {
  Rng rng(8);
  FluidConfig config = OpenConfig();
  config.num_threads = 3;
  const auto result = RunFluid({1000000, 20000000, 300000000}, config, rng);
  EXPECT_LT(result.flows[0].finish_us, result.flows[1].finish_us);
  EXPECT_LT(result.flows[1].finish_us, result.flows[2].finish_us);
}

TEST(Fluid, ThreadCountBoundsConcurrency) {
  Rng rng(9);
  // One thread: flows run strictly sequentially.
  FluidConfig config = OpenConfig();
  config.num_threads = 1;
  config.per_flow_gbps = 100;
  const auto result = RunFluid({1000000, 1000000}, config, rng);
  EXPECT_GE(result.flows[1].start_us, result.flows[0].finish_us);
}

TEST(Fluid, MeanFctBinsSelectCorrectFlows) {
  FluidResult result;
  result.flows = {
      {50000, 0, 100},        // 0-100K bin, FCT 100
      {500000, 0, 1000},      // 100K-10M bin
      {50000000, 0, 10000},   // >10M bin
  };
  EXPECT_DOUBLE_EQ(MeanFctUs(result, 0, 100000), 100);
  EXPECT_DOUBLE_EQ(MeanFctUs(result, 100000, 10000000), 1000);
  EXPECT_DOUBLE_EQ(MeanFctUs(result, 10000000, ~0ull), 10000);
  EXPECT_DOUBLE_EQ(MeanFctUs(result, 1, 2), 0) << "empty bin -> 0";
}

TEST(Fluid, EmptyInputYieldsEmptyResult) {
  Rng rng(10);
  const auto result = RunFluid({}, OpenConfig(), rng);
  EXPECT_TRUE(result.flows.empty());
  EXPECT_EQ(result.total_bytes, 0);
}

}  // namespace
}  // namespace gallium::sim
