// pcap writer/reader tests: byte-exact round trips, endianness handling,
// robustness to truncation, and interop of generated traces.
#include <gtest/gtest.h>

#include <cstdio>

#include "workload/packet_gen.h"
#include "workload/pcap.h"

namespace gallium::workload {
namespace {

TEST(Pcap, HeaderIsClassicEthernet) {
  const auto bytes = WritePcap({});
  ASSERT_EQ(bytes.size(), 24u);
  EXPECT_EQ(bytes[0], 0xd4);  // little-endian 0xa1b2c3d4
  EXPECT_EQ(bytes[1], 0xc3);
  EXPECT_EQ(bytes[2], 0xb2);
  EXPECT_EQ(bytes[3], 0xa1);
  EXPECT_EQ(bytes[20], 1);  // LINKTYPE_ETHERNET
}

TEST(Pcap, RoundTripsPacketsAndTimestamps) {
  Rng rng(42);
  std::vector<net::Packet> packets;
  std::vector<uint64_t> timestamps;
  for (int i = 0; i < 20; ++i) {
    packets.push_back(net::MakeTcpPacket(RandomFlow(rng),
                                         net::kTcpAck, rng.NextBounded(500)));
    timestamps.push_back(1000000ull * i + rng.NextBounded(1000000));
  }

  const auto bytes = WritePcap(packets, timestamps);
  int skipped = -1;
  auto read = ReadPcap(bytes, &skipped);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(skipped, 0);
  ASSERT_EQ(read->size(), packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ((*read)[i].timestamp_us, timestamps[i]);
    EXPECT_EQ((*read)[i].packet.five_tuple(), packets[i].five_tuple());
    EXPECT_EQ((*read)[i].packet.payload(), packets[i].payload());
  }
}

TEST(Pcap, DefaultTimestampsAreSequential) {
  Rng rng(43);
  std::vector<net::Packet> packets = {
      net::MakeTcpPacket(RandomFlow(rng), net::kTcpSyn, 0),
      net::MakeTcpPacket(RandomFlow(rng), net::kTcpSyn, 0)};
  auto read = ReadPcap(WritePcap(packets));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0].timestamp_us, 0u);
  EXPECT_EQ((*read)[1].timestamp_us, 1u);
}

TEST(Pcap, RejectsBadMagicAndTruncation) {
  EXPECT_FALSE(ReadPcap(std::vector<uint8_t>(10, 0)).ok());
  std::vector<uint8_t> bad(24, 0);
  bad[0] = 0xde;
  EXPECT_FALSE(ReadPcap(bad).ok());

  // Truncated record.
  Rng rng(44);
  auto bytes = WritePcap({net::MakeTcpPacket(RandomFlow(rng), 0, 100)});
  bytes.resize(bytes.size() - 10);
  EXPECT_FALSE(ReadPcap(bytes).ok());
}

TEST(Pcap, SkipsUnparseableFramesWithoutFailing) {
  Rng rng(45);
  auto bytes = WritePcap({net::MakeTcpPacket(RandomFlow(rng), 0, 50),
                          net::MakeTcpPacket(RandomFlow(rng), 0, 50)});
  // Corrupt the first frame's EtherType (offset: 24 global + 16 record
  // header + 12 into the frame).
  bytes[24 + 16 + 12] = 0x86;
  bytes[24 + 16 + 13] = 0xdd;
  int skipped = 0;
  auto read = ReadPcap(bytes, &skipped);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(skipped, 1);
  EXPECT_EQ(read->size(), 1u);
}

TEST(Pcap, FileRoundTrip) {
  Rng rng(46);
  TraceOptions options;
  options.num_flows = 5;
  const Trace trace = MakeTrace(rng, options);

  const std::string path = ::testing::TempDir() + "/gallium_trace.pcap";
  ASSERT_TRUE(WritePcapFile(path, trace.packets).ok());
  auto read = ReadPcapFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), trace.packets.size());
  std::remove(path.c_str());
}

TEST(Pcap, ReadsByteSwappedCaptures) {
  // Hand-build a big-endian capture containing one minimal packet.
  Rng rng(47);
  const net::Packet pkt = net::MakeTcpPacket(RandomFlow(rng), 0, 10);
  const auto frame = pkt.Serialize();
  std::vector<uint8_t> bytes;
  auto put_be32 = [&](uint32_t v) {
    for (int i = 3; i >= 0; --i) {
      bytes.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
    }
  };
  auto put_be16 = [&](uint16_t v) {
    bytes.push_back(static_cast<uint8_t>(v >> 8));
    bytes.push_back(static_cast<uint8_t>(v & 0xff));
  };
  put_be32(0xa1b2c3d4);  // written big-endian == "swapped" on read
  put_be16(2);
  put_be16(4);
  put_be32(0);
  put_be32(0);
  put_be32(65535);
  put_be32(1);
  put_be32(7);                                    // ts sec
  put_be32(9);                                    // ts usec
  put_be32(static_cast<uint32_t>(frame.size()));  // cap len
  put_be32(static_cast<uint32_t>(frame.size()));  // orig len
  bytes.insert(bytes.end(), frame.begin(), frame.end());

  auto read = ReadPcap(bytes);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)[0].timestamp_us, 7000009u);
  EXPECT_EQ((*read)[0].packet.five_tuple(), pkt.five_tuple());
}

}  // namespace
}  // namespace gallium::workload
