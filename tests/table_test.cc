// Capacity and LPM edge cases for the switch match-action table: full-table
// inserts, the longest-prefix tie between nested prefixes, and staged
// deletions falling through to shorter prefixes mid-sync.
#include <gtest/gtest.h>

#include "switchsim/table.h"
#include "util/status.h"

namespace gallium::switchsim {
namespace {

TEST(ExactMatchTable, InsertMainRejectsWhenFull) {
  ExactMatchTable table("t", /*key_words=*/1, /*value_words=*/1,
                        /*max_entries=*/8);
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(table.InsertMain({k}, {k * 10}).ok()) << k;
  }
  EXPECT_EQ(table.size(), 8u);

  // One past capacity fails without eviction mode...
  const Status overflow = table.InsertMain({100}, {1});
  EXPECT_EQ(overflow.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(overflow.ToString().find("table full"), std::string::npos);

  // ...but overwriting a resident key is not a capacity event.
  EXPECT_TRUE(table.InsertMain({3}, {99}).ok());
  TableValue value;
  EXPECT_TRUE(table.Lookup({3}, &value));
  EXPECT_EQ(value, TableValue({99}));
  EXPECT_EQ(table.size(), 8u);
}

TEST(ExactMatchTable, ApplyStagedRespectsCapacity) {
  ExactMatchTable table("t", 1, 1, /*max_entries=*/4);
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(table.InsertMain({k}, {k}).ok());
  }
  ASSERT_TRUE(table.Stage({7}, TableValue{70}).ok());
  const Status full = table.ApplyStagedToMain();
  EXPECT_EQ(full.code(), ErrorCode::kResourceExhausted);

  // A staged delete + insert of equal cardinality flushes cleanly.
  ASSERT_TRUE(table.Stage({0}, std::nullopt).ok());
  ASSERT_TRUE(table.Stage({7}, TableValue{70}).ok());
  EXPECT_TRUE(table.ApplyStagedToMain().ok());
  EXPECT_EQ(table.size(), 4u);
  TableValue value;
  EXPECT_FALSE(table.Lookup({0}, &value));
  EXPECT_TRUE(table.Lookup({7}, &value));
  EXPECT_EQ(value, TableValue({70}));
}

TEST(ExactMatchTable, StageRejectsWhenShadowFull) {
  // Shadow capacity is max(16, max_entries / 4) = 16 here.
  ExactMatchTable table("t", 1, 1, /*max_entries=*/8);
  for (uint64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(table.Stage({k}, TableValue{k}).ok()) << k;
  }
  const Status full = table.Stage({999}, TableValue{1});
  EXPECT_EQ(full.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(full.ToString().find("write-back"), std::string::npos);
  // Restaging a key already in the shadow is allowed at capacity.
  EXPECT_TRUE(table.Stage({5}, TableValue{55}).ok());
}

TEST(ExactMatchTable, LpmLongestPrefixWins) {
  ExactMatchTable table("routes", 1, 1, 16, ExactMatchTable::MatchKind::kLpm);
  // Nested prefixes over 10.1.0.0: /8, /16, /24 plus a default route.
  ASSERT_TRUE(table.InsertMain({0x00000000, 0}, {1}).ok());
  ASSERT_TRUE(table.InsertMain({0x0a000000, 8}, {8}).ok());
  ASSERT_TRUE(table.InsertMain({0x0a010000, 16}, {16}).ok());
  ASSERT_TRUE(table.InsertMain({0x0a010200, 24}, {24}).ok());

  TableValue value;
  ASSERT_TRUE(table.Lookup({0x0a010203}, &value));  // 10.1.2.3 -> /24
  EXPECT_EQ(value, TableValue({24}));
  ASSERT_TRUE(table.Lookup({0x0a01ff01}, &value));  // 10.1.255.1 -> /16
  EXPECT_EQ(value, TableValue({16}));
  ASSERT_TRUE(table.Lookup({0x0aff0001}, &value));  // 10.255.0.1 -> /8
  EXPECT_EQ(value, TableValue({8}));
  ASSERT_TRUE(table.Lookup({0x0b000001}, &value));  // 11.0.0.1 -> default
  EXPECT_EQ(value, TableValue({1}));
}

TEST(ExactMatchTable, LpmStagedDeleteFallsThroughToShorterPrefix) {
  ExactMatchTable table("routes", 1, 1, 16, ExactMatchTable::MatchKind::kLpm);
  ASSERT_TRUE(table.InsertMain({0x0a000000, 8}, {8}).ok());
  ASSERT_TRUE(table.InsertMain({0x0a010000, 16}, {16}).ok());

  // Stage a delete of the /16; while the write-back window is open the
  // lookup must fall through to the /8, not miss.
  ASSERT_TRUE(table.Stage({0x0a010000, 16}, std::nullopt).ok());
  TableValue value;
  ASSERT_TRUE(table.Lookup({0x0a010203}, &value));
  EXPECT_EQ(value, TableValue({16})) << "delete must stay staged until the "
                                        "write-back bit flips";

  table.SetUseWriteBack(true);
  ASSERT_TRUE(table.Lookup({0x0a010203}, &value));
  EXPECT_EQ(value, TableValue({8}));

  // After the flush the fallthrough is permanent.
  ASSERT_TRUE(table.ApplyStagedToMain().ok());
  table.SetUseWriteBack(false);
  ASSERT_TRUE(table.Lookup({0x0a010203}, &value));
  EXPECT_EQ(value, TableValue({8}));
  EXPECT_EQ(table.size(), 1u);
}

TEST(ExactMatchTable, LpmStagedOverrideWinsOverMain) {
  ExactMatchTable table("routes", 1, 1, 16, ExactMatchTable::MatchKind::kLpm);
  ASSERT_TRUE(table.InsertMain({0x0a010000, 16}, {16}).ok());
  ASSERT_TRUE(table.Stage({0x0a010000, 16}, TableValue{99}).ok());
  table.SetUseWriteBack(true);
  TableValue value;
  ASSERT_TRUE(table.Lookup({0x0a010203}, &value));
  EXPECT_EQ(value, TableValue({99}));
}

}  // namespace
}  // namespace gallium::switchsim
