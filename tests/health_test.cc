// Unit tests for the health watchdog failure detector: entry/exit
// hysteresis, dwell-bounded transitions, two-phase recovery, and probe
// cadence. The soak tests in chaos_test.cc exercise the watchdog end to end
// inside the runtime; these pin down the detector's state machine in
// isolation, where every piece of evidence is hand-fed.
#include <gtest/gtest.h>

#include "runtime/health.h"

namespace gallium {
namespace {

using runtime::HealthOptions;
using runtime::HealthWatchdog;
using Mode = runtime::HealthWatchdog::Mode;

HealthOptions TightOptions() {
  HealthOptions opts;
  opts.enabled = true;
  opts.probe_interval_packets = 1;  // every packet carries a probe
  opts.miss_enter_threshold = 3;
  opts.ok_exit_threshold = 4;
  opts.latency_enter_us = 2000.0;
  opts.latency_exit_us = 800.0;
  opts.ewma_alpha = 0.3;
  opts.min_dwell_packets = 4;
  return opts;
}

// One simulated packet: advance the clock, feed evidence if probed.
void Step(HealthWatchdog* dog, bool success, double latency_us) {
  if (dog->OnPacket()) dog->RecordObservation(success, latency_us);
}

TEST(HealthWatchdog, StaysOffloadedOnHealthyEvidence) {
  HealthWatchdog dog(TightOptions());
  for (int i = 0; i < 50; ++i) Step(&dog, true, 100.0);
  EXPECT_EQ(dog.mode(), Mode::kOffloaded);
  EXPECT_EQ(dog.transitions(), 0u);
  EXPECT_NEAR(dog.latency_ewma_us(), 100.0, 1.0);
}

TEST(HealthWatchdog, ConsecutiveMissesEnterDegradedAfterDwell) {
  HealthWatchdog dog(TightOptions());
  // Three misses satisfy the entry threshold at packet 3, but the dwell
  // floor (4 packets) refuses the transition until the next packet.
  Step(&dog, false, 0.0);
  Step(&dog, false, 0.0);
  Step(&dog, false, 0.0);
  EXPECT_EQ(dog.mode(), Mode::kOffloaded) << "dwell must delay entry";
  Step(&dog, false, 0.0);
  EXPECT_EQ(dog.mode(), Mode::kDegraded);
  EXPECT_EQ(dog.transitions(), 1u);
  EXPECT_EQ(dog.probes_missed(), 4u);
}

TEST(HealthWatchdog, LatencyEwmaAloneTripsEntry) {
  HealthWatchdog dog(TightOptions());
  // Every probe answers — slowly. No miss ever happens, but the EWMA sits
  // above latency_enter_us, so the slow-switch grey failure still degrades.
  for (int i = 0; i < 4; ++i) Step(&dog, true, 5000.0);
  EXPECT_EQ(dog.mode(), Mode::kDegraded);
  EXPECT_EQ(dog.probes_missed(), 0u);
}

TEST(HealthWatchdog, ExitRequiresSustainedSuccessAndLowLatency) {
  HealthWatchdog dog(TightOptions());
  for (int i = 0; i < 4; ++i) Step(&dog, false, 0.0);
  ASSERT_EQ(dog.mode(), Mode::kDegraded);
  // Miss penalty parked the EWMA at 2x the entry threshold (4000 us).
  ASSERT_GE(dog.latency_ewma_us(), 2000.0);

  // Four consecutive fast successes satisfy the count gate, but the EWMA
  // (4000 -> 2830 -> 2011 -> 1438 -> 1036) is still above latency_exit_us:
  // recovery must NOT arm yet. That is the Schmitt-trigger exit — both
  // gates, crossed in the opposite direction from entry.
  for (int i = 0; i < 4; ++i) Step(&dog, true, 100.0);
  EXPECT_EQ(dog.mode(), Mode::kDegraded)
      << "count gate alone must not arm recovery";

  // One more success decays the EWMA under 800: now recovery arms, and it
  // parks in resync-pending rather than jumping straight to offloaded.
  Step(&dog, true, 100.0);
  EXPECT_EQ(dog.mode(), Mode::kResyncPending);
  EXPECT_LE(dog.latency_ewma_us(), 800.0);

  // Only the runtime's state rebuild completes the recovery.
  dog.NotifyResynced();
  EXPECT_EQ(dog.mode(), Mode::kOffloaded);
  EXPECT_EQ(dog.transitions(), 3u);
}

TEST(HealthWatchdog, ResyncPendingFallsBackOnRenewedMisses) {
  HealthWatchdog dog(TightOptions());
  for (int i = 0; i < 4; ++i) Step(&dog, false, 0.0);
  for (int i = 0; i < 5; ++i) Step(&dog, true, 100.0);
  ASSERT_EQ(dog.mode(), Mode::kResyncPending);
  // Health collapses before the rebuild happens: fall straight back to
  // degraded instead of resyncing against a sick switch.
  for (int i = 0; i < 3; ++i) Step(&dog, false, 0.0);
  EXPECT_EQ(dog.mode(), Mode::kDegraded);
}

TEST(HealthWatchdog, NotifyResyncedIsANoOpOutsideResyncPending) {
  HealthWatchdog fresh(TightOptions());
  fresh.NotifyResynced();
  EXPECT_EQ(fresh.mode(), Mode::kOffloaded);
  EXPECT_EQ(fresh.transitions(), 0u);

  HealthWatchdog sick(TightOptions());
  for (int i = 0; i < 4; ++i) Step(&sick, false, 0.0);
  ASSERT_EQ(sick.mode(), Mode::kDegraded);
  sick.NotifyResynced();
  EXPECT_EQ(sick.mode(), Mode::kDegraded)
      << "a resync cannot short-circuit the health gates";
}

TEST(HealthWatchdog, DwellBoundsTransitionsUnderAdversarialEvidence) {
  HealthOptions opts = TightOptions();
  opts.min_dwell_packets = 8;
  HealthWatchdog dog(opts);
  // Adversarial schedule tuned to flap as fast as possible: alternating
  // bursts of misses and fast successes. The dwell floor caps the rate at
  // one transition per 8 packets regardless.
  const uint64_t kPackets = 400;
  for (uint64_t i = 0; i < kPackets; ++i) {
    const bool miss = (i / 4) % 2 == 0;
    Step(&dog, !miss, miss ? 0.0 : 100.0);
    if (dog.mode() == Mode::kResyncPending) dog.NotifyResynced();
  }
  EXPECT_GT(dog.transitions(), 0u) << "schedule never tripped the detector";
  EXPECT_LE(dog.transitions(), kPackets / opts.min_dwell_packets + 1);
}

TEST(HealthWatchdog, ProbeCadenceTightensWhileDegraded) {
  HealthOptions opts = TightOptions();
  opts.probe_interval_packets = 4;
  opts.min_dwell_packets = 1;
  HealthWatchdog dog(opts);
  // Offloaded and healthy: one probe per interval (packets 4, 8, 12, 16).
  for (int i = 0; i < 16; ++i) Step(&dog, true, 100.0);
  ASSERT_EQ(dog.mode(), Mode::kOffloaded);
  EXPECT_EQ(dog.probes_sent(), 4u);
  // Now the switch stops answering. Probes at packets 20 and 24 miss; the
  // second miss penalty lifts the EWMA past the entry threshold.
  for (int i = 0; i < 8; ++i) Step(&dog, false, 0.0);
  ASSERT_EQ(dog.mode(), Mode::kDegraded);
  EXPECT_EQ(dog.probes_sent(), 6u);
  // Degraded: every packet probes, so recovery evidence accumulates fast.
  for (int i = 0; i < 4; ++i) Step(&dog, false, 0.0);
  EXPECT_EQ(dog.probes_sent(), 10u);
}

}  // namespace
}  // namespace gallium
