// RMT table placement: the five paper middleboxes must place on the default
// Tofino-like profile, dependency order must translate into strictly
// increasing stages, an oversized program on a tiny pipeline must trigger
// the spill/re-partition feedback loop (and stay functionally equivalent),
// and placement failure must be structured enough to drive the JSON
// diagnostics.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "rmt/feedback.h"
#include "rmt/placement.h"
#include "rmt/target.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "workload/packet_gen.h"

#include "program_generator.h"

namespace gallium::rmt {
namespace {

int IndexOfTable(const PlacementReport& report, const std::string& name) {
  for (size_t i = 0; i < report.tables.size(); ++i) {
    if (report.tables[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

TEST(RmtTarget, DefaultProfileIsValidAndCoversConstraints) {
  const partition::SwitchConstraints constraints;
  const RmtTargetModel target = DefaultTofinoProfile(constraints);
  EXPECT_TRUE(target.Validate().ok());
  EXPECT_EQ(target.num_stages, constraints.pipeline_depth);
  EXPECT_GE(target.TotalSramBytes(), constraints.memory_bytes);
  EXPECT_TRUE(TinyTestProfile().Validate().ok());
}

TEST(RmtPlacement, AllPaperMiddleboxesPlaceOnDefaultProfile) {
  const partition::SwitchConstraints constraints;
  const RmtTargetModel target = DefaultTofinoProfile(constraints);
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    auto planned = PartitionAndPlace(*spec.fn, constraints, target);
    ASSERT_TRUE(planned.ok()) << spec.name << ": "
                              << planned.status().ToString();
    EXPECT_TRUE(planned->spilled.empty())
        << spec.name << " should fit without spilling";
    EXPECT_EQ(planned->rounds, 1) << spec.name;
    EXPECT_FALSE(planned->placement.tables.empty()) << spec.name;
    EXPECT_LE(planned->placement.StagesOccupied(), target.num_stages)
        << spec.name;
    // Every table landed in a real stage.
    for (size_t i = 0; i < planned->placement.tables.size(); ++i) {
      EXPECT_GE(planned->placement.stage_of[i], 0)
          << spec.name << ": " << planned->placement.tables[i].name;
      EXPECT_LT(planned->placement.stage_of[i], target.num_stages)
          << spec.name << ": " << planned->placement.tables[i].name;
    }
  }
}

TEST(RmtPlacement, DependenciesGetStrictlyIncreasingStages) {
  const partition::SwitchConstraints constraints;
  const RmtTargetModel target = DefaultTofinoProfile(constraints);
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    auto planned = PartitionAndPlace(*spec.fn, constraints, target);
    ASSERT_TRUE(planned.ok()) << spec.name;
    const PlacementReport& report = planned->placement;
    for (size_t i = 0; i < report.tables.size(); ++i) {
      for (int dep : report.tables[i].after) {
        EXPECT_LT(report.stage_of[dep], report.stage_of[i])
            << spec.name << ": " << report.tables[dep].name
            << " must complete before " << report.tables[i].name;
      }
    }
  }
}

TEST(RmtPlacement, WriteBackChainOrdersBeforeMainTable) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  const partition::SwitchConstraints constraints;
  auto planned = PartitionAndPlace(*spec->fn, constraints,
                                   DefaultTofinoProfile(constraints));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const PlacementReport& report = planned->placement;

  int checked = 0;
  for (size_t i = 0; i < report.tables.size(); ++i) {
    const TableRequirement& table = report.tables[i];
    if (table.kind != TableRequirement::Kind::kMatchTable) continue;
    const int wb = IndexOfTable(report, table.name + "_wb");
    if (wb < 0) continue;
    const int active = IndexOfTable(
        report, "wb_active_" + table.name.substr(std::string("tbl_").size()));
    ASSERT_GE(active, 0) << table.name;
    // §4.3.3: read the use-write-back bit, consult the shadow, then the main
    // table — three strictly ordered stages.
    EXPECT_LT(report.stage_of[active], report.stage_of[wb]) << table.name;
    EXPECT_LT(report.stage_of[wb], report.stage_of[static_cast<int>(i)])
        << table.name;
    ++checked;
  }
  EXPECT_GE(checked, 2) << "NAT should carry two write-back chains";
}

TEST(RmtFeedback, TinyPipelineSpillsAndRepartitions) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  const partition::SwitchConstraints constraints;
  PlacementFailure failure;
  auto planned =
      PartitionAndPlace(*spec->fn, constraints, TinyTestProfile(), &failure);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_FALSE(planned->spilled.empty())
      << "NAT tables cannot fit a 4-stage, 32KB/stage pipeline";
  EXPECT_GT(planned->rounds, 1);
  // Whatever remains on the switch genuinely places.
  EXPECT_LE(planned->placement.StagesOccupied(),
            TinyTestProfile().num_stages);
}

TEST(RmtFeedback, OversizedFuzzProgramsSpillButStillPlace) {
  const partition::SwitchConstraints constraints;
  const RmtTargetModel tiny = TinyTestProfile();
  int spilled_programs = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    testing::ProgramGenerator generator(seed);
    auto spec = generator.Generate();
    ASSERT_TRUE(spec.ok()) << "seed " << seed;
    auto planned = PartitionAndPlace(*spec->fn, constraints, tiny);
    ASSERT_TRUE(planned.ok()) << "seed " << seed << ": "
                              << planned.status().ToString();
    if (!planned->spilled.empty()) {
      ++spilled_programs;
      EXPECT_GT(planned->rounds, 1) << "seed " << seed;
    }
  }
  EXPECT_GT(spilled_programs, 0)
      << "the fuzz corpus never exceeded the tiny pipeline";
}

TEST(RmtFeedback, SpilledPlanStaysEquivalentToSoftware) {
  auto spec_sw = mbox::BuildMazuNat();
  auto spec_off = mbox::BuildMazuNat();
  ASSERT_TRUE(spec_sw.ok() && spec_off.ok());

  runtime::SoftwareMiddlebox software(*spec_sw);
  runtime::OffloadedOptions options;
  options.rmt_target = TinyTestProfile();
  auto offloaded = runtime::OffloadedMiddlebox::Create(*spec_off, options);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();
  EXPECT_FALSE((*offloaded)->spilled_state().empty());
  EXPECT_GT((*offloaded)->partition_rounds(), 1);

  Rng rng(99);
  workload::TraceOptions trace_options;
  trace_options.num_flows = 30;
  trace_options.ingress_port = mbox::kPortInternal;
  const workload::Trace trace = workload::MakeTrace(rng, trace_options);
  ASSERT_FALSE(trace.packets.empty());

  uint64_t now_ms = 0;
  for (const net::Packet& original : trace.packets) {
    ++now_ms;
    net::Packet sw_pkt = original;
    auto sw_out = software.Process(sw_pkt, now_ms);
    ASSERT_TRUE(sw_out.status.ok());
    auto off_out = (*offloaded)->Process(original, now_ms);
    ASSERT_TRUE(off_out.status.ok());
    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << original.ToString();
    if (sw_out.verdict.kind == runtime::Verdict::Kind::kSend) {
      EXPECT_EQ(sw_out.verdict.egress_port, off_out.verdict.egress_port);
    }
  }
}

TEST(RmtPlacement, FailureIsStructured) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  const partition::SwitchConstraints constraints;
  partition::Partitioner partitioner(*spec->fn, constraints);
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());

  // One stage cannot host the 3-deep write-back chain regardless of memory.
  RmtTargetModel one_stage = DefaultTofinoProfile(constraints);
  one_stage.num_stages = 1;
  const PlacementResult result = PlaceTables(*spec->fn, *plan, one_stage);
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.failure->table.empty());
  EXPECT_FALSE(result.failure->resource.empty());
  EXPECT_FALSE(result.failure->message.empty());
}

TEST(RmtPlacement, DiagnosticJsonIsMachineReadable) {
  core::CompileDiagnostic diag;
  diag.phase = "placement";
  diag.table = "tbl_nat_in";
  diag.stage = 3;
  diag.resource = "sram_blocks";
  diag.message = "needs 90 blocks, stage 3 has \"86\"";
  const std::string json = diag.ToJson();
  EXPECT_EQ(json.find("{\"error\":\"placement\""), 0u) << json;
  EXPECT_NE(json.find("\"table\":\"tbl_nat_in\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"resource\":\"sram_blocks\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\\\"86\\\""), std::string::npos)
      << "quotes must be escaped: " << json;
}

TEST(RmtRuntime, StageAwareExecutionSeesNoOrderViolations) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  auto offloaded = runtime::OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();
  ASSERT_TRUE((*offloaded)->device().stage_aware());

  Rng rng(7);
  workload::TraceOptions trace_options;
  trace_options.num_flows = 20;
  trace_options.ingress_port = mbox::kPortInternal;
  const workload::Trace trace = workload::MakeTrace(rng, trace_options);
  uint64_t now_ms = 0;
  for (const net::Packet& pkt : trace.packets) {
    ++now_ms;
    auto out = (*offloaded)->Process(pkt, now_ms);
    ASSERT_TRUE(out.status.ok());
  }

  const switchsim::Switch& device = (*offloaded)->device();
  EXPECT_GT(device.pipeline_passes(), 0u);
  EXPECT_GT(device.stages_occupied(), 0);
  // The placement's stage order must agree with actual execution order:
  // every state access happened in or after the stage of the previous one.
  EXPECT_EQ(device.stage_order_violations(), 0u);
}

}  // namespace
}  // namespace gallium::rmt
