// Artifact-compilation test: the generated server C++ program, together
// with the shipped support headers, must compile with a real C++ compiler.
// This is the server-side counterpart of the P4 evaluator tests — the
// emitted artifact is validated, not just its in-memory representation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "cppgen/codegen.h"
#include "cppgen/support.h"
#include "mbox/middleboxes.h"
#include "partition/partitioner.h"

#include "program_generator.h"

namespace gallium::cppgen {
namespace {

// Compiles `source` with the host compiler; returns the exit status.
int CompileArtifact(const std::string& name, const std::string& source) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("gallium_artifact_" + name);
  auto path = MaterializeServerArtifact(dir.string(), name, source);
  EXPECT_TRUE(path.ok()) << path.status().ToString();
  const std::string command = "g++ -std=c++20 -fsyntax-only -Wall -I" +
                              dir.string() + " " + *path + " 2>" +
                              (dir / "errors.txt").string();
  const int status = std::system(command.c_str());
  if (status != 0) {
    // Surface the compiler output in the test log.
    std::string errors;
    if (FILE* f = std::fopen((dir / "errors.txt").c_str(), "r")) {
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        errors.append(buf, n);
      }
      std::fclose(f);
    }
    ADD_FAILURE() << "g++ rejected generated artifact '" << name
                  << "':\n" << errors << "\n--- source ---\n" << source;
  }
  return status;
}

TEST(CppGenCompile, SupportHeadersAreSelfContained) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "gallium_support";
  auto path = MaterializeServerArtifact(
      dir.string(), "probe",
      "#include \"gallium/runtime.h\"\n#include \"gallium/dpdk_glue.h\"\n"
      "int main() { gallium::Packet pkt; gallium::SwitchSync sync;\n"
      "  sync.StageInsert(\"t\", {1}, {2});\n"
      "  return sync.HasStagedUpdates() ? 0 : 1; }\n");
  ASSERT_TRUE(path.ok());
  const std::string command =
      "g++ -std=c++20 -fsyntax-only -Wall -I" + dir.string() + " " + *path;
  EXPECT_EQ(std::system(command.c_str()), 0);
}

TEST(CppGenCompile, AllPaperMiddleboxArtifactsCompile) {
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    partition::Partitioner partitioner(*spec.fn, {});
    auto plan = partitioner.Run();
    ASSERT_TRUE(plan.ok()) << spec.name;
    auto source = GenerateServerCpp(*spec.fn, *plan);
    ASSERT_TRUE(source.ok()) << spec.name;
    EXPECT_EQ(CompileArtifact(spec.name, *source), 0) << spec.name;
  }
}

TEST(CppGenCompile, MiniLbArtifactCompiles) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  auto source = GenerateServerCpp(*spec->fn, *plan);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(CompileArtifact("mini_lb", *source), 0);
}

class CppGenCompileFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CppGenCompileFuzz, RandomProgramArtifactsCompile) {
  gallium::testing::ProgramGenerator gen(GetParam());
  auto spec = gen.Generate();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  auto source = GenerateServerCpp(*spec->fn, *plan);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(CompileArtifact("fuzz_" + std::to_string(GetParam()), *source),
            0);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, CppGenCompileFuzz,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

}  // namespace
}  // namespace gallium::cppgen
