// Frontend tests: the Click-style builder's structured control flow and
// state declarations produce verifiable IR.
#include <gtest/gtest.h>

#include "frontend/middlebox_builder.h"
#include "ir/verifier.h"

namespace gallium::frontend {
namespace {

using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Reg;
using ir::Width;

TEST(Frontend, EmptyProgramGetsImplicitReturn) {
  MiddleboxBuilder mb("empty");
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ((*fn)->block((*fn)->entry_block()).terminator().op,
            ir::Opcode::kReturn);
}

TEST(Frontend, IfCreatesDiamondToJoin) {
  MiddleboxBuilder mb("if");
  auto& b = mb.b();
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  mb.If(R(c), [&] { b.HeaderWrite(HeaderField::kIpDst, Imm(1)); });
  b.Send(Imm(0));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  EXPECT_EQ((*fn)->num_blocks(), 3);  // entry, then, join
}

TEST(Frontend, TerminatedBodiesSkipJoinJump) {
  MiddleboxBuilder mb("term");
  auto& b = mb.b();
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  mb.IfElse(
      R(c),
      [&] {
        b.Send(Imm(1));
        b.Ret();
      },
      [&] {
        b.Drop();
        b.Ret();
      });
  // The join block is unreachable; Finish() must still terminate it.
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  for (const auto& bb : (*fn)->blocks()) {
    EXPECT_TRUE(bb.HasTerminator()) << bb.name;
  }
}

TEST(Frontend, WhileLoopShapesBackEdge) {
  MiddleboxBuilder mb("loop");
  auto g = mb.DeclareGlobal("i", Width::kU32, 0);
  auto& b = mb.b();
  mb.While(
      [&] {
        const Reg i = g.Read();
        return R(b.Alu(AluOp::kLt, R(i), Imm(4)));
      },
      [&] {
        const Reg i = g.Read();
        g.Write(R(b.Alu(AluOp::kAdd, R(i), Imm(1))));
      });
  b.Send(Imm(0));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  // Head, body, exit + entry: the body jumps back to the head.
  bool has_back_edge = false;
  for (const auto& bb : (*fn)->blocks()) {
    const auto& term = bb.terminator();
    if (term.op == ir::Opcode::kJump && term.target_true < bb.id) {
      has_back_edge = true;
    }
  }
  EXPECT_TRUE(has_back_edge);
}

TEST(Frontend, DeclarationsRecordAnnotations) {
  MiddleboxBuilder mb("decls");
  auto map = mb.DeclareMap("m", {Width::kU32}, {Width::kU16}, 4096);
  auto vec = mb.DeclareVector("v", Width::kU32, 32);
  auto g = mb.DeclareGlobal("g", Width::kU64, 7);
  (void)map;
  (void)vec;
  (void)g;
  const uint32_t pat = mb.DeclarePattern("HELLO");
  auto& fn = mb.fn();
  EXPECT_EQ(fn.map(0).max_entries, 4096u);
  EXPECT_EQ(fn.vector(0).max_size, 32u);
  EXPECT_EQ(fn.global(0).init, 7u);
  EXPECT_EQ(fn.patterns()[pat], "HELLO");
  mb.b().Ret();
  auto finished = std::move(mb).Finish();
  EXPECT_TRUE(finished.ok());
}

TEST(Frontend, NestedIfElseVerifies) {
  MiddleboxBuilder mb("nest");
  auto& b = mb.b();
  const Reg a = b.HeaderRead(HeaderField::kIpTtl, "a");
  const Reg c = b.HeaderRead(HeaderField::kIpProto, "c");
  mb.IfElse(
      R(a),
      [&] {
        mb.IfElse(
            R(c), [&] { b.Send(Imm(1)); b.Ret(); },
            [&] { b.Send(Imm(2)); b.Ret(); });
      },
      [&] {
        mb.If(R(c), [&] { b.HeaderWrite(HeaderField::kIpDst, Imm(9)); });
        b.Send(Imm(3));
        b.Ret();
      });
  auto fn = std::move(mb).Finish();
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
}

}  // namespace
}  // namespace gallium::frontend
