// Middlebox semantics tests at the software (unpartitioned) level: each of
// the five paper middleboxes behaves per its §6.1 description. These
// complement the equivalence tests, which check that offloading preserves
// whatever the software version does.
#include <gtest/gtest.h>

#include "mbox/middleboxes.h"
#include "runtime/software_middlebox.h"
#include "workload/packet_gen.h"

namespace gallium::mbox {
namespace {

using runtime::SoftwareMiddlebox;
using runtime::Verdict;

net::Packet Inbound(const net::FiveTuple& flow, uint8_t flags,
                    size_t payload = 0) {
  net::Packet pkt = net::MakeTcpPacket(flow, flags, payload);
  pkt.set_ingress_port(kPortInternal);
  return pkt;
}

// --- MiniLB -----------------------------------------------------------------

TEST(MiniLb, SameHashStaysOnSameBackend) {
  auto spec = BuildMiniLb(4);
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const net::FiveTuple flow{100, 200, 1, 2, net::kIpProtoTcp};
  net::Packet p1 = Inbound(flow, net::kTcpSyn);
  net::Packet p2 = Inbound(flow, net::kTcpAck);
  ASSERT_TRUE(mbx.Process(p1).status.ok());
  ASSERT_TRUE(mbx.Process(p2).status.ok());
  EXPECT_EQ(p1.ip().daddr, p2.ip().daddr);
  EXPECT_NE(p1.ip().daddr, 200u) << "destination must be rewritten";
}

TEST(MiniLb, StickinessSurvivesBackendListChange) {
  // The paper's motivation for the map: existing connections stay put even
  // when the backend list changes.
  auto spec = BuildMiniLb(4);
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const net::FiveTuple flow{101, 202, 1, 2, net::kIpProtoTcp};
  net::Packet p1 = Inbound(flow, net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(p1).status.ok());
  const uint32_t assigned = p1.ip().daddr;

  // Change the backend list underneath.
  mbx.state().vector_contents(0) = {net::MakeIpv4(9, 9, 9, 1),
                                    net::MakeIpv4(9, 9, 9, 2)};
  net::Packet p2 = Inbound(flow, net::kTcpAck);
  ASSERT_TRUE(mbx.Process(p2).status.ok());
  EXPECT_EQ(p2.ip().daddr, assigned);
}

// --- MazuNAT ------------------------------------------------------------------

TEST(MazuNat, AllocatesMonotonicallyIncreasingPorts) {
  auto spec = BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  Rng rng(61);
  uint16_t last = 0;
  for (int i = 0; i < 5; ++i) {
    net::Packet pkt = Inbound(workload::RandomFlow(rng), net::kTcpSyn);
    ASSERT_TRUE(mbx.Process(pkt).status.ok());
    EXPECT_EQ(pkt.ip().saddr, kNatExternalIp);
    if (i > 0) {
      EXPECT_EQ(pkt.sport(), last + 1);
    }
    last = pkt.sport();
  }
}

TEST(MazuNat, ReusesMappingForSameSource) {
  auto spec = BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const net::FiveTuple flow{1000, 2000, 333, 80, net::kIpProtoTcp};
  net::Packet p1 = Inbound(flow, net::kTcpSyn);
  net::Packet p2 = Inbound(flow, net::kTcpAck);
  ASSERT_TRUE(mbx.Process(p1).status.ok());
  ASSERT_TRUE(mbx.Process(p2).status.ok());
  EXPECT_EQ(p1.sport(), p2.sport());
}

TEST(MazuNat, DropsUnsolicitedInbound) {
  auto spec = BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  net::Packet pkt = net::MakeTcpPacket({5, kNatExternalIp, 80, 9999,
                                        net::kIpProtoTcp},
                                       net::kTcpSyn, 0);
  pkt.set_ingress_port(kPortExternal);
  const auto outcome = mbx.Process(pkt);
  EXPECT_EQ(outcome.verdict.kind, Verdict::Kind::kDrop);
}

// --- L4 load balancer -------------------------------------------------------------

TEST(LoadBalancer, FinRemovesAffinity) {
  auto spec = BuildLoadBalancer(4);
  ASSERT_TRUE(spec.ok());
  const ir::StateIndex flows_map = spec->MapIndex("flows");
  SoftwareMiddlebox mbx(*spec);
  const net::FiveTuple flow{77, 88, 5, 6, net::kIpProtoTcp};
  net::Packet syn = Inbound(flow, net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(syn).status.ok());
  EXPECT_EQ(mbx.state().MapSize(flows_map), 1u);
  net::Packet fin = Inbound(flow, net::kTcpFin | net::kTcpAck);
  ASSERT_TRUE(mbx.Process(fin).status.ok());
  EXPECT_EQ(mbx.state().MapSize(flows_map), 0u);
}

TEST(LoadBalancer, RstRemovesAffinity) {
  auto spec = BuildLoadBalancer(4);
  ASSERT_TRUE(spec.ok());
  const ir::StateIndex flows_map = spec->MapIndex("flows");
  SoftwareMiddlebox mbx(*spec);
  const net::FiveTuple flow{78, 89, 5, 6, net::kIpProtoTcp};
  net::Packet syn = Inbound(flow, net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(syn).status.ok());
  net::Packet rst = Inbound(flow, net::kTcpRst);
  ASSERT_TRUE(mbx.Process(rst).status.ok());
  EXPECT_EQ(mbx.state().MapSize(flows_map), 0u);
}

TEST(LoadBalancer, UdpFlowsBalancedWithoutTeardown) {
  auto spec = BuildLoadBalancer(4);
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const net::FiveTuple flow{79, 90, 5, 6, net::kIpProtoUdp};
  net::Packet p1 = net::MakeUdpPacket(flow, 100);
  p1.set_ingress_port(kPortInternal);
  net::Packet p2 = p1;
  ASSERT_TRUE(mbx.Process(p1).status.ok());
  ASSERT_TRUE(mbx.Process(p2).status.ok());
  EXPECT_EQ(p1.ip().daddr, p2.ip().daddr);
}

TEST(LoadBalancer, DifferentFlowsSpreadAcrossBackends) {
  auto spec = BuildLoadBalancer(16);
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  Rng rng(62);
  std::set<uint32_t> backends;
  for (int i = 0; i < 64; ++i) {
    net::Packet pkt = Inbound(workload::RandomFlow(rng), net::kTcpSyn);
    ASSERT_TRUE(mbx.Process(pkt).status.ok());
    backends.insert(pkt.ip().daddr);
  }
  EXPECT_GE(backends.size(), 8u) << "consistent hashing should spread flows";
}

// --- Firewall -----------------------------------------------------------------

TEST(Firewall, DirectionalWhitelists) {
  const net::FiveTuple out_flow{10, 20, 30, 40, net::kIpProtoTcp};
  const net::FiveTuple in_flow{50, 60, 70, 80, net::kIpProtoTcp};
  std::vector<MapInitEntry> out_rules = {
      {{out_flow.saddr, out_flow.daddr, out_flow.sport, out_flow.dport,
        out_flow.protocol},
       {1}}};
  std::vector<MapInitEntry> in_rules = {
      {{in_flow.saddr, in_flow.daddr, in_flow.sport, in_flow.dport,
        in_flow.protocol},
       {1}}};
  auto spec = BuildFirewall(out_rules, in_rules);
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);

  // Outbound rule accepted outbound, not inbound.
  net::Packet a = Inbound(out_flow, net::kTcpAck);
  EXPECT_EQ(mbx.Process(a).verdict.kind, Verdict::Kind::kSend);
  net::Packet b = net::MakeTcpPacket(out_flow, net::kTcpAck, 0);
  b.set_ingress_port(kPortExternal);
  EXPECT_EQ(mbx.Process(b).verdict.kind, Verdict::Kind::kDrop);

  net::Packet c = net::MakeTcpPacket(in_flow, net::kTcpAck, 0);
  c.set_ingress_port(kPortExternal);
  EXPECT_EQ(mbx.Process(c).verdict.kind, Verdict::Kind::kSend);
}

TEST(Firewall, DefaultDeny) {
  auto spec = BuildFirewall();
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  Rng rng(63);
  for (int i = 0; i < 10; ++i) {
    net::Packet pkt = Inbound(workload::RandomFlow(rng), net::kTcpSyn);
    EXPECT_EQ(mbx.Process(pkt).verdict.kind, Verdict::Kind::kDrop);
  }
}

// --- Proxy --------------------------------------------------------------------

TEST(Proxy, RedirectsConfiguredPorts) {
  auto spec = BuildProxy({80, 8080});
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  net::Packet http = Inbound({1, 2, 5555, 80, net::kIpProtoTcp},
                             net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(http).status.ok());
  EXPECT_EQ(http.ip().daddr, kWebProxyIp);
  EXPECT_EQ(http.dport(), kWebProxyPort);
}

TEST(Proxy, PassesOtherTraffic) {
  auto spec = BuildProxy({80});
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  net::Packet ssh = Inbound({1, 2, 5555, 22, net::kIpProtoTcp}, net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(ssh).status.ok());
  EXPECT_EQ(ssh.ip().daddr, 2u) << "unlisted port untouched";

  net::Packet udp = net::MakeUdpPacket({1, 2, 5555, 80, net::kIpProtoUdp}, 10);
  udp.set_ingress_port(kPortInternal);
  ASSERT_TRUE(mbx.Process(udp).status.ok());
  EXPECT_EQ(udp.ip().daddr, 2u) << "UDP to port 80 is not proxied";
}

// --- Trojan detector -----------------------------------------------------------

TEST(TrojanDetector, FullSequenceTriggersDrop) {
  auto spec = BuildTrojanDetector();
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const uint32_t host = net::MakeIpv4(192, 168, 9, 9);

  // Stage 1: SSH connection.
  net::Packet ssh = Inbound({host, 2, 1000, 22, net::kIpProtoTcp},
                            net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(ssh).status.ok());
  // Stage 2: HTTP GET data packet.
  net::Packet get = Inbound({host, 3, 1001, 80, net::kIpProtoTcp},
                            net::kTcpAck, 200);
  workload::SetPayloadWithMarker(&get, kPatternHttpGet, 200);
  ASSERT_TRUE(mbx.Process(get).status.ok());
  // Stage 3: IRC traffic -> dropped.
  net::Packet irc = Inbound({host, 4, 1002, 6667, net::kIpProtoTcp},
                            net::kTcpAck, 100);
  workload::SetPayloadWithMarker(&irc, kPatternIrc, 100);
  EXPECT_EQ(mbx.Process(irc).verdict.kind, Verdict::Kind::kDrop);
}

TEST(TrojanDetector, OutOfOrderSequenceIsBenign) {
  auto spec = BuildTrojanDetector();
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const uint32_t host = net::MakeIpv4(192, 168, 9, 10);

  // IRC traffic *before* any SSH: forwarded.
  net::Packet irc = Inbound({host, 4, 1002, 6667, net::kIpProtoTcp},
                            net::kTcpAck, 100);
  workload::SetPayloadWithMarker(&irc, kPatternIrc, 100);
  EXPECT_EQ(mbx.Process(irc).verdict.kind, Verdict::Kind::kSend);

  // Download without prior SSH: no stage escalation.
  net::Packet get = Inbound({host, 3, 1001, 80, net::kIpProtoTcp},
                            net::kTcpAck, 200);
  workload::SetPayloadWithMarker(&get, kPatternHttpGet, 200);
  EXPECT_EQ(mbx.Process(get).verdict.kind, Verdict::Kind::kSend);
  const ir::StateIndex host_stage = spec->MapIndex("host_stage");
  runtime::StateValue stage;
  EXPECT_FALSE(mbx.state().MapLookup(host_stage, {host}, &stage));
}

TEST(TrojanDetector, SshWithoutDownloadNeverDrops) {
  auto spec = BuildTrojanDetector();
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const uint32_t host = net::MakeIpv4(192, 168, 9, 11);
  net::Packet ssh = Inbound({host, 2, 1000, 22, net::kIpProtoTcp},
                            net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(ssh).status.ok());
  net::Packet irc = Inbound({host, 4, 1002, 6667, net::kIpProtoTcp},
                            net::kTcpAck, 100);
  workload::SetPayloadWithMarker(&irc, kPatternIrc, 100);
  EXPECT_EQ(mbx.Process(irc).verdict.kind, Verdict::Kind::kSend)
      << "stage 1 host is not yet a trojan";
}

TEST(TrojanDetector, ControlPacketsMaintainFlowTable) {
  auto spec = BuildTrojanDetector();
  ASSERT_TRUE(spec.ok());
  const ir::StateIndex flow_state = spec->MapIndex("flow_state");
  SoftwareMiddlebox mbx(*spec);
  const net::FiveTuple flow{1, 2, 3, 4, net::kIpProtoTcp};
  net::Packet syn = Inbound(flow, net::kTcpSyn);
  ASSERT_TRUE(mbx.Process(syn).status.ok());
  EXPECT_EQ(mbx.state().MapSize(flow_state), 1u);
  net::Packet fin = Inbound(flow, net::kTcpFin);
  ASSERT_TRUE(mbx.Process(fin).status.ok());
  EXPECT_EQ(mbx.state().MapSize(flow_state), 0u);
}

}  // namespace
}  // namespace gallium::mbox
