// Functional-equivalence tests — the paper's first correctness goal: "the
// combined effect of the two parts (the P4 program and the C++ code) should
// be functionally equivalent to the input middlebox program."
//
// Each test drives the same packet sequence through the software baseline
// (whole program interpreted against host state) and through the offloaded
// runtime (switch pre/post passes + server pass + state sync) and asserts
// identical verdicts, identical output headers, and converged state.
#include <gtest/gtest.h>

#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "workload/packet_gen.h"

namespace gallium {
namespace {

using net::Packet;
using runtime::OffloadedMiddlebox;
using runtime::SoftwareMiddlebox;
using runtime::Verdict;

struct EquivalenceCase {
  std::string name;
  std::function<Result<mbox::MiddleboxSpec>()> build;
  workload::TraceOptions trace;
  // Fully-offloaded middleboxes (firewall, proxy) never touch the server.
  bool expect_slow_path = true;
};

std::vector<EquivalenceCase> MakeCases() {
  std::vector<EquivalenceCase> cases;

  {
    EquivalenceCase c;
    c.name = "mini_lb";
    c.build = [] { return mbox::BuildMiniLb(); };
    c.trace.num_flows = 60;
    cases.push_back(std::move(c));
  }
  {
    EquivalenceCase c;
    c.name = "mazu_nat_outbound";
    c.build = [] { return mbox::BuildMazuNat(); };
    c.trace.num_flows = 60;
    c.trace.ingress_port = mbox::kPortInternal;
    cases.push_back(std::move(c));
  }
  {
    EquivalenceCase c;
    c.name = "l4_lb";
    c.build = [] { return mbox::BuildLoadBalancer(); };
    c.trace.num_flows = 80;
    c.trace.udp_fraction = 0.3;
    cases.push_back(std::move(c));
  }
  {
    EquivalenceCase c;
    c.name = "proxy";
    c.build = [] { return mbox::BuildProxy({80, 8080, 443}); };
    c.trace.num_flows = 50;
    c.trace.udp_fraction = 0.2;
    c.expect_slow_path = false;  // the proxy is fully offloaded (§6.2)
    cases.push_back(std::move(c));
  }
  {
    EquivalenceCase c;
    c.name = "trojan_detector";
    c.build = [] { return mbox::BuildTrojanDetector(); };
    c.trace.num_flows = 50;
    c.trace.marked_fraction = 0.3;
    c.trace.marker = mbox::kPatternHttpGet;
    cases.push_back(std::move(c));
  }
  return cases;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

std::string HeadersOf(const Packet& pkt) {
  return pkt.ToString() + " ttl=" + std::to_string(pkt.ip().ttl) +
         " src=" + net::Ipv4ToString(pkt.ip().saddr) +
         " dst=" + net::Ipv4ToString(pkt.ip().daddr);
}

TEST_P(EquivalenceTest, OffloadedMatchesSoftwareBaseline) {
  const EquivalenceCase& param = GetParam();

  auto spec_a = param.build();
  auto spec_b = param.build();
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());

  SoftwareMiddlebox software(*spec_a);
  auto offloaded = OffloadedMiddlebox::Create(*spec_b);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  Rng rng(2024);
  const workload::Trace trace = workload::MakeTrace(rng, param.trace);
  ASSERT_FALSE(trace.packets.empty());

  uint64_t now_ms = 0;
  int slow = 0;
  for (const Packet& original : trace.packets) {
    now_ms += 1;
    Packet sw_pkt = original;
    auto sw_out = software.Process(sw_pkt, now_ms);
    ASSERT_TRUE(sw_out.status.ok()) << sw_out.status.ToString();

    auto off_out = (*offloaded)->Process(original, now_ms);
    ASSERT_TRUE(off_out.status.ok())
        << off_out.status.ToString() << " pkt=" << original.ToString();

    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << "verdict mismatch on " << original.ToString();
    if (sw_out.verdict.kind == Verdict::Kind::kSend) {
      EXPECT_EQ(sw_out.verdict.egress_port, off_out.verdict.egress_port);
      EXPECT_EQ(HeadersOf(sw_pkt), HeadersOf(off_out.out_packet))
          << "rewritten headers differ on " << original.ToString();
      EXPECT_EQ(sw_pkt.payload(), off_out.out_packet.payload());
    }
    if (!off_out.fast_path) ++slow;
  }

  // The traces create new flows, so some packets must take the slow path;
  // but established flows must be handled by the switch alone.
  if (param.expect_slow_path) {
    EXPECT_GT(slow, 0);
    EXPECT_LT(slow, static_cast<int>(trace.packets.size()))
        << "fast path never engaged";
  } else {
    EXPECT_EQ(slow, 0) << param.name << " should be fully offloaded";
  }

  // State convergence: for every replicated map, the switch table contents
  // must equal the server's authoritative copy.
  const auto& plan = (*offloaded)->plan();
  for (const auto& [ref, placement] : plan.state_placement) {
    if (placement != partition::StatePlacement::kReplicated ||
        ref.kind != ir::StateRef::Kind::kMap) {
      continue;
    }
    auto* table = (*offloaded)->device().table(ref.index);
    ASSERT_NE(table, nullptr);
    const auto& server_map = (*offloaded)->server_state().map_contents(ref.index);
    EXPECT_EQ(table->size(), server_map.size())
        << "replicated map " << (*offloaded)->fn().StateName(ref)
        << " diverged";
    for (const auto& [key, value] : server_map) {
      runtime::StateValue switch_value;
      EXPECT_TRUE(table->Lookup(key, &switch_value));
      EXPECT_EQ(switch_value, value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMiddleboxes, EquivalenceTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

// The firewall needs rules that match generated traffic, so it gets a
// dedicated test: half the flows are whitelisted, half are not.
TEST(EquivalenceFirewall, WhitelistedFlowsPassOthersDrop) {
  Rng rng(7);
  std::vector<net::FiveTuple> flows;
  std::vector<mbox::MapInitEntry> rules;
  for (int i = 0; i < 40; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    flows.push_back(flow);
    if (i % 2 == 0) {
      rules.push_back(mbox::MapInitEntry{
          {flow.saddr, flow.daddr, flow.sport, flow.dport, flow.protocol},
          {1}});
    }
  }

  auto spec_a = mbox::BuildFirewall(rules);
  auto spec_b = mbox::BuildFirewall(rules);
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());
  SoftwareMiddlebox software(*spec_a);
  auto offloaded = OffloadedMiddlebox::Create(*spec_b);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  int sent = 0, dropped = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    for (const Packet& pkt : workload::TcpFlowPackets(flows[i], 4000)) {
      Packet p1 = pkt;
      p1.set_ingress_port(mbox::kPortInternal);
      Packet p2 = p1;
      auto sw_out = software.Process(p1);
      auto off_out = (*offloaded)->Process(p2);
      ASSERT_TRUE(sw_out.status.ok());
      ASSERT_TRUE(off_out.status.ok()) << off_out.status.ToString();
      ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind);
      EXPECT_TRUE(off_out.fast_path)
          << "firewall must be fully offloaded; packet " << pkt.ToString();
      (off_out.verdict.kind == Verdict::Kind::kSend ? sent : dropped) += 1;
    }
  }
  EXPECT_GT(sent, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_DOUBLE_EQ((*offloaded)->FastPathFraction(), 1.0);
}

// NAT round trip: outbound packets create mappings; the corresponding
// inbound packets must be rewritten back to the internal endpoint by both
// runtimes identically.
TEST(EquivalenceNat, BidirectionalTranslation) {
  auto spec_a = mbox::BuildMazuNat();
  auto spec_b = mbox::BuildMazuNat();
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());
  SoftwareMiddlebox software(*spec_a);
  auto offloaded = OffloadedMiddlebox::Create(*spec_b);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    // Outbound SYN allocates a port.
    Packet out_sw = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
    out_sw.set_ingress_port(mbox::kPortInternal);
    Packet out_off = out_sw;
    auto sw1 = software.Process(out_sw);
    auto off1 = (*offloaded)->Process(out_off);
    ASSERT_TRUE(sw1.status.ok() && off1.status.ok())
        << off1.status.ToString();
    ASSERT_EQ(sw1.verdict.kind, Verdict::Kind::kSend);
    ASSERT_EQ(off1.verdict.kind, Verdict::Kind::kSend);
    ASSERT_EQ(out_sw.ip().saddr, mbox::kNatExternalIp);
    ASSERT_EQ(out_sw.sport(), off1.out_packet.sport())
        << "allocated ports must match";

    // Reply arrives from outside addressed to the allocated port.
    net::FiveTuple reply;
    reply.saddr = flow.daddr;
    reply.daddr = mbox::kNatExternalIp;
    reply.sport = flow.dport;
    reply.dport = out_sw.sport();
    reply.protocol = net::kIpProtoTcp;
    Packet in_sw = net::MakeTcpPacket(reply, net::kTcpSyn | net::kTcpAck, 0);
    in_sw.set_ingress_port(mbox::kPortExternal);
    Packet in_off = in_sw;
    auto sw2 = software.Process(in_sw);
    auto off2 = (*offloaded)->Process(in_off);
    ASSERT_TRUE(sw2.status.ok() && off2.status.ok());
    ASSERT_EQ(sw2.verdict.kind, Verdict::Kind::kSend);
    ASSERT_EQ(off2.verdict.kind, Verdict::Kind::kSend);
    EXPECT_EQ(in_sw.ip().daddr, flow.saddr) << "rewritten to internal host";
    EXPECT_EQ(in_sw.ip().daddr, off2.out_packet.ip().daddr);
    EXPECT_EQ(in_sw.dport(), off2.out_packet.dport());
    // The reply of an established mapping rides the switch fast path.
    EXPECT_TRUE(off2.fast_path);
  }
}

}  // namespace
}  // namespace gallium
