// Chaos harness: differential testing of the offloaded runtime over an
// imperfect substrate, in the spirit of Gauntlet's stress testing of packet-
// processing compilers.
//
// Every middlebox workload is replayed under ≥ 20 seeded FaultPlans — lossy,
// duplicating, reordering, corrupting data links; a lossy/delaying control
// plane; scheduled mid-run switch restarts; and sustained switch outages —
// and each run asserts:
//   1. per-packet equivalence with the SoftwareMiddlebox baseline (verdicts,
//      rewritten headers, payloads),
//   2. exactly-once application of every SyncBatch on the switch (via the
//      switch's applied-sequence log),
//   3. zero lost replicated-state mutations: after recovery, every
//      replicated switch table equals the server's authoritative map.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "engine/engine.h"
#include "mbox/middleboxes.h"
#include "runtime/fault.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "telemetry/flight_recorder.h"
#include "workload/churn.h"
#include "workload/packet_gen.h"

namespace gallium {
namespace {

using net::Packet;
using runtime::FaultPlan;
using runtime::OffloadedMiddlebox;
using runtime::OffloadedOptions;
using runtime::SoftwareMiddlebox;
using runtime::Verdict;

constexpr uint64_t kNumPlans = 20;

struct ChaosCase {
  std::string name;
  std::function<Result<mbox::MiddleboxSpec>()> build;
  workload::TraceOptions trace;
};

std::vector<ChaosCase> MakeCases() {
  std::vector<ChaosCase> cases;
  {
    ChaosCase c;
    c.name = "mini_lb";
    c.build = [] { return mbox::BuildMiniLb(); };
    c.trace.num_flows = 25;
    cases.push_back(std::move(c));
  }
  {
    ChaosCase c;
    c.name = "mazu_nat";
    c.build = [] { return mbox::BuildMazuNat(); };
    c.trace.num_flows = 25;
    c.trace.ingress_port = mbox::kPortInternal;
    cases.push_back(std::move(c));
  }
  {
    ChaosCase c;
    c.name = "l4_lb";
    c.build = [] { return mbox::BuildLoadBalancer(); };
    c.trace.num_flows = 30;
    c.trace.udp_fraction = 0.3;
    cases.push_back(std::move(c));
  }
  {
    ChaosCase c;
    c.name = "proxy";
    c.build = [] { return mbox::BuildProxy({80, 8080, 443}); };
    c.trace.num_flows = 20;
    c.trace.udp_fraction = 0.2;
    cases.push_back(std::move(c));
  }
  {
    ChaosCase c;
    c.name = "trojan_detector";
    c.build = [] { return mbox::BuildTrojanDetector(); };
    c.trace.num_flows = 20;
    c.trace.marked_fraction = 0.3;
    c.trace.marker = mbox::kPatternHttpGet;
    cases.push_back(std::move(c));
  }
  return cases;
}

std::string HeadersOf(const Packet& pkt) {
  return pkt.ToString() + " ttl=" + std::to_string(pkt.ip().ttl) +
         " src=" + net::Ipv4ToString(pkt.ip().saddr) +
         " dst=" + net::Ipv4ToString(pkt.ip().daddr);
}

// Zero lost replicated-state mutations: once the switch is coherent, every
// replicated table must equal the server's authoritative map.
void ExpectReplicatedStateMatchesHost(OffloadedMiddlebox* mbx) {
  auto& device = mbx->device();
  for (const auto& [ref, placement] : mbx->plan().state_placement) {
    if (placement != partition::StatePlacement::kReplicated ||
        ref.kind != ir::StateRef::Kind::kMap) {
      continue;
    }
    auto* table = device.table(ref.index);
    ASSERT_NE(table, nullptr);
    const auto& server_map = mbx->server_state().map_contents(ref.index);
    EXPECT_EQ(table->size(), server_map.size())
        << "replicated map " << mbx->fn().StateName(ref) << " diverged";
    for (const auto& [key, value] : server_map) {
      runtime::StateValue switch_value;
      EXPECT_TRUE(table->Lookup(key, &switch_value))
          << "switch lost a committed mutation in " << mbx->fn().StateName(ref);
      EXPECT_EQ(switch_value, value);
    }
  }
}

// Replays one workload under one FaultPlan; returns the offloaded runtime's
// counters through the out-params so the caller can assert plan coverage.
void RunOnePlan(const ChaosCase& param, uint64_t plan_seed,
                uint64_t* restarts_seen, uint64_t* degraded_seen) {
  auto spec_a = param.build();
  auto spec_b = param.build();
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());

  SoftwareMiddlebox software(*spec_a);

  Rng trace_rng(2024 ^ plan_seed);
  const workload::Trace trace = workload::MakeTrace(trace_rng, param.trace);
  ASSERT_FALSE(trace.packets.empty());

  const FaultPlan plan =
      runtime::MakeRandomFaultPlan(plan_seed, trace.packets.size());
  // On any assertion failure below, the repro recipe is in the trace:
  // the seed (rerun with --chaos-seed=<seed>) and the full fault schedule.
  SCOPED_TRACE(param.name + " seed=" + std::to_string(plan_seed) + " under " +
               plan.ToString());

  OffloadedOptions options;
  options.fault_plan = &plan;
  options.rng_seed = plan_seed * 31 + 7;
  auto offloaded = OffloadedMiddlebox::Create(*spec_b, options);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();

  uint64_t now_ms = 0;
  for (const Packet& original : trace.packets) {
    now_ms += 1;
    Packet sw_pkt = original;
    auto sw_out = software.Process(sw_pkt, now_ms);
    ASSERT_TRUE(sw_out.status.ok()) << sw_out.status.ToString();

    auto off_out = (*offloaded)->Process(original, now_ms);
    ASSERT_TRUE(off_out.status.ok())
        << off_out.status.ToString() << " pkt=" << original.ToString();

    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << "verdict mismatch on " << original.ToString();
    if (sw_out.verdict.kind == Verdict::Kind::kSend) {
      EXPECT_EQ(sw_out.verdict.egress_port, off_out.verdict.egress_port);
      EXPECT_EQ(HeadersOf(sw_pkt), HeadersOf(off_out.out_packet))
          << "rewritten headers differ on " << original.ToString();
      EXPECT_EQ(sw_pkt.payload(), off_out.out_packet.payload());
    }
  }

  // Exactly-once batch application: the switch's applied log must contain
  // no repeated sequence number — not even across epochs. (A batch whose
  // ack was lost is retried and must be acked as a duplicate; a batch
  // overtaken by a restart is folded into the resync snapshot, never
  // re-applied.)
  auto& device = (*offloaded)->device();
  std::set<uint64_t> applied_seqs;
  for (const auto& [epoch, seq] : device.applied_log()) {
    EXPECT_TRUE(applied_seqs.insert(seq).second)
        << "seq " << seq << " applied twice (second time in epoch " << epoch
        << ")";
    EXPECT_GE(seq, 1u);
    EXPECT_LE(seq, (*offloaded)->sync_batches_sent());
  }

  // Zero lost replicated-state mutations: once the switch is brought back
  // to coherence, nothing the server committed may be missing.
  (*offloaded)->EnsureSwitchCoherent();
  ExpectReplicatedStateMatchesHost(offloaded->get());

  *restarts_seen += (*offloaded)->switch_restarts();
  *degraded_seen += (*offloaded)->degraded_packets();
}

class ChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosTest, SurvivesSeededFaultPlans) {
  uint64_t restarts = 0, degraded = 0;
  for (uint64_t seed = 1; seed <= kNumPlans; ++seed) {
    RunOnePlan(GetParam(), seed, &restarts, &degraded);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The plan generator guarantees coverage over any 20 consecutive seeds:
  // mid-run restarts (two of every three seeds) and sustained outages with
  // software-only degradation (every fourth seed).
  EXPECT_GT(restarts, 0u) << "no plan exercised a switch restart";
  EXPECT_GT(degraded, 0u) << "no plan exercised a sustained outage";
}

INSTANTIATE_TEST_SUITE_P(
    AllMiddleboxes, ChaosTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return info.param.name;
    });

// --- Long-run soak: overload + grey failure against the queued runtime -------
//
// The soak crosses every middlebox with the overload and grey-failure plan
// generators and drives the adversarial churn workload (SYN floods + high
// flow arrival rate) through the *queued* runtime: bounded coalescing
// backlog plus health watchdog. Each run asserts
//   1. differential equivalence with the software baseline, modulo the
//      explicitly-shed packets (a shed happens at ingress, before any state
//      is touched, so skipping the packet on the baseline too keeps the
//      two sides' state histories identical),
//   2. exactly-once SyncBatch application,
//   3. the backlog never exceeded its configured bound,
//   4. the watchdog's mode-transition count stays under the dwell-derived
//      ceiling — grey failures must not flap the mode,
//   5. after the final flush, every replicated table equals the host store.

struct SoakTotals {
  uint64_t shed = 0;
  uint64_t backpressure = 0;
  uint64_t enqueued = 0;
  uint64_t transitions = 0;
  // True when the middlebox has a replicated global: its mutating batches
  // keep strict output commit (no miss path hides a stale register), so the
  // backlog machinery is legitimately idle for it.
  bool strict_commit_only = false;
  // False for stateless middleboxes (e.g. the proxy's read-only redirect
  // table): nothing is ever written, so nothing can queue.
  bool has_replicated_map = false;
};

// `engine_mode` routes every packet through a single-worker engine::Engine
// wrapping the same OffloadedOptions instead of a bare OffloadedMiddlebox:
// the engine's steering, global-hub delegation, and slot plumbing must be
// invisible to the whole fault/overload matrix.
void RunOneSoak(const ChaosCase& param, uint64_t plan_seed, bool overload,
                SoakTotals* totals, bool engine_mode = false) {
  auto spec_a = param.build();
  auto spec_b = param.build();
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());
  SoftwareMiddlebox software(*spec_a);

  workload::ChurnOptions churn;
  churn.num_packets = 900;
  churn.new_flow_fraction = 0.7;
  churn.established_flows = 24;
  churn.burst_period = 150;
  churn.burst_len = 40;
  churn.udp_fraction = param.trace.udp_fraction;
  churn.ingress_port = param.trace.ingress_port;
  Rng trace_rng(4242 ^ plan_seed);
  const workload::Trace trace = workload::MakeChurnTrace(trace_rng, churn);

  const FaultPlan plan =
      overload
          ? runtime::MakeOverloadFaultPlan(plan_seed, trace.packets.size())
          : runtime::MakeGreyFailureFaultPlan(plan_seed, trace.packets.size());
  SCOPED_TRACE(param.name + (overload ? " overload" : " grey") +
               " seed=" + std::to_string(plan_seed) + " under " +
               plan.ToString());

  OffloadedOptions options;
  options.fault_plan = &plan;
  options.rng_seed = plan_seed * 131 + 9;
  options.health.enabled = true;
  if (overload) {
    // A pump interval far above the bound guarantees the bound is hit and
    // the overflow policy — ingress shedding here — has to act.
    options.sync_queue.max_backlog_batches = 8;
    options.sync_queue.pump_interval_packets = 32;
    options.sync_queue.overflow =
        runtime::SyncQueueOptions::OverflowPolicy::kShedIngress;
  } else {
    options.sync_queue.max_backlog_batches = 4;
    options.sync_queue.pump_interval_packets = 16;
    options.sync_queue.overflow =
        runtime::SyncQueueOptions::OverflowPolicy::kBackpressure;
  }
  std::unique_ptr<OffloadedMiddlebox> bare;
  std::unique_ptr<engine::Engine> eng;
  OffloadedMiddlebox* box = nullptr;
  if (engine_mode) {
    engine::EngineOptions engine_options;
    engine_options.workers = 1;
    engine_options.runtime = options;
    auto created = engine::Engine::Create(*spec_b, engine_options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    eng = std::move(*created);
    box = &eng->shard(0);
  } else {
    auto created = OffloadedMiddlebox::Create(*spec_b, options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    bare = std::move(*created);
    box = bare.get();
  }

  uint64_t now_ms = 0;
  for (const Packet& original : trace.packets) {
    now_ms += 1;
    auto off_out = engine_mode ? eng->Process(original, now_ms)
                               : box->Process(original, now_ms);
    ASSERT_TRUE(off_out.status.ok())
        << off_out.status.ToString() << " pkt=" << original.ToString();
    if (off_out.shed) continue;  // refused before any state was touched

    Packet sw_pkt = original;
    auto sw_out = software.Process(sw_pkt, now_ms);
    ASSERT_TRUE(sw_out.status.ok()) << sw_out.status.ToString();
    ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind)
        << "verdict mismatch on " << original.ToString();
    if (sw_out.verdict.kind == Verdict::Kind::kSend) {
      EXPECT_EQ(sw_out.verdict.egress_port, off_out.verdict.egress_port);
      EXPECT_EQ(HeadersOf(sw_pkt), HeadersOf(off_out.out_packet))
          << "rewritten headers differ on " << original.ToString();
      EXPECT_EQ(sw_pkt.payload(), off_out.out_packet.payload());
    }
  }

  // Exactly-once batch application, as in the random-plan sweep.
  auto& device = box->device();
  std::set<uint64_t> applied_seqs;
  for (const auto& [epoch, seq] : device.applied_log()) {
    EXPECT_TRUE(applied_seqs.insert(seq).second)
        << "seq " << seq << " applied twice (second time in epoch " << epoch
        << ")";
  }

  // The backlog respected its bound throughout.
  EXPECT_LE(box->sync_backlog().peak_depth(),
            options.sync_queue.max_backlog_batches)
      << "backlog exceeded its bound";

  // Bounded flapping: the dwell makes transitions/packets a hard ceiling.
  const runtime::HealthWatchdog* dog = box->watchdog();
  ASSERT_NE(dog, nullptr);
  const uint64_t ceiling =
      box->packets_total() / options.health.min_dwell_packets + 1;
  EXPECT_LE(dog->transitions(), ceiling)
      << "watchdog flapped past the dwell-derived ceiling";

  // Once the backlog lands, replicated state converges exactly.
  if (engine_mode) {
    eng->Quiesce();  // drains the same backlog via the engine's sync core
  } else {
    box->FlushSyncBacklog();
  }
  ExpectReplicatedStateMatchesHost(box);

  totals->shed += box->packets_shed();
  totals->backpressure += box->backpressure_events();
  totals->enqueued += box->sync_backlog().enqueued_mutations();
  totals->transitions += dog->transitions();
  for (const auto& [ref, placement] : box->plan().state_placement) {
    if (placement != partition::StatePlacement::kReplicated) continue;
    if (ref.kind == ir::StateRef::Kind::kGlobal) {
      totals->strict_commit_only = true;
    } else if (ref.kind == ir::StateRef::Kind::kMap) {
      totals->has_replicated_map = true;
    }
  }
}

class SoakTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(SoakTest, OverloadShedsBoundedAndStaysEquivalent) {
  SoakTotals totals;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunOneSoak(GetParam(), seed, /*overload=*/true, &totals);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The overload plans must actually exercise the machinery under test —
  // except for middleboxes whose batches all carry a replicated global
  // (strict commit; the backlog is legitimately idle). Per-key coalescing
  // itself is covered by the sync_queue property test: these middleboxes
  // install per-flow state exactly once, so churn never rewrites a key.
  if (totals.has_replicated_map && !totals.strict_commit_only) {
    EXPECT_GT(totals.shed, 0u)
        << "overload never drove the backlog to its bound";
    EXPECT_GT(totals.enqueued, 0u) << "no mutation ever entered the backlog";
  }
}

TEST_P(SoakTest, GreyFailureBackpressuresWithoutFlapping) {
  SoakTotals totals;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunOneSoak(GetParam(), seed, /*overload=*/false, &totals);
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (totals.has_replicated_map && !totals.strict_commit_only) {
    EXPECT_GT(totals.backpressure, 0u)
        << "grey runs never blocked a packet at the bound";
    EXPECT_GT(totals.enqueued, 0u) << "no mutation ever entered the backlog";
  }
}

// The engine wrapping a single worker must pass the same soak matrix with
// the same invariants: steering, hub-delegated globals, and packet-slot
// recycling are pure plumbing, not semantics.
TEST_P(SoakTest, EngineModeOverloadSoaksUnchanged) {
  SoakTotals totals;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunOneSoak(GetParam(), seed, /*overload=*/true, &totals,
               /*engine_mode=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (totals.has_replicated_map && !totals.strict_commit_only) {
    EXPECT_GT(totals.shed, 0u)
        << "overload never drove the backlog to its bound";
    EXPECT_GT(totals.enqueued, 0u) << "no mutation ever entered the backlog";
  }
}

TEST_P(SoakTest, EngineModeGreyFailureSoaksUnchanged) {
  SoakTotals totals;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunOneSoak(GetParam(), seed, /*overload=*/false, &totals,
               /*engine_mode=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (totals.has_replicated_map && !totals.strict_commit_only) {
    EXPECT_GT(totals.backpressure, 0u)
        << "grey runs never blocked a packet at the bound";
    EXPECT_GT(totals.enqueued, 0u) << "no mutation ever entered the backlog";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMiddleboxes, SoakTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return info.param.name;
    });

// --- Component-level tests ----------------------------------------------------

TEST(FaultyChannel, DeterministicPerSeedAndCountsFaults) {
  runtime::ChannelFaults faults;
  faults.drop = 0.3;
  faults.duplicate = 0.2;
  faults.reorder = 0.2;
  faults.corrupt = 0.1;
  auto run = [&](uint64_t seed) {
    Rng rng(seed);
    runtime::FaultyChannel chan(faults, &rng);
    std::vector<size_t> delivered;
    for (uint64_t i = 0; i < 200; ++i) {
      chan.Send(std::vector<uint8_t>(8, static_cast<uint8_t>(i)));
      while (auto f = chan.Receive()) delivered.push_back(f->size());
    }
    return std::make_tuple(delivered.size(), chan.frames_dropped(),
                           chan.frames_duplicated(), chan.frames_corrupted(),
                           chan.has_held());
  };
  EXPECT_EQ(run(5), run(5)) << "same seed must give the same fault schedule";
  const auto [count, dropped, duplicated, corrupted, held] = run(5);
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(corrupted, 0u);
  // Every frame is accounted for: delivered, dropped, or (at most one)
  // still held back for reordering.
  EXPECT_EQ(count + (held ? 1 : 0), 200 - dropped + duplicated);
}

TEST(FaultyChannel, DrainReleasesHeldReorderFrame) {
  runtime::ChannelFaults faults;
  faults.reorder = 1.0;
  Rng rng(7);
  runtime::FaultyChannel chan(faults, &rng);
  chan.Send({1});
  EXPECT_FALSE(chan.Receive().has_value()) << "reordered frame not held back";
  ASSERT_TRUE(chan.has_held());
  // End of run: without an explicit drain the held frame is lost silently —
  // a drop the fault accounting never recorded.
  chan.Drain();
  EXPECT_FALSE(chan.has_held());
  auto released = chan.Receive();
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(*released, std::vector<uint8_t>{1});
  EXPECT_FALSE(chan.Receive().has_value());
  chan.Drain();  // idle drain is a no-op
  EXPECT_FALSE(chan.Receive().has_value());
}

TEST(FaultPlanGenerator, OverloadAndGreyPlansAreDeterministicAndWindowed) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan a = runtime::MakeOverloadFaultPlan(seed, 200);
    EXPECT_EQ(a.ToString(),
              runtime::MakeOverloadFaultPlan(seed, 200).ToString());
    EXPECT_FALSE(a.grey_windows.empty());
    EXPECT_GT(a.sync.batch_drop, 0.1);

    const FaultPlan g = runtime::MakeGreyFailureFaultPlan(seed, 200);
    EXPECT_EQ(g.ToString(),
              runtime::MakeGreyFailureFaultPlan(seed, 200).ToString());
    EXPECT_FALSE(g.grey_windows.empty());
    for (const auto& w : g.grey_windows) {
      EXPECT_LT(w.start, w.end);
      EXPECT_LE(w.end, 200u);
    }
  }
}

TEST(FaultPlanSpec, ParsesKindAndSeed) {
  auto overload = runtime::FaultPlanFromSpec("overload:7", 100);
  ASSERT_TRUE(overload.ok());
  EXPECT_EQ(overload->ToString(),
            runtime::MakeOverloadFaultPlan(7, 100).ToString());
  auto grey = runtime::FaultPlanFromSpec("grey:3", 100);
  ASSERT_TRUE(grey.ok());
  EXPECT_FALSE(grey->grey_windows.empty());
  auto random = runtime::FaultPlanFromSpec("random:3", 100);
  ASSERT_TRUE(random.ok());
  EXPECT_EQ(random->ToString(), runtime::MakeRandomFaultPlan(3, 100).ToString());

  EXPECT_FALSE(runtime::FaultPlanFromSpec("bogus:1", 100).ok());
  EXPECT_FALSE(runtime::FaultPlanFromSpec("overload", 100).ok());
  EXPECT_FALSE(runtime::FaultPlanFromSpec("overload:", 100).ok());
  EXPECT_FALSE(runtime::FaultPlanFromSpec("overload:x", 100).ok());
}

TEST(GreyWindow, FoldsIntoInjectorEffectsPerPacket) {
  FaultPlan plan;
  plan.seed = 1;
  runtime::GreyWindow spike;
  spike.kind = runtime::GreyWindow::Kind::kLatencySpike;
  spike.start = 10;
  spike.end = 20;
  spike.latency_factor = 6.0;
  spike.extra_delay_us = 700.0;
  plan.grey_windows.push_back(spike);
  runtime::GreyWindow loss;
  loss.kind = runtime::GreyWindow::Kind::kBurstLoss;
  loss.start = 15;
  loss.end = 25;
  loss.drop_to_server = 0.9;
  loss.sync_drop = 0.5;
  plan.grey_windows.push_back(loss);

  runtime::FaultInjector injector(plan);
  injector.BeginPacket(5);
  EXPECT_FALSE(injector.InGreyWindow());
  EXPECT_EQ(injector.LatencyFactor(), 1.0);
  EXPECT_EQ(injector.to_server().drop_boost(), 0.0);

  injector.BeginPacket(12);  // spike only
  EXPECT_TRUE(injector.InGreyWindow());
  EXPECT_EQ(injector.LatencyFactor(), 6.0);
  EXPECT_EQ(injector.ExtraDelayUs(), 700.0);
  EXPECT_EQ(injector.to_server().drop_boost(), 0.0);

  injector.BeginPacket(17);  // spike + burst loss overlap
  EXPECT_TRUE(injector.InGreyWindow());
  EXPECT_EQ(injector.LatencyFactor(), 6.0);
  EXPECT_EQ(injector.to_server().drop_boost(), 0.9);

  injector.BeginPacket(30);  // effects reset once the windows pass
  EXPECT_FALSE(injector.InGreyWindow());
  EXPECT_EQ(injector.LatencyFactor(), 1.0);
  EXPECT_EQ(injector.ExtraDelayUs(), 0.0);
  EXPECT_EQ(injector.to_server().drop_boost(), 0.0);
}

TEST(DataFrame, ChecksumCatchesCorruption) {
  const std::vector<uint8_t> wire = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<uint8_t> frame = runtime::EncodeDataFrame(77, wire);
  uint64_t seq = 0;
  std::vector<uint8_t> out;
  ASSERT_TRUE(runtime::DecodeDataFrame(frame, &seq, &out));
  EXPECT_EQ(seq, 77u);
  EXPECT_EQ(out, wire);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> tampered = frame;
    tampered[i] ^= 0x40;
    EXPECT_FALSE(runtime::DecodeDataFrame(tampered, &seq, &out))
        << "flip at byte " << i << " undetected";
  }
  EXPECT_FALSE(runtime::DecodeDataFrame({1, 2, 3}, &seq, &out));
}

TEST(SyncBatchApply, IdempotentUnderRetriesAndStaleEpochs) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  partition::Partitioner partitioner(*spec->fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());
  auto sw = switchsim::Switch::Create(*spec->fn, *plan, {});
  ASSERT_TRUE(sw.ok());

  runtime::SyncBatch batch;
  batch.seq = 1;
  batch.epoch = (*sw)->epoch();
  batch.maps.push_back({0, {10, 20}, {1024}, false});

  Rng rng(3);
  auto first = (*sw)->ApplySyncBatch(batch, &rng);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->applied);
  EXPECT_FALSE(first->duplicate);

  // Retransmission (lost ack): acked as duplicate, not re-applied.
  auto second = (*sw)->ApplySyncBatch(batch, &rng);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->applied);
  EXPECT_TRUE(second->duplicate);
  EXPECT_EQ((*sw)->applied_log().size(), 1u);

  // A restart invalidates the epoch: stale batches are rejected unapplied.
  (*sw)->Restart();
  runtime::SyncBatch stale;
  stale.seq = 2;
  stale.epoch = batch.epoch;
  stale.maps.push_back({0, {11, 21}, {2048}, false});
  auto third = (*sw)->ApplySyncBatch(stale, &rng);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->epoch_ok);
  EXPECT_FALSE(third->applied);
  runtime::StateValue value;
  EXPECT_FALSE((*sw)->data_plane().MapLookup(0, {11, 21}, &value))
      << "stale-epoch batch must not mutate the tables";
}

TEST(SwitchRestart, WipesStateAndResyncRestoresFromHost) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());

  // Drive a little traffic so replicated tables hold flow state.
  Rng rng(11);
  const workload::Trace trace = workload::MakeTrace(rng, {.num_flows = 10});
  uint64_t now_ms = 0;
  for (const Packet& pkt : trace.packets) {
    ASSERT_TRUE((*mbx)->Process(pkt, ++now_ms).status.ok());
  }

  auto& device = (*mbx)->device();
  const uint64_t epoch_before = device.epoch();
  device.Restart();
  EXPECT_EQ(device.epoch(), epoch_before + 1);
  EXPECT_EQ(device.last_applied_seq(), 0u);

  // The heartbeat notices the epoch bump and rebuilds every resident table
  // from the authoritative host store.
  (*mbx)->EnsureSwitchCoherent();
  EXPECT_EQ((*mbx)->switch_restarts(), 1u);
  EXPECT_EQ((*mbx)->resyncs(), 1u);
  const auto& plan_state = (*mbx)->plan();
  for (const auto& [ref, placement] : plan_state.state_placement) {
    if (placement != partition::StatePlacement::kReplicated ||
        ref.kind != ir::StateRef::Kind::kMap) {
      continue;
    }
    auto* table = device.table(ref.index);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->size(),
              (*mbx)->server_state().map_contents(ref.index).size());
  }

  // Traffic keeps flowing after recovery.
  for (const Packet& pkt : trace.packets) {
    ASSERT_TRUE((*mbx)->Process(pkt, ++now_ms).status.ok());
  }
}

TEST(FaultPlanGenerator, IsDeterministicAndCoversRecoveryPaths) {
  uint64_t restarts = 0, outages = 0;
  for (uint64_t seed = 1; seed <= kNumPlans; ++seed) {
    const FaultPlan a = runtime::MakeRandomFaultPlan(seed, 100);
    const FaultPlan b = runtime::MakeRandomFaultPlan(seed, 100);
    EXPECT_EQ(a.ToString(), b.ToString());
    restarts += a.restart_at_packets.size();
    outages += a.outages.size();
    for (uint64_t at : a.restart_at_packets) EXPECT_LT(at, 100u);
    for (const auto& [start, end] : a.outages) {
      EXPECT_LT(start, end);
      EXPECT_LE(end, 100u);
    }
  }
  EXPECT_GT(restarts, 0u);
  EXPECT_GT(outages, 0u);
}

}  // namespace
}  // namespace gallium

namespace {

// Postmortem hook: a failing chaos test dumps the process-wide flight
// recorder, so the exact watchdog/sync/fault event stream that led to the
// failure survives next to the seeded FaultPlan reproduction handle. CI
// sets GALLIUM_FLIGHT_DUMP_DIR and uploads whatever lands there.
class FlightDumpOnFailure : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() == nullptr || !info.result()->Failed()) return;
    const char* dir = std::getenv("GALLIUM_FLIGHT_DUMP_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
    path += "/flight_";
    std::string test = std::string(info.test_suite_name()) + "_" + info.name();
    for (char& c : test) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    path += test + ".json";
    if (gallium::telemetry::FlightRecorder::Default().DumpToFile(path)) {
      std::fprintf(stderr, "chaos_test: wrote flight dump %s\n", path.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new FlightDumpOnFailure);
  return RUN_ALL_TESTS();
}
