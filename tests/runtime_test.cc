// Offloaded-runtime tests: the run-to-completion concurrency goals of §3.1
// and §4.3.3 (causally dependent packets observe all prior state updates;
// atomicity; output commit), wire-format crossing, state recording, and the
// load balancer's maintenance path.
#include <gtest/gtest.h>

#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "workload/packet_gen.h"

namespace gallium::runtime {
namespace {

TEST(RecordingBackend, RecordsOnlyWatchedMutations) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  HostStateStore store(*spec->fn);
  RecordingStateBackend recording(&store, {true}, {});

  recording.MapInsert(0, {1}, {2});
  recording.MapErase(0, {1});
  ASSERT_EQ(recording.map_mutations().size(), 2u);
  EXPECT_FALSE(recording.map_mutations()[0].is_erase);
  EXPECT_TRUE(recording.map_mutations()[1].is_erase);
  EXPECT_TRUE(recording.HasMutations());
  recording.Clear();
  EXPECT_FALSE(recording.HasMutations());

  // Lookups are never recorded.
  StateValue value;
  recording.MapLookup(0, {1}, &value);
  EXPECT_FALSE(recording.HasMutations());
}

TEST(RecordingBackend, PassesThroughToInner) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  HostStateStore store(*spec->fn);
  RecordingStateBackend recording(&store, {true}, {});
  recording.MapInsert(0, {5}, {6});
  StateValue value;
  EXPECT_TRUE(store.MapLookup(0, {5}, &value));
  EXPECT_EQ(value[0], 6u);
}

// --- Run-to-completion semantics --------------------------------------------------

// Causal dependency: a SYN creates NAT state; the "reply" (which an endhost
// could only send after receiving the translated SYN) must observe the
// mapping — on the switch fast path, i.e. the update must already have been
// synchronized when the SYN was released (output commit).
TEST(RunToCompletion, CausallyDependentPacketSeesStateUpdates) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok()) << mbx.status().ToString();

  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    net::Packet syn = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    auto out1 = (*mbx)->Process(syn);
    ASSERT_TRUE(out1.status.ok());
    ASSERT_EQ(out1.verdict.kind, Verdict::Kind::kSend);
    // Output commit: the packet that updated replicated state must have
    // been held for the synchronization.
    EXPECT_TRUE(out1.state_synced);
    EXPECT_GT(out1.sync_latency_us, 0.0);

    // The causally-dependent reply must hit switch state (fast path).
    net::FiveTuple reply{flow.daddr, mbox::kNatExternalIp, flow.dport,
                         out1.out_packet.sport(), net::kIpProtoTcp};
    net::Packet synack = net::MakeTcpPacket(reply, net::kTcpSyn | net::kTcpAck, 0);
    synack.set_ingress_port(mbox::kPortExternal);
    auto out2 = (*mbx)->Process(synack);
    ASSERT_TRUE(out2.status.ok());
    EXPECT_TRUE(out2.fast_path)
        << "reply must observe the mapping on the switch";
    EXPECT_EQ(out2.out_packet.ip().daddr, flow.saddr);
  }
}

// Atomicity: MazuNAT's slow path updates BOTH translation tables (plus the
// port counter). After the packet is released, the switch must expose all
// of them — never a partial update.
TEST(RunToCompletion, MultiTableUpdatesAreAtomic) {
  auto spec = mbox::BuildMazuNat();
  ASSERT_TRUE(spec.ok());
  const ir::StateIndex nat_out = spec->MapIndex("nat_out");
  const ir::StateIndex nat_in = spec->MapIndex("nat_in");
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());

  Rng rng(32);
  for (int i = 0; i < 30; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    net::Packet syn = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    auto out = (*mbx)->Process(syn);
    ASSERT_TRUE(out.status.ok());
    const uint16_t ext_port = out.out_packet.sport();

    StateValue v_out, v_in;
    EXPECT_TRUE((*mbx)->device().data_plane().MapLookup(
        nat_out, {flow.saddr, flow.sport}, &v_out))
        << "outbound mapping missing on switch";
    EXPECT_TRUE(
        (*mbx)->device().data_plane().MapLookup(nat_in, {ext_port}, &v_in))
        << "inbound mapping missing on switch (partial update!)";
    EXPECT_EQ(v_out[0], ext_port);
    EXPECT_EQ(v_in[0], flow.saddr);
    EXPECT_EQ(v_in[1], flow.sport);
  }
}

// "All or none": packets of unrelated flows processed between a SYN and its
// reply observe either the whole mapping or none of it — probing the switch
// tables for a key never yields a half-written value.
TEST(RunToCompletion, InterleavedFlowsObserveConsistentState) {
  auto spec_sw = mbox::BuildMazuNat();
  auto spec_off = mbox::BuildMazuNat();
  ASSERT_TRUE(spec_sw.ok() && spec_off.ok());
  SoftwareMiddlebox software(*spec_sw);
  auto mbx = OffloadedMiddlebox::Create(*spec_off);
  ASSERT_TRUE(mbx.ok());

  Rng rng(33);
  std::vector<net::FiveTuple> flows;
  for (int i = 0; i < 20; ++i) flows.push_back(workload::RandomFlow(rng));

  // Interleave SYNs and data packets of all flows.
  for (int round = 0; round < 4; ++round) {
    for (const net::FiveTuple& flow : flows) {
      net::Packet pkt = net::MakeTcpPacket(
          flow, round == 0 ? net::kTcpSyn : net::kTcpAck, 100);
      pkt.set_ingress_port(mbox::kPortInternal);
      net::Packet sw_pkt = pkt;
      auto sw_out = software.Process(sw_pkt);
      auto off_out = (*mbx)->Process(pkt);
      ASSERT_TRUE(sw_out.status.ok() && off_out.status.ok());
      ASSERT_EQ(sw_out.verdict.kind, off_out.verdict.kind);
      EXPECT_EQ(sw_pkt.sport(), off_out.out_packet.sport())
          << "same port allocation order under interleaving";
      if (round > 0) {
        EXPECT_TRUE(off_out.fast_path);
        EXPECT_FALSE(off_out.state_synced);
      }
    }
  }
}

TEST(Offloaded, WireFormatCrossingPreservesBehavior) {
  // serialize_wire=true (default) round-trips switch<->server packets
  // through real bytes; results must match the no-serialization mode.
  auto spec_a = mbox::BuildMiniLb();
  auto spec_b = mbox::BuildMiniLb();
  ASSERT_TRUE(spec_a.ok() && spec_b.ok());

  OffloadedOptions wire_opts;
  wire_opts.serialize_wire = true;
  auto with_wire = OffloadedMiddlebox::Create(*spec_a, wire_opts);
  OffloadedOptions fast_opts;
  fast_opts.serialize_wire = false;
  auto without_wire = OffloadedMiddlebox::Create(*spec_b, fast_opts);
  ASSERT_TRUE(with_wire.ok() && without_wire.ok());

  Rng rng(34);
  for (int i = 0; i < 100; ++i) {
    net::Packet pkt = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpAck, 200);
    pkt.set_ingress_port(mbox::kPortInternal);
    auto out1 = (*with_wire)->Process(pkt);
    auto out2 = (*without_wire)->Process(pkt);
    ASSERT_TRUE(out1.status.ok()) << out1.status.ToString();
    ASSERT_TRUE(out2.status.ok());
    EXPECT_EQ(out1.verdict.kind, out2.verdict.kind);
    EXPECT_EQ(out1.out_packet.ip().daddr, out2.out_packet.ip().daddr);
    EXPECT_EQ(out1.fast_path, out2.fast_path);
  }
}

TEST(Offloaded, OutputPacketHasNoGalliumHeader) {
  auto spec = mbox::BuildMiniLb();
  ASSERT_TRUE(spec.ok());
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());
  Rng rng(35);
  net::Packet pkt = net::MakeTcpPacket(workload::RandomFlow(rng),
                                       net::kTcpSyn, 0);
  pkt.set_ingress_port(mbox::kPortInternal);
  auto out = (*mbx)->Process(pkt);  // slow path crosses the wire twice
  ASSERT_TRUE(out.status.ok());
  EXPECT_FALSE(out.fast_path);
  EXPECT_FALSE(out.out_packet.has_gallium())
      << "the transfer header is middlebox-internal";
  EXPECT_EQ(out.out_packet.eth().ether_type, net::kEtherTypeIpv4);
}

TEST(Offloaded, TransferBytesWithinConstraint) {
  for (auto& spec : mbox::BuildAllPaperMiddleboxes()) {
    auto mbx = OffloadedMiddlebox::Create(spec);
    ASSERT_TRUE(mbx.ok()) << spec.name;
    Rng rng(36);
    for (int i = 0; i < 50; ++i) {
      net::Packet pkt = net::MakeTcpPacket(workload::RandomFlow(rng),
                                           i % 2 ? net::kTcpAck : net::kTcpSyn,
                                           100);
      pkt.set_ingress_port(mbox::kPortInternal);
      auto out = (*mbx)->Process(pkt);
      ASSERT_TRUE(out.status.ok()) << spec.name;
      // Wire header size = layout size + 8 bytes of count/cond framing;
      // the paper's 20-byte budget covers the variable payload.
      EXPECT_LE(out.transfer_bytes_to_server, 20 + 8) << spec.name;
      EXPECT_LE(out.transfer_bytes_to_switch, 20 + 8) << spec.name;
    }
  }
}

TEST(Offloaded, FastPathCountersTrackOutcomes) {
  auto spec = mbox::BuildProxy();
  ASSERT_TRUE(spec.ok());
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());
  Rng rng(37);
  for (int i = 0; i < 64; ++i) {
    net::Packet pkt = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpAck, 10);
    pkt.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(pkt).status.ok());
  }
  EXPECT_EQ((*mbx)->packets_total(), 64u);
  EXPECT_EQ((*mbx)->packets_fast_path(), 64u);
  EXPECT_DOUBLE_EQ((*mbx)->FastPathFraction(), 1.0);
}

TEST(Offloaded, IdleFlowCollectionSyncsSwitch) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  const ir::StateIndex flows_map = spec->MapIndex("flows");
  const ir::StateIndex created_map = spec->MapIndex("flow_created");
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());

  Rng rng(38);
  uint64_t now_ms = 1000;
  // Create 8 flows at t=1000, 4 more at t=200000.
  for (int i = 0; i < 8; ++i) {
    net::Packet syn = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(syn, now_ms).status.ok());
  }
  now_ms = 200000;
  for (int i = 0; i < 4; ++i) {
    net::Packet syn = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(syn, now_ms).status.ok());
  }
  ASSERT_EQ((*mbx)->server_state().MapSize(flows_map), 12u);

  // Collect with a 5-minute timeout at t=310s: only the first batch expires.
  auto collected = (*mbx)->CollectIdleFlows(flows_map, created_map,
                                            /*now_ms=*/310000,
                                            /*timeout_ms=*/300000);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(*collected, 8);
  EXPECT_EQ((*mbx)->server_state().MapSize(flows_map), 4u);
  auto* table = (*mbx)->device().table(flows_map);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), 4u) << "switch table pruned in sync";
}

TEST(Offloaded, IdleFlowCollectionOnEmptyMapIsNoOp) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());

  const uint64_t batches_before = (*mbx)->sync_batches_sent();
  auto collected = (*mbx)->CollectIdleFlows(spec->MapIndex("flows"),
                                            spec->MapIndex("flow_created"),
                                            /*now_ms=*/310000,
                                            /*timeout_ms=*/300000);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(*collected, 0);
  // Nothing expired => no sync batch crosses the control plane.
  EXPECT_EQ((*mbx)->sync_batches_sent(), batches_before);
}

TEST(Offloaded, IdleFlowCollectionExpiresEverything) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  const ir::StateIndex flows_map = spec->MapIndex("flows");
  const ir::StateIndex created_map = spec->MapIndex("flow_created");
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());

  Rng rng(39);
  for (int i = 0; i < 6; ++i) {
    net::Packet syn = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(syn, /*now_ms=*/1000).status.ok());
  }
  ASSERT_EQ((*mbx)->server_state().MapSize(flows_map), 6u);

  auto collected = (*mbx)->CollectIdleFlows(flows_map, created_map,
                                            /*now_ms=*/1000000,
                                            /*timeout_ms=*/300000);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(*collected, 6);
  EXPECT_EQ((*mbx)->server_state().MapSize(flows_map), 0u);
  EXPECT_EQ((*mbx)->server_state().MapSize(created_map), 0u);
  EXPECT_EQ((*mbx)->device().table(flows_map)->size(), 0u);
}

TEST(Offloaded, IdleFlowCollectionErasesSameKeysOnSwitchReplica) {
  auto spec = mbox::BuildLoadBalancer();
  ASSERT_TRUE(spec.ok());
  const ir::StateIndex flows_map = spec->MapIndex("flows");
  const ir::StateIndex created_map = spec->MapIndex("flow_created");
  auto mbx = OffloadedMiddlebox::Create(*spec);
  ASSERT_TRUE(mbx.ok());

  Rng rng(40);
  for (int i = 0; i < 5; ++i) {
    net::Packet syn = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(syn, /*now_ms=*/1000).status.ok());
  }
  for (int i = 0; i < 3; ++i) {
    net::Packet syn = net::MakeTcpPacket(workload::RandomFlow(rng),
                                         net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    ASSERT_TRUE((*mbx)->Process(syn, /*now_ms=*/400000).status.ok());
  }

  auto collected = (*mbx)->CollectIdleFlows(flows_map, created_map,
                                            /*now_ms=*/500000,
                                            /*timeout_ms=*/300000);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(*collected, 5);

  // The switch replica of every replicated map must hold exactly the
  // surviving host entries: same size and every surviving key present.
  for (ir::StateIndex map : {flows_map, created_map}) {
    auto* table = (*mbx)->device().table(map);
    if (table == nullptr) continue;  // not resident on the switch
    const auto& host = (*mbx)->server_state().map_contents(map);
    EXPECT_EQ(table->size(), host.size()) << "map " << map;
    for (const auto& [key, value] : host) {
      switchsim::TableValue replica;
      EXPECT_TRUE(table->Lookup(key, &replica)) << "map " << map;
    }
  }
}

TEST(Software, MatchesSpecInitialState) {
  auto spec = mbox::BuildProxy({8080});
  ASSERT_TRUE(spec.ok());
  SoftwareMiddlebox mbx(*spec);
  const ir::StateIndex ports = spec->MapIndex("redirect_ports");
  StateValue value;
  EXPECT_TRUE(mbx.state().MapLookup(ports, {8080}, &value));
  EXPECT_FALSE(mbx.state().MapLookup(ports, {80}, &value));
}

}  // namespace
}  // namespace gallium::runtime
