// IR tests: types & ALU evaluation semantics, builder, verifier rejection
// of malformed programs, and the printers.
#include <gtest/gtest.h>

#include "frontend/middlebox_builder.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gallium::ir {
namespace {

// --- Types --------------------------------------------------------------------

TEST(Widths, BitAndByteWidths) {
  EXPECT_EQ(BitWidth(Width::kU1), 1);
  EXPECT_EQ(BitWidth(Width::kU64), 64);
  EXPECT_EQ(ByteWidth(Width::kU1), 1);
  EXPECT_EQ(ByteWidth(Width::kU16), 2);
  EXPECT_EQ(WidthMask(Width::kU8), 0xffu);
  EXPECT_EQ(WidthMask(Width::kU64), ~0ull);
}

TEST(HeaderFields, WidthsMatchProtocolFields) {
  EXPECT_EQ(HeaderFieldWidth(HeaderField::kIpSrc), Width::kU32);
  EXPECT_EQ(HeaderFieldWidth(HeaderField::kSrcPort), Width::kU16);
  EXPECT_EQ(HeaderFieldWidth(HeaderField::kTcpFlags), Width::kU8);
  EXPECT_EQ(HeaderFieldWidth(HeaderField::kEthSrc), Width::kU64);
}

TEST(AluOps, P4SupportMatchesPaperSection22) {
  // §2.2: integer addition, subtraction, bitwise ops, shifts, comparison.
  for (AluOp op : {AluOp::kAdd, AluOp::kSub, AluOp::kAnd, AluOp::kOr,
                   AluOp::kXor, AluOp::kNot, AluOp::kShl, AluOp::kShr,
                   AluOp::kEq, AluOp::kNe, AluOp::kLt, AluOp::kLe, AluOp::kGt,
                   AluOp::kGe}) {
    EXPECT_TRUE(AluOpSupportedByP4(op)) << AluOpName(op);
  }
  for (AluOp op : {AluOp::kMul, AluOp::kDiv, AluOp::kMod, AluOp::kHash}) {
    EXPECT_FALSE(AluOpSupportedByP4(op)) << AluOpName(op);
  }
}

TEST(AluEval, BasicArithmetic) {
  EXPECT_EQ(EvalAluOp(AluOp::kAdd, 3, 4, Width::kU32), 7u);
  EXPECT_EQ(EvalAluOp(AluOp::kSub, 3, 4, Width::kU32), 0xffffffffu);
  EXPECT_EQ(EvalAluOp(AluOp::kXor, 0xf0, 0x0f, Width::kU8), 0xffu);
  EXPECT_EQ(EvalAluOp(AluOp::kMod, 10, 3, Width::kU32), 1u);
  EXPECT_EQ(EvalAluOp(AluOp::kDiv, 10, 0, Width::kU32), 0u) << "div0 -> 0";
  EXPECT_EQ(EvalAluOp(AluOp::kMod, 10, 0, Width::kU32), 0u) << "mod0 -> 0";
}

TEST(AluEval, MasksToWidth) {
  EXPECT_EQ(EvalAluOp(AluOp::kAdd, 0xff, 1, Width::kU8), 0u);
  EXPECT_EQ(EvalAluOp(AluOp::kShl, 1, 16, Width::kU16), 0u);
  EXPECT_EQ(EvalAluOp(AluOp::kNot, 0, 0, Width::kU1), 1u);
}

TEST(AluEval, ComparisonsProduceBooleans) {
  EXPECT_EQ(EvalAluOp(AluOp::kLt, 1, 2, Width::kU32), 1u);
  EXPECT_EQ(EvalAluOp(AluOp::kGe, 1, 2, Width::kU32), 0u);
  EXPECT_EQ(EvalAluOp(AluOp::kEq, 5, 5, Width::kU64), 1u);
}

TEST(AluEval, ShiftBeyondWidthIsZero) {
  EXPECT_EQ(EvalAluOp(AluOp::kShr, 0xff, 100, Width::kU64), 0u);
  EXPECT_EQ(EvalAluOp(AluOp::kShl, 0xff, 100, Width::kU64), 0u);
}

TEST(AluEval, HashIsDeterministicAndMixing) {
  const uint64_t h1 = EvalAluOp(AluOp::kHash, 1, 2, Width::kU64);
  const uint64_t h2 = EvalAluOp(AluOp::kHash, 1, 2, Width::kU64);
  const uint64_t h3 = EvalAluOp(AluOp::kHash, 2, 1, Width::kU64);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

// Commutativity property sweep.
class CommutativeOps : public ::testing::TestWithParam<AluOp> {};

TEST_P(CommutativeOps, OperandOrderIrrelevant) {
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.NextU64(), b = rng.NextU64();
    EXPECT_EQ(EvalAluOp(GetParam(), a, b, Width::kU32),
              EvalAluOp(GetParam(), b, a, Width::kU32));
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, CommutativeOps,
                         ::testing::Values(AluOp::kAdd, AluOp::kAnd,
                                           AluOp::kOr, AluOp::kXor,
                                           AluOp::kEq, AluOp::kNe, AluOp::kMul),
                         [](const auto& info) {
                           return AluOpName(info.param);
                         });

// --- Builder & function ----------------------------------------------------------

TEST(Builder, BuildsVerifiableFunction) {
  Function fn("test");
  const int entry = fn.AddBlock("entry");
  fn.set_entry_block(entry);
  IrBuilder b(&fn);
  b.SetInsertPoint(entry);
  const Reg x = b.HeaderRead(HeaderField::kIpSrc, "x");
  const Reg y = b.Alu(AluOp::kAdd, R(x), Imm(1), "y");
  b.HeaderWrite(HeaderField::kIpDst, R(y));
  b.Send(Imm(1));
  b.Ret();
  EXPECT_TRUE(VerifyFunction(fn).ok());
  EXPECT_EQ(fn.num_regs(), 2);
  EXPECT_EQ(fn.reg_width(y), Width::kU32);
}

TEST(Builder, ComparisonResultIsU1) {
  Function fn("cmp");
  fn.set_entry_block(fn.AddBlock("entry"));
  IrBuilder b(&fn);
  b.SetInsertPoint(0);
  const Reg x = b.HeaderRead(HeaderField::kSrcPort);
  const Reg c = b.Alu(AluOp::kEq, R(x), Imm(80), "is_http");
  EXPECT_EQ(fn.reg_width(c), Width::kU1);
  b.Ret();
}

TEST(Builder, MapGetProducesDeclShapedResults) {
  Function fn("maps");
  fn.set_entry_block(fn.AddBlock("entry"));
  IrBuilder b(&fn);
  b.SetInsertPoint(0);
  MapDecl decl;
  decl.name = "m";
  decl.key_widths = {Width::kU32, Width::kU16};
  decl.value_widths = {Width::kU32, Width::kU16};
  const StateIndex m = fn.AddMap(decl);
  const Reg k1 = b.HeaderRead(HeaderField::kIpSrc);
  const Reg k2 = b.HeaderRead(HeaderField::kSrcPort);
  const std::vector<Value> keys = {R(k1), R(k2)};
  const MapGetResult result = b.MapGet(m, keys);
  EXPECT_EQ(fn.reg_width(result.found), Width::kU1);
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(fn.reg_width(result.values[0]), Width::kU32);
  EXPECT_EQ(fn.reg_width(result.values[1]), Width::kU16);
  b.Ret();
  EXPECT_TRUE(VerifyFunction(fn).ok());
}

TEST(Function, StateDeclSizes) {
  MapDecl m;
  m.key_widths = {Width::kU32, Width::kU16, Width::kU8};
  m.value_widths = {Width::kU32};
  m.max_entries = 100;
  EXPECT_EQ(m.KeyBytes(), 7);
  EXPECT_EQ(m.ValueBytes(), 4);
  EXPECT_EQ(m.SwitchBytes(), 100u * (7 + 4 + 4));

  VectorDecl v;
  v.elem_width = Width::kU32;
  v.max_size = 10;
  EXPECT_EQ(v.SwitchBytes(), 10u * 8);

  GlobalDecl g;
  g.width = Width::kU16;
  EXPECT_EQ(g.SwitchBytes(), 2u);
}

TEST(Function, InstStateRefIdentifiesStateOps) {
  Function fn("refs");
  fn.set_entry_block(fn.AddBlock("entry"));
  IrBuilder b(&fn);
  b.SetInsertPoint(0);
  const StateIndex g = fn.AddGlobal({"counter", Width::kU32, 0});
  const Reg v = b.GlobalRead(g);
  b.GlobalWrite(g, R(v));
  b.Ret();

  StateRef ref;
  const auto& insts = fn.block(0).insts;
  ASSERT_TRUE(Function::InstStateRef(insts[0], &ref));
  EXPECT_EQ(ref.kind, StateRef::Kind::kGlobal);
  EXPECT_FALSE(Function::InstStateRef(insts[2], &ref)) << "ret has no state";
}

// --- Verifier ------------------------------------------------------------------

TEST(Verifier, RejectsUseBeforeDef) {
  Function fn("bad");
  fn.set_entry_block(fn.AddBlock("entry"));
  IrBuilder b(&fn);
  b.SetInsertPoint(0);
  const Reg ghost = fn.AddReg(Width::kU32, "ghost");  // never assigned
  b.HeaderWrite(HeaderField::kIpDst, R(ghost));
  b.Ret();
  const Status status = VerifyFunction(fn);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ghost"), std::string::npos);
}

TEST(Verifier, RejectsDefOnOnlyOneBranch) {
  // x defined only in the then-branch but used after the join.
  Function fn("one_sided");
  const int entry = fn.AddBlock("entry");
  const int then_bb = fn.AddBlock("then");
  const int join = fn.AddBlock("join");
  fn.set_entry_block(entry);
  IrBuilder b(&fn);
  b.SetInsertPoint(entry);
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  b.Branch(R(c), then_bb, join);
  b.SetInsertPoint(then_bb);
  const Reg x = b.Assign(Imm(1), Width::kU32, "x");
  b.Jump(join);
  b.SetInsertPoint(join);
  b.HeaderWrite(HeaderField::kIpDst, R(x));
  b.Ret();
  EXPECT_FALSE(VerifyFunction(fn).ok());
}

TEST(Verifier, AcceptsDefOnBothBranches) {
  Function fn("two_sided");
  const int entry = fn.AddBlock("entry");
  const int t = fn.AddBlock("then");
  const int e = fn.AddBlock("else");
  const int join = fn.AddBlock("join");
  fn.set_entry_block(entry);
  IrBuilder b(&fn);
  b.SetInsertPoint(entry);
  const Reg c = b.HeaderRead(HeaderField::kIpTtl, "c");
  const Reg x = fn.AddReg(Width::kU32, "x");
  b.Branch(R(c), t, e);
  b.SetInsertPoint(t);
  fn.block(t).insts.push_back([&] {
    Instruction i;
    i.op = Opcode::kAssign;
    i.id = fn.NextInstId();
    i.dsts = {x};
    i.args = {Imm(1)};
    return i;
  }());
  b.Jump(join);
  b.SetInsertPoint(e);
  fn.block(e).insts.push_back([&] {
    Instruction i;
    i.op = Opcode::kAssign;
    i.id = fn.NextInstId();
    i.dsts = {x};
    i.args = {Imm(2)};
    return i;
  }());
  b.Jump(join);
  b.SetInsertPoint(join);
  b.HeaderWrite(HeaderField::kIpDst, R(x));
  b.Ret();
  EXPECT_TRUE(VerifyFunction(fn).ok()) << VerifyFunction(fn).ToString();
}

TEST(Verifier, RejectsBadBranchTarget) {
  Function fn("bad_target");
  fn.set_entry_block(fn.AddBlock("entry"));
  IrBuilder b(&fn);
  b.SetInsertPoint(0);
  const Reg c = b.HeaderRead(HeaderField::kIpTtl);
  b.Branch(R(c), 42, 0);  // block 42 does not exist
  EXPECT_FALSE(VerifyFunction(fn).ok());
}

TEST(Verifier, RejectsEmptyBlock) {
  Function fn("empty");
  fn.set_entry_block(fn.AddBlock("entry"));
  EXPECT_FALSE(VerifyFunction(fn).ok());
}

TEST(Verifier, RejectsMapArityMismatch) {
  Function fn("arity");
  fn.set_entry_block(fn.AddBlock("entry"));
  IrBuilder b(&fn);
  b.SetInsertPoint(0);
  MapDecl decl;
  decl.name = "m";
  decl.key_widths = {Width::kU32, Width::kU32};
  decl.value_widths = {Width::kU32};
  const StateIndex m = fn.AddMap(decl);
  // Hand-roll a map_get with one key instead of two.
  Instruction inst;
  inst.op = Opcode::kMapGet;
  inst.id = fn.NextInstId();
  inst.state = m;
  inst.dsts = {fn.AddReg(Width::kU1, "f"), fn.AddReg(Width::kU32, "v")};
  inst.args = {Imm(1)};
  fn.block(0).insts.push_back(inst);
  b.Ret();
  EXPECT_FALSE(VerifyFunction(fn).ok());
}

// --- Printers --------------------------------------------------------------------

TEST(Printer, ListsStateAndInstructions) {
  frontend::MiddleboxBuilder mb("printed");
  auto map = mb.DeclareMap("conns", {Width::kU16}, {Width::kU32}, 1024);
  auto& b = mb.b();
  const Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const auto r = map.Find({R(sport)});
  mb.If(R(r.found), [&] {
    b.Send(Imm(1));
    b.Ret();
  });
  b.Drop();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  const std::string text = PrintFunction(**fn);
  EXPECT_NE(text.find("map conns"), std::string::npos);
  EXPECT_NE(text.find("map_get conns"), std::string::npos);
  EXPECT_NE(text.find("send port=1"), std::string::npos);
  EXPECT_NE(text.find("drop"), std::string::npos);
  EXPECT_NE(text.find("br "), std::string::npos);
}

TEST(Printer, ClickSourceRendersCompilableShape) {
  frontend::MiddleboxBuilder mb("render_me");
  auto& b = mb.b();
  const Reg x = b.HeaderRead(HeaderField::kIpSrc, "x");
  const Reg y = b.Alu(AluOp::kXor, R(x), Imm(3), "y");
  b.HeaderWrite(HeaderField::kIpDst, R(y));
  b.Send(Imm(0));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  const std::string source = RenderClickSource(**fn);
  EXPECT_NE(source.find("class render_me : public Element"),
            std::string::npos);
  EXPECT_NE(source.find("void process(Packet* pkt)"), std::string::npos);
  EXPECT_NE(source.find("^"), std::string::npos);
  EXPECT_NE(source.find("output(0u).push(pkt);"), std::string::npos);
  EXPECT_GT(CountCodeLines(source), 5);
}

}  // namespace
}  // namespace gallium::ir
