// Performance-model tests: cost composition, the paper-calibrated latency
// targets (Table 2), throughput bottleneck arithmetic (Fig. 7), and the
// middlebox profiler.
#include <gtest/gtest.h>

#include "mbox/middleboxes.h"
#include "perf/harness.h"

namespace gallium::perf {
namespace {

TEST(CostModel, CyclesMonotonicInOpsAndBytes) {
  CostModel cost;
  runtime::ExecStats none;
  runtime::ExecStats some;
  some.map_lookups = 2;
  some.alu_ops = 10;
  EXPECT_GT(cost.PacketCycles(some, 100, 0), cost.PacketCycles(none, 100, 0));
  EXPECT_GT(cost.PacketCycles(none, 1500, 0), cost.PacketCycles(none, 100, 0));
}

TEST(CostModel, PayloadScanScalesWithBytes) {
  CostModel cost;
  runtime::ExecStats dpi;
  dpi.payload_ops = 1;
  const double small = cost.PacketCycles(dpi, 100, 100);
  const double large = cost.PacketCycles(dpi, 100, 1400);
  EXPECT_GT(large, small + 500);
}

TEST(CostModel, WireTimeMatchesLineRate) {
  CostModel cost;
  // 1500B at 100 Gbps = 0.12 us.
  EXPECT_NEAR(cost.WireUs(1500), 0.12, 0.001);
}

TEST(Latency, FastClickLandsNearPaperValues) {
  CostModel cost;
  runtime::ExecStats stats;
  stats.map_lookups = 1;
  stats.header_ops = 6;
  stats.alu_ops = 4;
  stats.branches = 3;
  const double us = FastClickLatencyUs(cost, stats, 118);
  EXPECT_GT(us, 21.0);
  EXPECT_LT(us, 25.0);  // paper: 22.45-23.16 us
}

TEST(Latency, OffloadedLandsNearPaperValues) {
  CostModel cost;
  const double us = OffloadedFastPathLatencyUs(cost, 118);
  EXPECT_GT(us, 14.0);
  EXPECT_LT(us, 17.0);  // paper: 14.80-15.98 us
}

TEST(Latency, ReductionIsAboutThirtyPercent) {
  CostModel cost;
  runtime::ExecStats stats;
  stats.map_lookups = 1;
  stats.header_ops = 5;
  const double fc = FastClickLatencyUs(cost, stats, 118);
  const double ga = OffloadedFastPathLatencyUs(cost, 118);
  EXPECT_NEAR(1.0 - ga / fc, 0.31, 0.05);
}

TEST(Throughput, ClickScalesWithCores) {
  CostModel cost;
  runtime::ExecStats stats;
  stats.map_lookups = 1;
  const double c1 = ClickThroughputGbps(cost, stats, 500, 1);
  const double c2 = ClickThroughputGbps(cost, stats, 500, 2);
  const double c4 = ClickThroughputGbps(cost, stats, 500, 4);
  EXPECT_NEAR(c2, 2 * c1, 0.01 * c2);
  EXPECT_NEAR(c4, 4 * c1, 0.01 * c4);
}

TEST(Throughput, ClickCappedByLineRate) {
  CostModel cost;
  runtime::ExecStats trivial;
  const double gbps = ClickThroughputGbps(cost, trivial, 1500, 64);
  EXPECT_LE(gbps, 100.0);
}

TEST(Throughput, OffloadedCappedBySenderAtSmallPackets) {
  CostModel cost;
  MiddleboxProfile profile;
  profile.fast_path_fraction = 1.0;
  const double gbps = OffloadedThroughputGbps(cost, profile, 100);
  // sender_pps_millions * 100B * 8 = 40 Gbps at the default 50 Mpps.
  EXPECT_NEAR(gbps, cost.sender_pps_millions * 1e6 * 100 * 8 / 1e9, 0.5);
}

TEST(Throughput, SlowPathThrottlesWhenServerSaturates) {
  CostModel cost;
  MiddleboxProfile profile;
  profile.fast_path_fraction = 0.5;  // half the packets hit one core
  profile.server_slow_stats.map_updates = 2;
  const double throttled = OffloadedThroughputGbps(cost, profile, 1500);
  profile.fast_path_fraction = 1.0;
  const double free = OffloadedThroughputGbps(cost, profile, 1500);
  EXPECT_LT(throttled, free * 0.5);
}

TEST(Profiler, NatProfileMatchesPaperCharacteristics) {
  auto profile =
      ProfileMiddlebox([] { return mbox::BuildMazuNat(); }, 20);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  // §6.3: "only 0.1% of the packets in TCP flows are processed by the
  // middlebox server" — long flows, ~2 slow packets each.
  EXPECT_GT(profile->fast_path_fraction, 0.99);
  EXPECT_GT(profile->baseline_stats.map_lookups, 0);
  EXPECT_GT(profile->mean_sync_latency_us, 50.0);
  EXPECT_GT(profile->sync_per_slow_packet, 0.0);
}

TEST(Profiler, FullyOffloadedMiddleboxHasNoSlowPackets) {
  auto profile = ProfileMiddlebox([] { return mbox::BuildProxy(); }, 10);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(profile->fast_path_fraction, 1.0);
  EXPECT_EQ(profile->server_slow_stats.insts, 0);
}

TEST(Jittered, StatisticsAreSane) {
  Rng rng(47);
  const Measurement m = Jittered(100.0, 1000, 0.05, rng);
  EXPECT_NEAR(m.mean, 100.0, 1.0);
  EXPECT_NEAR(m.stdev, 5.0, 1.0);
}

}  // namespace
}  // namespace gallium::perf
