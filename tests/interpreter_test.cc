// Interpreter tests: opcode semantics, width masking, map miss behavior,
// partitioned execution (needs_server detection, transfer packing, verdict
// rules), and error reporting.
#include <gtest/gtest.h>

#include "frontend/middlebox_builder.h"
#include "partition/partitioner.h"
#include "runtime/interpreter.h"
#include "runtime/state.h"
#include "workload/packet_gen.h"

namespace gallium::runtime {
namespace {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Reg;
using ir::Width;

net::Packet TestPacket() {
  net::FiveTuple flow{net::MakeIpv4(1, 2, 3, 4), net::MakeIpv4(5, 6, 7, 8),
                      1111, 80, net::kIpProtoTcp};
  net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpSyn, 32, 5);
  pkt.set_ingress_port(0);
  return pkt;
}

TEST(Interpreter, HeaderReadWriteRoundTrip) {
  MiddleboxBuilder mb("hdr");
  auto& b = mb.b();
  const Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  b.HeaderWrite(HeaderField::kIpDst, R(saddr));
  const Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  b.HeaderWrite(HeaderField::kDstPort, R(sport));
  b.Send(Imm(3));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  const auto result = interp.Run(pkt, state, 0);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.verdict.kind, Verdict::Kind::kSend);
  EXPECT_EQ(result.verdict.egress_port, 3u);
  EXPECT_EQ(pkt.ip().daddr, net::MakeIpv4(1, 2, 3, 4));
  EXPECT_EQ(pkt.dport(), 1111);
}

TEST(Interpreter, AluMasksToRegisterWidth) {
  MiddleboxBuilder mb("mask");
  auto& b = mb.b();
  const Reg v = b.Assign(Imm(0x1ffff), Width::kU32, "v");
  const Reg narrow = b.Alu(AluOp::kAdd, R(v), Imm(0), Width::kU16, "narrow");
  b.HeaderWrite(HeaderField::kDstPort, R(narrow));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  ASSERT_TRUE(interp.Run(pkt, state, 0).status.ok());
  EXPECT_EQ(pkt.dport(), 0xffff);
}

TEST(Interpreter, MapMissZeroFillsValues) {
  MiddleboxBuilder mb("miss");
  auto map = mb.DeclareMap("m", {Width::kU16}, {Width::kU32, Width::kU16}, 8);
  auto& b = mb.b();
  const Reg sport = b.HeaderRead(HeaderField::kSrcPort);
  const auto r = map.Find({R(sport)});
  b.HeaderWrite(HeaderField::kIpDst, R(r.values[0]));
  b.HeaderWrite(HeaderField::kDstPort, R(r.values[1]));
  mb.IfElse(
      R(r.found), [&] { b.Send(Imm(1)); b.Ret(); },
      [&] { b.Send(Imm(2)); b.Ret(); });
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  const auto result = interp.Run(pkt, state, 0);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.verdict.egress_port, 2u) << "miss takes the else branch";
  EXPECT_EQ(pkt.ip().daddr, 0u);
  EXPECT_EQ(pkt.dport(), 0);
}

TEST(Interpreter, MapInsertThenFind) {
  MiddleboxBuilder mb("put_get");
  auto map = mb.DeclareMap("m", {Width::kU16}, {Width::kU32}, 8);
  auto& b = mb.b();
  const Reg sport = b.HeaderRead(HeaderField::kSrcPort);
  map.Insert({R(sport)}, {Imm(0xabcd)});
  const auto r = map.Find({R(sport)});
  b.HeaderWrite(HeaderField::kIpDst, R(r.values[0]));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  ASSERT_TRUE(interp.Run(pkt, state, 0).status.ok());
  EXPECT_EQ(pkt.ip().daddr, 0xabcdu);
  EXPECT_EQ(state.MapSize(0), 1u);
}

TEST(Interpreter, PayloadMatchFindsPattern) {
  MiddleboxBuilder mb("dpi");
  const uint32_t pat = mb.DeclarePattern("EVIL");
  auto& b = mb.b();
  const Reg hit = b.PayloadMatch(pat, "hit");
  mb.IfElse(
      R(hit), [&] { b.Drop(); b.Ret(); },
      [&] { b.Send(Imm(1)); b.Ret(); });
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);

  net::Packet clean = TestPacket();
  EXPECT_EQ(interp.Run(clean, state, 0).verdict.kind, Verdict::Kind::kSend);

  net::Packet dirty = TestPacket();
  workload::SetPayloadWithMarker(&dirty, "xxEVILxx", 64);
  EXPECT_EQ(interp.Run(dirty, state, 0).verdict.kind, Verdict::Kind::kDrop);
}

TEST(Interpreter, TimeReadReturnsProvidedClock) {
  MiddleboxBuilder mb("clock");
  auto log = mb.DeclareMap("log", {Width::kU16}, {Width::kU64}, 0);
  auto& b = mb.b();
  const Reg now = b.TimeRead();
  log.Insert({Imm(1)}, {R(now)});
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  ASSERT_TRUE(interp.Run(pkt, state, 123456).status.ok());
  StateValue value;
  ASSERT_TRUE(state.MapLookup(0, {1}, &value));
  EXPECT_EQ(value[0], 123456u);
}

TEST(Interpreter, DoubleSendIsAnError) {
  MiddleboxBuilder mb("twice");
  auto& b = mb.b();
  b.Send(Imm(1));
  b.Send(Imm(2));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  EXPECT_FALSE(interp.Run(pkt, state, 0).status.ok());
}

TEST(Interpreter, GlobalReadWrite) {
  MiddleboxBuilder mb("globals");
  auto g = mb.DeclareGlobal("ctr", Width::kU16, 100);
  auto& b = mb.b();
  const Reg v = g.Read();
  g.Write(R(b.Alu(AluOp::kAdd, R(v), Imm(1), Width::kU16)));
  b.HeaderWrite(HeaderField::kDstPort, R(v));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet p1 = TestPacket(), p2 = TestPacket();
  ASSERT_TRUE(interp.Run(p1, state, 0).status.ok());
  ASSERT_TRUE(interp.Run(p2, state, 0).status.ok());
  EXPECT_EQ(p1.dport(), 100);
  EXPECT_EQ(p2.dport(), 101) << "counter persisted across packets";
}

TEST(Interpreter, StatsCountExecutedOps) {
  MiddleboxBuilder mb("stats");
  auto map = mb.DeclareMap("m", {Width::kU16}, {Width::kU32}, 8);
  auto& b = mb.b();
  const Reg sport = b.HeaderRead(HeaderField::kSrcPort);
  const auto r = map.Find({R(sport)});
  (void)r;
  b.Alu(AluOp::kAdd, R(sport), Imm(1));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  const auto result = interp.Run(pkt, state, 0);
  EXPECT_EQ(result.stats.map_lookups, 1);
  EXPECT_EQ(result.stats.header_ops, 1);
  EXPECT_EQ(result.stats.alu_ops, 1);
}

// --- Partitioned execution ------------------------------------------------------

// A program with a clear pre / server / post split: the switch computes a
// key, the server does a modulo, the switch writes the result back.
struct SplitProgram {
  std::unique_ptr<ir::Function> fn;
  partition::PartitionPlan plan;
};

SplitProgram MakeSplitProgram() {
  MiddleboxBuilder mb("split");
  auto& b = mb.b();
  const Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  const Reg key = b.Alu(AluOp::kXor, R(saddr), Imm(0x5a5a), Width::kU32,
                        "key");                            // pre
  const Reg m = b.Alu(AluOp::kMod, R(key), Imm(7), Width::kU32, "m");  // srv
  const Reg out = b.Alu(AluOp::kAdd, R(m), Imm(1), Width::kU32, "out");  // post
  b.HeaderWrite(HeaderField::kIpDst, R(out));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  EXPECT_TRUE(fn.ok());

  SplitProgram split;
  split.fn = std::move(*fn);
  partition::Partitioner partitioner(*split.fn, {});
  auto plan = partitioner.Run();
  EXPECT_TRUE(plan.ok());
  split.plan = std::move(*plan);
  return split;
}

TEST(PartitionedExecution, PrePassStopsAtServerWorkAndPacksTransfers) {
  SplitProgram split = MakeSplitProgram();
  Interpreter interp(*split.fn);
  HostStateStore state(*split.fn);
  net::Packet pkt = TestPacket();

  const auto pre = interp.RunPartition(pkt, state, 0, split.plan,
                                       partition::Part::kPre, nullptr,
                                       nullptr, &split.plan.to_server);
  ASSERT_TRUE(pre.status.ok());
  EXPECT_TRUE(pre.needs_server);
  EXPECT_FALSE(pre.verdict.decided());
  // key must be among the transferred values.
  ASSERT_FALSE(split.plan.to_server.var_regs.empty());
  const uint64_t expected_key = pkt.ip().saddr ^ 0x5a5a;
  bool found = false;
  for (size_t i = 0; i < split.plan.to_server.var_regs.size(); ++i) {
    if (pre.transfer_out.var_values[i] == expected_key) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PartitionedExecution, ThreePassesComposeToFullSemantics) {
  SplitProgram split = MakeSplitProgram();
  Interpreter interp(*split.fn);
  HostStateStore sw_state(*split.fn);
  HostStateStore srv_state(*split.fn);
  net::Packet pkt = TestPacket();

  // Reference: full run.
  net::Packet ref = pkt;
  HostStateStore ref_state(*split.fn);
  const auto full = interp.Run(ref, ref_state, 0);
  ASSERT_TRUE(full.status.ok());

  // Pre on the "switch".
  const auto pre = interp.RunPartition(pkt, sw_state, 0, split.plan,
                                       partition::Part::kPre, nullptr,
                                       nullptr, &split.plan.to_server);
  ASSERT_TRUE(pre.status.ok());
  ASSERT_TRUE(pre.needs_server);

  // Server pass.
  const auto srv = interp.RunPartition(
      pkt, srv_state, 0, split.plan, partition::Part::kNonOffloaded,
      &split.plan.to_server, &pre.transfer_out, &split.plan.to_switch);
  ASSERT_TRUE(srv.status.ok());

  // Post pass back on the switch.
  const auto post = interp.RunPartition(
      pkt, sw_state, 0, split.plan, partition::Part::kPost,
      &split.plan.to_switch, &srv.transfer_out, nullptr);
  ASSERT_TRUE(post.status.ok());

  EXPECT_TRUE(srv.verdict.decided() || post.verdict.decided());
  EXPECT_EQ(pkt.ip().daddr, ref.ip().daddr)
      << "split execution must match the monolithic run";
}

TEST(PartitionedExecution, FullyOffloadedPathNeedsNoServer) {
  MiddleboxBuilder mb("offload_all");
  auto& b = mb.b();
  const Reg ttl = b.HeaderRead(HeaderField::kIpTtl, "ttl");
  const Reg minus = b.Alu(AluOp::kSub, R(ttl), Imm(1), Width::kU8, "minus");
  b.HeaderWrite(HeaderField::kIpTtl, R(minus));
  b.Send(Imm(1));
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  partition::Partitioner partitioner(**fn, {});
  auto plan = partitioner.Run();
  ASSERT_TRUE(plan.ok());

  Interpreter interp(**fn);
  HostStateStore state(**fn);
  net::Packet pkt = TestPacket();
  const auto pre = interp.RunPartition(pkt, state, 0, *plan,
                                       partition::Part::kPre, nullptr,
                                       nullptr, &plan->to_server);
  ASSERT_TRUE(pre.status.ok());
  EXPECT_FALSE(pre.needs_server);
  EXPECT_EQ(pre.verdict.kind, Verdict::Kind::kSend);
  EXPECT_EQ(pkt.ip().ttl, 63);
}

TEST(TransferPacking, PackUnpackRoundTrip) {
  MiddleboxBuilder mb("xfer");
  auto& b = mb.b();
  const Reg c1 = b.Alu(AluOp::kEq, Imm(1), Imm(1), "c1");        // u1
  const Reg v32 = b.Assign(Imm(0xdeadbeef), Width::kU32, "v32");
  const Reg v64 = b.Assign(Imm(0x1122334455667788ull), Width::kU64, "v64");
  (void)c1; (void)v32; (void)v64;
  b.Ret();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());

  partition::TransferSpec spec;
  spec.cond_regs = {c1};
  spec.var_regs = {v32, v64};

  TransferValues values;
  values.cond_values = {1};
  values.var_values = {0xdeadbeef, 0x1122334455667788ull};

  const net::GalliumHeader header = PackTransfer(**fn, spec, values);
  EXPECT_EQ(header.cond_bits & 1, 1u);
  EXPECT_EQ(header.vars.size(), 3u) << "u64 takes two 32-bit slots";

  auto unpacked = UnpackTransfer(**fn, spec, header);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(unpacked->cond_values, values.cond_values);
  EXPECT_EQ(unpacked->var_values, values.var_values);
}

TEST(TransferPacking, UnpackRejectsShortHeader) {
  MiddleboxBuilder mb("short");
  auto& b = mb.b();
  const Reg v = b.Assign(Imm(1), Width::kU64, "v");
  b.Ret();
  auto fn = std::move(mb).Finish();
  ASSERT_TRUE(fn.ok());
  partition::TransferSpec spec;
  spec.var_regs = {v};
  net::GalliumHeader header;
  header.vars = {1};  // u64 needs two slots
  EXPECT_FALSE(UnpackTransfer(**fn, spec, header).ok());
}

}  // namespace
}  // namespace gallium::runtime
