// Authoring tutorial: build a new middlebox from scratch against the
// Click-style frontend, compile it with Gallium, and deploy it offloaded.
//
// The middlebox is a simple UDP/DNS response rate limiter (a DDoS
// mitigation): it counts DNS responses (UDP sport 53) per client and drops
// responses to clients whose count exceeds a threshold. The per-client
// counter table lands on the switch (reads at line rate); counter updates
// go through the server, which synchronizes them back — so enforcement of
// an already-exceeded limit costs the server nothing.
#include <cstdio>

#include "core/compiler.h"
#include "frontend/middlebox_builder.h"
#include "runtime/offloaded_middlebox.h"
#include "workload/packet_gen.h"

using namespace gallium;
using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

namespace {

constexpr uint64_t kLimit = 10;  // responses per client per window

Result<mbox::MiddleboxSpec> BuildDnsRateLimiter() {
  MiddleboxBuilder mb("dns_rate_limiter");
  // client address -> (count, blocked flag). Annotated so the table can
  // live on the switch (§4.3.1).
  auto counters = mb.DeclareMap("client_counters", {Width::kU32},
                                {Width::kU32, Width::kU8},
                                /*max_entries=*/65536);

  auto& b = mb.b();
  const ir::Reg proto = b.HeaderRead(HeaderField::kIpProto, "proto");
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const ir::Reg daddr = b.HeaderRead(HeaderField::kIpDst, "client");

  const ir::Reg is_udp = b.Alu(AluOp::kEq, R(proto), Imm(net::kIpProtoUdp),
                               "is_udp");
  const ir::Reg is_dns = b.Alu(AluOp::kEq, R(sport), Imm(53), "is_dns");
  const ir::Reg is_resp =
      b.Alu(AluOp::kAnd, R(is_udp), R(is_dns), Width::kU1, "is_dns_resp");

  mb.IfElse(
      R(is_resp),
      [&] {
        const auto entry = counters.Find({R(daddr)}, "ctr");
        mb.IfElse(
            R(entry.values[1]),  // blocked flag
            [&] {  // fast path: known-bad client, drop on the switch
              b.Drop();
              b.Ret();
            },
            [&] {  // count on the server, block when over the limit
              const ir::Reg next = b.Alu(AluOp::kAdd, R(entry.values[0]),
                                         Imm(1), Width::kU32, "next");
              const ir::Reg over =
                  b.Alu(AluOp::kGt, R(next), Imm(kLimit), "over_limit");
              counters.Insert({R(daddr)}, {R(next), R(over)});
              b.Send(Imm(mbox::kPortInternal));
              b.Ret();
            });
      },
      [&] {  // non-DNS traffic passes through on the switch
        b.Send(Imm(mbox::kPortInternal));
        b.Ret();
      });

  mbox::MiddleboxSpec spec;
  spec.name = "dns_rate_limiter";
  spec.description = "DNS response rate limiter (authoring tutorial)";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());
  return spec;
}

}  // namespace

int main() {
  auto spec = BuildDnsRateLimiter();
  if (!spec.ok()) {
    std::printf("build failed: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  // Compile and show what Gallium decided.
  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec->fn);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n",
                compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("== dns_rate_limiter compiled ==\n%s",
              compiled->plan.Summary(*spec->fn).c_str());

  // Deploy and attack.
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec);
  if (!mbx.ok()) return 1;

  const net::FiveTuple dns_response{net::MakeIpv4(172, 16, 0, 53),
                                    net::MakeIpv4(192, 168, 0, 42), 53,
                                    33333, net::kIpProtoUdp};
  int forwarded = 0, dropped = 0, dropped_on_switch = 0;
  for (int i = 0; i < 40; ++i) {
    net::Packet pkt = net::MakeUdpPacket(dns_response, 512);
    pkt.set_ingress_port(mbox::kPortExternal);
    auto outcome = (*mbx)->Process(pkt);
    if (!outcome.status.ok()) {
      std::printf("runtime error: %s\n", outcome.status.ToString().c_str());
      return 1;
    }
    if (outcome.verdict.kind == runtime::Verdict::Kind::kDrop) {
      ++dropped;
      dropped_on_switch += outcome.fast_path;
    } else {
      ++forwarded;
    }
  }
  std::printf(
      "\n40 DNS responses to one client (limit %llu):\n"
      "  forwarded: %d\n  dropped:   %d (%d of them by the switch alone)\n",
      static_cast<unsigned long long>(kLimit), forwarded, dropped,
      dropped_on_switch);
  std::printf(
      "\nOnce the client crossed the limit, the blocked flag was\n"
      "synchronized to the switch table and every further response was\n"
      "dropped at line rate without touching the server.\n");

  // Legitimate traffic still flows.
  net::Packet web = net::MakeTcpPacket({net::MakeIpv4(172, 16, 0, 1),
                                        net::MakeIpv4(192, 168, 0, 42), 80,
                                        5555, net::kIpProtoTcp},
                                       net::kTcpAck, 400);
  web.set_ingress_port(mbox::kPortExternal);
  auto outcome = (*mbx)->Process(web);
  std::printf("\nnon-DNS packet: %s (%s)\n",
              outcome.verdict.kind == runtime::Verdict::Kind::kSend
                  ? "forwarded"
                  : "dropped",
              outcome.fast_path ? "switch fast path" : "server");
  return 0;
}
