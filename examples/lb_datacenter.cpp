// The L4 load balancer on a datacenter-style workload: CONGA-like flow
// sizes, connection affinity on the switch, RST/FIN garbage collection on
// the slow path, and the server-side idle-flow collector (the five-minute
// timeout of §6.1) synchronizing deletions back to the switch.
#include <cstdio>
#include <map>

#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "workload/flow_dist.h"
#include "workload/packet_gen.h"

int main() {
  using namespace gallium;

  auto spec = mbox::BuildLoadBalancer(/*num_backends=*/16);
  if (!spec.ok()) return 1;
  const ir::StateIndex flows_map = spec->MapIndex("flows");
  const ir::StateIndex created_map = spec->MapIndex("flow_created");

  auto mbx = runtime::OffloadedMiddlebox::Create(*spec);
  if (!mbx.ok()) {
    std::printf("deploy failed: %s\n", mbx.status().ToString().c_str());
    return 1;
  }

  Rng rng(7);
  const auto sizes =
      workload::DrawFlowSizes(workload::WorkloadKind::kEnterprise, 200, rng);

  std::printf("== 200 enterprise flows through the offloaded L4 LB ==\n");
  std::map<uint32_t, int> backend_conns;
  uint64_t now_ms = 0;
  int completed_with_fin = 0;
  for (size_t f = 0; f < sizes.size(); ++f) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    // Short flows: cap packetization for the example's runtime.
    const uint64_t bytes = std::min<uint64_t>(sizes[f], 200000);
    uint32_t assigned = 0;
    for (net::Packet& pkt : workload::TcpFlowPackets(flow, bytes)) {
      pkt.set_ingress_port(mbox::kPortInternal);
      now_ms += 1;
      auto outcome = (*mbx)->Process(pkt, now_ms);
      if (!outcome.status.ok()) {
        std::printf("runtime error: %s\n", outcome.status.ToString().c_str());
        return 1;
      }
      if (outcome.verdict.kind == runtime::Verdict::Kind::kSend) {
        assigned = outcome.out_packet.ip().daddr;
      }
    }
    backend_conns[assigned] += 1;
    ++completed_with_fin;
  }

  std::printf("  connections spread over %zu backends:\n",
              backend_conns.size());
  for (const auto& [backend, count] : backend_conns) {
    std::printf("    %-16s %3d connections\n",
                net::Ipv4ToString(backend).c_str(), count);
  }
  std::printf("  fast-path fraction: %.3f\n", (*mbx)->FastPathFraction());
  std::printf("  flows still tracked after FIN GC: %zu (FIN deletes the "
              "affinity entry)\n",
              (*mbx)->server_state().MapSize(flows_map));

  // Leave some flows dangling (no FIN) and run the idle collector.
  std::printf("\n== Idle-flow collection (5-minute timeout) ==\n");
  for (int i = 0; i < 10; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    net::Packet syn = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    now_ms += 1;
    (void)(*mbx)->Process(syn, now_ms);
  }
  std::printf("  tracked flows before collection: %zu\n",
              (*mbx)->server_state().MapSize(flows_map));
  auto collected = (*mbx)->CollectIdleFlows(flows_map, created_map,
                                            now_ms + 5 * 60 * 1000 + 1,
                                            5 * 60 * 1000);
  if (!collected.ok()) {
    std::printf("collection failed: %s\n",
                collected.status().ToString().c_str());
    return 1;
  }
  std::printf("  collected %d idle flows; tracked now: %zu "
              "(switch tables synchronized)\n",
              *collected, (*mbx)->server_state().MapSize(flows_map));

  auto* table = (*mbx)->device().table(flows_map);
  std::printf("  switch affinity table entries: %zu (matches the server)\n",
              table != nullptr ? table->size() : 0);
  (void)completed_with_fin;
  return 0;
}
