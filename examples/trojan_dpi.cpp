// The trojan detector: per-host protocol-sequence tracking with deep packet
// inspection only where it is needed.
//
// Simulates two endhosts:
//   - a clean host browsing the web (all data packets ride the switch), and
//   - an infected host that opens SSH, downloads a file over HTTP, then
//     starts IRC traffic — each stage escalates the host's state on the
//     server, and the IRC packet is dropped.
#include <cstdio>

#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "workload/packet_gen.h"

namespace {

using namespace gallium;

runtime::OffloadedMiddlebox::Outcome Send(
    runtime::OffloadedMiddlebox& mbx, const net::FiveTuple& flow,
    uint8_t flags, const std::string& payload_marker, size_t payload_bytes) {
  net::Packet pkt = net::MakeTcpPacket(flow, flags, payload_bytes);
  if (!payload_marker.empty()) {
    workload::SetPayloadWithMarker(&pkt, payload_marker, payload_bytes);
  }
  pkt.set_ingress_port(mbox::kPortInternal);
  auto outcome = mbx.Process(pkt);
  return outcome;
}

void Describe(const char* what,
              const runtime::OffloadedMiddlebox::Outcome& outcome) {
  std::printf("  %-44s %-18s dpi=%-3s %s\n", what,
              outcome.fast_path ? "switch fast path" : "server slow path",
              outcome.server_stats.payload_ops > 0 ? "yes" : "no",
              outcome.verdict.kind == runtime::Verdict::Kind::kDrop
                  ? "** DROPPED **"
                  : "forwarded");
}

}  // namespace

int main() {
  auto spec = mbox::BuildTrojanDetector();
  if (!spec.ok()) return 1;
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec);
  if (!mbx.ok()) {
    std::printf("deploy failed: %s\n", mbx.status().ToString().c_str());
    return 1;
  }

  const net::Ipv4Addr clean_host = net::MakeIpv4(192, 168, 1, 10);
  const net::Ipv4Addr infected_host = net::MakeIpv4(192, 168, 1, 66);
  const net::Ipv4Addr web = net::MakeIpv4(172, 16, 0, 1);
  const net::Ipv4Addr irc_server = net::MakeIpv4(172, 16, 0, 9);

  std::printf("== Clean host: ordinary web browsing ==\n");
  {
    const net::FiveTuple flow{clean_host, web, 40001, 80, net::kIpProtoTcp};
    Describe("SYN to web server",
             Send(**mbx, flow, net::kTcpSyn, "", 0));
    Describe("HTTP GET (data)",
             Send(**mbx, flow, net::kTcpAck | net::kTcpPsh,
                  mbox::kPatternHttpGet, 400));
    Describe("more data packets",
             Send(**mbx, flow, net::kTcpAck, "", 1200));
  }

  std::printf("\n== Infected host: SSH -> download -> IRC ==\n");
  {
    const net::FiveTuple ssh{infected_host, web, 40002, 22, net::kIpProtoTcp};
    Describe("stage 1: SSH SYN (host flagged)",
             Send(**mbx, ssh, net::kTcpSyn, "", 0));

    const net::FiveTuple http{infected_host, web, 40003, 80,
                              net::kIpProtoTcp};
    Describe("HTTP SYN", Send(**mbx, http, net::kTcpSyn, "", 0));
    Describe("stage 2: file download (DPI on server)",
             Send(**mbx, http, net::kTcpAck | net::kTcpPsh,
                  mbox::kPatternHttpGet, 600));

    const net::FiveTuple irc{infected_host, irc_server, 40004, 6667,
                             net::kIpProtoTcp};
    Describe("IRC SYN", Send(**mbx, irc, net::kTcpSyn, "", 0));
    Describe("stage 3: IRC traffic (detected!)",
             Send(**mbx, irc, net::kTcpAck | net::kTcpPsh,
                  mbox::kPatternIrc, 200));
  }

  std::printf("\n== Clean host is unaffected ==\n");
  {
    const net::FiveTuple flow{clean_host, web, 40005, 80, net::kIpProtoTcp};
    Describe("SYN", Send(**mbx, flow, net::kTcpSyn, "", 0));
    Describe("data packet",
             Send(**mbx, flow, net::kTcpAck, "", 1000));
  }

  std::printf(
      "\nHost-stage table after the run (server copy == switch copy):\n");
  const ir::StateIndex host_stage = spec->MapIndex("host_stage");
  for (const auto& [key, value] :
       (*mbx)->server_state().map_contents(host_stage)) {
    std::printf("  host %-16s stage %llu\n",
                net::Ipv4ToString(static_cast<uint32_t>(key[0])).c_str(),
                static_cast<unsigned long long>(value[0]));
  }
  return 0;
}
