// Quickstart: compile a middlebox with Gallium and run it offloaded.
//
// This walks the full pipeline on MiniLB (the paper's running example):
//   1. author the middlebox against the Click-style frontend,
//   2. compile: dependency extraction -> partitioning -> P4 + C++ codegen,
//   3. deploy on the simulated switch + server pair,
//   4. send packets and watch the fast path and the slow path at work.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "core/compiler.h"
#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "workload/packet_gen.h"

int main() {
  using namespace gallium;

  // --- 1. The input middlebox ---------------------------------------------
  auto spec = mbox::BuildMiniLb(/*num_backends=*/8);
  if (!spec.ok()) {
    std::printf("build failed: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("== Input middlebox: %s ==\n%s\n", spec->name.c_str(),
              spec->description.c_str());

  // --- 2. Compile -----------------------------------------------------------
  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec->fn);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", compiled->plan.Summary(*spec->fn).c_str());
  std::printf("Generated %d lines of P4 and %d lines of server C++.\n\n",
              compiled->p4_loc, compiled->server_loc);

  // --- 3. Deploy -------------------------------------------------------------
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec);
  if (!mbx.ok()) {
    std::printf("deploy failed: %s\n", mbx.status().ToString().c_str());
    return 1;
  }

  // --- 4. Traffic --------------------------------------------------------------
  Rng rng(1);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  std::printf("Sending a 3-packet TCP flow %s\n", flow.ToString().c_str());
  int n = 0;
  for (net::Packet& pkt : workload::TcpFlowPackets(flow, 2000)) {
    pkt.set_ingress_port(mbox::kPortInternal);
    auto outcome = (*mbx)->Process(pkt);
    if (!outcome.status.ok()) {
      std::printf("runtime error: %s\n", outcome.status.ToString().c_str());
      return 1;
    }
    std::printf("  packet %d: %s path%s", ++n,
                outcome.fast_path ? "FAST (switch only)" : "slow (server)",
                outcome.state_synced ? ", state synced to switch" : "");
    if (outcome.verdict.kind == runtime::Verdict::Kind::kSend) {
      std::printf(" -> backend %s\n",
                  net::Ipv4ToString(outcome.out_packet.ip().daddr).c_str());
    } else {
      std::printf(" -> dropped\n");
    }
  }
  std::printf(
      "\nFast-path fraction: %.2f (first packet installs the mapping via "
      "the\nserver; every later packet is handled by the switch alone)\n",
      (*mbx)->FastPathFraction());
  return 0;
}
