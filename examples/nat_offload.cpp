// MazuNAT offloaded end to end: bidirectional address translation with the
// translation tables on the switch and port allocation driven from the
// server, exactly as §6.2 describes.
//
// The example prints the generated P4 program's table inventory, then runs
// outbound connections (which allocate ports on the slow path) and their
// inbound replies (which ride the switch fast path), and finally shows the
// replicated-state bookkeeping.
#include <cstdio>

#include "core/compiler.h"
#include "mbox/middleboxes.h"
#include "runtime/offloaded_middlebox.h"
#include "workload/packet_gen.h"

int main() {
  using namespace gallium;

  auto spec = mbox::BuildMazuNat();
  if (!spec.ok()) return 1;

  core::Compiler compiler;
  auto compiled = compiler.Compile(*spec->fn);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("== MazuNAT -> P4 tables ==\n");
  for (const auto& table : compiled->p4_program.tables) {
    std::printf("  %-24s size=%-8d %s\n", table.name.c_str(), table.size,
                table.is_write_back ? "(write-back shadow)" : "");
  }

  auto mbx = runtime::OffloadedMiddlebox::Create(*spec);
  if (!mbx.ok()) {
    std::printf("deploy failed: %s\n", mbx.status().ToString().c_str());
    return 1;
  }

  Rng rng(42);
  std::printf("\n== Outbound connections (internal -> external) ==\n");
  std::vector<net::FiveTuple> flows;
  std::vector<uint16_t> allocated;
  for (int i = 0; i < 5; ++i) {
    const net::FiveTuple flow = workload::RandomFlow(rng);
    flows.push_back(flow);
    net::Packet syn = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
    syn.set_ingress_port(mbox::kPortInternal);
    auto outcome = (*mbx)->Process(syn);
    if (!outcome.status.ok() ||
        outcome.verdict.kind != runtime::Verdict::Kind::kSend) {
      std::printf("unexpected outcome\n");
      return 1;
    }
    allocated.push_back(outcome.out_packet.sport());
    std::printf(
        "  %-46s -> %s:%u  (slow path, sync %.0f us)\n",
        flow.ToString().c_str(),
        net::Ipv4ToString(outcome.out_packet.ip().saddr).c_str(),
        outcome.out_packet.sport(), outcome.sync_latency_us);
  }

  std::printf("\n== Established traffic rides the fast path ==\n");
  int fast = 0, total = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    // More outbound data packets.
    for (int k = 0; k < 20; ++k) {
      net::Packet data = net::MakeTcpPacket(flows[i], net::kTcpAck, 1000);
      data.set_ingress_port(mbox::kPortInternal);
      auto outcome = (*mbx)->Process(data);
      fast += outcome.fast_path;
      ++total;
    }
    // Inbound replies addressed to the allocated external port.
    net::FiveTuple reply{flows[i].daddr, mbox::kNatExternalIp,
                         flows[i].dport, allocated[i], net::kIpProtoTcp};
    net::Packet in = net::MakeTcpPacket(reply, net::kTcpAck, 1000);
    in.set_ingress_port(mbox::kPortExternal);
    auto outcome = (*mbx)->Process(in);
    fast += outcome.fast_path;
    ++total;
    std::printf("  reply to ext port %-6u -> internal %s:%u  (%s)\n",
                allocated[i],
                net::Ipv4ToString(outcome.out_packet.ip().daddr).c_str(),
                outcome.out_packet.dport(),
                outcome.fast_path ? "fast path" : "slow path");
  }
  std::printf("  %d/%d established-flow packets on the fast path\n", fast,
              total);

  std::printf("\n== Unsolicited external traffic is dropped on the switch ==\n");
  const net::FiveTuple attacker{net::MakeIpv4(8, 8, 8, 8),
                                mbox::kNatExternalIp, 4444, 50000,
                                net::kIpProtoTcp};
  net::Packet probe = net::MakeTcpPacket(attacker, net::kTcpSyn, 0);
  probe.set_ingress_port(mbox::kPortExternal);
  auto outcome = (*mbx)->Process(probe);
  std::printf("  %s -> %s (%s)\n", attacker.ToString().c_str(),
              outcome.verdict.kind == runtime::Verdict::Kind::kDrop
                  ? "DROPPED"
                  : "sent?!",
              outcome.fast_path ? "fast path" : "slow path");

  std::printf("\n== State ==\n");
  std::printf("  control-plane sync batches: %llu\n",
              static_cast<unsigned long long>((*mbx)->device().sync_batches()));
  std::printf("  fast-path fraction overall: %.3f\n",
              (*mbx)->FastPathFraction());
  return 0;
}
