file(REMOVE_RECURSE
  "CMakeFiles/lb_datacenter.dir/lb_datacenter.cpp.o"
  "CMakeFiles/lb_datacenter.dir/lb_datacenter.cpp.o.d"
  "lb_datacenter"
  "lb_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
