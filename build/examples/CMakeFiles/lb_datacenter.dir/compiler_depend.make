# Empty compiler generated dependencies file for lb_datacenter.
# This may be replaced when dependencies are built.
