file(REMOVE_RECURSE
  "CMakeFiles/trojan_dpi.dir/trojan_dpi.cpp.o"
  "CMakeFiles/trojan_dpi.dir/trojan_dpi.cpp.o.d"
  "trojan_dpi"
  "trojan_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trojan_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
