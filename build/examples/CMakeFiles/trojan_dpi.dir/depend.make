# Empty dependencies file for trojan_dpi.
# This may be replaced when dependencies are built.
