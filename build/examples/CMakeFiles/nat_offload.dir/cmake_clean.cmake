file(REMOVE_RECURSE
  "CMakeFiles/nat_offload.dir/nat_offload.cpp.o"
  "CMakeFiles/nat_offload.dir/nat_offload.cpp.o.d"
  "nat_offload"
  "nat_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
