# Empty dependencies file for nat_offload.
# This may be replaced when dependencies are built.
