# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nat_offload "/root/repo/build/examples/nat_offload")
set_tests_properties(example_nat_offload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lb_datacenter "/root/repo/build/examples/lb_datacenter")
set_tests_properties(example_lb_datacenter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trojan_dpi "/root/repo/build/examples/trojan_dpi")
set_tests_properties(example_trojan_dpi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_middlebox "/root/repo/build/examples/custom_middlebox")
set_tests_properties(example_custom_middlebox PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
