// gallium/runtime.h — middlebox-server runtime for generated code.
// Shipped with Gallium; the generated <middlebox>_server.cc includes this.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace gallium {

struct EthHeader {
  uint64_t dst = 0;  // 48-bit MAC in the low bits
  uint64_t src = 0;
  uint16_t ether_type = 0x0800;
};

struct IpHeader {
  uint32_t saddr = 0;
  uint32_t daddr = 0;
  uint8_t protocol = 6;
  uint8_t ttl = 64;
};

struct TcpHeader {
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
};

// A parsed packet handed to process(). Field layout mirrors the switch's
// header model; L4 ports are demuxed behind accessors.
class Packet {
 public:
  EthHeader* eth() { return &eth_; }
  IpHeader* ip() { return &ip_; }
  TcpHeader* tcp() { return &tcp_; }

  uint16_t l4_sport() const { return sport_; }
  uint16_t l4_dport() const { return dport_; }
  void set_l4_sport(uint64_t v) { sport_ = static_cast<uint16_t>(v); }
  void set_l4_dport(uint64_t v) { dport_ = static_cast<uint16_t>(v); }

  bool payload_contains(const char* pattern) const {
    return payload_.find(pattern) != std::string::npos;
  }
  uint64_t payload_length() const { return payload_.size(); }

  template <typename Header>
  const Header* gallium_header() const {
    return reinterpret_cast<const Header*>(transfer_bytes_.data());
  }

  // Test/driver access.
  std::string& payload() { return payload_; }
  std::vector<uint8_t>& transfer_bytes() { return transfer_bytes_; }

 private:
  EthHeader eth_;
  IpHeader ip_;
  TcpHeader tcp_;
  uint16_t sport_ = 0;
  uint16_t dport_ = 0;
  std::string payload_;
  std::vector<uint8_t> transfer_bytes_ = std::vector<uint8_t>(256, 0);
};

struct Verdict {
  enum Action { kNone, kSend, kDrop };
  Action action = kNone;
  uint64_t send_port = 0;
};

// Staging interface to the switch control plane (§4.3.3): inserts/deletes
// accumulate in the write-back tables and CommitAtomic() performs the
// bit-flip protocol. This host-side stub records the operations; the
// deployment links the real SDK-backed implementation.
class SwitchSync {
 public:
  using Key = std::vector<uint64_t>;
  using Value = std::vector<uint64_t>;

  void StageInsert(const std::string& table, Key key, Value value) {
    staged_.push_back({table, std::move(key), std::move(value), false});
  }
  void StageDelete(const std::string& table, Key key) {
    staged_.push_back({table, std::move(key), {}, true});
  }
  void StageRegister(const std::string& reg, uint64_t value) {
    registers_.push_back({reg, value});
  }
  bool HasStagedUpdates() const {
    return !staged_.empty() || !registers_.empty();
  }
  void CommitAtomic() {
    ++commits_;
    staged_.clear();
    registers_.clear();
  }
  uint64_t commits() const { return commits_; }

 private:
  struct StagedEntry {
    std::string table;
    Key key;
    Value value;
    bool is_delete;
  };
  std::vector<StagedEntry> staged_;
  std::vector<std::pair<std::string, uint64_t>> registers_;
  uint64_t commits_ = 0;
};

inline uint64_t hash_mix(uint64_t a, uint64_t b) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t v : {a, b}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

inline uint64_t now_msec() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace gallium
