// gallium/dpdk_glue.h — I/O shim for generated server programs.
// The production build maps these onto rte_eth burst APIs; this host-side
// version lets the artifact compile and run standalone.
#pragma once

#include <vector>

#include "gallium/runtime.h"

namespace gallium {

inline void DpdkInit(int argc, char** argv) {
  (void)argc;
  (void)argv;
}

class RxTxLoop {
 public:
  explicit RxTxLoop(int port) : port_(port) {}

  std::vector<Packet> RxBurst() { return {}; }

  void Dispatch(Packet&& pkt, const Verdict& verdict) {
    (void)pkt;
    (void)verdict;
  }

  int port() const { return port_; }

 private:
  int port_;
};

}  // namespace gallium
