class l4_lb : public Element {
  HashMap<Key5, Value1> flows;  // max_entries=131072
  HashMap<Key5, Value1> flow_created;  // max_entries=0
  Vector<uint32_t> backends;  // max_size=64

  void process(Packet* pkt) {
  bb0:  // entry
    uint32_t saddr = ip->saddr;
    uint32_t daddr = ip->daddr;
    uint16_t sport = l4->sport;
    uint16_t dport = l4->dport;
    uint8_t proto = ip->protocol;
    uint8_t flags = tcp->flags;
    auto* flow_found_ptr = flows.find({saddr, daddr, sport, dport, proto});
    bool is_tcp = proto == 6u;
    uint8_t fin_rst = flags & 5u;
    bool has_fin_rst = fin_rst != 0u;
    bool teardown = is_tcp & has_fin_rst;
    if (teardown) goto bb1; else goto bb2;
  bb1:  // if_then
    if (flow_found) goto bb4; else goto bb5;
  bb2:  // if_else
    if (flow_found) goto bb7; else goto bb8;
  bb3:  // if_join
    return;
  bb4:  // if_then
    flows.erase({saddr, daddr, sport, dport, proto});
    flow_created.erase({saddr, daddr, sport, dport, proto});
    ip->daddr = flow_v0;
    output(1u).push(pkt);
    return;
  bb5:  // if_else
    output(1u).push(pkt);
    return;
  bb6:  // if_join
    goto bb3;
  bb7:  // if_then
    ip->daddr = flow_v0;
    output(1u).push(pkt);
    return;
  bb8:  // if_else
    uint32_t nbackends = backends.size();
    uint64_t h1 = hash_mix(saddr, daddr);
    uint32_t ports_hi = sport << 16u;
    uint32_t ports = ports_hi | dport;
    uint64_t h2 = hash_mix(h1, ports);
    uint32_t idx = h2 % nbackends;
    uint32_t bk_new = backends[idx];
    uint64_t created_ms = Timestamp::now_msec();
    flows.insert({saddr, daddr, sport, dport, proto, bk_new});
    flow_created.insert({saddr, daddr, sport, dport, proto, created_ms});
    ip->daddr = bk_new;
    output(1u).push(pkt);
    return;
  bb9:  // if_join
    goto bb3;
  }
};
