class mazu_nat : public Element {
  HashMap<Key2, Value1> nat_out;  // max_entries=65536
  HashMap<Key1, Value2> nat_in;  // max_entries=65536
  uint16_t port_counter = 1024;

  void process(Packet* pkt) {
  bb0:  // entry
    uint32_t ingress = pkt->ingress_port();
    uint32_t saddr = ip->saddr;
    uint16_t sport = l4->sport;
    uint16_t dport = l4->dport;
    bool from_internal = ingress == 0u;
    if (from_internal) goto bb1; else goto bb2;
  bb1:  // if_then
    auto* out_found_ptr = nat_out.find({saddr, sport});
    if (out_found) goto bb4; else goto bb5;
  bb2:  // if_else
    auto* in_found_ptr = nat_in.find({dport});
    if (in_found) goto bb7; else goto bb8;
  bb3:  // if_join
    return;
  bb4:  // if_then
    ip->saddr = 167772161u;
    l4->sport = out_v0;
    output(1u).push(pkt);
    return;
  bb5:  // if_else
    uint16_t alloc_port = port_counter;
    uint16_t next_port = alloc_port + 1u;
    port_counter = next_port;
    nat_out.insert({saddr, sport, alloc_port});
    nat_in.insert({alloc_port, saddr, sport});
    ip->saddr = 167772161u;
    l4->sport = alloc_port;
    output(1u).push(pkt);
    return;
  bb6:  // if_join
    goto bb3;
  bb7:  // if_then
    ip->daddr = in_v0;
    l4->dport = in_v1;
    output(0u).push(pkt);
    return;
  bb8:  // if_else
    pkt->kill();
    return;
  bb9:  // if_join
    goto bb3;
  }
};
