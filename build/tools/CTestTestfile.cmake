# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_galliumc_nat "/root/repo/build/tools/galliumc" "nat" "--out" "/root/repo/build/tools")
set_tests_properties(tool_galliumc_nat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_galliumc_weighted "/root/repo/build/tools/galliumc" "lb" "--objective" "weighted" "--optimize" "--out" "/root/repo/build/tools")
set_tests_properties(tool_galliumc_weighted PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_galliumc_usage "/root/repo/build/tools/galliumc")
set_tests_properties(tool_galliumc_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
