file(REMOVE_RECURSE
  "CMakeFiles/galliumc.dir/galliumc.cc.o"
  "CMakeFiles/galliumc.dir/galliumc.cc.o.d"
  "galliumc"
  "galliumc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galliumc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
