# Empty dependencies file for galliumc.
# This may be replaced when dependencies are built.
