# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/table1_loc")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2 "/root/repo/build/bench/table2_latency")
set_tests_properties(bench_smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table3 "/root/repo/build/bench/table3_state_sync")
set_tests_properties(bench_smoke_table3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_constraints "/root/repo/build/bench/ablation_constraints")
set_tests_properties(bench_smoke_ablation_constraints PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_fastpath "/root/repo/build/bench/ablation_fastpath")
set_tests_properties(bench_smoke_ablation_fastpath PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
