# Empty compiler generated dependencies file for ablation_fastpath.
# This may be replaced when dependencies are built.
