file(REMOVE_RECURSE
  "CMakeFiles/figure9_fct.dir/figure9_fct.cc.o"
  "CMakeFiles/figure9_fct.dir/figure9_fct.cc.o.d"
  "figure9_fct"
  "figure9_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure9_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
