# Empty dependencies file for figure9_fct.
# This may be replaced when dependencies are built.
