file(REMOVE_RECURSE
  "CMakeFiles/table3_state_sync.dir/table3_state_sync.cc.o"
  "CMakeFiles/table3_state_sync.dir/table3_state_sync.cc.o.d"
  "table3_state_sync"
  "table3_state_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_state_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
