# Empty dependencies file for figure7_throughput.
# This may be replaced when dependencies are built.
