file(REMOVE_RECURSE
  "CMakeFiles/figure7_throughput.dir/figure7_throughput.cc.o"
  "CMakeFiles/figure7_throughput.dir/figure7_throughput.cc.o.d"
  "figure7_throughput"
  "figure7_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
