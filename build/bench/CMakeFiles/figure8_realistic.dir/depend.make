# Empty dependencies file for figure8_realistic.
# This may be replaced when dependencies are built.
