file(REMOVE_RECURSE
  "CMakeFiles/figure8_realistic.dir/figure8_realistic.cc.o"
  "CMakeFiles/figure8_realistic.dir/figure8_realistic.cc.o.d"
  "figure8_realistic"
  "figure8_realistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
