# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("ir")
subdirs("frontend")
subdirs("analysis")
subdirs("partition")
subdirs("p4")
subdirs("cppgen")
subdirs("switchsim")
subdirs("sim")
subdirs("perf")
subdirs("runtime")
subdirs("mbox")
subdirs("click")
subdirs("workload")
subdirs("core")
