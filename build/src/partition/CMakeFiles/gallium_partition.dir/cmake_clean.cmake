file(REMOVE_RECURSE
  "CMakeFiles/gallium_partition.dir/partitioner.cc.o"
  "CMakeFiles/gallium_partition.dir/partitioner.cc.o.d"
  "CMakeFiles/gallium_partition.dir/plan.cc.o"
  "CMakeFiles/gallium_partition.dir/plan.cc.o.d"
  "libgallium_partition.a"
  "libgallium_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
