file(REMOVE_RECURSE
  "libgallium_partition.a"
)
