# Empty dependencies file for gallium_partition.
# This may be replaced when dependencies are built.
