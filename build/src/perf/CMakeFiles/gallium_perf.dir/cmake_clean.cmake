file(REMOVE_RECURSE
  "CMakeFiles/gallium_perf.dir/cost_model.cc.o"
  "CMakeFiles/gallium_perf.dir/cost_model.cc.o.d"
  "CMakeFiles/gallium_perf.dir/harness.cc.o"
  "CMakeFiles/gallium_perf.dir/harness.cc.o.d"
  "libgallium_perf.a"
  "libgallium_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
