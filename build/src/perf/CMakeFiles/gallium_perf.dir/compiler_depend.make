# Empty compiler generated dependencies file for gallium_perf.
# This may be replaced when dependencies are built.
