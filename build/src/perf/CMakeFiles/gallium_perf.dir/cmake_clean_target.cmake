file(REMOVE_RECURSE
  "libgallium_perf.a"
)
