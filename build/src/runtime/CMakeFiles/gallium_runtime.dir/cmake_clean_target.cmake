file(REMOVE_RECURSE
  "libgallium_runtime.a"
)
