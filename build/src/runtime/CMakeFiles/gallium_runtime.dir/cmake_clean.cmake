file(REMOVE_RECURSE
  "CMakeFiles/gallium_runtime.dir/interpreter.cc.o"
  "CMakeFiles/gallium_runtime.dir/interpreter.cc.o.d"
  "CMakeFiles/gallium_runtime.dir/offloaded_middlebox.cc.o"
  "CMakeFiles/gallium_runtime.dir/offloaded_middlebox.cc.o.d"
  "CMakeFiles/gallium_runtime.dir/software_middlebox.cc.o"
  "CMakeFiles/gallium_runtime.dir/software_middlebox.cc.o.d"
  "CMakeFiles/gallium_runtime.dir/state.cc.o"
  "CMakeFiles/gallium_runtime.dir/state.cc.o.d"
  "libgallium_runtime.a"
  "libgallium_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
