
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/interpreter.cc" "src/runtime/CMakeFiles/gallium_runtime.dir/interpreter.cc.o" "gcc" "src/runtime/CMakeFiles/gallium_runtime.dir/interpreter.cc.o.d"
  "/root/repo/src/runtime/offloaded_middlebox.cc" "src/runtime/CMakeFiles/gallium_runtime.dir/offloaded_middlebox.cc.o" "gcc" "src/runtime/CMakeFiles/gallium_runtime.dir/offloaded_middlebox.cc.o.d"
  "/root/repo/src/runtime/software_middlebox.cc" "src/runtime/CMakeFiles/gallium_runtime.dir/software_middlebox.cc.o" "gcc" "src/runtime/CMakeFiles/gallium_runtime.dir/software_middlebox.cc.o.d"
  "/root/repo/src/runtime/state.cc" "src/runtime/CMakeFiles/gallium_runtime.dir/state.cc.o" "gcc" "src/runtime/CMakeFiles/gallium_runtime.dir/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/gallium_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gallium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mbox/CMakeFiles/gallium_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/gallium_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/gallium_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gallium_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gallium_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gallium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
