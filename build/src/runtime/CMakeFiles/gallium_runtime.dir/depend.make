# Empty dependencies file for gallium_runtime.
# This may be replaced when dependencies are built.
