file(REMOVE_RECURSE
  "CMakeFiles/gallium_p4.dir/ast.cc.o"
  "CMakeFiles/gallium_p4.dir/ast.cc.o.d"
  "CMakeFiles/gallium_p4.dir/codegen.cc.o"
  "CMakeFiles/gallium_p4.dir/codegen.cc.o.d"
  "CMakeFiles/gallium_p4.dir/evaluator.cc.o"
  "CMakeFiles/gallium_p4.dir/evaluator.cc.o.d"
  "CMakeFiles/gallium_p4.dir/parser.cc.o"
  "CMakeFiles/gallium_p4.dir/parser.cc.o.d"
  "libgallium_p4.a"
  "libgallium_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
