# Empty dependencies file for gallium_p4.
# This may be replaced when dependencies are built.
