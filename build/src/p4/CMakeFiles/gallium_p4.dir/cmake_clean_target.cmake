file(REMOVE_RECURSE
  "libgallium_p4.a"
)
