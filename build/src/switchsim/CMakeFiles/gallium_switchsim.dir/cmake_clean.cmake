file(REMOVE_RECURSE
  "CMakeFiles/gallium_switchsim.dir/switch.cc.o"
  "CMakeFiles/gallium_switchsim.dir/switch.cc.o.d"
  "CMakeFiles/gallium_switchsim.dir/table.cc.o"
  "CMakeFiles/gallium_switchsim.dir/table.cc.o.d"
  "libgallium_switchsim.a"
  "libgallium_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
