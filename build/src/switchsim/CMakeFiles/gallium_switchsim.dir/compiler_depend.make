# Empty compiler generated dependencies file for gallium_switchsim.
# This may be replaced when dependencies are built.
