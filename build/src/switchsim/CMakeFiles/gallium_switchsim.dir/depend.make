# Empty dependencies file for gallium_switchsim.
# This may be replaced when dependencies are built.
