file(REMOVE_RECURSE
  "libgallium_switchsim.a"
)
