
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/switch.cc" "src/switchsim/CMakeFiles/gallium_switchsim.dir/switch.cc.o" "gcc" "src/switchsim/CMakeFiles/gallium_switchsim.dir/switch.cc.o.d"
  "/root/repo/src/switchsim/table.cc" "src/switchsim/CMakeFiles/gallium_switchsim.dir/table.cc.o" "gcc" "src/switchsim/CMakeFiles/gallium_switchsim.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/gallium_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gallium_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gallium_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gallium_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
