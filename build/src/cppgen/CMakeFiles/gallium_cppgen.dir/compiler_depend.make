# Empty compiler generated dependencies file for gallium_cppgen.
# This may be replaced when dependencies are built.
