file(REMOVE_RECURSE
  "libgallium_cppgen.a"
)
