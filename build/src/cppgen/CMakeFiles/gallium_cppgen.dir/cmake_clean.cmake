file(REMOVE_RECURSE
  "CMakeFiles/gallium_cppgen.dir/codegen.cc.o"
  "CMakeFiles/gallium_cppgen.dir/codegen.cc.o.d"
  "CMakeFiles/gallium_cppgen.dir/support.cc.o"
  "CMakeFiles/gallium_cppgen.dir/support.cc.o.d"
  "libgallium_cppgen.a"
  "libgallium_cppgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_cppgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
