# Empty dependencies file for gallium_workload.
# This may be replaced when dependencies are built.
