
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flow_dist.cc" "src/workload/CMakeFiles/gallium_workload.dir/flow_dist.cc.o" "gcc" "src/workload/CMakeFiles/gallium_workload.dir/flow_dist.cc.o.d"
  "/root/repo/src/workload/packet_gen.cc" "src/workload/CMakeFiles/gallium_workload.dir/packet_gen.cc.o" "gcc" "src/workload/CMakeFiles/gallium_workload.dir/packet_gen.cc.o.d"
  "/root/repo/src/workload/pcap.cc" "src/workload/CMakeFiles/gallium_workload.dir/pcap.cc.o" "gcc" "src/workload/CMakeFiles/gallium_workload.dir/pcap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/gallium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gallium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
