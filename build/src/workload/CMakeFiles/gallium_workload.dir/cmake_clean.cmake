file(REMOVE_RECURSE
  "CMakeFiles/gallium_workload.dir/flow_dist.cc.o"
  "CMakeFiles/gallium_workload.dir/flow_dist.cc.o.d"
  "CMakeFiles/gallium_workload.dir/packet_gen.cc.o"
  "CMakeFiles/gallium_workload.dir/packet_gen.cc.o.d"
  "CMakeFiles/gallium_workload.dir/pcap.cc.o"
  "CMakeFiles/gallium_workload.dir/pcap.cc.o.d"
  "libgallium_workload.a"
  "libgallium_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
