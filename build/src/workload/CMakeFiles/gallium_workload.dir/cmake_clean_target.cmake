file(REMOVE_RECURSE
  "libgallium_workload.a"
)
