# Empty dependencies file for gallium_sim.
# This may be replaced when dependencies are built.
