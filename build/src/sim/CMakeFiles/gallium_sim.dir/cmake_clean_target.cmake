file(REMOVE_RECURSE
  "libgallium_sim.a"
)
