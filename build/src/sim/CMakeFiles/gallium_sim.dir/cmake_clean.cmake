file(REMOVE_RECURSE
  "CMakeFiles/gallium_sim.dir/fluid.cc.o"
  "CMakeFiles/gallium_sim.dir/fluid.cc.o.d"
  "libgallium_sim.a"
  "libgallium_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
