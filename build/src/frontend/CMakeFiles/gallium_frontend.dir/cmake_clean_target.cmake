file(REMOVE_RECURSE
  "libgallium_frontend.a"
)
