file(REMOVE_RECURSE
  "CMakeFiles/gallium_frontend.dir/middlebox_builder.cc.o"
  "CMakeFiles/gallium_frontend.dir/middlebox_builder.cc.o.d"
  "libgallium_frontend.a"
  "libgallium_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
