# Empty compiler generated dependencies file for gallium_frontend.
# This may be replaced when dependencies are built.
