file(REMOVE_RECURSE
  "CMakeFiles/gallium_util.dir/rng.cc.o"
  "CMakeFiles/gallium_util.dir/rng.cc.o.d"
  "CMakeFiles/gallium_util.dir/status.cc.o"
  "CMakeFiles/gallium_util.dir/status.cc.o.d"
  "CMakeFiles/gallium_util.dir/strings.cc.o"
  "CMakeFiles/gallium_util.dir/strings.cc.o.d"
  "libgallium_util.a"
  "libgallium_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
