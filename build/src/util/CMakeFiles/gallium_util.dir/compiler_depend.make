# Empty compiler generated dependencies file for gallium_util.
# This may be replaced when dependencies are built.
