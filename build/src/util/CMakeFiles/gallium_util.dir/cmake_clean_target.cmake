file(REMOVE_RECURSE
  "libgallium_util.a"
)
