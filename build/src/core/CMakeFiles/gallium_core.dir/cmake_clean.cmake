file(REMOVE_RECURSE
  "CMakeFiles/gallium_core.dir/compiler.cc.o"
  "CMakeFiles/gallium_core.dir/compiler.cc.o.d"
  "libgallium_core.a"
  "libgallium_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
