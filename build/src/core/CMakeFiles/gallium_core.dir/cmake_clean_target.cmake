file(REMOVE_RECURSE
  "libgallium_core.a"
)
