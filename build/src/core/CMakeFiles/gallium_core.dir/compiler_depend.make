# Empty compiler generated dependencies file for gallium_core.
# This may be replaced when dependencies are built.
