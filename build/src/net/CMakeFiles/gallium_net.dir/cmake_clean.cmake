file(REMOVE_RECURSE
  "CMakeFiles/gallium_net.dir/headers.cc.o"
  "CMakeFiles/gallium_net.dir/headers.cc.o.d"
  "CMakeFiles/gallium_net.dir/packet.cc.o"
  "CMakeFiles/gallium_net.dir/packet.cc.o.d"
  "libgallium_net.a"
  "libgallium_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
