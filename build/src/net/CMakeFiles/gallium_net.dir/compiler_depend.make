# Empty compiler generated dependencies file for gallium_net.
# This may be replaced when dependencies are built.
