file(REMOVE_RECURSE
  "libgallium_net.a"
)
