file(REMOVE_RECURSE
  "CMakeFiles/gallium_click.dir/elements.cc.o"
  "CMakeFiles/gallium_click.dir/elements.cc.o.d"
  "CMakeFiles/gallium_click.dir/graph.cc.o"
  "CMakeFiles/gallium_click.dir/graph.cc.o.d"
  "libgallium_click.a"
  "libgallium_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
