file(REMOVE_RECURSE
  "libgallium_click.a"
)
