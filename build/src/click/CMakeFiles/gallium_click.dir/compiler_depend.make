# Empty compiler generated dependencies file for gallium_click.
# This may be replaced when dependencies are built.
