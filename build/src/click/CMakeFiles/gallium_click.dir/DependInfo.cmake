
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/click/elements.cc" "src/click/CMakeFiles/gallium_click.dir/elements.cc.o" "gcc" "src/click/CMakeFiles/gallium_click.dir/elements.cc.o.d"
  "/root/repo/src/click/graph.cc" "src/click/CMakeFiles/gallium_click.dir/graph.cc.o" "gcc" "src/click/CMakeFiles/gallium_click.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/gallium_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/mbox/CMakeFiles/gallium_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gallium_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gallium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gallium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
