file(REMOVE_RECURSE
  "libgallium_ir.a"
)
