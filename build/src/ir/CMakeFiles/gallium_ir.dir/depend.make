# Empty dependencies file for gallium_ir.
# This may be replaced when dependencies are built.
