file(REMOVE_RECURSE
  "CMakeFiles/gallium_ir.dir/builder.cc.o"
  "CMakeFiles/gallium_ir.dir/builder.cc.o.d"
  "CMakeFiles/gallium_ir.dir/function.cc.o"
  "CMakeFiles/gallium_ir.dir/function.cc.o.d"
  "CMakeFiles/gallium_ir.dir/instruction.cc.o"
  "CMakeFiles/gallium_ir.dir/instruction.cc.o.d"
  "CMakeFiles/gallium_ir.dir/passes.cc.o"
  "CMakeFiles/gallium_ir.dir/passes.cc.o.d"
  "CMakeFiles/gallium_ir.dir/printer.cc.o"
  "CMakeFiles/gallium_ir.dir/printer.cc.o.d"
  "CMakeFiles/gallium_ir.dir/types.cc.o"
  "CMakeFiles/gallium_ir.dir/types.cc.o.d"
  "CMakeFiles/gallium_ir.dir/verifier.cc.o"
  "CMakeFiles/gallium_ir.dir/verifier.cc.o.d"
  "libgallium_ir.a"
  "libgallium_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
