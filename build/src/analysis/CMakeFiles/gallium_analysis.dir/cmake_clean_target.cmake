file(REMOVE_RECURSE
  "libgallium_analysis.a"
)
