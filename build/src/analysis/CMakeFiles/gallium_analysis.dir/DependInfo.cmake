
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cc" "src/analysis/CMakeFiles/gallium_analysis.dir/cfg.cc.o" "gcc" "src/analysis/CMakeFiles/gallium_analysis.dir/cfg.cc.o.d"
  "/root/repo/src/analysis/depgraph.cc" "src/analysis/CMakeFiles/gallium_analysis.dir/depgraph.cc.o" "gcc" "src/analysis/CMakeFiles/gallium_analysis.dir/depgraph.cc.o.d"
  "/root/repo/src/analysis/liveness.cc" "src/analysis/CMakeFiles/gallium_analysis.dir/liveness.cc.o" "gcc" "src/analysis/CMakeFiles/gallium_analysis.dir/liveness.cc.o.d"
  "/root/repo/src/analysis/locations.cc" "src/analysis/CMakeFiles/gallium_analysis.dir/locations.cc.o" "gcc" "src/analysis/CMakeFiles/gallium_analysis.dir/locations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/gallium_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gallium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
