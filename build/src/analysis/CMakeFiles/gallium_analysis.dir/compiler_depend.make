# Empty compiler generated dependencies file for gallium_analysis.
# This may be replaced when dependencies are built.
