file(REMOVE_RECURSE
  "CMakeFiles/gallium_analysis.dir/cfg.cc.o"
  "CMakeFiles/gallium_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/gallium_analysis.dir/depgraph.cc.o"
  "CMakeFiles/gallium_analysis.dir/depgraph.cc.o.d"
  "CMakeFiles/gallium_analysis.dir/liveness.cc.o"
  "CMakeFiles/gallium_analysis.dir/liveness.cc.o.d"
  "CMakeFiles/gallium_analysis.dir/locations.cc.o"
  "CMakeFiles/gallium_analysis.dir/locations.cc.o.d"
  "libgallium_analysis.a"
  "libgallium_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
