# Empty compiler generated dependencies file for gallium_mbox.
# This may be replaced when dependencies are built.
