file(REMOVE_RECURSE
  "CMakeFiles/gallium_mbox.dir/firewall.cc.o"
  "CMakeFiles/gallium_mbox.dir/firewall.cc.o.d"
  "CMakeFiles/gallium_mbox.dir/loadbalancer.cc.o"
  "CMakeFiles/gallium_mbox.dir/loadbalancer.cc.o.d"
  "CMakeFiles/gallium_mbox.dir/mazunat.cc.o"
  "CMakeFiles/gallium_mbox.dir/mazunat.cc.o.d"
  "CMakeFiles/gallium_mbox.dir/middleboxes.cc.o"
  "CMakeFiles/gallium_mbox.dir/middleboxes.cc.o.d"
  "CMakeFiles/gallium_mbox.dir/minilb.cc.o"
  "CMakeFiles/gallium_mbox.dir/minilb.cc.o.d"
  "CMakeFiles/gallium_mbox.dir/proxy.cc.o"
  "CMakeFiles/gallium_mbox.dir/proxy.cc.o.d"
  "CMakeFiles/gallium_mbox.dir/router.cc.o"
  "CMakeFiles/gallium_mbox.dir/router.cc.o.d"
  "CMakeFiles/gallium_mbox.dir/trojan_detector.cc.o"
  "CMakeFiles/gallium_mbox.dir/trojan_detector.cc.o.d"
  "libgallium_mbox.a"
  "libgallium_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallium_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
