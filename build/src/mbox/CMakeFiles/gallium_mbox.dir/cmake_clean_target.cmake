file(REMOVE_RECURSE
  "libgallium_mbox.a"
)
