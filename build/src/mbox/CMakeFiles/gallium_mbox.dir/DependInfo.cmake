
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbox/firewall.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/firewall.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/firewall.cc.o.d"
  "/root/repo/src/mbox/loadbalancer.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/loadbalancer.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/loadbalancer.cc.o.d"
  "/root/repo/src/mbox/mazunat.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/mazunat.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/mazunat.cc.o.d"
  "/root/repo/src/mbox/middleboxes.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/middleboxes.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/middleboxes.cc.o.d"
  "/root/repo/src/mbox/minilb.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/minilb.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/minilb.cc.o.d"
  "/root/repo/src/mbox/proxy.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/proxy.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/proxy.cc.o.d"
  "/root/repo/src/mbox/router.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/router.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/router.cc.o.d"
  "/root/repo/src/mbox/trojan_detector.cc" "src/mbox/CMakeFiles/gallium_mbox.dir/trojan_detector.cc.o" "gcc" "src/mbox/CMakeFiles/gallium_mbox.dir/trojan_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/gallium_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gallium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gallium_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gallium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
