# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/switchsim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/p4gen_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/mbox_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/p4exec_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/click_test[1]_include.cmake")
include("/root/repo/build/tests/pcap_test[1]_include.cmake")
include("/root/repo/build/tests/cppgen_compile_test[1]_include.cmake")
include("/root/repo/build/tests/plan_regression_test[1]_include.cmake")
include("/root/repo/build/tests/lpm_test[1]_include.cmake")
