
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interpreter_test.cc" "tests/CMakeFiles/interpreter_test.dir/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/interpreter_test.dir/interpreter_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/click/CMakeFiles/gallium_click.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gallium_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gallium_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gallium_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gallium_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gallium_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/gallium_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/cppgen/CMakeFiles/gallium_cppgen.dir/DependInfo.cmake"
  "/root/repo/build/src/mbox/CMakeFiles/gallium_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/gallium_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/gallium_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gallium_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gallium_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gallium_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gallium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gallium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
