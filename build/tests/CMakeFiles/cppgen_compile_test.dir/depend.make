# Empty dependencies file for cppgen_compile_test.
# This may be replaced when dependencies are built.
