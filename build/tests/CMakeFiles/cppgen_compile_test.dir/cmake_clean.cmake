file(REMOVE_RECURSE
  "CMakeFiles/cppgen_compile_test.dir/cppgen_compile_test.cc.o"
  "CMakeFiles/cppgen_compile_test.dir/cppgen_compile_test.cc.o.d"
  "cppgen_compile_test"
  "cppgen_compile_test.pdb"
  "cppgen_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cppgen_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
