# Empty compiler generated dependencies file for lpm_test.
# This may be replaced when dependencies are built.
