file(REMOVE_RECURSE
  "CMakeFiles/plan_regression_test.dir/plan_regression_test.cc.o"
  "CMakeFiles/plan_regression_test.dir/plan_regression_test.cc.o.d"
  "plan_regression_test"
  "plan_regression_test.pdb"
  "plan_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
