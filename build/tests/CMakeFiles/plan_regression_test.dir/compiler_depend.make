# Empty compiler generated dependencies file for plan_regression_test.
# This may be replaced when dependencies are built.
