file(REMOVE_RECURSE
  "CMakeFiles/p4exec_test.dir/p4exec_test.cc.o"
  "CMakeFiles/p4exec_test.dir/p4exec_test.cc.o.d"
  "p4exec_test"
  "p4exec_test.pdb"
  "p4exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
