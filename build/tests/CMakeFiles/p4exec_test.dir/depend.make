# Empty dependencies file for p4exec_test.
# This may be replaced when dependencies are built.
