#!/usr/bin/env python3
"""Gate a fresh bench RunManifest against its checked-in BENCH baseline.

Usage:
  check_bench_regression.py --baseline BENCH_figure7_throughput.json \
      --current build/figure7_throughput_manifest.json [--tolerance 0.05]

Both files are RunManifest JSON (see bench/bench_common.h). Only the gated
metric families below are compared — everything else in the manifest is
informational. A series present in the baseline but missing from the
current run is a failure (coverage loss), new series in the current run are
fine (they become gated once the baseline is refreshed).

To refresh a baseline after an intentional change, rerun the bench and copy
its manifest over the BENCH_*.json at the repo root in the same PR.
"""

import argparse
import json
import sys

# Metric families the gate enforces, with their improvement direction.
# bench_engine_scaling_x is measured (wall-clock, best-of-N trials); its
# checked-in baseline is pinned at the 3.0 acceptance floor rather than a
# measured value, so the gate enforces "still scales >= ~3x at 4 workers"
# instead of chasing machine-specific throughput. The bench_flow_* series
# from bench/flowscale follow the same pinned-floor convention:
# bench_flow_speedup_x >= 5x over std::map at 10M entries and
# bench_flow_peak_flows = 10M are the flow-table acceptance criteria;
# bench_flow_p99_probe_slots is structural (2 buckets x 4 slots once a
# resize has settled), not wall-clock, so it gates tightly on any machine.
HIGHER_IS_BETTER = {
    "bench_throughput_gbps",
    "bench_fast_path_fraction",
    "bench_engine_scaling_x",
    "bench_flow_speedup_x",
    "bench_flow_peak_flows",
}
LOWER_IS_BETTER = {
    "bench_allocs_per_packet",
    "bench_flight_events_per_packet",
    "bench_sync_latency_us",
    "bench_backlog_latency_per_packet_us",
    "bench_latency_us",
    "bench_flow_p99_probe_slots",
}


def series_key(metric):
    labels = metric.get("labels", {})
    label_str = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{metric['name']}{{{label_str}}}"


def gated_series(manifest):
    out = {}
    for metric in manifest.get("telemetry", {}).get("metrics", []):
        name = metric.get("name", "")
        if name in HIGHER_IS_BETTER or name in LOWER_IS_BETTER:
            out[series_key(metric)] = (name, float(metric["value"]))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative regression (default 5%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = gated_series(json.load(f))
    with open(args.current) as f:
        current = gated_series(json.load(f))

    if not baseline:
        print(f"error: no gated series in baseline {args.baseline}",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for key, (name, base_value) in sorted(baseline.items()):
        if key not in current:
            failures.append(f"{key}: present in baseline, missing from "
                            "current run (coverage loss)")
            continue
        cur_value = current[key][1]
        compared += 1
        if base_value == 0.0:
            # A zero baseline has no relative scale; only a strictly worse
            # nonzero value counts as a regression.
            worse = cur_value > 0 if name in LOWER_IS_BETTER else cur_value < 0
            delta_txt = f"{base_value} -> {cur_value}"
        else:
            change = (cur_value - base_value) / base_value
            worse = (change > args.tolerance if name in LOWER_IS_BETTER
                     else change < -args.tolerance)
            delta_txt = f"{base_value:.4g} -> {cur_value:.4g} ({change:+.1%})"
        if worse:
            direction = ("lower" if name in LOWER_IS_BETTER else
                         "higher") + "-is-better"
            failures.append(f"{key} [{direction}]: {delta_txt} exceeds "
                            f"{args.tolerance:.0%} tolerance")

    if failures:
        print(f"bench regression check FAILED "
              f"({len(failures)} of {len(baseline)} gated series):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("(intentional change? rerun the bench and refresh the "
              "BENCH_*.json baseline in this PR)", file=sys.stderr)
        return 1

    print(f"bench regression check passed: {compared} gated series within "
          f"{args.tolerance:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
