#!/usr/bin/env python3
"""Per-bench trend report over RunManifest history.

Every bench writes a RunManifest (<bench>_manifest.json, see
bench/bench_common.h). This script folds the manifests of the current run
into a history file (JSON lines, one record per bench invocation) and
renders a markdown trend report: per series, the checked-in BENCH baseline,
the recent history, the latest value, and the deltas. CI uploads the report
and the history file as artifacts, so regressions that stay inside the
gate's tolerance are still visible as a drift curve instead of silently
accumulating.

Usage:
  bench_trend.py --manifests build/bench-out --history build/bench_history.jsonl \
      --baseline-dir . --out build/bench_trend.md [--run-label SHA] [--keep N]

Stdlib only; safe to run anywhere the manifests exist.
"""

import argparse
import glob
import json
import os
import sys


def series_key(metric):
    labels = metric.get("labels", {})
    label_str = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{metric['name']}{{{label_str}}}"


def manifest_series(manifest):
    out = {}
    for metric in manifest.get("telemetry", {}).get("metrics", []):
        out[series_key(metric)] = float(metric["value"])
    return out


def load_history(path):
    records = []
    if not os.path.exists(path):
        return records
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a truncated tail entry must not kill the report
    return records


def fmt(value):
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.3f}"


def fmt_delta(cur, ref):
    if ref is None or cur is None:
        return "-"
    if ref == 0:
        return "=" if cur == 0 else f"+{fmt(cur)} abs"
    change = (cur - ref) / ref
    if abs(change) < 5e-4:
        return "="
    return f"{change:+.1%}"


def spark(values):
    """ASCII sparkline of a value series (oldest -> newest)."""
    pts = [v for v in values if v is not None]
    if len(pts) < 2 or min(pts) == max(pts):
        return "·" * len([v for v in values if v is not None])
    lo, hi = min(pts), max(pts)
    glyphs = "▁▂▃▄▅▆▇█"
    out = []
    for v in values:
        if v is None:
            out.append(" ")
        else:
            idx = int((v - lo) / (hi - lo) * (len(glyphs) - 1))
            out.append(glyphs[idx])
    return "".join(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--manifests", required=True,
                        help="directory holding the run's *_manifest.json")
    parser.add_argument("--history", required=True,
                        help="JSONL history file; appended in place")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the BENCH_<bench>.json baselines")
    parser.add_argument("--out", required=True, help="markdown report path")
    parser.add_argument("--run-label", default="",
                        help="label for this run (commit SHA, date, ...)")
    parser.add_argument("--keep", type=int, default=50,
                        help="history entries retained per bench (default 50)")
    args = parser.parse_args()

    paths = sorted(glob.glob(os.path.join(args.manifests, "*_manifest.json")))
    if not paths:
        print(f"error: no *_manifest.json under {args.manifests}",
              file=sys.stderr)
        return 1

    history = load_history(args.history)
    for path in paths:
        with open(path) as f:
            manifest = json.load(f)
        history.append({
            "bench": manifest.get("bench", os.path.basename(path)),
            "label": args.run_label,
            "config": manifest.get("config", {}),
            "series": manifest_series(manifest),
        })

    # Retain a bounded window per bench, oldest first.
    by_bench = {}
    for record in history:
        by_bench.setdefault(record["bench"], []).append(record)
    for bench, records in by_bench.items():
        by_bench[bench] = records[-args.keep:]

    os.makedirs(os.path.dirname(args.history) or ".", exist_ok=True)
    with open(args.history, "w") as f:
        for bench in sorted(by_bench):
            for record in by_bench[bench]:
                f.write(json.dumps(record, separators=(",", ":")) + "\n")

    lines = ["# Bench trends", ""]
    if args.run_label:
        lines.append(f"Latest run: `{args.run_label}`")
        lines.append("")
    for bench in sorted(by_bench):
        records = by_bench[bench]
        latest = records[-1]["series"]
        prev = records[-2]["series"] if len(records) > 1 else {}

        baseline = {}
        baseline_path = os.path.join(args.baseline_dir, f"BENCH_{bench}.json")
        if os.path.exists(baseline_path):
            with open(baseline_path) as f:
                baseline = manifest_series(json.load(f))

        lines.append(f"## {bench} ({len(records)} runs)")
        lines.append("")
        lines.append("| series | baseline | latest | vs baseline | vs prev "
                     f"| trend (last {min(len(records), 20)}) |")
        lines.append("|---|---|---|---|---|---|")
        for key in sorted(latest):
            base = baseline.get(key)
            values = [r["series"].get(key) for r in records[-20:]]
            lines.append(
                f"| `{key}` | {fmt(base)} | {fmt(latest[key])} "
                f"| {fmt_delta(latest[key], base)} "
                f"| {fmt_delta(latest[key], prev.get(key))} "
                f"| {spark(values)} |")
        dropped = sorted(k for k in baseline if k not in latest)
        for key in dropped:
            lines.append(f"| `{key}` | {fmt(baseline[key])} | - | MISSING "
                         "| - | |")
        lines.append("")

    with open(args.out, "w") as f:
        f.write("\n".join(lines) + "\n")
    print(f"wrote trend report for {len(by_bench)} benches "
          f"({sum(len(r) for r in by_bench.values())} history entries) "
          f"to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
