#!/usr/bin/env python3
"""Validate galliumc telemetry exports against the checked-in schemas.

Stdlib-only (no jsonschema dependency): implements the small subset of JSON
Schema the schemas in scripts/schema/ actually use — type, required,
properties, additionalProperties, items, enum, pattern, minimum — which is
enough to catch the failure modes that matter (missing fields, wrong types,
malformed metric names, negative counts).

Usage:
  validate_telemetry.py --metrics FILE.json [--trace FILE.json]
  validate_telemetry.py --trace FILE.json

Beyond the schema, semantic checks:
  - metrics: each histogram's per-bucket counts sum to its total count, and
    at least one gallium_*/bench_* series exists.
  - trace: every "X" event sits on a named lane (an "M" thread_name event
    with the same tid), and per-packet hop sequences start at switch.pre.

Exit code 0 = all supplied files validate; 1 = any violation (printed).
"""

import argparse
import json
import os
import re
import sys

SCHEMA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "schema")


def check(instance, schema, path="$"):
    """Yields error strings for every violation of `schema` by `instance`."""
    stype = schema.get("type")
    if stype is not None:
        types = stype if isinstance(stype, list) else [stype]
        ok = any(_is_type(instance, t) for t in types)
        if not ok:
            yield f"{path}: expected type {stype}, got {type(instance).__name__}"
            return
    if "enum" in schema and instance not in schema["enum"]:
        yield f"{path}: {instance!r} not in enum {schema['enum']}"
    if "pattern" in schema and isinstance(instance, str):
        if not re.match(schema["pattern"], instance):
            yield f"{path}: {instance!r} does not match {schema['pattern']!r}"
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            yield f"{path}: {instance} < minimum {schema['minimum']}"
    if isinstance(instance, dict):
        for req in schema.get("required", []):
            if req not in instance:
                yield f"{path}: missing required key {req!r}"
        props = schema.get("properties", {})
        for key, value in instance.items():
            if key in props:
                yield from check(value, props[key], f"{path}.{key}")
            elif isinstance(schema.get("additionalProperties"), dict):
                yield from check(value, schema["additionalProperties"],
                                 f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            yield from check(item, schema["items"], f"{path}[{i}]")


def _is_type(instance, name):
    if name == "object":
        return isinstance(instance, dict)
    if name == "array":
        return isinstance(instance, list)
    if name == "string":
        return isinstance(instance, str)
    if name == "number":
        return isinstance(instance, (int, float)) and not isinstance(
            instance, bool)
    if name == "boolean":
        return isinstance(instance, bool)
    if name == "null":
        return instance is None
    return False


def semantic_metrics(doc):
    metrics = doc.get("metrics", [])
    if not any(m.get("name", "").startswith(("gallium", "bench")) for m in
               metrics):
        yield "metrics: no gallium_*/bench_* series found (empty scrape?)"
    for i, metric in enumerate(metrics):
        if metric.get("type") != "histogram":
            continue
        buckets = metric.get("buckets", [])
        if not buckets:
            yield f"metrics[{i}]: histogram without buckets"
            continue
        # The JSON export carries per-bucket (non-cumulative) counts; they
        # must add up to the series' total.
        total = sum(b.get("count", 0) for b in buckets)
        if total != metric.get("count"):
            yield (f"metrics[{i}] ({metric.get('name')}): bucket counts sum "
                   f"to {total}, series count is {metric.get('count')}")


def semantic_trace(doc):
    events = doc.get("traceEvents", [])
    named_lanes = {e.get("tid") for e in events if e.get("ph") == "M"
                   and e.get("name") == "thread_name"}
    hops = [e for e in events if e.get("ph") == "X"]
    for i, event in enumerate(hops):
        if event.get("tid") not in named_lanes:
            yield f"traceEvents: X event {i} on unnamed lane tid={event.get('tid')}"
            break
    # Reconstruct per-packet hop sequences: every packet's first hop (by
    # appearance order; hops of one packet are emitted in order) is the
    # switch pre-pass.
    first_hop = {}
    for event in hops:
        pid = event.get("args", {}).get("packet_id")
        if pid is not None and pid not in first_hop:
            first_hop[pid] = event.get("name")
    for pid, name in first_hop.items():
        if name != "switch.pre":
            yield f"packet {pid}: path starts at {name!r}, not 'switch.pre'"


def validate(path, schema_name, semantic):
    schema_path = os.path.join(SCHEMA_DIR, schema_name)
    with open(schema_path) as f:
        schema = json.load(f)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    errors = list(check(doc, schema))
    errors += list(semantic(doc))
    return [f"{path}: {e}" for e in errors]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics JSON (--metrics-out *.json)")
    parser.add_argument("--trace", help="trace JSON (--trace-out)")
    args = parser.parse_args()
    if not args.metrics and not args.trace:
        parser.error("need --metrics and/or --trace")

    errors = []
    if args.metrics:
        errors += validate(args.metrics, "metrics.schema.json",
                           semantic_metrics)
    if args.trace:
        errors += validate(args.trace, "trace.schema.json", semantic_trace)
    for error in errors:
        print(f"validate_telemetry: {error}", file=sys.stderr)
    if not errors:
        checked = [p for p in (args.metrics, args.trace) if p]
        print(f"validate_telemetry: OK ({', '.join(checked)})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
