#!/usr/bin/env python3
"""Validate galliumc telemetry exports against the checked-in schemas.

Stdlib-only (no jsonschema dependency): implements the small subset of JSON
Schema the schemas in scripts/schema/ actually use — type, required,
properties, additionalProperties, items, enum, pattern, minimum — which is
enough to catch the failure modes that matter (missing fields, wrong types,
malformed metric names, negative counts).

Usage:
  validate_telemetry.py --metrics FILE.json [--trace FILE.json]
  validate_telemetry.py --trace FILE.json
  validate_telemetry.py --flight FILE.json
  validate_telemetry.py --prom FILE.prom

Beyond the schema, semantic checks:
  - metrics: each histogram's per-bucket counts sum to its total count, and
    at least one gallium_*/bench_* series exists.
  - trace: every "X" event sits on a named lane (an "M" thread_name event
    with the same tid), and per-packet hop sequences start at switch.pre.
  - flight: version is the current dump version, event seqs are strictly
    increasing, every event's lane is inside the dump's lane count.
  - prom: the Prometheus text exposition parses line-by-line (label escaping
    round-trips), and every histogram expands to monotone cumulative
    buckets with a +Inf bucket equal to its _count series.

Exit code 0 = all supplied files validate; 1 = any violation (printed).
"""

import argparse
import json
import os
import re
import sys

SCHEMA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "schema")


def check(instance, schema, path="$"):
    """Yields error strings for every violation of `schema` by `instance`."""
    stype = schema.get("type")
    if stype is not None:
        types = stype if isinstance(stype, list) else [stype]
        ok = any(_is_type(instance, t) for t in types)
        if not ok:
            yield f"{path}: expected type {stype}, got {type(instance).__name__}"
            return
    if "enum" in schema and instance not in schema["enum"]:
        yield f"{path}: {instance!r} not in enum {schema['enum']}"
    if "pattern" in schema and isinstance(instance, str):
        if not re.match(schema["pattern"], instance):
            yield f"{path}: {instance!r} does not match {schema['pattern']!r}"
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            yield f"{path}: {instance} < minimum {schema['minimum']}"
    if isinstance(instance, dict):
        for req in schema.get("required", []):
            if req not in instance:
                yield f"{path}: missing required key {req!r}"
        props = schema.get("properties", {})
        for key, value in instance.items():
            if key in props:
                yield from check(value, props[key], f"{path}.{key}")
            elif isinstance(schema.get("additionalProperties"), dict):
                yield from check(value, schema["additionalProperties"],
                                 f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            yield from check(item, schema["items"], f"{path}[{i}]")


def _is_type(instance, name):
    if name == "object":
        return isinstance(instance, dict)
    if name == "array":
        return isinstance(instance, list)
    if name == "string":
        return isinstance(instance, str)
    if name == "number":
        return isinstance(instance, (int, float)) and not isinstance(
            instance, bool)
    if name == "boolean":
        return isinstance(instance, bool)
    if name == "null":
        return instance is None
    return False


def semantic_metrics(doc):
    metrics = doc.get("metrics", [])
    if not any(m.get("name", "").startswith(("gallium", "bench")) for m in
               metrics):
        yield "metrics: no gallium_*/bench_* series found (empty scrape?)"
    for i, metric in enumerate(metrics):
        if metric.get("type") != "histogram":
            continue
        buckets = metric.get("buckets", [])
        if not buckets:
            yield f"metrics[{i}]: histogram without buckets"
            continue
        # The JSON export carries per-bucket (non-cumulative) counts; they
        # must add up to the series' total.
        total = sum(b.get("count", 0) for b in buckets)
        if total != metric.get("count"):
            yield (f"metrics[{i}] ({metric.get('name')}): bucket counts sum "
                   f"to {total}, series count is {metric.get('count')}")


def semantic_trace(doc):
    events = doc.get("traceEvents", [])
    named_lanes = {e.get("tid") for e in events if e.get("ph") == "M"
                   and e.get("name") == "thread_name"}
    hops = [e for e in events if e.get("ph") == "X"]
    for i, event in enumerate(hops):
        if event.get("tid") not in named_lanes:
            yield f"traceEvents: X event {i} on unnamed lane tid={event.get('tid')}"
            break
    # Reconstruct per-packet hop sequences: every packet's first hop (by
    # appearance order; hops of one packet are emitted in order) is the
    # switch pre-pass.
    first_hop = {}
    for event in hops:
        pid = event.get("args", {}).get("packet_id")
        if pid is not None and pid not in first_hop:
            first_hop[pid] = event.get("name")
    for pid, name in first_hop.items():
        if name != "switch.pre":
            yield f"packet {pid}: path starts at {name!r}, not 'switch.pre'"


FLIGHT_DUMP_VERSION = 1


def semantic_flight(doc):
    fr = doc.get("flight_recorder", {})
    if fr.get("version") != FLIGHT_DUMP_VERSION:
        yield (f"flight_recorder: version {fr.get('version')!r}, expected "
               f"{FLIGHT_DUMP_VERSION}")
    lanes = fr.get("lanes", 0)
    events = fr.get("events", [])
    prev_seq = -1
    for i, event in enumerate(events):
        seq = event.get("seq", -1)
        if seq <= prev_seq:
            yield (f"events[{i}]: seq {seq} not strictly increasing "
                   f"(previous {prev_seq})")
            break
        prev_seq = seq
        if event.get("lane", 0) >= lanes:
            yield f"events[{i}]: lane {event.get('lane')} >= lanes {lanes}"
            break
    recorded = fr.get("events_recorded", 0)
    if len(events) > recorded:
        yield (f"flight_recorder: {len(events)} events in dump but only "
               f"{recorded} recorded")


# Prometheus text parsing: label values escape only \\ -> \\\\, " -> \\",
# and newline -> \\n (the exposition-format spec), so a simple state machine
# suffices.
PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def parse_prom_line(line):
    """Returns (name, labels-dict, value) or raises ValueError."""
    i = 0
    name_end = i
    while name_end < len(line) and line[name_end] not in "{ \t":
        name_end += 1
    name = line[:name_end]
    if not PROM_NAME_RE.match(name):
        raise ValueError(f"bad metric name {name!r}")
    labels = {}
    i = name_end
    if i < len(line) and line[i] == "{":
        i += 1
        while i < len(line) and line[i] != "}":
            eq = line.index("=", i)
            key = line[i:eq]
            if not PROM_NAME_RE.match(key):
                raise ValueError(f"bad label name {key!r}")
            if line[eq + 1] != '"':
                raise ValueError(f"label {key!r}: value not quoted")
            j = eq + 2
            value = []
            while j < len(line):
                c = line[j]
                if c == "\\":
                    if j + 1 >= len(line):
                        raise ValueError(f"label {key!r}: dangling backslash")
                    esc = line[j + 1]
                    if esc == "n":
                        value.append("\n")
                    elif esc in ('"', "\\"):
                        value.append(esc)
                    else:
                        raise ValueError(
                            f"label {key!r}: bad escape \\{esc}")
                    j += 2
                elif c == '"':
                    break
                elif c == "\n":
                    raise ValueError(f"label {key!r}: raw newline in value")
                else:
                    value.append(c)
                    j += 1
            else:
                raise ValueError(f"label {key!r}: unterminated value")
            labels[key] = "".join(value)
            i = j + 1
            if i < len(line) and line[i] == ",":
                i += 1
        if i >= len(line) or line[i] != "}":
            raise ValueError("unterminated label set")
        i += 1
    value_str = line[i:].strip()
    if not value_str:
        raise ValueError("missing sample value")
    return name, labels, float(value_str)


def validate_prom(path):
    """Parses a Prometheus text file and checks histogram expansions."""
    errors = []
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"{path}: {e}"]
    samples = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        try:
            samples.append(parse_prom_line(line))
        except ValueError as e:
            errors.append(f"{path}:{lineno}: {e}")
    if not samples and not errors:
        errors.append(f"{path}: no samples found")

    # Histogram expansion: group _bucket series by (base name, non-le
    # labels); cumulative counts must be monotone, end at le="+Inf", and
    # equal the matching _count sample.
    buckets = {}
    counts = {}
    for name, labels, value in samples:
        if name.endswith("_bucket") and "le" in labels:
            rest = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            buckets.setdefault((name[:-len("_bucket")], rest), []).append(
                (labels["le"], value))
        elif name.endswith("_count"):
            rest = tuple(sorted(labels.items()))
            counts[(name[:-len("_count")], rest)] = value
    for (base, rest), series in buckets.items():
        def le_key(le):
            return float("inf") if le == "+Inf" else float(le)
        series.sort(key=lambda kv: le_key(kv[0]))
        if series[-1][0] != "+Inf":
            errors.append(f"{path}: histogram {base}{dict(rest)}: "
                          f"no le=\"+Inf\" bucket")
            continue
        prev = 0.0
        for le, cumulative in series:
            if cumulative < prev:
                errors.append(
                    f"{path}: histogram {base}{dict(rest)}: bucket "
                    f"le={le} count {cumulative} < previous {prev}")
                break
            prev = cumulative
        total = counts.get((base, rest))
        if total is None:
            errors.append(f"{path}: histogram {base}{dict(rest)}: "
                          f"missing _count series")
        elif series[-1][1] != total:
            errors.append(
                f"{path}: histogram {base}{dict(rest)}: +Inf bucket "
                f"{series[-1][1]} != _count {total}")
    return errors


def validate(path, schema_name, semantic):
    schema_path = os.path.join(SCHEMA_DIR, schema_name)
    with open(schema_path) as f:
        schema = json.load(f)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    errors = list(check(doc, schema))
    errors += list(semantic(doc))
    return [f"{path}: {e}" for e in errors]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics JSON (--metrics-out *.json)")
    parser.add_argument("--trace", help="trace JSON (--trace-out)")
    parser.add_argument("--flight", help="flight-recorder dump JSON "
                                         "(--flight-dump)")
    parser.add_argument("--prom", help="Prometheus text exposition "
                                       "(--metrics-out *.prom)")
    args = parser.parse_args()
    if not args.metrics and not args.trace and not args.flight \
            and not args.prom:
        parser.error("need --metrics, --trace, --flight, and/or --prom")

    errors = []
    if args.metrics:
        errors += validate(args.metrics, "metrics.schema.json",
                           semantic_metrics)
    if args.trace:
        errors += validate(args.trace, "trace.schema.json", semantic_trace)
    if args.flight:
        errors += validate(args.flight, "flight_dump.schema.json",
                           semantic_flight)
    if args.prom:
        errors += validate_prom(args.prom)
    for error in errors:
        print(f"validate_telemetry: {error}", file=sys.stderr)
    if not errors:
        checked = [p for p in (args.metrics, args.trace, args.flight,
                               args.prom) if p]
        print(f"validate_telemetry: OK ({', '.join(checked)})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
