# Runs a command and asserts a specific exit code — used by the CLI tests
# to pin galliumc's exit-code contract (0 ok, 2 usage, 3 placement,
# 4 verification).
#
#   cmake -DEXPECTED=<code> -DCMD="<prog> <args...>" -P expect_exit.cmake
if(NOT DEFINED EXPECTED)
  message(FATAL_ERROR "expect_exit.cmake: EXPECTED not set")
endif()
if(NOT DEFINED CMD)
  message(FATAL_ERROR "expect_exit.cmake: CMD not set")
endif()
separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(
  COMMAND ${cmd_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL ${EXPECTED})
  message(FATAL_ERROR
          "expected exit code ${EXPECTED}, got '${rc}'\n"
          "command: ${CMD}\nstdout:\n${out}\nstderr:\n${err}")
endif()
