#!/usr/bin/env bash
# Regenerates the full evaluation: builds, runs the test suite, and runs
# every bench harness, capturing test_output.txt and bench_output.txt at the
# repository root (the artifacts EXPERIMENTS.md describes).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
