// Fast non-cryptographic hashing over u64 word sequences.
//
// StateKeys (and switch TableKeys) are short vectors of u64 words — a
// five-tuple is at most five words, most flow keys are one or two. The flat
// flow tables in src/state/ hash them on every lookup, so the hash must be
// a handful of multiply/xor rounds, not a byte-oriented streaming hash.
// This is the wyhash/murmur-finalizer construction: one 128-bit-free
// multiply-xor fold per word plus a final avalanche. It is deterministic
// across runs and platforms (no address-space or random_device input) so
// equivalence snapshots and seeded tests stay reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gallium {

// splitmix64 finalizer — full avalanche of one 64-bit word.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Hash of `n` words with a seed. Word-order sensitive; an empty sequence
// hashes to a seed-dependent constant (maps with zero-word keys still get a
// valid single slot).
inline uint64_t HashWords(const uint64_t* words, size_t n,
                          uint64_t seed = 0x9e3779b97f4a7c15ull) {
  uint64_t h = seed ^ (static_cast<uint64_t>(n) * 0x9e3779b97f4a7c15ull);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ HashMix64(words[i])) * 0xff51afd7ed558ccdull;
  }
  return HashMix64(h);
}

}  // namespace gallium
