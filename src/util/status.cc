#include "util/status.h"

namespace gallium {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "kInvalidArgument";
    case ErrorCode::kNotFound: return "kNotFound";
    case ErrorCode::kResourceExhausted: return "kResourceExhausted";
    case ErrorCode::kUnsupported: return "kUnsupported";
    case ErrorCode::kFailedPrecondition: return "kFailedPrecondition";
    case ErrorCode::kInternal: return "kInternal";
    case ErrorCode::kUnavailable: return "kUnavailable";
  }
  return "kUnknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = ErrorCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace gallium
