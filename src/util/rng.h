// Deterministic random number generation for simulation and workloads.
//
// All randomness in the repository flows through Rng so experiments are
// reproducible from a single seed (simulation results must not depend on
// std::random_device or address-space layout).
#pragma once

#include <cstdint>
#include <vector>

namespace gallium {

// xoshiro256** — small, fast, high-quality; adequate for workload synthesis
// (we never need cryptographic randomness).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }
  // Uniform double in [0, 1).
  double NextDouble();
  // Exponentially distributed with the given mean.
  double NextExponential(double mean);
  // Bounded Pareto sample in [lo, hi] with shape alpha (heavy-tailed flow
  // sizes, per the CONGA-style workloads).
  double NextBoundedPareto(double lo, double hi, double alpha);
  bool NextBool(double p_true);

  // Derive an independent stream (for per-thread / per-flow generators).
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Samples indices from an empirical CDF: cdf[i] = P(X <= xs[i]).
class EmpiricalDistribution {
 public:
  // points: (value, cumulative probability); cumulative must be
  // non-decreasing and end at 1.0.
  explicit EmpiricalDistribution(
      std::vector<std::pair<double, double>> points);

  // Inverse-CDF sampling with linear interpolation between points.
  double Sample(Rng& rng) const;

  double min() const { return points_.front().first; }
  double max() const { return points_.back().first; }

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace gallium
