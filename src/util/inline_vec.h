// A small vector with inline storage for the packet hot path.
//
// Transfer headers carry a handful of words (the partitioner bounds
// conditions at 32 and the transfer-byte constraint keeps var lists short),
// so the runtime representation should not heap-allocate per packet. The
// first N elements live inside the object; only a pathological spec spills
// to the heap. The interface is the subset of std::vector the interpreter
// and header pack/unpack paths use.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace gallium {

template <typename T, size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for plain word types");

 public:
  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) { *this = init; }
  InlineVec& operator=(std::initializer_list<T> init) {
    clear();
    for (const T& v : init) push_back(v);
    return *this;
  }

  void push_back(T v) {
    if (size_ < N) {
      inline_[size_++] = v;
      return;
    }
    if (size_ == N && spill_.size() != N) spill_.assign(inline_, inline_ + N);
    spill_.push_back(v);
    ++size_;
  }

  void assign(size_t n, T v) {
    clear();
    for (size_t i = 0; i < n; ++i) push_back(v);
  }

  // Keeps spill capacity, like std::vector::clear — repeated packets reuse
  // whatever a spilled spec once grew.
  void clear() {
    size_ = 0;
    spill_.clear();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }

  T* data() { return size_ <= N ? inline_ : spill_.data(); }
  const T* data() const { return size_ <= N ? inline_ : spill_.data(); }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  T inline_[N];
  size_t size_ = 0;
  std::vector<T> spill_;
};

}  // namespace gallium
