// Lightweight error-handling vocabulary for the Gallium codebase.
//
// We deliberately avoid exceptions on hot paths (packet processing, the
// simulator event loop) and use Status / Result<T> return values instead,
// reserving exceptions for programming errors caught during construction.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace gallium {

// Coarse error taxonomy. Codes are stable identifiers used by tests; the
// human-readable message carries the detail.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup miss reported as an error
  kResourceExhausted, // a hardware resource constraint cannot be met
  kUnsupported,       // operation outside P4 expressiveness / not implemented
  kFailedPrecondition,// object state does not allow the operation
  kInternal,          // invariant violation inside Gallium itself
  kUnavailable,       // a peer (switch, link) is unreachable after retries
};

const char* ErrorCodeName(ErrorCode code);

// A Status is either OK or an (ErrorCode, message) pair.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "kInvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status Unsupported(std::string msg) {
  return Status(ErrorCode::kUnsupported, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// Result<T>: either a value or an error Status. A deliberately small subset
// of std::expected (which is not yet available in our toolchain's C++20 mode).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}           // NOLINT(implicit)
  Result(Status status) : storage_(std::move(status)) {     // NOLINT(implicit)
    assert(!std::get<Status>(storage_).ok() &&
           "Result constructed from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(storage_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

// Propagation helpers in the style of absl.
#define GALLIUM_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::gallium::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define GALLIUM_CONCAT_INNER_(a, b) a##b
#define GALLIUM_CONCAT_(a, b) GALLIUM_CONCAT_INNER_(a, b)

#define GALLIUM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define GALLIUM_ASSIGN_OR_RETURN(lhs, expr) \
  GALLIUM_ASSIGN_OR_RETURN_IMPL_(GALLIUM_CONCAT_(_res_, __LINE__), lhs, expr)

}  // namespace gallium
