// Small string helpers shared across code generators and printers.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gallium {

// Joins the string form of each element with `sep`.
template <typename Range>
std::string StrJoin(const Range& range, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : range) {
    if (!first) out << sep;
    first = false;
    out << item;
  }
  return out.str();
}

std::vector<std::string> StrSplit(std::string_view text, char sep);

// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Number of non-empty, non-comment-only lines ("lines of code" in the sense
// of Table 1: blank lines and pure comment lines are excluded).
int CountCodeLines(std::string_view source);

// "a.b.c" -> "a_b_c": make an identifier safe for P4/C++ emission.
std::string SanitizeIdentifier(std::string_view name);

// Formats a byte count with binary units ("12.5 KiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace gallium
