#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace gallium {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 expands the seed into the full xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextBoundedPareto(double lo, double hi, double alpha) {
  assert(lo > 0 && hi > lo && alpha > 0);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

Rng Rng::Fork() { return Rng(NextU64()); }

EmpiricalDistribution::EmpiricalDistribution(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  assert(!points_.empty());
  assert(points_.back().second >= 0.999999);
#ifndef NDEBUG
  for (size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].second >= points_[i - 1].second);
    assert(points_[i].first >= points_[i - 1].first);
  }
#endif
}

double EmpiricalDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Find the first point whose cumulative probability covers u.
  size_t hi = 0;
  while (hi < points_.size() && points_[hi].second < u) ++hi;
  if (hi == 0) return points_.front().first;
  if (hi >= points_.size()) return points_.back().first;
  const auto& [x1, p1] = points_[hi - 1];
  const auto& [x2, p2] = points_[hi];
  if (p2 <= p1) return x2;
  const double t = (u - p1) / (p2 - p1);
  return x1 + t * (x2 - x1);
}

}  // namespace gallium
