#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace gallium {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

int CountCodeLines(std::string_view source) {
  int count = 0;
  for (const auto& line : StrSplit(source, '\n')) {
    std::string_view v = line;
    // Trim leading whitespace.
    size_t i = 0;
    while (i < v.size() && std::isspace(static_cast<unsigned char>(v[i]))) ++i;
    v.remove_prefix(i);
    if (v.empty()) continue;
    if (StartsWith(v, "//") || StartsWith(v, "#") || StartsWith(v, "/*") ||
        StartsWith(v, "*")) {
      continue;
    }
    ++count;
  }
  return count;
}

std::string SanitizeIdentifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace gallium
