// Click-style frontend for authoring middlebox programs.
//
// The paper's input is C++ written against Click APIs, lowered by Clang to
// LLVM IR. This frontend is the equivalent entry point in our substitution:
// middlebox authors use HashMap/Vector/packet-header handles with the same
// shape and the same read/write-set annotations as the paper's annotated
// Click APIs, and the builder records Gallium IR statements directly.
//
// Structured-control helpers (If/IfElse/While) build the CFG safely; the
// verifier still checks the result.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ir/builder.h"
#include "ir/function.h"
#include "ir/verifier.h"
#include "util/status.h"

namespace gallium::frontend {

// Click HashMap<K, V> handle. find/insert/erase record annotated IR map ops.
class HashMapHandle {
 public:
  HashMapHandle() = default;
  HashMapHandle(ir::IrBuilder* b, ir::StateIndex index)
      : b_(b), index_(index) {}

  ir::MapGetResult Find(std::initializer_list<ir::Value> keys,
                        std::string name_prefix = "") const {
    return b_->MapGet(index_, std::span(keys.begin(), keys.size()),
                      std::move(name_prefix));
  }
  void Insert(std::initializer_list<ir::Value> keys,
              std::initializer_list<ir::Value> values) const {
    b_->MapPut(index_, std::span(keys.begin(), keys.size()),
               std::span(values.begin(), values.size()));
  }
  void Erase(std::initializer_list<ir::Value> keys) const {
    b_->MapDel(index_, std::span(keys.begin(), keys.size()));
  }
  ir::StateIndex index() const { return index_; }

 private:
  ir::IrBuilder* b_ = nullptr;
  ir::StateIndex index_ = 0;
};

// Click Vector<T> handle.
class VectorHandle {
 public:
  VectorHandle() = default;
  VectorHandle(ir::IrBuilder* b, ir::StateIndex index)
      : b_(b), index_(index) {}

  ir::Reg At(ir::Value index, std::string name = "") const {
    return b_->VectorGet(index_, index, std::move(name));
  }
  ir::Reg Size(std::string name = "") const {
    return b_->VectorLen(index_, std::move(name));
  }
  ir::StateIndex index() const { return index_; }

 private:
  ir::IrBuilder* b_ = nullptr;
  ir::StateIndex index_ = 0;
};

// Scalar global handle (counters, flags).
class GlobalHandle {
 public:
  GlobalHandle() = default;
  GlobalHandle(ir::IrBuilder* b, ir::StateIndex index)
      : b_(b), index_(index) {}

  ir::Reg Read(std::string name = "") const {
    return b_->GlobalRead(index_, std::move(name));
  }
  void Write(ir::Value v) const { b_->GlobalWrite(index_, v); }
  ir::StateIndex index() const { return index_; }

 private:
  ir::IrBuilder* b_ = nullptr;
  ir::StateIndex index_ = 0;
};

// Builds one middlebox program. Typical use:
//
//   MiddleboxBuilder mb("mini_lb");
//   auto map = mb.DeclareMap("map", {Width::kU16}, {Width::kU32}, 65536);
//   ... mb.b().HeaderRead(...), mb.IfElse(...) ...
//   auto fn = std::move(mb).Finish();   // verified ir::Function
class MiddleboxBuilder {
 public:
  explicit MiddleboxBuilder(std::string name);

  ir::IrBuilder& b() { return builder_; }
  ir::Function& fn() { return *fn_; }

  // --- State declarations (the paper's annotated Click structures) -----------
  HashMapHandle DeclareMap(std::string name, std::vector<ir::Width> keys,
                           std::vector<ir::Width> values,
                           uint64_t max_entries,  // 0 = not offloadable
                           bool has_p4_impl = true);
  VectorHandle DeclareVector(std::string name, ir::Width elem,
                             uint64_t max_size, bool has_p4_impl = true);
  GlobalHandle DeclareGlobal(std::string name, ir::Width width,
                             uint64_t init = 0);
  uint32_t DeclarePattern(std::string pattern);

  // --- Structured control flow -------------------------------------------------
  void If(ir::Value cond, const std::function<void()>& then_body);
  void IfElse(ir::Value cond, const std::function<void()>& then_body,
              const std::function<void()>& else_body);
  // While loop: `header` emits the condition computation and returns the
  // condition value; `body` emits the loop body.
  void While(const std::function<ir::Value()>& header,
             const std::function<void()>& body);

  // True when the current block already ends in a terminator (a body that
  // called Send+Ret, for example).
  bool CurrentBlockTerminated() const;

  // Verifies and returns the finished function. The builder must not be
  // used afterwards.
  Result<std::unique_ptr<ir::Function>> Finish() &&;

 private:
  std::unique_ptr<ir::Function> fn_;
  ir::IrBuilder builder_;
};

}  // namespace gallium::frontend
