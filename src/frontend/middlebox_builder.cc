#include "frontend/middlebox_builder.h"

namespace gallium::frontend {

MiddleboxBuilder::MiddleboxBuilder(std::string name)
    : fn_(std::make_unique<ir::Function>(std::move(name))),
      builder_(fn_.get()) {
  const int entry = fn_->AddBlock("entry");
  fn_->set_entry_block(entry);
  builder_.SetInsertPoint(entry);
}

HashMapHandle MiddleboxBuilder::DeclareMap(std::string name,
                                           std::vector<ir::Width> keys,
                                           std::vector<ir::Width> values,
                                           uint64_t max_entries,
                                           bool has_p4_impl) {
  ir::MapDecl decl;
  decl.name = std::move(name);
  decl.key_widths = std::move(keys);
  decl.value_widths = std::move(values);
  decl.max_entries = max_entries;
  decl.has_p4_impl = has_p4_impl;
  return HashMapHandle(&builder_, fn_->AddMap(std::move(decl)));
}

VectorHandle MiddleboxBuilder::DeclareVector(std::string name, ir::Width elem,
                                             uint64_t max_size,
                                             bool has_p4_impl) {
  ir::VectorDecl decl;
  decl.name = std::move(name);
  decl.elem_width = elem;
  decl.max_size = max_size;
  decl.has_p4_impl = has_p4_impl;
  return VectorHandle(&builder_, fn_->AddVector(std::move(decl)));
}

GlobalHandle MiddleboxBuilder::DeclareGlobal(std::string name, ir::Width width,
                                             uint64_t init) {
  ir::GlobalDecl decl;
  decl.name = std::move(name);
  decl.width = width;
  decl.init = init;
  return GlobalHandle(&builder_, fn_->AddGlobal(std::move(decl)));
}

uint32_t MiddleboxBuilder::DeclarePattern(std::string pattern) {
  return fn_->AddPattern(std::move(pattern));
}

bool MiddleboxBuilder::CurrentBlockTerminated() const {
  return fn_->block(builder_.insert_block()).HasTerminator();
}

void MiddleboxBuilder::If(ir::Value cond,
                          const std::function<void()>& then_body) {
  const int bb_then = builder_.CreateBlock("if_then");
  const int bb_join = builder_.CreateBlock("if_join");
  builder_.Branch(cond, bb_then, bb_join);
  builder_.SetInsertPoint(bb_then);
  then_body();
  if (!CurrentBlockTerminated()) builder_.Jump(bb_join);
  builder_.SetInsertPoint(bb_join);
}

void MiddleboxBuilder::IfElse(ir::Value cond,
                              const std::function<void()>& then_body,
                              const std::function<void()>& else_body) {
  const int bb_then = builder_.CreateBlock("if_then");
  const int bb_else = builder_.CreateBlock("if_else");
  const int bb_join = builder_.CreateBlock("if_join");
  builder_.Branch(cond, bb_then, bb_else);
  builder_.SetInsertPoint(bb_then);
  then_body();
  if (!CurrentBlockTerminated()) builder_.Jump(bb_join);
  builder_.SetInsertPoint(bb_else);
  else_body();
  if (!CurrentBlockTerminated()) builder_.Jump(bb_join);
  builder_.SetInsertPoint(bb_join);
}

void MiddleboxBuilder::While(const std::function<ir::Value()>& header,
                             const std::function<void()>& body) {
  const int bb_head = builder_.CreateBlock("while_head");
  const int bb_body = builder_.CreateBlock("while_body");
  const int bb_exit = builder_.CreateBlock("while_exit");
  builder_.Jump(bb_head);
  builder_.SetInsertPoint(bb_head);
  const ir::Value cond = header();
  builder_.Branch(cond, bb_body, bb_exit);
  builder_.SetInsertPoint(bb_body);
  body();
  if (!CurrentBlockTerminated()) builder_.Jump(bb_head);
  builder_.SetInsertPoint(bb_exit);
}

Result<std::unique_ptr<ir::Function>> MiddleboxBuilder::Finish() && {
  if (!CurrentBlockTerminated()) builder_.Ret();
  // Ensure every block is terminated (join blocks of If bodies that always
  // return remain empty; give them a Ret).
  for (ir::BasicBlock& bb : fn_->blocks()) {
    if (!bb.HasTerminator()) {
      builder_.SetInsertPoint(bb.id);
      builder_.Ret();
    }
  }
  GALLIUM_RETURN_IF_ERROR(ir::VerifyFunction(*fn_));
  return std::move(fn_);
}

}  // namespace gallium::frontend
