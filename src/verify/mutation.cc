#include "verify/mutation.h"

#include <algorithm>
#include <sstream>

namespace gallium::verify {

namespace {

using ir::InstId;
using ir::Opcode;
using ir::Reg;
using partition::Part;

// Registers whose every definition is server-assigned (so hoisting a use
// into the pre partition is guaranteed to read an undefined register).
std::vector<bool> ServerOnlyDefs(const ir::Function& fn,
                                 const partition::PartitionPlan& plan) {
  std::vector<bool> has_def(fn.num_regs(), false);
  std::vector<bool> server_only(fn.num_regs(), true);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      for (Reg r : inst.dsts) {
        has_def[r] = true;
        if (plan.assignment[inst.id] != Part::kNonOffloaded ||
            (inst.id < static_cast<InstId>(plan.replicable.size()) &&
             plan.replicable[inst.id])) {
          server_only[r] = false;
        }
      }
    }
  }
  for (Reg r = 0; r < static_cast<Reg>(fn.num_regs()); ++r) {
    if (!has_def[r]) server_only[r] = false;
  }
  return server_only;
}

// Registers whose value can transitively reach an observable effect: a
// header write, a state write, a branch decision, or a verdict's port.
// A mutation whose only change is to a register outside this set produces
// an equivalent mutant (the validator would rightly prove it equivalent),
// so the seeders skip such candidates.
std::vector<bool> ObservableRegs(const ir::Function& fn) {
  std::vector<bool> relevant(fn.num_regs(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ir::BasicBlock& bb : fn.blocks()) {
      for (const ir::Instruction& inst : bb.insts) {
        bool sink = inst.op == Opcode::kHeaderWrite || inst.WritesState() ||
                    inst.op == Opcode::kBranch || inst.op == Opcode::kSend;
        for (Reg r : inst.dsts) {
          if (relevant[r]) sink = true;
        }
        if (!sink) continue;
        for (const ir::Value& v : inst.args) {
          if (v.is_reg() && !relevant[v.reg]) {
            relevant[v.reg] = true;
            changed = true;
          }
        }
      }
    }
  }
  return relevant;
}

ir::Instruction* FindMutable(ir::Function& fn, InstId id) {
  for (ir::BasicBlock& bb : fn.blocks()) {
    for (ir::Instruction& inst : bb.insts) {
      if (inst.id == id) return &inst;
    }
  }
  return nullptr;
}

void MutateLabelMisRemoval(const ir::Function& fn,
                           const partition::PartitionPlan& plan,
                           int max_candidates, std::vector<Mutation>* out) {
  const std::vector<bool> server_only = ServerOnlyDefs(fn, plan);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (static_cast<int>(out->size()) >= max_candidates) return;
      if (inst.IsTerminator()) continue;
      if (plan.assignment[inst.id] != Part::kNonOffloaded) continue;
      if (inst.id < static_cast<InstId>(plan.replicable.size()) &&
          plan.replicable[inst.id]) {
        continue;
      }
      const bool uses_server_reg =
          std::any_of(inst.args.begin(), inst.args.end(), [&](const auto& v) {
            return v.is_reg() && server_only[v.reg];
          });
      if (!uses_server_reg) continue;
      Mutation m{MutationClass::kLabelMisRemoval,
                 "hoist server inst " + std::to_string(inst.id) + " (" +
                     ir::OpcodeName(inst.op) + ") into the pre partition",
                 fn, plan};
      m.plan.assignment[inst.id] = Part::kPre;
      out->push_back(std::move(m));
    }
  }
}

void MutateDroppedWriteBack(const ir::Function& fn,
                            const partition::PartitionPlan& plan,
                            int max_candidates, std::vector<Mutation>* out) {
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (static_cast<int>(out->size()) >= max_candidates) return;
      if (!inst.WritesState()) continue;
      if (plan.assignment[inst.id] != Part::kNonOffloaded) continue;
      Mutation m{MutationClass::kDroppedWriteBack,
                 "drop server state write inst " + std::to_string(inst.id) +
                     " (" + ir::OpcodeName(inst.op) + " on " +
                     fn.StateName([&] {
                       ir::StateRef ref;
                       ir::Function::InstStateRef(inst, &ref);
                       return ref;
                     }()) +
                     ")",
                 fn, plan};
      // Neutralize the write in the composed program: it becomes a no-op
      // assignment to a scratch register (same instruction id, so execution
      // counts still line up and only the state trace diverges).
      ir::Instruction* target = FindMutable(m.fn, inst.id);
      const Reg scratch = m.fn.AddReg(ir::Width::kU32, "mut_scratch");
      target->op = Opcode::kAssign;
      target->dsts = {scratch};
      target->args = {ir::Value::MakeImm(0)};
      out->push_back(std::move(m));
    }
  }
}

void MutateReorderedSync(const ir::Function& fn,
                         const partition::PartitionPlan& plan,
                         int max_candidates, std::vector<Mutation>* out) {
  // Any same-block pair of accesses to the same state object (map or
  // global) where at least one writes: swapping them models a write-back
  // sync applied in the wrong order relative to a read or another write.
  // A read/write pair is only worth seeding when the read's result can
  // reach an observable effect; otherwise the reorder is invisible.
  const std::vector<bool> relevant = ObservableRegs(fn);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (size_t i = 0; i < bb.insts.size(); ++i) {
      const ir::Instruction& a = bb.insts[i];
      if (a.IsTerminator()) continue;
      ir::StateRef ra;
      if (!ir::Function::InstStateRef(a, &ra)) continue;
      for (size_t j = i + 1; j < bb.insts.size(); ++j) {
        if (static_cast<int>(out->size()) >= max_candidates) return;
        const ir::Instruction& b = bb.insts[j];
        if (b.IsTerminator()) continue;
        ir::StateRef rb;
        if (!ir::Function::InstStateRef(b, &rb)) continue;
        if (!(ra == rb)) continue;
        if (!a.WritesState() && !b.WritesState()) continue;
        if (!a.WritesState() || !b.WritesState()) {
          const ir::Instruction& reader = a.WritesState() ? b : a;
          const bool observable = std::any_of(
              reader.dsts.begin(), reader.dsts.end(),
              [&](Reg r) { return relevant[r]; });
          if (!observable) continue;
        }
        Mutation m{MutationClass::kReorderedSync,
                   "swap " + std::string(ir::OpcodeName(a.op)) + " (inst " +
                       std::to_string(a.id) + ") with " +
                       ir::OpcodeName(b.op) + " (inst " +
                       std::to_string(b.id) + ") on " + fn.StateName(ra),
                   fn, plan};
        ir::BasicBlock& mb = m.fn.block(bb.id);
        std::swap(mb.insts[i], mb.insts[j]);
        out->push_back(std::move(m));
      }
    }
  }
}

void MutateWrongTableAction(const ir::Function& fn,
                            const partition::PartitionPlan& plan,
                            int max_candidates, std::vector<Mutation>* out) {
  const std::vector<bool> relevant = ObservableRegs(fn);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (static_cast<int>(out->size()) >= max_candidates) return;
      if (inst.op != Opcode::kMapGet || inst.dsts.size() < 2) continue;
      if (plan.assignment[inst.id] == Part::kNonOffloaded) continue;
      const size_t w0 = inst.dsts.size() >= 3 ? 1 : 0;
      const size_t w1 = inst.dsts.size() >= 3 ? 2 : 1;
      if (!relevant[inst.dsts[w0]] && !relevant[inst.dsts[w1]]) continue;
      Mutation m{MutationClass::kWrongTableAction,
                 "table lookup inst " + std::to_string(inst.id) + " on " +
                     fn.map(inst.state).name +
                     " wires its results to the wrong action destinations",
                 fn, plan};
      ir::Instruction* target = FindMutable(m.fn, inst.id);
      // Two value words when present, else hit flag <-> value.
      std::swap(target->dsts[w0], target->dsts[w1]);
      out->push_back(std::move(m));
    }
  }
}

void MutateSwappedBoundary(const ir::Function& fn,
                           const partition::PartitionPlan& plan,
                           int max_candidates, std::vector<Mutation>* out) {
  // Defer a pre statement that feeds the to-server transfer header: the
  // server then unpacks a value the switch never produced.
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (static_cast<int>(out->size()) >= max_candidates) return;
      if (inst.IsTerminator() || inst.dsts.empty()) continue;
      if (plan.assignment[inst.id] != Part::kPre) continue;
      if (inst.id < static_cast<InstId>(plan.replicable.size()) &&
          plan.replicable[inst.id]) {
        continue;
      }
      const Reg dst = inst.dsts[0];
      const bool feeds_transfer =
          plan.to_server.CondBit(dst) >= 0 ||
          plan.to_server.VarSlot(fn, dst) >= 0;
      if (!feeds_transfer) continue;
      Mutation m{MutationClass::kSwappedBoundary,
                 "defer pre inst " + std::to_string(inst.id) + " (" +
                     ir::OpcodeName(inst.op) +
                     ", feeds the to-server transfer) to the post partition",
                 fn, plan};
      m.plan.assignment[inst.id] = Part::kPost;
      out->push_back(std::move(m));
    }
  }
  // Hoist a post statement that reads server-written state before the
  // server runs. Only worth seeding when the read's result is observable
  // and some server-assigned write actually targets the same object —
  // otherwise the hoisted read sees identical state.
  const std::vector<bool> relevant = ObservableRegs(fn);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (static_cast<int>(out->size()) >= max_candidates) return;
      if (inst.op != Opcode::kMapGet && inst.op != Opcode::kGlobalRead) {
        continue;
      }
      if (plan.assignment[inst.id] != Part::kPost) continue;
      if (std::none_of(inst.dsts.begin(), inst.dsts.end(),
                       [&](Reg r) { return relevant[r]; })) {
        continue;
      }
      ir::StateRef read_ref;
      if (!ir::Function::InstStateRef(inst, &read_ref)) continue;
      bool crosses_server_write = false;
      for (const ir::BasicBlock& wb : fn.blocks()) {
        for (const ir::Instruction& w : wb.insts) {
          ir::StateRef wr;
          if (w.WritesState() && ir::Function::InstStateRef(w, &wr) &&
              wr == read_ref &&
              plan.assignment[w.id] == Part::kNonOffloaded) {
            crosses_server_write = true;
          }
        }
      }
      if (!crosses_server_write) continue;
      Mutation m{MutationClass::kSwappedBoundary,
                 "hoist post inst " + std::to_string(inst.id) + " (" +
                     ir::OpcodeName(inst.op) +
                     ") into the pre partition, ahead of server writes",
                 fn, plan};
      m.plan.assignment[inst.id] = Part::kPre;
      out->push_back(std::move(m));
    }
  }
}

}  // namespace

const char* MutationClassName(MutationClass c) {
  switch (c) {
    case MutationClass::kLabelMisRemoval: return "label-mis-removal";
    case MutationClass::kDroppedWriteBack: return "dropped-write-back";
    case MutationClass::kReorderedSync: return "reordered-sync";
    case MutationClass::kWrongTableAction: return "wrong-table-action";
    case MutationClass::kSwappedBoundary: return "swapped-boundary";
  }
  return "?";
}

std::vector<Mutation> EnumerateMutations(const ir::Function& fn,
                                         const partition::PartitionPlan& plan,
                                         MutationClass cls,
                                         int max_candidates) {
  std::vector<Mutation> out;
  switch (cls) {
    case MutationClass::kLabelMisRemoval:
      MutateLabelMisRemoval(fn, plan, max_candidates, &out);
      break;
    case MutationClass::kDroppedWriteBack:
      MutateDroppedWriteBack(fn, plan, max_candidates, &out);
      break;
    case MutationClass::kReorderedSync:
      MutateReorderedSync(fn, plan, max_candidates, &out);
      break;
    case MutationClass::kWrongTableAction:
      MutateWrongTableAction(fn, plan, max_candidates, &out);
      break;
    case MutationClass::kSwappedBoundary:
      MutateSwappedBoundary(fn, plan, max_candidates, &out);
      break;
  }
  return out;
}

std::string CampaignResult::Summary() const {
  std::ostringstream out;
  out << "mutation campaign: " << caught << "/" << generated
      << " mutants caught\n";
  for (const CampaignClassResult& c : classes) {
    out << "  " << MutationClassName(c.cls) << ": " << c.caught << "/"
        << c.generated << " caught, " << c.with_counterexample
        << " with concrete counterexample";
    if (!c.example.empty()) out << "\n    e.g. " << c.example;
    out << "\n";
  }
  return out.str();
}

CampaignResult RunMutationCampaign(const ir::Function& fn,
                                   const partition::PartitionPlan& plan,
                                   const PathLimits& limits,
                                   int max_candidates_per_class) {
  CampaignResult result;
  for (int c = 0; c < kNumMutationClasses; ++c) {
    const MutationClass cls = static_cast<MutationClass>(c);
    CampaignClassResult cr;
    cr.cls = cls;
    for (const Mutation& m :
         EnumerateMutations(fn, plan, cls, max_candidates_per_class)) {
      ++cr.generated;
      const ValidationResult v =
          ValidateTranslationAgainst(fn, m.fn, m.plan, limits);
      if (!v.equivalent) {
        ++cr.caught;
        bool concrete = false;
        for (const Mismatch& mm : v.mismatches) {
          if (mm.cex.concrete) concrete = true;
        }
        if (concrete) ++cr.with_counterexample;
        if (cr.example.empty() && !v.mismatches.empty()) {
          cr.example = m.description + " -> [" + v.mismatches[0].kind + "] " +
                       v.mismatches[0].detail;
        }
      }
    }
    result.generated += cr.generated;
    result.caught += cr.caught;
    result.classes.push_back(std::move(cr));
  }
  return result;
}

}  // namespace gallium::verify
