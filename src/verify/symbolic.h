// Symbolic values for translation validation.
//
// A Term is an immutable expression DAG over named symbolic inputs (packet
// header fields, payload predicates, state-oracle results) and constants,
// combined with the IR's ALU vocabulary. Every term carries a canonical
// string rendering built at construction; two terms denote the same value
// iff their renderings are equal (constant folding and the normalization
// rules below make this a practical, conservative equivalence).
//
// Normalizations (applied by the factory functions):
//   - constant folding through ir::EvalAluOp at u64 width,
//   - And(x, low-mask) == x when the mask covers x's known bit width,
//   - Ne(x, 0) == x when x is already boolean (a comparison result),
// so the original program and the composed partitioned program produce
// literally identical terms whenever the partition plan is semantics-
// preserving, and different terms expose a concrete divergence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/types.h"

namespace gallium::verify {

enum class TermKind : uint8_t { kConst, kInput, kAlu };

struct Term;
using TermRef = std::shared_ptr<const Term>;

struct Term {
  TermKind kind = TermKind::kConst;
  uint64_t value = 0;     // kConst
  std::string input;      // kInput: canonical input name
  ir::AluOp alu = ir::AluOp::kAdd;
  TermRef a, b;           // kAlu operands (b null for unary ops)

  // Number of significant low bits guaranteed by construction (0 = unknown,
  // treat as 64). Comparisons and truthiness produce is_bool single bits.
  int max_bits = 0;
  bool is_bool = false;

  // Canonical rendering; equality of terms == equality of reprs.
  std::string repr;

  bool is_const() const { return kind == TermKind::kConst; }
};

// --- Factories -------------------------------------------------------------
TermRef MakeConst(uint64_t v);
TermRef MakeInput(std::string name, int max_bits, bool is_bool = false);
// Binary/unary ALU application with folding; pass nullptr b for unary ops.
TermRef MakeAlu(ir::AluOp op, TermRef a, TermRef b);
// Narrows `t` to `w` (identity when t provably fits).
TermRef Masked(TermRef t, ir::Width w);
// 0/1 truthiness of `t` (identity when t is already boolean).
TermRef Truthy(TermRef t);

inline bool SameTerm(const TermRef& x, const TermRef& y) {
  return x == y || (x != nullptr && y != nullptr && x->repr == y->repr);
}

// --- Path conditions & concretization --------------------------------------

// One branch constraint: Truthy(term) must evaluate to `truth`.
struct Constraint {
  TermRef term;
  bool truth = true;
};

std::string ConstraintString(const Constraint& c);
std::string PathConditionString(const std::vector<Constraint>& cs);

// Concrete valuation of symbolic inputs, by canonical input name. Inputs
// absent from the map evaluate to 0 (mirroring the interpreter's defaults).
using Assignment = std::map<std::string, uint64_t>;

uint64_t EvalTerm(const Term& t, const Assignment& inputs);

// Searches for an assignment satisfying every constraint — and, when
// `distinguish_a`/`distinguish_b` are non-null, additionally making the two
// terms differ in truthiness-or-value. The search is a constant-seeded
// randomized concretization (constants harvested from the constraint terms,
// their neighbors, and random draws); it is sound but incomplete: a true
// return yields a genuine witness, a false return is inconclusive.
bool SolveConstraints(const std::vector<Constraint>& constraints,
                      const TermRef& distinguish_a, const TermRef& distinguish_b,
                      uint64_t seed, int tries, Assignment* out);

}  // namespace gallium::verify
