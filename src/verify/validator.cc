#include "verify/validator.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "analysis/cfg.h"
#include "net/headers.h"
#include "runtime/interpreter.h"

namespace gallium::verify {

namespace {

using ir::HeaderField;
using ir::InstId;
using ir::Opcode;
using ir::Reg;
using partition::Part;

std::string HeaderInputName(HeaderField f) {
  return std::string("hdr.") + ir::HeaderFieldName(f);
}

TermRef HeaderInput(HeaderField f) {
  return MakeInput(HeaderInputName(f), ir::BitWidth(ir::HeaderFieldWidth(f)));
}

std::string KeysRepr(const std::vector<TermRef>& keys) {
  std::string out = "{";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ",";
    out += keys[i]->repr;
  }
  return out + "}";
}

// --- Symbolic state oracle ---------------------------------------------------
//
// One oracle instance models the coherent state store of one run (write-back
// sync is modeled as immediate, matching the runtime's per-packet ordering).
// Unknown map reads return canonical symbols keyed by (object, scan stop
// point, key terms); two runs with aligned write histories therefore read
// identical symbols, and any dropped/reordered write desynchronizes the
// histories and surfaces as differing terms downstream.
class StateOracle {
 public:
  struct MapReadResult {
    TermRef found;
    std::vector<TermRef> values;
  };

  MapReadResult MapGet(const ir::Function& fn, ir::StateIndex m,
                       const std::vector<TermRef>& keys) {
    const auto& hist = map_writes_[m];
    size_t stop = 0;  // oldest write the scan could not see past (0 = base)
    bool resolved = false;
    MapReadResult result;
    for (size_t i = hist.size(); i-- > 0;) {
      const MapWrite& w = hist[i];
      if (KeysEqual(w.keys, keys)) {
        if (w.is_del) {
          result.found = MakeConst(0);
          for (size_t v = 0; v < fn.map(m).value_widths.size(); ++v) {
            result.values.push_back(MakeConst(0));
          }
        } else {
          result.found = MakeConst(1);
          result.values = w.values;
        }
        resolved = true;
        break;
      }
      if (!KeysDefinitelyDiffer(w.keys, keys)) {
        stop = i + 1;  // may-alias: cannot see past this write
        break;
      }
    }
    if (resolved) return result;
    const std::string base = "st.map" + std::to_string(m) + ".w" +
                             std::to_string(stop) + "." + KeysRepr(keys);
    result.found = MakeInput(base + ".found", 1, /*is_bool=*/true);
    const auto& widths = fn.map(m).value_widths;
    for (size_t v = 0; v < widths.size(); ++v) {
      // value = found * raw so a concretized miss carries zero values,
      // matching the interpreter's miss semantics.
      result.values.push_back(MakeAlu(
          ir::AluOp::kMul, result.found,
          MakeInput(base + ".v" + std::to_string(v), ir::BitWidth(widths[v]))));
    }
    return result;
  }

  void MapPut(ir::StateIndex m, std::vector<TermRef> keys,
              std::vector<TermRef> values) {
    map_writes_[m].push_back({false, std::move(keys), std::move(values)});
  }
  void MapDel(ir::StateIndex m, std::vector<TermRef> keys) {
    map_writes_[m].push_back({true, std::move(keys), {}});
  }

  TermRef GlobalRead(const ir::Function& fn, ir::StateIndex g) {
    auto it = global_cur_.find(g);
    if (it != global_cur_.end()) return it->second;
    TermRef t = MakeInput("st.g" + std::to_string(g) + ".init",
                          ir::BitWidth(fn.global(g).width));
    global_cur_[g] = t;
    return t;
  }
  void GlobalWrite(ir::StateIndex g, TermRef v) {
    global_cur_[g] = std::move(v);
  }

 private:
  struct MapWrite {
    bool is_del = false;
    std::vector<TermRef> keys;
    std::vector<TermRef> values;
  };

  static bool KeysEqual(const std::vector<TermRef>& a,
                        const std::vector<TermRef>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!SameTerm(a[i], b[i])) return false;
    }
    return true;
  }
  static bool KeysDefinitelyDiffer(const std::vector<TermRef>& a,
                                   const std::vector<TermRef>& b) {
    if (a.size() != b.size()) return true;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i]->is_const() && b[i]->is_const() && a[i]->value != b[i]->value) {
        return true;
      }
    }
    return false;
  }

  std::map<ir::StateIndex, std::vector<MapWrite>> map_writes_;
  std::map<ir::StateIndex, TermRef> global_cur_;
};

// --- Run traces --------------------------------------------------------------

struct VerdictEvent {
  bool is_send = false;
  TermRef port;  // null for drop
};

struct RunTrace {
  // Per state object (StateRef::ToString): rendered write ops in order.
  std::map<std::string, std::vector<std::string>> writes;
  std::vector<VerdictEvent> verdicts;
  std::map<HeaderField, TermRef> header;  // fields touched so far
  std::map<InstId, int> exec_count;       // non-terminator, non-replicable
};

// --- Shared instruction execution -------------------------------------------

struct ExecCtx {
  const ir::Function* fn = nullptr;
  std::map<Reg, TermRef>* regs = nullptr;
  StateOracle* oracle = nullptr;
  RunTrace* trace = nullptr;
  // Non-null in composed passes: undefined register reads are reported
  // (a correct plan ships every cross-partition value in a transfer spec).
  std::vector<std::string>* undef_uses = nullptr;
  const char* pass_name = "orig";
};

TermRef ValueOf(ExecCtx& ctx, const ir::Value& v) {
  if (v.is_imm()) return MakeConst(v.imm);
  const auto it = ctx.regs->find(v.reg);
  if (it != ctx.regs->end()) return it->second;
  if (ctx.undef_uses != nullptr) {
    ctx.undef_uses->push_back("register %" + ctx.fn->reg_name(v.reg) +
                              " read while undefined in " + ctx.pass_name +
                              " pass");
  }
  return MakeInput(std::string("undef.") + ctx.pass_name + ".r" +
                       std::to_string(v.reg),
                   ir::BitWidth(ctx.fn->reg_width(v.reg)));
}

void SetReg(ExecCtx& ctx, Reg r, TermRef t) {
  (*ctx.regs)[r] = Masked(std::move(t), ctx.fn->reg_width(r));
}

TermRef ReadHeaderTerm(ExecCtx& ctx, HeaderField f) {
  auto it = ctx.trace->header.find(f);
  if (it != ctx.trace->header.end()) return it->second;
  TermRef t = HeaderInput(f);
  ctx.trace->header[f] = t;
  return t;
}

std::string StateKeyOf(const ir::Instruction& inst) {
  ir::StateRef ref;
  ir::Function::InstStateRef(inst, &ref);
  return ref.ToString();
}

// Executes one non-control-flow instruction symbolically, mirroring
// runtime::Interpreter::Walk's effect semantics term-for-term.
void ExecInst(ExecCtx& ctx, const ir::Instruction& inst) {
  const ir::Function& fn = *ctx.fn;
  switch (inst.op) {
    case Opcode::kAssign:
      SetReg(ctx, inst.dsts[0], ValueOf(ctx, inst.args[0]));
      break;
    case Opcode::kAlu: {
      TermRef a = ValueOf(ctx, inst.args[0]);
      TermRef b = inst.args.size() > 1 ? ValueOf(ctx, inst.args[1]) : nullptr;
      SetReg(ctx, inst.dsts[0], MakeAlu(inst.alu, std::move(a), std::move(b)));
      break;
    }
    case Opcode::kHeaderRead:
      SetReg(ctx, inst.dsts[0], ReadHeaderTerm(ctx, inst.field));
      break;
    case Opcode::kHeaderWrite:
      ctx.trace->header[inst.field] =
          Masked(ValueOf(ctx, inst.args[0]),
                 ir::HeaderFieldWidth(inst.field));
      break;
    case Opcode::kPayloadMatch:
      SetReg(ctx, inst.dsts[0],
             MakeInput("payload.match." + std::to_string(inst.pattern), 1,
                       /*is_bool=*/true));
      break;
    case Opcode::kPayloadLen:
      SetReg(ctx, inst.dsts[0], MakeInput("payload.len", 32));
      break;
    case Opcode::kMapGet: {
      std::vector<TermRef> keys;
      for (const ir::Value& v : inst.args) keys.push_back(ValueOf(ctx, v));
      auto result = ctx.oracle->MapGet(fn, inst.state, keys);
      SetReg(ctx, inst.dsts[0], result.found);
      for (size_t d = 1; d < inst.dsts.size(); ++d) {
        SetReg(ctx, inst.dsts[d],
               d - 1 < result.values.size() ? result.values[d - 1]
                                            : MakeConst(0));
      }
      break;
    }
    case Opcode::kMapPut: {
      const size_t nkeys = fn.map(inst.state).key_widths.size();
      std::vector<TermRef> keys, values;
      for (size_t a = 0; a < nkeys; ++a) {
        keys.push_back(ValueOf(ctx, inst.args[a]));
      }
      for (size_t a = nkeys; a < inst.args.size(); ++a) {
        values.push_back(ValueOf(ctx, inst.args[a]));
      }
      ctx.trace->writes[StateKeyOf(inst)].push_back(
          "put " + KeysRepr(keys) + " = " + KeysRepr(values));
      ctx.oracle->MapPut(inst.state, std::move(keys), std::move(values));
      break;
    }
    case Opcode::kMapDel: {
      std::vector<TermRef> keys;
      for (const ir::Value& v : inst.args) keys.push_back(ValueOf(ctx, v));
      ctx.trace->writes[StateKeyOf(inst)].push_back("del " + KeysRepr(keys));
      ctx.oracle->MapDel(inst.state, std::move(keys));
      break;
    }
    case Opcode::kGlobalRead:
      SetReg(ctx, inst.dsts[0], ctx.oracle->GlobalRead(fn, inst.state));
      break;
    case Opcode::kGlobalWrite: {
      TermRef v = ValueOf(ctx, inst.args[0]);
      ctx.trace->writes[StateKeyOf(inst)].push_back("set = " + v->repr);
      ctx.oracle->GlobalWrite(inst.state, std::move(v));
      break;
    }
    case Opcode::kVectorGet: {
      TermRef idx = ValueOf(ctx, inst.args[0]);
      SetReg(ctx, inst.dsts[0],
             MakeInput("vec" + std::to_string(inst.state) + "[" + idx->repr +
                           "]",
                       ir::BitWidth(fn.vector(inst.state).elem_width)));
      break;
    }
    case Opcode::kVectorLen:
      SetReg(ctx, inst.dsts[0],
             MakeInput("vlen" + std::to_string(inst.state), 32));
      break;
    case Opcode::kTimeRead:
      SetReg(ctx, inst.dsts[0], MakeInput("time.ms", 64));
      break;
    case Opcode::kSend:
      ctx.trace->verdicts.push_back({true, ValueOf(ctx, inst.args[0])});
      break;
    case Opcode::kDrop:
      ctx.trace->verdicts.push_back({false, nullptr});
      break;
    case Opcode::kBranch:
    case Opcode::kJump:
    case Opcode::kReturn:
      break;  // control flow handled by the walkers
  }
}

// --- Original-program path enumeration ---------------------------------------

struct Decision {
  InstId inst = ir::kInvalidInst;
  bool taken = false;
  TermRef cond;
};

struct PathInfo {
  std::vector<Decision> decisions;
  std::vector<Constraint> constraints;
  RunTrace trace;
};

struct PathState {
  int block = 0;
  std::map<Reg, TermRef> regs;
  StateOracle oracle;
  RunTrace trace;
  std::vector<Decision> decisions;
  std::vector<Constraint> constraints;
  std::map<std::string, bool> decided;  // cond repr -> forced outcome
  int steps = 0;
};

// DFS over branch outcomes of the original function. Returns complete paths
// and sets *exhaustive=false when a budget was hit.
std::vector<PathInfo> EnumeratePaths(const ir::Function& fn,
                                     const PathLimits& limits,
                                     bool* exhaustive) {
  std::vector<PathInfo> paths;
  std::vector<PathState> work;
  {
    PathState init;
    init.block = fn.entry_block();
    work.push_back(std::move(init));
  }

  while (!work.empty()) {
    if (static_cast<int>(paths.size()) >= limits.max_paths) {
      *exhaustive = false;
      break;
    }
    PathState st = std::move(work.back());
    work.pop_back();

    bool done = false;
    bool truncated = false;
    while (!done && !truncated) {
      const ir::BasicBlock& bb = fn.block(st.block);
      for (size_t i = 0; i < bb.insts.size(); ++i) {
        const ir::Instruction& inst = bb.insts[i];
        if (++st.steps > limits.max_steps_per_path) {
          truncated = true;
          break;
        }
        if (inst.op == Opcode::kReturn) {
          done = true;
          break;
        }
        if (inst.op == Opcode::kJump) {
          st.block = inst.target_true;
          break;
        }
        if (inst.op == Opcode::kBranch) {
          ExecCtx ctx{&fn, &st.regs, &st.oracle, &st.trace, nullptr, "orig"};
          TermRef cond = ValueOf(ctx, inst.args[0]);
          bool taken;
          if (cond->is_const()) {
            taken = cond->value != 0;
          } else {
            const std::string key = Truthy(cond)->repr;
            const auto it = st.decided.find(key);
            if (it != st.decided.end()) {
              taken = it->second;  // same condition decided earlier: no fork
            } else {
              PathState other = st;  // fork the false arm
              other.decided[key] = false;
              other.constraints.push_back({Truthy(cond), false});
              other.decisions.push_back({inst.id, false, cond});
              other.block = inst.target_false;
              work.push_back(std::move(other));
              st.decided[key] = true;
              st.constraints.push_back({Truthy(cond), true});
              taken = true;
            }
          }
          st.decisions.push_back({inst.id, taken, cond});
          st.block = taken ? inst.target_true : inst.target_false;
          break;
        }
        ExecCtx ctx{&fn, &st.regs, &st.oracle, &st.trace, nullptr, "orig"};
        ExecInst(ctx, inst);
        st.trace.exec_count[inst.id] += 1;
      }
    }
    if (truncated) {
      *exhaustive = false;  // loop or path too long for the budget; skip
      continue;
    }
    PathInfo info;
    info.decisions = std::move(st.decisions);
    info.constraints = std::move(st.constraints);
    info.trace = std::move(st.trace);
    paths.push_back(std::move(info));
  }
  return paths;
}

// --- Composed-pipeline replay ------------------------------------------------

struct Problem {
  std::string kind;
  std::string detail;
  TermRef da, db;  // optional diverging term pair for the concretizer
};

// Replays one pass (pre / non-offloaded / post) of the composed pipeline
// along the original path, mirroring runtime::Interpreter::Walk.
//
// `needs_server` (pre pass only) mirrors ExecResult::needs_server: set when
// the pass revisits a block, hits a branch condition it cannot evaluate, or
// skips a statement owed to a later partition. When it stays false the
// runtime takes the switch-only fast path and never runs the server or post
// passes (offloaded_middlebox.cc), so the caller must skip them too.
void RunComposedPass(const ir::Function& fn,
                     const partition::PartitionPlan& plan, Part part,
                     const analysis::CfgInfo& cfg, const PathInfo& path,
                     StateOracle& oracle, RunTrace& trace,
                     const partition::TransferSpec* in_spec,
                     const std::map<Reg, TermRef>* in_values,
                     const partition::TransferSpec* out_spec,
                     std::map<Reg, TermRef>* out_values,
                     std::vector<Problem>& problems, const PathLimits& limits,
                     bool* exhaustive, bool* needs_server = nullptr) {
  const char* pass_name = partition::PartName(part);
  std::map<Reg, TermRef> regs;
  if (in_spec != nullptr && in_values != nullptr) {
    for (Reg r : in_spec->cond_regs) {
      const auto it = in_values->find(r);
      regs[r] = it != in_values->end() ? it->second : MakeConst(0);
    }
    for (Reg r : in_spec->var_regs) {
      const auto it = in_values->find(r);
      regs[r] = it != in_values->end() ? it->second : MakeConst(0);
    }
  }

  // Per-branch FIFO of the original path's decisions.
  std::map<InstId, std::deque<const Decision*>> queues;
  for (const Decision& d : path.decisions) queues[d.inst].push_back(&d);

  auto replicable = [&](const ir::Instruction& inst) {
    return inst.id < static_cast<InstId>(plan.replicable.size()) &&
           plan.replicable[inst.id];
  };
  auto mine = [&](const ir::Instruction& inst) {
    if (replicable(inst)) return true;
    return plan.PartOf(inst.id) == part;
  };

  std::vector<std::string> undef_uses;
  ExecCtx ctx{&fn, &regs, &oracle, &trace, &undef_uses, pass_name};

  std::vector<bool> visited(fn.num_blocks(), false);
  // Regions reached by diverging from the recorded path (a branch whose
  // condition this pass cannot evaluate): per the interpreter's contract no
  // statement of this pass may live there. Stack of join blocks.
  std::vector<int> diverged_until;
  bool reported_diverged_exec = false;

  int block = fn.entry_block();
  int steps = 0;
  bool done = false;
  while (!done) {
    if (part == Part::kPre) {
      if (visited[block]) {
        // Loop: remaining work is the server's.
        if (needs_server != nullptr) *needs_server = true;
        break;
      }
      visited[block] = true;
    }
    while (!diverged_until.empty() && diverged_until.back() == block) {
      diverged_until.pop_back();
    }
    const bool diverged = !diverged_until.empty();

    const ir::BasicBlock& bb = fn.block(block);
    for (size_t i = 0; i < bb.insts.size(); ++i) {
      const ir::Instruction& inst = bb.insts[i];
      if (++steps > limits.max_steps_per_path) {
        *exhaustive = false;
        done = true;
        break;
      }
      if (inst.op == Opcode::kReturn) {
        done = true;
        break;
      }
      if (inst.op == Opcode::kJump) {
        block = inst.target_true;
        break;
      }
      if (inst.op == Opcode::kBranch) {
        const ir::Value& cv = inst.args[0];
        const bool defined = cv.is_imm() || regs.count(cv.reg) > 0;
        auto& queue = queues[inst.id];

        if (!defined) {
          if (!queue.empty() && !diverged) queue.pop_front();
          if (part == Part::kPre) {
            // Condition produced by a later partition: the pre pass ends
            // here and forwards to the server.
            if (needs_server != nullptr) *needs_server = true;
            done = true;
            break;
          }
          if (part == Part::kPost) {
            problems.push_back(
                {"undefined-branch",
                 "branch condition %" + fn.reg_name(cv.reg) +
                     " undefined in the post pass (inst " +
                     std::to_string(inst.id) + ")",
                 nullptr, nullptr});
          }
          // Server semantics: both arms hold no work of this pass; take the
          // false arm to the join.
          const int join = cfg.ImmediatePostDominator(block);
          if (join >= 0) diverged_until.push_back(join);
          block = inst.target_false;
          break;
        }

        TermRef cond = ValueOf(ctx, cv);
        if (diverged) {
          // Off the recorded path: navigate without consuming decisions.
          block = cond->is_const() && cond->value != 0 ? inst.target_true
                                                       : inst.target_false;
          break;
        }
        if (queue.empty()) {
          // No recorded decision (only reachable through an earlier
          // divergence); treat like a diverged region.
          const int join = cfg.ImmediatePostDominator(block);
          if (join >= 0) diverged_until.push_back(join);
          block = cond->is_const() && cond->value != 0 ? inst.target_true
                                                       : inst.target_false;
          break;
        }
        const Decision* d = queue.front();
        queue.pop_front();
        if (!SameTerm(Truthy(cond), Truthy(d->cond))) {
          problems.push_back(
              {"branch",
               "branch condition diverged at inst " + std::to_string(inst.id) +
                   " in " + pass_name + " pass: composed " + cond->repr +
                   " vs original " + d->cond->repr,
               Truthy(cond), Truthy(d->cond)});
        }
        // Follow the original decision so later comparisons stay aligned.
        block = d->taken ? inst.target_true : inst.target_false;
        break;
      }

      if (!mine(inst)) {
        if (part == Part::kPre && needs_server != nullptr &&
            plan.PartOf(inst.id) != Part::kPre) {
          // Skipped work owed to the server (or the post pass after it).
          *needs_server = true;
        }
        continue;
      }
      if (diverged && !reported_diverged_exec) {
        problems.push_back(
            {"diverged-exec",
             std::string(pass_name) + "-pass statement " +
                 std::to_string(inst.id) +
                 " executes in a region the recorded path never entered",
             nullptr, nullptr});
        reported_diverged_exec = true;
      }
      ExecInst(ctx, inst);
      if (!replicable(inst)) trace.exec_count[inst.id] += 1;
    }
  }

  for (const std::string& use : undef_uses) {
    problems.push_back({"undefined-use", use, nullptr, nullptr});
  }

  if (out_spec != nullptr && out_values != nullptr) {
    // Mirrors PackTransfer: cond slots carry truthiness, var slots the
    // (width-masked) value; undefined registers travel as zero.
    for (Reg r : out_spec->cond_regs) {
      const auto it = regs.find(r);
      (*out_values)[r] =
          it != regs.end() ? Truthy(it->second) : MakeConst(0);
    }
    for (Reg r : out_spec->var_regs) {
      const auto it = regs.find(r);
      (*out_values)[r] = it != regs.end() ? it->second : MakeConst(0);
    }
  }
}

// --- Trace comparison --------------------------------------------------------

void CompareTraces(const RunTrace& orig, const RunTrace& comp,
                   const partition::PartitionPlan& plan,
                   std::vector<Problem>& problems) {
  // Execution counts: every non-replicable statement on the path must run
  // exactly once across the three passes (loops: once per traversal).
  // Replicable statements legitimately re-execute in every pass that walks
  // past them, so they are excluded from the comparison.
  {
    std::map<InstId, std::pair<int, int>> counts;
    for (const auto& [id, n] : orig.exec_count) counts[id].first = n;
    for (const auto& [id, n] : comp.exec_count) counts[id].second = n;
    for (const auto& [id, pair] : counts) {
      if (id < static_cast<InstId>(plan.replicable.size()) &&
          plan.replicable[id]) {
        continue;
      }
      if (pair.first != pair.second) {
        problems.push_back(
            {"exec-count",
             "inst " + std::to_string(id) + " executed " +
                 std::to_string(pair.second) +
                 " time(s) in the composed pipeline vs " +
                 std::to_string(pair.first) + " in the original",
             nullptr, nullptr});
      }
    }
  }

  // Per-object write sequences.
  {
    std::map<std::string, std::pair<const std::vector<std::string>*,
                                    const std::vector<std::string>*>>
        objs;
    for (const auto& [obj, seq] : orig.writes) objs[obj].first = &seq;
    for (const auto& [obj, seq] : comp.writes) objs[obj].second = &seq;
    static const std::vector<std::string> kEmpty;
    for (const auto& [obj, pair] : objs) {
      const auto& a = pair.first != nullptr ? *pair.first : kEmpty;
      const auto& b = pair.second != nullptr ? *pair.second : kEmpty;
      if (a == b) continue;
      std::string detail = "state " + obj + ": ";
      size_t i = 0;
      while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
      if (i < a.size() && i < b.size()) {
        detail += "write #" + std::to_string(i) + " is '" + b[i] +
                  "' in the composed pipeline vs '" + a[i] + "'";
      } else if (a.size() > b.size()) {
        detail += "composed pipeline is missing write #" + std::to_string(i) +
                  " '" + a[i] + "'";
      } else {
        detail += "composed pipeline performs extra write #" +
                  std::to_string(i) + " '" + b[i] + "'";
      }
      problems.push_back({"state-trace", detail, nullptr, nullptr});
    }
  }

  // Verdict sequence.
  if (orig.verdicts.size() != comp.verdicts.size()) {
    problems.push_back(
        {"verdict",
         "composed pipeline produced " + std::to_string(comp.verdicts.size()) +
             " send/drop verdict(s) vs " +
             std::to_string(orig.verdicts.size()) + " in the original",
         nullptr, nullptr});
  } else {
    for (size_t i = 0; i < orig.verdicts.size(); ++i) {
      const VerdictEvent& a = orig.verdicts[i];
      const VerdictEvent& b = comp.verdicts[i];
      if (a.is_send != b.is_send) {
        problems.push_back({"verdict",
                            std::string("composed pipeline ") +
                                (b.is_send ? "sends" : "drops") +
                                " where the original " +
                                (a.is_send ? "sends" : "drops"),
                            nullptr, nullptr});
      } else if (a.is_send && !SameTerm(a.port, b.port)) {
        problems.push_back({"verdict",
                            "egress port diverged: composed " + b.port->repr +
                                " vs original " + a.port->repr,
                            a.port, b.port});
      }
    }
  }

  // Final header contents. Fields untouched by a run keep their input term.
  {
    std::map<HeaderField, std::pair<TermRef, TermRef>> fields;
    for (const auto& [f, t] : orig.header) fields[f].first = t;
    for (const auto& [f, t] : comp.header) fields[f].second = t;
    for (auto& [f, pair] : fields) {
      TermRef a = pair.first != nullptr ? pair.first : HeaderInput(f);
      TermRef b = pair.second != nullptr ? pair.second : HeaderInput(f);
      if (!SameTerm(a, b)) {
        problems.push_back({"header",
                            std::string("field ") + ir::HeaderFieldName(f) +
                                " diverged: composed " + b->repr +
                                " vs original " + a->repr,
                            a, b});
      }
    }
  }
}

}  // namespace

// --- Counterexample construction ---------------------------------------------

net::Packet PacketFromAssignment(const Assignment& inputs,
                                 const ir::Function& fn) {
  net::FiveTuple flow;
  flow.saddr = 0x0a000002;
  flow.daddr = 0x0a000003;
  flow.sport = 1234;
  flow.dport = 80;
  flow.protocol = net::kIpProtoTcp;
  net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpSyn, 0);

  for (const auto& [name, value] : inputs) {
    if (name.rfind("hdr.", 0) == 0) {
      for (int f = 0; f < ir::kNumHeaderFields; ++f) {
        const HeaderField field = static_cast<HeaderField>(f);
        if (name == HeaderInputName(field)) {
          runtime::Interpreter::WriteHeaderField(pkt, field, value);
          break;
        }
      }
    } else if (name.rfind("payload.match.", 0) == 0 && value != 0) {
      const uint32_t pattern =
          static_cast<uint32_t>(std::strtoul(name.c_str() + 14, nullptr, 10));
      if (pattern < fn.patterns().size()) {
        const std::string& bytes = fn.patterns()[pattern];
        pkt.payload().insert(pkt.payload().end(), bytes.begin(), bytes.end());
      }
    } else if (name == "payload.len") {
      const size_t want = std::min<uint64_t>(value, 1400);
      if (pkt.payload().size() < want) pkt.payload().resize(want, 0x61);
    }
  }
  return pkt;
}

std::string Counterexample::ToString() const {
  std::ostringstream out;
  out << (concrete ? "counterexample packet: " + packet.ToString()
                   : "no concrete witness found (path condition shown)");
  out << "\n  path: " << path_condition;
  if (concrete) {
    out << "\n  inputs:";
    for (const auto& [name, value] : inputs) {
      out << " " << name << "=" << value;
    }
  }
  return out.str();
}

std::string Mismatch::ToString() const {
  return "[" + kind + "] path " + std::to_string(path) + ": " + detail +
         "\n  " + cex.ToString();
}

std::string ValidationResult::Summary() const {
  std::ostringstream out;
  out << (equivalent ? "translation validated" : "translation REJECTED")
      << ": " << paths_checked << " symbolic path(s)"
      << (exhaustive ? "" : " (budget hit; non-exhaustive)");
  for (const Mismatch& m : mismatches) out << "\n" << m.ToString();
  return out.str();
}

// --- Entry points ------------------------------------------------------------

ValidationResult ValidateTranslation(const ir::Function& fn,
                                     const partition::PartitionPlan& plan,
                                     const PathLimits& limits) {
  return ValidateTranslationAgainst(fn, fn, plan, limits);
}

ValidationResult ValidateTranslationAgainst(const ir::Function& original,
                                            const ir::Function& composed,
                                            const partition::PartitionPlan& plan,
                                            const PathLimits& limits) {
  ValidationResult result;
  if (plan.assignment.size() < static_cast<size_t>(original.num_insts())) {
    result.mismatches.push_back(
        {"plan", "partition assignment does not cover the function", -1, {}});
    return result;
  }

  const analysis::CfgInfo cfg(composed);
  bool exhaustive = true;
  const std::vector<PathInfo> paths =
      EnumeratePaths(original, limits, &exhaustive);
  result.exhaustive = exhaustive;

  uint64_t cex_seed = limits.solver_seed;
  for (size_t p = 0; p < paths.size(); ++p) {
    if (static_cast<int>(result.mismatches.size()) >= limits.max_mismatches) {
      break;
    }
    const PathInfo& path = paths[p];
    ++result.paths_checked;

    StateOracle oracle;
    RunTrace trace;
    std::vector<Problem> problems;
    std::map<Reg, TermRef> to_server_values, to_switch_values;
    bool needs_server = false;
    RunComposedPass(composed, plan, Part::kPre, cfg, path, oracle, trace,
                    nullptr, nullptr, &plan.to_server, &to_server_values,
                    problems, limits, &result.exhaustive, &needs_server);
    if (needs_server) {
      // Runtime contract (offloaded_middlebox.cc): a pass that forwards to
      // the server must not already have committed a send/drop verdict.
      if (!trace.verdicts.empty()) {
        problems.push_back(
            {"output-commit",
             "pre pass committed a send/drop verdict on a path that still "
             "needs the server",
             nullptr, nullptr});
      }
      RunComposedPass(composed, plan, Part::kNonOffloaded, cfg, path, oracle,
                      trace, &plan.to_server, &to_server_values,
                      &plan.to_switch, &to_switch_values, problems, limits,
                      &result.exhaustive);
      RunComposedPass(composed, plan, Part::kPost, cfg, path, oracle, trace,
                      &plan.to_switch, &to_switch_values, nullptr, nullptr,
                      problems, limits, &result.exhaustive);
    }
    // else: switch-only fast path — the runtime never invokes the server or
    // post passes for this packet, so the pre trace is the whole pipeline.

    CompareTraces(path.trace, trace, plan, problems);

    for (const Problem& problem : problems) {
      if (static_cast<int>(result.mismatches.size()) >=
          limits.max_mismatches) {
        break;
      }
      Mismatch m;
      m.kind = problem.kind;
      m.detail = problem.detail;
      m.path = static_cast<int>(p);
      m.cex.path_condition = PathConditionString(path.constraints);
      Assignment witness;
      bool solved = false;
      if (problem.da != nullptr && problem.db != nullptr) {
        solved = SolveConstraints(path.constraints, problem.da, problem.db,
                                  ++cex_seed, limits.solver_tries, &witness);
      }
      if (!solved) {
        solved = SolveConstraints(path.constraints, nullptr, nullptr,
                                  ++cex_seed, limits.solver_tries, &witness);
      }
      if (solved) {
        m.cex.concrete = true;
        m.cex.inputs = std::move(witness);
        m.cex.packet = PacketFromAssignment(m.cex.inputs, original);
      }
      result.mismatches.push_back(std::move(m));
    }
  }

  result.equivalent = result.mismatches.empty();
  return result;
}

}  // namespace gallium::verify
