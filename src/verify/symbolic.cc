#include "verify/symbolic.h"

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/strings.h"

namespace gallium::verify {

namespace {

std::string HexConst(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "#%llx", static_cast<unsigned long long>(v));
  return buf;
}

// Low-mask width: returns k if m == 2^k - 1 (k in 1..64), else -1.
int LowMaskBits(uint64_t m) {
  if (m == ~0ull) return 64;
  if (m == 0 || (m & (m + 1)) != 0) return -1;
  int bits = 0;
  while (m != 0) {
    ++bits;
    m >>= 1;
  }
  return bits;
}

}  // namespace

TermRef MakeConst(uint64_t v) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kConst;
  t->value = v;
  t->is_bool = v <= 1;
  t->max_bits = LowMaskBits(v) > 0 ? LowMaskBits(v) : 64;
  if (v == 0) t->max_bits = 1;
  t->repr = HexConst(v);
  return t;
}

TermRef MakeInput(std::string name, int max_bits, bool is_bool) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kInput;
  t->input = name;
  t->max_bits = is_bool ? 1 : max_bits;
  t->is_bool = is_bool;
  t->repr = std::move(name);
  return t;
}

TermRef MakeAlu(ir::AluOp op, TermRef a, TermRef b) {
  const bool unary = ir::AluOpIsUnary(op);
  // Constant folding at the interpreter's evaluation width (u64).
  if (a->is_const() && (unary || (b != nullptr && b->is_const()))) {
    return MakeConst(
        ir::EvalAluOp(op, a->value, unary ? 0 : b->value, ir::Width::kU64));
  }
  // And(x, low-mask) is the identity when x provably fits the mask.
  if (op == ir::AluOp::kAnd && b != nullptr && b->is_const()) {
    const int mask_bits = LowMaskBits(b->value);
    if (mask_bits > 0 && a->max_bits > 0 && a->max_bits <= mask_bits) return a;
  }
  // Ne(x, 0) is the identity on booleans.
  if (op == ir::AluOp::kNe && b != nullptr && b->is_const() && b->value == 0 &&
      a->is_bool) {
    return a;
  }
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kAlu;
  t->alu = op;
  t->a = std::move(a);
  t->b = std::move(b);
  if (ir::AluOpIsComparison(op)) {
    t->is_bool = true;
    t->max_bits = 1;
  } else if (op == ir::AluOp::kAnd && t->b != nullptr) {
    const int bits = t->b->is_const() ? LowMaskBits(t->b->value) : -1;
    t->max_bits = bits > 0 ? bits : 0;
  }
  t->repr = std::string("(") + ir::AluOpName(op) + " " + t->a->repr +
            (t->b != nullptr ? " " + t->b->repr : "") + ")";
  return t;
}

TermRef Masked(TermRef t, ir::Width w) {
  return MakeAlu(ir::AluOp::kAnd, std::move(t), MakeConst(ir::WidthMask(w)));
}

TermRef Truthy(TermRef t) {
  if (t->is_bool) return t;
  return MakeAlu(ir::AluOp::kNe, std::move(t), MakeConst(0));
}

std::string ConstraintString(const Constraint& c) {
  return (c.truth ? "" : "!") + c.term->repr;
}

std::string PathConditionString(const std::vector<Constraint>& cs) {
  std::string out;
  for (const Constraint& c : cs) {
    if (!out.empty()) out += " && ";
    out += ConstraintString(c);
  }
  return out.empty() ? "true" : out;
}

uint64_t EvalTerm(const Term& t, const Assignment& inputs) {
  switch (t.kind) {
    case TermKind::kConst:
      return t.value;
    case TermKind::kInput: {
      const auto it = inputs.find(t.input);
      return it == inputs.end() ? 0 : it->second;
    }
    case TermKind::kAlu:
      return ir::EvalAluOp(t.alu, EvalTerm(*t.a, inputs),
                           t.b != nullptr ? EvalTerm(*t.b, inputs) : 0,
                           ir::Width::kU64);
  }
  return 0;
}

namespace {

void Harvest(const Term& t, std::set<std::string>* names,
             std::set<uint64_t>* consts) {
  switch (t.kind) {
    case TermKind::kConst:
      consts->insert(t.value);
      if (t.value > 0) consts->insert(t.value - 1);
      consts->insert(t.value + 1);
      break;
    case TermKind::kInput:
      names->insert(t.input);
      break;
    case TermKind::kAlu:
      Harvest(*t.a, names, consts);
      if (t.b != nullptr) Harvest(*t.b, names, consts);
      break;
  }
}

}  // namespace

bool SolveConstraints(const std::vector<Constraint>& constraints,
                      const TermRef& distinguish_a, const TermRef& distinguish_b,
                      uint64_t seed, int tries, Assignment* out) {
  std::set<std::string> names;
  std::set<uint64_t> consts{0, 1, 2, 80, 443, 0x0a000001ull};
  for (const Constraint& c : constraints) Harvest(*c.term, &names, &consts);
  if (distinguish_a != nullptr) Harvest(*distinguish_a, &names, &consts);
  if (distinguish_b != nullptr) Harvest(*distinguish_b, &names, &consts);
  const std::vector<uint64_t> pool(consts.begin(), consts.end());

  Rng rng(seed);
  for (int attempt = 0; attempt < tries; ++attempt) {
    Assignment candidate;
    for (const std::string& name : names) {
      // Bias toward constants appearing in the conditions (comparisons
      // against program literals dominate middlebox path conditions), with
      // a random tail for the rest.
      uint64_t v;
      if (!pool.empty() && rng.NextBool(0.7)) {
        v = pool[rng.NextBounded(pool.size())];
      } else if (rng.NextBool(0.5)) {
        v = rng.NextBounded(1 << 16);
      } else {
        v = rng.NextU64();
      }
      candidate[name] = v;
    }
    bool ok = true;
    for (const Constraint& c : constraints) {
      if ((EvalTerm(*c.term, candidate) != 0) != c.truth) {
        ok = false;
        break;
      }
    }
    if (ok && distinguish_a != nullptr && distinguish_b != nullptr) {
      ok = EvalTerm(*distinguish_a, candidate) !=
           EvalTerm(*distinguish_b, candidate);
    }
    if (ok) {
      if (out != nullptr) *out = std::move(candidate);
      return true;
    }
  }
  return false;
}

}  // namespace gallium::verify
