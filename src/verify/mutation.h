// Gauntlet-style mutation driver: seeds known-bad transformations of a
// partition plan (or the composed program the plan produces) and asserts the
// translation validator rejects each with a concrete counterexample. This is
// the validator's own test oracle — a validator that misses these seeded bug
// classes would also miss the corresponding compiler bugs.
#pragma once

#include <string>
#include <vector>

#include "ir/function.h"
#include "partition/plan.h"
#include "verify/validator.h"

namespace gallium::verify {

enum class MutationClass : uint8_t {
  // A statement's non-offloaded label is wrongly removed: a server statement
  // is hoisted into the pre partition where its inputs are not yet defined.
  kLabelMisRemoval,
  // A server-side state write is dropped from the composed program (the
  // write-back that keeps switch replicas fresh never happens).
  kDroppedWriteBack,
  // Two state-accessing statements on the same object are reordered (the
  // write-back/sync order the plan promised is violated).
  kReorderedSync,
  // An offloaded table lookup wires its results to the wrong destinations —
  // the emitted table invokes the wrong action.
  kWrongTableAction,
  // A statement is moved across the wrong side of a partition boundary
  // (pre work deferred past the server hand-off, or post work hoisted
  // before it).
  kSwappedBoundary,
};
inline constexpr int kNumMutationClasses = 5;

const char* MutationClassName(MutationClass c);

struct Mutation {
  MutationClass cls = MutationClass::kLabelMisRemoval;
  std::string description;
  // The mutated composed program (== the original for plan-only mutations)
  // and the mutated plan (== the input plan for program-only mutations).
  ir::Function fn;
  partition::PartitionPlan plan;
};

// Enumerates up to `max_candidates` seeded mutations of the given class.
// Candidates are chosen so the mutation is semantics-changing on some packet
// path; an empty result means the program offers no seeding point for the
// class (e.g. no offloaded table lookup).
std::vector<Mutation> EnumerateMutations(const ir::Function& fn,
                                         const partition::PartitionPlan& plan,
                                         MutationClass cls,
                                         int max_candidates = 4);

struct CampaignClassResult {
  MutationClass cls = MutationClass::kLabelMisRemoval;
  int generated = 0;
  int caught = 0;                  // validator reported non-equivalence
  int with_counterexample = 0;     // ... with a concrete witness packet
  std::string example;             // first caught mismatch, for reports
};

struct CampaignResult {
  std::vector<CampaignClassResult> classes;
  int generated = 0;
  int caught = 0;

  std::string Summary() const;
};

// Runs every mutation class against the validator.
CampaignResult RunMutationCampaign(const ir::Function& fn,
                                   const partition::PartitionPlan& plan,
                                   const PathLimits& limits = {},
                                   int max_candidates_per_class = 4);

}  // namespace gallium::verify
