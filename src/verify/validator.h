// Translation validation (Gauntlet-style, §4.3's correctness claim made
// static): for one compile, prove that the composed partitioned program —
// P4 pre pass, server non-offloaded pass, P4 post pass, with the plan's
// transfer headers and write-back ordering — is path-by-path equivalent to
// the original middlebox IR.
//
// The validator enumerates symbolic packet paths through the original
// function (bounded DFS over branch outcomes), then replays each path
// through the composed pipeline exactly as runtime::Interpreter executes it
// (same partition filtering, replicable re-execution, transfer-header
// truthiness packing, per-pass undefined-condition semantics). Equivalence
// per path requires:
//   - identical branch-condition terms at every replicated branch,
//   - each statement on the path executed exactly once across the passes,
//   - per-state-object write sequences identical (op, key terms, value
//     terms, order) — write-back/sync reordering shows up here,
//   - identical verdict (send/drop, symbolic egress port) and final
//     symbolic header contents.
// On mismatch it reports the failing path's condition and attempts to
// concretize a counterexample packet that drives execution down it.
//
// Soundness caveats (documented in DESIGN.md): map reads with symbolic keys
// use a may-alias oracle (conservative, no false negatives for aligned
// histories); path enumeration is bounded (`exhaustive` reports whether the
// budget sufficed); TCP-only header fields assume a TCP packet.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/function.h"
#include "net/packet.h"
#include "partition/plan.h"
#include "verify/symbolic.h"

namespace gallium::verify {

struct PathLimits {
  int max_paths = 2048;          // enumerated symbolic paths
  int max_steps_per_path = 4096; // instructions walked per path
  int max_mismatches = 8;        // stop reporting after this many
  int solver_tries = 4000;       // concretization budget per mismatch
  uint64_t solver_seed = 0x9a11u;
};

struct Counterexample {
  // True when the solver produced a concrete witness; `inputs` then
  // satisfies the path condition (and distinguishes the diverging terms),
  // and `packet` realizes its header-field inputs.
  bool concrete = false;
  Assignment inputs;
  net::Packet packet;
  std::string path_condition;

  std::string ToString() const;
};

struct Mismatch {
  std::string kind;    // "branch" | "exec-count" | "state-trace" | "verdict"
                       // | "header" | "undefined-use" | ...
  std::string detail;
  int path = -1;       // index of the failing symbolic path
  Counterexample cex;

  std::string ToString() const;
};

struct ValidationResult {
  bool equivalent = false;
  bool exhaustive = true;  // false when a path budget was hit
  int paths_checked = 0;
  std::vector<Mismatch> mismatches;

  std::string Summary() const;
};

// Validates that `plan` applied to `fn` preserves `fn`'s semantics.
ValidationResult ValidateTranslation(const ir::Function& fn,
                                     const partition::PartitionPlan& plan,
                                     const PathLimits& limits = {});

// Mutation-driver entry point: `composed` stands in for the (possibly
// buggy) compiled artifact and is executed on the partitioned side, while
// `original` provides the reference semantics. Both functions must share
// block/instruction/register numbering.
ValidationResult ValidateTranslationAgainst(const ir::Function& original,
                                            const ir::Function& composed,
                                            const partition::PartitionPlan& plan,
                                            const PathLimits& limits = {});

// Builds a packet realizing the assignment's "hdr.*" / "payload.*" inputs
// (TCP skeleton; best-effort for payload length). Exposed for tests.
net::Packet PacketFromAssignment(const Assignment& inputs,
                                 const ir::Function& fn);

}  // namespace gallium::verify
