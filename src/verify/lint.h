// Offload-safety lints over a partition plan and the generated P4 program.
//
// The validator (validator.h) proves per-path semantic equivalence; the lints
// catch structural hazards that equivalence alone does not rule out — stale
// reads of replicated state, verdicts committed before the server finishes,
// malformed generated P4 — plus hygiene warnings (dead partitions,
// unreachable blocks, never-read registers).
#pragma once

#include <string>
#include <vector>

#include "ir/function.h"
#include "p4/ast.h"
#include "partition/plan.h"

namespace gallium::verify {

enum class LintSeverity : uint8_t { kWarning, kError };
const char* LintSeverityName(LintSeverity s);

struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  // Stable machine-readable code, e.g. "replicated-war-hazard",
  // "output-commit", "p4-undefined-action".
  std::string code;
  std::string message;

  std::string ToString() const;
};

// Plan-level lints:
//  - replicated-war-hazard (error): a switch-side read of replicated state
//    that can happen after a server-side write to the same object — the read
//    may observe a stale pre-sync value.
//  - output-commit (error): a send/drop in the pre partition that can be
//    followed by non-offloaded work with externally visible effects (state
//    writes or another verdict) — the verdict is committed before the server
//    finishes deciding.
//  - dead-partition (warning): a switch partition with zero assigned
//    statements.
//  - unreachable-block / never-read-register (warnings) from
//    ir::VerifyFunctionWithWarnings.
std::vector<LintFinding> LintPlan(const ir::Function& fn,
                                  const partition::PartitionPlan& plan);

// Generated-P4 lints:
//  - p4-undefined-action (error): a table lists or defaults to an action the
//    program does not define.
//  - p4-uncovered-table (error): a table with no actions, or no default
//    action (a miss would have undefined behavior).
//  - p4-dead-action (warning): an action no table references.
//  - p4-uninit-meta-read (warning): an apply-body read of a metadata field
//    that no prior apply statement, action body, or parser state assigns.
std::vector<LintFinding> LintP4(const p4::P4Program& program);

// Runs every lint; `program` may be null when no P4 was generated.
std::vector<LintFinding> LintAll(const ir::Function& fn,
                                 const partition::PartitionPlan& plan,
                                 const p4::P4Program* program);

bool HasErrors(const std::vector<LintFinding>& findings);

}  // namespace gallium::verify
