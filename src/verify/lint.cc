#include "verify/lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "analysis/cfg.h"
#include "ir/verifier.h"

namespace gallium::verify {

namespace {

using ir::InstId;
using ir::Opcode;
using partition::Part;

bool ReadsState(Opcode op) {
  return op == Opcode::kMapGet || op == Opcode::kGlobalRead;
}

bool IsVerdict(Opcode op) {
  return op == Opcode::kSend || op == Opcode::kDrop;
}

// All occurrences of "meta.<ident>" in a line, as (position, field name).
std::vector<std::pair<size_t, std::string>> MetaTokens(const std::string& line) {
  std::vector<std::pair<size_t, std::string>> out;
  size_t pos = 0;
  while ((pos = line.find("meta.", pos)) != std::string::npos) {
    const size_t start = pos + 5;
    size_t end = start;
    while (end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[end])) != 0 ||
            line[end] == '_')) {
      ++end;
    }
    if (end > start) out.emplace_back(pos, line.substr(start, end - start));
    pos = end;
  }
  return out;
}

// True when the first meta token of `line` is the target of an assignment
// ("meta.x = ..." but not "meta.x == ...").
bool LineWritesFirstToken(const std::string& line, size_t token_pos,
                          const std::string& field) {
  size_t i = token_pos + 5 + field.size();
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  return i < line.size() && line[i] == '=' &&
         (i + 1 >= line.size() || line[i + 1] != '=');
}

// True when the token at `token_pos` is the out-argument of a P4 register
// read ("reg.read(meta.x, idx)"), which writes meta.x rather than reading it.
bool IsRegisterReadTarget(const std::string& line, size_t token_pos) {
  size_t i = token_pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(line[i - 1]))) {
    --i;
  }
  return i >= 6 && line.compare(i - 6, 6, ".read(") == 0;
}

}  // namespace

const char* LintSeverityName(LintSeverity s) {
  return s == LintSeverity::kError ? "error" : "warning";
}

std::string LintFinding::ToString() const {
  return std::string(LintSeverityName(severity)) + " [" + code + "] " +
         message;
}

std::vector<LintFinding> LintPlan(const ir::Function& fn,
                                  const partition::PartitionPlan& plan) {
  std::vector<LintFinding> findings;
  auto add = [&](LintSeverity sev, std::string code, std::string msg) {
    findings.push_back({sev, std::move(code), std::move(msg)});
  };

  const analysis::CfgInfo cfg(fn);

  // Gather per-state-object accesses with their partition.
  struct Access {
    InstId inst;
    Part part;
    bool is_write;
  };
  std::map<ir::StateRef, std::vector<Access>> accesses;
  std::vector<std::pair<InstId, Part>> verdicts;
  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const ir::Instruction& inst : bb.insts) {
      if (inst.id >= static_cast<InstId>(plan.assignment.size())) continue;
      const Part part = plan.assignment[inst.id];
      ir::StateRef ref;
      if (ir::Function::InstStateRef(inst, &ref)) {
        if (inst.WritesState() || ReadsState(inst.op)) {
          accesses[ref].push_back({inst.id, part, inst.WritesState()});
        }
      }
      if (IsVerdict(inst.op)) verdicts.emplace_back(inst.id, part);
    }
  }

  // Replicated-state write-after-read hazard: a switch read that some trace
  // performs after a server write to the same object would need a value the
  // asynchronous write-back sync cannot guarantee to have arrived.
  for (const auto& [ref, list] : accesses) {
    const auto it = plan.state_placement.find(ref);
    if (it == plan.state_placement.end() ||
        it->second != partition::StatePlacement::kReplicated) {
      continue;
    }
    for (const Access& read : list) {
      if (read.is_write || read.part == Part::kNonOffloaded) continue;
      for (const Access& write : list) {
        if (!write.is_write || write.part != Part::kNonOffloaded) continue;
        if (cfg.CanHappenAfter(read.inst, write.inst)) {
          add(LintSeverity::kError, "replicated-war-hazard",
              "switch-side read (inst " + std::to_string(read.inst) +
                  ") of replicated state " + fn.StateName(ref) +
                  " can happen after server-side write (inst " +
                  std::to_string(write.inst) +
                  "); the read may observe a stale replica");
        }
      }
    }
  }

  // Output-commit violation: a pre-partition verdict followed (on some
  // trace) by non-pre work with externally visible effects.
  for (const auto& [verdict_inst, verdict_part] : verdicts) {
    if (verdict_part != Part::kPre) continue;
    for (const ir::BasicBlock& bb : fn.blocks()) {
      for (const ir::Instruction& inst : bb.insts) {
        if (inst.id >= static_cast<InstId>(plan.assignment.size())) continue;
        if (plan.assignment[inst.id] == Part::kPre) continue;
        if (!inst.WritesState() && !IsVerdict(inst.op)) continue;
        if (cfg.CanHappenAfter(inst.id, verdict_inst)) {
          add(LintSeverity::kError, "output-commit",
              "pre-partition verdict (inst " + std::to_string(verdict_inst) +
                  ") can be followed by " + std::string(ir::OpcodeName(inst.op)) +
                  " (inst " + std::to_string(inst.id) + ") in the " +
                  partition::PartName(plan.assignment[inst.id]) +
                  " partition; the verdict commits before the server "
                  "finishes");
        }
      }
    }
  }

  if (plan.num_pre == 0) {
    add(LintSeverity::kWarning, "dead-partition",
        "pre partition is empty; no statements were offloaded ahead of the "
        "server");
  }
  if (plan.num_post == 0) {
    add(LintSeverity::kWarning, "dead-partition",
        "post partition is empty; no statements were offloaded after the "
        "server");
  }

  std::vector<ir::VerifyWarning> warns;
  if (ir::VerifyFunctionWithWarnings(fn, &warns).ok()) {
    for (const ir::VerifyWarning& w : warns) {
      add(LintSeverity::kWarning,
          w.kind == ir::VerifyWarning::Kind::kUnreachableBlock
              ? "unreachable-block"
              : "never-read-register",
          w.message);
    }
  }
  return findings;
}

std::vector<LintFinding> LintP4(const p4::P4Program& program) {
  std::vector<LintFinding> findings;
  auto add = [&](LintSeverity sev, std::string code, std::string msg) {
    findings.push_back({sev, std::move(code), std::move(msg)});
  };

  std::set<std::string> defined;
  for (const p4::P4Action& a : program.actions) defined.insert(a.name);
  std::set<std::string> referenced;

  for (const p4::P4Table& t : program.tables) {
    if (t.actions.empty()) {
      add(LintSeverity::kError, "p4-uncovered-table",
          "table " + t.name + " lists no actions");
    }
    for (const std::string& a : t.actions) {
      referenced.insert(a);
      if (a != "NoAction" && defined.count(a) == 0) {
        add(LintSeverity::kError, "p4-undefined-action",
            "table " + t.name + " references undefined action " + a);
      }
    }
    if (t.default_action.empty()) {
      add(LintSeverity::kError, "p4-uncovered-table",
          "table " + t.name + " has no default action; a miss is undefined");
    } else {
      referenced.insert(t.default_action);
      if (t.default_action != "NoAction" &&
          defined.count(t.default_action) == 0) {
        add(LintSeverity::kError, "p4-undefined-action",
            "table " + t.name + " defaults to undefined action " +
                t.default_action);
      } else if (std::find(t.actions.begin(), t.actions.end(),
                           t.default_action) == t.actions.end() &&
                 t.default_action != "NoAction") {
        add(LintSeverity::kError, "p4-uncovered-table",
            "table " + t.name + " defaults to " + t.default_action +
                " which is not in its action list");
      }
    }
  }

  for (const p4::P4Action& a : program.actions) {
    if (referenced.count(a.name) == 0) {
      add(LintSeverity::kWarning, "p4-dead-action",
          "action " + a.name + " is not referenced by any table");
    }
  }

  // Uninitialized metadata reads: fields assigned by the parser or (once a
  // table applies) by its actions count as initialized; a read before any
  // assignment is flagged. Control structure is ignored (assignments are
  // treated as unconditional), so this is a may-be-uninitialized heuristic.
  std::set<std::string> assigned;
  for (const p4::P4ParserState& s : program.parser_states) {
    for (const std::string& line : s.statements) {
      for (const auto& [pos, field] : MetaTokens(line)) {
        if (LineWritesFirstToken(line, pos, field)) assigned.insert(field);
      }
    }
  }
  for (const std::string& line : program.ingress.apply_body) {
    const size_t apply_pos = line.find(".apply()");
    if (apply_pos != std::string::npos) {
      // The call may be embedded ("if (...) { tbl.apply(); }"): the table
      // name is the identifier immediately preceding ".apply()".
      size_t name_start = apply_pos;
      while (name_start > 0 &&
             (std::isalnum(static_cast<unsigned char>(line[name_start - 1])) !=
                  0 ||
              line[name_start - 1] == '_')) {
        --name_start;
      }
      const std::string tbl = line.substr(name_start, apply_pos - name_start);
      for (const p4::P4Table& t : program.tables) {
        if (t.name != tbl) continue;
        for (const std::string& key : t.keys) {
          for (const auto& [pos, field] : MetaTokens(key)) {
            (void)pos;
            if (assigned.count(field) == 0) {
              add(LintSeverity::kWarning, "p4-uninit-meta-read",
                  "table " + t.name + " matches on meta." + field +
                      " which no prior statement assigns");
              assigned.insert(field);  // report once
            }
          }
        }
        for (const std::string& action_name : t.actions) {
          for (const p4::P4Action& a : program.actions) {
            if (a.name != action_name) continue;
            for (const std::string& body_line : a.body) {
              for (const auto& [pos, field] : MetaTokens(body_line)) {
                if (LineWritesFirstToken(body_line, pos, field)) {
                  assigned.insert(field);
                }
              }
            }
          }
        }
      }
      continue;
    }
    const auto tokens = MetaTokens(line);
    for (size_t i = 0; i < tokens.size(); ++i) {
      const auto& [pos, field] = tokens[i];
      if (IsRegisterReadTarget(line, pos)) {
        assigned.insert(field);
        continue;
      }
      if (i == 0 && LineWritesFirstToken(line, pos, field)) {
        // Reads on the right-hand side are checked below; record the write
        // after scanning them.
        for (size_t j = 1; j < tokens.size(); ++j) {
          if (assigned.count(tokens[j].second) == 0) {
            add(LintSeverity::kWarning, "p4-uninit-meta-read",
                "meta." + tokens[j].second +
                    " read before assignment in apply statement: " + line);
            assigned.insert(tokens[j].second);
          }
        }
        assigned.insert(field);
        break;
      }
      if (assigned.count(field) == 0) {
        add(LintSeverity::kWarning, "p4-uninit-meta-read",
            "meta." + field + " read before assignment in apply statement: " +
                line);
        assigned.insert(field);  // report once per field
      }
    }
  }
  return findings;
}

std::vector<LintFinding> LintAll(const ir::Function& fn,
                                 const partition::PartitionPlan& plan,
                                 const p4::P4Program* program) {
  std::vector<LintFinding> findings = LintPlan(fn, plan);
  if (program != nullptr) {
    std::vector<LintFinding> p4_findings = LintP4(*program);
    findings.insert(findings.end(),
                    std::make_move_iterator(p4_findings.begin()),
                    std::make_move_iterator(p4_findings.end()));
  }
  return findings;
}

bool HasErrors(const std::vector<LintFinding>& findings) {
  for (const LintFinding& f : findings) {
    if (f.severity == LintSeverity::kError) return true;
  }
  return false;
}

}  // namespace gallium::verify
