// Lock-free single-producer/single-consumer ring.
//
// The engine's inter-core channels are all strictly point-to-point — one
// worker hands mutations to the sync core, the dispatcher hands packets to
// one worker — so the classic SPSC design applies: a power-of-two slot
// array indexed by free-running 64-bit positions, one atomic per side, and
// a cached copy of the peer's index so the common case (ring neither full
// nor empty) touches no shared cache line at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gallium::engine {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when the ring is full.
  bool TryPush(T v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return mask_ + 1; }

  // Producer-side occupancy (exact for the producer; a snapshot for anyone
  // else). The dispatcher reads this right after a push to track ring
  // high-water marks without touching the consumer's cached line.
  size_t SizeForProducer() const {
    return static_cast<size_t>(tail_.load(std::memory_order_relaxed) -
                               head_.load(std::memory_order_acquire));
  }

  // Consumer-side emptiness check (exact for the consumer; a snapshot for
  // anyone else).
  bool EmptyForConsumer() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Producer-owned line: its index plus its cached view of the consumer's.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // Consumer-owned line, symmetrically.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
};

}  // namespace gallium::engine
