// RSS-style flow steering for the multi-worker engine.
//
// The sharding invariant: every packet of a flow — in both directions —
// must execute on the same worker, because that worker's shard holds the
// flow's map state. A symmetric 5-tuple hash covers middleboxes that leave
// addresses alone (both directions canonicalize to the same tuple). It does
// NOT cover rewriting middleboxes: MazuNAT emits translated packets whose
// return traffic arrives keyed by the translation, and the load balancer
// rewrites the destination to a backend — in both cases the return tuple
// hashes somewhere unrelated to the forward flow's owner. The exception
// table ("flow director") fixes that: when a worker emits a packet whose
// tuple would steer elsewhere, the dispatcher pins that tuple to the
// emitting worker, so the rewritten flow's return traffic comes home.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/headers.h"

namespace gallium::engine {

// Direction-insensitive flow hash: a tuple and its reverse produce the
// same value, so request and response traffic of an untranslated flow land
// on the same worker without any director entry.
uint64_t SymmetricFlowHash(const net::FiveTuple& ft);

class FlowSteering {
 public:
  explicit FlowSteering(int workers);

  int workers() const { return workers_; }

  // The worker that owns this packet's flow: a director hit wins, otherwise
  // the symmetric hash modulo the worker count. Never allocates.
  int OwnerOf(const net::FiveTuple& ft) const;

  // Pins `ft` (and, via canonicalization, its reverse) to `owner`.
  // Re-pinning an already-pinned tuple updates in place, so the steady
  // state — every established flow already pinned — allocates nothing.
  void Pin(const net::FiveTuple& ft, int owner);

  // Director slot a packet's lookup will touch; the burst loop prefetches
  // it in pass one so pass two's OwnerOf hits warm lines.
  const void* PrefetchSlot(const net::FiveTuple& ft) const;

  size_t pinned_flows() const { return used_; }

 private:
  struct Slot {
    net::FiveTuple ft;
    int32_t owner = -1;  // -1 = empty; slots are never deleted
  };

  void Grow();

  int workers_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t used_ = 0;
};

}  // namespace gallium::engine
