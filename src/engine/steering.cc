#include "engine/steering.h"

namespace gallium::engine {

namespace {

// Canonical direction: the lexicographically smaller (addr, port) endpoint
// becomes the source, so a tuple and its reverse collapse to one key for
// both hashing and director storage.
net::FiveTuple Canonical(const net::FiveTuple& ft) {
  const uint64_t src = (static_cast<uint64_t>(ft.saddr) << 16) | ft.sport;
  const uint64_t dst = (static_cast<uint64_t>(ft.daddr) << 16) | ft.dport;
  if (src <= dst) return ft;
  return ft.Reversed();
}

}  // namespace

uint64_t SymmetricFlowHash(const net::FiveTuple& ft) {
  return Canonical(ft).Hash();
}

FlowSteering::FlowSteering(int workers) : workers_(workers < 1 ? 1 : workers) {
  slots_.resize(256);
  mask_ = slots_.size() - 1;
}

int FlowSteering::OwnerOf(const net::FiveTuple& ft) const {
  const net::FiveTuple key = Canonical(ft);
  const uint64_t hash = key.Hash();
  for (size_t i = hash & mask_;; i = (i + 1) & mask_) {
    const Slot& slot = slots_[i];
    if (slot.owner < 0) break;  // open addressing: empty slot ends the probe
    if (slot.ft == key) return slot.owner;
  }
  return static_cast<int>(hash % static_cast<uint64_t>(workers_));
}

void FlowSteering::Pin(const net::FiveTuple& ft, int owner) {
  const net::FiveTuple key = Canonical(ft);
  // Grow at 1/2 load so probes stay short and an empty slot always exists.
  if ((used_ + 1) * 2 > slots_.size()) Grow();
  for (size_t i = key.Hash() & mask_;; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.owner < 0) {
      slot.ft = key;
      slot.owner = owner;
      ++used_;
      return;
    }
    if (slot.ft == key) {
      slot.owner = owner;
      return;
    }
  }
}

const void* FlowSteering::PrefetchSlot(const net::FiveTuple& ft) const {
  return &slots_[Canonical(ft).Hash() & mask_];
}

void FlowSteering::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  used_ = 0;
  for (const Slot& slot : old) {
    if (slot.owner >= 0) Pin(slot.ft, slot.owner);
  }
}

}  // namespace gallium::engine
