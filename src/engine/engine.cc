#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "telemetry/flight_recorder.h"

namespace gallium::engine {

using runtime::OffloadedMiddlebox;
using runtime::Verdict;

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

// Shared home for every global register. Map state shards cleanly by flow;
// a global is one register all flows read, so the shards must observe a
// single copy. Atomics make the hub safe under threaded workers; in
// deterministic mode they degenerate to plain loads/stores.
class Engine::GlobalHub {
 public:
  explicit GlobalHub(size_t n)
      : values_(std::make_unique<std::atomic<uint64_t>[]>(n)) {}

  uint64_t Load(ir::StateIndex g) const {
    return values_[g].load(std::memory_order_acquire);
  }
  void Store(ir::StateIndex g, uint64_t v) {
    values_[g].store(v, std::memory_order_release);
  }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> values_;
};

// One shard's window onto the hub. Writes additionally notify the sync
// core over the shard's SPSC note ring (threaded mode), which drains them
// and refreshes the switch replicas — the worker never touches another
// shard's state. Notes are best-effort: a full ring only delays the refresh
// until the next quiescence broadcast, it never loses the value (the hub
// already holds it).
class Engine::GlobalPort : public runtime::GlobalOverlay {
 public:
  GlobalPort(GlobalHub* hub, SpscRing<GlobalNote>* notes)
      : hub_(hub), notes_(notes) {}

  uint64_t Read(ir::StateIndex g) const override { return hub_->Load(g); }
  void Write(ir::StateIndex g, uint64_t v) override {
    hub_->Store(g, v);
    if (notes_ != nullptr) (void)notes_->TryPush(GlobalNote{g, v});
  }

 private:
  GlobalHub* hub_;
  SpscRing<GlobalNote>* notes_;
};

double RunReport::MaxWorkerBusyUs() const {
  double max_us = 0;
  for (double us : worker_busy_us) max_us = std::max(max_us, us);
  return max_us;
}

double RunReport::AggregateMpps() const {
  // packets per microsecond == millions of packets per second.
  const double busy_us = MaxWorkerBusyUs();
  return busy_us <= 0 ? 0.0 : static_cast<double>(packets) / busy_us;
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), steering_(options_.workers) {}

Engine::~Engine() = default;

Result<std::unique_ptr<Engine>> Engine::Create(const mbox::MiddleboxSpec& spec,
                                               EngineOptions options) {
  if (options.workers < 1) options.workers = 1;
  if (options.burst < 1) options.burst = 1;
  auto eng = std::unique_ptr<Engine>(new Engine(std::move(options)));
  const EngineOptions& opts = eng->options_;

  if (opts.runtime.registry != nullptr) {
    eng->registry_ = opts.runtime.registry;
  } else {
    eng->owned_registry_ = std::make_unique<telemetry::MetricsRegistry>();
    eng->registry_ = eng->owned_registry_.get();
  }
  eng->mbox_name_ = spec.name;
  eng->burst_occupancy_ = eng->registry_->GetHistogram(
      "gallium_engine_burst_occupancy", {{"mbox", spec.name}},
      {1, 2, 4, 8, 16, 24, 32, 64},
      "packets per burst through the run-to-completion loop");
  eng->flight_ = opts.runtime.flight != nullptr
                     ? opts.runtime.flight
                     : &telemetry::FlightRecorder::Default();

  eng->hub_ = std::make_unique<GlobalHub>(spec.fn->globals().size());
  for (int w = 0; w < opts.workers; ++w) {
    runtime::OffloadedOptions shard_opts = opts.runtime;
    shard_opts.registry = eng->registry_;
    shard_opts.extra_labels.push_back({"worker", std::to_string(w)});
    // Lane 0 is the dispatcher / sync core; each worker shard records its
    // runtime events on its own lane so a postmortem dump reads as one
    // timeline row per core.
    shard_opts.flight = eng->flight_;
    shard_opts.flight_lane = static_cast<uint16_t>(w + 1);
    // Worker 0 keeps the caller's seed, so a one-worker engine models the
    // same latencies as a bare OffloadedMiddlebox with the same options.
    shard_opts.rng_seed = opts.runtime.rng_seed + static_cast<uint64_t>(w);
    GALLIUM_ASSIGN_OR_RETURN(auto shard,
                             OffloadedMiddlebox::Create(spec, shard_opts));
    eng->shards_.push_back(std::move(shard));
  }

  // Re-home every global into the hub. Each shard gets its own port so the
  // threaded note rings stay single-producer.
  for (int w = 0; w < opts.workers; ++w) {
    SpscRing<GlobalNote>* notes = nullptr;
    if (opts.threaded) {
      eng->note_rings_.push_back(std::make_unique<SpscRing<GlobalNote>>(256));
      notes = eng->note_rings_.back().get();
    }
    eng->ports_.push_back(std::make_unique<GlobalPort>(eng->hub_.get(), notes));
    for (size_t g = 0; g < spec.fn->globals().size(); ++g) {
      eng->shards_[w]->server_state().DelegateGlobal(
          static_cast<ir::StateIndex>(g), eng->ports_[w].get());
    }
  }

  // Globals the switch replicas hold a copy of; BroadcastGlobals keeps
  // those copies equal to the hub between packets.
  for (const auto& [ref, placement] : eng->shards_[0]->plan().state_placement) {
    if (ref.kind != ir::StateRef::Kind::kGlobal) continue;
    if (placement == partition::StatePlacement::kReplicated ||
        placement == partition::StatePlacement::kSwitchOnly) {
      eng->broadcast_globals_.push_back(ref.index);
    }
  }

  eng->slots_.resize(static_cast<size_t>(opts.burst));
  eng->owners_.resize(static_cast<size_t>(opts.burst));
  eng->busy_ns_.assign(static_cast<size_t>(opts.workers), 0);
  eng->worker_packets_.assign(static_cast<size_t>(opts.workers), 0);

  if (opts.threaded) {
    // Ingress-ring depth instrumentation (threaded mode only: deterministic
    // runs never queue). Histograms are created here, not in the dispatch
    // loop, so the threaded run itself stays allocation-free.
    for (int w = 0; w < opts.workers; ++w) {
      eng->ring_occupancy_.push_back(eng->registry_->GetHistogram(
          "gallium_engine_ring_occupancy",
          {{"mbox", spec.name}, {"worker", std::to_string(w)}},
          {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
          "ingress ring occupancy seen by the dispatcher after each push"));
    }
    eng->ring_high_water_.assign(static_cast<size_t>(opts.workers), 0);
    eng->ring_next_record_.assign(static_cast<size_t>(opts.workers), 8);
  }
  return eng;
}

void Engine::BroadcastGlobals() {
  if (workers() == 1 || broadcast_globals_.empty()) return;
  for (ir::StateIndex g : broadcast_globals_) {
    const uint64_t v = hub_->Load(g);
    for (auto& shard : shards_) shard->device().SetGlobalRegister(g, v);
  }
}

void Engine::AfterPacket(int owner,
                         const OffloadedMiddlebox::Outcome& outcome) {
  if (outcome.verdict.kind == Verdict::Kind::kSend) {
    // Flow director: a rewriting middlebox (NAT translation, LB backend
    // rewrite) emitted a tuple whose return traffic would hash to the wrong
    // worker — pin it to this one. Established flows are already pinned, so
    // the steady state takes the lookup and skips the (allocating) insert.
    const net::FiveTuple out = outcome.out_packet.five_tuple();
    if (steering_.OwnerOf(out) != owner) steering_.Pin(out, owner);
  }
  // The sync core's inline global commit, propagated: every switch replica
  // sees the hub's value before the next packet executes. This is what
  // makes a sharded deterministic run bit-identical to single-core even for
  // switch-resident registers.
  BroadcastGlobals();
}

void Engine::Tally(RunReport* report, int owner,
                   const OffloadedMiddlebox::Outcome& outcome) {
  ++report->packets;
  ++report->worker_packets[owner];
  if (!outcome.status.ok()) {
    ++report->errors;
    return;
  }
  if (outcome.shed) {
    ++report->shed;
    return;
  }
  if (outcome.fast_path) ++report->fast_path;
  if (outcome.verdict.kind == Verdict::Kind::kSend) {
    ++report->sends;
  } else if (outcome.verdict.kind == Verdict::Kind::kDrop) {
    ++report->drops;
  }
}

RunReport Engine::NewReport() const {
  RunReport report;
  report.worker_packets.assign(shards_.size(), 0);
  report.worker_busy_us.assign(shards_.size(), 0.0);
  return report;
}

OffloadedMiddlebox::Outcome Engine::Process(net::Packet pkt, uint64_t now_ms) {
  const int owner = steering_.OwnerOf(pkt.five_tuple());
  const auto t0 = Clock::now();
  OffloadedMiddlebox::Outcome outcome =
      shards_[owner]->Process(std::move(pkt), now_ms);
  busy_ns_[owner] +=
      static_cast<uint64_t>((Clock::now() - t0).count());
  ++worker_packets_[owner];
  AfterPacket(owner, outcome);
  return outcome;
}

RunReport Engine::Run(const std::vector<net::Packet>& trace,
                      uint64_t start_now_ms, std::vector<net::Packet>* sink) {
  if (options_.threaded) return RunThreaded(trace, start_now_ms);
  return RunDeterministic(trace, start_now_ms, sink);
}

RunReport Engine::RunDeterministic(const std::vector<net::Packet>& trace,
                                   uint64_t start_now_ms,
                                   std::vector<net::Packet>* sink) {
  RunReport report = NewReport();
  const size_t burst = static_cast<size_t>(options_.burst);
  uint64_t now_ms = start_now_ms;
  // busy_ns_ accumulates across Run calls (it feeds the Quiesce gauges);
  // the report covers this run only. Stash the starting counts in the
  // report's inline storage so a warm Run stays allocation-free.
  for (size_t w = 0; w < shards_.size(); ++w) {
    report.worker_busy_us[w] = static_cast<double>(busy_ns_[w]);
  }

  for (size_t base = 0; base < trace.size(); base += burst) {
    const size_t n = std::min(burst, trace.size() - base);
    burst_occupancy_->Observe(static_cast<double>(n));

    // Pass 1: steer the whole burst and issue prefetches, so pass 2's
    // director probes, shard headers, and payload scans hit warm lines.
    for (size_t i = 0; i < n; ++i) {
      const net::Packet& src = trace[base + i];
      __builtin_prefetch(steering_.PrefetchSlot(src.five_tuple()));
      owners_[i] = steering_.OwnerOf(src.five_tuple());
      __builtin_prefetch(shards_[owners_[i]].get());
      if (!src.payload().empty()) __builtin_prefetch(src.payload().data());
    }

    // Pass 2: execute run-to-completion in strict arrival order. Per-packet
    // wall time lands in the owning worker's busy counter — the
    // dedicated-cores model the aggregate throughput figure is built on.
    for (size_t i = 0; i < n; ++i) {
      const int owner = owners_[i];
      net::Packet& slot = slots_[i];
      slot = trace[base + i];  // copy-assign reuses the slot's buffers
      const auto t0 = Clock::now();
      OffloadedMiddlebox::Outcome outcome =
          shards_[owner]->Process(std::move(slot), now_ms++);
      busy_ns_[owner] +=
          static_cast<uint64_t>((Clock::now() - t0).count());
      ++worker_packets_[owner];
      Tally(&report, owner, outcome);
      AfterPacket(owner, outcome);
      if (sink != nullptr && outcome.verdict.kind == Verdict::Kind::kSend) {
        sink->push_back(outcome.out_packet);
      }
      if (outcome.verdict.decided()) {
        // Recycle the packet's buffers into the slot pool: the next burst's
        // copy-assign then allocates nothing.
        slot = std::move(outcome.out_packet);
      }
    }
  }

  for (size_t w = 0; w < shards_.size(); ++w) {
    report.worker_busy_us[w] =
        (static_cast<double>(busy_ns_[w]) - report.worker_busy_us[w]) / 1000.0;
  }
  return report;
}

RunReport Engine::RunThreaded(const std::vector<net::Packet>& trace,
                              uint64_t start_now_ms) {
  const int workers_n = workers();
  struct alignas(64) WorkerTotals {
    uint64_t packets = 0, sends = 0, drops = 0, errors = 0, shed = 0, fast = 0;
    uint64_t busy_ns = 0;
  };
  std::vector<WorkerTotals> totals(static_cast<size_t>(workers_n));
  std::vector<std::unique_ptr<SpscRing<WorkItem>>> ingress;
  for (int w = 0; w < workers_n; ++w) {
    ingress.push_back(std::make_unique<SpscRing<WorkItem>>(
        options_.ring_capacity));
  }
  std::atomic<bool> stop{false};

  auto drain_notes = [&] {
    GlobalNote note;
    for (auto& ring : note_rings_) {
      while (ring->TryPop(&note)) ++global_handoffs_;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers_n));
  for (int w = 0; w < workers_n; ++w) {
    threads.emplace_back([&, w] {
      OffloadedMiddlebox& shard = *shards_[w];
      WorkerTotals& t = totals[static_cast<size_t>(w)];
      WorkItem item;
      for (;;) {
        if (!ingress[w]->TryPop(&item)) {
          if (stop.load(std::memory_order_acquire) &&
              ingress[w]->EmptyForConsumer()) {
            break;
          }
          std::this_thread::yield();
          continue;
        }
        const auto t0 = Clock::now();
        OffloadedMiddlebox::Outcome outcome =
            shard.Process(std::move(item.pkt), item.now_ms);
        t.busy_ns += static_cast<uint64_t>((Clock::now() - t0).count());
        ++t.packets;
        if (!outcome.status.ok()) {
          ++t.errors;
        } else if (outcome.shed) {
          ++t.shed;
        } else {
          if (outcome.fast_path) ++t.fast;
          if (outcome.verdict.kind == Verdict::Kind::kSend) ++t.sends;
          if (outcome.verdict.kind == Verdict::Kind::kDrop) ++t.drops;
        }
      }
    });
  }

  // The calling thread is the dispatcher and the sync core's control loop:
  // it steers (the steering table is single-threaded by design) and drains
  // the mutation note rings while it feeds.
  for (size_t i = 0; i < trace.size(); ++i) {
    const int owner = steering_.OwnerOf(trace[i].five_tuple());
    WorkItem item{trace[i], start_now_ms + i};
    while (!ingress[owner]->TryPush(std::move(item))) {
      // Ring full: the worker is behind; keep the control plane moving.
      drain_notes();
      std::this_thread::yield();
      item = WorkItem{trace[i], start_now_ms + i};
    }
    // Track ring depth from the producer side. The high-water event fires
    // only on power-of-two crossings of a fresh maximum, so a congested run
    // leaves a handful of escalation marks on lane 0 instead of a flood.
    const uint64_t occ =
        static_cast<uint64_t>(ingress[owner]->SizeForProducer());
    ring_occupancy_[static_cast<size_t>(owner)]->Observe(
        static_cast<double>(occ));
    auto& high = ring_high_water_[static_cast<size_t>(owner)];
    if (occ > high) {
      high = occ;
      auto& next = ring_next_record_[static_cast<size_t>(owner)];
      if (occ >= next) {
        while (next <= occ) next <<= 1;
        flight_->Record(0, telemetry::EventId::kEngineRingHighWater,
                        static_cast<uint64_t>(owner), occ,
                        ingress[owner]->capacity());
      }
    }
    drain_notes();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  drain_notes();
  // Workers are parked: refresh every switch replica from the hub.
  BroadcastGlobals();

  RunReport report = NewReport();
  for (int w = 0; w < workers_n; ++w) {
    const WorkerTotals& t = totals[static_cast<size_t>(w)];
    report.packets += t.packets;
    report.sends += t.sends;
    report.drops += t.drops;
    report.errors += t.errors;
    report.shed += t.shed;
    report.fast_path += t.fast;
    report.worker_packets[w] = t.packets;
    report.worker_busy_us[w] = static_cast<double>(t.busy_ns) / 1000.0;
    busy_ns_[w] += t.busy_ns;
    worker_packets_[w] += t.packets;
  }
  return report;
}

void Engine::Quiesce() {
  GlobalNote note;
  for (auto& ring : note_rings_) {
    while (ring->TryPop(&note)) ++global_handoffs_;
  }
  for (auto& shard : shards_) {
    shard->FlushSyncBacklog();
    shard->PublishSwitchStageMetrics();
  }
  BroadcastGlobals();
  // Engine gauges share the shard instruments' {mbox, worker} convention so
  // gallium-top (and any Prometheus join) can line worker rows up against
  // the per-shard runtime series without label gymnastics.
  for (size_t w = 0; w < shards_.size(); ++w) {
    const telemetry::LabelSet scope{{"mbox", mbox_name_},
                                    {"worker", std::to_string(w)}};
    registry_
        ->GetGauge("gallium_engine_worker_packets", scope,
                   "packets executed by this worker shard")
        ->Set(static_cast<double>(worker_packets_[w]));
    registry_
        ->GetGauge("gallium_engine_worker_busy_us", scope,
                   "accumulated execution time on this worker shard")
        ->Set(static_cast<double>(busy_ns_[w]) / 1000.0);
    if (w < ring_high_water_.size()) {
      registry_
          ->GetGauge("gallium_engine_ring_high_water", scope,
                     "deepest ingress-ring occupancy seen by the dispatcher")
          ->Set(static_cast<double>(ring_high_water_[w]));
    }
  }
  registry_
      ->GetGauge("gallium_engine_pinned_flows", {{"mbox", mbox_name_}},
                 "flow-director entries (rewritten flows pinned to a worker)")
      ->Set(static_cast<double>(steering_.pinned_flows()));
  registry_
      ->GetGauge("gallium_engine_global_handoffs", {{"mbox", mbox_name_}},
                 "global mutations handed to the sync core over note rings")
      ->Set(static_cast<double>(global_handoffs_));
}

}  // namespace gallium::engine
