// The multi-worker run-to-completion packet engine (ROADMAP item 1).
//
// Gallium's server half must keep pace with the switch, so the engine
// applies the standard DPDK-style recipe to the offloaded runtime:
//
//   * Burst processing: packets are taken in bursts (default 32) through a
//     two-pass loop — pass one steers every packet and issues prefetches
//     for the director slot and packet payload, pass two executes them
//     run-to-completion, so lookups in pass two hit warm cache lines.
//   * Per-core shards: each worker owns a complete OffloadedMiddlebox
//     (host store, switch replica, sync machinery). RSS-style symmetric
//     5-tuple steering plus a flow director for rewritten flows keeps all
//     of a flow's map state core-local — no locks on the packet path.
//   * Shared globals on the sync core: replicated-global registers cannot
//     shard (every flow reads the same register), so they live in one
//     GlobalHub; every shard's host store delegates its global accesses
//     there, reusing sync_queue's rule that global-carrying batches keep
//     strict inline output commit.
//   * Zero allocation: shards reuse interpreter scratch (ExecScratch), the
//     burst loop recycles its packet slots through Outcome::out_packet, and
//     transfer values use inline storage — so steady-state data packets
//     allocate nothing.
//
// Two execution modes:
//   * Deterministic (default): packets execute in strict arrival order on
//     the calling thread; per-packet wall time is accumulated into the
//     owning worker's busy counter, modeling dedicated cores. Output and
//     state are bit-identical to a single-core run — this is the mode the
//     equivalence property tests and the chaos harness use, and the mode
//     the multi-core throughput figures are derived from.
//   * Threaded: one OS thread per worker fed by an SPSC ingress ring, with
//     worker->sync-core mutation handoff over SPSC note rings. Real
//     parallelism for the TSan job and stress tests; exact cross-shard
//     global ordering is only guaranteed by the deterministic mode.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/spsc_ring.h"
#include "engine/steering.h"
#include "runtime/offloaded_middlebox.h"
#include "util/inline_vec.h"

namespace gallium::engine {

struct EngineOptions {
  int workers = 1;
  int burst = 32;
  bool threaded = false;
  // Per-worker ingress ring depth in threaded mode.
  size_t ring_capacity = 1024;
  // Options every worker shard is created with. `registry` null means the
  // engine owns one registry shared by all shards; each shard's instruments
  // carry a {worker=<i>} label either way.
  runtime::OffloadedOptions runtime;
};

struct RunReport {
  uint64_t packets = 0;
  uint64_t sends = 0;
  uint64_t drops = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t fast_path = 0;
  // Inline storage: a Run over warm state allocates nothing, and the
  // alloc_count bench holds the engine to exactly zero per packet.
  InlineVec<uint64_t, 32> worker_packets;
  InlineVec<double, 32> worker_busy_us;

  // Aggregate throughput under the dedicated-cores model: every worker runs
  // in parallel, so the run finishes when the busiest core does.
  double AggregateMpps() const;
  double MaxWorkerBusyUs() const;
};

class Engine {
 public:
  // `spec` must outlive the engine (shards keep pointers into it, exactly
  // like OffloadedMiddlebox::Create).
  static Result<std::unique_ptr<Engine>> Create(
      const mbox::MiddleboxSpec& spec, EngineOptions options = {});

  ~Engine();

  // Single-packet path (chaos harness, galliumc traffic loop): steers the
  // packet to its owning shard and processes it inline, deterministic-mode
  // semantics regardless of EngineOptions::threaded.
  runtime::OffloadedMiddlebox::Outcome Process(net::Packet pkt,
                                               uint64_t now_ms);

  // Batch path: runs the whole trace through the burst loop (deterministic
  // mode) or the worker threads (threaded mode). now_ms advances by one per
  // packet starting at start_now_ms. When `sink` is non-null (deterministic
  // mode only), every sent packet is appended in emission order.
  RunReport Run(const std::vector<net::Packet>& trace, uint64_t start_now_ms,
                std::vector<net::Packet>* sink = nullptr);

  // Quiescence point: flushes every shard's sync backlog, re-broadcasts the
  // shared globals into every switch replica, and publishes engine + shard
  // metrics onto the registry.
  void Quiesce();

  int workers() const { return static_cast<int>(shards_.size()); }
  runtime::OffloadedMiddlebox& shard(int i) { return *shards_[i]; }
  const FlowSteering& steering() const { return steering_; }
  telemetry::MetricsRegistry& metrics() { return *registry_; }
  // Global mutations handed to the sync core over the note rings (threaded
  // runs only).
  uint64_t global_handoffs() const { return global_handoffs_; }

 private:
  class GlobalHub;
  class GlobalPort;
  // One global mutation, handed worker -> sync core in threaded mode.
  struct GlobalNote {
    ir::StateIndex global = 0;
    uint64_t value = 0;
  };
  // One packet plus its arrival timestamp, dispatcher -> worker.
  struct WorkItem {
    net::Packet pkt;
    uint64_t now_ms = 0;
  };

  explicit Engine(EngineOptions options);

  // Post-packet bookkeeping shared by Process and the deterministic burst
  // loop: pin rewritten flows into the director and mirror the shared
  // globals into every shard's switch replica (the sync core's inline
  // commit, propagated).
  void AfterPacket(int owner,
                   const runtime::OffloadedMiddlebox::Outcome& outcome);
  void BroadcastGlobals();
  void Tally(RunReport* report, int owner,
             const runtime::OffloadedMiddlebox::Outcome& outcome);

  RunReport NewReport() const;
  RunReport RunDeterministic(const std::vector<net::Packet>& trace,
                             uint64_t start_now_ms,
                             std::vector<net::Packet>* sink);
  RunReport RunThreaded(const std::vector<net::Packet>& trace,
                        uint64_t start_now_ms);

  EngineOptions options_;
  FlowSteering steering_;
  std::vector<std::unique_ptr<runtime::OffloadedMiddlebox>> shards_;
  std::unique_ptr<GlobalHub> hub_;
  std::vector<std::unique_ptr<GlobalPort>> ports_;
  // Worker -> sync-core mutation handoff (threaded mode; one ring per
  // worker keeps every ring single-producer/single-consumer).
  std::vector<std::unique_ptr<SpscRing<GlobalNote>>> note_rings_;
  // Globals resident on the switch (replicated or switch-only placement):
  // the set BroadcastGlobals mirrors from the hub into every replica.
  std::vector<ir::StateIndex> broadcast_globals_;

  std::unique_ptr<telemetry::MetricsRegistry> owned_registry_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::Histogram* burst_occupancy_ = nullptr;
  // Flight recorder shared with every shard (lane 0 = the engine's
  // dispatcher / sync-core control loop, worker w records on lane w+1).
  telemetry::FlightRecorder* flight_ = nullptr;
  // Per-worker threaded-mode ingress instrumentation: occupancy histogram
  // plus the high-water mark (and the next power-of-two occupancy at which
  // a kEngineRingHighWater event fires, so a slow climb does not flood the
  // ring with one event per packet).
  std::vector<telemetry::Histogram*> ring_occupancy_;
  std::vector<uint64_t> ring_high_water_;
  std::vector<uint64_t> ring_next_record_;
  std::string mbox_name_;

  // Deterministic burst loop scratch, sized once at Create.
  std::vector<net::Packet> slots_;
  std::vector<int> owners_;
  std::vector<uint64_t> busy_ns_;
  std::vector<uint64_t> worker_packets_;

  uint64_t global_handoffs_ = 0;
};

}  // namespace gallium::engine
