// Transparent proxy (§6.1), adapted from the Click paper's example: TCP
// traffic whose destination port is in a configured redirect list is steered
// to a web proxy by rewriting the destination address and port; everything
// else passes through unchanged.
//
// The redirect list compiles to a single switch match-action table on the
// TCP destination port; the paper reports the proxy runs entirely on the
// switch.
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "net/headers.h"

namespace gallium::mbox {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

Result<MiddleboxSpec> BuildProxy(const std::vector<uint16_t>& redirect_ports) {
  MiddleboxBuilder mb("proxy");
  // TCP destination port -> 1 (membership). Tiny table.
  auto ports = mb.DeclareMap("redirect_ports", {Width::kU16}, {Width::kU8},
                             /*max_entries=*/64);

  auto& b = mb.b();
  const ir::Reg proto = b.HeaderRead(HeaderField::kIpProto, "proto");
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");
  const ir::Reg is_tcp =
      b.Alu(AluOp::kEq, R(proto), Imm(net::kIpProtoTcp), "is_tcp");

  mb.IfElse(
      R(is_tcp),
      [&] {
        const auto hit = ports.Find({R(dport)}, "redirect");
        mb.IfElse(
            R(hit.found),
            [&] {  // steer to the web proxy
              b.HeaderWrite(HeaderField::kIpDst, Imm(kWebProxyIp));
              b.HeaderWrite(HeaderField::kDstPort, Imm(kWebProxyPort));
              b.Send(Imm(kPortExternal));
              b.Ret();
            },
            [&] {
              b.Send(Imm(kPortExternal));
              b.Ret();
            });
      },
      [&] {  // non-TCP traffic passes through
        b.Send(Imm(kPortExternal));
        b.Ret();
      });

  MiddleboxSpec spec;
  spec.name = "proxy";
  spec.description = "Transparent proxy: TCP dport redirect to web proxy";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());

  std::vector<MapInitEntry> entries;
  for (uint16_t port : redirect_ports) {
    entries.push_back(MapInitEntry{{port}, {1}});
  }
  spec.init.maps.push_back({ports.index(), std::move(entries)});
  return spec;
}

}  // namespace gallium::mbox
