// MazuNAT (§6.1): a gateway NAT between an internal network (switch port 0)
// and the external network (switch port 1).
//
// Internal -> external: look up (saddr, sport) in the outbound translation
// map; on a hit rewrite the source to (NAT_IP, ext_port) — the fast path.
// On a miss, allocate a new external port from a monotonically increasing
// counter, install both directions of the mapping (server slow path), and
// rewrite. External -> internal: look up dport in the inbound map; rewrite
// the destination on a hit, drop unknown traffic.
//
// Matches the paper's offload result: both translation maps become switch
// tables (with the annotation that at most 65536 port mappings exist), the
// port counter becomes a P4 register whose current value is packed into the
// transfer header for the server to consume (§6.2).
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"

namespace gallium::mbox {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

Result<MiddleboxSpec> BuildMazuNat() {
  MiddleboxBuilder mb("mazu_nat");
  // (internal saddr, internal sport) -> external port. 2^16 ports max.
  auto nat_out = mb.DeclareMap("nat_out", {Width::kU32, Width::kU16},
                               {Width::kU16}, /*max_entries=*/65536);
  // external port -> (internal addr, internal port).
  auto nat_in = mb.DeclareMap("nat_in", {Width::kU16},
                              {Width::kU32, Width::kU16},
                              /*max_entries=*/65536);
  // Next external port to allocate.
  auto port_counter =
      mb.DeclareGlobal("port_counter", Width::kU16, /*init=*/1024);

  auto& b = mb.b();
  const ir::Reg ingress = b.HeaderRead(HeaderField::kIngressPort, "ingress");
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");
  const ir::Reg from_internal =
      b.Alu(AluOp::kEq, R(ingress), Imm(kPortInternal), "from_internal");

  mb.IfElse(
      R(from_internal),
      [&] {
        const auto mapping = nat_out.Find({R(saddr), R(sport)}, "out");
        mb.IfElse(
            R(mapping.found),
            [&] {  // fast path: rewrite with the existing mapping
              b.HeaderWrite(HeaderField::kIpSrc, Imm(kNatExternalIp));
              b.HeaderWrite(HeaderField::kSrcPort, R(mapping.values[0]));
              b.Send(Imm(kPortExternal));
              b.Ret();
            },
            [&] {  // slow path: allocate a port and install both directions
              const ir::Reg cur = port_counter.Read("alloc_port");
              const ir::Reg next =
                  b.Alu(AluOp::kAdd, R(cur), Imm(1), Width::kU16, "next_port");
              port_counter.Write(R(next));
              nat_out.Insert({R(saddr), R(sport)}, {R(cur)});
              nat_in.Insert({R(cur)}, {R(saddr), R(sport)});
              b.HeaderWrite(HeaderField::kIpSrc, Imm(kNatExternalIp));
              b.HeaderWrite(HeaderField::kSrcPort, R(cur));
              b.Send(Imm(kPortExternal));
              b.Ret();
            });
      },
      [&] {
        const auto mapping = nat_in.Find({R(dport)}, "in");
        mb.IfElse(
            R(mapping.found),
            [&] {  // rewrite back to the internal endpoint
              b.HeaderWrite(HeaderField::kIpDst, R(mapping.values[0]));
              b.HeaderWrite(HeaderField::kDstPort, R(mapping.values[1]));
              b.Send(Imm(kPortInternal));
              b.Ret();
            },
            [&] {  // unsolicited external traffic
              b.Drop();
              b.Ret();
            });
      });

  MiddleboxSpec spec;
  spec.name = "mazu_nat";
  spec.description = "MazuNAT: bidirectional NAT with port allocation";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());
  return spec;
}

}  // namespace gallium::mbox
