#include "mbox/middleboxes.h"

#include <cassert>

namespace gallium::mbox {

ir::StateIndex MiddleboxSpec::MapIndex(const std::string& map_name) const {
  for (ir::StateIndex i = 0; i < fn->maps().size(); ++i) {
    if (fn->maps()[i].name == map_name) return i;
  }
  assert(false && "unknown map name");
  return 0;
}

ir::StateIndex MiddleboxSpec::VectorIndex(const std::string& vec_name) const {
  for (ir::StateIndex i = 0; i < fn->vectors().size(); ++i) {
    if (fn->vectors()[i].name == vec_name) return i;
  }
  assert(false && "unknown vector name");
  return 0;
}

std::vector<MiddleboxSpec> BuildAllPaperMiddleboxes() {
  std::vector<MiddleboxSpec> specs;
  auto add = [&specs](Result<MiddleboxSpec> r) {
    assert(r.ok());
    specs.push_back(std::move(r).value());
  };
  add(BuildMazuNat());
  add(BuildLoadBalancer());
  add(BuildFirewall());
  add(BuildProxy());
  add(BuildTrojanDetector());
  return specs;
}

}  // namespace gallium::mbox
