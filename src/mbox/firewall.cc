// Firewall (§6.1), adapted from the Click paper's example: a five-tuple
// whitelist per direction. Traffic arriving on the internal port is checked
// against the outbound whitelist, traffic from the external port against the
// inbound whitelist; packets without a matching entry are dropped.
//
// Rule construction — the bulk of the non-offloaded C++ the paper reports
// for this middlebox — happens at configuration time (Click's initialize()),
// so it appears here as initial state and as generated control-plane code,
// not as per-packet statements. Both whitelists compile to switch
// match-action tables; the paper reports that all firewall packet
// processing then happens on the switch.
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"

namespace gallium::mbox {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

Result<MiddleboxSpec> BuildFirewall(const std::vector<MapInitEntry>& out_rules,
                                    const std::vector<MapInitEntry>& in_rules) {
  MiddleboxBuilder mb("firewall");
  const std::vector<Width> five_tuple = {Width::kU32, Width::kU32, Width::kU16,
                                         Width::kU16, Width::kU8};
  auto wl_out = mb.DeclareMap("whitelist_out", five_tuple, {Width::kU8},
                              /*max_entries=*/131072);
  auto wl_in = mb.DeclareMap("whitelist_in", five_tuple, {Width::kU8},
                             /*max_entries=*/131072);

  auto& b = mb.b();
  const ir::Reg ingress = b.HeaderRead(HeaderField::kIngressPort, "ingress");
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  const ir::Reg daddr = b.HeaderRead(HeaderField::kIpDst, "daddr");
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");
  const ir::Reg proto = b.HeaderRead(HeaderField::kIpProto, "proto");
  const ir::Reg outbound =
      b.Alu(AluOp::kEq, R(ingress), Imm(kPortInternal), "outbound");

  mb.IfElse(
      R(outbound),
      [&] {
        const auto hit =
            wl_out.Find({R(saddr), R(daddr), R(sport), R(dport), R(proto)},
                        "out_rule");
        mb.IfElse(
            R(hit.found),
            [&] {
              b.Send(Imm(kPortExternal));
              b.Ret();
            },
            [&] {
              b.Drop();
              b.Ret();
            });
      },
      [&] {
        const auto hit =
            wl_in.Find({R(saddr), R(daddr), R(sport), R(dport), R(proto)},
                       "in_rule");
        mb.IfElse(
            R(hit.found),
            [&] {
              b.Send(Imm(kPortInternal));
              b.Ret();
            },
            [&] {
              b.Drop();
              b.Ret();
            });
      });

  MiddleboxSpec spec;
  spec.name = "firewall";
  spec.description = "Firewall: per-direction five-tuple whitelist";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());
  if (!out_rules.empty()) {
    spec.init.maps.push_back({wl_out.index(), out_rules});
  }
  if (!in_rules.empty()) {
    spec.init.maps.push_back({wl_in.index(), in_rules});
  }
  return spec;
}

}  // namespace gallium::mbox
