// L4 load balancer (§6.1): assigns TCP/UDP connections to backends by
// five-tuple hash, keeps an affinity map so a connection always reaches the
// same backend even if the backend list changes, garbage-collects flows on
// TCP RST/FIN, and records creation times for the idle-flow collector (the
// five-minute timeout runs as a server-side maintenance task; see
// runtime/offloaded_middlebox.h).
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "net/headers.h"

namespace gallium::mbox {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

Result<MiddleboxSpec> BuildLoadBalancer(int num_backends) {
  MiddleboxBuilder mb("l4_lb");
  // Five-tuple -> backend address. Annotated to fit on the switch.
  auto flows = mb.DeclareMap(
      "flows",
      {Width::kU32, Width::kU32, Width::kU16, Width::kU16, Width::kU8},
      {Width::kU32}, /*max_entries=*/131072);
  // Five-tuple -> creation time (ms). Consulted only by the server-side
  // idle collector, so it needs no switch annotation.
  auto flow_created = mb.DeclareMap(
      "flow_created",
      {Width::kU32, Width::kU32, Width::kU16, Width::kU16, Width::kU8},
      {Width::kU64}, /*max_entries=*/0);
  auto backends = mb.DeclareVector("backends", Width::kU32, /*max_size=*/64);

  auto& b = mb.b();
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  const ir::Reg daddr = b.HeaderRead(HeaderField::kIpDst, "daddr");
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");
  const ir::Reg proto = b.HeaderRead(HeaderField::kIpProto, "proto");
  const ir::Reg flags = b.HeaderRead(HeaderField::kTcpFlags, "flags");

  const auto entry =
      flows.Find({R(saddr), R(daddr), R(sport), R(dport), R(proto)}, "flow");

  const ir::Reg is_tcp =
      b.Alu(AluOp::kEq, R(proto), Imm(net::kIpProtoTcp), "is_tcp");
  const ir::Reg fin_rst = b.Alu(AluOp::kAnd, R(flags),
                                Imm(net::kTcpFin | net::kTcpRst), Width::kU8,
                                "fin_rst");
  const ir::Reg has_fin_rst =
      b.Alu(AluOp::kNe, R(fin_rst), Imm(0), "has_fin_rst");
  const ir::Reg is_teardown =
      b.Alu(AluOp::kAnd, R(is_tcp), R(has_fin_rst), Width::kU1, "teardown");

  mb.IfElse(
      R(is_teardown),
      [&] {  // connection teardown: forward and garbage-collect (server)
        mb.IfElse(
            R(entry.found),
            [&] {
              flows.Erase({R(saddr), R(daddr), R(sport), R(dport), R(proto)});
              flow_created.Erase(
                  {R(saddr), R(daddr), R(sport), R(dport), R(proto)});
              b.HeaderWrite(HeaderField::kIpDst, R(entry.values[0]));
              b.Send(Imm(kPortExternal));
              b.Ret();
            },
            [&] {  // teardown of an unknown flow: pass through unchanged
              b.Send(Imm(kPortExternal));
              b.Ret();
            });
      },
      [&] {
        mb.IfElse(
            R(entry.found),
            [&] {  // fast path: steer to the assigned backend
              b.HeaderWrite(HeaderField::kIpDst, R(entry.values[0]));
              b.Send(Imm(kPortExternal));
              b.Ret();
            },
            [&] {  // new connection: consistent hash onto the backend list
              const ir::Reg nb = backends.Size("nbackends");
              const ir::Reg h1 =
                  b.Alu(AluOp::kHash, R(saddr), R(daddr), Width::kU64, "h1");
              const ir::Reg ports = b.Alu(AluOp::kShl, R(sport), Imm(16),
                                          Width::kU32, "ports_hi");
              const ir::Reg ports2 =
                  b.Alu(AluOp::kOr, R(ports), R(dport), Width::kU32, "ports");
              const ir::Reg h2 =
                  b.Alu(AluOp::kHash, R(h1), R(ports2), Width::kU64, "h2");
              const ir::Reg idx =
                  b.Alu(AluOp::kMod, R(h2), R(nb), Width::kU32, "idx");
              const ir::Reg bk = backends.At(R(idx), "bk_new");
              const ir::Reg now = b.TimeRead("created_ms");
              flows.Insert({R(saddr), R(daddr), R(sport), R(dport), R(proto)},
                           {R(bk)});
              flow_created.Insert(
                  {R(saddr), R(daddr), R(sport), R(dport), R(proto)},
                  {R(now)});
              b.HeaderWrite(HeaderField::kIpDst, R(bk));
              b.Send(Imm(kPortExternal));
              b.Ret();
            });
      });

  MiddleboxSpec spec;
  spec.name = "l4_lb";
  spec.description =
      "L4 load balancer: five-tuple affinity, consistent hashing, TCP GC";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());

  std::vector<uint64_t> backend_addrs;
  for (int i = 0; i < num_backends; ++i) {
    backend_addrs.push_back(
        net::MakeIpv4(10, 2, 0, static_cast<uint8_t>(i + 1)));
  }
  spec.init.vectors.push_back({backends.index(), std::move(backend_addrs)});
  return spec;
}

}  // namespace gallium::mbox
