// The middlebox programs evaluated in the paper (§6.1), authored against the
// Click-style frontend:
//   - MiniLB          — the running example of §4
//   - MazuNAT         — bidirectional NAT with port allocation
//   - L4 load balancer — five-tuple flow affinity + control-packet GC
//   - Firewall        — two-direction five-tuple whitelist
//   - Transparent proxy — destination-port redirect to a web proxy
//   - Trojan detector — per-host protocol-sequence state machine with DPI
//
// Each factory returns the verified IR plus the middlebox's initial state
// (the contents Click would install in configure()/initialize(), e.g.
// firewall rules and backend lists).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "util/status.h"

namespace gallium::mbox {

// Switch data ports used by all middleboxes: port 0 faces the internal /
// client side, port 1 the external / backend side. (The switch-to-server
// link has its own port defined by the runtime.)
inline constexpr uint32_t kPortInternal = 0;
inline constexpr uint32_t kPortExternal = 1;

// Externally visible NAT address used by MazuNAT (10.0.0.1).
inline constexpr uint32_t kNatExternalIp = 0x0a000001;

// Web-proxy address/port the transparent proxy redirects to.
inline constexpr uint32_t kWebProxyIp = 0x0a00000a;  // 10.0.0.10
inline constexpr uint16_t kWebProxyPort = 3128;

struct MapInitEntry {
  std::vector<uint64_t> key;
  std::vector<uint64_t> value;
};

struct StateInit {
  // Per map StateIndex: initial entries.
  std::vector<std::pair<ir::StateIndex, std::vector<MapInitEntry>>> maps;
  // Per vector StateIndex: initial contents.
  std::vector<std::pair<ir::StateIndex, std::vector<uint64_t>>> vectors;
};

struct MiddleboxSpec {
  std::string name;
  std::string description;
  std::unique_ptr<ir::Function> fn;
  StateInit init;

  // Named state indices commonly needed by tests/benches (e.g. the firewall
  // whitelists for rule installation). Looked up by declaration name.
  ir::StateIndex MapIndex(const std::string& map_name) const;
  ir::StateIndex VectorIndex(const std::string& vec_name) const;
};

// §4's running example: consistent-assignment L4 balancer over src^dst.
Result<MiddleboxSpec> BuildMiniLb(int num_backends = 8);

// MazuNAT (§6.1): address translation maps in both directions plus a
// monotonically increasing port-allocation counter.
Result<MiddleboxSpec> BuildMazuNat();

// L4 load balancer (§6.1): five-tuple affinity map, consistent hashing onto
// a backend list, RST/FIN-triggered garbage collection, and creation-time
// tracking used by the idle-flow collector.
Result<MiddleboxSpec> BuildLoadBalancer(int num_backends = 16);

// Firewall (§6.1): per-direction five-tuple whitelists.
Result<MiddleboxSpec> BuildFirewall(
    const std::vector<MapInitEntry>& out_rules = {},
    const std::vector<MapInitEntry>& in_rules = {});

// Transparent proxy (§6.1): redirects configured TCP destination ports to
// the web proxy.
Result<MiddleboxSpec> BuildProxy(
    const std::vector<uint16_t>& redirect_ports = {80, 8080});

// Trojan detector (§6.1): flags a host that (1) opens an SSH connection,
// (2) downloads an HTML/.zip/.exe file, and (3) produces IRC traffic.
Result<MiddleboxSpec> BuildTrojanDetector();

// A static route: destination prefix -> (egress port, next-hop MAC).
struct RouteEntry {
  uint32_t prefix = 0;
  uint32_t prefix_len = 0;  // 0..32
  uint32_t egress_port = 0;
  uint64_t next_hop_mac = 0;
};

// IP router (§7 "extra functionalities" extension): a longest-prefix-match
// route table compiled to P4's native lpm match kind; fully offloaded.
Result<MiddleboxSpec> BuildIpRouter(const std::vector<RouteEntry>& routes);

// All five paper middleboxes (not MiniLB), for evaluation sweeps.
std::vector<MiddleboxSpec> BuildAllPaperMiddleboxes();

// Payload-pattern names used by the trojan detector; the workload generator
// crafts payloads containing these byte strings.
inline constexpr const char* kPatternHttpGet = "GET /";
inline constexpr const char* kPatternFileDownload = "RETR ";
inline constexpr const char* kPatternIrc = "IRC ";

}  // namespace gallium::mbox
