// IP router — exercises the §7 "extra functionalities" extension: a
// longest-prefix-match route table compiled to P4's native lpm match kind.
//
// The route table maps destination prefixes to an egress port and a
// next-hop MAC. Routes are installed at configuration time (LPM tables are
// control-plane-only by construction); the per-packet path is a TTL check,
// the LPM lookup, a MAC/TTL rewrite, and the forward — all of which offload,
// so the router runs entirely on the switch.
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "net/headers.h"

namespace gallium::mbox {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

Result<MiddleboxSpec> BuildIpRouter(const std::vector<RouteEntry>& routes) {
  MiddleboxBuilder mb("ip_router");
  ir::MapDecl decl;
  decl.name = "routes";
  decl.key_widths = {Width::kU32};                 // destination address
  decl.value_widths = {Width::kU32, Width::kU64};  // egress port, next hop
  decl.max_entries = 65536;
  decl.match_kind = ir::MapDecl::MatchKind::kLpm;
  const ir::StateIndex routes_map = mb.fn().AddMap(std::move(decl));

  auto& b = mb.b();
  const ir::Reg ttl = b.HeaderRead(HeaderField::kIpTtl, "ttl");
  const ir::Reg expired = b.Alu(AluOp::kLe, R(ttl), Imm(1), "ttl_expired");
  mb.IfElse(
      R(expired),
      [&] {  // TTL exhausted: a router drops (ICMP generation is host work)
        b.Drop();
        b.Ret();
      },
      [&] {
        const ir::Reg daddr = b.HeaderRead(HeaderField::kIpDst, "daddr");
        const ir::Value key[] = {R(daddr)};
        const auto route = b.MapGet(routes_map, key, "route");
        mb.IfElse(
            R(route.found),
            [&] {  // rewrite the frame and forward out the route's port
              b.HeaderWrite(HeaderField::kEthDst, R(route.values[1]));
              const ir::Reg next_ttl =
                  b.Alu(AluOp::kSub, R(ttl), Imm(1), Width::kU8, "next_ttl");
              b.HeaderWrite(HeaderField::kIpTtl, R(next_ttl));
              b.Send(R(route.values[0]));
              b.Ret();
            },
            [&] {  // no route
              b.Drop();
              b.Ret();
            });
      });

  MiddleboxSpec spec;
  spec.name = "ip_router";
  spec.description = "IP router: LPM route table (§7 extension)";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());

  std::vector<MapInitEntry> entries;
  for (const RouteEntry& route : routes) {
    entries.push_back(MapInitEntry{{route.prefix, route.prefix_len},
                                   {route.egress_port, route.next_hop_mac}});
  }
  spec.init.maps.push_back({routes_map, std::move(entries)});
  return spec;
}

}  // namespace gallium::mbox
