// Trojan detector (§6.1), after De Carli et al.: tracks per-endhost protocol
// sequences and flags a host as running a Trojan when it (1) opens an SSH
// connection, (2) downloads an HTML/.zip/.exe file over HTTP/FTP, and then
// (3) produces IRC traffic.
//
// Structure mirrors the paper's offload result (§6.2): the TCP flow-state
// table lives on the switch; TCP control packets (SYN/FIN/RST) trigger table
// updates on the server; packets from hosts in a suspicious stage need deep
// packet inspection on the server; all other TCP data packets are handled
// solely by the switch.
#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "net/headers.h"

namespace gallium::mbox {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

namespace {
// Host stages of the detection state machine.
constexpr uint64_t kStageSshSeen = 1;
constexpr uint64_t kStageFileSeen = 2;
}  // namespace

Result<MiddleboxSpec> BuildTrojanDetector() {
  MiddleboxBuilder mb("trojan_detector");
  const std::vector<Width> five_tuple = {Width::kU32, Width::kU32, Width::kU16,
                                         Width::kU16, Width::kU8};
  // Established-connection table (switch-resident).
  auto flow_state = mb.DeclareMap("flow_state", five_tuple, {Width::kU8},
                                  /*max_entries=*/131072);
  // Per-endhost detection stage (switch-resident reads, server updates).
  auto host_stage = mb.DeclareMap("host_stage", {Width::kU32}, {Width::kU8},
                                  /*max_entries=*/65536);

  const uint32_t pat_http = mb.DeclarePattern(kPatternHttpGet);
  const uint32_t pat_file = mb.DeclarePattern(kPatternFileDownload);
  const uint32_t pat_irc = mb.DeclarePattern(kPatternIrc);

  auto& b = mb.b();
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc, "saddr");
  const ir::Reg daddr = b.HeaderRead(HeaderField::kIpDst, "daddr");
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort, "sport");
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort, "dport");
  const ir::Reg proto = b.HeaderRead(HeaderField::kIpProto, "proto");
  const ir::Reg flags = b.HeaderRead(HeaderField::kTcpFlags, "flags");

  const auto flow =
      flow_state.Find({R(saddr), R(daddr), R(sport), R(dport), R(proto)},
                      "flow");
  const auto stage = host_stage.Find({R(saddr)}, "stage");

  const ir::Reg ctl_bits =
      b.Alu(AluOp::kAnd, R(flags),
            Imm(net::kTcpSyn | net::kTcpFin | net::kTcpRst), Width::kU8,
            "ctl_bits");
  const ir::Reg is_ctl = b.Alu(AluOp::kNe, R(ctl_bits), Imm(0), "is_ctl");

  mb.IfElse(
      R(is_ctl),
      [&] {  // connection tracking: control packets update the flow table
        const ir::Reg syn_bit = b.Alu(AluOp::kAnd, R(flags),
                                      Imm(net::kTcpSyn), Width::kU8, "syn");
        const ir::Reg is_syn =
            b.Alu(AluOp::kNe, R(syn_bit), Imm(0), "is_syn");
        mb.IfElse(
            R(is_syn),
            [&] {
              flow_state.Insert(
                  {R(saddr), R(daddr), R(sport), R(dport), R(proto)}, {Imm(1)});
              // An SSH SYN advances the host to stage 1.
              const ir::Reg is_ssh =
                  b.Alu(AluOp::kEq, R(dport), Imm(22), "is_ssh");
              mb.If(R(is_ssh), [&] {
                host_stage.Insert({R(saddr)}, {Imm(kStageSshSeen)});
              });
              b.Send(Imm(kPortExternal));
              b.Ret();
            },
            [&] {  // FIN/RST tears the connection down
              flow_state.Erase(
                  {R(saddr), R(daddr), R(sport), R(dport), R(proto)});
              b.Send(Imm(kPortExternal));
              b.Ret();
            });
      },
      [&] {  // data packets
        const ir::Reg st1 = b.Alu(AluOp::kEq, R(stage.values[0]),
                                  Imm(kStageSshSeen), "at_stage1");
        mb.IfElse(
            R(st1),
            [&] {  // stage 1: DPI for an HTTP/FTP file download (server)
              const ir::Reg http = b.PayloadMatch(pat_http, "http_get");
              const ir::Reg file = b.PayloadMatch(pat_file, "file_fetch");
              const ir::Reg dl =
                  b.Alu(AluOp::kOr, R(http), R(file), Width::kU1, "download");
              mb.If(R(dl), [&] {
                host_stage.Insert({R(saddr)}, {Imm(kStageFileSeen)});
              });
              b.Send(Imm(kPortExternal));
              b.Ret();
            },
            [&] {
              const ir::Reg st2 = b.Alu(AluOp::kEq, R(stage.values[0]),
                                        Imm(kStageFileSeen), "at_stage2");
              mb.IfElse(
                  R(st2),
                  [&] {  // stage 2: IRC traffic confirms the Trojan — drop it
                    const ir::Reg irc = b.PayloadMatch(pat_irc, "irc");
                    mb.IfElse(
                        R(irc),
                        [&] {
                          b.Drop();
                          b.Ret();
                        },
                        [&] {
                          b.Send(Imm(kPortExternal));
                          b.Ret();
                        });
                  },
                  [&] {
                    mb.IfElse(
                        R(flow.found),
                        [&] {  // fast path: untainted host, tracked flow
                          b.Send(Imm(kPortExternal));
                          b.Ret();
                        },
                        [&] {  // data on an untracked flow: start tracking
                          flow_state.Insert({R(saddr), R(daddr), R(sport),
                                             R(dport), R(proto)},
                                            {Imm(1)});
                          b.Send(Imm(kPortExternal));
                          b.Ret();
                        });
                  });
            });
      });

  MiddleboxSpec spec;
  spec.name = "trojan_detector";
  spec.description =
      "Trojan detector: per-host SSH->download->IRC sequence detection";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());
  return spec;
}

}  // namespace gallium::mbox
