// MiniLB — the running example of §4. Mirrors the paper's listing:
//
//   class MiniLB {
//     HashMap<uint16_t, uint32_t> map;
//     Vector<uint32_t> backends;
//     void process(Packet *pkt) {
//       iphdr *ip = pkt->network_header();
//       uint32_t hash32 = ip->saddr ^ ip->daddr;
//       uint16_t key = (uint16_t)(hash32 & 0xFFFF);
//       uint32_t *bk_addr = map.find(&key);
//       if (bk_addr != NULL) { ip->daddr = *bk_addr; pkt->send(); }
//       else {
//         uint32_t idx = hash32 % backends.size();
//         uint32_t bk_addr = backends[idx];
//         ip->daddr = bk_addr;
//         map.insert(&key, &bk_addr);
//         pkt->send();
//       }
//     }
//   };
#include "mbox/middleboxes.h"

#include "frontend/middlebox_builder.h"
#include "net/headers.h"

namespace gallium::mbox {

using frontend::MiddleboxBuilder;
using ir::AluOp;
using ir::Imm;
using ir::R;
using ir::Width;

Result<MiddleboxSpec> BuildMiniLb(int num_backends) {
  MiddleboxBuilder mb("mini_lb");
  auto map = mb.DeclareMap("map", {Width::kU16}, {Width::kU32},
                           /*max_entries=*/65536);
  auto backends = mb.DeclareVector("backends", Width::kU32,
                                   /*max_size=*/64);

  auto& b = mb.b();
  const ir::Reg saddr = b.HeaderRead(ir::HeaderField::kIpSrc, "saddr");
  const ir::Reg daddr = b.HeaderRead(ir::HeaderField::kIpDst, "daddr");
  const ir::Reg hash32 =
      b.Alu(AluOp::kXor, R(saddr), R(daddr), Width::kU32, "hash32");
  const ir::Reg key =
      b.Alu(AluOp::kAnd, R(hash32), Imm(0xFFFF), Width::kU16, "key");
  const auto found = map.Find({R(key)}, "bk");

  mb.IfElse(
      R(found.found),
      [&] {  // existing connection: steer to the remembered backend
        b.HeaderWrite(ir::HeaderField::kIpDst, R(found.values[0]));
        b.Send(Imm(kPortExternal));
        b.Ret();
      },
      [&] {  // new connection: pick a backend and remember the choice
        const ir::Reg size = backends.Size("nbackends");
        const ir::Reg idx =
            b.Alu(AluOp::kMod, R(hash32), R(size), Width::kU32, "idx");
        const ir::Reg bk = backends.At(R(idx), "bk_new");
        b.HeaderWrite(ir::HeaderField::kIpDst, R(bk));
        map.Insert({R(key)}, {R(bk)});
        b.Send(Imm(kPortExternal));
        b.Ret();
      });

  MiddleboxSpec spec;
  spec.name = "mini_lb";
  spec.description = "MiniLB: xor-hash load balancer (running example, §4)";
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());

  std::vector<uint64_t> backend_addrs;
  for (int i = 0; i < num_backends; ++i) {
    backend_addrs.push_back(net::MakeIpv4(10, 1, 0, static_cast<uint8_t>(i + 1)));
  }
  spec.init.vectors.push_back({backends.index(), std::move(backend_addrs)});
  return spec;
}

}  // namespace gallium::mbox
