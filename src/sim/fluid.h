// Flow-level fluid simulation of the realistic-workload experiments (§6.3).
//
// The paper drives 100000 flows drawn from CONGA-style size distributions
// through the middlebox with 100 sender threads, each running one connection
// at a time. We model the same setup at flow granularity with processor
// sharing: every active flow receives an equal share of each bottleneck
// (the 100 Gb/s line, the per-connection cap, and — when data packets
// traverse the server, as in the FastClick baseline — the server's packet
// budget). Connection setup cost (slow-path SYN handling plus state
// synchronization for the offloaded middlebox; plain software processing
// for the baseline) is charged before a flow's data starts flowing.
//
// The fluid abstraction is what makes 100k-flow sweeps tractable; per-packet
// behavior (who takes the fast path, how many ops run where) is measured by
// the packet-level runtime and fed in through FluidConfig.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace gallium::sim {

struct FluidConfig {
  double line_gbps = 100.0;      // switch/link capacity shared by all flows
  double per_flow_gbps = 20.0;   // single-connection ceiling (window-bound)
  int num_threads = 100;         // concurrent senders (one flow each)

  // TCP ramp model: a flow of S bytes cannot average more than
  // S / (RTT * log2(S/init_window + 2)) — short flows finish inside slow
  // start and never reach the per-flow ceiling. The RTT differs between the
  // baseline (two server NIC crossings per packet) and the offloaded
  // deployment (switch-only fast path), which is part of why Gallium helps
  // medium flows too.
  double rtt_us = 46.0;
  double init_window_bytes = 10 * 1448.0;

  // Server data-path capacity in packets/second (0 = data packets bypass
  // the server entirely, the offloaded fast path).
  double server_data_pps = 0.0;
  double avg_packet_bytes = 1500.0;

  // Per-flow setup latency (µs) charged before data flows: the slow-path
  // SYN round plus (for the offloaded middlebox) control-plane sync.
  double setup_us_mean = 20.0;
  double setup_us_jitter = 5.0;

  // Additional per-flow teardown latency (µs) after the last byte.
  double teardown_us = 10.0;
};

struct FlowRecord {
  uint64_t bytes = 0;
  double start_us = 0;   // when the sender thread began the flow
  double finish_us = 0;  // when the last byte (and teardown) completed
  double FctUs() const { return finish_us - start_us; }
};

struct FluidResult {
  std::vector<FlowRecord> flows;
  double duration_us = 0;       // makespan
  double total_bytes = 0;
  double throughput_gbps = 0;   // goodput over the makespan
};

FluidResult RunFluid(const std::vector<uint64_t>& flow_sizes,
                     const FluidConfig& config, Rng& rng);

// Mean flow-completion time (µs) of flows whose size falls in
// [lo_bytes, hi_bytes).
double MeanFctUs(const FluidResult& result, uint64_t lo_bytes,
                 uint64_t hi_bytes);

}  // namespace gallium::sim
