// A minimal discrete-event engine.
//
// Used to build explicit timelines: schedule callbacks at absolute
// microsecond timestamps and run them in order. The concurrency tests use
// it to interleave packet arrivals with the stages of the control-plane
// synchronization protocol (stage -> bit flip -> main apply), checking the
// §3.1 run-to-completion criteria with real clock interleavings.
//
// An optional telemetry::Timeline can be attached: named events then leave
// instant markers at their simulated firing time, so a whole simulation run
// renders as one Perfetto-viewable timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "telemetry/timeline.h"

namespace gallium::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  // Schedules `handler` at absolute time `at_us`. Events at equal times run
  // in scheduling order (stable).
  void Schedule(double at_us, Handler handler) {
    events_.push(Event{at_us, next_seq_++, std::move(handler), {}});
  }
  void ScheduleAfter(double delay_us, Handler handler) {
    Schedule(now_ + delay_us, std::move(handler));
  }

  // Named variants: when a timeline is attached, the event drops an instant
  // marker (category "sim") at its simulated firing time.
  void Schedule(double at_us, std::string name, Handler handler) {
    events_.push(Event{at_us, next_seq_++, std::move(handler), std::move(name)});
  }
  void ScheduleAfter(double delay_us, std::string name, Handler handler) {
    Schedule(now_ + delay_us, std::move(name), std::move(handler));
  }

  // Attaches (or detaches, with nullptr) the timeline recording named
  // events. Not owned; must outlive the queue's Run calls.
  void set_timeline(telemetry::Timeline* timeline) { timeline_ = timeline; }

  double now_us() const { return now_; }
  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

  // Runs events until the queue drains (handlers may schedule more).
  void Run() {
    while (!events_.empty()) Step();
  }

  // Runs events with time <= until_us.
  void RunUntil(double until_us) {
    while (!events_.empty() && events_.top().at_us <= until_us) Step();
    now_ = std::max(now_, until_us);
  }

 private:
  struct Event {
    double at_us;
    uint64_t seq;
    Handler handler;
    std::string name;  // empty = anonymous (no timeline marker)
    bool operator>(const Event& other) const {
      if (at_us != other.at_us) return at_us > other.at_us;
      return seq > other.seq;
    }
  };

  void Step() {
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.at_us;
    if (timeline_ != nullptr && !event.name.empty()) {
      timeline_->InstantEvent(event.name, "sim", now_);
    }
    event.handler();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0;
  uint64_t next_seq_ = 0;
  telemetry::Timeline* timeline_ = nullptr;
};

}  // namespace gallium::sim
