#include "sim/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

namespace gallium::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double GbpsToBytesPerUs(double gbps) { return gbps * 125.0; }  // 1e9/8/1e6

// Max-min fair allocation ("water-filling"): splits `total` across flows
// with individual caps; flows capped below the fair share release their
// slack to the rest. Returns per-flow rates.
void WaterFill(const std::vector<double>& caps, double total,
               std::vector<double>* rates) {
  const size_t n = caps.size();
  rates->assign(n, 0.0);
  if (n == 0) return;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return caps[a] < caps[b]; });
  double remaining = total;
  size_t left = n;
  for (size_t idx : order) {
    const double share = remaining / static_cast<double>(left);
    const double rate = std::min(caps[idx], share);
    (*rates)[idx] = rate;
    remaining -= rate;
    --left;
  }
}

}  // namespace

FluidResult RunFluid(const std::vector<uint64_t>& flow_sizes,
                     const FluidConfig& config, Rng& rng) {
  FluidResult result;
  result.flows.resize(flow_sizes.size());
  if (flow_sizes.empty()) return result;

  const double line_rate = GbpsToBytesPerUs(config.line_gbps);
  const double server_rate =
      config.server_data_pps > 0
          ? config.server_data_pps * config.avg_packet_bytes / 1e6
          : kInf;
  const double shared_capacity = std::min(line_rate, server_rate);
  const double flow_ceiling = GbpsToBytesPerUs(config.per_flow_gbps);

  // TCP ramp cap: the average rate a flow of S bytes can sustain given slow
  // start over the configured RTT.
  auto ramp_cap = [&](uint64_t bytes) {
    const double rounds =
        std::log2(static_cast<double>(bytes) / config.init_window_bytes + 2.0);
    const double min_duration_us = config.rtt_us * std::max(1.0, rounds);
    return std::min(flow_ceiling,
                    static_cast<double>(bytes) / min_duration_us);
  };

  using Activation = std::pair<double, size_t>;
  std::priority_queue<Activation, std::vector<Activation>, std::greater<>>
      pending;

  struct Active {
    size_t flow;
    double remaining;
    double cap;
  };
  std::vector<Active> active;

  auto setup_us = [&] {
    return std::max(1.0, config.setup_us_mean +
                             (rng.NextDouble() - 0.5) * 2.0 *
                                 config.setup_us_jitter);
  };

  size_t next_flow = 0;
  auto thread_start_next = [&](double at_time) {
    if (next_flow >= flow_sizes.size()) return;
    const size_t flow = next_flow++;
    result.flows[flow].bytes = std::max<uint64_t>(flow_sizes[flow], 1);
    result.flows[flow].start_us = at_time;
    pending.push({at_time + setup_us(), flow});
  };

  const int threads =
      std::min<int>(config.num_threads, static_cast<int>(flow_sizes.size()));
  for (int t = 0; t < threads; ++t) thread_start_next(0.0);

  double now = 0.0;
  std::vector<double> caps;
  std::vector<double> rates;

  while (!active.empty() || !pending.empty()) {
    // Current per-flow rates.
    caps.clear();
    for (const Active& a : active) caps.push_back(a.cap);
    WaterFill(caps, shared_capacity, &rates);

    const double next_activation =
        pending.empty() ? kInf : pending.top().first;
    double next_completion = kInf;
    size_t completing = SIZE_MAX;
    for (size_t i = 0; i < active.size(); ++i) {
      if (rates[i] <= 0) continue;
      const double t = now + active[i].remaining / rates[i];
      if (t < next_completion) {
        next_completion = t;
        completing = i;
      }
    }

    const double event_time = std::min(next_activation, next_completion);
    assert(event_time < kInf);
    const double dt = event_time - now;
    for (size_t i = 0; i < active.size(); ++i) {
      active[i].remaining =
          std::max(0.0, active[i].remaining - rates[i] * dt);
    }
    now = event_time;

    if (next_activation <= next_completion) {
      const auto [at, flow] = pending.top();
      pending.pop();
      const double bytes = static_cast<double>(result.flows[flow].bytes);
      active.push_back(
          Active{flow, bytes, ramp_cap(result.flows[flow].bytes)});
    } else {
      const size_t flow = active[completing].flow;
      active.erase(active.begin() + static_cast<long>(completing));
      result.flows[flow].finish_us = now + config.teardown_us;
      thread_start_next(now + config.teardown_us);
    }
  }

  result.duration_us = now;
  for (const FlowRecord& flow : result.flows) {
    result.total_bytes += static_cast<double>(flow.bytes);
  }
  if (result.duration_us > 0) {
    result.throughput_gbps =
        result.total_bytes * 8.0 / (result.duration_us * 1000.0);
  }
  return result;
}

double MeanFctUs(const FluidResult& result, uint64_t lo_bytes,
                 uint64_t hi_bytes) {
  double sum = 0;
  int count = 0;
  for (const FlowRecord& flow : result.flows) {
    if (flow.bytes >= lo_bytes && flow.bytes < hi_bytes &&
        flow.finish_us > 0) {
      sum += flow.FctUs();
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace gallium::sim
