// Table placement: allocate the offloaded program's match-action tables
// into the physical stages of an RMT pipeline (target.h).
//
// The placement works on *logical tables* derived from the partition plan —
// one main match table per switch-resident map (plus its §4.3.3 write-back
// shadow and use-write-back register), one index table and size register
// per resident vector, one register per resident global. Names follow
// p4::GenerateP4's emission exactly ("tbl_<state>", "tbl_<state>_wb",
// "wb_active_<state>", "reg_<name>"), so the report reads 1:1 against the
// emitted P4, but the derivation is independent of the P4 layer: the
// runtime (which never links p4) validates its plans against the same
// concrete target the compiler does.
//
// Placement order is topological in the match/action dependency graph: a
// table whose match key or action inputs depend on another table's result
// must live in a strictly later stage. Within that order the allocator is
// greedy — first stage with room across all five per-stage resources — with
// bounded chronological backtracking when a later table cannot be placed.
// Failure is structured: the first unplaceable table and the resource that
// blocked it, so the partitioner's feedback loop (feedback.h) and galliumc's
// JSON diagnostics can act on it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/function.h"
#include "partition/plan.h"
#include "rmt/target.h"

namespace gallium::rmt {

// One logical table (or stage register) and its per-stage resource demand.
struct TableRequirement {
  enum class Kind : uint8_t {
    kMatchTable,  // map main table / vector index table
    kWriteBack,   // §4.3.3 shadow of a main table
    kRegister,    // global register / wb-active bit / vector size register
  };

  std::string name;
  ir::StateRef state;
  Kind kind = Kind::kMatchTable;
  bool needs_tcam = false;  // lpm tables match in TCAM
  uint64_t entries = 0;
  int key_bits = 0;
  int value_bits = 0;

  // Per-stage resource demand.
  int sram_blocks = 0;
  int tcam_blocks = 0;
  int hash_units = 0;
  int action_alus = 0;
  int crossbar_bits = 0;

  // Instruction whose offloaded execution drives this table (kInvalidInst
  // for derived objects like the write-back shadow).
  ir::InstId access = ir::kInvalidInst;
  // Which pipeline pass applies it (tables of different passes share stage
  // resources but have no ordering constraint between them).
  partition::Part part = partition::Part::kPre;
  // Longest chain of same-pass table dependencies below this table.
  int dep_level = 0;
  // Indices (into the requirement vector) of tables that must be placed in
  // strictly earlier stages.
  std::vector<int> after;
};

// Occupancy of one physical stage after placement.
struct StageOccupancy {
  int sram_blocks = 0;
  int tcam_blocks = 0;
  int hash_units = 0;
  int action_alus = 0;
  int crossbar_bits = 0;
  int num_tables = 0;
  std::vector<int> tables;  // requirement indices placed here
};

// Structured placement failure: the first table the allocator could not
// place and the resource that blocked it at the last stage tried.
struct PlacementFailure {
  std::string table;
  int stage = -1;  // stage where the binding search gave up
  std::string resource;
  std::string message;
};

struct PlacementReport {
  RmtTargetModel target;
  std::vector<TableRequirement> tables;
  std::vector<int> stage_of;  // parallel to `tables`; -1 = unplaced
  std::vector<StageOccupancy> stages;
  int backtracks = 0;

  // Number of stages with at least one table, counted from stage 0 to the
  // highest occupied stage (a pass traverses every stage up to it).
  int StagesOccupied() const;
  // Peak fractional utilization across stages; `*which` names the binding
  // resource (e.g. "sram_blocks") when non-null.
  double MaxStageUtilization(std::string* which = nullptr) const;
  // Stage of the state's primary match table / register, -1 if absent.
  int StageOfState(const ir::StateRef& ref) const;

  // "0:tbl_a,tbl_b 1:tbl_c" — compact, deterministic; golden-snapshot food.
  std::string StageMapString() const;
  // Multi-line human-readable occupancy table for `galliumc --resources`.
  std::string Summary() const;
};

struct PlacementResult {
  PlacementReport report;
  std::optional<PlacementFailure> failure;
  bool ok() const { return !failure.has_value(); }
};

// Derives the logical tables the plan's switch partitions need, with
// resource demands quantized to the target's block geometry and dependency
// edges from the function's match/action dependency graph.
std::vector<TableRequirement> BuildLogicalTables(
    const ir::Function& fn, const partition::PartitionPlan& plan,
    const RmtTargetModel& target);

// Assigns every logical table to a stage, or reports the first table that
// cannot be placed. Deterministic for a given (fn, plan, target).
PlacementResult PlaceTables(const ir::Function& fn,
                            const partition::PartitionPlan& plan,
                            const RmtTargetModel& target);

const char* TableKindName(TableRequirement::Kind kind);

}  // namespace gallium::rmt
