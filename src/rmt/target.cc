#include "rmt/target.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace gallium::rmt {

Status RmtTargetModel::Validate() const {
  if (num_stages <= 0) return InvalidArgument("rmt: num_stages must be > 0");
  if (sram_blocks_per_stage <= 0 || sram_block_kb <= 0) {
    return InvalidArgument("rmt: per-stage SRAM must be > 0");
  }
  if (tcam_blocks_per_stage < 0 || tcam_block_entries <= 0 ||
      tcam_block_bits <= 0) {
    return InvalidArgument("rmt: invalid TCAM geometry");
  }
  if (crossbar_bits_per_stage <= 0 || hash_units_per_stage <= 0 ||
      hash_unit_bits <= 0 || action_alus_per_stage <= 0 ||
      max_tables_per_stage <= 0) {
    return InvalidArgument("rmt: per-stage match/action budgets must be > 0");
  }
  return Status::Ok();
}

std::string RmtTargetModel::Summary() const {
  std::ostringstream out;
  out << name << ": " << num_stages << " stages x [sram "
      << sram_blocks_per_stage << "x" << sram_block_kb << "KB, tcam "
      << tcam_blocks_per_stage << "x" << tcam_block_entries << "e, xbar "
      << crossbar_bits_per_stage << "b, hash " << hash_units_per_stage
      << ", alu " << action_alus_per_stage << "], total sram "
      << FormatBytes(TotalSramBytes());
  return out.str();
}

RmtTargetModel DefaultTofinoProfile(const partition::SwitchConstraints& c) {
  RmtTargetModel t;
  t.num_stages = std::max(1, c.pipeline_depth);
  const uint64_t block_bytes = static_cast<uint64_t>(t.sram_block_kb) * 1024;
  const uint64_t blocks_needed =
      (c.memory_bytes + t.num_stages * block_bytes - 1) /
      (t.num_stages * block_bytes);
  t.sram_blocks_per_stage =
      std::max<int>(80, static_cast<int>(blocks_needed));
  return t;
}

RmtTargetModel TinyTestProfile() {
  RmtTargetModel t;
  t.name = "tiny-test";
  t.num_stages = 4;
  t.sram_blocks_per_stage = 2;
  t.sram_block_kb = 16;
  t.tcam_blocks_per_stage = 1;
  t.crossbar_bits_per_stage = 256;
  t.hash_units_per_stage = 2;
  t.action_alus_per_stage = 8;
  t.max_tables_per_stage = 2;
  return t;
}

}  // namespace gallium::rmt
