#include "rmt/placement.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "analysis/cfg.h"
#include "analysis/depgraph.h"
#include "util/strings.h"

namespace gallium::rmt {
namespace {

using partition::Part;
using partition::StatePlacement;

// Per-entry bookkeeping overhead, matching switchsim's memory accounting
// (pointer/next-hop bytes per bucket).
constexpr int kEntryOverheadBytes = 4;

// Bounded chronological backtracking: how many placement decisions the
// allocator may undo before declaring the program unplaceable.
constexpr int kBacktrackBudget = 512;

int CeilDiv(uint64_t a, uint64_t b) {
  return static_cast<int>((a + b - 1) / b);
}

int SumBits(const std::vector<ir::Width>& widths) {
  int bits = 0;
  for (ir::Width w : widths) bits += ir::BitWidth(w);
  return bits;
}

// Quantizes a match table's demand to the target's block geometry.
void SizeMatchTable(const RmtTargetModel& target, TableRequirement* req) {
  const uint64_t entries = std::max<uint64_t>(1, req->entries);
  const uint64_t entry_bytes = static_cast<uint64_t>(
      (req->key_bits + 7) / 8 + (req->value_bits + 7) / 8 +
      kEntryOverheadBytes);
  const uint64_t block_bytes =
      static_cast<uint64_t>(target.sram_block_kb) * 1024;
  if (req->needs_tcam) {
    // lpm: the match happens in TCAM; SRAM holds only the action data.
    req->tcam_blocks =
        std::max(1, CeilDiv(entries, target.tcam_block_entries) *
                        std::max(1, CeilDiv(req->key_bits,
                                            target.tcam_block_bits)));
    const uint64_t action_bytes =
        entries * ((req->value_bits + 7) / 8 + kEntryOverheadBytes);
    req->sram_blocks = std::max(1, CeilDiv(action_bytes, block_bytes));
    req->hash_units = 0;
  } else {
    req->tcam_blocks = 0;
    req->sram_blocks =
        std::max(1, CeilDiv(entries * entry_bytes, block_bytes));
    req->hash_units =
        std::max(1, CeilDiv(req->key_bits, target.hash_unit_bits));
  }
  req->crossbar_bits = req->key_bits;
}

// The on-switch instruction accessing `ref` (Constraint 3 admits at most
// one), or null.
const ir::Instruction* FindSwitchAccess(const ir::Function& fn,
                                        const partition::PartitionPlan& plan,
                                        const ir::StateRef& ref,
                                        ir::Opcode only = ir::Opcode::kReturn,
                                        bool filter_op = false) {
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block.insts) {
      ir::StateRef touched;
      if (!ir::Function::InstStateRef(inst, &touched)) continue;
      if (touched != ref) continue;
      if (filter_op && inst.op != only) continue;
      if (inst.id >= 0 && inst.id < static_cast<int>(plan.assignment.size()) &&
          plan.OnSwitch(inst.id)) {
        return &inst;
      }
    }
  }
  return nullptr;
}

struct Capacity {
  int sram, tcam, hash, alu, xbar, tables;
};

Capacity CapacityOf(const RmtTargetModel& t) {
  return {t.sram_blocks_per_stage, t.tcam_blocks_per_stage,
          t.hash_units_per_stage,  t.action_alus_per_stage,
          t.crossbar_bits_per_stage, t.max_tables_per_stage};
}

// Name of the first resource `req` overflows in `occ`, or null if it fits.
const char* BlockingResource(const TableRequirement& req,
                             const StageOccupancy& occ, const Capacity& cap) {
  if (occ.num_tables + 1 > cap.tables) return "table_ids";
  if (occ.sram_blocks + req.sram_blocks > cap.sram) return "sram_blocks";
  if (occ.tcam_blocks + req.tcam_blocks > cap.tcam) return "tcam_blocks";
  if (occ.hash_units + req.hash_units > cap.hash) return "hash_units";
  if (occ.action_alus + req.action_alus > cap.alu) return "action_alus";
  if (occ.crossbar_bits + req.crossbar_bits > cap.xbar) {
    return "crossbar_bits";
  }
  return nullptr;
}

void Commit(const TableRequirement& req, int idx, StageOccupancy* occ) {
  occ->sram_blocks += req.sram_blocks;
  occ->tcam_blocks += req.tcam_blocks;
  occ->hash_units += req.hash_units;
  occ->action_alus += req.action_alus;
  occ->crossbar_bits += req.crossbar_bits;
  occ->num_tables += 1;
  occ->tables.push_back(idx);
}

void Uncommit(const TableRequirement& req, StageOccupancy* occ) {
  occ->sram_blocks -= req.sram_blocks;
  occ->tcam_blocks -= req.tcam_blocks;
  occ->hash_units -= req.hash_units;
  occ->action_alus -= req.action_alus;
  occ->crossbar_bits -= req.crossbar_bits;
  occ->num_tables -= 1;
  occ->tables.pop_back();
}

}  // namespace

const char* TableKindName(TableRequirement::Kind kind) {
  switch (kind) {
    case TableRequirement::Kind::kMatchTable: return "match";
    case TableRequirement::Kind::kWriteBack: return "write-back";
    case TableRequirement::Kind::kRegister: return "register";
  }
  return "?";
}

std::vector<TableRequirement> BuildLogicalTables(
    const ir::Function& fn, const partition::PartitionPlan& plan,
    const RmtTargetModel& target) {
  std::vector<TableRequirement> reqs;

  // One register occupies a single SRAM block and one stateful ALU.
  auto make_register = [&](std::string name, const ir::StateRef& ref,
                           const ir::Instruction* access) {
    TableRequirement r;
    r.name = std::move(name);
    r.state = ref;
    r.kind = TableRequirement::Kind::kRegister;
    r.entries = 1;
    r.sram_blocks = 1;
    r.action_alus = 1;
    if (access != nullptr) {
      r.access = access->id;
      r.part = plan.PartOf(access->id);
    }
    return r;
  };

  for (const auto& [ref, placement] : plan.state_placement) {
    if (placement == StatePlacement::kServerOnly) continue;
    switch (ref.kind) {
      case ir::StateRef::Kind::kMap: {
        const ir::MapDecl& decl = fn.map(ref.index);
        const std::string name = SanitizeIdentifier(decl.name);
        const ir::Instruction* access = FindSwitchAccess(fn, plan, ref);

        TableRequirement main;
        main.name = "tbl_" + name;
        main.state = ref;
        main.kind = TableRequirement::Kind::kMatchTable;
        main.needs_tcam = decl.is_lpm();
        main.entries = decl.max_entries;
        main.key_bits = SumBits(decl.key_widths);
        main.value_bits = SumBits(decl.value_widths);
        // One ALU write per value word plus the hit flag.
        main.action_alus = static_cast<int>(decl.value_widths.size()) + 1;
        SizeMatchTable(target, &main);
        if (access != nullptr) {
          main.access = access->id;
          main.part = plan.PartOf(access->id);
        }

        // §4.3.3 shadow: same key/value shape at a quarter of the entries,
        // guarded by the use-write-back register read.
        TableRequirement wb = main;
        wb.name = "tbl_" + name + "_wb";
        wb.kind = TableRequirement::Kind::kWriteBack;
        wb.entries = std::max<uint64_t>(16, main.entries / 4);
        wb.action_alus = main.action_alus + 1;  // + the deleted flag
        SizeMatchTable(target, &wb);

        TableRequirement wb_active =
            make_register("wb_active_" + name, ref, access);

        const int wb_active_idx = static_cast<int>(reqs.size());
        reqs.push_back(std::move(wb_active));
        const int wb_idx = static_cast<int>(reqs.size());
        wb.after.push_back(wb_active_idx);  // read the bit, then shadow...
        reqs.push_back(std::move(wb));
        main.after.push_back(wb_idx);  // ...then the main table (§4.3.3)
        reqs.push_back(std::move(main));
        break;
      }
      case ir::StateRef::Kind::kVector: {
        const ir::VectorDecl& decl = fn.vector(ref.index);
        const std::string name = SanitizeIdentifier(decl.name);
        const ir::Instruction* get = FindSwitchAccess(
            fn, plan, ref, ir::Opcode::kVectorGet, /*filter_op=*/true);
        const ir::Instruction* len = FindSwitchAccess(
            fn, plan, ref, ir::Opcode::kVectorLen, /*filter_op=*/true);

        TableRequirement table;
        table.name = "tbl_" + name;
        table.state = ref;
        table.kind = TableRequirement::Kind::kMatchTable;
        table.entries = decl.max_size;
        table.key_bits = 32;  // position index
        table.value_bits = ir::BitWidth(decl.elem_width);
        table.action_alus = 1;
        SizeMatchTable(target, &table);
        if (get != nullptr) {
          table.access = get->id;
          table.part = plan.PartOf(get->id);
        }
        reqs.push_back(std::move(table));
        reqs.push_back(make_register("reg_" + name + "_size", ref, len));
        break;
      }
      case ir::StateRef::Kind::kGlobal: {
        const ir::GlobalDecl& decl = fn.global(ref.index);
        const ir::Instruction* access = FindSwitchAccess(fn, plan, ref);
        reqs.push_back(make_register(
            "reg_" + SanitizeIdentifier(decl.name), ref, access));
        break;
      }
    }
  }

  // Cross-state ordering: a table whose driving instruction transitively
  // depends on another table's result must be applied in a later stage of
  // the same pipeline pass. Tables of different passes share stage capacity
  // but not ordering (the packet traverses the pipeline once per pass).
  analysis::CfgInfo cfg(fn);
  analysis::DependencyGraph deps(fn, cfg);
  const int n = static_cast<int>(reqs.size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (reqs[i].state == reqs[j].state) continue;  // intra-state edges set
      if (reqs[i].access == ir::kInvalidInst ||
          reqs[j].access == ir::kInvalidInst) {
        continue;
      }
      if (reqs[i].part != reqs[j].part) continue;
      if (reqs[i].access == reqs[j].access) continue;
      if (!deps.TransitivelyDependsOn(reqs[j].access, reqs[i].access)) {
        continue;
      }
      // Mutual dependence (shared loop) has no stage order; skip both.
      if (deps.TransitivelyDependsOn(reqs[i].access, reqs[j].access)) continue;
      reqs[j].after.push_back(i);
    }
  }

  // Longest-path levels over the (acyclic) `after` edges; the level is both
  // the topological sort key and a lower bound on the stage index.
  std::vector<int> level(n, 0);
  bool changed = true;
  int guard = 0;
  while (changed && guard++ <= n + 1) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      for (int dep : reqs[i].after) {
        if (level[i] < level[dep] + 1) {
          level[i] = level[dep] + 1;
          changed = true;
        }
      }
    }
  }
  for (int i = 0; i < n; ++i) reqs[i].dep_level = level[i];
  return reqs;
}

PlacementResult PlaceTables(const ir::Function& fn,
                            const partition::PartitionPlan& plan,
                            const RmtTargetModel& target) {
  PlacementResult result;
  result.report.target = target;
  result.report.tables = BuildLogicalTables(fn, plan, target);
  auto& reqs = result.report.tables;
  const int n = static_cast<int>(reqs.size());
  result.report.stage_of.assign(n, -1);
  result.report.stages.assign(target.num_stages, StageOccupancy{});

  if (Status v = target.Validate(); !v.ok()) {
    result.failure = PlacementFailure{"", -1, "target", v.ToString()};
    return result;
  }
  if (n == 0) return result;

  // Deterministic topological order: dependency level, then name.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (reqs[a].dep_level != reqs[b].dep_level) {
      return reqs[a].dep_level < reqs[b].dep_level;
    }
    return reqs[a].name < reqs[b].name;
  });

  const Capacity cap = CapacityOf(target);
  auto& stages = result.report.stages;
  auto& stage_of = result.report.stage_of;

  // One table may span several stages when its memory exceeds a single
  // stage's SRAM/TCAM budget (Tofino-style table splitting): match ways
  // land in each spanned stage — paying crossbar bits, a hash unit set, a
  // table ID, and action ALUs there — and the lookup completes in the last
  // one. A binding records the per-stage resource slice so it can be undone
  // exactly on backtrack.
  struct StageUse {
    int stage;
    TableRequirement slice;  // resource demand charged to this stage
  };
  std::vector<std::vector<StageUse>> binding(n);

  // Attempts to bind `req` starting at `start`; returns the per-stage uses
  // or empty on failure, with the blocking resource in `*why` and the stage
  // it blocked at in `*where`.
  auto try_bind = [&](const TableRequirement& req, int start,
                      std::vector<StageUse>* uses, const char** why,
                      int* where) {
    uses->clear();
    int remaining_sram = req.sram_blocks;
    int remaining_tcam = req.tcam_blocks;
    *why = nullptr;
    for (int s = start; s < target.num_stages; ++s) {
      TableRequirement slice = req;
      slice.sram_blocks = 0;
      slice.tcam_blocks = 0;
      const char* block = BlockingResource(slice, stages[s], cap);
      if (block != nullptr) {
        // No room for even the match/action part here; a spanning table
        // may skip a crowded stage, a fresh one keeps searching starts.
        if (uses->empty()) {
          *why = block;
          *where = s;
          return false;
        }
        continue;
      }
      const int free_sram =
          cap.sram - stages[s].sram_blocks;
      const int free_tcam = cap.tcam - stages[s].tcam_blocks;
      const int take_sram = std::min(remaining_sram, free_sram);
      const int take_tcam = std::min(remaining_tcam, free_tcam);
      if (take_sram <= 0 && take_tcam <= 0 &&
          (remaining_sram > 0 || remaining_tcam > 0)) {
        continue;  // stage has IDs/xbar free but no memory; skip it
      }
      slice.sram_blocks = take_sram;
      slice.tcam_blocks = take_tcam;
      uses->push_back({s, slice});
      remaining_sram -= take_sram;
      remaining_tcam -= take_tcam;
      if (remaining_sram <= 0 && remaining_tcam <= 0) return true;
    }
    *why = remaining_tcam > 0 ? "tcam_blocks" : "sram_blocks";
    *where = target.num_stages - 1;
    return false;
  };

  // Earliest legal stage for `idx` given already-bound predecessors (a
  // dependent table starts after the stage its predecessor completes in).
  auto min_stage = [&](int idx) {
    int s = 0;
    for (int dep : reqs[idx].after) {
      if (stage_of[dep] >= 0) s = std::max(s, stage_of[dep] + 1);
    }
    return s;
  };

  auto commit = [&](int idx, const std::vector<StageUse>& uses) {
    for (const StageUse& u : uses) Commit(u.slice, idx, &stages[u.stage]);
    binding[idx] = uses;
    stage_of[idx] = uses.back().stage;  // the stage the lookup completes in
  };
  auto uncommit = [&](int idx) {
    for (const StageUse& u : binding[idx]) {
      Uncommit(u.slice, &stages[u.stage]);
    }
    binding[idx].clear();
    stage_of[idx] = -1;
  };

  // Chronological backtracking over each table's start stage, in
  // topological order. `resume_from[pos]` is the first start stage the
  // binding at `pos` may consider (advanced past the failed choice on
  // backtrack).
  std::vector<int> resume_from(n, 0);
  std::vector<int> started_at(n, 0);
  int pos = 0;
  int backtracks = 0;
  while (pos < n) {
    const int idx = order[pos];
    const TableRequirement& req = reqs[idx];
    const int lower = min_stage(idx);
    const char* why = nullptr;
    int where = target.num_stages - 1;
    bool bound = false;
    std::vector<StageUse> uses;
    for (int start = std::max(lower, resume_from[pos]);
         start < target.num_stages; ++start) {
      if (try_bind(req, start, &uses, &why, &where)) {
        commit(idx, uses);
        started_at[pos] = start;
        ++pos;
        if (pos < n) resume_from[pos] = 0;
        bound = true;
        break;
      }
    }
    if (bound) continue;
    if (pos == 0 || backtracks >= kBacktrackBudget) {
      // Structured failure: name the blocking resource at the last stage a
      // placement was attempted (or the dependency chain itself).
      PlacementFailure f;
      f.table = req.name;
      if (lower >= target.num_stages) {
        f.stage = target.num_stages - 1;
        f.resource = "stages";
        f.message = req.name + ": dependency chain needs stage " +
                    std::to_string(lower) + " but the pipeline has " +
                    std::to_string(target.num_stages) + " stages";
      } else {
        f.stage = where;
        f.resource = why == nullptr ? "sram_blocks" : why;
        f.message = req.name + " (" + std::string(TableKindName(req.kind)) +
                    ", " + std::to_string(req.entries) + " entries, sram " +
                    std::to_string(req.sram_blocks) + " tcam " +
                    std::to_string(req.tcam_blocks) +
                    " blocks): no feasible start stage in [" +
                    std::to_string(lower) + ", " +
                    std::to_string(target.num_stages) +
                    "); binding resource: " + f.resource;
      }
      result.report.backtracks = backtracks;
      result.failure = std::move(f);
      return result;
    }
    // Undo the previous binding and push its start one stage further.
    ++backtracks;
    --pos;
    uncommit(order[pos]);
    resume_from[pos] = started_at[pos] + 1;
  }
  result.report.backtracks = backtracks;
  return result;
}

int PlacementReport::StagesOccupied() const {
  int highest = -1;
  for (int s = 0; s < static_cast<int>(stages.size()); ++s) {
    if (!stages[s].tables.empty()) highest = s;
  }
  return highest + 1;
}

double PlacementReport::MaxStageUtilization(std::string* which) const {
  double best = 0;
  for (const StageOccupancy& occ : stages) {
    struct {
      const char* name;
      double used, cap;
    } dims[] = {
        {"sram_blocks", double(occ.sram_blocks),
         double(target.sram_blocks_per_stage)},
        {"tcam_blocks", double(occ.tcam_blocks),
         double(std::max(1, target.tcam_blocks_per_stage))},
        {"hash_units", double(occ.hash_units),
         double(target.hash_units_per_stage)},
        {"action_alus", double(occ.action_alus),
         double(target.action_alus_per_stage)},
        {"crossbar_bits", double(occ.crossbar_bits),
         double(target.crossbar_bits_per_stage)},
        {"table_ids", double(occ.num_tables),
         double(target.max_tables_per_stage)},
    };
    for (const auto& d : dims) {
      const double u = d.cap == 0 ? 0 : d.used / d.cap;
      if (u > best) {
        best = u;
        if (which != nullptr) *which = d.name;
      }
    }
  }
  return best;
}

int PlacementReport::StageOfState(const ir::StateRef& ref) const {
  for (int i = 0; i < static_cast<int>(tables.size()); ++i) {
    if (tables[i].state == ref &&
        tables[i].kind != TableRequirement::Kind::kWriteBack) {
      // Prefer the match table; a lone register is its own answer.
      if (tables[i].kind == TableRequirement::Kind::kMatchTable ||
          ref.kind == ir::StateRef::Kind::kGlobal) {
        return stage_of[i];
      }
    }
  }
  return -1;
}

std::string PlacementReport::StageMapString() const {
  std::ostringstream out;
  bool first = true;
  for (int s = 0; s < static_cast<int>(stages.size()); ++s) {
    if (stages[s].tables.empty()) continue;
    if (!first) out << " ";
    first = false;
    out << s << ":";
    for (size_t i = 0; i < stages[s].tables.size(); ++i) {
      if (i > 0) out << ",";
      out << tables[stages[s].tables[i]].name;
    }
  }
  return out.str();
}

std::string PlacementReport::Summary() const {
  std::ostringstream out;
  out << target.Summary() << "\n";
  int placed = 0;
  for (int s : stage_of) placed += (s >= 0) ? 1 : 0;
  std::string binding;
  const double util = MaxStageUtilization(&binding);
  out << "placement: " << placed << "/" << tables.size() << " tables in "
      << StagesOccupied() << "/" << target.num_stages << " stages";
  if (placed > 0) {
    out << ", peak stage utilization "
        << static_cast<int>(util * 100.0 + 0.5) << "% (" << binding << ")";
  }
  out << "\n";
  for (int s = 0; s < static_cast<int>(stages.size()); ++s) {
    const StageOccupancy& occ = stages[s];
    if (occ.tables.empty()) continue;
    out << "  stage " << s << ": sram " << occ.sram_blocks << "/"
        << target.sram_blocks_per_stage << "  tcam " << occ.tcam_blocks
        << "/" << target.tcam_blocks_per_stage << "  hash " << occ.hash_units
        << "/" << target.hash_units_per_stage << "  alu " << occ.action_alus
        << "/" << target.action_alus_per_stage << "  xbar "
        << occ.crossbar_bits << "/" << target.crossbar_bits_per_stage
        << "  |";
    for (int idx : occ.tables) out << " " << tables[idx].name;
    out << "\n";
  }
  return out.str();
}

}  // namespace gallium::rmt
