// RMT pipeline target model (§2.2's hardware constraints made concrete).
//
// The partitioner's resource refinement works on proxies — dependency
// distance for pipeline depth, aggregate bytes for memory. A real
// Tofino-class target is an RMT pipeline (Bosshart et al., SIGCOMM'13): K
// physical match-action stages, each with a fixed budget of SRAM blocks,
// TCAM blocks, match-crossbar input bits, hash units, and action ALUs.
// Whether an offloaded program fits is decided by *placing* its tables into
// stages under those budgets, not by comparing aggregate sums. This header
// describes the target; placement.h performs the allocation.
#pragma once

#include <cstdint>
#include <string>

#include "partition/plan.h"
#include "util/status.h"

namespace gallium::rmt {

// One RMT ingress pipeline. Defaults model a Tofino-class device sized so
// the aggregate SRAM matches `SwitchConstraints`' 16 MB memory budget
// spread over the default 12-stage pipeline.
struct RmtTargetModel {
  std::string name = "tofino-like";

  // Physical match-action stages (SwitchConstraints::pipeline_depth).
  int num_stages = 12;

  // Per-stage SRAM: unit blocks usable for exact-match ways and action data.
  int sram_blocks_per_stage = 86;
  int sram_block_kb = 16;

  // Per-stage TCAM: blocks of ternary entries for lpm/ternary tables.
  int tcam_blocks_per_stage = 24;
  int tcam_block_entries = 512;  // entries per block at <=44 match bits
  int tcam_block_bits = 44;      // match width one block contributes

  // Match-crossbar input bits a stage can route into its match keys.
  int crossbar_bits_per_stage = 1280;

  // Exact-match hash units (each hashes up to `hash_unit_bits` key bits).
  int hash_units_per_stage = 6;
  int hash_unit_bits = 128;

  // VLIW action-ALU slots (one per written PHV field per table action).
  int action_alus_per_stage = 32;

  // Logical table IDs available per stage.
  int max_tables_per_stage = 16;

  uint64_t SramBytesPerStage() const {
    return static_cast<uint64_t>(sram_blocks_per_stage) * sram_block_kb *
           1024;
  }
  uint64_t TotalSramBytes() const { return SramBytesPerStage() * num_stages; }

  Status Validate() const;
  std::string Summary() const;
};

// The default profile for a given constraint set: `num_stages` follows
// `pipeline_depth`, and the per-stage SRAM budget is scaled (up from the
// stock 80-block stage, never down) so the pipeline's aggregate SRAM covers
// `memory_bytes`. The two views of the same device stay consistent: what
// the partitioner admits by aggregate accounting, the placement pass can at
// least attempt to allocate.
RmtTargetModel DefaultTofinoProfile(const partition::SwitchConstraints& c);

// A deliberately tiny pipeline for exercising placement failure and the
// spill/re-partition path in tests.
RmtTargetModel TinyTestProfile();

}  // namespace gallium::rmt
