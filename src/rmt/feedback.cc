#include "rmt/feedback.h"

#include <limits>

#include "partition/partitioner.h"

namespace gallium::rmt {

bool ChooseSpillVictim(const ir::Function& fn,
                       const partition::PartitionPlan& plan,
                       const partition::OffloadWeights& weights,
                       ir::StateRef* victim) {
  // Total offload benefit of each resident state object = sum of the
  // weights of its on-switch accesses. The cheapest one loses the least
  // from moving to the server.
  std::map<ir::StateRef, long> benefit;
  for (const auto& [ref, placement] : plan.state_placement) {
    if (placement == partition::StatePlacement::kServerOnly) continue;
    benefit[ref] = 0;
  }
  if (benefit.empty()) return false;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block.insts) {
      ir::StateRef ref;
      if (!ir::Function::InstStateRef(inst, &ref)) continue;
      auto it = benefit.find(ref);
      if (it == benefit.end()) continue;
      if (inst.id < 0 || inst.id >= static_cast<int>(plan.assignment.size()) ||
          !plan.OnSwitch(inst.id)) {
        continue;
      }
      it->second += weights.WeightOf(inst);
    }
  }
  long best = std::numeric_limits<long>::max();
  for (const auto& [ref, w] : benefit) {  // std::map: ties break on StateRef
    if (w < best) {
      best = w;
      *victim = ref;
    }
  }
  return true;
}

Result<OffloadPlanResult> PartitionAndPlace(
    const ir::Function& fn, const partition::SwitchConstraints& constraints,
    const RmtTargetModel& target, PlacementFailure* failure_out) {
  partition::SwitchConstraints c = constraints;
  OffloadPlanResult result;
  // Each round spills one state object; resident state is finite, so the
  // +1 round reaches the all-server plan, which always places.
  const int max_rounds = static_cast<int>(fn.maps().size() +
                                          fn.vectors().size() +
                                          fn.globals().size()) +
                         1;
  for (int round = 1; round <= max_rounds; ++round) {
    partition::Partitioner partitioner(fn, c);
    GALLIUM_ASSIGN_OR_RETURN(result.plan, partitioner.Run());
    result.rounds = round;

    PlacementResult placed = PlaceTables(fn, result.plan, target);
    result.placement = std::move(placed.report);
    if (!placed.failure.has_value()) {
      result.spilled = c.spilled_state;
      return result;
    }

    ir::StateRef victim;
    if (!ChooseSpillVictim(fn, result.plan, c.weights, &victim)) {
      if (failure_out != nullptr) *failure_out = *placed.failure;
      return ResourceExhausted(
          "rmt: program does not fit the '" + target.name +
          "' pipeline and no offloaded state is left to spill: " +
          placed.failure->message);
    }
    c.spilled_state.push_back(victim);
  }
  return Internal("rmt: spill loop failed to converge");
}

}  // namespace gallium::rmt
