// The placement -> spill -> re-partition loop.
//
// §4.2.2 validates resource constraints with proxies; the RMT backend
// validates them for real by placing the plan's tables into stages. When
// placement fails, the plan was too optimistic: some switch-resident state
// must go back to the server. The loop picks the resident state object with
// the lowest offload benefit (the same OffloadWeights the weighted
// objective uses), adds it to `SwitchConstraints::spilled_state` — which
// the partitioner honors by stripping the pre/post labels of every
// statement touching that state — and re-partitions. It terminates: each
// round removes one resident state object, and an empty switch program
// always places.
//
// Both the compiler (core::Compiler) and the runtime
// (runtime::OffloadedMiddlebox) plan through this entry point, so the
// policy lives in exactly one place and the simulated switch executes the
// same placement the emitted P4 reports.
#pragma once

#include <vector>

#include "ir/function.h"
#include "partition/plan.h"
#include "rmt/placement.h"
#include "rmt/target.h"
#include "util/status.h"

namespace gallium::rmt {

struct OffloadPlanResult {
  partition::PartitionPlan plan;
  PlacementReport placement;
  // State spilled back to the server to make the program place, in spill
  // order (empty when the first plan fit).
  std::vector<ir::StateRef> spilled;
  int rounds = 1;  // partition attempts (1 = no spill needed)
};

// Partitions `fn` under `constraints`, places the resulting tables on
// `target`, and spills/re-partitions until the program fits. Returns
// kResourceExhausted (with `*failure_out` filled when non-null) only if the
// program still cannot place with no spillable state left.
Result<OffloadPlanResult> PartitionAndPlace(
    const ir::Function& fn, const partition::SwitchConstraints& constraints,
    const RmtTargetModel& target, PlacementFailure* failure_out = nullptr);

// The next state object the loop would spill for this plan: the resident
// map/vector/global whose offloaded accesses carry the lowest total weight.
// Returns false when nothing is left to spill.
bool ChooseSpillVictim(const ir::Function& fn,
                       const partition::PartitionPlan& plan,
                       const partition::OffloadWeights& weights,
                       ir::StateRef* victim);

}  // namespace gallium::rmt
