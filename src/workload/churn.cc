#include "workload/churn.h"

#include <algorithm>
#include <vector>

namespace gallium::workload {

Trace MakeChurnTrace(Rng& rng, const ChurnOptions& options) {
  Trace trace;
  trace.packets.reserve(options.num_packets + options.established_flows);

  // Open the established working set first: one SYN per flow, so by the
  // time churn starts these flows are known state and their data segments
  // can ride the fast path.
  struct Established {
    net::FiveTuple tuple;
    uint32_t next_seq = 1;
  };
  std::vector<Established> working_set;
  working_set.reserve(options.established_flows);
  for (int f = 0; f < options.established_flows; ++f) {
    Established e{RandomFlow(rng, net::kIpProtoTcp), 1};
    trace.packets.push_back(net::MakeTcpPacket(e.tuple, net::kTcpSyn, 0));
    working_set.push_back(e);
  }
  trace.num_flows = options.established_flows;

  uint64_t burst_remaining = 0;
  for (uint64_t i = 0; i < options.num_packets; ++i) {
    if (options.burst_period > 0 && options.burst_len > 0 &&
        i % options.burst_period == 0) {
      burst_remaining = options.burst_len;
    }
    bool fresh = burst_remaining > 0 || rng.NextBool(options.new_flow_fraction);
    if (burst_remaining > 0) --burst_remaining;
    if (fresh || working_set.empty()) {
      const bool udp = rng.NextBool(options.udp_fraction);
      const net::FiveTuple tuple =
          RandomFlow(rng, udp ? net::kIpProtoUdp : net::kIpProtoTcp);
      trace.packets.push_back(udp ? net::MakeUdpPacket(tuple, 64)
                                  : net::MakeTcpPacket(tuple, net::kTcpSyn, 0));
      ++trace.num_flows;
    } else {
      Established& e = working_set[rng.NextBounded(working_set.size())];
      const size_t chunk = 512;
      trace.packets.push_back(net::MakeTcpPacket(
          e.tuple, net::kTcpAck | net::kTcpPsh, chunk, e.next_seq));
      e.next_seq += static_cast<uint32_t>(chunk);
    }
  }

  uint64_t id = 1;
  for (auto& pkt : trace.packets) {
    pkt.set_ingress_port(options.ingress_port);
    pkt.set_id(id++);
  }
  return trace;
}

}  // namespace gallium::workload
