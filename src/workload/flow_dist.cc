#include "workload/flow_dist.h"

namespace gallium::workload {

const char* WorkloadName(WorkloadKind kind) {
  return kind == WorkloadKind::kEnterprise ? "enterprise" : "data-mining";
}

EmpiricalDistribution FlowSizeDistribution(WorkloadKind kind) {
  // Points are (flow size in bytes, cumulative probability). Both keep ~90%
  // of flows below ten 1448-byte packets (~14.5 KB); the data-mining tail
  // reaches into the hundreds of megabytes while the enterprise tail tops
  // out around tens of megabytes.
  if (kind == WorkloadKind::kEnterprise) {
    return EmpiricalDistribution({
        {200, 0.10},
        {1000, 0.30},
        {5000, 0.65},
        {14500, 0.90},
        {100000, 0.95},
        {1000000, 0.98},
        {10000000, 0.998},
        {50000000, 1.00},
    });
  }
  return EmpiricalDistribution({
      {100, 0.25},
      {1000, 0.55},
      {5000, 0.80},
      {14500, 0.90},
      {100000, 0.93},
      {1000000, 0.95},
      {10000000, 0.97},
      {100000000, 0.995},
      {1000000000, 1.00},
  });
}

std::vector<uint64_t> DrawFlowSizes(WorkloadKind kind, int count, Rng& rng) {
  const EmpiricalDistribution dist = FlowSizeDistribution(kind);
  std::vector<uint64_t> sizes;
  sizes.reserve(count);
  for (int i = 0; i < count; ++i) {
    sizes.push_back(static_cast<uint64_t>(dist.Sample(rng)));
  }
  return sizes;
}

}  // namespace gallium::workload
