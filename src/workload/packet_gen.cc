#include "workload/packet_gen.h"

#include <algorithm>

namespace gallium::workload {

net::FiveTuple RandomFlow(Rng& rng, uint8_t protocol) {
  net::FiveTuple flow;
  // Internal clients in 192.168/16, external servers in 172.16/16.
  flow.saddr = net::MakeIpv4(192, 168, static_cast<uint8_t>(rng.NextBounded(256)),
                             static_cast<uint8_t>(1 + rng.NextBounded(254)));
  flow.daddr = net::MakeIpv4(172, 16, static_cast<uint8_t>(rng.NextBounded(256)),
                             static_cast<uint8_t>(1 + rng.NextBounded(254)));
  flow.sport = static_cast<uint16_t>(1024 + rng.NextBounded(64000));
  flow.dport = static_cast<uint16_t>(1 + rng.NextBounded(1024));
  flow.protocol = protocol;
  return flow;
}

std::vector<net::Packet> TcpFlowPackets(const net::FiveTuple& flow,
                                        uint64_t flow_bytes, size_t mss) {
  std::vector<net::Packet> packets;
  packets.push_back(net::MakeTcpPacket(flow, net::kTcpSyn, 0));
  uint64_t remaining = flow_bytes;
  uint32_t seq = 1;
  while (remaining > 0) {
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(remaining, mss));
    packets.push_back(
        net::MakeTcpPacket(flow, net::kTcpAck | net::kTcpPsh, chunk, seq));
    seq += static_cast<uint32_t>(chunk);
    remaining -= chunk;
  }
  packets.push_back(net::MakeTcpPacket(flow, net::kTcpFin | net::kTcpAck, 0, seq));
  return packets;
}

std::vector<net::Packet> UdpFlowPackets(const net::FiveTuple& flow,
                                        uint64_t flow_bytes,
                                        size_t mtu_payload) {
  std::vector<net::Packet> packets;
  uint64_t remaining = std::max<uint64_t>(flow_bytes, 1);
  while (remaining > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(remaining, mtu_payload));
    packets.push_back(net::MakeUdpPacket(flow, chunk));
    remaining -= chunk;
  }
  return packets;
}

void SetPayloadWithMarker(net::Packet* pkt, const std::string& marker,
                          size_t total_bytes) {
  auto& payload = pkt->payload();
  payload.assign(std::max(total_bytes, marker.size()), 'x');
  std::copy(marker.begin(), marker.end(), payload.begin());
}

Trace MakeTrace(Rng& rng, const TraceOptions& options) {
  Trace trace;
  trace.num_flows = options.num_flows;

  std::vector<std::vector<net::Packet>> flows;
  for (int f = 0; f < options.num_flows; ++f) {
    const bool is_udp = rng.NextBool(options.udp_fraction);
    const net::FiveTuple tuple =
        RandomFlow(rng, is_udp ? net::kIpProtoUdp : net::kIpProtoTcp);
    const uint64_t bytes =
        options.min_flow_bytes +
        rng.NextBounded(options.max_flow_bytes - options.min_flow_bytes + 1);
    auto packets = is_udp ? UdpFlowPackets(tuple, bytes)
                          : TcpFlowPackets(tuple, bytes);
    if (!options.marker.empty() && rng.NextBool(options.marked_fraction)) {
      for (auto& pkt : packets) {
        if (!pkt.payload().empty()) {
          SetPayloadWithMarker(&pkt, options.marker, pkt.payload().size());
        }
      }
    }
    flows.push_back(std::move(packets));
  }

  if (options.interleave) {
    size_t emitted = 0, total = 0;
    std::vector<size_t> next(flows.size(), 0);
    for (const auto& f : flows) total += f.size();
    while (emitted < total) {
      for (size_t f = 0; f < flows.size(); ++f) {
        if (next[f] < flows[f].size()) {
          trace.packets.push_back(flows[f][next[f]++]);
          ++emitted;
        }
      }
    }
  } else {
    for (auto& f : flows) {
      for (auto& pkt : f) trace.packets.push_back(std::move(pkt));
    }
  }

  uint64_t id = 1;
  for (auto& pkt : trace.packets) {
    pkt.set_ingress_port(options.ingress_port);
    pkt.set_id(id++);
  }
  return trace;
}

}  // namespace gallium::workload
