// Adversarial flow-churn / SYN-flood traffic for the overload and chaos
// harnesses.
//
// The shapes MakeTrace produces are friendly: long flows, so most packets
// hit established state and the control plane is idle. This generator
// produces the opposite — the worst case for Gallium's write-back protocol:
// a stream dominated by *fresh* flows, where nearly every packet installs
// new replicated state and therefore costs a control-plane round-trip on
// the inline sync path. Against the coalescing backlog it is the workload
// that drives the queue to its bound and forces the overflow policy to act.
//
// Two knobs shape the attack:
//   * new_flow_fraction — the steady-state churn rate (0.7 means 7 of 10
//     packets open a brand-new flow);
//   * burst_period/burst_len — periodic SYN-flood bursts where *every*
//     packet is a fresh SYN, modeling the classic flood on top of the
//     steady churn.
//
// The remaining packets are data segments drawn from a small established
// working set, so the trace still exercises the fast path and keeps the
// differential baseline meaningful.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "workload/packet_gen.h"

namespace gallium::workload {

struct ChurnOptions {
  uint64_t num_packets = 2000;
  // Probability that a steady-state packet opens a brand-new flow (a SYN,
  // or a first datagram for UDP flows).
  double new_flow_fraction = 0.7;
  // Established flows the non-churn packets draw data segments from. Each
  // is opened by a SYN at the head of the trace so the switch learns them.
  int established_flows = 32;
  // SYN-flood bursts: every `burst_period` packets, the next `burst_len`
  // packets are all fresh SYNs regardless of new_flow_fraction. 0 = none.
  uint64_t burst_period = 0;
  uint64_t burst_len = 0;
  // Fraction of *fresh* flows that are UDP first-datagrams instead of SYNs.
  double udp_fraction = 0.0;
  uint32_t ingress_port = 0;
};

// Deterministic for a given (rng state, options): the chaos harness replays
// the identical trace through the software baseline.
Trace MakeChurnTrace(Rng& rng, const ChurnOptions& options);

}  // namespace gallium::workload
