// Packet and flow synthesis for tests and benchmarks.
//
// Provides random five-tuples, TCP flow packetization (SYN / data / FIN),
// payload crafting for the trojan detector's DPI patterns, and mixed traces
// that interleave many concurrent flows — the shapes the paper's iperf /
// trace-driven experiments exercise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/rng.h"

namespace gallium::workload {

// Uniform random internal host / external server five-tuple.
net::FiveTuple RandomFlow(Rng& rng, uint8_t protocol = net::kIpProtoTcp);

// Packetizes one TCP flow of `flow_bytes` application bytes into
// SYN, data segments of up to `mss` payload bytes, and FIN.
std::vector<net::Packet> TcpFlowPackets(const net::FiveTuple& flow,
                                        uint64_t flow_bytes,
                                        size_t mss = 1448);

// One UDP datagram stream (no control packets).
std::vector<net::Packet> UdpFlowPackets(const net::FiveTuple& flow,
                                        uint64_t flow_bytes,
                                        size_t mtu_payload = 1400);

// Sets a payload that contains `marker` (for PayloadMatch-based DPI).
void SetPayloadWithMarker(net::Packet* pkt, const std::string& marker,
                          size_t total_bytes);

// A labeled trace: packets in arrival order, each already stamped with its
// ingress port.
struct Trace {
  std::vector<net::Packet> packets;
  int num_flows = 0;
};

struct TraceOptions {
  int num_flows = 50;
  uint64_t min_flow_bytes = 200;
  uint64_t max_flow_bytes = 200000;
  double udp_fraction = 0.0;       // fraction of flows that are UDP
  uint32_t ingress_port = 0;       // port packets arrive on
  bool interleave = true;          // round-robin packets across flows
  // Fraction of flows that carry a DPI marker in their payloads
  // (exercises the trojan detector's slow path).
  double marked_fraction = 0.0;
  std::string marker;
};

Trace MakeTrace(Rng& rng, const TraceOptions& options);

}  // namespace gallium::workload
