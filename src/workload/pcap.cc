#include "workload/pcap.h"

#include <cstring>
#include <fstream>

namespace gallium::workload {

namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;       // microsecond timestamps
constexpr uint32_t kPcapMagicSwapped = 0xd4c3b2a1;
constexpr uint32_t kLinkTypeEthernet = 1;

void PutLe16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutLe32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32At(std::span<const uint8_t> in, size_t off, bool swapped) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[off + i]) << (swapped ? (24 - 8 * i)
                                                        : (8 * i));
  }
  return v;
}

}  // namespace

std::vector<uint8_t> WritePcap(const std::vector<net::Packet>& packets,
                               const std::vector<uint64_t>& timestamps_us) {
  std::vector<uint8_t> out;
  // Global header.
  PutLe32(out, kPcapMagic);
  PutLe16(out, 2);   // version major
  PutLe16(out, 4);   // version minor
  PutLe32(out, 0);   // thiszone
  PutLe32(out, 0);   // sigfigs
  PutLe32(out, 65535);  // snaplen
  PutLe32(out, kLinkTypeEthernet);

  for (size_t i = 0; i < packets.size(); ++i) {
    const uint64_t ts =
        i < timestamps_us.size() ? timestamps_us[i] : static_cast<uint64_t>(i);
    const std::vector<uint8_t> frame = packets[i].Serialize();
    PutLe32(out, static_cast<uint32_t>(ts / 1000000));  // seconds
    PutLe32(out, static_cast<uint32_t>(ts % 1000000));  // microseconds
    PutLe32(out, static_cast<uint32_t>(frame.size()));  // captured length
    PutLe32(out, static_cast<uint32_t>(frame.size()));  // original length
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

Status WritePcapFile(const std::string& path,
                     const std::vector<net::Packet>& packets,
                     const std::vector<uint64_t>& timestamps_us) {
  const std::vector<uint8_t> bytes = WritePcap(packets, timestamps_us);
  std::ofstream out(path, std::ios::binary);
  if (!out) return InvalidArgument("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out ? Status::Ok() : Internal("short write to " + path);
}

Result<std::vector<PcapPacket>> ReadPcap(std::span<const uint8_t> bytes,
                                         int* skipped) {
  if (skipped != nullptr) *skipped = 0;
  if (bytes.size() < 24) return InvalidArgument("pcap too short for header");
  const uint32_t magic = GetU32At(bytes, 0, false);
  bool swapped;
  if (magic == kPcapMagic) {
    swapped = false;
  } else if (magic == kPcapMagicSwapped) {
    swapped = true;
  } else {
    return InvalidArgument("not a classic pcap file (bad magic)");
  }
  const uint32_t link_type = GetU32At(bytes, 20, swapped);
  if (link_type != kLinkTypeEthernet) {
    return Unsupported("pcap link type " + std::to_string(link_type) +
                       " (only Ethernet supported)");
  }

  std::vector<PcapPacket> packets;
  size_t off = 24;
  while (off + 16 <= bytes.size()) {
    const uint32_t ts_sec = GetU32At(bytes, off, swapped);
    const uint32_t ts_usec = GetU32At(bytes, off + 4, swapped);
    const uint32_t cap_len = GetU32At(bytes, off + 8, swapped);
    off += 16;
    if (off + cap_len > bytes.size()) {
      return InvalidArgument("truncated pcap record");
    }
    auto parsed = net::Packet::Parse(bytes.subspan(off, cap_len));
    if (parsed.ok()) {
      PcapPacket record;
      record.packet = std::move(parsed).value();
      record.timestamp_us = static_cast<uint64_t>(ts_sec) * 1000000 + ts_usec;
      packets.push_back(std::move(record));
    } else if (skipped != nullptr) {
      ++*skipped;
    }
    off += cap_len;
  }
  return packets;
}

Result<std::vector<PcapPacket>> ReadPcapFile(const std::string& path,
                                             int* skipped) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return ReadPcap(bytes, skipped);
}

}  // namespace gallium::workload
