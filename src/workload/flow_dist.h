// Flow-size distributions for the realistic workloads of §6.3.
//
// The paper draws flow sizes from the CONGA paper's enterprise and
// data-mining workloads: heavy-tailed distributions where ~90% of flows are
// under ten packets but most bytes live in long flows, with the data-mining
// tail substantially longer than the enterprise one. The exact CDFs are not
// tabulated in either paper, so these are reconstructions with the
// documented properties (see EXPERIMENTS.md for paper-vs-built notes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gallium::workload {

enum class WorkloadKind { kEnterprise, kDataMining };

const char* WorkloadName(WorkloadKind kind);

// CDF over flow sizes in bytes.
EmpiricalDistribution FlowSizeDistribution(WorkloadKind kind);

// Draws `count` flow sizes (bytes).
std::vector<uint64_t> DrawFlowSizes(WorkloadKind kind, int count, Rng& rng);

}  // namespace gallium::workload
