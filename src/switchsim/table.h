// Exact-match match-action table with the write-back shadow mechanism that
// Gallium uses for atomic state synchronization (§4.3.3):
//
//   "For each match table stored on the programmable switch, a smaller-sized
//    write-back table is created. Besides that, a single bit is also added to
//    the switch state, indicating whether the write-back table should be used
//    during table lookup. [...] If there is a matching entry, it will be used
//    as the result of the table lookup. Otherwise, the main match table will
//    be used."
//
// The data plane performs lookups only; all mutation goes through the
// control-plane methods (Stage/SetUseWriteBack/ApplyStagedToMain).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "state/flow_table.h"
#include "util/status.h"

namespace gallium::switchsim {

using TableKey = std::vector<uint64_t>;
using TableValue = std::vector<uint64_t>;

class ExactMatchTable {
 public:
  enum class MatchKind : uint8_t { kExact, kLpm };

  ExactMatchTable(std::string name, size_t key_words, size_t value_words,
                  uint64_t max_entries, MatchKind match_kind = MatchKind::kExact);

  MatchKind match_kind() const { return match_kind_; }

  const std::string& name() const { return name_; }
  uint64_t max_entries() const { return max_entries_; }
  size_t size() const {
    return flat_ != nullptr ? flat_->size() : main_.size();
  }

  // --- Data plane ------------------------------------------------------------
  // Lookup honoring the use-write-back bit. A staged deletion hides the main
  // entry. Fills `value` (zero-filled on miss) and returns hit/miss.
  bool Lookup(const TableKey& key, TableValue* value) const;

  // --- Control plane (driven by the server via SwitchControlPlane) ------------
  // Stages an entry into the write-back table (empty value = delete marker).
  Status Stage(const TableKey& key, std::optional<TableValue> value);
  void SetUseWriteBack(bool use) { use_write_back_ = use; }
  bool use_write_back() const { return use_write_back_; }
  // Applies all staged entries to the main table and clears the shadow.
  Status ApplyStagedToMain();

  // Direct main-table mutation, used only for initial configuration (table
  // population before traffic starts).
  Status InsertMain(const TableKey& key, const TableValue& value);

  // Drops every entry (main + staged) and clears the use-write-back bit —
  // what a switch restart or a pre-resync wipe does to the table.
  void Clear() {
    if (flat_ != nullptr) flat_->Clear();
    main_.clear();
    write_back_.clear();
    insertion_order_.clear();
    use_write_back_ = false;
  }

  size_t staged_entries() const { return write_back_.size(); }

  // Cache mode (§7 "Reducing memory usage"): when the table holds only a
  // fraction of the authoritative map, inserts into a full table evict the
  // oldest entry instead of failing.
  void EnableFifoEviction() { fifo_eviction_ = true; }
  bool fifo_eviction() const { return fifo_eviction_; }
  uint64_t evictions() const { return evictions_; }

 private:
  // Makes room for one more entry (cache mode only).
  void EvictOldest();
  // Main-table primitives bridging the two storages (flat for exact tables,
  // ordered map for LPM).
  bool MainContains(const TableKey& key) const;
  void MainUpsert(const TableKey& key, const TableValue& value);
  bool MainErase(const TableKey& key);

  std::string name_;
  size_t key_words_;
  size_t value_words_;
  uint64_t max_entries_;
  MatchKind match_kind_ = MatchKind::kExact;
  bool use_write_back_ = false;
  bool fifo_eviction_ = false;
  uint64_t evictions_ = 0;

  // Exact tables keep their main entries on the flat cuckoo table (inline
  // storage, O(1) lookups at 10M+ entries); LPM tables keep the ordered map
  // (the lookup ladder probes {prefix, len} keys most-specific-first).
  // Exactly one of the two is populated.
  std::unique_ptr<state::FlowTable> flat_;
  std::map<TableKey, TableValue> main_;
  std::vector<TableKey> insertion_order_;  // FIFO for cache eviction
  // The write-back shadow stays ordered: it is capped small (max_entries/4)
  // and ApplyStagedToMain's deterministic iteration keeps the eviction FIFO
  // reproducible across runs.
  // nullopt value = staged deletion.
  std::map<TableKey, std::optional<TableValue>> write_back_;
};

}  // namespace gallium::switchsim
