// Behavioral model of the programmable switch (our Tofino substitution).
//
// The switch owns the P4-visible state: one exact-match table (plus its
// write-back shadow) per switch-resident map, one read-only index table per
// switch-resident vector, and one register per switch-resident global. The
// data plane exposes this state through runtime::StateBackend so the
// interpreter's pre/post passes execute against real table lookups; the
// control plane applies server-driven updates with the atomic write-back
// protocol and a latency model calibrated to Table 3.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "ir/function.h"
#include "partition/plan.h"
#include "rmt/placement.h"
#include "runtime/state.h"
#include "runtime/sync.h"
#include "switchsim/table.h"
#include "telemetry/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace gallium::switchsim {

// Latency model for control-plane updates, shaped to reproduce Table 3:
// ~135 µs per table for one or two tables, sub-linear beyond (the SDK batches
// driver work across tables).
struct ControlPlaneLatencyModel {
  double per_table_us = 135.0;
  double batched_extra_us = 50.5;  // per additional table beyond two
  double jitter_stddev_us = 20.0;

  double UpdateLatencyUs(int num_tables, Rng* rng) const;
};

class Switch;

// Data-plane view of switch state. Lookups hit the match-action tables;
// data-plane mutation of tables is impossible by construction (§2.1), only
// switch-local registers can be written.
class SwitchStateBackend : public runtime::StateBackend {
 public:
  explicit SwitchStateBackend(Switch* sw) : sw_(sw) {}

  bool MapLookup(ir::StateIndex map, const runtime::StateKey& key,
                 runtime::StateValue* values) override;
  void MapInsert(ir::StateIndex map, const runtime::StateKey& key,
                 const runtime::StateValue& values) override;
  void MapErase(ir::StateIndex map, const runtime::StateKey& key) override;
  uint64_t VectorGet(ir::StateIndex vec, uint64_t index) override;
  uint64_t VectorSize(ir::StateIndex vec) override;
  uint64_t GlobalRead(ir::StateIndex global) override;
  void GlobalWrite(ir::StateIndex global, uint64_t value) override;

 private:
  Switch* sw_;
};

class Switch {
 public:
  // Instantiates tables/registers for every state object the plan places on
  // the switch. Fails if the resident state exceeds the memory budget.
  //
  // `cache_entries_per_table` > 0 enables the §7 memory-reduction mode:
  // each replicated map's table is capped at that many entries with FIFO
  // eviction; the switch then holds only a cache of the server's
  // authoritative map.
  static Result<std::unique_ptr<Switch>> Create(
      const ir::Function& fn, const partition::PartitionPlan& plan,
      const partition::SwitchConstraints& limits,
      uint64_t cache_entries_per_table = 0);

  // True when `map`'s table is a partial cache (lookup misses are not
  // authoritative).
  bool IsCachedMap(ir::StateIndex map) const;

  const ir::Function& function() const { return *fn_; }
  const partition::PartitionPlan& plan() const { return *plan_; }

  runtime::StateBackend& data_plane() { return data_plane_; }

  bool IsResident(const ir::StateRef& ref) const;
  ExactMatchTable* table(ir::StateIndex map);  // null if not resident

  // --- Configuration-time population (before traffic) -----------------------
  Status PopulateMap(ir::StateIndex map, const runtime::StateKey& key,
                     const runtime::StateValue& value);
  Status PopulateVector(ir::StateIndex vec, std::vector<uint64_t> values);

  // --- Control plane -----------------------------------------------------------
  // Atomically applies a batch of server-side mutations using the
  // write-back protocol; returns the modeled latency. Mutations touching
  // non-resident state are ignored (that state lives only on the server).
  // Legacy un-sequenced entry point (benches and direct tests); the
  // offloaded runtime goes through ApplySyncBatch.
  Result<double> ApplyAtomicUpdate(
      const std::vector<runtime::RecordingStateBackend::MapMutation>& maps,
      const std::vector<runtime::RecordingStateBackend::GlobalMutation>&
          globals,
      Rng* rng);

  // Health heartbeat: a minimal control-plane round-trip (read the epoch,
  // touch no tables). Returns the modeled probe latency — a small fraction
  // of a one-table update, jittered. The watchdog's failure detector feeds
  // on these.
  double ProbeHealth(Rng* rng) const;

  // Sequenced, idempotent, epoch-checked apply (§4.3.3 hardened): a batch
  // from a stale epoch is rejected (epoch_ok=false, nothing applied); a seq
  // at or below the high-water mark is acked as a duplicate without
  // re-applying; otherwise the mutations commit atomically via the
  // write-back protocol. Exactly-once apply under retries follows.
  Result<runtime::SyncAck> ApplySyncBatch(const runtime::SyncBatch& batch,
                                          Rng* rng);

  // --- Failure & recovery --------------------------------------------------------
  // Power-cycles the switch: every table, vector, and register reverts to
  // its declaration-time initial value, in-flight write-back state is lost,
  // and the epoch is bumped so stale SyncBatches are rejected.
  void Restart();

  // Full-state resynchronization from the server's authoritative store:
  // wipes and repopulates every resident table/vector/register (cached §7
  // tables restart cold — their misses are non-authoritative by design) and
  // re-arms the apply high-water mark at `server_seq`, so batches the server
  // already folded into `host` are treated as applied. Returns the modeled
  // control-plane latency of pushing the snapshot.
  double ResyncFromHost(const runtime::HostStateStore& host,
                        uint64_t server_seq, Rng* rng);

  // Control-plane register poke: writes a global's register directly, with
  // no data-plane stage accounting. The engine uses it to mirror the sync
  // core's authoritative global values into every shard's replica between
  // packets. No-op when the global is not resident.
  void SetGlobalRegister(ir::StateIndex g, uint64_t value);

  uint64_t epoch() const { return epoch_; }
  uint64_t restarts() const { return restarts_; }
  uint64_t resyncs() const { return resyncs_; }
  uint64_t last_applied_seq() const { return last_applied_seq_; }
  // Every (epoch, seq) pair whose mutations were actually performed —
  // duplicates and stale-epoch rejections never enter. The chaos harness
  // asserts each seq appears at most once across the whole run.
  const std::vector<std::pair<uint64_t, uint64_t>>& applied_log() const {
    return applied_log_;
  }

  // --- Stage-aware execution (RMT placement) -----------------------------------
  // Installs the table placement computed by rmt::PlaceTables: every state
  // access is pinned to its physical stage. Each pipeline pass must then
  // touch state in non-decreasing stage order (the packet flows through the
  // stages once); violations are counted, and the pass's latency is keyed
  // on the stages the placement occupies rather than a flat constant.
  void SetPlacement(const rmt::PlacementReport& report);
  bool stage_aware() const { return stage_aware_; }

  // Marks the start of one traversal of the pipeline (the pre pass, the
  // post pass, each pass of a resync probe...). Resets the stage cursor.
  void BeginPipelinePass();

  // Stages with at least one placed table (0 when no placement installed).
  int stages_occupied() const { return stages_occupied_; }
  // Pipeline passes begun and stage-order violations observed so far. A
  // violation means an access was placed in an earlier stage than one
  // already executed this pass — impossible on real RMT hardware, so any
  // non-zero count flags a broken placement.
  uint64_t pipeline_passes() const { return pipeline_passes_; }
  uint64_t stage_order_violations() const { return stage_order_violations_; }

  // --- Per-stage data-plane counters (telemetry) ---------------------------------
  // Counted only in stage-aware mode, keyed by the physical stage the RMT
  // placement assigned to the touched state: every access, match-table
  // lookup hits/misses, and accesses that would force a recirculation
  // (same as a stage-order violation — the packet would need another pass).
  struct StageCounters {
    uint64_t accesses = 0;
    uint64_t matches = 0;
    uint64_t misses = 0;
    uint64_t recirculations = 0;
  };
  // Indexed by physical stage; sized to the highest placed stage + 1.
  const std::vector<StageCounters>& stage_counters() const {
    return stage_counters_;
  }

  // Snapshots the per-stage counters (plus passes/recirculation totals)
  // onto `registry` as gauges labeled {<base labels>, stage=<n>}.
  // Idempotent: gauges are Set, not incremented, so republishing after more
  // traffic just refreshes the values. The LabelSet form lets engine shards
  // add a {worker=<i>} label so shards sharing a registry never collide.
  void PublishStageMetrics(telemetry::MetricsRegistry* registry,
                           const telemetry::LabelSet& base) const;
  void PublishStageMetrics(telemetry::MetricsRegistry* registry,
                           const std::string& scope) const {
    PublishStageMetrics(registry, telemetry::LabelSet{{"mbox", scope}});
  }

  // --- Resources ---------------------------------------------------------------
  struct ResourceReport {
    uint64_t memory_bytes_used = 0;
    uint64_t memory_bytes_limit = 0;
    int metadata_bytes_used = 0;
    int metadata_bytes_limit = 0;
    int pipeline_stages_used = 0;
    int pipeline_stages_limit = 0;
    // From the installed placement (0 when not stage-aware): physical
    // stages the program occupies on the RMT pipeline.
    int rmt_stages_occupied = 0;
    int num_tables = 0;
    int num_registers = 0;
    bool within_limits = true;
  };
  ResourceReport Resources() const;

  const ControlPlaneLatencyModel& latency_model() const {
    return latency_model_;
  }

  // Total control-plane update batches applied (state-sync counter).
  uint64_t sync_batches() const { return sync_batches_; }

 private:
  friend class SwitchStateBackend;

  Switch(const ir::Function& fn, const partition::PartitionPlan& plan,
         const partition::SwitchConstraints& limits);

  const ir::Function* fn_;
  const partition::PartitionPlan* plan_;
  partition::SwitchConstraints limits_;
  ControlPlaneLatencyModel latency_model_;
  SwitchStateBackend data_plane_;

  // Applies one batch of mutations via the write-back protocol; returns the
  // number of touched tables/register groups for the latency model.
  Result<int> CommitMutations(
      const std::vector<runtime::RecordingStateBackend::MapMutation>& maps,
      const std::vector<runtime::RecordingStateBackend::GlobalMutation>&
          globals);

  // Records a data-plane access to `ref` against the stage cursor of the
  // current pipeline pass (no-op until SetPlacement). `lookup_hit` carries
  // the match-table outcome for map lookups (-1 = not a lookup access).
  void TouchState(const ir::StateRef& ref, int lookup_hit = -1);

  // Indexed by the function's state indices; null when not resident.
  std::vector<std::unique_ptr<ExactMatchTable>> map_tables_;
  std::vector<std::unique_ptr<std::vector<uint64_t>>> vector_tables_;
  std::vector<std::unique_ptr<uint64_t>> registers_;

  // RMT placement view (SetPlacement): primary stage per state object.
  bool stage_aware_ = false;
  std::map<ir::StateRef, int> stage_of_state_;
  std::vector<StageCounters> stage_counters_;
  int stages_occupied_ = 0;
  int pass_cursor_ = -1;  // highest stage touched in the current pass
  uint64_t pipeline_passes_ = 0;
  uint64_t stage_order_violations_ = 0;

  uint64_t sync_batches_ = 0;
  uint64_t epoch_ = 0;
  uint64_t restarts_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t last_applied_seq_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> applied_log_;  // (epoch, seq)
};

}  // namespace gallium::switchsim
