#include "switchsim/switch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace gallium::switchsim {

using ir::StateRef;

double ControlPlaneLatencyModel::UpdateLatencyUs(int num_tables,
                                                 Rng* rng) const {
  if (num_tables <= 0) return 0.0;
  double base;
  if (num_tables <= 2) {
    base = per_table_us * num_tables;
  } else {
    base = per_table_us * 2 + batched_extra_us * (num_tables - 2);
  }
  if (rng != nullptr) {
    // Box-Muller jitter, clamped to stay positive.
    const double u1 = std::max(1e-12, rng->NextDouble());
    const double u2 = rng->NextDouble();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    base += gauss * jitter_stddev_us;
  }
  return std::max(base, per_table_us * 0.5);
}

bool SwitchStateBackend::MapLookup(ir::StateIndex map,
                                   const runtime::StateKey& key,
                                   runtime::StateValue* values) {
  ExactMatchTable* table = sw_->map_tables_[map].get();
  assert(table != nullptr && "lookup of a non-resident map on the switch");
  const bool hit = table->Lookup(key, values);
  sw_->TouchState({ir::StateRef::Kind::kMap, map}, hit ? 1 : 0);
  return hit;
}

void SwitchStateBackend::MapInsert(ir::StateIndex, const runtime::StateKey&,
                                   const runtime::StateValue&) {
  assert(false && "data plane cannot insert into match-action tables (§2.1)");
}

void SwitchStateBackend::MapErase(ir::StateIndex, const runtime::StateKey&) {
  assert(false && "data plane cannot erase from match-action tables (§2.1)");
}

uint64_t SwitchStateBackend::VectorGet(ir::StateIndex vec, uint64_t index) {
  const auto* contents = sw_->vector_tables_[vec].get();
  assert(contents != nullptr && "non-resident vector on the switch");
  sw_->TouchState({ir::StateRef::Kind::kVector, vec});
  // Index table miss semantics: out-of-range reads return zero.
  if (index >= contents->size()) return 0;
  return (*contents)[index];
}

uint64_t SwitchStateBackend::VectorSize(ir::StateIndex vec) {
  const auto* contents = sw_->vector_tables_[vec].get();
  assert(contents != nullptr);
  sw_->TouchState({ir::StateRef::Kind::kVector, vec});
  return contents->size();
}

uint64_t SwitchStateBackend::GlobalRead(ir::StateIndex global) {
  const auto* reg = sw_->registers_[global].get();
  assert(reg != nullptr && "non-resident global on the switch");
  sw_->TouchState({ir::StateRef::Kind::kGlobal, global});
  return *reg;
}

void SwitchStateBackend::GlobalWrite(ir::StateIndex global, uint64_t value) {
  auto* reg = sw_->registers_[global].get();
  assert(reg != nullptr);
  sw_->TouchState({ir::StateRef::Kind::kGlobal, global});
  *reg = value & ir::WidthMask(sw_->fn_->global(global).width);
}

void Switch::SetPlacement(const rmt::PlacementReport& report) {
  stage_of_state_.clear();
  for (size_t i = 0; i < report.tables.size(); ++i) {
    const rmt::TableRequirement& req = report.tables[i];
    // The primary access stage of a state object: its main match table, or
    // the register itself for globals. Write-back shadows execute in their
    // own (earlier) stage but share the main table's lookup site.
    if (req.kind == rmt::TableRequirement::Kind::kWriteBack) continue;
    if (req.kind == rmt::TableRequirement::Kind::kRegister &&
        req.state.kind != ir::StateRef::Kind::kGlobal) {
      continue;  // wb-active / size registers ride with the match table
    }
    if (report.stage_of[i] >= 0) {
      stage_of_state_[req.state] = report.stage_of[i];
    }
  }
  int max_stage = -1;
  for (const auto& [state, stage] : stage_of_state_) {
    max_stage = std::max(max_stage, stage);
  }
  stage_counters_.assign(static_cast<size_t>(max_stage + 1), StageCounters{});
  stages_occupied_ = report.StagesOccupied();
  stage_aware_ = true;
  pass_cursor_ = -1;
}

void Switch::BeginPipelinePass() {
  ++pipeline_passes_;
  pass_cursor_ = -1;
}

void Switch::TouchState(const ir::StateRef& ref, int lookup_hit) {
  if (!stage_aware_) return;
  const auto it = stage_of_state_.find(ref);
  if (it == stage_of_state_.end()) return;
  StageCounters& counters = stage_counters_[static_cast<size_t>(it->second)];
  ++counters.accesses;
  if (lookup_hit == 1) ++counters.matches;
  if (lookup_hit == 0) ++counters.misses;
  if (it->second < pass_cursor_) {
    // The packet already passed this stage in the current traversal; a real
    // RMT pipeline cannot flow backwards — reaching the state would take a
    // recirculation through the whole pipe.
    ++stage_order_violations_;
    ++counters.recirculations;
    return;
  }
  pass_cursor_ = it->second;
}

void Switch::PublishStageMetrics(telemetry::MetricsRegistry* registry,
                                 const telemetry::LabelSet& base) const {
  auto publish = [&](const char* name, int stage, uint64_t value,
                     const char* help) {
    telemetry::LabelSet labels = base;
    labels.push_back({"stage", std::to_string(stage)});
    registry->GetGauge(name, std::move(labels), help)
        ->Set(static_cast<double>(value));
  };
  for (size_t stage = 0; stage < stage_counters_.size(); ++stage) {
    const StageCounters& counters = stage_counters_[stage];
    const int s = static_cast<int>(stage);
    publish("gallium_switch_stage_accesses", s, counters.accesses,
            "data-plane state accesses per RMT stage");
    publish("gallium_switch_stage_matches", s, counters.matches,
            "match-table lookup hits per RMT stage");
    publish("gallium_switch_stage_misses", s, counters.misses,
            "match-table lookup misses per RMT stage");
    publish("gallium_switch_stage_recirculations", s, counters.recirculations,
            "accesses needing a recirculation (stage-order violations)");
  }
  registry
      ->GetGauge("gallium_switch_pipeline_passes", base,
                 "pipeline traversals begun")
      ->Set(static_cast<double>(pipeline_passes_));
  registry
      ->GetGauge("gallium_switch_recirculations", base,
                 "total stage-order violations across the run")
      ->Set(static_cast<double>(stage_order_violations_));
}

Switch::Switch(const ir::Function& fn, const partition::PartitionPlan& plan,
               const partition::SwitchConstraints& limits)
    : fn_(&fn),
      plan_(&plan),
      limits_(limits),
      data_plane_(this),
      map_tables_(fn.maps().size()),
      vector_tables_(fn.vectors().size()),
      registers_(fn.globals().size()) {}

Result<std::unique_ptr<Switch>> Switch::Create(
    const ir::Function& fn, const partition::PartitionPlan& plan,
    const partition::SwitchConstraints& limits,
    uint64_t cache_entries_per_table) {
  auto sw = std::unique_ptr<Switch>(new Switch(fn, plan, limits));
  for (const auto& [ref, placement] : plan.state_placement) {
    if (placement == partition::StatePlacement::kServerOnly) continue;
    switch (ref.kind) {
      case StateRef::Kind::kMap: {
        const ir::MapDecl& decl = fn.map(ref.index);
        uint64_t entries = decl.max_entries;
        bool cached = false;
        if (cache_entries_per_table > 0 &&
            placement == partition::StatePlacement::kReplicated &&
            cache_entries_per_table < entries) {
          entries = cache_entries_per_table;
          cached = true;
        }
        sw->map_tables_[ref.index] = std::make_unique<ExactMatchTable>(
            decl.name, decl.key_widths.size(), decl.value_widths.size(),
            entries,
            decl.is_lpm() ? ExactMatchTable::MatchKind::kLpm
                          : ExactMatchTable::MatchKind::kExact);
        if (cached) sw->map_tables_[ref.index]->EnableFifoEviction();
        break;
      }
      case StateRef::Kind::kVector:
        sw->vector_tables_[ref.index] = std::make_unique<std::vector<uint64_t>>();
        break;
      case StateRef::Kind::kGlobal:
        sw->registers_[ref.index] =
            std::make_unique<uint64_t>(fn.global(ref.index).init);
        break;
    }
  }
  const ResourceReport report = sw->Resources();
  if (!report.within_limits) {
    return ResourceExhausted("switch state exceeds memory budget: " +
                             std::to_string(report.memory_bytes_used) + " > " +
                             std::to_string(report.memory_bytes_limit));
  }
  return sw;
}

bool Switch::IsCachedMap(ir::StateIndex map) const {
  return map_tables_[map] != nullptr && map_tables_[map]->fifo_eviction();
}

bool Switch::IsResident(const StateRef& ref) const {
  switch (ref.kind) {
    case StateRef::Kind::kMap: return map_tables_[ref.index] != nullptr;
    case StateRef::Kind::kVector: return vector_tables_[ref.index] != nullptr;
    case StateRef::Kind::kGlobal: return registers_[ref.index] != nullptr;
  }
  return false;
}

ExactMatchTable* Switch::table(ir::StateIndex map) {
  return map_tables_[map].get();
}

Status Switch::PopulateMap(ir::StateIndex map, const runtime::StateKey& key,
                           const runtime::StateValue& value) {
  if (map_tables_[map] == nullptr) return Status::Ok();  // server-only map
  return map_tables_[map]->InsertMain(key, value);
}

Status Switch::PopulateVector(ir::StateIndex vec,
                              std::vector<uint64_t> values) {
  if (vector_tables_[vec] == nullptr) return Status::Ok();
  *vector_tables_[vec] = std::move(values);
  return Status::Ok();
}

Result<int> Switch::CommitMutations(
    const std::vector<runtime::RecordingStateBackend::MapMutation>& maps,
    const std::vector<runtime::RecordingStateBackend::GlobalMutation>&
        globals) {
  // Step 1: stage every mutation into the write-back tables.
  std::set<ir::StateIndex> touched_tables;
  for (const auto& m : maps) {
    ExactMatchTable* table = map_tables_[m.map].get();
    if (table == nullptr) continue;  // state not replicated to the switch
    GALLIUM_RETURN_IF_ERROR(table->Stage(
        m.key, m.is_erase ? std::nullopt : std::make_optional(m.values)));
    touched_tables.insert(m.map);
  }

  // Step 2: flip the use-write-back bit — this is the atomic commit point;
  // subsequent lookups see all staged entries.
  for (ir::StateIndex t : touched_tables) {
    map_tables_[t]->SetUseWriteBack(true);
  }

  // Register updates are single-word writes and are atomic on their own.
  int touched_registers = 0;
  for (const auto& g : globals) {
    if (registers_[g.global] == nullptr) continue;
    *registers_[g.global] = g.value & ir::WidthMask(fn_->global(g.global).width);
    ++touched_registers;
  }

  // Step 3: write the updates into the main tables and flip the bit back.
  for (ir::StateIndex t : touched_tables) {
    GALLIUM_RETURN_IF_ERROR(map_tables_[t]->ApplyStagedToMain());
    map_tables_[t]->SetUseWriteBack(false);
  }

  ++sync_batches_;
  return static_cast<int>(touched_tables.size()) +
         (touched_registers > 0 ? 1 : 0);
}

Result<double> Switch::ApplyAtomicUpdate(
    const std::vector<runtime::RecordingStateBackend::MapMutation>& maps,
    const std::vector<runtime::RecordingStateBackend::GlobalMutation>& globals,
    Rng* rng) {
  GALLIUM_ASSIGN_OR_RETURN(int ops, CommitMutations(maps, globals));
  return latency_model_.UpdateLatencyUs(ops, rng);
}

double Switch::ProbeHealth(Rng* rng) const {
  // An epoch read costs roughly a tenth of a one-table driver update; keep
  // the same jitter source so probe latencies and sync latencies move
  // together under a shared substrate.
  double base = latency_model_.per_table_us * 0.1;
  if (rng != nullptr) {
    base += rng->NextDouble() * latency_model_.jitter_stddev_us * 0.2;
  }
  return base;
}

Result<runtime::SyncAck> Switch::ApplySyncBatch(
    const runtime::SyncBatch& batch, Rng* rng) {
  runtime::SyncAck ack;
  ack.switch_epoch = epoch_;
  if (batch.epoch != epoch_) {
    // Built against a dead incarnation: the base state the batch assumes is
    // gone. Nothing is applied; the server must resync first.
    return ack;
  }
  ack.epoch_ok = true;
  if (batch.seq <= last_applied_seq_) {
    // Retransmission of a batch whose ack was lost — ack idempotently.
    ack.duplicate = true;
    ack.latency_us = latency_model_.UpdateLatencyUs(1, rng);
    return ack;
  }
  GALLIUM_ASSIGN_OR_RETURN(int ops, CommitMutations(batch.maps, batch.globals));
  last_applied_seq_ = batch.seq;
  applied_log_.push_back({epoch_, batch.seq});
  ack.applied = true;
  ack.latency_us = latency_model_.UpdateLatencyUs(ops, rng);
  return ack;
}

void Switch::Restart() {
  for (auto& table : map_tables_) {
    if (table != nullptr) table->Clear();
  }
  for (auto& vec : vector_tables_) {
    if (vec != nullptr) vec->clear();
  }
  for (size_t g = 0; g < registers_.size(); ++g) {
    if (registers_[g] != nullptr) {
      *registers_[g] = fn_->global(static_cast<ir::StateIndex>(g)).init;
    }
  }
  ++epoch_;
  ++restarts_;
  last_applied_seq_ = 0;
}

double Switch::ResyncFromHost(const runtime::HostStateStore& host,
                              uint64_t server_seq, Rng* rng) {
  int touched = 0;
  for (size_t i = 0; i < map_tables_.size(); ++i) {
    ExactMatchTable* table = map_tables_[i].get();
    if (table == nullptr) continue;
    table->Clear();
    ++touched;
    // §7 cached tables restart cold: a miss is non-authoritative and routes
    // through the server anyway, which repopulates the cache as a side
    // effect. Full tables get the complete authoritative contents.
    if (table->fifo_eviction()) continue;
    // Unordered visit — no sorted snapshot; the map is bounded by the table
    // capacity by construction (the server map and the full-size table
    // share max_entries), and full tables don't care about insert order.
    host.ForEachMapEntry(
        static_cast<ir::StateIndex>(i),
        [&](const runtime::StateKey& key, const runtime::StateValue& value) {
          (void)table->InsertMain(key, value);
        });
  }
  for (size_t i = 0; i < vector_tables_.size(); ++i) {
    if (vector_tables_[i] == nullptr) continue;
    *vector_tables_[i] = host.vector_contents(static_cast<ir::StateIndex>(i));
    ++touched;
  }
  for (size_t g = 0; g < registers_.size(); ++g) {
    if (registers_[g] == nullptr) continue;
    *registers_[g] = host.global_value(static_cast<ir::StateIndex>(g)) &
                     ir::WidthMask(fn_->global(static_cast<ir::StateIndex>(g)).width);
  }
  last_applied_seq_ = server_seq;
  ++resyncs_;
  return latency_model_.UpdateLatencyUs(touched, rng);
}

void Switch::SetGlobalRegister(ir::StateIndex g, uint64_t value) {
  if (registers_[g] == nullptr) return;
  *registers_[g] = value & ir::WidthMask(fn_->global(g).width);
}

Switch::ResourceReport Switch::Resources() const {
  ResourceReport report;
  report.memory_bytes_limit = limits_.memory_bytes;
  report.metadata_bytes_limit = limits_.metadata_bytes;
  report.metadata_bytes_used = plan_->metadata_peak_bytes;
  report.pipeline_stages_used = plan_->pipeline_stages_used;
  report.pipeline_stages_limit = limits_.pipeline_depth;
  report.rmt_stages_occupied = stages_occupied_;
  for (size_t i = 0; i < map_tables_.size(); ++i) {
    if (map_tables_[i] == nullptr) continue;
    ++report.num_tables;
    // Account the table at its *instantiated* capacity — smaller than the
    // annotation when the §7 cache mode is on — plus the write-back shadow
    // (§4.3.3) at a quarter of it.
    const ir::MapDecl& decl = fn_->map(static_cast<ir::StateIndex>(i));
    const uint64_t entry_bytes =
        static_cast<uint64_t>(decl.KeyBytes() + decl.ValueBytes()) + 4;
    uint64_t bytes = map_tables_[i]->max_entries() * entry_bytes;
    bytes += bytes / 4;
    report.memory_bytes_used += bytes;
  }
  for (size_t i = 0; i < vector_tables_.size(); ++i) {
    if (vector_tables_[i] == nullptr) continue;
    ++report.num_tables;
    report.memory_bytes_used +=
        fn_->vector(static_cast<ir::StateIndex>(i)).SwitchBytes();
  }
  for (const auto& reg : registers_) {
    if (reg != nullptr) ++report.num_registers;
  }
  report.memory_bytes_used += 8ull * report.num_registers;
  report.within_limits =
      report.memory_bytes_used <= report.memory_bytes_limit &&
      report.metadata_bytes_used <= report.metadata_bytes_limit &&
      report.pipeline_stages_used <= report.pipeline_stages_limit;
  return report;
}

}  // namespace gallium::switchsim
