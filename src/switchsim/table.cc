#include "switchsim/table.h"

#include <algorithm>

namespace gallium::switchsim {

ExactMatchTable::ExactMatchTable(std::string name, size_t key_words,
                                 size_t value_words, uint64_t max_entries,
                                 MatchKind match_kind)
    : name_(std::move(name)),
      // LPM entries are stored under {prefix, prefix_len}; data-plane
      // lookups still present a single address word.
      key_words_(match_kind == MatchKind::kLpm ? 2 : key_words),
      value_words_(value_words),
      max_entries_(max_entries),
      match_kind_(match_kind) {
  if (match_kind_ == MatchKind::kExact) {
    state::FlowTable::Config config;
    config.key_words = key_words_;
    config.value_words = value_words_;
    // Start small and grow incrementally toward max_entries — switch tables
    // are declared at paper-scale capacities that most runs never fill.
    config.initial_capacity = std::min<uint64_t>(
        std::max<uint64_t>(max_entries_, 16), 1024);
    flat_ = std::make_unique<state::FlowTable>(config);
  }
}

bool ExactMatchTable::MainContains(const TableKey& key) const {
  if (flat_ != nullptr) {
    return key.size() == key_words_ && flat_->Contains(key.data());
  }
  return main_.count(key) > 0;
}

void ExactMatchTable::MainUpsert(const TableKey& key, const TableValue& value) {
  if (flat_ != nullptr) {
    flat_->Upsert(key.data(), value.data());
    return;
  }
  main_[key] = value;
}

bool ExactMatchTable::MainErase(const TableKey& key) {
  if (flat_ != nullptr) {
    return key.size() == key_words_ && flat_->Erase(key.data());
  }
  return main_.erase(key) > 0;
}

bool ExactMatchTable::Lookup(const TableKey& key, TableValue* value) const {
  if (match_kind_ == MatchKind::kLpm) {
    // Scan from the most specific prefix; at each length a staged entry
    // (when the write-back window is open) overrides the main table —
    // including staged deletions, which make that prefix fall through to
    // shorter ones.
    const uint64_t addr = key.empty() ? 0 : key[0];
    for (int len = 32; len >= 0; --len) {
      const uint64_t mask =
          len == 0 ? 0 : (~0ull << (32 - len)) & 0xffffffffull;
      const TableKey entry_key = {addr & mask, static_cast<uint64_t>(len)};
      if (use_write_back_) {
        const auto staged = write_back_.find(entry_key);
        if (staged != write_back_.end()) {
          if (!staged->second.has_value()) continue;  // staged deletion
          *value = *staged->second;
          return true;
        }
      }
      const auto it = main_.find(entry_key);
      if (it != main_.end()) {
        *value = it->second;
        return true;
      }
    }
    value->assign(value_words_, 0);
    return false;
  }
  if (use_write_back_) {
    const auto it = write_back_.find(key);
    if (it != write_back_.end()) {
      if (!it->second.has_value()) {  // staged deletion
        value->assign(value_words_, 0);
        return false;
      }
      *value = *it->second;
      return true;
    }
  }
  if (key.size() != key_words_) {
    value->assign(value_words_, 0);
    return false;
  }
  value->resize(value_words_);
  if (!flat_->Lookup(key.data(), value->data())) {
    std::fill(value->begin(), value->end(), 0);
    return false;
  }
  return true;
}

Status ExactMatchTable::Stage(const TableKey& key,
                              std::optional<TableValue> value) {
  if (key.size() != key_words_) {
    return InvalidArgument("table " + name_ + ": key arity mismatch");
  }
  if (value.has_value() && value->size() != value_words_) {
    return InvalidArgument("table " + name_ + ": value arity mismatch");
  }
  // The write-back table is sized as a fraction of the main table; a full
  // shadow means the control plane must flush before staging more.
  const uint64_t shadow_cap = std::max<uint64_t>(16, max_entries_ / 4);
  if (write_back_.size() >= shadow_cap && !write_back_.count(key)) {
    return ResourceExhausted("table " + name_ + ": write-back table full");
  }
  write_back_[key] = std::move(value);
  return Status::Ok();
}

Status ExactMatchTable::ApplyStagedToMain() {
  for (auto& [key, value] : write_back_) {
    if (value.has_value()) {
      if (size() >= max_entries_ && !MainContains(key)) {
        if (!fifo_eviction_) {
          return ResourceExhausted("table " + name_ + ": table full (" +
                                   std::to_string(max_entries_) +
                                   " entries)");
        }
        EvictOldest();
      }
      if (fifo_eviction_ && !MainContains(key)) insertion_order_.push_back(key);
      MainUpsert(key, *value);
    } else {
      MainErase(key);
    }
  }
  write_back_.clear();
  return Status::Ok();
}

void ExactMatchTable::EvictOldest() {
  while (!insertion_order_.empty()) {
    const TableKey victim = insertion_order_.front();
    insertion_order_.erase(insertion_order_.begin());
    if (MainErase(victim)) {
      ++evictions_;
      return;
    }
    // The FIFO can hold keys already deleted through the control plane;
    // skip them and keep looking.
  }
}

Status ExactMatchTable::InsertMain(const TableKey& key,
                                   const TableValue& value) {
  if (key.size() != key_words_ || value.size() != value_words_) {
    return InvalidArgument("table " + name_ + ": arity mismatch");
  }
  if (size() >= max_entries_ && !MainContains(key)) {
    if (!fifo_eviction_) {
      return ResourceExhausted("table " + name_ + ": table full");
    }
    EvictOldest();
  }
  if (fifo_eviction_ && !MainContains(key)) insertion_order_.push_back(key);
  MainUpsert(key, value);
  return Status::Ok();
}

}  // namespace gallium::switchsim
