// Wire-format protocol headers: Ethernet, IPv4, TCP, UDP, and the synthesized
// Gallium transfer header that carries temporary state between the switch and
// the middlebox server (paper §4.3.2, Fig. 5).
//
// All multi-byte fields are kept in host order inside the structs; byte-order
// conversion happens only in Serialize/Parse.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace gallium::net {

// --- Addresses -------------------------------------------------------------

struct MacAddr {
  std::array<uint8_t, 6> bytes{};

  static MacAddr FromUint64(uint64_t v);
  uint64_t ToUint64() const;
  std::string ToString() const;  // "aa:bb:cc:dd:ee:ff"

  auto operator<=>(const MacAddr&) const = default;
};

// IPv4 address stored as a host-order uint32 (10.0.0.1 == 0x0a000001).
using Ipv4Addr = uint32_t;

Ipv4Addr MakeIpv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
std::string Ipv4ToString(Ipv4Addr addr);

// --- EtherTypes / protocols --------------------------------------------------

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
// EtherType claimed by the Gallium transfer header (locally administered /
// experimental range). A transfer header is always followed by IPv4.
inline constexpr uint16_t kEtherTypeGallium = 0x88B5;

inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

// TCP flag bits.
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

// --- Headers ---------------------------------------------------------------

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  uint16_t ether_type = kEtherTypeIpv4;

  static constexpr size_t kSize = 14;
  auto operator<=>(const EthernetHeader&) const = default;
};

struct Ipv4Header {
  uint8_t ttl = 64;
  uint8_t protocol = kIpProtoTcp;
  Ipv4Addr saddr = 0;
  Ipv4Addr daddr = 0;
  uint16_t total_length = 0;  // filled in by serialization
  uint16_t checksum = 0;      // filled in by serialization

  static constexpr size_t kSize = 20;  // no options
  auto operator<=>(const Ipv4Header&) const = default;
};

struct TcpHeader {
  uint16_t sport = 0;
  uint16_t dport = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 65535;

  static constexpr size_t kSize = 20;  // no options
  auto operator<=>(const TcpHeader&) const = default;
};

struct UdpHeader {
  uint16_t sport = 0;
  uint16_t dport = 0;
  uint16_t length = 0;  // filled in by serialization

  static constexpr size_t kSize = 8;
  auto operator<=>(const UdpHeader&) const = default;
};

// The Gallium transfer header is synthesized per middlebox by the compiler:
// a bitmap of branch-condition bits followed by N 32-bit variable slots
// (§4.3.2). The *layout* lives in the compiler output; at the wire level it
// is an opaque sequence of bytes with a fixed length for a given program.
struct GalliumHeader {
  // One bit per transferred branch condition, packed little-endian.
  uint32_t cond_bits = 0;
  // Transferred 32-bit variables, in the order given by the format descriptor.
  std::vector<uint32_t> vars;

  // Wire layout: u16 var count, u16 reserved, u32 cond bits, N×u32 vars.
  size_t WireSize() const { return 8 + 4 * vars.size(); }
  bool operator==(const GalliumHeader&) const = default;
};

// --- Five tuple --------------------------------------------------------------

struct FiveTuple {
  Ipv4Addr saddr = 0;
  Ipv4Addr daddr = 0;
  uint16_t sport = 0;
  uint16_t dport = 0;
  uint8_t protocol = kIpProtoTcp;

  FiveTuple Reversed() const {
    return FiveTuple{daddr, saddr, dport, sport, protocol};
  }
  uint64_t Hash() const;
  std::string ToString() const;
  auto operator<=>(const FiveTuple&) const = default;
};

// --- Byte-order & checksum helpers ------------------------------------------

void PutU16(std::vector<uint8_t>& out, uint16_t v);
void PutU32(std::vector<uint8_t>& out, uint32_t v);
uint16_t GetU16(std::span<const uint8_t> in, size_t offset);
uint32_t GetU32(std::span<const uint8_t> in, size_t offset);

// RFC 1071 internet checksum over the given bytes.
uint16_t InternetChecksum(std::span<const uint8_t> data);

}  // namespace gallium::net
