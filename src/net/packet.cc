#include "net/packet.h"

#include <algorithm>
#include <cassert>

namespace gallium::net {

GalliumHeader& Packet::mutable_gallium() {
  if (!gallium_.has_value()) set_gallium(GalliumHeader{});
  return *gallium_;
}

void Packet::set_gallium(GalliumHeader h) {
  gallium_ = std::move(h);
  eth_.ether_type = kEtherTypeGallium;
}

void Packet::clear_gallium() {
  gallium_.reset();
  eth_.ether_type = kEtherTypeIpv4;
}

uint16_t Packet::sport() const {
  if (tcp_) return tcp_->sport;
  if (udp_) return udp_->sport;
  return 0;
}

uint16_t Packet::dport() const {
  if (tcp_) return tcp_->dport;
  if (udp_) return udp_->dport;
  return 0;
}

void Packet::set_sport(uint16_t p) {
  if (tcp_) tcp_->sport = p;
  else if (udp_) udp_->sport = p;
}

void Packet::set_dport(uint16_t p) {
  if (tcp_) tcp_->dport = p;
  else if (udp_) udp_->dport = p;
}

FiveTuple Packet::five_tuple() const {
  return FiveTuple{ip_.saddr, ip_.daddr, sport(), dport(), ip_.protocol};
}

size_t Packet::WireSize() const {
  size_t size = EthernetHeader::kSize + Ipv4Header::kSize + payload_.size();
  if (gallium_) size += gallium_->WireSize();
  if (tcp_) size += TcpHeader::kSize;
  if (udp_) size += UdpHeader::kSize;
  return size;
}

std::vector<uint8_t> Packet::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(WireSize());

  // Ethernet.
  out.insert(out.end(), eth_.dst.bytes.begin(), eth_.dst.bytes.end());
  out.insert(out.end(), eth_.src.bytes.begin(), eth_.src.bytes.end());
  PutU16(out, gallium_ ? kEtherTypeGallium : kEtherTypeIpv4);

  // Gallium transfer header: u16 var count, u16 reserved, u32 cond bits,
  // then the 32-bit variable slots.
  if (gallium_) {
    PutU16(out, static_cast<uint16_t>(gallium_->vars.size()));
    PutU16(out, 0);
    PutU32(out, gallium_->cond_bits);
    for (uint32_t v : gallium_->vars) PutU32(out, v);
  }

  // IPv4 (no options). Lengths and checksum are computed here.
  const size_t l4_size = (tcp_ ? TcpHeader::kSize : 0) +
                         (udp_ ? UdpHeader::kSize : 0) + payload_.size();
  const uint16_t total_len =
      static_cast<uint16_t>(Ipv4Header::kSize + l4_size);
  const size_t ip_start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0);     // DSCP/ECN
  PutU16(out, total_len);
  PutU16(out, 0);  // identification
  PutU16(out, 0x4000);  // DF, no fragmentation
  out.push_back(ip_.ttl);
  out.push_back(ip_.protocol);
  PutU16(out, 0);  // checksum placeholder
  PutU32(out, ip_.saddr);
  PutU32(out, ip_.daddr);
  const uint16_t csum = InternetChecksum(
      std::span(out).subspan(ip_start, Ipv4Header::kSize));
  out[ip_start + 10] = static_cast<uint8_t>(csum >> 8);
  out[ip_start + 11] = static_cast<uint8_t>(csum & 0xff);

  if (tcp_) {
    PutU16(out, tcp_->sport);
    PutU16(out, tcp_->dport);
    PutU32(out, tcp_->seq);
    PutU32(out, tcp_->ack);
    out.push_back(0x50);  // data offset 5
    out.push_back(tcp_->flags);
    PutU16(out, tcp_->window);
    PutU16(out, 0);  // checksum omitted (link-local simulation)
    PutU16(out, 0);  // urgent pointer
  } else if (udp_) {
    PutU16(out, udp_->sport);
    PutU16(out, udp_->dport);
    PutU16(out, static_cast<uint16_t>(UdpHeader::kSize + payload_.size()));
    PutU16(out, 0);  // checksum omitted
  }

  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

Result<Packet> Packet::Parse(std::span<const uint8_t> bytes) {
  Packet pkt;
  size_t off = 0;
  if (bytes.size() < EthernetHeader::kSize) {
    return InvalidArgument("packet shorter than Ethernet header");
  }
  std::copy_n(bytes.begin(), 6, pkt.eth_.dst.bytes.begin());
  std::copy_n(bytes.begin() + 6, 6, pkt.eth_.src.bytes.begin());
  pkt.eth_.ether_type = GetU16(bytes, 12);
  off = EthernetHeader::kSize;

  if (pkt.eth_.ether_type == kEtherTypeGallium) {
    if (bytes.size() < off + 8) {
      return InvalidArgument("truncated Gallium header");
    }
    GalliumHeader gh;
    const uint16_t var_count = GetU16(bytes, off);
    gh.cond_bits = GetU32(bytes, off + 4);
    off += 8;
    if (bytes.size() < off + 4ul * var_count) {
      return InvalidArgument("truncated Gallium variable block");
    }
    for (uint16_t i = 0; i < var_count; ++i) {
      gh.vars.push_back(GetU32(bytes, off));
      off += 4;
    }
    pkt.gallium_ = std::move(gh);
  } else if (pkt.eth_.ether_type != kEtherTypeIpv4) {
    return Unsupported("unknown EtherType");
  }

  if (bytes.size() < off + Ipv4Header::kSize || bytes[off] != 0x45) {
    return InvalidArgument("bad IPv4 header");
  }
  const size_t ip_start = off;
  pkt.ip_.total_length = GetU16(bytes, off + 2);
  pkt.ip_.ttl = bytes[off + 8];
  pkt.ip_.protocol = bytes[off + 9];
  pkt.ip_.checksum = GetU16(bytes, off + 10);
  pkt.ip_.saddr = GetU32(bytes, off + 12);
  pkt.ip_.daddr = GetU32(bytes, off + 16);
  off += Ipv4Header::kSize;

  size_t l4_end = ip_start + pkt.ip_.total_length;
  if (l4_end > bytes.size()) return InvalidArgument("IPv4 length overruns");

  if (pkt.ip_.protocol == kIpProtoTcp) {
    if (off + TcpHeader::kSize > l4_end) {
      return InvalidArgument("truncated TCP header");
    }
    TcpHeader tcp;
    tcp.sport = GetU16(bytes, off);
    tcp.dport = GetU16(bytes, off + 2);
    tcp.seq = GetU32(bytes, off + 4);
    tcp.ack = GetU32(bytes, off + 8);
    tcp.flags = bytes[off + 13];
    tcp.window = GetU16(bytes, off + 14);
    pkt.tcp_ = tcp;
    off += TcpHeader::kSize;
  } else if (pkt.ip_.protocol == kIpProtoUdp) {
    if (off + UdpHeader::kSize > l4_end) {
      return InvalidArgument("truncated UDP header");
    }
    UdpHeader udp;
    udp.sport = GetU16(bytes, off);
    udp.dport = GetU16(bytes, off + 2);
    udp.length = GetU16(bytes, off + 4);
    pkt.udp_ = udp;
    off += UdpHeader::kSize;
  }

  pkt.payload_.assign(bytes.begin() + off, bytes.begin() + l4_end);
  return pkt;
}

std::string Packet::ToString() const {
  std::string out = five_tuple().ToString();
  if (tcp_) {
    out += " flags=";
    if (tcp_->flags & kTcpSyn) out += "S";
    if (tcp_->flags & kTcpAck) out += "A";
    if (tcp_->flags & kTcpFin) out += "F";
    if (tcp_->flags & kTcpRst) out += "R";
    if (tcp_->flags & kTcpPsh) out += "P";
  }
  out += " len=" + std::to_string(WireSize());
  if (gallium_) out += " +gallium(" + std::to_string(gallium_->WireSize()) + "B)";
  return out;
}

Packet MakeTcpPacket(const FiveTuple& flow, uint8_t tcp_flags,
                     size_t payload_bytes, uint32_t seq) {
  Packet pkt;
  pkt.ip().saddr = flow.saddr;
  pkt.ip().daddr = flow.daddr;
  TcpHeader tcp;
  tcp.sport = flow.sport;
  tcp.dport = flow.dport;
  tcp.flags = tcp_flags;
  tcp.seq = seq;
  pkt.set_tcp(tcp);
  pkt.payload().assign(payload_bytes, 0xab);
  return pkt;
}

Packet MakeUdpPacket(const FiveTuple& flow, size_t payload_bytes) {
  Packet pkt;
  pkt.ip().saddr = flow.saddr;
  pkt.ip().daddr = flow.daddr;
  UdpHeader udp;
  udp.sport = flow.sport;
  udp.dport = flow.dport;
  pkt.set_udp(udp);
  pkt.payload().assign(payload_bytes, 0xcd);
  return pkt;
}

}  // namespace gallium::net
