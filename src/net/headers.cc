#include "net/headers.h"

#include <cstdio>

namespace gallium::net {

MacAddr MacAddr::FromUint64(uint64_t v) {
  MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m.bytes[i] = static_cast<uint8_t>(v & 0xff);
    v >>= 8;
  }
  return m;
}

uint64_t MacAddr::ToUint64() const {
  uint64_t v = 0;
  for (uint8_t b : bytes) v = (v << 8) | b;
  return v;
}

std::string MacAddr::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

Ipv4Addr MakeIpv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | d;
}

std::string Ipv4ToString(Ipv4Addr addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

uint64_t FiveTuple::Hash() const {
  // 64-bit FNV-1a over the packed tuple; deterministic across platforms.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(saddr, 4);
  mix(daddr, 4);
  mix(sport, 2);
  mix(dport, 2);
  mix(protocol, 1);
  return h;
}

std::string FiveTuple::ToString() const {
  std::string out = Ipv4ToString(saddr);
  out += ":" + std::to_string(sport) + " -> " + Ipv4ToString(daddr) + ":" +
         std::to_string(dport);
  out += (protocol == kIpProtoTcp ? " tcp" : protocol == kIpProtoUdp ? " udp"
                                                                     : " ?");
  return out;
}

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

uint16_t GetU16(std::span<const uint8_t> in, size_t offset) {
  return static_cast<uint16_t>((in[offset] << 8) | in[offset + 1]);
}

uint32_t GetU32(std::span<const uint8_t> in, size_t offset) {
  return (static_cast<uint32_t>(in[offset]) << 24) |
         (static_cast<uint32_t>(in[offset + 1]) << 16) |
         (static_cast<uint32_t>(in[offset + 2]) << 8) |
         static_cast<uint32_t>(in[offset + 3]);
}

uint16_t InternetChecksum(std::span<const uint8_t> data) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<uint16_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<uint16_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

}  // namespace gallium::net
