// Packet representation used throughout the simulator and runtimes.
//
// A Packet keeps its headers in parsed (host-order struct) form plus an
// opaque payload; Serialize()/Parse() produce and consume the exact wire
// format, including the synthesized Gallium transfer header when present
// (inserted between Ethernet and IPv4, paper §4.3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/headers.h"
#include "util/status.h"

namespace gallium::net {

class Packet {
 public:
  Packet() = default;

  // --- Header access ---------------------------------------------------------
  EthernetHeader& eth() { return eth_; }
  const EthernetHeader& eth() const { return eth_; }

  Ipv4Header& ip() { return ip_; }
  const Ipv4Header& ip() const { return ip_; }

  bool has_tcp() const { return tcp_.has_value(); }
  TcpHeader& tcp() { return *tcp_; }
  const TcpHeader& tcp() const { return *tcp_; }
  void set_tcp(TcpHeader h) { tcp_ = h; udp_.reset(); ip_.protocol = kIpProtoTcp; }

  bool has_udp() const { return udp_.has_value(); }
  UdpHeader& udp() { return *udp_; }
  const UdpHeader& udp() const { return *udp_; }
  void set_udp(UdpHeader h) { udp_ = h; tcp_.reset(); ip_.protocol = kIpProtoUdp; }

  bool has_gallium() const { return gallium_.has_value(); }
  GalliumHeader& mutable_gallium();
  const GalliumHeader& gallium() const { return *gallium_; }
  void set_gallium(GalliumHeader h);
  void clear_gallium();

  std::vector<uint8_t>& payload() { return payload_; }
  const std::vector<uint8_t>& payload() const { return payload_; }

  // Transport ports (0 when neither TCP nor UDP is present).
  uint16_t sport() const;
  uint16_t dport() const;
  void set_sport(uint16_t p);
  void set_dport(uint16_t p);

  FiveTuple five_tuple() const;

  // --- Metadata (never serialized) -------------------------------------------
  uint64_t id() const { return id_; }
  void set_id(uint64_t id) { id_ = id; }
  uint32_t ingress_port() const { return ingress_port_; }
  void set_ingress_port(uint32_t port) { ingress_port_ = port; }

  // --- Wire format ------------------------------------------------------------
  // Total on-the-wire size in bytes (headers + payload), as Serialize emits.
  size_t WireSize() const;
  std::vector<uint8_t> Serialize() const;
  static Result<Packet> Parse(std::span<const uint8_t> bytes);

  std::string ToString() const;

  bool SameFlowAs(const Packet& other) const {
    return five_tuple() == other.five_tuple();
  }

 private:
  EthernetHeader eth_;
  std::optional<GalliumHeader> gallium_;
  Ipv4Header ip_;
  std::optional<TcpHeader> tcp_;
  std::optional<UdpHeader> udp_;
  std::vector<uint8_t> payload_;

  uint64_t id_ = 0;
  uint32_t ingress_port_ = 0;
};

// Convenience builders used by tests and workload generators.
Packet MakeTcpPacket(const FiveTuple& flow, uint8_t tcp_flags,
                     size_t payload_bytes, uint32_t seq = 0);
Packet MakeUdpPacket(const FiveTuple& flow, size_t payload_bytes);

}  // namespace gallium::net
