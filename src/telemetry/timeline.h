// Pipeline timelines: a thread-safe recorder of Chrome trace-event JSON.
//
// Where the Tracer captures the per-packet view, the Timeline captures the
// simulation / harness view — discrete-event firings, profiling phases,
// compile phases — as named slices and instants on a virtual-time axis.
// The output loads in Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace gallium::telemetry {

class Timeline {
 public:
  // A slice [ts_us, ts_us + dur_us) on lane `tid`.
  void CompleteEvent(const std::string& name, const std::string& category,
                     double ts_us, double dur_us, int tid = 0);
  // A zero-duration marker at ts_us.
  void InstantEvent(const std::string& name, const std::string& category,
                    double ts_us, int tid = 0);
  // A sampled counter track (rendered as a graph in Perfetto).
  void CounterSample(const std::string& name, double ts_us, double value);

  size_t size() const;

  // {"traceEvents":[...]} — Chrome trace-event JSON.
  std::string ToChromeJson() const;

 private:
  struct Event {
    char phase;  // 'X' complete, 'i' instant, 'C' counter
    std::string name;
    std::string category;
    double ts_us;
    double dur_us;
    double value;
    int tid;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace gallium::telemetry
