// Process-wide metrics registry.
//
// One instrument vocabulary for the whole stack — compiler, switch model,
// runtime, simulation, benches — replacing the ad-hoc stat structs each of
// them grew independently. Three metric kinds:
//
//   Counter    monotonic uint64, relaxed-atomic increments (hot-path safe)
//   Gauge      last-written double (set/add)
//   Histogram  fixed upper-bound buckets with atomic counts; p50/p90/p99
//              read out by linear interpolation inside the bucket
//
// Metrics are identified by (name, label set) and registered on first use;
// handles returned by the registry are stable for the registry's lifetime,
// so hot paths hold raw pointers and never touch the registration mutex.
// Exporters render the whole registry as Prometheus text exposition or as
// JSON (the machine-readable form CI validates against a schema).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gallium::telemetry {

// Label sets are small (1-3 entries); a sorted vector keeps the identity
// canonical without dragging in a map per metric.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// Minimal JSON string escaping shared by every telemetry exporter.
std::string JsonEscape(const std::string& s);

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Fixed-bucket histogram. `bounds` are inclusive upper bounds in ascending
// order; one implicit overflow bucket catches everything above the last
// bound. Observations are two relaxed atomic adds (bucket + running sum),
// so the instrument is safe under concurrent writers.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  // Quantile estimate (q in [0,1]): find the bucket holding the q-th
  // observation, interpolate linearly between its bounds. Values in the
  // overflow bucket report the last finite bound (the estimate saturates).
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

// 1-2-5 series from 1 µs to 1 s: the default resolution for every latency
// instrument in the repo (sync commits, resyncs, end-to-end stamps).
std::vector<double> DefaultLatencyBucketsUs();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. Asserts (and returns the existing instrument) if the
  // same (name, labels) identity was registered with a different kind.
  Counter* GetCounter(const std::string& name, LabelSet labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, LabelSet labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, LabelSet labels = {},
                          std::vector<double> bounds = DefaultLatencyBucketsUs(),
                          const std::string& help = "");

  // Prometheus text exposition format (HELP/TYPE headers, _bucket/_sum/
  // _count expansion for histograms).
  std::string ToPrometheusText() const;
  // {"metrics":[{name,type,labels,value|buckets+quantiles},...]}
  std::string ToJson() const;

  size_t size() const;

  // The process-wide default instance (tools that want one shared scrape
  // target). Libraries take a registry pointer instead of assuming this.
  static MetricsRegistry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    std::string name;
    LabelSet labels;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric* FindOrCreate(const std::string& name, LabelSet labels,
                       const std::string& help, Kind kind,
                       std::vector<double> bounds);

  mutable std::mutex mu_;
  // Registration order preserved for deterministic export.
  std::vector<std::unique_ptr<Metric>> metrics_;
  std::map<std::string, size_t> index_;  // canonical key -> metrics_ index
};

}  // namespace gallium::telemetry
