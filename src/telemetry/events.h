// Flight-recorder event taxonomy.
//
// Every event is a fixed-size binary record: an EventId, a steady-clock
// timestamp, the lane it was recorded on, and up to three u64 arguments
// whose meaning is fixed per id (EventArgName). The taxonomy deliberately
// covers *transitions* — edges the cumulative counters in metrics.h cannot
// reconstruct after the fact: which came first, how deep the backlog was
// when shedding started, how long a resize drain actually took. Steady
// per-packet activity (bursts, lookups, hits) is intentionally absent;
// those belong in counters and histograms, not the ring.
//
// Ids are append-only: dumps are versioned (FlightRecorder::kDumpVersion)
// and external consumers key on the string name, so renumbering an id is a
// breaking change. Add new ids before kNumEventIds only.
#pragma once

#include <cstdint>

namespace gallium::telemetry {

enum class EventId : uint16_t {
  // Watchdog / health (src/runtime/health.cc).
  kWatchdogModeChange = 0,  // a0=from Mode, a1=to Mode, a2=transitions
  kProbeMiss = 1,           // a0=consecutive_misses, a1=ewma_us

  // Sync queue / control plane (src/runtime/offloaded_middlebox.cc).
  kShedEpisodeBegin = 2,   // a0=backlog depth at first shed
  kShedEpisodeEnd = 3,     // a0=packets shed in the episode
  kSyncBackpressure = 4,   // a0=backlog depth forcing the inline drain
  kSyncBacklogPump = 5,    // a0=mutations drained, a1=latency_us, a2=depth
  kSyncRetry = 6,          // a0=attempt, a1=seq
  kSyncBatchDrop = 7,      // a0=seq
  kSyncAckDrop = 8,        // a0=seq
  kSyncFailure = 9,        // a0=seq, a1=attempts
  kSwitchRestart = 10,     // a0=new epoch
  kResyncBegin = 11,       // a0=backlog mutations cleared
  kResyncEnd = 12,         // a0=latency_us, a1=entries replayed
  kDegradedEnter = 13,     // a0=packets processed so far
  kDegradedExit = 14,      // a0=packets handled while degraded

  // Fault-injector window edges (src/runtime/fault.h).
  kGreyWindowBegin = 15,  // a0=packet index
  kGreyWindowEnd = 16,    // a0=packet index
  kOutageBegin = 17,      // a0=packet index
  kOutageEnd = 18,        // a0=packet index

  // Flow tables (src/state/flow_table.cc).
  kFlowTableResizeBegin = 19,      // a0=old buckets, a1=new buckets, a2=size
  kFlowTableResizeEnd = 20,        // a0=migrated buckets, a1=stash size
  kFlowTableStashSpill = 21,       // a0=stash size, a1=kick-chain bound
  kFlowTableForcedMigration = 22,  // a0=buckets migrated in the burst
  kFlowTableSweep = 23,            // a0=slots visited, a1=entries expired

  // Engine (src/engine/engine.cc).
  kEngineRingHighWater = 24,  // a0=worker, a1=occupancy, a2=capacity

  kNumEventIds
};

// Stable string name for dumps ("watchdog.mode_change" etc.).
const char* EventName(EventId id);

// Name of argument slot `arg` (0..2) for `id`; nullptr when the slot is
// unused. Dump writers only serialize named slots.
const char* EventArgName(EventId id, int arg);

}  // namespace gallium::telemetry
