#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace gallium::telemetry {

namespace {

// Canonical identity of a metric: name plus labels in sorted order.
std::string CanonicalKey(const std::string& name, const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

// Prometheus text-exposition label values escape backslash, double quote,
// and newline (and nothing else) — the spec's exact set.
std::string PromEscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 8);
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ",";
    first = false;
    out << k << "=\"" << PromEscapeLabelValue(v) << "\"";
  }
  out << "}";
  return out.str();
}

// Prometheus renders +Inf for the overflow bucket; JSON cannot, so the JSON
// exporter spells it "+Inf" as a string bound.
std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, ceil — the classic nearest-rank
  // definition, so q=0.5 of 4 observations is the 2nd).
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) return bounds_.back();  // overflow: saturate
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    if (in_bucket == 0) return hi;
    const double frac =
        static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return bounds_.back();
}

std::vector<double> DefaultLatencyBucketsUs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  bounds.push_back(1e6);
  return bounds;
}

MetricsRegistry::Metric* MetricsRegistry::FindOrCreate(
    const std::string& name, LabelSet labels, const std::string& help,
    Kind kind, std::vector<double> bounds) {
  std::sort(labels.begin(), labels.end());
  const std::string key = CanonicalKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Metric* existing = metrics_[it->second].get();
    assert(existing->kind == kind && "metric re-registered as another kind");
    return existing;
  }
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->labels = std::move(labels);
  metric->help = help;
  metric->kind = kind;
  switch (kind) {
    case Kind::kCounter: metric->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: metric->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      metric->histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  index_[key] = metrics_.size();
  metrics_.push_back(std::move(metric));
  return metrics_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name, LabelSet labels,
                                     const std::string& help) {
  return FindOrCreate(name, std::move(labels), help, Kind::kCounter, {})
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, LabelSet labels,
                                 const std::string& help) {
  return FindOrCreate(name, std::move(labels), help, Kind::kGauge, {})
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         LabelSet labels,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  return FindOrCreate(name, std::move(labels), help, Kind::kHistogram,
                      std::move(bounds))
      ->histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  std::string last_header;
  for (const auto& m : metrics_) {
    if (m->name != last_header) {
      last_header = m->name;
      if (!m->help.empty()) out << "# HELP " << m->name << " " << m->help << "\n";
      out << "# TYPE " << m->name << " "
          << (m->kind == Kind::kCounter
                  ? "counter"
                  : m->kind == Kind::kGauge ? "gauge" : "histogram")
          << "\n";
    }
    const std::string labels = RenderLabels(m->labels);
    switch (m->kind) {
      case Kind::kCounter:
        out << m->name << labels << " " << m->counter->Value() << "\n";
        break;
      case Kind::kGauge:
        out << m->name << labels << " " << FormatDouble(m->gauge->Value())
            << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *m->histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          LabelSet le = m->labels;
          le.push_back({"le", FormatDouble(h.bounds()[i])});
          out << m->name << "_bucket" << RenderLabels(le) << " " << cumulative
              << "\n";
        }
        LabelSet le = m->labels;
        le.push_back({"le", "+Inf"});
        out << m->name << "_bucket" << RenderLabels(le) << " " << h.Count()
            << "\n";
        out << m->name << "_sum" << labels << " " << FormatDouble(h.Sum())
            << "\n";
        out << m->name << "_count" << labels << " " << h.Count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const auto& m : metrics_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(m->name) << "\",\"type\":\""
        << (m->kind == Kind::kCounter
                ? "counter"
                : m->kind == Kind::kGauge ? "gauge" : "histogram")
        << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m->labels) {
      if (!first_label) out << ",";
      first_label = false;
      out << "\"" << JsonEscape(k) << "\":\"" << JsonEscape(v) << "\"";
    }
    out << "}";
    switch (m->kind) {
      case Kind::kCounter:
        out << ",\"value\":" << m->counter->Value();
        break;
      case Kind::kGauge:
        out << ",\"value\":" << FormatDouble(m->gauge->Value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *m->histogram;
        out << ",\"count\":" << h.Count() << ",\"sum\":"
            << FormatDouble(h.Sum()) << ",\"buckets\":[";
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          if (i > 0) out << ",";
          out << "{\"le\":";
          if (i < h.bounds().size()) {
            out << FormatDouble(h.bounds()[i]);
          } else {
            out << "\"+Inf\"";
          }
          out << ",\"count\":" << h.BucketCount(i) << "}";
        }
        out << "],\"quantiles\":{\"p50\":" << FormatDouble(h.Quantile(0.50))
            << ",\"p90\":" << FormatDouble(h.Quantile(0.90))
            << ",\"p99\":" << FormatDouble(h.Quantile(0.99)) << "}";
        break;
      }
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace gallium::telemetry
