#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "telemetry/metrics.h"

namespace gallium::telemetry {
namespace {

struct EventInfo {
  const char* name;
  const char* a0;
  const char* a1;
  const char* a2;
};

// Indexed by EventId. Names are the stable external contract (dumps,
// schema, Perfetto); keep them in sync with events.h comments.
constexpr EventInfo kEventInfo[] = {
    {"watchdog.mode_change", "from", "to", "transitions"},
    {"watchdog.probe_miss", "consecutive_misses", "ewma_us", nullptr},
    {"sync.shed_episode_begin", "backlog_depth", nullptr, nullptr},
    {"sync.shed_episode_end", "packets_shed", nullptr, nullptr},
    {"sync.backpressure", "backlog_depth", nullptr, nullptr},
    {"sync.backlog_pump", "mutations", "latency_us", "depth"},
    {"sync.retry", "attempt", "seq", nullptr},
    {"sync.batch_drop", "seq", nullptr, nullptr},
    {"sync.ack_drop", "seq", nullptr, nullptr},
    {"sync.failure", "seq", "attempts", nullptr},
    {"switch.restart", "epoch", nullptr, nullptr},
    {"resync.begin", "backlog_cleared", nullptr, nullptr},
    {"resync.end", "latency_us", "entries", nullptr},
    {"degraded.enter", "packets_total", nullptr, nullptr},
    {"degraded.exit", "packets_degraded", nullptr, nullptr},
    {"fault.grey_window_begin", "packet_index", nullptr, nullptr},
    {"fault.grey_window_end", "packet_index", nullptr, nullptr},
    {"fault.outage_begin", "packet_index", nullptr, nullptr},
    {"fault.outage_end", "packet_index", nullptr, nullptr},
    {"flow_table.resize_begin", "old_buckets", "new_buckets", "size"},
    {"flow_table.resize_end", "migrated_buckets", "stash_size", nullptr},
    {"flow_table.stash_spill", "stash_size", "kick_chain_bound", nullptr},
    {"flow_table.forced_migration", "buckets", nullptr, nullptr},
    {"flow_table.sweep", "slots_visited", "expired", nullptr},
    {"engine.ring_high_water", "worker", "occupancy", "capacity"},
};
static_assert(sizeof(kEventInfo) / sizeof(kEventInfo[0]) ==
                  static_cast<size_t>(EventId::kNumEventIds),
              "kEventInfo out of sync with EventId");

const EventInfo& Info(EventId id) {
  const auto idx = static_cast<size_t>(id);
  if (idx >= static_cast<size_t>(EventId::kNumEventIds)) {
    static constexpr EventInfo kUnknown = {"unknown", "a0", "a1", "a2"};
    return kUnknown;
  }
  return kEventInfo[idx];
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void AppendArgsJson(std::ostringstream& out, const FlightEvent& e) {
  const EventInfo& info = Info(static_cast<EventId>(e.id));
  const char* names[3] = {info.a0, info.a1, info.a2};
  out << "{";
  bool first = true;
  for (int i = 0; i < 3; ++i) {
    if (names[i] == nullptr) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << names[i] << "\":" << e.args[i];
  }
  out << "}";
}

}  // namespace

const char* EventName(EventId id) { return Info(id).name; }

const char* EventArgName(EventId id, int arg) {
  const EventInfo& info = Info(id);
  switch (arg) {
    case 0:
      return info.a0;
    case 1:
      return info.a1;
    case 2:
      return info.a2;
    default:
      return nullptr;
  }
}

FlightRecorder::FlightRecorder(uint16_t lanes, uint32_t capacity_per_lane)
    : num_lanes_(lanes == 0 ? 1 : lanes),
      capacity_(RoundUpPow2(capacity_per_lane == 0 ? 1 : capacity_per_lane)),
      mask_(capacity_ - 1),
      lanes_(new Lane[num_lanes_]) {
  for (uint16_t l = 0; l < num_lanes_; ++l) {
    lanes_[l].slots.reset(new FlightEvent[capacity_]);
  }
}

FlightRecorder& FlightRecorder::Default() {
  // Leaked on purpose, like MetricsRegistry::Default(): destruction order
  // against worker threads at exit is unknowable.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Record(uint16_t lane, EventId id, uint64_t a0,
                            uint64_t a1, uint64_t a2) noexcept {
  Lane& l = lanes_[lane < num_lanes_ ? lane : 0];
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t pos = l.head.fetch_add(1, std::memory_order_relaxed);
  FlightEvent& e = l.slots[pos & mask_];
  e.seq = seq;
  e.ts_ns = SteadyNowNs();
  e.id = static_cast<uint16_t>(id);
  e.lane = lane < num_lanes_ ? lane : 0;
  e.args[0] = a0;
  e.args[1] = a1;
  e.args[2] = a2;
}

uint64_t FlightRecorder::events_recorded() const {
  return next_seq_.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::events_dropped() const {
  uint64_t dropped = 0;
  for (uint16_t l = 0; l < num_lanes_; ++l) {
    const uint64_t head = lanes_[l].head.load(std::memory_order_relaxed);
    if (head > capacity_) dropped += head - capacity_;
  }
  return dropped;
}

uint32_t FlightRecorder::LaneOccupancy(uint16_t lane) const {
  if (lane >= num_lanes_) return 0;
  const uint64_t head = lanes_[lane].head.load(std::memory_order_relaxed);
  return static_cast<uint32_t>(std::min<uint64_t>(head, capacity_));
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  for (uint16_t l = 0; l < num_lanes_; ++l) {
    const uint64_t head = lanes_[l].head.load(std::memory_order_acquire);
    const uint64_t resident = std::min<uint64_t>(head, capacity_);
    for (uint64_t pos = head - resident; pos < head; ++pos) {
      events.push_back(lanes_[l].slots[pos & mask_]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::ostringstream out;
  out << "{\"flight_recorder\":{";
  out << "\"version\":" << kDumpVersion;
  out << ",\"lanes\":" << num_lanes_;
  out << ",\"capacity_per_lane\":" << capacity_;
  out << ",\"events_recorded\":" << events_recorded();
  out << ",\"events_dropped\":" << events_dropped();
  out << ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i != 0) out << ",";
    out << "{\"seq\":" << e.seq;
    out << ",\"ts_ns\":" << e.ts_ns;
    out << ",\"lane\":" << e.lane;
    out << ",\"id\":" << e.id;
    out << ",\"name\":\"" << EventName(static_cast<EventId>(e.id)) << "\"";
    out << ",\"args\":";
    AppendArgsJson(out, e);
    out << "}";
  }
  out << "]}}";
  return out.str();
}

std::string FlightRecorder::ToChromeJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  uint64_t base_ns = events.empty() ? 0 : events.front().ts_ns;
  for (const FlightEvent& e : events) base_ns = std::min(base_ns, e.ts_ns);

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"gallium flight recorder\"}}";
  for (uint16_t l = 0; l < num_lanes_; ++l) {
    if (LaneOccupancy(l) == 0) continue;
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << l
        << ",\"args\":{\"name\":\"";
    if (l == 0) {
      out << "lane 0 (control)";
    } else {
      out << "worker " << (l - 1);
    }
    out << "\"}}";
  }
  char ts_buf[32];
  for (const FlightEvent& e : events) {
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                  static_cast<double>(e.ts_ns - base_ns) / 1000.0);
    out << ",{\"name\":\"" << EventName(static_cast<EventId>(e.id))
        << "\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
           "\"tid\":"
        << e.lane << ",\"ts\":" << ts_buf << ",\"args\":";
    AppendArgsJson(out, e);
    out << "}";
  }
  out << "]}";
  return out.str();
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  const auto write = [](const std::string& file, const std::string& body) {
    std::FILE* f = std::fopen(file.c_str(), "w");
    if (f == nullptr) return false;
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok && n != body.size()) std::fclose(f);
    return ok;
  };
  return write(path, ToJson()) && write(path + ".trace.json", ToChromeJson());
}

void FlightRecorder::PublishMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("gallium_flight_events_recorded", {})
      ->Set(static_cast<double>(events_recorded()));
  registry->GetGauge("gallium_flight_events_dropped", {})
      ->Set(static_cast<double>(events_dropped()));
  for (uint16_t l = 0; l < num_lanes_; ++l) {
    const uint32_t occ = LaneOccupancy(l);
    if (occ == 0) continue;
    registry
        ->GetGauge("gallium_flight_ring_occupancy",
                   {{"lane", std::to_string(l)}})
        ->Set(static_cast<double>(occ));
  }
}

void FlightRecorder::Clear() {
  for (uint16_t l = 0; l < num_lanes_; ++l) {
    lanes_[l].head.store(0, std::memory_order_relaxed);
  }
  next_seq_.store(0, std::memory_order_relaxed);
}

}  // namespace gallium::telemetry
