// Always-on black-box flight recorder.
//
// A fixed set of lanes (one per worker plus lane 0 for control-plane /
// engine-level events), each a fixed-capacity power-of-two ring of POD
// FlightEvent records. Record() is the only hot-path entry point: one
// relaxed fetch_add on a global sequence counter, one relaxed fetch_add on
// the lane cursor, a steady-clock read, and six word stores into a
// preallocated slot — no locks, no allocation, ever. Old events are
// overwritten when a lane wraps (the dropped count is tracked), so the
// recorder holds the *most recent* history of each lane: exactly what a
// postmortem wants.
//
// Writers are single-threaded per lane by convention (worker w records on
// lane w+1; the dispatcher and control plane record on lane 0), matching
// the engine's SPSC discipline. Dumps taken while writers are still
// running may observe a torn in-flight slot at the ring head; dumps taken
// at quiescence — the postmortem hook, --flight-dump after a run, the
// chaos-failure listener — are exact.
//
// Dump formats (both versioned via kDumpVersion):
//   ToJson()       — {"flight_recorder": {...,"events":[...]}} validated by
//                    scripts/schema/flight_dump.schema.json.
//   ToChromeJson() — Chrome trace-event instants, one timeline thread per
//                    lane, loadable in Perfetto next to the PR 4 packet
//                    traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/events.h"

namespace gallium::telemetry {

class MetricsRegistry;

struct FlightEvent {
  uint64_t seq = 0;    // global record order across all lanes
  uint64_t ts_ns = 0;  // steady-clock nanoseconds
  uint16_t id = 0;     // EventId
  uint16_t lane = 0;
  uint32_t reserved = 0;
  uint64_t args[3] = {0, 0, 0};
};

class FlightRecorder {
 public:
  static constexpr uint32_t kDumpVersion = 1;
  // Lane 0 + 16 worker lanes covers every configuration the engine
  // accepts; Record() clamps out-of-range lanes to 0 rather than dropping.
  static constexpr uint16_t kDefaultLanes = 17;
  static constexpr uint32_t kDefaultCapacityPerLane = 2048;

  explicit FlightRecorder(uint16_t lanes = kDefaultLanes,
                          uint32_t capacity_per_lane = kDefaultCapacityPerLane);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // The process-wide always-on instance. Subsystems that are not handed an
  // explicit recorder fall back to this one, so every run — tests, benches,
  // galliumc — has a black box by default.
  static FlightRecorder& Default();

  // Hot path. Zero allocation; safe from any thread (lanes are
  // single-writer by convention, see header comment).
  void Record(uint16_t lane, EventId id, uint64_t a0 = 0, uint64_t a1 = 0,
              uint64_t a2 = 0) noexcept;

  uint16_t lanes() const { return num_lanes_; }
  uint32_t capacity_per_lane() const { return capacity_; }
  uint64_t events_recorded() const;
  // Events overwritten by ring wrap (recorded minus still resident).
  uint64_t events_dropped() const;
  // Events currently resident on one lane (≤ capacity_per_lane).
  uint32_t LaneOccupancy(uint16_t lane) const;

  // All resident events merged across lanes, ordered by global seq.
  std::vector<FlightEvent> Snapshot() const;

  // Versioned structured dump (see header comment for schema).
  std::string ToJson() const;
  // Chrome trace-event rendering: one named thread per lane, instant
  // events carrying the decoded args.
  std::string ToChromeJson() const;

  // Writes ToJson() to `path` and ToChromeJson() to `path` with a
  // ".trace.json" suffix appended (postmortem convention: the pair travels
  // together). Returns false if either file cannot be written.
  bool DumpToFile(const std::string& path) const;

  // Registers/refreshes recorder self-metrics on `registry`:
  // gallium_flight_events_recorded / _dropped gauges and the per-lane
  // gallium_flight_ring_occupancy gauge.
  void PublishMetrics(MetricsRegistry* registry) const;

  // Drops all resident events and zeroes the counters. Test-only; not
  // thread-safe against concurrent Record().
  void Clear();

 private:
  struct Lane {
    std::atomic<uint64_t> head{0};  // free-running write cursor
    std::unique_ptr<FlightEvent[]> slots;
  };

  uint16_t num_lanes_;
  uint32_t capacity_;  // power of two
  uint32_t mask_;
  std::atomic<uint64_t> next_seq_{0};
  std::unique_ptr<Lane[]> lanes_;
};

}  // namespace gallium::telemetry
