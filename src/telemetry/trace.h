// Per-packet, INT-style tracing.
//
// A PacketTrace is the trace context a packet carries as it traverses the
// offloaded pipeline: one TraceHop per stage crossed (switch pre-pass, the
// switch->server sync channel, the server pass, the state-sync commit, the
// return wire, the switch post-pass), each recording the stage id, the op
// counts the interpreter executed there, the RMT stages the pass occupied,
// and a latency stamp (filled in from the cost model by perf::StampTrace).
// Fault-path happenings — retransmits, sync retries, degraded-mode
// fallbacks, resyncs — append TraceFaultEvents to the same context, so a
// single trace answers both "where did this packet spend its time?" and
// "what went wrong on the way".
//
// The Tracer collects completed traces into a bounded ring and exports
// them as Chrome trace-event JSON, directly loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing: one lane per pipeline location,
// one slice per hop, instant markers for fault events.
//
// telemetry is a leaf library: OpCounts mirrors runtime::ExecStats field
// for field so the runtime can convert without a dependency cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <iterator>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace gallium::telemetry {

// Mirror of runtime::ExecStats (which the interpreter fills); kept in the
// leaf library so traces and registry instruments can carry op counts
// without depending on the runtime.
struct OpCounts {
  int64_t insts = 0;
  int64_t alu_ops = 0;
  int64_t header_ops = 0;
  int64_t map_lookups = 0;
  int64_t map_updates = 0;
  int64_t vector_ops = 0;
  int64_t global_ops = 0;
  int64_t payload_ops = 0;
  int64_t branches = 0;

  OpCounts& operator+=(const OpCounts& other);
  int64_t Total() const;
  bool operator==(const OpCounts&) const = default;
};

// Field table driving the registry recorder and the exporters (one counter
// / JSON key per op kind, no hand-maintained switch statements).
struct OpCountField {
  const char* name;
  int64_t OpCounts::* field;
};
inline constexpr OpCountField kOpCountFields[] = {
    {"insts", &OpCounts::insts},
    {"alu", &OpCounts::alu_ops},
    {"header", &OpCounts::header_ops},
    {"map_lookup", &OpCounts::map_lookups},
    {"map_update", &OpCounts::map_updates},
    {"vector", &OpCounts::vector_ops},
    {"global", &OpCounts::global_ops},
    {"payload", &OpCounts::payload_ops},
    {"branch", &OpCounts::branches},
};

// Both run on the per-packet hot path (once per pipeline pass) — keep them
// inline so an optimized build reduces them to straight-line adds.
inline OpCounts& OpCounts::operator+=(const OpCounts& other) {
  for (const auto& f : kOpCountFields) this->*(f.field) += other.*(f.field);
  return *this;
}

inline int64_t OpCounts::Total() const {
  int64_t total = 0;
  for (const auto& f : kOpCountFields) total += this->*(f.field);
  return total;
}

// Registry-backed accumulator for op counts: one counter per op kind under
// a common metric name, distinguished by a "kind" label. Add() is on the
// per-packet hot path, so it accumulates into a plain local OpCounts (one
// cache line, no atomics); Flush()/Totals() push the pending deltas onto
// the registry counters, which remain the durable scrape target. Add and
// Flush assume a single writer (the owning middlebox serializes Process);
// the registry counters themselves stay safe to scrape concurrently.
class OpCountsRecorder {
 public:
  OpCountsRecorder() = default;
  OpCountsRecorder(MetricsRegistry* registry, const std::string& metric_name,
                   LabelSet base_labels);

  bool bound() const { return counters_[0] != nullptr; }
  void Add(const OpCounts& counts) { pending_ += counts; }
  void Flush() const;
  OpCounts Totals() const;

 private:
  Counter* counters_[std::size(kOpCountFields)] = {};
  mutable OpCounts pending_;
};

// Canonical hop stage ids (free-form strings are allowed; these are what
// the offloaded runtime emits).
inline constexpr char kHopSwitchPre[] = "switch.pre";
inline constexpr char kHopWireToServer[] = "wire.to_server";
inline constexpr char kHopServer[] = "server";
inline constexpr char kHopSyncCommit[] = "sync.commit";
inline constexpr char kHopWireToSwitch[] = "wire.to_switch";
inline constexpr char kHopSwitchPost[] = "switch.post";
inline constexpr char kHopDegraded[] = "server.degraded";
inline constexpr char kHopServerFull[] = "server.cache_recovery";

struct TraceHop {
  std::string stage;        // one of the kHop* ids above
  OpCounts ops;             // interpreter op counts executed in this hop
  int transfer_bytes = 0;   // wire hops: Gallium header bytes carried
  int stages_occupied = 0;  // switch hops: RMT stages the pass crossed
  double ts_us = 0;         // offset from packet start (stamped)
  double duration_us = 0;   // cost-model duration (stamped; sync hops carry
                            // the modeled control-plane latency natively)
};

struct TraceFaultEvent {
  std::string kind;    // "retransmit" | "sync.retry" | "sync.batch_drop" |
                       // "sync.ack_drop" | "switch.restart" | "resync" |
                       // "degraded" | "cache_miss" | "sync.failure"
  std::string detail;
  double ts_us = 0;
};

struct PacketTrace {
  uint64_t packet_id = 0;
  std::string scope;  // middlebox name
  bool fast_path = false;
  bool degraded = false;
  bool cache_miss = false;
  bool ok = true;
  double start_us = 0;  // absolute packet start (assigned by the driver)
  double total_us = 0;  // stamped end-to-end duration
  std::vector<TraceHop> hops;
  std::vector<TraceFaultEvent> events;

  // "switch.pre -> wire.to_server -> server -> ..." — the reconstructed
  // path, used by golden tests and log lines.
  std::string PathString() const;
};

// Bounded collector of completed packet traces (ring buffer: oldest traces
// are dropped once `capacity` is exceeded, with a drop count kept).
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096) : capacity_(capacity) {}

  void Commit(PacketTrace trace);

  uint64_t committed() const;
  uint64_t dropped() const;
  std::vector<PacketTrace> Snapshot() const;

  // Chrome trace-event JSON of the current ring contents; see
  // TracesToChromeJson for the format.
  std::string ToChromeJson() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<PacketTrace> traces_;
  uint64_t committed_ = 0;
  uint64_t dropped_ = 0;
};

// Chrome trace-event JSON ({"traceEvents":[...]}): per-hop "X" complete
// events laid out on one thread lane per pipeline location (switch / wire /
// server / sync), instant events for faults. Loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Free function so drivers can stamp
// a Snapshot() (perf::StampTrace) before rendering it.
std::string TracesToChromeJson(const std::vector<PacketTrace>& traces);

}  // namespace gallium::telemetry
