#include "telemetry/trace.h"

#include <sstream>

namespace gallium::telemetry {

OpCountsRecorder::OpCountsRecorder(MetricsRegistry* registry,
                                   const std::string& metric_name,
                                   LabelSet base_labels) {
  for (size_t i = 0; i < std::size(kOpCountFields); ++i) {
    LabelSet labels = base_labels;
    labels.push_back({"kind", kOpCountFields[i].name});
    counters_[i] = registry->GetCounter(metric_name, std::move(labels),
                                        "interpreter ops executed, by kind");
  }
}

void OpCountsRecorder::Flush() const {
  if (!bound()) return;
  for (size_t i = 0; i < std::size(kOpCountFields); ++i) {
    const int64_t delta = pending_.*(kOpCountFields[i].field);
    if (delta > 0) counters_[i]->Increment(static_cast<uint64_t>(delta));
  }
  pending_ = OpCounts{};
}

OpCounts OpCountsRecorder::Totals() const {
  if (!bound()) return pending_;
  Flush();
  OpCounts totals;
  for (size_t i = 0; i < std::size(kOpCountFields); ++i) {
    totals.*(kOpCountFields[i].field) =
        static_cast<int64_t>(counters_[i]->Value());
  }
  return totals;
}

std::string PacketTrace::PathString() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& hop : hops) {
    if (!first) out << " -> ";
    first = false;
    out << hop.stage;
  }
  return out.str();
}

void Tracer::Commit(PacketTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ++committed_;
  traces_.push_back(std::move(trace));
  while (traces_.size() > capacity_) {
    traces_.pop_front();
    ++dropped_;
  }
}

uint64_t Tracer::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<PacketTrace> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {traces_.begin(), traces_.end()};
}

namespace {

// Lane assignment for the Perfetto view: one "thread" per pipeline
// location so the hops of every packet line up vertically.
int LaneOf(const std::string& stage) {
  if (stage.rfind("switch.", 0) == 0) return 1;
  if (stage.rfind("wire.", 0) == 0) return 2;
  if (stage.rfind("server", 0) == 0) return 3;
  if (stage.rfind("sync", 0) == 0) return 4;
  return 5;
}

void AppendHopArgs(std::ostringstream& out, const TraceHop& hop,
                   const PacketTrace& trace) {
  out << "\"args\":{\"packet_id\":" << trace.packet_id << ",\"ops_total\":"
      << hop.ops.Total();
  for (const auto& f : kOpCountFields) {
    const int64_t v = hop.ops.*(f.field);
    if (v != 0) out << ",\"ops_" << f.name << "\":" << v;
  }
  if (hop.transfer_bytes > 0) {
    out << ",\"transfer_bytes\":" << hop.transfer_bytes;
  }
  if (hop.stages_occupied > 0) {
    out << ",\"rmt_stages\":" << hop.stages_occupied;
  }
  out << "}";
}

}  // namespace

std::string Tracer::ToChromeJson() const { return TracesToChromeJson(Snapshot()); }

std::string TracesToChromeJson(const std::vector<PacketTrace>& traces) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  // Lane naming metadata so Perfetto shows locations, not bare tids.
  const std::pair<int, const char*> lanes[] = {{1, "switch pipeline"},
                                               {2, "wire"},
                                               {3, "middlebox server"},
                                               {4, "control plane (sync)"},
                                               {5, "other"}};
  for (const auto& [tid, name] : lanes) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << name << "\"}}";
  }
  for (const auto& trace : traces) {
    for (const auto& hop : trace.hops) {
      comma();
      out << "{\"name\":\"" << JsonEscape(hop.stage)
          << "\",\"cat\":\"packet\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << LaneOf(hop.stage) << ",\"ts\":" << trace.start_us + hop.ts_us
          << ",\"dur\":" << hop.duration_us << ",";
      AppendHopArgs(out, hop, trace);
      out << "}";
    }
    for (const auto& ev : trace.events) {
      comma();
      out << "{\"name\":\"" << JsonEscape(ev.kind)
          << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
          << "\"tid\":4,\"ts\":" << trace.start_us + ev.ts_us
          << ",\"args\":{\"packet_id\":" << trace.packet_id << ",\"detail\":\""
          << JsonEscape(ev.detail) << "\"}}";
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace gallium::telemetry
