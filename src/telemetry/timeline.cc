#include "telemetry/timeline.h"

#include <sstream>

#include "telemetry/metrics.h"

namespace gallium::telemetry {

void Timeline::CompleteEvent(const std::string& name,
                             const std::string& category, double ts_us,
                             double dur_us, int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'X', name, category, ts_us, dur_us, 0, tid});
}

void Timeline::InstantEvent(const std::string& name,
                            const std::string& category, double ts_us,
                            int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'i', name, category, ts_us, 0, 0, tid});
}

void Timeline::CounterSample(const std::string& name, double ts_us,
                             double value) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'C', name, "counter", ts_us, 0, value, 0});
}

size_t Timeline::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Timeline::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(ev.name) << "\",\"cat\":\""
        << JsonEscape(ev.category) << "\",\"ph\":\"" << ev.phase
        << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":" << ev.ts_us;
    switch (ev.phase) {
      case 'X': out << ",\"dur\":" << ev.dur_us; break;
      case 'i': out << ",\"s\":\"t\""; break;
      case 'C': out << ",\"args\":{\"value\":" << ev.value << "}"; break;
      default: break;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace gallium::telemetry
