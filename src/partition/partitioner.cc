#include "partition/partitioner.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <set>

#include "ir/verifier.h"

namespace gallium::partition {

using analysis::Location;
using ir::InstId;
using ir::Instruction;
using ir::Opcode;
using ir::Reg;
using ir::StateRef;

bool StatementSupportedByP4(const ir::Function& fn, const Instruction& inst) {
  switch (inst.op) {
    case Opcode::kAssign:
      return true;
    case Opcode::kAlu:
      return ir::AluOpSupportedByP4(inst.alu);
    case Opcode::kHeaderRead:
    case Opcode::kHeaderWrite:
      return true;  // header fields only (payload has its own opcodes)
    case Opcode::kPayloadMatch:
    case Opcode::kPayloadLen:
      return false;  // switches cannot inspect payloads (§2.2)
    case Opcode::kMapGet:
      // A map lookup maps to a P4 table lookup when the developer annotated
      // a maximum size (§4.3.1) and the structure has a P4 counterpart.
      return fn.map(inst.state).has_p4_impl &&
             fn.map(inst.state).max_entries > 0;
    case Opcode::kMapPut:
    case Opcode::kMapDel:
      // Table contents are read-only for the data plane; inserts and
      // deletes must go through the switch control plane, i.e. the server
      // (§2.1). Never offloadable as inline statements.
      return false;
    case Opcode::kGlobalRead:
    case Opcode::kGlobalWrite:
      return true;  // P4 registers are data-plane readable and writable
    case Opcode::kVectorGet:
    case Opcode::kVectorLen:
      return fn.vector(inst.state).has_p4_impl &&
             fn.vector(inst.state).max_size > 0;
    case Opcode::kTimeRead:
      return false;  // no wall-clock primitive in the baseline P4 model
    case Opcode::kSend:
    case Opcode::kDrop:
    case Opcode::kBranch:
    case Opcode::kJump:
    case Opcode::kReturn:
      return true;
  }
  return false;
}

Partitioner::Partitioner(const ir::Function& fn, SwitchConstraints constraints)
    : fn_(fn),
      c_(constraints),
      cfg_(fn),
      deps_(fn, cfg_),
      liveness_(fn, cfg_),
      insts_(fn.num_insts(), nullptr) {
  for (const ir::BasicBlock& bb : fn.blocks()) {
    if (!cfg_.BlockReachable(bb.id)) continue;
    for (const Instruction& inst : bb.insts) insts_[inst.id] = &inst;
  }
  replicable_ = ComputeReplicable();
}

std::vector<bool> Partitioner::ComputeReplicable() const {
  // A header read may be re-executed by a later partition when no header
  // write to the same field can happen after it — re-reading then observes
  // exactly the value the original read produced. (The ingress-port
  // pseudo-field is excluded: the returning packet arrives on the server
  // port, so the original ingress is not re-derivable.)
  std::vector<bool> replicable(fn_.num_insts(), false);
  for (InstId r = 0; r < fn_.num_insts(); ++r) {
    if (insts_[r] == nullptr || insts_[r]->op != Opcode::kHeaderRead) continue;
    if (insts_[r]->field == ir::HeaderField::kIngressPort) continue;
    bool hazard = false;
    for (InstId w = 0; w < fn_.num_insts() && !hazard; ++w) {
      if (insts_[w] == nullptr || insts_[w]->op != Opcode::kHeaderWrite)
        continue;
      if (insts_[w]->field == insts_[r]->field &&
          cfg_.CanHappenAfter(w, r)) {
        hazard = true;
      }
    }
    replicable[r] = !hazard;
  }
  return replicable;
}

void Partitioner::InitLabels() {
  labels_.assign(fn_.num_insts(), LabelSet{});
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr) {
      labels_[s] = LabelSet{false, false};
      continue;
    }
    bool supported = StatementSupportedByP4(fn_, *insts_[s]);
    // Spilled state (RMT placement feedback): accesses stay on the server.
    if (supported && !c_.spilled_state.empty()) {
      ir::StateRef ref;
      if (ir::Function::InstStateRef(*insts_[s], &ref) &&
          std::find(c_.spilled_state.begin(), c_.spilled_state.end(), ref) !=
              c_.spilled_state.end()) {
        supported = false;
      }
    }
    labels_[s] = LabelSet{supported, supported};
  }
}

int Partitioner::RunFixpointOn(std::vector<LabelSet>& labels) const {
  const int n = fn_.num_insts();

  // Which state (if any) each instruction touches, for rules 3 & 4.
  std::vector<StateRef> state(n);
  std::vector<bool> has_state(n, false);
  for (InstId s = 0; s < n; ++s) {
    if (insts_[s] != nullptr) {
      has_state[s] = ir::Function::InstStateRef(*insts_[s], &state[s]);
    }
  }

  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    auto clear_pre = [&](InstId s) {
      if (labels[s].pre) {
        labels[s].pre = false;
        ++removed;
        changed = true;
      }
    };
    auto clear_post = [&](InstId s) {
      if (labels[s].post) {
        labels[s].post = false;
        ++removed;
        changed = true;
      }
    };

    for (InstId s1 = 0; s1 < n; ++s1) {
      if (insts_[s1] == nullptr) continue;

      // Rule 5: statements in dependency cycles (loops) are server-only.
      if (deps_.SelfDependent(s1)) {
        clear_pre(s1);
        clear_post(s1);
      }

      for (InstId s2 = 0; s2 < n; ++s2) {
        if (insts_[s2] == nullptr || s1 == s2) continue;
        if (!deps_.TransitivelyDependsOn(s2, s1)) continue;
        // Here s1 ⇝* s2 (s2 depends on s1).

        // Rule 1: if s2 cannot be post, nothing it depends on can be post.
        if (!labels[s2].post) clear_post(s1);
        // Rule 2: if s1 cannot be pre, nothing depending on it can be pre.
        if (!labels[s1].pre) clear_pre(s2);

        // Rules 3 & 4: a global state may be accessed only once on the
        // switch (single table access per pipeline pass).
        if (has_state[s1] && has_state[s2] && state[s1] == state[s2]) {
          if (labels[s1].pre) clear_pre(s2);
          if (labels[s2].post) clear_post(s1);
        }
      }
    }

    // Rule 6 (pre horizon): the pre pass walks the CFG linearly and stops
    // at the first branch whose condition it cannot evaluate — one not
    // produced by a pre or replicable statement (interpreter stop
    // semantics). A statement beyond such a branch would be silently
    // skipped by the pre pass on every path through the branch, so it
    // cannot keep its pre label even when it is not control-dependent on
    // the branch (e.g. it sits in the post-dominating join block).
    for (const ir::BasicBlock& bb : fn_.blocks()) {
      if (bb.insts.empty()) continue;
      const Instruction& term = bb.insts.back();
      if (term.op != Opcode::kBranch || insts_[term.id] == nullptr) continue;
      const ir::Value& cond = term.args[0];
      bool pre_visible = cond.is_imm();
      if (!pre_visible) {
        bool has_def = false;
        pre_visible = true;
        for (InstId d = 0; d < n; ++d) {
          if (insts_[d] == nullptr) continue;
          for (ir::Reg dst : insts_[d]->dsts) {
            if (dst != cond.reg) continue;
            has_def = true;
            if (!labels[d].pre && !replicable_[d]) pre_visible = false;
          }
        }
        if (!has_def) pre_visible = false;
      }
      if (pre_visible) continue;
      std::vector<bool> seen(fn_.num_blocks(), false);
      std::vector<int> stack = {term.target_true, term.target_false};
      while (!stack.empty()) {
        const int blk = stack.back();
        stack.pop_back();
        if (blk < 0 || blk >= fn_.num_blocks() || seen[blk]) continue;
        seen[blk] = true;
        const ir::BasicBlock& rb = fn_.block(blk);
        for (const Instruction& inst : rb.insts) {
          if (insts_[inst.id] == nullptr || inst.IsTerminator()) continue;
          clear_pre(inst.id);
        }
        if (rb.insts.empty()) continue;
        const Instruction& t = rb.insts.back();
        if (t.op == Opcode::kBranch) {
          stack.push_back(t.target_true);
          stack.push_back(t.target_false);
        } else if (t.op == Opcode::kJump) {
          stack.push_back(t.target_true);
        }
      }
    }
  }
  return removed;
}

int Partitioner::FixpointLabelRemoval() { return RunFixpointOn(labels_); }

void Partitioner::ApplyPipelineDepthConstraint() {
  const auto& from_entry = deps_.DistanceFromEntry();
  const auto& to_exit = deps_.DistanceToExit();
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr) continue;
    if (from_entry[s] > c_.pipeline_depth) labels_[s].pre = false;
    if (to_exit[s] > c_.pipeline_depth) labels_[s].post = false;
  }
  FixpointLabelRemoval();
}

uint64_t Partitioner::SwitchMemoryFootprint() const {
  const auto assignment = AssignmentFromLabels(labels_);
  const auto placement = ComputeStatePlacement(assignment);
  uint64_t total = 0;
  for (const auto& [ref, where] : placement) {
    if (where == StatePlacement::kServerOnly) continue;
    uint64_t bytes = 0;
    switch (ref.kind) {
      case StateRef::Kind::kMap: bytes = fn_.map(ref.index).SwitchBytes(); break;
      case StateRef::Kind::kVector:
        bytes = fn_.vector(ref.index).SwitchBytes();
        break;
      case StateRef::Kind::kGlobal:
        bytes = fn_.global(ref.index).SwitchBytes();
        break;
    }
    if (where == StatePlacement::kReplicated &&
        ref.kind == StateRef::Kind::kMap) {
      // Replicated maps carry a write-back shadow table (§4.3.3); we size it
      // at a quarter of the main table.
      bytes += bytes / 4;
    }
    total += bytes;
  }
  return total;
}

void Partitioner::ApplyMemoryConstraint() {
  // Alternate removing a "pre" label in reverse source order and a "post"
  // label in source order until the footprint fits (§4.2.2).
  bool remove_pre_next = true;
  while (SwitchMemoryFootprint() > c_.memory_bytes) {
    bool removed_any = false;
    if (remove_pre_next) {
      for (InstId s = fn_.num_insts() - 1; s >= 0; --s) {
        if (insts_[s] != nullptr && labels_[s].pre && insts_[s]->AccessesMap()) {
          labels_[s].pre = false;
          removed_any = true;
          break;
        }
      }
      if (!removed_any) {
        for (InstId s = fn_.num_insts() - 1; s >= 0; --s) {
          if (insts_[s] != nullptr && labels_[s].pre) {
            labels_[s].pre = false;
            removed_any = true;
            break;
          }
        }
      }
    } else {
      for (InstId s = 0; s < fn_.num_insts(); ++s) {
        if (insts_[s] != nullptr && labels_[s].post) {
          labels_[s].post = false;
          removed_any = true;
          break;
        }
      }
    }
    remove_pre_next = !remove_pre_next;
    if (removed_any) {
      FixpointLabelRemoval();
    } else if (!remove_pre_next) {
      continue;  // try the post direction before giving up
    } else {
      break;  // no switch labels left; footprint is now zero
    }
  }
}

void Partitioner::ApplySingleAccessConstraint() {
  // Collect all state objects and their accesses.
  std::map<StateRef, std::vector<InstId>> accesses;
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr) continue;
    StateRef ref;
    if (ir::Function::InstStateRef(*insts_[s], &ref)) {
      accesses[ref].push_back(s);
    }
  }

  for (const auto& [ref, insts] : accesses) {
    // Accesses that could currently run on the switch.
    std::vector<InstId> on_switch;
    for (InstId s : insts) {
      if (labels_[s].OnSwitch()) on_switch.push_back(s);
    }
    if (on_switch.size() <= 1) continue;

    // Exhaustive search: keep exactly one access on the switch; pick the
    // placement that maximizes the number of offloaded statements (§4.2.2).
    int best_count = -1;
    std::vector<LabelSet> best_labels;
    for (InstId keep : on_switch) {
      std::vector<LabelSet> trial = labels_;
      for (InstId other : on_switch) {
        if (other != keep) trial[other] = LabelSet{false, false};
      }
      RunFixpointOn(trial);
      const int count = CountOnSwitch(trial);
      if (count > best_count) {
        best_count = count;
        best_labels = std::move(trial);
      }
    }
    labels_ = std::move(best_labels);
  }
}

int Partitioner::CountOnSwitch(const std::vector<LabelSet>& labels) const {
  int score = 0;
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr) continue;
    if (insts_[s]->op == Opcode::kJump || insts_[s]->op == Opcode::kReturn) {
      continue;  // structural statements don't count as offloaded work
    }
    if (!labels[s].OnSwitch()) continue;
    // Default objective: each statement counts 1 (the paper's §4.2
    // "maximizes the number of statements"). The weighted objective scores
    // statements by the server cycles they would otherwise cost (§7).
    score += c_.objective == OffloadObjective::kWeightedCycles
                 ? c_.weights.WeightOf(*insts_[s])
                 : 1;
  }
  return score;
}

void Partitioner::DemoteReplicatedStateWrites() {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto assignment = AssignmentFromLabels(labels_);
    const auto placement = ComputeStatePlacement(assignment);
    for (InstId s = 0; s < fn_.num_insts(); ++s) {
      if (insts_[s] == nullptr || !labels_[s].OnSwitch()) continue;
      StateRef ref;
      if (!ir::Function::InstStateRef(*insts_[s], &ref)) continue;
      if (!insts_[s]->WritesState()) continue;
      const auto it = placement.find(ref);
      if (it != placement.end() && it->second == StatePlacement::kReplicated) {
        // Replicated state is updated only by the server (§4.3.3).
        labels_[s] = LabelSet{false, false};
        changed = true;
      }
    }
    if (changed) FixpointLabelRemoval();
  }
}

void Partitioner::DemoteUnsafeSends() {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto assignment = AssignmentFromLabels(labels_);
    for (InstId s = 0; s < fn_.num_insts(); ++s) {
      if (insts_[s] == nullptr) continue;
      const Opcode op = insts_[s]->op;
      if (op != Opcode::kSend && op != Opcode::kDrop) continue;
      if (assignment[s] != Part::kPre) continue;
      // A pre-partition send/drop must not share a path with non-offloaded
      // work: the packet would escape before the server's state updates are
      // committed (output-commit, §4.3.3).
      for (InstId t = 0; t < fn_.num_insts(); ++t) {
        if (insts_[t] == nullptr || t == s) continue;
        if (assignment[t] == Part::kPre) continue;
        if (insts_[t]->op == Opcode::kJump || insts_[t]->op == Opcode::kReturn)
          continue;
        if (cfg_.CanHappenAfter(t, s) || cfg_.CanHappenAfter(s, t)) {
          labels_[s].pre = false;
          changed = true;
          break;
        }
      }
    }
    if (changed) FixpointLabelRemoval();
  }
}

void Partitioner::ApplyTransferAndMetadataConstraints() {
  const int n = fn_.num_insts();
  for (int iter = 0; iter < n + 1; ++iter) {
    const auto assignment = AssignmentFromLabels(labels_);
    TransferSpec to_server, to_switch;
    ComputeTransfers(assignment, &to_server, &to_switch);
    const int metadata = ComputeMetadataPeak(assignment);

    // The wire format packs condition bits into one 32-bit field.
    constexpr size_t kMaxCondBits = 32;
    const bool server_ok = to_server.Bytes(fn_) <= c_.transfer_bytes &&
                           to_server.cond_regs.size() <= kMaxCondBits;
    const bool switch_ok = to_switch.Bytes(fn_) <= c_.transfer_bytes &&
                           to_switch.cond_regs.size() <= kMaxCondBits;
    const bool metadata_ok = metadata <= c_.metadata_bytes;
    if (server_ok && switch_ok && metadata_ok) return;

    // Greedy move in a fixed topological order of the data dependencies:
    // demote the deepest offloaded statement (the one closest to the
    // partition boundary) to the server, then re-run the label fixpoint and
    // re-measure (§4.2.2).
    InstId victim = ir::kInvalidInst;
    // Selection key: deepest statement first (the fixed topological order);
    // under the weighted objective (§7), ties prefer the cheapest statement
    // so that high-benefit operations (table lookups) stay offloaded.
    auto better = [&](int depth, InstId s, int best_depth,
                      InstId best) {
      if (best == ir::kInvalidInst) return true;
      if (depth != best_depth) return depth > best_depth;
      if (c_.objective == OffloadObjective::kWeightedCycles) {
        return c_.weights.WeightOf(*insts_[s]) <
               c_.weights.WeightOf(*insts_[best]);
      }
      return false;
    };
    int best_depth = -1;
    const auto& dist_entry = deps_.DistanceFromEntry();
    const auto& dist_exit = deps_.DistanceToExit();
    for (InstId s = 0; s < n; ++s) {
      if (insts_[s] == nullptr) continue;
      if (insts_[s]->IsTerminator()) continue;
      if ((!server_ok || !metadata_ok) && assignment[s] == Part::kPre) {
        if (better(dist_entry[s], s, best_depth, victim)) {
          best_depth = dist_entry[s];
          victim = s;
        }
      } else if ((!switch_ok || (!metadata_ok && server_ok)) &&
                 assignment[s] == Part::kPost) {
        if (better(dist_exit[s], s, best_depth, victim)) {
          best_depth = dist_exit[s];
          victim = s;
        }
      }
    }
    if (victim == ir::kInvalidInst) return;  // nothing left to move
    labels_[victim] = LabelSet{false, false};
    FixpointLabelRemoval();
  }
}

std::vector<Part> Partitioner::AssignmentFromLabels(
    const std::vector<LabelSet>& labels) {
  std::vector<Part> assignment(labels.size(), Part::kNonOffloaded);
  for (size_t s = 0; s < labels.size(); ++s) {
    if (labels[s].pre) {
      assignment[s] = Part::kPre;
    } else if (labels[s].post) {
      assignment[s] = Part::kPost;
    }
  }
  return assignment;
}

std::vector<Part> Partitioner::ComputeAssignment() const {
  return AssignmentFromLabels(labels_);
}

void Partitioner::ComputeTransfers(const std::vector<Part>& assignment,
                                   TransferSpec* to_server,
                                   TransferSpec* to_switch) const {
  const int n = fn_.num_insts();

  // Does any statement run on the server / in the post partition?
  bool any_server = false;
  bool any_post = false;
  for (InstId s = 0; s < n; ++s) {
    if (insts_[s] == nullptr || insts_[s]->IsTerminator()) continue;
    if (insts_[s]->op == Opcode::kJump || insts_[s]->op == Opcode::kReturn)
      continue;
    if (assignment[s] == Part::kNonOffloaded) any_server = true;
    if (assignment[s] == Part::kPost) any_post = true;
  }

  // Partition in which each register is defined. (Registers have a single
  // defining statement in well-formed middlebox programs; if multiple defs
  // exist we take the earliest partition, which is the conservative choice
  // for transfer sizing.)
  std::vector<int> def_part(fn_.num_regs(), -1);  // -1 = undefined
  std::vector<bool> def_replicable(fn_.num_regs(), true);
  auto part_rank = [](Part p) {
    return p == Part::kPre ? 0 : p == Part::kNonOffloaded ? 1 : 2;
  };
  for (InstId s = 0; s < n; ++s) {
    if (insts_[s] == nullptr) continue;
    for (Reg r : insts_[s]->dsts) {
      const int rank = part_rank(assignment[s]);
      if (def_part[r] == -1 || rank < def_part[r]) def_part[r] = rank;
      if (!replicable_[s]) def_replicable[r] = false;
    }
  }

  // Data uses per register per partition rank, plus branch-condition needs.
  // The server pass and the post pass both re-walk the CFG, so they need
  // every branch condition whenever a packet can visit the server at all
  // (the post pass runs even when it owns no statements - it is what
  // re-emits the packet).
  std::vector<std::array<bool, 3>> used_in(
      fn_.num_regs(), std::array<bool, 3>{false, false, false});
  std::vector<bool> cond_needed(fn_.num_regs(), false);
  for (InstId s = 0; s < n; ++s) {
    if (insts_[s] == nullptr) continue;
    const Instruction& inst = *insts_[s];
    if (inst.op == Opcode::kBranch) {
      if (inst.args[0].is_reg() && (any_server || any_post)) {
        cond_needed[inst.args[0].reg] = true;
      }
      continue;
    }
    for (const ir::Value& v : inst.args) {
      if (v.is_reg()) used_in[v.reg][part_rank(assignment[s])] = true;
    }
  }

  auto add_full = [&](TransferSpec* spec, Reg r) {
    auto& list = fn_.reg_width(r) == ir::Width::kU1 ? spec->cond_regs
                                                    : spec->var_regs;
    if (std::find(list.begin(), list.end(), r) == list.end())
      list.push_back(r);
  };
  // A register consumed only as a branch condition crosses as a single
  // truthiness bit regardless of its width - traversal needs no more.
  auto add_cond_bit = [&](TransferSpec* spec, Reg r) {
    if (std::find(spec->var_regs.begin(), spec->var_regs.end(), r) !=
        spec->var_regs.end()) {
      return;
    }
    if (std::find(spec->cond_regs.begin(), spec->cond_regs.end(), r) ==
        spec->cond_regs.end()) {
      spec->cond_regs.push_back(r);
    }
  };

  for (Reg r = 0; r < static_cast<Reg>(fn_.num_regs()); ++r) {
    if (def_part[r] == -1) continue;
    // Values produced by replicable statements (stable header reads) are
    // re-derived locally by each partition - never transferred.
    if (def_replicable[r]) continue;
    // pre -> server header: defined on the switch pre partition, consumed
    // by the server or by the post partition (the server relays those).
    if (def_part[r] == 0) {
      if (used_in[r][1] || used_in[r][2]) {
        add_full(to_server, r);
      } else if (cond_needed[r]) {
        add_cond_bit(to_server, r);
      }
    }
    // server -> switch header: defined in pre or on the server, consumed by
    // the post partition (as data or as a branch condition).
    if (def_part[r] <= 1) {
      if (used_in[r][2]) {
        add_full(to_switch, r);
      } else if (cond_needed[r]) {
        add_cond_bit(to_switch, r);
      }
    }
  }
}

int Partitioner::ComputeMetadataPeak(
    const std::vector<Part>& assignment) const {
  // Peak bytes of simultaneously-live switch-defined temporaries, measured
  // after each offloaded statement (liveness-based slot reuse, §4.3.1).
  std::vector<bool> switch_def(fn_.num_regs(), false);
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr || assignment[s] == Part::kNonOffloaded) continue;
    for (Reg r : insts_[s]->dsts) switch_def[r] = true;
  }
  int peak = 0;
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr || assignment[s] == Part::kNonOffloaded) continue;
    const auto& live = liveness_.LiveOut(s);
    int bytes = 0;
    for (Reg r = 0; r < static_cast<Reg>(fn_.num_regs()); ++r) {
      if (switch_def[r] && live[r]) bytes += ir::ByteWidth(fn_.reg_width(r));
    }
    peak = std::max(peak, bytes);
  }
  return peak;
}

std::map<StateRef, StatePlacement> Partitioner::ComputeStatePlacement(
    const std::vector<Part>& assignment) const {
  std::map<StateRef, StatePlacement> placement;
  std::map<StateRef, std::pair<bool, bool>> touched;  // (switch, server)
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr) continue;
    StateRef ref;
    if (!ir::Function::InstStateRef(*insts_[s], &ref)) continue;
    auto& [on_switch, on_server] = touched[ref];
    if (assignment[s] == Part::kNonOffloaded) {
      on_server = true;
    } else {
      on_switch = true;
    }
  }
  for (const auto& [ref, flags] : touched) {
    const auto [on_switch, on_server] = flags;
    if (on_switch && on_server) {
      placement[ref] = StatePlacement::kReplicated;
    } else if (on_switch) {
      placement[ref] = StatePlacement::kSwitchOnly;
    } else {
      placement[ref] = StatePlacement::kServerOnly;
    }
  }
  return placement;
}

Status Partitioner::VerifyPlan(const PartitionPlan& plan) const {
  auto part_rank = [](Part p) {
    return p == Part::kPre ? 0 : p == Part::kNonOffloaded ? 1 : 2;
  };
  // Dependencies must never point from a later partition to an earlier one.
  for (const analysis::DepEdge& e : deps_.edges()) {
    if (e.from == e.to) continue;
    if (insts_[e.from] == nullptr || insts_[e.to] == nullptr) continue;
    // Branch (control) edges are exempt: branches are replicated into every
    // partition that traverses them, with the condition carried in-band.
    if (insts_[e.from]->op == Opcode::kBranch) continue;
    if (part_rank(plan.assignment[e.from]) > part_rank(plan.assignment[e.to])) {
      return Internal("dependency inversion: inst " + std::to_string(e.from) +
                      " (" + PartName(plan.assignment[e.from]) + ") -> inst " +
                      std::to_string(e.to) + " (" +
                      PartName(plan.assignment[e.to]) + ")");
    }
  }
  // At most one switch access per state object (Constraint 3).
  std::map<StateRef, int> switch_accesses;
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr || !plan.OnSwitch(s)) continue;
    StateRef ref;
    if (ir::Function::InstStateRef(*insts_[s], &ref)) ++switch_accesses[ref];
  }
  for (const auto& [ref, count] : switch_accesses) {
    if (count > 1) {
      return Internal("state " + fn_.StateName(ref) + " accessed " +
                      std::to_string(count) + " times on the switch");
    }
  }
  // Byte caps (Constraints 4 & 5).
  if (plan.to_server.Bytes(fn_) > c_.transfer_bytes ||
      plan.to_switch.Bytes(fn_) > c_.transfer_bytes) {
    return ResourceExhausted("transfer header exceeds byte cap");
  }
  if (plan.metadata_peak_bytes > c_.metadata_bytes) {
    return ResourceExhausted("per-packet metadata exceeds cap");
  }
  if (SwitchMemoryFootprint() > c_.memory_bytes) {
    return ResourceExhausted("switch memory exceeded");
  }
  return Status::Ok();
}

Result<PartitionPlan> Partitioner::Run() {
  InitLabels();
  FixpointLabelRemoval();
  ApplyPipelineDepthConstraint();
  ApplyMemoryConstraint();
  ApplySingleAccessConstraint();
  DemoteReplicatedStateWrites();
  DemoteUnsafeSends();
  ApplyTransferAndMetadataConstraints();

  PartitionPlan plan;
  plan.labels = labels_;
  plan.assignment = ComputeAssignment();
  plan.replicable = replicable_;
  ComputeTransfers(plan.assignment, &plan.to_server, &plan.to_switch);
  plan.metadata_peak_bytes = ComputeMetadataPeak(plan.assignment);
  plan.state_placement = ComputeStatePlacement(plan.assignment);
  // Stage usage: the longest dependency chain among switch statements
  // (Constraint 2's metric — chain length in edges, bounded by the
  // pipeline depth), measured from the program entry for pre statements
  // and toward the exit for post statements.
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr || insts_[s]->IsTerminator()) continue;
    if (plan.assignment[s] == Part::kPre) {
      plan.pipeline_stages_used =
          std::max(plan.pipeline_stages_used, deps_.DistanceFromEntry()[s]);
    } else if (plan.assignment[s] == Part::kPost) {
      plan.pipeline_stages_used =
          std::max(plan.pipeline_stages_used, deps_.DistanceToExit()[s]);
    }
  }
  for (InstId s = 0; s < fn_.num_insts(); ++s) {
    if (insts_[s] == nullptr) continue;
    const Opcode op = insts_[s]->op;
    if (op == Opcode::kJump || op == Opcode::kReturn) continue;
    switch (plan.assignment[s]) {
      case Part::kPre: ++plan.num_pre; break;
      case Part::kNonOffloaded: ++plan.num_non_offloaded; break;
      case Part::kPost: ++plan.num_post; break;
    }
  }

  // Surface warn-level verifier diagnostics in the plan report.
  {
    std::vector<ir::VerifyWarning> warns;
    GALLIUM_RETURN_IF_ERROR(ir::VerifyFunctionWithWarnings(fn_, &warns));
    for (const ir::VerifyWarning& w : warns) plan.warnings.push_back(w.message);
    if (plan.num_pre == 0 && plan.num_post == 0) {
      plan.warnings.push_back(
          "no statements were offloaded; both switch partitions are empty");
    }
  }

  GALLIUM_RETURN_IF_ERROR(VerifyPlan(plan));
  return plan;
}

}  // namespace gallium::partition
