#include "partition/plan.h"

#include <algorithm>
#include <sstream>

namespace gallium::partition {

const char* PartName(Part p) {
  switch (p) {
    case Part::kPre: return "pre";
    case Part::kNonOffloaded: return "non_offloaded";
    case Part::kPost: return "post";
  }
  return "?";
}

int OffloadWeights::WeightOf(const ir::Instruction& inst) const {
  switch (inst.op) {
    case ir::Opcode::kMapGet:
    case ir::Opcode::kMapPut:
    case ir::Opcode::kMapDel:
      return map_lookup;
    case ir::Opcode::kVectorGet:
    case ir::Opcode::kVectorLen:
      return vector_op;
    case ir::Opcode::kGlobalRead:
    case ir::Opcode::kGlobalWrite:
      return global_op;
    case ir::Opcode::kHeaderRead:
    case ir::Opcode::kHeaderWrite:
      return header_op;
    case ir::Opcode::kAlu:
    case ir::Opcode::kAssign:
      return alu_op;
    default:
      return other;
  }
}

const char* StatePlacementName(StatePlacement p) {
  switch (p) {
    case StatePlacement::kSwitchOnly: return "switch-only";
    case StatePlacement::kServerOnly: return "server-only";
    case StatePlacement::kReplicated: return "replicated";
  }
  return "?";
}

int TransferSpec::Bytes(const ir::Function& fn) const {
  const int cond_bytes = (static_cast<int>(cond_regs.size()) + 7) / 8;
  int var_bytes = 0;
  for (ir::Reg r : var_regs) {
    // Slots are 32-bit; a u64 register takes two.
    var_bytes += ir::BitWidth(fn.reg_width(r)) > 32 ? 8 : 4;
  }
  return cond_bytes + var_bytes;
}

int TransferSpec::VarSlot(const ir::Function& fn, ir::Reg r) const {
  int slot = 0;
  for (ir::Reg v : var_regs) {
    if (v == r) return slot;
    slot += ir::BitWidth(fn.reg_width(v)) > 32 ? 2 : 1;
  }
  return -1;
}

int TransferSpec::CondBit(ir::Reg r) const {
  const auto it = std::find(cond_regs.begin(), cond_regs.end(), r);
  return it == cond_regs.end() ? -1
                               : static_cast<int>(it - cond_regs.begin());
}

int TransferSpec::NumVarSlots(const ir::Function& fn) const {
  int slots = 0;
  for (ir::Reg v : var_regs) {
    slots += ir::BitWidth(fn.reg_width(v)) > 32 ? 2 : 1;
  }
  return slots;
}

std::string PartitionPlan::Summary(const ir::Function& fn) const {
  std::ostringstream out;
  out << "partition summary for " << fn.name() << ":\n";
  out << "  pre=" << num_pre << " non_offloaded=" << num_non_offloaded
      << " post=" << num_post << "\n";
  out << "  to_server: " << to_server.cond_regs.size() << " cond bits, "
      << to_server.var_regs.size() << " vars (" << to_server.Bytes(fn)
      << " bytes)\n";
  out << "  to_switch: " << to_switch.cond_regs.size() << " cond bits, "
      << to_switch.var_regs.size() << " vars (" << to_switch.Bytes(fn)
      << " bytes)\n";
  out << "  metadata peak: " << metadata_peak_bytes << " bytes\n";
  out << "  pipeline stages used: " << pipeline_stages_used << "\n";
  for (const auto& [ref, placement] : state_placement) {
    out << "  state " << fn.StateName(ref) << ": "
        << StatePlacementName(placement) << "\n";
  }
  for (const std::string& w : warnings) {
    out << "  warning: " << w << "\n";
  }
  return out.str();
}

}  // namespace gallium::partition
