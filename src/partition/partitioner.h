// The Gallium partitioning algorithm (§4.2).
//
// Phase 1 — label removal: every statement starts with the labels
// {pre, non_off, post} (or {non_off} if P4 cannot express it) and labels are
// removed to a fixpoint under the five rules of §4.2.1.
//
// Phase 2 — resource refinement (§4.2.2): the pipeline-depth constraint is
// applied via the dependency-distance metric, the switch-memory constraint
// by trimming labels in (reverse) source order, the single-access-per-state
// constraint by exhaustive placement search, and the per-packet metadata and
// transfer-byte caps by greedily moving offloaded statements to the server in
// a fixed topological order of the data dependencies, re-running the label
// fixpoint and a liveness test after every move.
//
// Two safety refinements follow §4.3.3's execution model: writes to
// replicated state are forced to the server ("any updates will only be made
// by the server"), and a send/drop cannot stay in the pre partition if the
// same path still owes non-offloaded work (output-commit would be violated).
#pragma once

#include <memory>

#include "analysis/cfg.h"
#include "analysis/depgraph.h"
#include "analysis/liveness.h"
#include "ir/function.h"
#include "partition/plan.h"
#include "util/status.h"

namespace gallium::partition {

// True if a single statement is expressible in P4 (§4.2.1's three
// conditions: supported ALU ops, header-only packet access, and annotated
// data-structure calls with a P4 implementation).
bool StatementSupportedByP4(const ir::Function& fn,
                            const ir::Instruction& inst);

class Partitioner {
 public:
  Partitioner(const ir::Function& fn, SwitchConstraints constraints);

  Result<PartitionPlan> Run();

  const analysis::CfgInfo& cfg() const { return cfg_; }
  const analysis::DependencyGraph& deps() const { return deps_; }

 private:
  void InitLabels();
  // Applies rules 1-5 until no label can be removed. Returns the number of
  // labels removed.
  int FixpointLabelRemoval();
  void ApplyPipelineDepthConstraint();  // Constraint 2
  void ApplyMemoryConstraint();         // Constraint 1
  void ApplySingleAccessConstraint();   // Constraint 3 (exhaustive search)
  void DemoteReplicatedStateWrites();
  void DemoteUnsafeSends();
  void ApplyTransferAndMetadataConstraints();  // Constraints 4 & 5 (greedy)

  std::vector<Part> ComputeAssignment() const;
  // Header reads that every partition may re-execute locally: no header
  // write to the same field can happen after them.
  std::vector<bool> ComputeReplicable() const;
  static std::vector<Part> AssignmentFromLabels(
      const std::vector<LabelSet>& labels);
  void ComputeTransfers(const std::vector<Part>& assignment,
                        TransferSpec* to_server, TransferSpec* to_switch) const;
  int ComputeMetadataPeak(const std::vector<Part>& assignment) const;
  std::map<ir::StateRef, StatePlacement> ComputeStatePlacement(
      const std::vector<Part>& assignment) const;
  uint64_t SwitchMemoryFootprint() const;
  // On-switch statement count under a hypothetical label set (used by the
  // exhaustive single-access search).
  int CountOnSwitch(const std::vector<LabelSet>& labels) const;
  int RunFixpointOn(std::vector<LabelSet>& labels) const;

  Status VerifyPlan(const PartitionPlan& plan) const;

  const ir::Function& fn_;
  SwitchConstraints c_;
  analysis::CfgInfo cfg_;
  analysis::DependencyGraph deps_;
  analysis::Liveness liveness_;
  std::vector<const ir::Instruction*> insts_;  // indexed by InstId
  std::vector<bool> replicable_;
  std::vector<LabelSet> labels_;
};

}  // namespace gallium::partition
