// Partitioning result types: execution labels, partition assignment,
// transfer-header specifications, and state placement (§4.2, §4.3).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/function.h"

namespace gallium::partition {

// Which of the three packet-processing steps executes a statement.
enum class Part : uint8_t { kPre, kNonOffloaded, kPost };
const char* PartName(Part p);

// The label set {pre, non_off, post} of §4.2.1. non_off is always a member
// (executing on the server is always possible), so only pre/post are stored.
struct LabelSet {
  bool pre = true;
  bool post = true;

  bool OnSwitch() const { return pre || post; }
  bool operator==(const LabelSet&) const = default;
};

// How the partitioner scores candidate placements (§7 "Cost model of
// offloading"). The paper's default maximizes the *number* of offloaded
// statements; the weighted objective scores operations by the performance
// benefit of executing them on the switch (a table lookup saves far more
// server cycles than an integer addition), addressing the sub-optimality
// §7 points out.
enum class OffloadObjective : uint8_t {
  kStatementCount,  // the paper's default
  kWeightedCycles,  // §7's proposed refinement
};

// Per-operation offload benefit used by kWeightedCycles (roughly the server
// cycles the operation would otherwise cost; see perf::CostModel).
struct OffloadWeights {
  int map_lookup = 120;
  int vector_op = 8;
  int global_op = 4;
  int header_op = 6;
  int alu_op = 2;
  int other = 1;

  int WeightOf(const ir::Instruction& inst) const;
};

// Hardware resource limits of the target switch (§2.2, §4.2.2). Defaults
// model a Tofino-class device with the paper's conservative choices.
struct SwitchConstraints {
  // Constraint 1: total switch table/register memory ("a few tens of MBs").
  uint64_t memory_bytes = 16ull * 1024 * 1024;
  // Constraint 2: maximum dependency-chain length of offloaded code
  // ("generally around 10 to 20" stages; conservative value, footnote 3).
  int pipeline_depth = 12;
  // Constraint 4: per-packet scratchpad metadata ("less than 100 bytes").
  int metadata_bytes = 96;
  // Constraint 5: extra per-packet header space for switch<->server transfer
  // ("We set this constraint to be 20 bytes."). Applied per direction.
  int transfer_bytes = 20;

  // Placement-scoring objective (§7): statement count by default.
  OffloadObjective objective = OffloadObjective::kStatementCount;
  OffloadWeights weights;

  // State objects the RMT placement backend spilled back to the server
  // (rmt::PartitionAndPlace's feedback loop). Every statement touching a
  // listed object keeps only its non_off label, so the next partition
  // round cannot re-offload it.
  std::vector<ir::StateRef> spilled_state;
};

// Registers carried across a partition boundary inside the synthesized
// packet header (Fig. 5): u1 registers are packed as condition bits; wider
// registers occupy 32-bit variable slots.
struct TransferSpec {
  std::vector<ir::Reg> cond_regs;  // 1-bit values, packed into cond_bits
  std::vector<ir::Reg> var_regs;   // wider values, 32-bit slots (u64 uses 2)

  // On-the-wire bytes this spec adds to the packet.
  int Bytes(const ir::Function& fn) const;
  // Index of `r` within var slots (-1 if absent); u64 regs take two slots.
  int VarSlot(const ir::Function& fn, ir::Reg r) const;
  int CondBit(ir::Reg r) const;
  int NumVarSlots(const ir::Function& fn) const;
};

// Where a piece of global state lives after partitioning (§4.3.1).
enum class StatePlacement : uint8_t {
  kSwitchOnly,  // accessed exclusively by offloaded statements
  kServerOnly,  // accessed exclusively by the server (or not offloadable)
  kReplicated,  // read on the switch, updated by the server (synchronized)
};
const char* StatePlacementName(StatePlacement p);

struct PartitionPlan {
  // Final execution label of each statement, indexed by InstId.
  std::vector<LabelSet> labels;
  // Partition assignment derived from the labels (§4.2.2 last paragraph).
  std::vector<Part> assignment;

  // Statements replicated into every partition that traverses them, like
  // branches: header reads whose field is never modified afterwards. The
  // packet is physically present on both devices, so re-reading such a field
  // is free and costs no transfer-header space (the server "re-parses" the
  // packet instead of receiving parsed values).
  std::vector<bool> replicable;

  TransferSpec to_server;  // pre-processing -> non-offloaded header
  TransferSpec to_switch;  // non-offloaded -> post-processing header

  std::map<ir::StateRef, StatePlacement> state_placement;

  // Peak bytes of switch scratchpad metadata used by offloaded temporaries
  // (after liveness-based slot reuse).
  int metadata_peak_bytes = 0;

  // Longest dependency chain among offloaded statements — the number of
  // match-action stages the offloaded code needs (Constraint 2's metric).
  int pipeline_stages_used = 0;

  // Statement counts per partition (Table 1's offloading effectiveness).
  int num_pre = 0;
  int num_non_offloaded = 0;
  int num_post = 0;

  // Warn-level diagnostics from ir::VerifyFunctionWithWarnings (unreachable
  // blocks, never-read registers) plus partition-level notes (e.g. an empty
  // switch partition). Informational only; never fails the compile.
  std::vector<std::string> warnings;

  Part PartOf(ir::InstId id) const { return assignment[id]; }
  bool OnSwitch(ir::InstId id) const {
    return assignment[id] != Part::kNonOffloaded;
  }

  std::string Summary(const ir::Function& fn) const;
};

}  // namespace gallium::partition
