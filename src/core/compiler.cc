#include "core/compiler.h"

#include <chrono>
#include <sstream>

#include "ir/passes.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "util/strings.h"

namespace gallium::core {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void FillDiag(CompileDiagnostic* diag, const std::string& phase,
              const Status& status) {
  if (diag == nullptr) return;
  diag->phase = phase;
  diag->message = status.ToString();
}

// Accumulates the per-phase wall-clock timings of one Compile call.
class PhaseClock {
 public:
  PhaseClock() : last_(Clock::now()) {}

  void Mark(const char* phase) {
    const Clock::time_point now = Clock::now();
    times_.emplace_back(
        phase, std::chrono::duration<double, std::micro>(now - last_).count());
    last_ = now;
  }

  const std::vector<std::pair<std::string, double>>& times() const {
    return times_;
  }
  double TotalUs() const {
    double total = 0;
    for (const auto& [phase, us] : times_) total += us;
    return total;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point last_;
  std::vector<std::pair<std::string, double>> times_;
};

}  // namespace

std::string CompileDiagnostic::ToJson() const {
  std::ostringstream out;
  out << "{\"error\":\"" << JsonEscape(phase) << "\"";
  if (!table.empty()) out << ",\"table\":\"" << JsonEscape(table) << "\"";
  if (stage >= 0) out << ",\"stage\":" << stage;
  if (!resource.empty()) {
    out << ",\"resource\":\"" << JsonEscape(resource) << "\"";
  }
  out << ",\"exit_code\":" << exit_code;
  if (!findings.empty()) {
    out << ",\"findings\":[";
    for (size_t i = 0; i < findings.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << JsonEscape(findings[i]) << "\"";
    }
    out << "]";
  }
  if (!phase_times_us.empty()) {
    out << ",\"phase_times_us\":{";
    for (size_t i = 0; i < phase_times_us.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << JsonEscape(phase_times_us[i].first)
          << "\":" << phase_times_us[i].second;
    }
    out << "}";
  }
  out << ",\"message\":\"" << JsonEscape(message) << "\"}";
  return out.str();
}

Result<CompileResult> Compiler::Compile(const ir::Function& input_fn,
                                        CompileDiagnostic* diag) const {
  PhaseClock clock;
  // Whatever phases completed before a failure still get reported: the
  // diagnostic carries their timings alongside the failure cause.
  auto finish_diag = [&] {
    if (diag != nullptr) diag->phase_times_us = clock.times();
  };

  if (Status v = ir::VerifyFunction(input_fn); !v.ok()) {
    FillDiag(diag, "verify", v);
    finish_diag();
    return v;
  }
  clock.Mark("verify");

  // The optimizer works on a copy; the caller's function is never mutated.
  ir::Function optimized = input_fn;
  if (options_.optimize) {
    ir::OptimizeFunction(&optimized);
    if (Status v = ir::VerifyFunction(optimized); !v.ok()) {
      FillDiag(diag, "verify", v);
      finish_diag();
      return v;
    }
    clock.Mark("optimize");
  }
  const ir::Function& fn = options_.optimize ? optimized : input_fn;

  CompileResult result;

  // Partition + RMT placement with the spill feedback loop: the emitted P4
  // corresponds to a plan that is known to place on the target.
  const rmt::RmtTargetModel target =
      options_.target.has_value()
          ? *options_.target
          : rmt::DefaultTofinoProfile(options_.constraints);
  rmt::PlacementFailure failure;
  auto planned =
      rmt::PartitionAndPlace(fn, options_.constraints, target, &failure);
  if (!planned.ok()) {
    FillDiag(diag, "partition", planned.status());
    if (diag != nullptr) {
      diag->exit_code = 3;
      if (!failure.table.empty()) {
        diag->phase = "placement";
        diag->table = failure.table;
        diag->stage = failure.stage;
        diag->resource = failure.resource;
      }
    }
    finish_diag();
    return planned.status();
  }
  result.plan = std::move(planned->plan);
  result.placement = std::move(planned->placement);
  result.spilled_state = std::move(planned->spilled);
  result.partition_rounds = planned->rounds;
  clock.Mark("partition");

  auto p4_program = p4::GenerateP4(fn, result.plan, options_.p4);
  if (!p4_program.ok()) {
    FillDiag(diag, "codegen", p4_program.status());
    finish_diag();
    return p4_program.status();
  }
  result.p4_program = std::move(*p4_program);

  // Cross-check the two independent derivations of the switch program: every
  // match table the P4 backend emitted must exist in the placement report
  // (same naming contract), or the report would lie about the artifact.
  for (const auto& table : result.p4_program.tables) {
    bool found = false;
    for (const auto& req : result.placement.tables) {
      if (req.name == table.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      Status s = Internal("rmt placement is missing emitted table '" +
                          table.name + "'");
      FillDiag(diag, "placement", s);
      finish_diag();
      return s;
    }
  }

  result.p4_source = p4::EmitP4(result.p4_program);
  clock.Mark("codegen.p4");
  auto server = cppgen::GenerateServerCpp(fn, result.plan, options_.cpp);
  if (!server.ok()) {
    FillDiag(diag, "codegen", server.status());
    finish_diag();
    return server.status();
  }
  result.server_source = std::move(*server);
  result.click_source = ir::RenderClickSource(fn);

  result.input_loc = CountCodeLines(result.click_source);
  result.p4_loc = CountCodeLines(result.p4_source);
  result.server_loc = CountCodeLines(result.server_source);
  clock.Mark("codegen.cpp");

  // Verification gate: translation validation + offload-safety lints.
  if (options_.verify) {
    result.validation =
        verify::ValidateTranslation(fn, result.plan, options_.verify_limits);
    result.lints = verify::LintAll(fn, result.plan, &result.p4_program);
    result.verified = true;
    clock.Mark("verification");
    const bool lint_errors = verify::HasErrors(result.lints);
    if (!result.validation.equivalent || lint_errors) {
      Status s = Internal(
          !result.validation.equivalent
              ? "translation validation rejected the partition plan"
              : "offload-safety lint reported errors");
      FillDiag(diag, "verification", s);
      if (diag != nullptr) {
        diag->exit_code = 4;
        for (const verify::Mismatch& m : result.validation.mismatches) {
          diag->findings.push_back(m.ToString());
        }
        for (const verify::LintFinding& f : result.lints) {
          if (f.severity == verify::LintSeverity::kError) {
            diag->findings.push_back(f.ToString());
          }
        }
      }
      finish_diag();
      return s;
    }
  }
  result.phase_times_us = clock.times();
  result.total_compile_us = clock.TotalUs();
  return result;
}

}  // namespace gallium::core
