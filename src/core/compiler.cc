#include "core/compiler.h"

#include "ir/passes.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "util/strings.h"

namespace gallium::core {

Result<CompileResult> Compiler::Compile(const ir::Function& input_fn) const {
  GALLIUM_RETURN_IF_ERROR(ir::VerifyFunction(input_fn));

  // The optimizer works on a copy; the caller's function is never mutated.
  ir::Function optimized = input_fn;
  if (options_.optimize) {
    ir::OptimizeFunction(&optimized);
    GALLIUM_RETURN_IF_ERROR(ir::VerifyFunction(optimized));
  }
  const ir::Function& fn = options_.optimize ? optimized : input_fn;

  CompileResult result;

  partition::Partitioner partitioner(fn, options_.constraints);
  GALLIUM_ASSIGN_OR_RETURN(result.plan, partitioner.Run());

  GALLIUM_ASSIGN_OR_RETURN(result.p4_program,
                           p4::GenerateP4(fn, result.plan, options_.p4));
  result.p4_source = p4::EmitP4(result.p4_program);
  GALLIUM_ASSIGN_OR_RETURN(
      result.server_source,
      cppgen::GenerateServerCpp(fn, result.plan, options_.cpp));
  result.click_source = ir::RenderClickSource(fn);

  result.input_loc = CountCodeLines(result.click_source);
  result.p4_loc = CountCodeLines(result.p4_source);
  result.server_loc = CountCodeLines(result.server_source);
  return result;
}

}  // namespace gallium::core
