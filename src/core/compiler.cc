#include "core/compiler.h"

#include <sstream>

#include "ir/passes.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "util/strings.h"

namespace gallium::core {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void FillDiag(CompileDiagnostic* diag, const std::string& phase,
              const Status& status) {
  if (diag == nullptr) return;
  diag->phase = phase;
  diag->message = status.ToString();
}

}  // namespace

std::string CompileDiagnostic::ToJson() const {
  std::ostringstream out;
  out << "{\"error\":\"" << JsonEscape(phase) << "\"";
  if (!table.empty()) out << ",\"table\":\"" << JsonEscape(table) << "\"";
  if (stage >= 0) out << ",\"stage\":" << stage;
  if (!resource.empty()) {
    out << ",\"resource\":\"" << JsonEscape(resource) << "\"";
  }
  out << ",\"exit_code\":" << exit_code;
  if (!findings.empty()) {
    out << ",\"findings\":[";
    for (size_t i = 0; i < findings.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << JsonEscape(findings[i]) << "\"";
    }
    out << "]";
  }
  out << ",\"message\":\"" << JsonEscape(message) << "\"}";
  return out.str();
}

Result<CompileResult> Compiler::Compile(const ir::Function& input_fn,
                                        CompileDiagnostic* diag) const {
  if (Status v = ir::VerifyFunction(input_fn); !v.ok()) {
    FillDiag(diag, "verify", v);
    return v;
  }

  // The optimizer works on a copy; the caller's function is never mutated.
  ir::Function optimized = input_fn;
  if (options_.optimize) {
    ir::OptimizeFunction(&optimized);
    if (Status v = ir::VerifyFunction(optimized); !v.ok()) {
      FillDiag(diag, "verify", v);
      return v;
    }
  }
  const ir::Function& fn = options_.optimize ? optimized : input_fn;

  CompileResult result;

  // Partition + RMT placement with the spill feedback loop: the emitted P4
  // corresponds to a plan that is known to place on the target.
  const rmt::RmtTargetModel target =
      options_.target.has_value()
          ? *options_.target
          : rmt::DefaultTofinoProfile(options_.constraints);
  rmt::PlacementFailure failure;
  auto planned =
      rmt::PartitionAndPlace(fn, options_.constraints, target, &failure);
  if (!planned.ok()) {
    FillDiag(diag, "partition", planned.status());
    if (diag != nullptr) {
      diag->exit_code = 3;
      if (!failure.table.empty()) {
        diag->phase = "placement";
        diag->table = failure.table;
        diag->stage = failure.stage;
        diag->resource = failure.resource;
      }
    }
    return planned.status();
  }
  result.plan = std::move(planned->plan);
  result.placement = std::move(planned->placement);
  result.spilled_state = std::move(planned->spilled);
  result.partition_rounds = planned->rounds;

  auto p4_program = p4::GenerateP4(fn, result.plan, options_.p4);
  if (!p4_program.ok()) {
    FillDiag(diag, "codegen", p4_program.status());
    return p4_program.status();
  }
  result.p4_program = std::move(*p4_program);

  // Cross-check the two independent derivations of the switch program: every
  // match table the P4 backend emitted must exist in the placement report
  // (same naming contract), or the report would lie about the artifact.
  for (const auto& table : result.p4_program.tables) {
    bool found = false;
    for (const auto& req : result.placement.tables) {
      if (req.name == table.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      Status s = Internal("rmt placement is missing emitted table '" +
                          table.name + "'");
      FillDiag(diag, "placement", s);
      return s;
    }
  }

  result.p4_source = p4::EmitP4(result.p4_program);
  auto server = cppgen::GenerateServerCpp(fn, result.plan, options_.cpp);
  if (!server.ok()) {
    FillDiag(diag, "codegen", server.status());
    return server.status();
  }
  result.server_source = std::move(*server);
  result.click_source = ir::RenderClickSource(fn);

  result.input_loc = CountCodeLines(result.click_source);
  result.p4_loc = CountCodeLines(result.p4_source);
  result.server_loc = CountCodeLines(result.server_source);

  // Verification gate: translation validation + offload-safety lints.
  if (options_.verify) {
    result.validation =
        verify::ValidateTranslation(fn, result.plan, options_.verify_limits);
    result.lints = verify::LintAll(fn, result.plan, &result.p4_program);
    result.verified = true;
    const bool lint_errors = verify::HasErrors(result.lints);
    if (!result.validation.equivalent || lint_errors) {
      Status s = Internal(
          !result.validation.equivalent
              ? "translation validation rejected the partition plan"
              : "offload-safety lint reported errors");
      FillDiag(diag, "verification", s);
      if (diag != nullptr) {
        diag->exit_code = 4;
        for (const verify::Mismatch& m : result.validation.mismatches) {
          diag->findings.push_back(m.ToString());
        }
        for (const verify::LintFinding& f : result.lints) {
          if (f.severity == verify::LintSeverity::kError) {
            diag->findings.push_back(f.ToString());
          }
        }
      }
      return s;
    }
  }
  return result;
}

}  // namespace gallium::core
