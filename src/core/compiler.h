// gallium::Compiler — the end-to-end driver of Fig. 2.
//
//   middlebox source (Click-style IR)
//     -> dependency extraction (analysis)
//     -> partitioning under switch constraints (partition)
//     -> code generation: P4 for the switch, C++ for the server
//
// The result bundles everything a deployment needs: the partition plan
// (consumed by the runtime), the generated sources (the paper's Table 1
// artifacts), and the transfer-header layout.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cppgen/codegen.h"
#include "ir/function.h"
#include "p4/ast.h"
#include "p4/codegen.h"
#include "partition/partitioner.h"
#include "rmt/feedback.h"
#include "util/status.h"
#include "verify/lint.h"
#include "verify/validator.h"

namespace gallium::core {

struct CompileOptions {
  partition::SwitchConstraints constraints;
  p4::P4GenOptions p4;
  cppgen::CppGenOptions cpp;
  // Run FoldConstants + EliminateDeadCode before partitioning. Off by
  // default so compiled output maps 1:1 to the input statements (Table 1
  // accounting); the passes are semantics-preserving (fuzz-checked).
  bool optimize = false;
  // RMT pipeline to place tables on; nullopt derives the default
  // Tofino-like profile from `constraints`.
  std::optional<rmt::RmtTargetModel> target;

  // Gate the compile on translation validation + offload-safety lints
  // (galliumc --verify). A plan the validator rejects, or one with
  // error-severity lint findings, fails the compile with phase
  // "verification" (exit code 4 in galliumc).
  bool verify = false;
  verify::PathLimits verify_limits;
};

struct CompileResult {
  partition::PartitionPlan plan;
  p4::P4Program p4_program;
  std::string p4_source;      // deployable P4-16 text
  std::string server_source;  // deployable DPDK C++ text
  std::string click_source;   // rendered input program (Table 1's "Input")

  // RMT backend output: where each table landed, what had to be spilled
  // back to the server to make the program place, and how many partition
  // rounds the feedback loop took.
  rmt::PlacementReport placement;
  std::vector<ir::StateRef> spilled_state;
  int partition_rounds = 1;

  // Lines of code as Table 1 counts them (blank/comment lines excluded).
  int input_loc = 0;
  int p4_loc = 0;
  int server_loc = 0;

  // Populated when CompileOptions::verify is set (also on success, so
  // callers can inspect paths_checked and warning-level lints).
  bool verified = false;
  verify::ValidationResult validation;
  std::vector<verify::LintFinding> lints;

  // Wall-clock per-phase compile timings in execution order ("verify",
  // "optimize", "partition", "codegen.p4", "codegen.cpp", "verification");
  // galliumc republishes them as gauges for --metrics-out.
  std::vector<std::pair<std::string, double>> phase_times_us;
  double total_compile_us = 0;
};

// Machine-readable failure report for driver frontends (galliumc emits it
// as JSON with a dedicated exit code).
struct CompileDiagnostic {
  std::string phase;     // "verify" | "partition" | "placement" | "codegen"
                         // | "verification"
  std::string table;     // unplaceable table, when phase == "placement"
  int stage = -1;        // last stage tried
  std::string resource;  // binding resource ("sram_blocks", "stages", ...)
  std::string message;
  // Individual validator mismatches / lint errors (phase "verification").
  std::vector<std::string> findings;
  // Timings of the phases that did run before the failure (µs).
  std::vector<std::pair<std::string, double>> phase_times_us;
  // The process exit code galliumc maps this diagnostic to: 3 for
  // partition/placement failures, 4 for verification failures, 1 otherwise.
  int exit_code = 1;

  std::string ToJson() const;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(options) {}

  // `diag`, when non-null, is filled with the structured failure cause
  // whenever the returned status is not ok.
  Result<CompileResult> Compile(const ir::Function& fn,
                                CompileDiagnostic* diag = nullptr) const;

 private:
  CompileOptions options_;
};

}  // namespace gallium::core
