#include "click/elements.h"

#include <functional>

namespace gallium::click {

using ir::AluOp;
using ir::HeaderField;
using ir::Imm;
using ir::R;
using ir::Width;

Status ToDevice::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  ctx.b().Send(Imm(port_));
  ctx.b().Ret();
  return Status::Ok();
}

Status Discard::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  ctx.b().Drop();
  ctx.b().Ret();
  return Status::Ok();
}

Status CheckIpHeader::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  auto& b = ctx.b();
  const ir::Reg ttl = b.HeaderRead(HeaderField::kIpTtl, "ttl");
  const ir::Reg expired = b.Alu(AluOp::kLe, R(ttl), Imm(1), "ttl_expired");
  Status status = Status::Ok();
  ctx.mb().IfElse(
      R(expired),
      [&] {
        b.Drop();
        b.Ret();
      },
      [&] { status = ctx.PushTo(this, 0); });
  return status;
}

Status DecIpTtl::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  auto& b = ctx.b();
  const ir::Reg ttl = b.HeaderRead(HeaderField::kIpTtl, "ttl_in");
  const ir::Reg next = b.Alu(AluOp::kSub, R(ttl), Imm(1), Width::kU8,
                             "ttl_next");
  b.HeaderWrite(HeaderField::kIpTtl, R(next));
  return ctx.PushTo(this, 0);
}

Status SetField::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  ctx.b().HeaderWrite(field_, Imm(value_));
  return ctx.PushTo(this, 0);
}

Status Classifier::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  auto& b = ctx.b();

  // Emit rules as a nested if/else chain, first match wins; the final else
  // is the fall-through output.
  Status status = Status::Ok();
  std::function<void(size_t)> emit_rule = [&](size_t rule_index) {
    if (!status.ok()) return;
    if (rule_index >= rules_.size()) {
      status = ctx.PushTo(this, static_cast<int>(rules_.size()));
      return;
    }
    // Conjunction of the rule's terms.
    const Rule& rule = rules_[rule_index];
    ir::Reg match = b.Alu(AluOp::kEq, Imm(1), Imm(1),
                          "rule" + std::to_string(rule_index) + "_true");
    for (size_t t = 0; t < rule.size(); ++t) {
      const ir::Reg field = b.HeaderRead(rule[t].field);
      const ir::Reg eq = b.Alu(AluOp::kEq, R(field), Imm(rule[t].value));
      match = b.Alu(AluOp::kAnd, R(match), R(eq), Width::kU1,
                    "rule" + std::to_string(rule_index) + "_m" +
                        std::to_string(t));
    }
    ctx.mb().IfElse(
        R(match),
        [&] {
          if (status.ok()) status = ctx.PushTo(this, static_cast<int>(rule_index));
        },
        [&] { emit_rule(rule_index + 1); });
  };
  emit_rule(0);
  return status;
}

Status Counter::Declare(frontend::MiddleboxBuilder& mb) {
  global_ = mb.DeclareGlobal(name_, Width::kU64, 0);
  return Status::Ok();
}

Status Counter::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  auto& b = ctx.b();
  const ir::Reg count = global_.Read(name_ + "_val");
  global_.Write(R(b.Alu(AluOp::kAdd, R(count), Imm(1), Width::kU64,
                        name_ + "_next")));
  return ctx.PushTo(this, 0);
}

Status FlowLookup::Declare(frontend::MiddleboxBuilder& mb) {
  map_ = mb.DeclareMap(map_name_,
                       {Width::kU32, Width::kU32, Width::kU16, Width::kU16,
                        Width::kU8},
                       {Width::kU8}, max_entries_);
  return Status::Ok();
}

Status FlowLookup::Lower(LowerContext& ctx, int in_port) {
  (void)in_port;
  auto& b = ctx.b();
  const ir::Reg saddr = b.HeaderRead(HeaderField::kIpSrc);
  const ir::Reg daddr = b.HeaderRead(HeaderField::kIpDst);
  const ir::Reg sport = b.HeaderRead(HeaderField::kSrcPort);
  const ir::Reg dport = b.HeaderRead(HeaderField::kDstPort);
  const ir::Reg proto = b.HeaderRead(HeaderField::kIpProto);
  const auto hit =
      map_.Find({R(saddr), R(daddr), R(sport), R(dport), R(proto)},
                map_name_);
  Status status = Status::Ok();
  ctx.mb().IfElse(
      R(hit.found), [&] { status = ctx.PushTo(this, 0); },
      [&] {
        if (status.ok()) {
          const Status miss_status = ctx.PushTo(this, 1);
          if (!miss_status.ok()) status = miss_status;
        }
      });
  return status;
}

}  // namespace gallium::click
