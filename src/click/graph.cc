#include "click/graph.h"

#include <sstream>

namespace gallium::click {

void ElementGraph::Connect(Element* from, int out_port, Element* to,
                           int in_port) {
  edges_.push_back(Edge{from->id(), out_port, to->id(), in_port});
}

const ElementGraph::Edge* ElementGraph::FindEdge(int from_element,
                                                 int out_port) const {
  for (const Edge& edge : edges_) {
    if (edge.from_element == from_element && edge.out_port == out_port) {
      return &edge;
    }
  }
  return nullptr;
}

Status LowerContext::PushTo(const Element* from, int out_port) {
  constexpr int kMaxDepth = 64;  // inline-expansion guard (graphs are DAGs)
  const auto* edge = graph_->FindEdge(from->id(), out_port);
  if (edge == nullptr) {
    // Click drops packets pushed to unconnected ports.
    b().Drop();
    b().Ret();
    return Status::Ok();
  }
  if (++depth_ > kMaxDepth) {
    return FailedPrecondition(
        "element graph too deep (cycle, or pathological inlining)");
  }
  const Status status = graph_->elements_[edge->to_element]->Lower(
      *this, edge->in_port);
  --depth_;
  return status;
}

Result<mbox::MiddleboxSpec> ElementGraph::Lower(const std::string& name,
                                                Element* input) {
  frontend::MiddleboxBuilder mb(name);
  for (auto& element : elements_) {
    GALLIUM_RETURN_IF_ERROR(element->Declare(mb));
  }
  LowerContext ctx(this, &mb);
  GALLIUM_RETURN_IF_ERROR(input->Lower(ctx, 0));

  mbox::MiddleboxSpec spec;
  spec.name = name;
  spec.description = "Click element graph: " + RenderConfig();
  GALLIUM_ASSIGN_OR_RETURN(spec.fn, std::move(mb).Finish());
  return spec;
}

std::string ElementGraph::RenderConfig() const {
  std::ostringstream out;
  for (const auto& element : elements_) {
    out << "e" << element->id() << " :: " << element->class_name() << "; ";
  }
  for (const Edge& edge : edges_) {
    out << "e" << edge.from_element << "[" << edge.out_port << "] -> ["
        << edge.in_port << "]e" << edge.to_element << "; ";
  }
  return out.str();
}

}  // namespace gallium::click
