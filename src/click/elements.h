// The standard element library — the subset of Click's vocabulary the
// paper's middleboxes use, each lowering to Gallium IR.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "click/graph.h"
#include "net/headers.h"

namespace gallium::click {

// --- Terminals -------------------------------------------------------------------

// Emits the packet on a switch port (Click's ToDevice).
class ToDevice : public Element {
 public:
  explicit ToDevice(uint32_t port) : port_(port) {}
  std::string class_name() const override { return "ToDevice"; }
  Status Lower(LowerContext& ctx, int in_port) override;

 private:
  uint32_t port_;
};

// Drops every packet (Click's Discard).
class Discard : public Element {
 public:
  std::string class_name() const override { return "Discard"; }
  Status Lower(LowerContext& ctx, int in_port) override;
};

// --- Header sanity & rewriting -----------------------------------------------------

// Drops packets with an expired TTL, passes the rest (CheckIPHeader-lite).
// Output 0: valid packets; packets with ttl <= 1 are dropped.
class CheckIpHeader : public Element {
 public:
  std::string class_name() const override { return "CheckIPHeader"; }
  Status Lower(LowerContext& ctx, int in_port) override;
};

// Decrements the IP TTL (Click's DecIPTTL).
class DecIpTtl : public Element {
 public:
  std::string class_name() const override { return "DecIPTTL"; }
  Status Lower(LowerContext& ctx, int in_port) override;
};

// Rewrites fixed header fields (SetIPAddress / SetTCPDstPort style).
class SetField : public Element {
 public:
  SetField(ir::HeaderField field, uint64_t value)
      : field_(field), value_(value) {}
  std::string class_name() const override { return "SetField"; }
  Status Lower(LowerContext& ctx, int in_port) override;

 private:
  ir::HeaderField field_;
  uint64_t value_;
};

// --- Classification ---------------------------------------------------------------

// IPClassifier-lite: routes packets to the output of the first matching
// rule; a rule is a conjunction of (header field == value) terms. The last
// output (rules.size()) is the fall-through for unmatched packets.
class Classifier : public Element {
 public:
  struct Term {
    ir::HeaderField field;
    uint64_t value;
  };
  using Rule = std::vector<Term>;
  using Rules = std::vector<Rule>;

  explicit Classifier(Rules rules) : rules_(std::move(rules)) {}
  std::string class_name() const override { return "Classifier"; }
  Status Lower(LowerContext& ctx, int in_port) override;

  // Convenience terms.
  static Term Tcp() { return {ir::HeaderField::kIpProto, net::kIpProtoTcp}; }
  static Term Udp() { return {ir::HeaderField::kIpProto, net::kIpProtoUdp}; }
  static Term DstPort(uint16_t port) {
    return {ir::HeaderField::kDstPort, port};
  }
  static Term SrcPort(uint16_t port) {
    return {ir::HeaderField::kSrcPort, port};
  }

 private:
  Rules rules_;
};

// --- Measurement -------------------------------------------------------------------

// Counts packets passing through (Click's Counter). The count lives in a
// global; reads are offloadable, the increment follows Gallium's placement
// rules.
class Counter : public Element {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string class_name() const override { return "Counter"; }
  Status Declare(frontend::MiddleboxBuilder& mb) override;
  Status Lower(LowerContext& ctx, int in_port) override;

  const std::string& counter_name() const { return name_; }

 private:
  std::string name_;
  frontend::GlobalHandle global_;
};

// --- Stateful lookup ----------------------------------------------------------------

// A five-tuple membership filter backed by an annotated HashMap: output 0 on
// hit, output 1 on miss (the building block of the firewall's whitelist and
// the proxy's port list).
class FlowLookup : public Element {
 public:
  FlowLookup(std::string map_name, uint64_t max_entries)
      : map_name_(std::move(map_name)), max_entries_(max_entries) {}
  std::string class_name() const override { return "FlowLookup"; }
  Status Declare(frontend::MiddleboxBuilder& mb) override;
  Status Lower(LowerContext& ctx, int in_port) override;

  const std::string& map_name() const { return map_name_; }

 private:
  std::string map_name_;
  uint64_t max_entries_;
  frontend::HashMapHandle map_;
};

}  // namespace gallium::click
