// A Click-style element graph (Morris et al., SOSP'99) lowered to Gallium IR.
//
// The paper's input middleboxes are Click configurations: packet-processing
// *elements* (Classifier, CheckIPHeader, Counter, ...) wired into a push
// graph. This layer provides that authoring model: compose elements, connect
// their ports, and Lower() inlines the graph — following Click's push
// semantics — into a single verified ir::Function that the Gallium compiler
// partitions like any other middlebox.
//
//   ElementGraph graph;
//   auto* check = graph.Add<CheckIpHeader>();
//   auto* classify = graph.Add<Classifier>(Classifier::Rules{...});
//   auto* out = graph.Add<ToDevice>(1);
//   graph.Connect(check, 0, classify);
//   graph.Connect(classify, 0, out);
//   ...
//   auto spec = graph.Lower("my_gateway", check);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frontend/middlebox_builder.h"
#include "mbox/middleboxes.h"
#include "util/status.h"

namespace gallium::click {

class ElementGraph;

// Lowering context handed to each element: the underlying builder plus the
// continuation into the element's downstream neighbors.
class LowerContext {
 public:
  LowerContext(ElementGraph* graph, frontend::MiddleboxBuilder* mb)
      : graph_(graph), mb_(mb) {}

  frontend::MiddleboxBuilder& mb() { return *mb_; }
  ir::IrBuilder& b() { return mb_->b(); }

  // Emits the element connected to `from`'s output port `out_port` (inline
  // expansion, Click push semantics). Unconnected ports drop the packet.
  Status PushTo(const class Element* from, int out_port);

 private:
  friend class ElementGraph;
  ElementGraph* graph_;
  frontend::MiddleboxBuilder* mb_;
  int depth_ = 0;
};

// Base class of all elements. Elements are stateless at lowering time
// except for the IR state handles they declare in Declare().
class Element {
 public:
  virtual ~Element() = default;

  // Click class name, e.g. "Classifier" (used in diagnostics and rendering).
  virtual std::string class_name() const = 0;

  // Declares IR state (maps/globals) before any lowering. Default: none.
  virtual Status Declare(frontend::MiddleboxBuilder& mb) {
    (void)mb;
    return Status::Ok();
  }

  // Emits this element's statements for a packet arriving on `in_port` and
  // pushes to downstream elements via ctx.PushTo(this, out_port).
  virtual Status Lower(LowerContext& ctx, int in_port) = 0;

  int id() const { return id_; }

 private:
  friend class ElementGraph;
  int id_ = -1;
};

class ElementGraph {
 public:
  template <typename T, typename... Args>
  T* Add(Args&&... args) {
    auto element = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = element.get();
    raw->id_ = static_cast<int>(elements_.size());
    elements_.push_back(std::move(element));
    return raw;
  }

  // Wires `from`'s output `out_port` to `to`'s input `in_port`.
  void Connect(Element* from, int out_port, Element* to, int in_port = 0);

  // Lowers the graph into a middlebox spec, starting at `input` (the
  // element that receives packets from the network).
  Result<mbox::MiddleboxSpec> Lower(const std::string& name, Element* input);

  // Renders a Click-config-style description ("check :: CheckIPHeader; ...").
  std::string RenderConfig() const;

  int num_elements() const { return static_cast<int>(elements_.size()); }

 private:
  friend class LowerContext;
  struct Edge {
    int from_element;
    int out_port;
    int to_element;
    int in_port;
  };

  const Edge* FindEdge(int from_element, int out_port) const;

  std::vector<std::unique_ptr<Element>> elements_;
  std::vector<Edge> edges_;
};

}  // namespace gallium::click
