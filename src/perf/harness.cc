#include "perf/harness.h"

#include <chrono>
#include <cmath>

#include "workload/packet_gen.h"

namespace gallium::perf {

namespace {

runtime::ExecStats DivideStats(const runtime::ExecStats& total, int count) {
  runtime::ExecStats mean;
  if (count == 0) return mean;
  mean.insts = total.insts / count;
  mean.alu_ops = total.alu_ops / count;
  mean.header_ops = total.header_ops / count;
  mean.map_lookups = total.map_lookups / count;
  mean.map_updates = total.map_updates / count;
  mean.vector_ops = total.vector_ops / count;
  mean.global_ops = total.global_ops / count;
  mean.payload_ops = total.payload_ops / count;
  mean.branches = total.branches / count;
  return mean;
}

}  // namespace

Result<MiddleboxProfile> ProfileMiddlebox(
    const std::function<Result<mbox::MiddleboxSpec>()>& build, int num_flows,
    uint64_t seed, telemetry::Timeline* timeline) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  auto wall_us = [&t0] {
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
        .count();
  };
  double phase_start = 0;
  auto end_phase = [&](const char* phase_name) {
    if (timeline == nullptr) return;
    const double now = wall_us();
    timeline->CompleteEvent(phase_name, "profile", phase_start,
                            now - phase_start);
    phase_start = now;
  };

  GALLIUM_ASSIGN_OR_RETURN(mbox::MiddleboxSpec spec_sw, build());
  GALLIUM_ASSIGN_OR_RETURN(mbox::MiddleboxSpec spec_off, build());

  runtime::SoftwareMiddlebox software(spec_sw);
  runtime::OffloadedOptions options;
  options.serialize_wire = false;  // profiling loop, wire cost modeled later
  GALLIUM_ASSIGN_OR_RETURN(auto offloaded, runtime::OffloadedMiddlebox::Create(
                                               spec_off, options));
  end_phase("profile.build_runtimes");

  MiddleboxProfile profile;
  profile.name = spec_sw.name;

  Rng rng(seed);
  // iperf-like long TCP flows (the paper's microbenchmark runs ten parallel
  // connections): established flows dominate, so the fast-path fraction
  // reflects steady state (~99.9% for NAT/LB).
  workload::TraceOptions trace_options;
  trace_options.num_flows = num_flows;
  trace_options.min_flow_bytes = 500000;
  trace_options.max_flow_bytes = 2000000;
  const workload::Trace trace = workload::MakeTrace(rng, trace_options);
  end_phase("profile.generate_trace");

  runtime::ExecStats baseline_total;
  runtime::ExecStats server_total;
  int slow_packets = 0;
  int synced_packets = 0;
  double sync_latency_total = 0;
  uint64_t now_ms = 0;

  for (const net::Packet& pkt : trace.packets) {
    ++now_ms;
    net::Packet sw_pkt = pkt;
    auto sw_out = software.Process(sw_pkt, now_ms);
    if (!sw_out.status.ok()) return sw_out.status;
    baseline_total += sw_out.stats;

    auto off_out = offloaded->Process(pkt, now_ms);
    if (!off_out.status.ok()) return off_out.status;
    if (!off_out.fast_path) {
      ++slow_packets;
      server_total += off_out.server_stats;
      if (off_out.state_synced) {
        ++synced_packets;
        sync_latency_total += off_out.sync_latency_us;
      }
    }
  }

  end_phase("profile.replay");

  const int total = static_cast<int>(trace.packets.size());
  profile.baseline_stats = DivideStats(baseline_total, total);
  profile.server_slow_stats = DivideStats(server_total, slow_packets);
  profile.fast_path_fraction =
      total == 0 ? 1.0 : 1.0 - static_cast<double>(slow_packets) / total;
  profile.sync_per_slow_packet =
      slow_packets == 0 ? 0.0
                        : static_cast<double>(synced_packets) / slow_packets;
  profile.mean_sync_latency_us =
      synced_packets == 0 ? 0.0 : sync_latency_total / synced_packets;
  return profile;
}

double FastClickLatencyUs(const CostModel& cost,
                          const runtime::ExecStats& stats, int wire_bytes) {
  const double processing =
      cost.PacketServerUs(stats, wire_bytes, /*payload_bytes=*/0);
  return cost.endhost_stack_us                       // sender stack
         + cost.WireUs(wire_bytes)                   // host -> switch
         + cost.switch_pipeline_us                   // plain forwarding
         + cost.WireUs(wire_bytes)                   // switch -> middlebox
         + cost.nic_latency_us + processing + cost.nic_latency_us
         + cost.WireUs(wire_bytes)                   // middlebox -> switch
         + cost.switch_pipeline_us
         + cost.WireUs(wire_bytes)                   // switch -> receiver
         + cost.endhost_stack_us;                    // receiver stack
}

double OffloadedFastPathLatencyUs(const CostModel& cost, int wire_bytes) {
  return cost.endhost_stack_us + cost.WireUs(wire_bytes) +
         cost.switch_pipeline_us  // pre+post run inside the pipeline pass
         + cost.WireUs(wire_bytes) + cost.endhost_stack_us;
}

double OffloadedFastPathLatencyUs(const CostModel& cost, int wire_bytes,
                                  int stages_occupied) {
  return cost.endhost_stack_us + cost.WireUs(wire_bytes) +
         cost.SwitchTraversalUs(stages_occupied) + cost.WireUs(wire_bytes) +
         cost.endhost_stack_us;
}

double ClickThroughputGbps(const CostModel& cost,
                           const runtime::ExecStats& stats, int wire_bytes,
                           int cores) {
  const double cycles = cost.PacketCycles(stats, wire_bytes, 0);
  const double capacity_pps = cores * cost.CorePps(cycles);
  const double line_pps = cost.link_gbps * 1e9 / (wire_bytes * 8.0);
  const double offered_pps =
      std::min(cost.sender_pps_millions * 1e6, line_pps);
  const double achieved = std::min(offered_pps, capacity_pps);
  return achieved * wire_bytes * 8.0 / 1e9;
}

double OffloadedThroughputGbps(const CostModel& cost,
                               const MiddleboxProfile& profile,
                               int wire_bytes) {
  const double line_pps = cost.link_gbps * 1e9 / (wire_bytes * 8.0);
  const double offered_pps =
      std::min(cost.sender_pps_millions * 1e6, line_pps);
  double achieved = offered_pps;

  const double slow_fraction = 1.0 - profile.fast_path_fraction;
  if (slow_fraction > 0) {
    // Slow-path packets are bounded by the single server core; they throttle
    // the total only when their share exceeds what the core sustains.
    const double slow_cycles =
        cost.PacketCycles(profile.server_slow_stats, wire_bytes, 0);
    const double server_pps = cost.CorePps(slow_cycles);
    achieved = std::min(achieved, server_pps / slow_fraction);
  }
  return achieved * wire_bytes * 8.0 / 1e9;
}

void StampTrace(const CostModel& cost, int wire_bytes,
                telemetry::PacketTrace* trace) {
  double cursor = 0;
  for (telemetry::TraceHop& hop : trace->hops) {
    if (hop.duration_us == 0) {
      if (hop.stage == telemetry::kHopSwitchPre ||
          hop.stage == telemetry::kHopSwitchPost) {
        hop.duration_us = hop.stages_occupied > 0
                              ? cost.SwitchTraversalUs(hop.stages_occupied)
                              : cost.switch_pipeline_us;
      } else if (hop.stage == telemetry::kHopWireToServer ||
                 hop.stage == telemetry::kHopWireToSwitch) {
        // Gallium header bytes ride the original packet; the wire hop costs
        // serialization of packet + transfer header plus one NIC traversal.
        hop.duration_us =
            cost.WireUs(wire_bytes + hop.transfer_bytes) + cost.nic_latency_us;
      } else {
        // Server-side hops (full pass, degraded pass, cache recovery):
        // priced by the op counts the interpreter recorded there.
        hop.duration_us = cost.PacketServerUs(
            runtime::FromOpCounts(hop.ops), wire_bytes, /*payload_bytes=*/0);
      }
    }
    hop.ts_us = cursor;
    cursor += hop.duration_us;
  }
  trace->total_us = cursor;
  // Fault events recorded without a timestamp land at the end of the packet
  // (the runtime stamps sync-path events relative to the commit hop).
  for (telemetry::TraceFaultEvent& ev : trace->events) {
    if (ev.ts_us == 0) ev.ts_us = cursor;
  }
}

Measurement Jittered(double base, int trials, double rel_stddev, Rng& rng) {
  double sum = 0, sum_sq = 0;
  for (int t = 0; t < trials; ++t) {
    const double u1 = std::max(1e-12, rng.NextDouble());
    const double u2 = rng.NextDouble();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    const double sample = base * (1.0 + gauss * rel_stddev);
    sum += sample;
    sum_sq += sample * sample;
  }
  Measurement m;
  m.mean = sum / trials;
  const double var = std::max(0.0, sum_sq / trials - m.mean * m.mean);
  m.stdev = std::sqrt(var);
  return m;
}

}  // namespace gallium::perf
