// Measurement harness: composes packet-level runtime facts (op counts,
// fast-path fractions, sync latencies) with the calibrated cost model into
// the end-to-end numbers the paper reports — latency (Table 2), TCP
// microbenchmark throughput (Fig. 7), and the inputs of the realistic
// workload simulations (Figs. 8 & 9).
#pragma once

#include <functional>
#include <vector>

#include "mbox/middleboxes.h"
#include "perf/cost_model.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"
#include "util/rng.h"

namespace gallium::perf {

// Representative per-packet behavior of one middlebox under a TCP workload,
// measured by running a trace through both runtimes.
struct MiddleboxProfile {
  std::string name;
  runtime::ExecStats baseline_stats;     // mean per-packet ops, software
  runtime::ExecStats server_slow_stats;  // mean per-slow-packet server ops
  double fast_path_fraction = 1.0;       // offloaded: share never hitting server
  double sync_per_slow_packet = 0.0;     // share of slow packets that sync
  double mean_sync_latency_us = 0.0;
};

// Runs `num_flows` TCP flows through both runtimes and averages. When
// `timeline` is non-null, the harness records its phases (trace generation,
// software pass, offloaded pass) as wall-clock slices on it, so a profiling
// sweep over many middleboxes renders as one Perfetto timeline.
Result<MiddleboxProfile> ProfileMiddlebox(
    const std::function<Result<mbox::MiddleboxSpec>()>& build, int num_flows,
    uint64_t seed = 7, telemetry::Timeline* timeline = nullptr);

// --- Trace stamping ----------------------------------------------------------

// Prices every hop of a packet trace with the cost model: switch passes by
// the RMT stages they occupied, wire hops by serialization + NIC latency,
// server hops by the op counts the interpreter recorded. Hops that already
// carry a duration (sync commits: the runtime stamps the modeled
// control-plane latency natively) are left alone. Hop timestamps become
// cumulative offsets from the packet start and `total_us` is filled in.
void StampTrace(const CostModel& cost, int wire_bytes,
                telemetry::PacketTrace* trace);

// --- Latency (Table 2) -----------------------------------------------------

// End-to-end one-way latency through the FastClick deployment:
// endhost -> switch -> middlebox server -> switch -> endhost.
double FastClickLatencyUs(const CostModel& cost,
                          const runtime::ExecStats& stats, int wire_bytes);

// End-to-end latency through the Gallium deployment's fast path:
// endhost -> switch (pre+post in-pipeline) -> endhost.
double OffloadedFastPathLatencyUs(const CostModel& cost, int wire_bytes);

// Stage-aware variant: the pipeline traversal is priced by the stages the
// RMT placement actually occupies instead of the flat full-pipe constant.
double OffloadedFastPathLatencyUs(const CostModel& cost, int wire_bytes,
                                  int stages_occupied);

// --- Throughput (Fig. 7) ------------------------------------------------------

// Achievable throughput of the FastClick middlebox on `cores` cores for
// fixed-size packets.
double ClickThroughputGbps(const CostModel& cost,
                           const runtime::ExecStats& stats, int wire_bytes,
                           int cores);

// Achievable throughput of the offloaded middlebox (server restricted to
// one core, as in §6.3's setup).
double OffloadedThroughputGbps(const CostModel& cost,
                               const MiddleboxProfile& profile,
                               int wire_bytes);

// Mean and stddev over `trials` jittered measurements (error bars).
struct Measurement {
  double mean = 0;
  double stdev = 0;
};
Measurement Jittered(double base, int trials, double rel_stddev, Rng& rng);

}  // namespace gallium::perf
