// Calibrated performance model.
//
// The paper's testbed (Xeon E5-2680 @2.5 GHz, Mellanox CX-4 100 Gb NICs,
// Barefoot Tofino) is replaced by explicit cost arithmetic. Constants are
// calibrated so the *baseline* (FastClick) lands in the paper's measured
// ranges — ~23 µs end-to-end latency, tens of Gb/s per 4 cores — and the
// offloaded path differs from it by exactly the effects Gallium changes:
// which packets touch the server, how many instructions run there, and how
// often control-plane synchronization happens. See EXPERIMENTS.md for the
// calibration notes.
#pragma once

#include <cstdint>

#include "rmt/placement.h"
#include "runtime/interpreter.h"

namespace gallium::perf {

struct CostModel {
  // --- Server ------------------------------------------------------------------
  double server_ghz = 2.5;  // Xeon E5-2680

  // Fixed per-packet driver/framework overhead (DPDK rx+tx, FastClick
  // scheduling) and the per-byte touch cost (checksum/copy passes).
  double cycles_pkt_fixed = 200.0;
  double cycles_per_byte = 0.75;

  // Per-IR-operation costs (cache-resident hash map, header parsing, ALU).
  double cycles_alu = 2.0;
  double cycles_header_op = 6.0;
  double cycles_map_lookup = 120.0;
  double cycles_map_update = 180.0;
  double cycles_vector_op = 8.0;
  double cycles_global_op = 4.0;
  double cycles_payload_op = 60.0;   // pattern scan setup
  double cycles_payload_per_byte = 0.6;
  double cycles_branch = 1.5;

  // --- Devices / wires ------------------------------------------------------------
  double link_gbps = 100.0;
  double switch_pipeline_us = 0.8;   // Tofino ingress->egress, full pipeline
  // Stage-resolved decomposition of switch_pipeline_us (RMT backend):
  // parser/deparser plus a per-traversed-stage cost. With the default
  // 12-stage profile, parse + 12 stages reproduces the flat constant.
  double switch_parse_us = 0.2;
  double switch_stage_us = 0.05;
  // Per-pipe packet budget of the match-action clock: an RMT pipeline
  // forwards one packet per clock regardless of program complexity (§2.1).
  double switch_clock_mpps = 1450.0;
  double nic_latency_us = 3.0;       // PCIe + MAC, per NIC traversal
  double endhost_stack_us = 7.5;     // Linux endpoint send or receive path

  // Aggregate packet-generation capability of the sender hosts (Linux
  // stacks, ten iperf streams): limits small-packet throughput.
  double sender_pps_millions = 50.0;

  // --- Control-plane reliability (hardened state sync) --------------------------
  // Mirrors runtime::SyncPolicy: retransmit timeout and exponential backoff
  // of the reliable sync client. Kept here so the analytical latency model
  // can price a faulty control channel the same way the simulated runtime
  // experiences it.
  double control_retry_timeout_us = 500.0;
  double control_backoff_factor = 2.0;
  double control_max_backoff_us = 8000.0;
  // ~135 µs per touched table on a successful delivery (Table 3).
  double control_apply_us = 135.0;

  // --- Derived helpers ---------------------------------------------------------
  // Cycles to process one packet in software given executed-op counts.
  double PacketCycles(const runtime::ExecStats& stats, int wire_bytes,
                      int payload_bytes) const;
  // Server processing time in microseconds.
  double PacketServerUs(const runtime::ExecStats& stats, int wire_bytes,
                        int payload_bytes) const;
  // Wire serialization delay for one packet.
  double WireUs(int wire_bytes) const {
    return wire_bytes * 8.0 / (link_gbps * 1000.0);
  }
  // Packets/second one server core sustains for packets with these costs.
  double CorePps(double cycles_per_packet) const {
    return server_ghz * 1e9 / cycles_per_packet;
  }
  // Modeled output-commit wait for a sync batch touching `tables` tables
  // that needed `retries` retransmissions: each retry waits out the
  // (exponentially backed-off) timeout before the final successful apply.
  double SyncRetryLatencyUs(int tables, int retries) const;
  // Expected sync latency per batch when each delivery (batch or ack) is
  // lost independently with probability `loss`: sum over the retry
  // distribution, truncated at `max_attempts`.
  double ExpectedSyncLatencyUs(int tables, double loss,
                               int max_attempts = 10) const;

  // --- RMT stage-aware hooks (rmt::PlaceTables output) ---------------------------
  // One traversal of a pipeline whose placement occupies `stages_occupied`
  // stages: parse/deparse plus the per-stage cost of every stage up to the
  // highest occupied one (the packet physically crosses all of them).
  double SwitchTraversalUs(int stages_occupied) const {
    return switch_parse_us + switch_stage_us * stages_occupied;
  }
  // Predicted switch-side throughput for a placed program. RMT forwards at
  // the match-action clock whatever the placement looks like; the line rate
  // for `wire_bytes` packets caps it.
  double PredictedSwitchMpps(const rmt::PlacementReport& report,
                             int wire_bytes) const;
  // How many additional copies of this program's per-stage demand the
  // pipeline could co-host (multi-middlebox sharing headroom): floor over
  // stages of free/used for the binding resource. Returns INT_MAX-like
  // large value when the placement is empty.
  int SharingHeadroom(const rmt::PlacementReport& report) const;
};

}  // namespace gallium::perf
