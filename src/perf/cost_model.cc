#include "perf/cost_model.h"

#include <algorithm>
#include <cmath>

namespace gallium::perf {

double CostModel::PacketCycles(const runtime::ExecStats& stats,
                               int wire_bytes, int payload_bytes) const {
  double cycles = cycles_pkt_fixed + cycles_per_byte * wire_bytes;
  cycles += cycles_alu * stats.alu_ops;
  cycles += cycles_header_op * stats.header_ops;
  cycles += cycles_map_lookup * stats.map_lookups;
  cycles += cycles_map_update * stats.map_updates;
  cycles += cycles_vector_op * stats.vector_ops;
  cycles += cycles_global_op * stats.global_ops;
  cycles += stats.payload_ops *
            (cycles_payload_op + cycles_payload_per_byte * payload_bytes);
  cycles += cycles_branch * stats.branches;
  return cycles;
}

double CostModel::PacketServerUs(const runtime::ExecStats& stats,
                                 int wire_bytes, int payload_bytes) const {
  return PacketCycles(stats, wire_bytes, payload_bytes) /
         (server_ghz * 1000.0);
}

double CostModel::SyncRetryLatencyUs(int tables, int retries) const {
  double wait = 0;
  double timeout = control_retry_timeout_us;
  for (int i = 0; i < retries; ++i) {
    wait += timeout;
    timeout = std::min(timeout * control_backoff_factor, control_max_backoff_us);
  }
  // Table 3 shape: per-table up to two tables, sub-linear beyond.
  const double apply =
      tables <= 2 ? control_apply_us * tables
                  : control_apply_us * 2 + (control_apply_us * 0.375) *
                                               (tables - 2);
  return wait + apply;
}

double CostModel::ExpectedSyncLatencyUs(int tables, double loss,
                                        int max_attempts) const {
  loss = std::clamp(loss, 0.0, 0.999);
  double expected = 0;
  double p_reach = 1.0;  // probability the client is still retrying
  for (int r = 0; r < max_attempts; ++r) {
    const double p_success_here = p_reach * (1.0 - loss);
    expected += p_success_here * SyncRetryLatencyUs(tables, r);
    p_reach *= loss;
  }
  // Residual mass: retries exhausted — the runtime gives up and schedules a
  // resync; charge the full backed-off wait.
  expected += p_reach * SyncRetryLatencyUs(tables, max_attempts);
  return expected;
}

double CostModel::PredictedSwitchMpps(const rmt::PlacementReport& report,
                                      int wire_bytes) const {
  // RMT processes one packet per pipeline clock independent of how many
  // stages the program occupies; the wire caps small-packet rates.
  const double line_mpps =
      link_gbps * 1e3 / (std::max(64, wire_bytes) * 8.0);
  (void)report;  // occupancy does not derate a single program's rate
  return std::min(switch_clock_mpps, line_mpps);
}

int CostModel::SharingHeadroom(const rmt::PlacementReport& report) const {
  const rmt::RmtTargetModel& t = report.target;
  int headroom = 1 << 20;
  bool any = false;
  for (const rmt::StageOccupancy& occ : report.stages) {
    if (occ.tables.empty()) continue;
    any = true;
    struct {
      int used, cap;
    } dims[] = {
        {occ.sram_blocks, t.sram_blocks_per_stage},
        {occ.tcam_blocks, t.tcam_blocks_per_stage},
        {occ.hash_units, t.hash_units_per_stage},
        {occ.action_alus, t.action_alus_per_stage},
        {occ.crossbar_bits, t.crossbar_bits_per_stage},
        {occ.num_tables, t.max_tables_per_stage},
    };
    for (const auto& d : dims) {
      if (d.used == 0) continue;
      headroom = std::min(headroom, (d.cap - d.used) / d.used);
    }
  }
  return any ? headroom : (1 << 20);
}

}  // namespace gallium::perf
