#include "perf/cost_model.h"

namespace gallium::perf {

double CostModel::PacketCycles(const runtime::ExecStats& stats,
                               int wire_bytes, int payload_bytes) const {
  double cycles = cycles_pkt_fixed + cycles_per_byte * wire_bytes;
  cycles += cycles_alu * stats.alu_ops;
  cycles += cycles_header_op * stats.header_ops;
  cycles += cycles_map_lookup * stats.map_lookups;
  cycles += cycles_map_update * stats.map_updates;
  cycles += cycles_vector_op * stats.vector_ops;
  cycles += cycles_global_op * stats.global_ops;
  cycles += stats.payload_ops *
            (cycles_payload_op + cycles_payload_per_byte * payload_bytes);
  cycles += cycles_branch * stats.branches;
  return cycles;
}

double CostModel::PacketServerUs(const runtime::ExecStats& stats,
                                 int wire_bytes, int payload_bytes) const {
  return PacketCycles(stats, wire_bytes, payload_bytes) /
         (server_ghz * 1000.0);
}

}  // namespace gallium::perf
