// Executes a parsed Gallium P4 program on packets.
//
// This is the artifact-level validator: tests run the *emitted P4 source*
// (re-parsed by p4/parser.h) against the same packets as the reference
// runtimes and require identical behavior. Table contents and register
// values are installed through the same control-plane shapes a real switch
// would use (entries bound to actions with parameters).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/packet.h"
#include "p4/parser.h"
#include "util/status.h"

namespace gallium::p4::exec {

struct TableEntry {
  std::vector<uint64_t> key;     // in table key-field order
  std::string action;            // action to run on hit
  std::vector<uint64_t> args;    // action parameters
};

class P4Evaluator {
 public:
  explicit P4Evaluator(const ParsedProgram& program);

  // --- Control plane ----------------------------------------------------------
  Status InstallEntry(const std::string& table, TableEntry entry);
  Status SetRegister(const std::string& reg, int index, uint64_t value);

  // --- Data plane ----------------------------------------------------------------
  struct RunResult {
    bool dropped = false;
    int egress_port = -1;          // standard_metadata.egress_spec
    bool gallium_valid = false;    // transfer header emitted?
    uint32_t gallium_cond_bits = 0;
    std::vector<uint32_t> gallium_vars;
  };

  // Loads the packet's headers into the environment, runs the ingress
  // apply block, and writes rewritten header fields back into `pkt`.
  Result<RunResult> RunIngress(net::Packet& pkt);

  // Raw field access for tests.
  uint64_t Field(const std::string& name) const;

 private:
  Result<uint64_t> Eval(const Expr& expr) const;
  Status Exec(const std::vector<StmtPtr>& stmts);
  Status ExecOne(const Stmt& stmt);
  Status ApplyTable(const std::string& name);
  void SetField(const std::string& name, uint64_t value);

  void LoadPacket(const net::Packet& pkt);
  void StorePacket(net::Packet* pkt) const;

  const ParsedProgram& program_;
  std::map<std::string, uint64_t> fields_;
  std::map<std::string, std::vector<TableEntry>> table_entries_;
  std::map<std::string, std::vector<uint64_t>> register_values_;
  std::map<std::string, bool> header_valid_;
  bool dropped_ = false;
  // Action parameters currently in scope (during a hit action).
  const std::map<std::string, uint64_t>* action_args_ = nullptr;
};

}  // namespace gallium::p4::exec
