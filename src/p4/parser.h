// A parser for the P4-16 subset that Gallium's emitter produces.
//
// The point of parsing our own output is fidelity: the evaluator
// (p4/evaluator.h) executes the *emitted source text* — not the in-memory
// AST it was printed from — so tests can prove that the deployable artifact
// itself behaves like the input middlebox. The grammar covers exactly what
// EmitP4 generates: header/struct declarations, parser states (recorded but
// replayed structurally), registers, actions with parameters, exact-match
// tables, and an ingress apply block of assignments, ifs, table applies,
// register reads/writes, drops, and header validity operations.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace gallium::p4::exec {

// --- Expressions ----------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    kLiteral,   // value
    kField,     // dotted name, e.g. hdr.ipv4.srcAddr
    kUnaryNot,  // ~a
    kBinary,    // a <op> b
    kTernary,   // c ? a : b
    kCast,      // (bit<N>)a
    kIsValid,   // hdr.x.isValid(); header name in `field`
  };
  enum class Op : uint8_t {
    kAdd, kSub, kAnd, kOr, kXor, kShl, kShr,
    kEq, kNe, kLt, kLe, kGt, kGe,
  };

  Kind kind = Kind::kLiteral;
  uint64_t literal = 0;
  std::string field;
  Op op = Op::kAdd;
  int cast_bits = 0;
  ExprPtr a, b, c;
};

// --- Statements -----------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : uint8_t {
    kAssign,      // field = expr;
    kIf,          // if (cond) {..} else {..}
    kApplyTable,  // tbl.apply();
    kRegRead,     // reg.read(field, index);
    kRegWrite,    // reg.write(index, expr);
    kMarkDrop,    // mark_to_drop(standard_metadata);
    kSetValid,    // hdr.x.setValid();
    kSetInvalid,  // hdr.x.setInvalid();
  };

  Kind kind = Kind::kAssign;
  std::string target;  // lhs field / table / register / header name
  ExprPtr value;       // rhs, condition, or write value
  ExprPtr index;       // register index
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
};

// --- Declarations ----------------------------------------------------------------

struct ActionDecl {
  std::string name;
  std::vector<std::pair<std::string, int>> params;  // (name, bits)
  std::vector<StmtPtr> body;
};

struct TableDecl {
  std::string name;
  std::vector<std::string> key_fields;  // match key field names
  bool lpm = false;                     // lpm match kind on the key
  std::vector<std::string> actions;
  std::string default_action;
  int size = 0;
};

struct RegisterDecl {
  std::string name;
  int bits = 32;
  int size = 1;
};

struct ParsedProgram {
  // Fully qualified field name ("hdr.ipv4.srcAddr", "meta.s0_b32") -> bits.
  std::map<std::string, int> field_bits;
  std::vector<RegisterDecl> registers;
  std::vector<ActionDecl> actions;
  std::vector<TableDecl> tables;
  std::vector<StmtPtr> ingress_apply;

  const ActionDecl* FindAction(const std::string& name) const;
  const TableDecl* FindTable(const std::string& name) const;
  const RegisterDecl* FindRegister(const std::string& name) const;
};

// Parses emitted P4 source. Returns a structured program or a syntax error
// with line information.
Result<std::unique_ptr<ParsedProgram>> ParseP4(const std::string& source);

}  // namespace gallium::p4::exec
