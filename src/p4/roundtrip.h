// Round-trip printer for the parsed P4 AST (Gauntlet-style translation
// validation): PrintParsed reconstructs P4 source that the parser accepts and
// that parses back to an identical program. Tests assert the fixpoint
// print(parse(print(parse(src)))) == print(parse(src)) over the emitted
// artifacts and a fuzz corpus, which pins the emitter, the grammar, and the
// AST to one another — a silent mismatch in any of the three breaks the
// equality.
#pragma once

#include <string>

#include "p4/parser.h"

namespace gallium::p4::exec {

// Prints a parsed program back to P4 source. The output is canonical:
// declarations are grouped (headers, metadata struct, control members in
// parse order), expressions fully parenthesized, literals decimal.
std::string PrintParsed(const ParsedProgram& program);

}  // namespace gallium::p4::exec
