#include "p4/codegen.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/strings.h"

namespace gallium::p4 {

using ir::HeaderField;
using ir::InstId;
using ir::Instruction;
using ir::Opcode;
using ir::Reg;
using partition::Part;

namespace {

// Rounds a register width to the P4 field width we allocate.
int SlotBits(ir::Width w) {
  switch (w) {
    case ir::Width::kU1: return 1;
    case ir::Width::kU8: return 8;
    case ir::Width::kU16: return 16;
    case ir::Width::kU32: return 32;
    case ir::Width::kU64: return 64;
  }
  return 32;
}

std::string HeaderFieldLvalue(HeaderField f) {
  switch (f) {
    case HeaderField::kEthSrc: return "hdr.ethernet.srcAddr";
    case HeaderField::kEthDst: return "hdr.ethernet.dstAddr";
    case HeaderField::kEthType: return "hdr.ethernet.etherType";
    case HeaderField::kIpSrc: return "hdr.ipv4.srcAddr";
    case HeaderField::kIpDst: return "hdr.ipv4.dstAddr";
    case HeaderField::kIpProto: return "hdr.ipv4.protocol";
    case HeaderField::kIpTtl: return "hdr.ipv4.ttl";
    case HeaderField::kSrcPort: return "meta.l4_sport";
    case HeaderField::kDstPort: return "meta.l4_dport";
    case HeaderField::kTcpFlags: return "hdr.tcp.flags";
    case HeaderField::kTcpSeq: return "hdr.tcp.seqNo";
    case HeaderField::kTcpAck: return "hdr.tcp.ackNo";
    case HeaderField::kIngressPort: return "standard_metadata.ingress_port";
  }
  return "/*?*/";
}

}  // namespace

MetadataAllocation AllocateMetadata(const ir::Function& fn,
                                    const partition::PartitionPlan& plan) {
  MetadataAllocation alloc;
  alloc.slot_of_reg.assign(fn.num_regs(), "");

  // Which registers live in switch metadata: defined by a statement that
  // runs on the switch (pre/post/replicable).
  std::vector<bool> resident(fn.num_regs(), false);
  // First and last use position (by InstId order, a good proxy for program
  // order in builder-produced functions).
  std::vector<InstId> first_def(fn.num_regs(), -1);
  std::vector<InstId> last_use(fn.num_regs(), -1);

  for (const ir::BasicBlock& bb : fn.blocks()) {
    for (const Instruction& inst : bb.insts) {
      const bool on_switch =
          plan.assignment[inst.id] != Part::kNonOffloaded ||
          (inst.id < static_cast<InstId>(plan.replicable.size()) &&
           plan.replicable[inst.id]);
      for (Reg r : inst.dsts) {
        if (on_switch) resident[r] = true;
        if (first_def[r] < 0 || inst.id < first_def[r]) first_def[r] = inst.id;
      }
      for (const ir::Value& v : inst.args) {
        if (v.is_reg()) last_use[v.reg] = std::max(last_use[v.reg], inst.id);
      }
    }
  }
  // Transferred registers must stay live until the handoff at path end;
  // values returning from the server (to_switch) are loaded into metadata at
  // the start of the post pass, so they are resident for the whole pass.
  for (Reg r : plan.to_server.cond_regs) last_use[r] = fn.num_insts();
  for (Reg r : plan.to_server.var_regs) last_use[r] = fn.num_insts();
  // Return-transfer registers are loaded by the post-pass preamble before
  // any statement runs, and the two passes re-execute replicable reads at
  // their original positions — so these slots must span the whole program
  // and never be shared.
  for (Reg r : plan.to_switch.cond_regs) {
    resident[r] = true;
    first_def[r] = 0;
    last_use[r] = fn.num_insts();
  }
  for (Reg r : plan.to_switch.var_regs) {
    resident[r] = true;
    first_def[r] = 0;
    last_use[r] = fn.num_insts();
  }

  // Linear-scan slot allocation: slots are per-width free lists; a slot
  // frees when the register holding it has passed its last use.
  struct Slot {
    std::string name;
    int bits;
  };
  std::map<int, std::vector<Slot>> free_slots;   // width -> available
  std::vector<std::pair<InstId, Slot>> active;   // (expiry, slot)
  int next_slot = 0;

  std::vector<std::pair<InstId, Reg>> defs;
  for (Reg r = 0; r < static_cast<Reg>(fn.num_regs()); ++r) {
    if (!resident[r] || first_def[r] < 0) continue;
    // Dead definitions (no use) still need a slot: the producing statement
    // is emitted and must have a declared destination field.
    if (last_use[r] < first_def[r]) last_use[r] = first_def[r];
    defs.push_back({first_def[r], r});
  }
  std::sort(defs.begin(), defs.end());

  for (const auto& [def_pos, r] : defs) {
    // Expire slots whose holder is dead by now.
    for (auto it = active.begin(); it != active.end();) {
      if (it->first < def_pos) {
        free_slots[it->second.bits].push_back(it->second);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    const int bits = SlotBits(fn.reg_width(r));
    Slot slot;
    auto& pool = free_slots[bits];
    if (!pool.empty()) {
      slot = pool.back();
      pool.pop_back();
    } else {
      slot = Slot{"s" + std::to_string(next_slot++) + "_b" +
                      std::to_string(bits),
                  bits};
      alloc.slots.push_back(P4Field{slot.name, bits});
      alloc.total_bits += bits;
    }
    alloc.slot_of_reg[r] = slot.name;
    active.push_back({last_use[r], slot});
  }
  return alloc;
}

namespace {

// Shared emission state for one program.
class Emitter {
 public:
  Emitter(const ir::Function& fn, const partition::PartitionPlan& plan,
          const P4GenOptions& options)
      : fn_(fn),
        plan_(plan),
        options_(options),
        cfg_(fn),
        alloc_(AllocateMetadata(fn, plan)) {}

  Result<P4Program> Generate();

 private:
  bool Replicable(InstId id) const {
    return id < static_cast<InstId>(plan_.replicable.size()) &&
           plan_.replicable[id];
  }
  bool OnPart(const Instruction& inst, Part part) const {
    return plan_.assignment[inst.id] == part || Replicable(inst.id);
  }

  std::string RegRef(Reg r) const {
    if (!alloc_.slot_of_reg[r].empty()) return "meta." + alloc_.slot_of_reg[r];
    return "meta.x_" + SanitizeIdentifier(fn_.reg_name(r));
  }
  std::string ValueRef(const ir::Value& v) const {
    if (v.is_imm()) return std::to_string(v.imm);
    return RegRef(v.reg);
  }

  // Condition expression for a branch during the given pass.
  // Returns empty if the condition is unavailable in this pass.
  std::string CondExpr(const ir::Value& cond, Part part) const;

  void EmitInstruction(const Instruction& inst, Part part,
                       std::vector<std::string>* out);
  // Structured emission of [block, stop) for one partition pass.
  void EmitRegion(int block, int stop, Part part, int depth,
                  std::vector<std::string>* out,
                  std::set<int>* visited);

  void BuildHeadersAndParser(P4Program* program) const;
  void BuildStateObjects(P4Program* program);
  void BuildHandoff(std::vector<std::string>* out) const;

  const ir::Function& fn_;
  const partition::PartitionPlan& plan_;
  P4GenOptions options_;
  analysis::CfgInfo cfg_;
  MetadataAllocation alloc_;

  std::vector<std::string> table_of_map_;    // map index -> table name
  std::vector<std::string> reg_of_global_;   // global index -> register name
  std::vector<std::string> table_of_vector_; // vector index -> table name
  P4Program* program_ = nullptr;
};

std::string Emitter::CondExpr(const ir::Value& cond, Part part) const {
  if (cond.is_imm()) return std::to_string(cond.imm) + " != 0";
  const Reg r = cond.reg;
  // Defined on this device in this pass?
  for (const ir::BasicBlock& bb : fn_.blocks()) {
    for (const Instruction& inst : bb.insts) {
      for (Reg d : inst.dsts) {
        if (d == r && (OnPart(inst, part))) {
          // Branch semantics are truthiness, not equality with one — wide
          // registers may hold any non-zero value.
          return RegRef(r) + " != 0";
        }
      }
    }
  }
  // Carried in the transfer header?
  const partition::TransferSpec& spec =
      part == Part::kPost ? plan_.to_switch : plan_.to_server;
  const int bit = spec.CondBit(r);
  if (part == Part::kPost && bit >= 0) {
    return "((hdr.gallium.cond_bits >> " + std::to_string(bit) +
           ") & 1) == 1";
  }
  return "";  // unavailable: the server resolves this branch
}

void Emitter::EmitInstruction(const Instruction& inst, Part part,
                              std::vector<std::string>* out) {
  auto dst = [&] { return RegRef(inst.dsts[0]); };
  switch (inst.op) {
    case Opcode::kAssign:
      out->push_back(dst() + " = " + ValueRef(inst.args[0]) + ";");
      break;
    case Opcode::kAlu: {
      const std::string a = ValueRef(inst.args[0]);
      const std::string b =
          inst.args.size() > 1 ? ValueRef(inst.args[1]) : "0";
      std::string expr;
      switch (inst.alu) {
        case ir::AluOp::kAdd: expr = a + " + " + b; break;
        case ir::AluOp::kSub: expr = a + " - " + b; break;
        case ir::AluOp::kAnd: expr = a + " & " + b; break;
        case ir::AluOp::kOr: expr = a + " | " + b; break;
        case ir::AluOp::kXor: expr = a + " ^ " + b; break;
        case ir::AluOp::kNot: expr = "~" + a; break;
        case ir::AluOp::kShl: expr = a + " << " + b; break;
        case ir::AluOp::kShr: expr = a + " >> " + b; break;
        case ir::AluOp::kEq:
        case ir::AluOp::kNe:
        case ir::AluOp::kLt:
        case ir::AluOp::kLe:
        case ir::AluOp::kGt:
        case ir::AluOp::kGe: {
          static const std::map<ir::AluOp, std::string> kCmp = {
              {ir::AluOp::kEq, "=="}, {ir::AluOp::kNe, "!="},
              {ir::AluOp::kLt, "<"},  {ir::AluOp::kLe, "<="},
              {ir::AluOp::kGt, ">"},  {ir::AluOp::kGe, ">="}};
          out->push_back(dst() + " = (" + a + " " + kCmp.at(inst.alu) + " " +
                         b + ") ? (bit<1>)1 : (bit<1>)0;");
          return;
        }
        default:
          expr = "0 /* unsupported op " + std::string(ir::AluOpName(inst.alu)) +
                 " cannot be offloaded */";
      }
      const int dst_bits = SlotBits(fn_.reg_width(inst.dsts[0]));
      out->push_back(dst() + " = (bit<" + std::to_string(dst_bits) + ">)(" +
                     expr + ");");
      break;
    }
    case Opcode::kHeaderRead:
      out->push_back(dst() + " = (bit<" +
                     std::to_string(SlotBits(fn_.reg_width(inst.dsts[0]))) +
                     ">)" + HeaderFieldLvalue(inst.field) + ";");
      break;
    case Opcode::kHeaderWrite: {
      const std::string value =
          "(bit<" +
          std::to_string(ir::BitWidth(ir::HeaderFieldWidth(inst.field))) +
          ">)" + ValueRef(inst.args[0]);
      out->push_back(HeaderFieldLvalue(inst.field) + " = " + value + ";");
      // Transport ports live behind the protocol demux: the write lands in
      // the metadata alias above and must reach whichever L4 header the
      // packet actually carries.
      if (inst.field == HeaderField::kSrcPort) {
        out->push_back("if (hdr.tcp.isValid()) { hdr.tcp.srcPort = " + value +
                       "; }");
        out->push_back("if (hdr.udp.isValid()) { hdr.udp.srcPort = " + value +
                       "; }");
      } else if (inst.field == HeaderField::kDstPort) {
        out->push_back("if (hdr.tcp.isValid()) { hdr.tcp.dstPort = " + value +
                       "; }");
        out->push_back("if (hdr.udp.isValid()) { hdr.udp.dstPort = " + value +
                       "; }");
      }
      break;
    }
    case Opcode::kMapGet: {
      const std::string& table = table_of_map_[inst.state];
      // Copy the lookup key into the table's key metadata, then apply;
      // the write-back shadow is consulted first when its bit is set
      // (§4.3.3).
      for (size_t k = 0; k < inst.args.size(); ++k) {
        out->push_back("meta." + table + "_key" + std::to_string(k) + " = " +
                       ValueRef(inst.args[k]) + ";");
      }
      out->push_back("meta." + table + "_wb_hit = 0;");
      out->push_back("wb_active_" + table + ".read(meta." + table +
                     "_wb_active, 0);");
      out->push_back("if (meta." + table + "_wb_active == 1) { tbl_" + table +
                     "_wb.apply(); }");
      out->push_back("if (meta." + table + "_wb_hit == 0) { tbl_" + table +
                     ".apply(); }");
      out->push_back(RegRef(inst.dsts[0]) + " = meta." + table + "_hit;");
      for (size_t d = 1; d < inst.dsts.size(); ++d) {
        out->push_back(RegRef(inst.dsts[d]) + " = meta." + table + "_v" +
                       std::to_string(d - 1) + ";");
      }
      break;
    }
    case Opcode::kGlobalRead:
      out->push_back(reg_of_global_[inst.state] + ".read(" + dst() + ", 0);");
      break;
    case Opcode::kGlobalWrite:
      out->push_back(reg_of_global_[inst.state] + ".write(0, " +
                     ValueRef(inst.args[0]) + ");");
      break;
    case Opcode::kVectorGet: {
      const std::string& table = table_of_vector_[inst.state];
      out->push_back("meta." + table + "_key0 = (bit<32>)" +
                     ValueRef(inst.args[0]) + ";");
      out->push_back("tbl_" + table + ".apply();");
      out->push_back(dst() + " = meta." + table + "_v0;");
      break;
    }
    case Opcode::kVectorLen:
      out->push_back("reg_" + SanitizeIdentifier(fn_.vector(inst.state).name) +
                     "_size.read(" + dst() + ", 0);");
      break;
    case Opcode::kSend:
      out->push_back("standard_metadata.egress_spec = (bit<9>)" +
                     ValueRef(inst.args[0]) + ";");
      out->push_back("meta.done = 1;");
      break;
    case Opcode::kDrop:
      out->push_back("mark_to_drop(standard_metadata);");
      out->push_back("meta.done = 1;");
      break;
    default:
      break;  // control flow handled by EmitRegion; server ops never reach
  }
  (void)part;
}

void Emitter::EmitRegion(int block, int stop, Part part, int depth,
                         std::vector<std::string>* out,
                         std::set<int>* visited) {
  const std::string indent(static_cast<size_t>(depth) * 4, ' ');
  while (block != stop && block >= 0) {
    if (visited->count(block)) {
      // Loop back-edge: loop bodies are server work by rule 5.
      out->push_back(indent + "meta.needs_server = 1; // loop -> server");
      return;
    }
    visited->insert(block);
    const ir::BasicBlock& bb = fn_.block(block);

    bool emitted_skip_marker = false;
    for (const Instruction& inst : bb.insts) {
      if (inst.IsTerminator()) break;
      if (OnPart(inst, part)) {
        std::vector<std::string> lines;
        EmitInstruction(inst, part, &lines);
        for (auto& line : lines) out->push_back(indent + line);
        emitted_skip_marker = false;
      } else if (part == Part::kPre && !emitted_skip_marker) {
        out->push_back(indent + "meta.needs_server = 1;");
        emitted_skip_marker = true;
      }
    }

    const Instruction& term = bb.terminator();
    if (term.op == Opcode::kJump) {
      block = term.target_true;
      continue;
    }
    if (term.op == Opcode::kReturn) return;

    // Branch: structured if/else up to the immediate post-dominator.
    const int join = cfg_.ImmediatePostDominator(block);
    const std::string cond = CondExpr(term.args[0], part);
    if (cond.empty()) {
      if (part == Part::kPre) {
        out->push_back(indent +
                       "meta.needs_server = 1; // server-resolved branch");
      }
      return;
    }
    out->push_back(indent + "if (" + cond + ") {");
    EmitRegion(term.target_true, join, part, depth + 1, out, visited);
    out->push_back(indent + "} else {");
    EmitRegion(term.target_false, join, part, depth + 1, out, visited);
    out->push_back(indent + "}");
    block = join;
  }
}

void Emitter::BuildHeadersAndParser(P4Program* program) const {
  program->headers.push_back(P4Header{
      "ethernet_t",
      {{"dstAddr", 48}, {"srcAddr", 48}, {"etherType", 16}}});
  P4Header gallium{"gallium_t", {{"var_count", 16}, {"reserved", 16},
                                 {"cond_bits", 32}}};
  const int max_slots = std::max(plan_.to_server.NumVarSlots(fn_),
                                 plan_.to_switch.NumVarSlots(fn_));
  for (int i = 0; i < max_slots; ++i) {
    gallium.fields.push_back(P4Field{"var" + std::to_string(i), 32});
  }
  program->headers.push_back(std::move(gallium));
  program->headers.push_back(P4Header{
      "ipv4_t",
      {{"version_ihl", 8}, {"diffserv", 8}, {"totalLen", 16}, {"id", 16},
       {"flags_frag", 16}, {"ttl", 8}, {"protocol", 8}, {"hdrChecksum", 16},
       {"srcAddr", 32}, {"dstAddr", 32}}});
  program->headers.push_back(P4Header{
      "tcp_t", {{"srcPort", 16}, {"dstPort", 16}, {"seqNo", 32},
                {"ackNo", 32}, {"dataOffset_res", 8}, {"flags", 8},
                {"window", 16}, {"checksum", 16}, {"urgentPtr", 16}}});
  program->headers.push_back(
      P4Header{"udp_t",
               {{"srcPort", 16}, {"dstPort", 16}, {"length", 16},
                {"checksum", 16}}});

  program->parser_states.push_back(P4ParserState{
      "start",
      {"packet.extract(hdr.ethernet);",
       "transition select(hdr.ethernet.etherType) {",
       "    0x0800: parse_ipv4;", "    0x88B5: parse_gallium;",
       "    default: accept;", "}"}});
  program->parser_states.push_back(P4ParserState{
      "parse_gallium",
      {"packet.extract(hdr.gallium);", "transition parse_ipv4;"}});
  program->parser_states.push_back(P4ParserState{
      "parse_ipv4",
      {"packet.extract(hdr.ipv4);",
       "transition select(hdr.ipv4.protocol) {", "    6: parse_tcp;",
       "    17: parse_udp;", "    default: accept;", "}"}});
  program->parser_states.push_back(P4ParserState{
      "parse_tcp",
      {"packet.extract(hdr.tcp);", "meta.l4_sport = hdr.tcp.srcPort;",
       "meta.l4_dport = hdr.tcp.dstPort;", "transition accept;"}});
  program->parser_states.push_back(P4ParserState{
      "parse_udp",
      {"packet.extract(hdr.udp);", "meta.l4_sport = hdr.udp.srcPort;",
       "meta.l4_dport = hdr.udp.dstPort;", "transition accept;"}});
}

void Emitter::BuildStateObjects(P4Program* program) {
  table_of_map_.assign(fn_.maps().size(), "");
  reg_of_global_.assign(fn_.globals().size(), "");
  table_of_vector_.assign(fn_.vectors().size(), "");

  for (const auto& [ref, placement] : plan_.state_placement) {
    if (placement == partition::StatePlacement::kServerOnly) continue;
    switch (ref.kind) {
      case ir::StateRef::Kind::kMap: {
        const ir::MapDecl& decl = fn_.map(ref.index);
        const std::string name = SanitizeIdentifier(decl.name);
        table_of_map_[ref.index] = name;

        // Key/value metadata plus hit flags.
        for (size_t k = 0; k < decl.key_widths.size(); ++k) {
          program->metadata_fields.push_back(
              P4Field{name + "_key" + std::to_string(k),
                      SlotBits(decl.key_widths[k])});
        }
        for (size_t v = 0; v < decl.value_widths.size(); ++v) {
          program->metadata_fields.push_back(
              P4Field{name + "_v" + std::to_string(v),
                      SlotBits(decl.value_widths[v])});
        }
        program->metadata_fields.push_back(P4Field{name + "_hit", 1});
        program->metadata_fields.push_back(P4Field{name + "_wb_hit", 1});
        program->metadata_fields.push_back(P4Field{name + "_wb_active", 1});

        // Hit action carries the value words as action parameters.
        P4Action hit{"act_" + name + "_hit", {}, {}};
        for (size_t v = 0; v < decl.value_widths.size(); ++v) {
          const std::string p = "value" + std::to_string(v);
          hit.params.push_back(
              "bit<" + std::to_string(SlotBits(decl.value_widths[v])) + "> " +
              p);
          hit.body.push_back("meta." + name + "_v" + std::to_string(v) +
                             " = " + p + ";");
        }
        hit.body.push_back("meta." + name + "_hit = 1;");
        P4Action miss{"act_" + name + "_miss", {}, {}};
        miss.body.push_back("meta." + name + "_hit = 0;");
        for (size_t v = 0; v < decl.value_widths.size(); ++v) {
          miss.body.push_back("meta." + name + "_v" + std::to_string(v) +
                              " = 0;");
        }
        P4Action wb_hit{"act_" + name + "_wb_hit", {}, {}};
        for (size_t v = 0; v < decl.value_widths.size(); ++v) {
          const std::string p = "value" + std::to_string(v);
          wb_hit.params.push_back(
              "bit<" + std::to_string(SlotBits(decl.value_widths[v])) + "> " +
              p);
          wb_hit.body.push_back("meta." + name + "_v" + std::to_string(v) +
                                " = " + p + ";");
        }
        wb_hit.params.push_back("bit<1> deleted");
        wb_hit.body.push_back("meta." + name + "_wb_hit = 1;");
        wb_hit.body.push_back("meta." + name + "_hit = ~deleted;");
        program->actions.push_back(std::move(hit));
        program->actions.push_back(std::move(miss));
        program->actions.push_back(std::move(wb_hit));

        P4Table table;
        table.name = "tbl_" + name;
        const char* match = decl.is_lpm() ? ": lpm" : ": exact";
        for (size_t k = 0; k < decl.key_widths.size(); ++k) {
          table.keys.push_back("meta." + name + "_key" + std::to_string(k) +
                               match);
        }
        table.actions = {"act_" + name + "_hit", "act_" + name + "_miss"};
        table.default_action = "act_" + name + "_miss";
        table.size = static_cast<int>(decl.max_entries);
        program->tables.push_back(table);

        // Write-back shadow (§4.3.3), a quarter of the main size.
        P4Table wb = table;
        wb.name = "tbl_" + name + "_wb";
        wb.actions = {"act_" + name + "_wb_hit", "act_" + name + "_miss"};
        wb.default_action = "act_" + name + "_miss";
        wb.size = std::max<int>(16, table.size / 4);
        wb.is_write_back = true;
        program->tables.push_back(std::move(wb));

        program->registers.push_back(P4Register{"wb_active_" + name, 1, 1});
        break;
      }
      case ir::StateRef::Kind::kVector: {
        const ir::VectorDecl& decl = fn_.vector(ref.index);
        const std::string name = SanitizeIdentifier(decl.name);
        table_of_vector_[ref.index] = name;
        program->metadata_fields.push_back(P4Field{name + "_key0", 32});
        program->metadata_fields.push_back(
            P4Field{name + "_v0", SlotBits(decl.elem_width)});
        P4Action hit{"act_" + name + "_at",
                     {"bit<" + std::to_string(SlotBits(decl.elem_width)) +
                      "> value0"},
                     {"meta." + name + "_v0 = value0;"}};
        program->actions.push_back(std::move(hit));
        P4Table table;
        table.name = "tbl_" + name;
        table.keys = {"meta." + name + "_key0: exact"};
        table.actions = {"act_" + name + "_at", "NoAction"};
        table.default_action = "NoAction";
        table.size = static_cast<int>(decl.max_size);
        program->tables.push_back(std::move(table));
        program->registers.push_back(
            P4Register{"reg_" + name + "_size", 32, 1});
        break;
      }
      case ir::StateRef::Kind::kGlobal: {
        const ir::GlobalDecl& decl = fn_.global(ref.index);
        const std::string name = "reg_" + SanitizeIdentifier(decl.name);
        reg_of_global_[ref.index] = name;
        program->registers.push_back(
            P4Register{name, SlotBits(decl.width), 1});
        break;
      }
    }
  }
}

void Emitter::BuildHandoff(std::vector<std::string>* out) const {
  out->push_back("if (meta.needs_server == 1) {");
  out->push_back("    // Synthesize the transfer header (Fig. 5) and forward");
  out->push_back("    // the packet to the middlebox server.");
  out->push_back("    hdr.gallium.setValid();");
  out->push_back("    hdr.gallium.var_count = " +
                 std::to_string(plan_.to_server.NumVarSlots(fn_)) + ";");
  out->push_back("    hdr.gallium.cond_bits = 0;");
  for (size_t i = 0; i < plan_.to_server.cond_regs.size(); ++i) {
    out->push_back("    hdr.gallium.cond_bits = hdr.gallium.cond_bits | "
                   "((bit<32>)" +
                   RegRef(plan_.to_server.cond_regs[i]) + " << " +
                   std::to_string(i) + ");");
  }
  int slot = 0;
  for (Reg r : plan_.to_server.var_regs) {
    const bool wide = ir::BitWidth(fn_.reg_width(r)) > 32;
    if (wide) {
      out->push_back("    hdr.gallium.var" + std::to_string(slot) +
                     " = (bit<32>)(" + RegRef(r) + " >> 32);");
      out->push_back("    hdr.gallium.var" + std::to_string(slot + 1) +
                     " = (bit<32>)" + RegRef(r) + ";");
      slot += 2;
    } else {
      out->push_back("    hdr.gallium.var" + std::to_string(slot) +
                     " = (bit<32>)" + RegRef(r) + ";");
      slot += 1;
    }
  }
  out->push_back("    hdr.ethernet.etherType = 0x88B5;");
  out->push_back("    standard_metadata.egress_spec = (bit<9>)" +
                 std::to_string(options_.server_port) + ";");
  out->push_back("}");
}

Result<P4Program> Emitter::Generate() {
  P4Program program;
  program.program_name = fn_.name();
  program_ = &program;

  BuildHeadersAndParser(&program);
  BuildStateObjects(&program);

  // Book-keeping metadata.
  program.metadata_fields.push_back(P4Field{"l4_sport", 16});
  program.metadata_fields.push_back(P4Field{"l4_dport", 16});
  program.metadata_fields.push_back(P4Field{"needs_server", 1});
  program.metadata_fields.push_back(P4Field{"done", 1});
  for (const P4Field& slot : alloc_.slots) {
    program.metadata_fields.push_back(slot);
  }
  // Registers referenced by escape-hatch names for non-slot regs are not
  // allocated: every switch statement's registers received slots above.

  std::vector<std::string>& body = program.ingress.apply_body;
  body.push_back("meta.needs_server = 0;");
  body.push_back("meta.done = 0;");
  body.push_back("if (standard_metadata.ingress_port == (bit<9>)" +
                 std::to_string(options_.server_port) + ") {");
  body.push_back("    // Post-processing: the packet returns from the server.");
  {
    // Preamble: unpack the return transfer header into metadata slots.
    for (size_t i = 0; i < plan_.to_switch.cond_regs.size(); ++i) {
      body.push_back("    " + RegRef(plan_.to_switch.cond_regs[i]) +
                     " = (bit<1>)((hdr.gallium.cond_bits >> " +
                     std::to_string(i) + ") & 1);");
    }
    int in_slot = 0;
    for (Reg r : plan_.to_switch.var_regs) {
      const bool wide = ir::BitWidth(fn_.reg_width(r)) > 32;
      const int bits = SlotBits(fn_.reg_width(r));
      if (wide) {
        body.push_back("    " + RegRef(r) + " = ((bit<64>)hdr.gallium.var" +
                       std::to_string(in_slot) + " << 32) | (bit<64>)hdr."
                       "gallium.var" + std::to_string(in_slot + 1) + ";");
        in_slot += 2;
      } else {
        body.push_back("    " + RegRef(r) + " = (bit<" +
                       std::to_string(bits) + ">)hdr.gallium.var" +
                       std::to_string(in_slot) + ";");
        in_slot += 1;
      }
    }
    std::vector<std::string> post_body;
    std::set<int> visited;
    EmitRegion(fn_.entry_block(), -1, Part::kPost, 1, &post_body, &visited);
    for (auto& line : post_body) body.push_back(line);
  }
  body.push_back("    hdr.gallium.setInvalid();");
  body.push_back("    hdr.ethernet.etherType = 0x0800;");
  body.push_back("} else {");
  body.push_back("    // Pre-processing: the packet arrives from the network.");
  {
    std::vector<std::string> pre_body;
    std::set<int> visited;
    EmitRegion(fn_.entry_block(), -1, Part::kPre, 1, &pre_body, &visited);
    for (auto& line : pre_body) body.push_back(line);
    std::vector<std::string> handoff;
    BuildHandoff(&handoff);
    for (auto& line : handoff) body.push_back("    " + line);
  }
  body.push_back("}");

  if (program.metadata_bits() > options_.max_metadata_bits) {
    return ResourceExhausted(
        "metadata exceeds scratchpad: " +
        std::to_string(program.metadata_bits()) + " bits > " +
        std::to_string(options_.max_metadata_bits));
  }
  return program;
}

}  // namespace

Result<P4Program> GenerateP4(const ir::Function& fn,
                             const partition::PartitionPlan& plan,
                             P4GenOptions options) {
  Emitter emitter(fn, plan, options);
  return emitter.Generate();
}

}  // namespace gallium::p4
