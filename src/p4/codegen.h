// P4 code generation (§4.3.1–4.3.2, Fig. 5 & 6).
//
// Maps the pre- and post-processing partitions of a middlebox program onto a
// single P4 program:
//   temporary variables -> metadata fields (with liveness-based slot reuse),
//   maps               -> match-action tables (+ write-back shadows),
//   global variables   -> registers,
//   map lookups        -> table lookups,
//   branches / header accesses / ALU ops -> their P4 counterparts.
//
// The two partitions share the program; an ingress-port dispatch decides
// whether a packet runs pre-processing (from the network) or
// post-processing (returning from the middlebox server). The synthesized
// Gallium header carries branch-condition bits and live temporaries between
// the devices.
#pragma once

#include "analysis/cfg.h"
#include "analysis/liveness.h"
#include "ir/function.h"
#include "p4/ast.h"
#include "partition/plan.h"
#include "util/status.h"

namespace gallium::p4 {

struct P4GenOptions {
  int server_port = 192;       // switch port wired to the middlebox server
  int max_metadata_bits = 96 * 8;
};

Result<P4Program> GenerateP4(const ir::Function& fn,
                             const partition::PartitionPlan& plan,
                             P4GenOptions options = {});

// Metadata slot allocation with lifetime-based reuse ("Gallium records when
// temporary variables are first and last used [and] reuses the memory
// consumed by variables that are no longer useful", §4.3.1). Exposed for
// tests: returns reg -> slot name for every switch-resident register, and
// reports how many bits of scratchpad the allocation uses.
struct MetadataAllocation {
  std::vector<std::string> slot_of_reg;  // empty string = not switch-resident
  std::vector<P4Field> slots;
  int total_bits = 0;
};

MetadataAllocation AllocateMetadata(const ir::Function& fn,
                                    const partition::PartitionPlan& plan);

}  // namespace gallium::p4
