#include "p4/parser.h"

#include <cctype>
#include <cstdlib>

namespace gallium::p4::exec {

const ActionDecl* ParsedProgram::FindAction(const std::string& name) const {
  for (const auto& action : actions) {
    if (action.name == name) return &action;
  }
  return nullptr;
}

const TableDecl* ParsedProgram::FindTable(const std::string& name) const {
  for (const auto& table : tables) {
    if (table.name == name) return &table;
  }
  return nullptr;
}

const RegisterDecl* ParsedProgram::FindRegister(
    const std::string& name) const {
  for (const auto& reg : registers) {
    if (reg.name == name) return &reg;
  }
  return nullptr;
}

namespace {

// --- Lexer ---------------------------------------------------------------------

struct Token {
  enum class Kind : uint8_t {
    kIdent,   // foo, foo.bar.baz assembled by the parser
    kNumber,
    kPunct,   // single/multi char punctuation, text in `text`
    kEof,
  };
  Kind kind = Kind::kEof;
  std::string text;
  uint64_t number = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) { Advance(); }

  const Token& peek() const { return current_; }
  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }
  int line() const { return line_; }

  // Splits a '>>' token into two '>'s — needed for nested angle brackets
  // like register<bit<32>>(1), where the lexer's longest-match produced a
  // shift operator.
  void SplitShiftRight() {
    current_.text = ">";
    pending_gt_ = true;
  }

 private:
  void Advance() {
    if (pending_gt_) {
      pending_gt_ = false;
      current_.kind = Token::Kind::kPunct;
      current_.text = ">";
      return;
    }
    SkipWhitespaceAndComments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = Token::Kind::kEof;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      if (c == '0' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
        pos_ += 2;
        while (pos_ < src_.size() &&
               std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
        current_.kind = Token::Kind::kNumber;
        current_.number =
            std::strtoull(src_.substr(start, pos_ - start).c_str(), nullptr, 16);
        return;
      }
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      current_.kind = Token::Kind::kNumber;
      current_.number =
          std::strtoull(src_.substr(start, pos_ - start).c_str(), nullptr, 10);
      return;
    }
    // Multi-char punctuation first.
    static const char* kMulti[] = {"<<", ">>", "==", "!=", "<=", ">="};
    for (const char* m : kMulti) {
      if (src_.compare(pos_, 2, m) == 0) {
        current_.kind = Token::Kind::kPunct;
        current_.text = m;
        pos_ += 2;
        return;
      }
    }
    current_.kind = Token::Kind::kPunct;
    current_.text = std::string(1, c);
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool pending_gt_ = false;
  Token current_;
};

// --- Parser ---------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& source) : lex_(source) {}

  Result<std::unique_ptr<ParsedProgram>> Parse();

 private:
  Status Fail(const std::string& what) {
    return InvalidArgument("P4 parse error (line " +
                           std::to_string(lex_.peek().line) + "): " + what +
                           ", got '" + lex_.peek().text + "'");
  }

  bool IsIdent(const char* text) const {
    return lex_.peek().kind == Token::Kind::kIdent &&
           lex_.peek().text == text;
  }
  bool IsPunct(const char* text) const {
    return lex_.peek().kind == Token::Kind::kPunct &&
           lex_.peek().text == text;
  }
  Status Expect(const char* punct) {
    if (std::string(punct) == ">" && IsPunct(">>")) {
      lex_.SplitShiftRight();  // '>>' closing two angle brackets
    }
    if (!IsPunct(punct)) return Fail(std::string("expected '") + punct + "'");
    lex_.Take();
    return Status::Ok();
  }
  Status ExpectIdent(const char* ident) {
    if (!IsIdent(ident)) return Fail(std::string("expected '") + ident + "'");
    lex_.Take();
    return Status::Ok();
  }

  // Skips a balanced { ... } block (used for controls we don't execute).
  Status SkipBracedBlock() {
    GALLIUM_RETURN_IF_ERROR(Expect("{"));
    int depth = 1;
    while (depth > 0) {
      if (lex_.peek().kind == Token::Kind::kEof) {
        return Fail("unexpected EOF in skipped block");
      }
      if (IsPunct("{")) ++depth;
      if (IsPunct("}")) --depth;
      lex_.Take();
    }
    return Status::Ok();
  }

  // bit<N>
  Result<int> ParseBitType() {
    GALLIUM_RETURN_IF_ERROR(ExpectIdent("bit"));
    GALLIUM_RETURN_IF_ERROR(Expect("<"));
    if (lex_.peek().kind != Token::Kind::kNumber) return Fail("bit width");
    const int bits = static_cast<int>(lex_.Take().number);
    GALLIUM_RETURN_IF_ERROR(Expect(">"));
    return bits;
  }

  // foo or foo.bar.baz
  Result<std::string> ParseQualifiedName() {
    if (lex_.peek().kind != Token::Kind::kIdent) return Fail("identifier");
    std::string name = lex_.Take().text;
    while (IsPunct(".")) {
      lex_.Take();
      if (lex_.peek().kind != Token::Kind::kIdent) {
        return Fail("identifier after '.'");
      }
      name += "." + lex_.Take().text;
    }
    return name;
  }

  Result<ExprPtr> ParseExpr() { return ParseTernary(); }

  Result<ExprPtr> ParseTernary() {
    GALLIUM_ASSIGN_OR_RETURN(ExprPtr cond, ParseBinary(0));
    if (!IsPunct("?")) return cond;
    lex_.Take();
    GALLIUM_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExpr());
    GALLIUM_RETURN_IF_ERROR(Expect(":"));
    GALLIUM_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExpr());
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kTernary;
    expr->c = std::move(cond);
    expr->a = std::move(then_e);
    expr->b = std::move(else_e);
    return expr;
  }

  // Precedence-climbing over: | ^ &, == !=, relational, shifts, additive.
  static int PrecedenceOf(const std::string& op) {
    if (op == "|") return 1;
    if (op == "^") return 2;
    if (op == "&") return 3;
    if (op == "==" || op == "!=") return 4;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 5;
    if (op == "<<" || op == ">>") return 6;
    if (op == "+" || op == "-") return 7;
    return -1;
  }

  static Expr::Op OpOf(const std::string& op) {
    if (op == "|") return Expr::Op::kOr;
    if (op == "^") return Expr::Op::kXor;
    if (op == "&") return Expr::Op::kAnd;
    if (op == "==") return Expr::Op::kEq;
    if (op == "!=") return Expr::Op::kNe;
    if (op == "<") return Expr::Op::kLt;
    if (op == "<=") return Expr::Op::kLe;
    if (op == ">") return Expr::Op::kGt;
    if (op == ">=") return Expr::Op::kGe;
    if (op == "<<") return Expr::Op::kShl;
    if (op == ">>") return Expr::Op::kShr;
    if (op == "+") return Expr::Op::kAdd;
    return Expr::Op::kSub;
  }

  Result<ExprPtr> ParseBinary(int min_prec) {
    GALLIUM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      if (lex_.peek().kind != Token::Kind::kPunct) return lhs;
      const std::string op = lex_.peek().text;
      const int prec = PrecedenceOf(op);
      if (prec < 0 || prec < min_prec) return lhs;
      lex_.Take();
      GALLIUM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBinary(prec + 1));
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kBinary;
      expr->op = OpOf(op);
      expr->a = std::move(lhs);
      expr->b = std::move(rhs);
      lhs = std::move(expr);
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (IsPunct("~")) {
      lex_.Take();
      GALLIUM_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kUnaryNot;
      expr->a = std::move(inner);
      return expr;
    }
    if (IsPunct("(")) {
      lex_.Take();
      // Cast `(bit<N>)expr` or parenthesized expression.
      if (IsIdent("bit")) {
        GALLIUM_ASSIGN_OR_RETURN(int bits, ParseBitType());
        GALLIUM_RETURN_IF_ERROR(Expect(")"));
        GALLIUM_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
        auto expr = std::make_unique<Expr>();
        expr->kind = Expr::Kind::kCast;
        expr->cast_bits = bits;
        expr->a = std::move(inner);
        return expr;
      }
      GALLIUM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      GALLIUM_RETURN_IF_ERROR(Expect(")"));
      return inner;
    }
    if (lex_.peek().kind == Token::Kind::kNumber) {
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kLiteral;
      expr->literal = lex_.Take().number;
      return expr;
    }
    if (lex_.peek().kind == Token::Kind::kIdent) {
      GALLIUM_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
      auto expr = std::make_unique<Expr>();
      const std::string kValidSuffix = ".isValid";
      if (IsPunct("(") && name.size() > kValidSuffix.size() &&
          name.compare(name.size() - kValidSuffix.size(), kValidSuffix.size(),
                       kValidSuffix) == 0) {
        lex_.Take();
        GALLIUM_RETURN_IF_ERROR(Expect(")"));
        expr->kind = Expr::Kind::kIsValid;
        expr->field = name.substr(0, name.size() - kValidSuffix.size());
        return expr;
      }
      expr->kind = Expr::Kind::kField;
      expr->field = std::move(name);
      return expr;
    }
    return Fail("expression");
  }

  // One statement inside an action body or apply block.
  Result<StmtPtr> ParseStatement() {
    auto stmt = std::make_unique<Stmt>();
    if (IsIdent("if")) {
      lex_.Take();
      GALLIUM_RETURN_IF_ERROR(Expect("("));
      GALLIUM_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
      GALLIUM_RETURN_IF_ERROR(Expect(")"));
      stmt->kind = Stmt::Kind::kIf;
      GALLIUM_RETURN_IF_ERROR(ParseBlock(&stmt->then_body));
      if (IsIdent("else")) {
        lex_.Take();
        GALLIUM_RETURN_IF_ERROR(ParseBlock(&stmt->else_body));
      }
      return stmt;
    }
    if (IsIdent("mark_to_drop")) {
      lex_.Take();
      GALLIUM_RETURN_IF_ERROR(Expect("("));
      GALLIUM_ASSIGN_OR_RETURN(std::string arg, ParseQualifiedName());
      (void)arg;
      GALLIUM_RETURN_IF_ERROR(Expect(")"));
      GALLIUM_RETURN_IF_ERROR(Expect(";"));
      stmt->kind = Stmt::Kind::kMarkDrop;
      return stmt;
    }
    // Starts with a qualified name: assignment, apply, setValid/Invalid,
    // register read/write.
    GALLIUM_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
    // name may end in .apply / .setValid / .setInvalid / .read / .write
    auto ends_with = [&](const char* suffix) {
      const std::string s = std::string(".") + suffix;
      return name.size() > s.size() &&
             name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    auto strip = [&](const char* suffix) {
      name.resize(name.size() - std::string(suffix).size() - 1);
    };
    if (IsPunct("(")) {
      if (ends_with("apply")) {
        strip("apply");
        lex_.Take();
        GALLIUM_RETURN_IF_ERROR(Expect(")"));
        GALLIUM_RETURN_IF_ERROR(Expect(";"));
        stmt->kind = Stmt::Kind::kApplyTable;
        stmt->target = std::move(name);
        return stmt;
      }
      if (ends_with("setValid") || ends_with("setInvalid")) {
        const bool valid = ends_with("setValid");
        strip(valid ? "setValid" : "setInvalid");
        lex_.Take();
        GALLIUM_RETURN_IF_ERROR(Expect(")"));
        GALLIUM_RETURN_IF_ERROR(Expect(";"));
        stmt->kind = valid ? Stmt::Kind::kSetValid : Stmt::Kind::kSetInvalid;
        stmt->target = std::move(name);
        return stmt;
      }
      if (ends_with("read")) {
        strip("read");
        lex_.Take();
        GALLIUM_ASSIGN_OR_RETURN(std::string dst, ParseQualifiedName());
        GALLIUM_RETURN_IF_ERROR(Expect(","));
        GALLIUM_ASSIGN_OR_RETURN(stmt->index, ParseExpr());
        GALLIUM_RETURN_IF_ERROR(Expect(")"));
        GALLIUM_RETURN_IF_ERROR(Expect(";"));
        stmt->kind = Stmt::Kind::kRegRead;
        stmt->target = std::move(name);
        auto dst_expr = std::make_unique<Expr>();
        dst_expr->kind = Expr::Kind::kField;
        dst_expr->field = std::move(dst);
        stmt->value = std::move(dst_expr);
        return stmt;
      }
      if (ends_with("write")) {
        strip("write");
        lex_.Take();
        GALLIUM_ASSIGN_OR_RETURN(stmt->index, ParseExpr());
        GALLIUM_RETURN_IF_ERROR(Expect(","));
        GALLIUM_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
        GALLIUM_RETURN_IF_ERROR(Expect(")"));
        GALLIUM_RETURN_IF_ERROR(Expect(";"));
        stmt->kind = Stmt::Kind::kRegWrite;
        stmt->target = std::move(name);
        return stmt;
      }
      return Fail("unknown call '" + name + "'");
    }
    // Assignment.
    GALLIUM_RETURN_IF_ERROR(Expect("="));
    GALLIUM_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
    GALLIUM_RETURN_IF_ERROR(Expect(";"));
    stmt->kind = Stmt::Kind::kAssign;
    stmt->target = std::move(name);
    return stmt;
  }

  // `{ stmt* }` or a single statement.
  Status ParseBlock(std::vector<StmtPtr>* out) {
    if (IsPunct("{")) {
      lex_.Take();
      while (!IsPunct("}")) {
        if (lex_.peek().kind == Token::Kind::kEof) return Fail("EOF in block");
        GALLIUM_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
        out->push_back(std::move(stmt));
      }
      lex_.Take();
      return Status::Ok();
    }
    GALLIUM_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
    out->push_back(std::move(stmt));
    return Status::Ok();
  }

  // header NAME { bit<N> field; ... } — records widths under both the
  // header-type instance prefix hdr.<inst>.<field>.
  Status ParseHeader() {
    if (lex_.peek().kind != Token::Kind::kIdent) return Fail("header name");
    std::string type_name = lex_.Take().text;
    std::string inst = type_name;
    if (inst.size() > 2 && inst.substr(inst.size() - 2) == "_t") {
      inst = inst.substr(0, inst.size() - 2);
    }
    GALLIUM_RETURN_IF_ERROR(Expect("{"));
    while (!IsPunct("}")) {
      GALLIUM_ASSIGN_OR_RETURN(int bits, ParseBitType());
      if (lex_.peek().kind != Token::Kind::kIdent) return Fail("field name");
      const std::string field = lex_.Take().text;
      GALLIUM_RETURN_IF_ERROR(Expect(";"));
      program_->field_bits["hdr." + inst + "." + field] = bits;
    }
    lex_.Take();
    return Status::Ok();
  }

  Status ParseMetadataStruct() {
    GALLIUM_RETURN_IF_ERROR(Expect("{"));
    while (!IsPunct("}")) {
      GALLIUM_ASSIGN_OR_RETURN(int bits, ParseBitType());
      if (lex_.peek().kind != Token::Kind::kIdent) return Fail("field name");
      const std::string field = lex_.Take().text;
      GALLIUM_RETURN_IF_ERROR(Expect(";"));
      program_->field_bits["meta." + field] = bits;
    }
    lex_.Take();
    return Status::Ok();
  }

  Status ParseIngressControl() {
    // ( params ) — skip to the opening brace.
    while (!IsPunct("{")) {
      if (lex_.peek().kind == Token::Kind::kEof) return Fail("control body");
      lex_.Take();
    }
    lex_.Take();  // {
    while (!IsPunct("}")) {
      if (IsIdent("register")) {
        lex_.Take();
        GALLIUM_RETURN_IF_ERROR(Expect("<"));
        GALLIUM_ASSIGN_OR_RETURN(int bits, ParseBitType());
        GALLIUM_RETURN_IF_ERROR(Expect(">"));
        GALLIUM_RETURN_IF_ERROR(Expect("("));
        if (lex_.peek().kind != Token::Kind::kNumber) return Fail("reg size");
        const int size = static_cast<int>(lex_.Take().number);
        GALLIUM_RETURN_IF_ERROR(Expect(")"));
        if (lex_.peek().kind != Token::Kind::kIdent) return Fail("reg name");
        const std::string name = lex_.Take().text;
        GALLIUM_RETURN_IF_ERROR(Expect(";"));
        program_->registers.push_back(RegisterDecl{name, bits, size});
      } else if (IsIdent("action")) {
        lex_.Take();
        ActionDecl action;
        if (lex_.peek().kind != Token::Kind::kIdent) return Fail("action name");
        action.name = lex_.Take().text;
        GALLIUM_RETURN_IF_ERROR(Expect("("));
        while (!IsPunct(")")) {
          GALLIUM_ASSIGN_OR_RETURN(int bits, ParseBitType());
          if (lex_.peek().kind != Token::Kind::kIdent) return Fail("param");
          action.params.push_back({lex_.Take().text, bits});
          if (IsPunct(",")) lex_.Take();
        }
        lex_.Take();  // )
        GALLIUM_RETURN_IF_ERROR(Expect("{"));
        while (!IsPunct("}")) {
          GALLIUM_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
          action.body.push_back(std::move(stmt));
        }
        lex_.Take();
        program_->actions.push_back(std::move(action));
      } else if (IsIdent("table")) {
        lex_.Take();
        TableDecl table;
        if (lex_.peek().kind != Token::Kind::kIdent) return Fail("table name");
        table.name = lex_.Take().text;
        GALLIUM_RETURN_IF_ERROR(Expect("{"));
        while (!IsPunct("}")) {
          if (IsIdent("key")) {
            lex_.Take();
            GALLIUM_RETURN_IF_ERROR(Expect("="));
            GALLIUM_RETURN_IF_ERROR(Expect("{"));
            while (!IsPunct("}")) {
              GALLIUM_ASSIGN_OR_RETURN(std::string field,
                                       ParseQualifiedName());
              GALLIUM_RETURN_IF_ERROR(Expect(":"));
              if (IsIdent("lpm")) {
                lex_.Take();
                table.lpm = true;
              } else {
                GALLIUM_RETURN_IF_ERROR(ExpectIdent("exact"));
              }
              GALLIUM_RETURN_IF_ERROR(Expect(";"));
              table.key_fields.push_back(std::move(field));
            }
            lex_.Take();
          } else if (IsIdent("actions")) {
            lex_.Take();
            GALLIUM_RETURN_IF_ERROR(Expect("="));
            GALLIUM_RETURN_IF_ERROR(Expect("{"));
            while (!IsPunct("}")) {
              if (lex_.peek().kind != Token::Kind::kIdent) {
                return Fail("action name in table");
              }
              table.actions.push_back(lex_.Take().text);
              GALLIUM_RETURN_IF_ERROR(Expect(";"));
            }
            lex_.Take();
          } else if (IsIdent("default_action")) {
            lex_.Take();
            GALLIUM_RETURN_IF_ERROR(Expect("="));
            if (lex_.peek().kind != Token::Kind::kIdent) {
              return Fail("default action");
            }
            table.default_action = lex_.Take().text;
            GALLIUM_RETURN_IF_ERROR(Expect("("));
            GALLIUM_RETURN_IF_ERROR(Expect(")"));
            GALLIUM_RETURN_IF_ERROR(Expect(";"));
          } else if (IsIdent("size")) {
            lex_.Take();
            GALLIUM_RETURN_IF_ERROR(Expect("="));
            if (lex_.peek().kind != Token::Kind::kNumber) return Fail("size");
            table.size = static_cast<int>(lex_.Take().number);
            GALLIUM_RETURN_IF_ERROR(Expect(";"));
          } else {
            return Fail("table property");
          }
        }
        lex_.Take();
        program_->tables.push_back(std::move(table));
      } else if (IsIdent("apply")) {
        lex_.Take();
        GALLIUM_RETURN_IF_ERROR(Expect("{"));
        while (!IsPunct("}")) {
          GALLIUM_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
          program_->ingress_apply.push_back(std::move(stmt));
        }
        lex_.Take();
      } else {
        return Fail("control member");
      }
    }
    lex_.Take();  // closing }
    return Status::Ok();
  }

  Lexer lex_;
  ParsedProgram* program_ = nullptr;

 public:
  friend Result<std::unique_ptr<ParsedProgram>> DoParse(Parser& parser);
};

Result<std::unique_ptr<ParsedProgram>> DoParse(Parser& parser) {
  auto program = std::make_unique<ParsedProgram>();
  parser.program_ = program.get();
  auto& lex = parser.lex_;

  while (lex.peek().kind != Token::Kind::kEof) {
    if (parser.IsPunct("#")) {
      // Preprocessor include: skip to end of identifier chain.
      lex.Take();
      lex.Take();            // include
      if (parser.IsPunct("<")) {
        while (!parser.IsPunct(">")) lex.Take();
        lex.Take();
      }
      continue;
    }
    if (parser.IsIdent("header")) {
      lex.Take();
      GALLIUM_RETURN_IF_ERROR(parser.ParseHeader());
      continue;
    }
    if (parser.IsIdent("struct")) {
      lex.Take();
      const std::string name = lex.Take().text;
      if (name == "metadata_t") {
        GALLIUM_RETURN_IF_ERROR(parser.ParseMetadataStruct());
      } else {
        GALLIUM_RETURN_IF_ERROR(parser.SkipBracedBlock());
      }
      continue;
    }
    if (parser.IsIdent("parser")) {
      lex.Take();
      lex.Take();  // name
      while (!parser.IsPunct("{")) lex.Take();
      GALLIUM_RETURN_IF_ERROR(parser.SkipBracedBlock());
      continue;
    }
    if (parser.IsIdent("control")) {
      lex.Take();
      if (lex.peek().kind != Token::Kind::kIdent) {
        return parser.Fail("control name");
      }
      const std::string name = lex.Take().text;
      if (name == "GalliumIngress") {
        GALLIUM_RETURN_IF_ERROR(parser.ParseIngressControl());
      } else {
        while (!parser.IsPunct("{")) lex.Take();
        GALLIUM_RETURN_IF_ERROR(parser.SkipBracedBlock());
      }
      continue;
    }
    if (parser.IsIdent("V1Switch")) {
      // Pipeline instantiation — consume the rest.
      while (lex.peek().kind != Token::Kind::kEof) lex.Take();
      continue;
    }
    return parser.Fail("top-level declaration");
  }
  return program;
}

}  // namespace

Result<std::unique_ptr<ParsedProgram>> ParseP4(const std::string& source) {
  Parser parser(source);
  return DoParse(parser);
}

}  // namespace gallium::p4::exec
