#include "p4/roundtrip.h"

#include <map>
#include <sstream>
#include <vector>

namespace gallium::p4::exec {

namespace {

const char* OpText(Expr::Op op) {
  switch (op) {
    case Expr::Op::kAdd: return "+";
    case Expr::Op::kSub: return "-";
    case Expr::Op::kAnd: return "&";
    case Expr::Op::kOr: return "|";
    case Expr::Op::kXor: return "^";
    case Expr::Op::kShl: return "<<";
    case Expr::Op::kShr: return ">>";
    case Expr::Op::kEq: return "==";
    case Expr::Op::kNe: return "!=";
    case Expr::Op::kLt: return "<";
    case Expr::Op::kLe: return "<=";
    case Expr::Op::kGt: return ">";
    case Expr::Op::kGe: return ">=";
  }
  return "+";
}

// Fully parenthesized so precedence never depends on the printer; every
// printed form is also a valid unary operand (cast bodies, ~ bodies).
void PrintExpr(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      os << e.literal;
      return;
    case Expr::Kind::kField:
      os << e.field;
      return;
    case Expr::Kind::kUnaryNot:
      os << "~";
      PrintExpr(*e.a, os);
      return;
    case Expr::Kind::kBinary:
      os << "(";
      PrintExpr(*e.a, os);
      os << " " << OpText(e.op) << " ";
      PrintExpr(*e.b, os);
      os << ")";
      return;
    case Expr::Kind::kTernary:
      os << "(";
      PrintExpr(*e.c, os);
      os << " ? ";
      PrintExpr(*e.a, os);
      os << " : ";
      PrintExpr(*e.b, os);
      os << ")";
      return;
    case Expr::Kind::kCast:
      os << "(bit<" << e.cast_bits << ">)";
      PrintExpr(*e.a, os);
      return;
    case Expr::Kind::kIsValid:
      os << e.field << ".isValid()";
      return;
  }
}

void PrintStmts(const std::vector<StmtPtr>& stmts, int indent,
                std::ostream& os);

void PrintStmt(const Stmt& s, int indent, std::ostream& os) {
  const std::string pad(indent, ' ');
  switch (s.kind) {
    case Stmt::Kind::kAssign:
      os << pad << s.target << " = ";
      PrintExpr(*s.value, os);
      os << ";\n";
      return;
    case Stmt::Kind::kIf:
      os << pad << "if (";
      PrintExpr(*s.value, os);
      os << ") {\n";
      PrintStmts(s.then_body, indent + 2, os);
      os << pad << "}";
      if (!s.else_body.empty()) {
        os << " else {\n";
        PrintStmts(s.else_body, indent + 2, os);
        os << pad << "}";
      }
      os << "\n";
      return;
    case Stmt::Kind::kApplyTable:
      os << pad << s.target << ".apply();\n";
      return;
    case Stmt::Kind::kRegRead:
      // The parser stores the destination field as a kField expr in `value`.
      os << pad << s.target << ".read(" << s.value->field << ", ";
      PrintExpr(*s.index, os);
      os << ");\n";
      return;
    case Stmt::Kind::kRegWrite:
      os << pad << s.target << ".write(";
      PrintExpr(*s.index, os);
      os << ", ";
      PrintExpr(*s.value, os);
      os << ");\n";
      return;
    case Stmt::Kind::kMarkDrop:
      os << pad << "mark_to_drop(standard_metadata);\n";
      return;
    case Stmt::Kind::kSetValid:
      os << pad << s.target << ".setValid();\n";
      return;
    case Stmt::Kind::kSetInvalid:
      os << pad << s.target << ".setInvalid();\n";
      return;
  }
}

void PrintStmts(const std::vector<StmtPtr>& stmts, int indent,
                std::ostream& os) {
  for (const StmtPtr& s : stmts) PrintStmt(*s, indent, os);
}

}  // namespace

std::string PrintParsed(const ParsedProgram& program) {
  std::ostringstream os;

  // field_bits is a sorted map, so grouping by prefix is deterministic and
  // stable across parse/print cycles: headers alphabetical, fields within a
  // header alphabetical.
  std::map<std::string, std::vector<std::pair<std::string, int>>> headers;
  std::vector<std::pair<std::string, int>> metadata;
  for (const auto& [name, bits] : program.field_bits) {
    if (name.rfind("hdr.", 0) == 0) {
      const size_t dot = name.find('.', 4);
      if (dot == std::string::npos) continue;
      headers[name.substr(4, dot - 4)].push_back({name.substr(dot + 1), bits});
    } else if (name.rfind("meta.", 0) == 0) {
      metadata.push_back({name.substr(5), bits});
    }
  }

  for (const auto& [inst, fields] : headers) {
    os << "header " << inst << "_t {\n";
    for (const auto& [field, bits] : fields) {
      os << "  bit<" << bits << "> " << field << ";\n";
    }
    os << "}\n\n";
  }

  os << "struct metadata_t {\n";
  for (const auto& [field, bits] : metadata) {
    os << "  bit<" << bits << "> " << field << ";\n";
  }
  os << "}\n\n";

  os << "control GalliumIngress(inout metadata_t meta) {\n";
  for (const RegisterDecl& reg : program.registers) {
    os << "  register<bit<" << reg.bits << ">>(" << reg.size << ") "
       << reg.name << ";\n";
  }
  for (const ActionDecl& action : program.actions) {
    os << "  action " << action.name << "(";
    for (size_t i = 0; i < action.params.size(); ++i) {
      if (i > 0) os << ", ";
      os << "bit<" << action.params[i].second << "> " << action.params[i].first;
    }
    os << ") {\n";
    PrintStmts(action.body, 4, os);
    os << "  }\n";
  }
  for (const TableDecl& table : program.tables) {
    os << "  table " << table.name << " {\n";
    if (!table.key_fields.empty()) {
      os << "    key = {\n";
      // TableDecl keeps a single lpm bit for the whole key; printing it on
      // every field round-trips to the same bit.
      for (const std::string& key : table.key_fields) {
        os << "      " << key << " : " << (table.lpm ? "lpm" : "exact")
           << ";\n";
      }
      os << "    }\n";
    }
    os << "    actions = {\n";
    for (const std::string& action : table.actions) {
      os << "      " << action << ";\n";
    }
    os << "    }\n";
    if (!table.default_action.empty()) {
      os << "    default_action = " << table.default_action << "();\n";
    }
    if (table.size != 0) {
      os << "    size = " << table.size << ";\n";
    }
    os << "  }\n";
  }
  os << "  apply {\n";
  PrintStmts(program.ingress_apply, 4, os);
  os << "  }\n";
  os << "}\n";

  return os.str();
}

}  // namespace gallium::p4::exec
