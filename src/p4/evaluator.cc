#include "p4/evaluator.h"

#include <algorithm>

namespace gallium::p4::exec {

namespace {
uint64_t MaskBits(uint64_t value, int bits) {
  if (bits <= 0 || bits >= 64) return value;
  return value & ((1ull << bits) - 1);
}
}  // namespace

P4Evaluator::P4Evaluator(const ParsedProgram& program) : program_(program) {
  for (const RegisterDecl& reg : program.registers) {
    register_values_[reg.name].assign(reg.size, 0);
  }
}

Status P4Evaluator::InstallEntry(const std::string& table, TableEntry entry) {
  const TableDecl* decl = program_.FindTable(table);
  if (decl == nullptr) return NotFound("no table '" + table + "'");
  // LPM entries carry an extra prefix-length word beyond the match key.
  const size_t expected_key_words =
      decl->key_fields.size() + (decl->lpm ? 1 : 0);
  if (entry.key.size() != expected_key_words) {
    return InvalidArgument("key arity for " + table);
  }
  if (std::find(decl->actions.begin(), decl->actions.end(), entry.action) ==
      decl->actions.end()) {
    return InvalidArgument("action '" + entry.action + "' not in table");
  }
  auto& entries = table_entries_[table];
  // Replace an existing entry with the same key.
  for (auto& existing : entries) {
    if (existing.key == entry.key) {
      existing = std::move(entry);
      return Status::Ok();
    }
  }
  entries.push_back(std::move(entry));
  return Status::Ok();
}

Status P4Evaluator::SetRegister(const std::string& reg, int index,
                                uint64_t value) {
  auto it = register_values_.find(reg);
  if (it == register_values_.end()) return NotFound("no register '" + reg + "'");
  if (index < 0 || index >= static_cast<int>(it->second.size())) {
    return InvalidArgument("register index");
  }
  it->second[index] = value;
  return Status::Ok();
}

uint64_t P4Evaluator::Field(const std::string& name) const {
  const auto it = fields_.find(name);
  return it == fields_.end() ? 0 : it->second;
}

void P4Evaluator::SetField(const std::string& name, uint64_t value) {
  const auto bits = program_.field_bits.find(name);
  if (bits != program_.field_bits.end()) {
    value = MaskBits(value, bits->second);
  }
  fields_[name] = value;
}

Result<uint64_t> P4Evaluator::Eval(const Expr& expr) const {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kField: {
      // Action parameters shadow fields inside an action body.
      if (action_args_ != nullptr) {
        const auto it = action_args_->find(expr.field);
        if (it != action_args_->end()) return it->second;
      }
      const auto it = fields_.find(expr.field);
      if (it != fields_.end()) return it->second;
      return uint64_t{0};
    }
    case Expr::Kind::kUnaryNot: {
      GALLIUM_ASSIGN_OR_RETURN(uint64_t a, Eval(*expr.a));
      return ~a;
    }
    case Expr::Kind::kIsValid: {
      const auto it = header_valid_.find(expr.field);
      return static_cast<uint64_t>(it != header_valid_.end() && it->second);
    }
    case Expr::Kind::kCast: {
      GALLIUM_ASSIGN_OR_RETURN(uint64_t a, Eval(*expr.a));
      return MaskBits(a, expr.cast_bits);
    }
    case Expr::Kind::kTernary: {
      GALLIUM_ASSIGN_OR_RETURN(uint64_t c, Eval(*expr.c));
      return c != 0 ? Eval(*expr.a) : Eval(*expr.b);
    }
    case Expr::Kind::kBinary: {
      GALLIUM_ASSIGN_OR_RETURN(uint64_t a, Eval(*expr.a));
      GALLIUM_ASSIGN_OR_RETURN(uint64_t b, Eval(*expr.b));
      switch (expr.op) {
        case Expr::Op::kAdd: return a + b;
        case Expr::Op::kSub: return a - b;
        case Expr::Op::kAnd: return a & b;
        case Expr::Op::kOr: return a | b;
        case Expr::Op::kXor: return a ^ b;
        case Expr::Op::kShl: return b >= 64 ? 0 : a << b;
        case Expr::Op::kShr: return b >= 64 ? 0 : a >> b;
        case Expr::Op::kEq: return static_cast<uint64_t>(a == b);
        case Expr::Op::kNe: return static_cast<uint64_t>(a != b);
        case Expr::Op::kLt: return static_cast<uint64_t>(a < b);
        case Expr::Op::kLe: return static_cast<uint64_t>(a <= b);
        case Expr::Op::kGt: return static_cast<uint64_t>(a > b);
        case Expr::Op::kGe: return static_cast<uint64_t>(a >= b);
      }
      return Internal("bad binary op");
    }
  }
  return Internal("bad expression kind");
}

Status P4Evaluator::ApplyTable(const std::string& name) {
  const TableDecl* decl = program_.FindTable(name);
  if (decl == nullptr) return NotFound("apply of unknown table " + name);

  std::vector<uint64_t> key;
  for (const std::string& field : decl->key_fields) {
    key.push_back(Field(field));
  }

  const TableEntry* hit = nullptr;
  const auto entries = table_entries_.find(name);
  if (entries != table_entries_.end()) {
    if (decl->lpm) {
      // LPM entries carry {prefix, prefix_len}; the lookup key is the
      // single address. The longest matching prefix wins.
      const uint64_t addr = key.empty() ? 0 : key[0];
      uint64_t best_len = 0;
      bool found = false;
      for (const TableEntry& entry : entries->second) {
        if (entry.key.size() != 2) continue;
        const uint64_t prefix = entry.key[0];
        const uint64_t len = entry.key[1];
        if (len > 32) continue;
        const uint64_t mask =
            len == 0 ? 0 : (~0ull << (32 - len)) & 0xffffffffull;
        if ((addr & mask) == (prefix & mask) && (!found || len >= best_len)) {
          best_len = len;
          hit = &entry;
          found = true;
        }
      }
    } else {
      for (const TableEntry& entry : entries->second) {
        if (entry.key == key) {
          hit = &entry;
          break;
        }
      }
    }
  }

  std::string action_name;
  std::map<std::string, uint64_t> args;
  if (hit != nullptr) {
    action_name = hit->action;
    const ActionDecl* action = program_.FindAction(action_name);
    if (action == nullptr) return NotFound("action " + action_name);
    if (hit->args.size() != action->params.size()) {
      return InvalidArgument("action arg arity for " + action_name);
    }
    for (size_t i = 0; i < action->params.size(); ++i) {
      args[action->params[i].first] =
          MaskBits(hit->args[i], action->params[i].second);
    }
  } else {
    action_name = decl->default_action;
    if (action_name.empty() || action_name == "NoAction") return Status::Ok();
  }

  const ActionDecl* action = program_.FindAction(action_name);
  if (action == nullptr) return NotFound("action " + action_name);
  const auto* saved = action_args_;
  action_args_ = &args;
  const Status status = Exec(action->body);
  action_args_ = saved;
  return status;
}

Status P4Evaluator::ExecOne(const Stmt& stmt) {
  switch (stmt.kind) {
    case Stmt::Kind::kAssign: {
      GALLIUM_ASSIGN_OR_RETURN(uint64_t value, Eval(*stmt.value));
      SetField(stmt.target, value);
      return Status::Ok();
    }
    case Stmt::Kind::kIf: {
      GALLIUM_ASSIGN_OR_RETURN(uint64_t cond, Eval(*stmt.value));
      return Exec(cond != 0 ? stmt.then_body : stmt.else_body);
    }
    case Stmt::Kind::kApplyTable:
      return ApplyTable(stmt.target);
    case Stmt::Kind::kRegRead: {
      const auto it = register_values_.find(stmt.target);
      if (it == register_values_.end()) {
        return NotFound("register " + stmt.target);
      }
      GALLIUM_ASSIGN_OR_RETURN(uint64_t index, Eval(*stmt.index));
      if (index >= it->second.size()) return InvalidArgument("reg index");
      SetField(stmt.value->field, it->second[index]);
      return Status::Ok();
    }
    case Stmt::Kind::kRegWrite: {
      auto it = register_values_.find(stmt.target);
      if (it == register_values_.end()) {
        return NotFound("register " + stmt.target);
      }
      GALLIUM_ASSIGN_OR_RETURN(uint64_t index, Eval(*stmt.index));
      GALLIUM_ASSIGN_OR_RETURN(uint64_t value, Eval(*stmt.value));
      if (index >= it->second.size()) return InvalidArgument("reg index");
      it->second[index] = value;
      return Status::Ok();
    }
    case Stmt::Kind::kMarkDrop:
      dropped_ = true;
      return Status::Ok();
    case Stmt::Kind::kSetValid:
      header_valid_[stmt.target] = true;
      return Status::Ok();
    case Stmt::Kind::kSetInvalid:
      header_valid_[stmt.target] = false;
      return Status::Ok();
  }
  return Internal("bad statement kind");
}

Status P4Evaluator::Exec(const std::vector<StmtPtr>& stmts) {
  for (const StmtPtr& stmt : stmts) {
    GALLIUM_RETURN_IF_ERROR(ExecOne(*stmt));
  }
  return Status::Ok();
}

void P4Evaluator::LoadPacket(const net::Packet& pkt) {
  SetField("hdr.ethernet.dstAddr", pkt.eth().dst.ToUint64());
  SetField("hdr.ethernet.srcAddr", pkt.eth().src.ToUint64());
  SetField("hdr.ethernet.etherType", pkt.eth().ether_type);
  SetField("hdr.ipv4.srcAddr", pkt.ip().saddr);
  SetField("hdr.ipv4.dstAddr", pkt.ip().daddr);
  SetField("hdr.ipv4.protocol", pkt.ip().protocol);
  SetField("hdr.ipv4.ttl", pkt.ip().ttl);
  header_valid_["hdr.ethernet"] = true;
  header_valid_["hdr.ipv4"] = true;
  header_valid_["hdr.tcp"] = pkt.has_tcp();
  header_valid_["hdr.udp"] = pkt.has_udp();
  if (pkt.has_tcp()) {
    SetField("hdr.tcp.srcPort", pkt.tcp().sport);
    SetField("hdr.tcp.dstPort", pkt.tcp().dport);
    SetField("hdr.tcp.seqNo", pkt.tcp().seq);
    SetField("hdr.tcp.ackNo", pkt.tcp().ack);
    SetField("hdr.tcp.flags", pkt.tcp().flags);
  }
  if (pkt.has_udp()) {
    SetField("hdr.udp.srcPort", pkt.udp().sport);
    SetField("hdr.udp.dstPort", pkt.udp().dport);
  }
  // What the emitted parser states compute:
  SetField("meta.l4_sport", pkt.sport());
  SetField("meta.l4_dport", pkt.dport());
  if (pkt.has_gallium()) {
    SetField("hdr.gallium.cond_bits", pkt.gallium().cond_bits);
    SetField("hdr.gallium.var_count", pkt.gallium().vars.size());
    for (size_t i = 0; i < pkt.gallium().vars.size(); ++i) {
      SetField("hdr.gallium.var" + std::to_string(i), pkt.gallium().vars[i]);
    }
    header_valid_["hdr.gallium"] = true;
  }
  SetField("standard_metadata.ingress_port", pkt.ingress_port());
  SetField("standard_metadata.egress_spec", 0);
}

void P4Evaluator::StorePacket(net::Packet* pkt) const {
  pkt->eth().dst = net::MacAddr::FromUint64(Field("hdr.ethernet.dstAddr"));
  pkt->eth().src = net::MacAddr::FromUint64(Field("hdr.ethernet.srcAddr"));
  pkt->ip().saddr = static_cast<uint32_t>(Field("hdr.ipv4.srcAddr"));
  pkt->ip().daddr = static_cast<uint32_t>(Field("hdr.ipv4.dstAddr"));
  pkt->ip().ttl = static_cast<uint8_t>(Field("hdr.ipv4.ttl"));
  if (pkt->has_tcp()) {
    pkt->tcp().sport = static_cast<uint16_t>(Field("hdr.tcp.srcPort"));
    pkt->tcp().dport = static_cast<uint16_t>(Field("hdr.tcp.dstPort"));
    pkt->tcp().seq = static_cast<uint32_t>(Field("hdr.tcp.seqNo"));
    pkt->tcp().ack = static_cast<uint32_t>(Field("hdr.tcp.ackNo"));
    pkt->tcp().flags = static_cast<uint8_t>(Field("hdr.tcp.flags"));
  }
  if (pkt->has_udp()) {
    pkt->udp().sport = static_cast<uint16_t>(Field("hdr.udp.srcPort"));
    pkt->udp().dport = static_cast<uint16_t>(Field("hdr.udp.dstPort"));
  }
}

Result<P4Evaluator::RunResult> P4Evaluator::RunIngress(net::Packet& pkt) {
  dropped_ = false;
  header_valid_["hdr.gallium"] = false;
  LoadPacket(pkt);
  GALLIUM_RETURN_IF_ERROR(Exec(program_.ingress_apply));

  RunResult result;
  result.dropped = dropped_;
  result.egress_port =
      static_cast<int>(Field("standard_metadata.egress_spec"));
  result.gallium_valid = header_valid_.at("hdr.gallium");
  if (result.gallium_valid) {
    result.gallium_cond_bits =
        static_cast<uint32_t>(Field("hdr.gallium.cond_bits"));
    const int vars = static_cast<int>(Field("hdr.gallium.var_count"));
    for (int i = 0; i < vars; ++i) {
      result.gallium_vars.push_back(
          static_cast<uint32_t>(Field("hdr.gallium.var" + std::to_string(i))));
    }
  }
  StorePacket(&pkt);
  return result;
}

}  // namespace gallium::p4::exec
