// A compact P4-16 program representation, at the granularity the emitter
// needs: headers, parser states, tables (with write-back shadows), actions,
// registers, and structured control blocks. Expression text is carried as
// strings — the typing/verification burden lives in the IR layer; this layer
// is the printable shape of the generated program.
#pragma once

#include <string>
#include <vector>

namespace gallium::p4 {

struct P4Field {
  std::string name;
  int bits = 32;
};

struct P4Header {
  std::string name;  // type name, e.g. "gallium_t"
  std::vector<P4Field> fields;
};

struct P4ParserState {
  std::string name;
  std::vector<std::string> statements;  // extract/transition lines
};

struct P4Action {
  std::string name;
  std::vector<std::string> params;  // "bit<32> value0" style
  std::vector<std::string> body;    // one primitive per line
};

struct P4Table {
  std::string name;
  std::vector<std::string> keys;     // "hdr.ipv4.srcAddr: exact" style
  std::vector<std::string> actions;  // action names
  std::string default_action;
  int size = 1024;
  bool is_write_back = false;  // shadow table for atomic updates
};

struct P4Register {
  std::string name;
  int bits = 32;
  int size = 1;
};

struct P4Control {
  std::string name;
  std::vector<std::string> apply_body;  // structured statements, one per line
};

struct P4Program {
  std::string program_name;
  std::vector<P4Header> headers;
  std::vector<P4Field> metadata_fields;
  std::vector<P4ParserState> parser_states;
  std::vector<P4Register> registers;
  std::vector<P4Action> actions;
  std::vector<P4Table> tables;
  P4Control ingress;

  // Statistics consumed by the resource checker and Table 1.
  int num_match_tables() const;
  int metadata_bits() const;
};

// Renders the program as P4-16 (v1model-flavored) source text.
std::string EmitP4(const P4Program& program);

}  // namespace gallium::p4
